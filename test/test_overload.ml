(* Tests for the overload-resilience stack: deadline propagation and
   dead-on-arrival shedding, the CoDel-style admission gate, queue-entry
   expiry, the redistribution circuit breaker, the stale-accept-leader
   unwedge, retrying clients (backoff, jitter, release semantics, timeout
   attribution), the flash-sale workload and targeted-partition
   generators, and conservation under shedding. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let entity = "VM"

let regions () = Array.of_list Geonet.Region.default_five

let make_cluster ?(config_f = fun c -> c) ?(seed = 42L) ?(maximum = 5_000) () =
  let config = config_f Samya.Config.default in
  let cluster = Samya.Cluster.create ~seed ~config ~regions:(regions ()) () in
  Samya.Cluster.init_entity cluster ~entity ~maximum;
  cluster

let submit_at cluster ~time_ms ~region request callback =
  Des.Engine.schedule_at
    (Samya.Cluster.engine cluster)
    ~time_ms
    (fun () -> Samya.Cluster.submit cluster ~region request ~reply:callback)

let drain ?(extra = 120_000.0) cluster =
  let engine = Samya.Cluster.engine cluster in
  Des.Engine.run engine ~until_ms:(Des.Engine.now engine +. extra)

let sum_sites cluster f =
  Array.fold_left (fun acc site -> acc + f site) 0 (Samya.Cluster.sites cluster)

(* ------------------------------------------------------------------ *)
(* Config and request validation *)

let config_rejects_bad_overload_knobs () =
  let bad f =
    match Samya.Config.validate (f Samya.Config.default) with
    | Error _ -> true
    | Ok () -> false
  in
  check bool "deadline_budget_ms = 0" true
    (bad (fun c -> { c with Samya.Config.deadline_budget_ms = 0.0 }));
  check bool "deadline_budget_ms = nan" true
    (bad (fun c -> { c with Samya.Config.deadline_budget_ms = Float.nan }));
  let adm c f =
    { c with Samya.Config.admission = f c.Samya.Config.admission }
  in
  let brk c f = { c with Samya.Config.breaker = f c.Samya.Config.breaker } in
  check bool "admission.target_ms = -1" true
    (bad (fun c ->
         adm c (fun a -> { a with Samya.Config.Admission.target_ms = -1.0 })));
  check bool "admission.target_ms = nan" true
    (bad (fun c ->
         adm c (fun a ->
             { a with Samya.Config.Admission.target_ms = Float.nan })));
  check bool "admission.interval_ms = 0" true
    (bad (fun c ->
         adm c (fun a -> { a with Samya.Config.Admission.interval_ms = 0.0 })));
  check bool "breaker.threshold = -1" true
    (bad (fun c ->
         brk c (fun b -> { b with Samya.Config.Breaker.threshold = -1 })));
  check bool "breaker.probe_ms = 0" true
    (bad (fun c ->
         brk c (fun b -> { b with Samya.Config.Breaker.probe_ms = 0.0 })));
  check bool "breaker.probe_ms = nan" true
    (bad (fun c ->
         brk c (fun b -> { b with Samya.Config.Breaker.probe_ms = Float.nan })));
  check bool "defaults validate" true
    (Samya.Config.validate Samya.Config.default = Ok ())

let request_rejects_nan_deadline () =
  let nan_req = Samya.Types.acquire ~deadline_ms:Float.nan ~entity ~amount:1 () in
  check bool "nan deadline rejected" true
    (match Samya.Types.validate nan_req with Error _ -> true | Ok () -> false);
  check bool "finite deadline fine" true
    (Samya.Types.validate (Samya.Types.acquire ~deadline_ms:5.0 ~entity ~amount:1 ())
    = Ok ())

(* ------------------------------------------------------------------ *)
(* Deadline propagation and shedding *)

let dead_on_arrival_is_shed () =
  let cluster = make_cluster () in
  let response = ref None in
  (* Deadline 100 ms, submitted at t = 1 s: already dead when it reaches
     the site; it must be shed without touching the ledger. *)
  submit_at cluster ~time_ms:1_000.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.acquire ~deadline_ms:100.0 ~entity ~amount:10 ())
    (fun r -> response := Some r);
  drain cluster;
  check bool "rejected for deadline" true (!response = Some Samya.Types.Rejected_deadline);
  check int "counted as deadline shed" 1 (sum_sites cluster Samya.Site.shed_deadline);
  check int "no tokens moved" 0
    (Samya.Cluster.total_acquired cluster ~entity);
  (* Reads shed too. *)
  let read_response = ref None in
  submit_at cluster ~time_ms:2_000.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.read ~deadline_ms:1.0 ~entity ())
    (fun r -> read_response := Some r);
  drain cluster;
  check bool "read shed" true (!read_response = Some Samya.Types.Rejected_deadline)

let queued_entry_expires_unreplayed () =
  (* Reactive-only, with a queue budget far below one protocol round:
     a request parked behind a redistribution must be discarded with
     [Rejected_deadline] when its effective deadline passes, not served
     late at drain. *)
  let cluster =
    make_cluster
      ~config_f:(fun c ->
        {
          c with
          Samya.Config.prediction_enabled = false;
          deadline_budget_ms = 50.0;
        })
      ()
  in
  (* Exhaust site 0's share so the next acquire triggers an instance. *)
  submit_at cluster ~time_ms:0.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.acquire ~entity ~amount:1_000 ())
    ignore;
  let response = ref None in
  let reply_time = ref Float.nan in
  let engine = Samya.Cluster.engine cluster in
  submit_at cluster ~time_ms:1_000.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.acquire ~entity ~amount:10 ())
    (fun r ->
      response := Some r;
      reply_time := Des.Engine.now engine);
  drain cluster;
  check bool "queue expiry rejects" true
    (!response = Some Samya.Types.Rejected_deadline);
  check bool "expired entries counted" true
    (sum_sites cluster Samya.Site.shed_queue_expired >= 1);
  check bool "queue depth gauge saw it" true
    (Array.exists
       (fun site -> Samya.Site.queue_peak site ~entity >= 1)
       (Samya.Cluster.sites cluster));
  (* The expired entry never consumed tokens. *)
  check int "only the exhausting acquire holds tokens" 1_000
    (Samya.Cluster.total_acquired cluster ~entity);
  check bool "conservation" true
    (Samya.Cluster.check_invariant cluster ~entity ~maximum:5_000 = Ok ())

let admission_gate_sheds_and_recovers () =
  (* Slow CPU and a 5 ms backlog target: a dense burst must trip the gate
     into drop mode (shedding acquires for free) and the gate must close
     again once the backlog drains below target/2. *)
  let cluster =
    make_cluster
      ~config_f:(fun c ->
        {
          c with
          Samya.Config.prediction_enabled = false;
          local_processing_ms = 1.0;
          admission =
            { Samya.Config.Admission.target_ms = 5.0; interval_ms = 20.0 };
        })
      ()
  in
  let granted = ref 0 and shed = ref 0 in
  for i = 0 to 399 do
    (* 2 arrivals per ms against 1 ms/request of CPU: backlog grows 0.5 ms
       per arrival, passing the 5 ms target around the 20th request. *)
    submit_at cluster
      ~time_ms:(float_of_int i *. 0.5)
      ~region:Geonet.Region.Us_west1
      (Samya.Types.acquire ~entity ~amount:1 ())
      (function
        | Samya.Types.Granted -> incr granted
        | Samya.Types.Rejected_deadline -> incr shed
        | _ -> ())
  done;
  drain cluster;
  check bool "early requests granted" true (!granted > 0);
  check bool "overload shed" true (!shed > 0);
  check int "sheds counted" !shed (sum_sites cluster Samya.Site.shed_admission);
  check bool "gate closed after drain" true
    (Array.for_all
       (fun site -> not (Samya.Site.admission_dropping site))
       (Samya.Cluster.sites cluster));
  check bool "conservation under shedding" true
    (Samya.Cluster.check_invariant cluster ~entity ~maximum:5_000 = Ok ())

(* ------------------------------------------------------------------ *)
(* Circuit breaker *)

let breaker_opens_and_reprobes () =
  let cluster =
    make_cluster
      ~config_f:(fun c ->
        {
          c with
          Samya.Config.prediction_enabled = false;
          redistribution_cooldown_ms = 500.0;
          breaker = { Samya.Config.Breaker.threshold = 2; probe_ms = 3_000.0 };
        })
      ()
  in
  (* Cut site 0 off, then drive it into famine: every redistribution
     attempt aborts, and after 2 consecutive aborts the breaker opens. *)
  Des.Engine.schedule_at (Samya.Cluster.engine cluster) ~time_ms:0.0 (fun () ->
      Samya.Cluster.partition cluster [ [ 0 ]; [ 1; 2; 3; 4 ] ]);
  submit_at cluster ~time_ms:10.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.acquire ~entity ~amount:1_000 ())
    ignore;
  let rejections = ref 0 in
  for i = 0 to 59 do
    submit_at cluster
      ~time_ms:(1_000.0 +. (float_of_int i *. 500.0))
      ~region:Geonet.Region.Us_west1
      (Samya.Types.acquire ~entity ~amount:50 ())
      (function Samya.Types.Rejected -> incr rejections | _ -> ())
  done;
  drain ~extra:40_000.0 cluster;
  let site0 = Samya.Cluster.site cluster 0 in
  check bool "breaker tripped" true (Samya.Site.breaker_trips site0 ~entity >= 1);
  check bool "requests failed fast" true (!rejections > 0);
  (* Heal and wait past the probe window: the breaker's half-open probe
     must let a redistribution through and close on success. *)
  Des.Engine.schedule_at (Samya.Cluster.engine cluster)
    ~time_ms:(Des.Engine.now (Samya.Cluster.engine cluster) +. 1.0)
    (fun () -> Samya.Cluster.heal cluster);
  let healed_reply = ref None in
  submit_at cluster
    ~time_ms:(Des.Engine.now (Samya.Cluster.engine cluster) +. 4_000.0)
    ~region:Geonet.Region.Us_west1
    (Samya.Types.acquire ~entity ~amount:50 ())
    (fun r -> healed_reply := Some r);
  drain ~extra:60_000.0 cluster;
  check bool "post-heal acquire granted" true
    (!healed_reply = Some Samya.Types.Granted);
  check bool "breaker closed" true (not (Samya.Site.breaker_open site0 ~entity));
  check bool "conservation" true
    (Samya.Cluster.check_invariant cluster ~entity ~maximum:5_000 = Ok ())

(* ------------------------------------------------------------------ *)
(* Stale accept-phase leader unwedge (the retry-storm liveness fix) *)

let stale_accept_leader_unwedges () =
  (* Partition the home site at the exact moment it constructs a value
     (entering the accept phase): the cohort times out and recovers
     behind its back. Before the Election_reject NACK, the stale leader
     re-sent its accept forever and its entity stayed exposed — parked
     requests never got a reply. *)
  let cluster_ref = ref None in
  let cut = ref false in
  let config =
    {
      Samya.Config.default with
      Samya.Config.prediction_enabled = false;
      redistribution_cooldown_ms = 500.0;
    }
  in
  let cluster =
    Samya.Cluster.create ~seed:42L ~config ~regions:(regions ())
      ~on_protocol_event:(fun ~site ~entity:_ ev ->
        match (ev, !cluster_ref) with
        | Samya.Avantan_core.Value_constructed _, Some c when site = 0 && not !cut
          ->
            cut := true;
            Samya.Cluster.partition c [ [ 0 ]; [ 1; 2; 3; 4 ] ]
        | _ -> ())
      ()
  in
  cluster_ref := Some cluster;
  Samya.Cluster.init_entity cluster ~entity ~maximum:5_000;
  submit_at cluster ~time_ms:0.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.acquire ~entity ~amount:1_000 ())
    ignore;
  let response = ref None in
  submit_at cluster ~time_ms:1_000.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.acquire ~entity ~amount:50 ())
    (fun r -> response := Some r);
  Des.Engine.schedule_at (Samya.Cluster.engine cluster) ~time_ms:20_000.0 (fun () ->
      Samya.Cluster.heal cluster);
  drain ~extra:200_000.0 cluster;
  check bool "partition was injected mid-accept" true !cut;
  check bool "parked request eventually answered" true (!response <> None);
  check int "no request left parked" 0
    (sum_sites cluster (fun s -> Samya.Site.queued s ~entity));
  check bool "conservation across the superseded instance" true
    (Samya.Cluster.check_invariant cluster ~entity ~maximum:5_000 = Ok ())

(* ------------------------------------------------------------------ *)
(* Driver: retry policies, timeout attribution, spec validation *)

let req time_ms site kind amount =
  { Trace.Workload.time_ms; site; kind; amount; entity = "" }

let driver_system ?(config = Samya.Config.default) ?(maximum = 5_000) () =
  Harness.Systems.samya ~seed:3L ~config ~regions:(regions ())
    ~entity ~maximum ()

let driver_spec_validation_raises () =
  let t_system = driver_system () in
  let requests = [| req 0.0 0 Trace.Workload.Acquire 1 |] in
  let base =
    Harness.Driver.default_spec ~client_regions:(regions ()) ~requests
      ~duration_ms:1_000.0
  in
  let raises spec =
    try
      ignore (Harness.Driver.run ~t_system spec);
      false
    with Invalid_argument _ -> true
  in
  let retry r = { base with Harness.Driver.retry = Some r } in
  let ok_retry =
    {
      Harness.Driver.max_attempts = 2;
      base_backoff_ms = 1.0;
      max_backoff_ms = 2.0;
      jitter = 0.0;
      jitter_seed = 1L;
    }
  in
  check bool "deadline_budget_ms = 0" true
    (raises { base with Harness.Driver.deadline_budget_ms = 0.0 });
  check bool "deadline_budget_ms = nan" true
    (raises { base with Harness.Driver.deadline_budget_ms = Float.nan });
  check bool "max_attempts = 0" true
    (raises (retry { ok_retry with Harness.Driver.max_attempts = 0 }));
  check bool "base_backoff_ms = -1" true
    (raises (retry { ok_retry with Harness.Driver.base_backoff_ms = -1.0 }));
  check bool "base_backoff_ms = nan" true
    (raises (retry { ok_retry with Harness.Driver.base_backoff_ms = Float.nan }));
  check bool "max_backoff_ms < base" true
    (raises (retry { ok_retry with Harness.Driver.max_backoff_ms = 0.5 }));
  check bool "jitter = 1" true
    (raises (retry { ok_retry with Harness.Driver.jitter = 1.0 }));
  check bool "jitter = nan" true
    (raises (retry { ok_retry with Harness.Driver.jitter = Float.nan }))

let retrying_clients_resubmit_but_not_releases () =
  (* 400 ms of CPU per request against a 100 ms client timeout: every
     attempt times out. Acquires retry up to the attempt budget; the
     (late-granted) acquire's release must NOT retry — a doubled release
     would mint tokens. *)
  let config =
    { Samya.Config.default with Samya.Config.local_processing_ms = 400.0 }
  in
  let t_system = driver_system ~config () in
  let requests =
    [| req 0.0 0 Trace.Workload.Acquire 1; req 5_000.0 0 Trace.Workload.Release 1 |]
  in
  let spec =
    {
      (Harness.Driver.default_spec ~client_regions:(regions ()) ~requests
         ~duration_ms:10_000.0)
      with
      Harness.Driver.drain_ms = 20_000.0;
      client_timeout_ms = 100.0;
      retry =
        Some
          {
            Harness.Driver.max_attempts = 3;
            base_backoff_ms = 10.0;
            max_backoff_ms = 40.0;
            jitter = 0.0;
            jitter_seed = 9L;
          };
    }
  in
  let r = Harness.Driver.run ~t_system spec in
  check int "nothing committed inside the timeout" 0 r.Harness.Driver.committed;
  check int "both terminal outcomes are timeouts" 2 r.Harness.Driver.timed_out;
  (* Only the acquire retried: attempts 2 and 3. The release stopped at
     one attempt. *)
  check int "acquire retried twice, release never" 2 r.Harness.Driver.retries;
  check bool "all replies eventually arrived" true (r.Harness.Driver.no_reply = 0);
  check bool "invariant (late grant + single release)" true
    (t_system.Harness.Systems.invariant ~maximum:5_000 = Ok ())

let retry_backoff_is_deterministic () =
  (* Same seed, same spec: jittered retry schedules must reproduce
     byte-identically (the per-client streams are drawn lane-locally). *)
  let run () =
    let config =
      { Samya.Config.default with Samya.Config.local_processing_ms = 400.0 }
    in
    let t_system = driver_system ~config () in
    let requests =
      Array.init 20 (fun i ->
          req (float_of_int i *. 100.0) (i mod 5) Trace.Workload.Acquire 1)
    in
    let spec =
      {
        (Harness.Driver.default_spec ~client_regions:(regions ()) ~requests
           ~duration_ms:10_000.0)
        with
        Harness.Driver.drain_ms = 30_000.0;
        client_timeout_ms = 100.0;
        retry =
          Some
            {
              Harness.Driver.max_attempts = 3;
              base_backoff_ms = 50.0;
              max_backoff_ms = 400.0;
              jitter = 0.5;
              jitter_seed = 77L;
            };
      }
    in
    let r = Harness.Driver.run ~t_system spec in
    Printf.sprintf "%d/%d/%d/%d" r.Harness.Driver.committed
      r.Harness.Driver.timed_out r.Harness.Driver.retries r.Harness.Driver.no_reply
  in
  let a = run () in
  check Alcotest.string "identical reruns" a (run ());
  check bool "retries happened" true
    (match String.split_on_char '/' a with
    | [ _; _; retries; _ ] -> int_of_string retries > 0
    | _ -> false)

let timeouts_attributed_in_slo () =
  (* Satellite: abandoned attempts must show up as "timeout" aborts in
     the SLO breakdown, not vanish into no-reply. *)
  let config =
    { Samya.Config.default with Samya.Config.local_processing_ms = 400.0 }
  in
  let t_system = driver_system ~config () in
  let requests =
    Array.init 5 (fun i -> req (float_of_int i *. 500.0) 0 Trace.Workload.Acquire 1)
  in
  let slo = Obs.Slo.create () in
  let spec =
    {
      (Harness.Driver.default_spec ~client_regions:(regions ()) ~requests
         ~duration_ms:5_000.0)
      with
      Harness.Driver.drain_ms = 20_000.0;
      client_timeout_ms = 100.0;
      slo = Some slo;
      retry =
        Some
          {
            Harness.Driver.max_attempts = 2;
            base_backoff_ms = 10.0;
            max_backoff_ms = 10.0;
            jitter = 0.0;
            jitter_seed = 5L;
          };
    }
  in
  let r = Harness.Driver.run ~t_system spec in
  check int "all timed out" 5 r.Harness.Driver.timed_out;
  check bool "slo attributes the class" true
    (List.assoc_opt "timeout" (Obs.Slo.abort_classes slo) = Some 5)

let slo_abort_classes_accumulate () =
  let slo = Obs.Slo.create () in
  Obs.Slo.commit slo ~now_ms:10.0 ~latency_ms:1.0;
  Obs.Slo.abort slo ~cls:"timeout" ~now_ms:20.0;
  Obs.Slo.abort slo ~cls:"shed" ~now_ms:30.0;
  Obs.Slo.abort slo ~cls:"timeout" ~now_ms:40.0;
  Obs.Slo.abort slo ~now_ms:50.0;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string int))
    "sorted cumulative classes"
    [ ("shed", 1); ("timeout", 2) ]
    (Obs.Slo.abort_classes slo)

(* ------------------------------------------------------------------ *)
(* Workload and fault generators *)

let flash_sale_stream rng =
  Trace.Workload.flash_sale ~rng ~entity:"sale" ~home:0 ~n_clients:5
    ~base_rate_per_s:200.0 ~spike_rate_per_s:2_000.0 ~spike_start_ms:2_000.0
    ~spike_end_ms:3_000.0 ~duration_ms:5_000.0 ()

let flash_sale_shape () =
  let stream = flash_sale_stream (Des.Rng.create 7L) in
  check bool "non-empty" true (Array.length stream > 0);
  Array.iter
    (fun r ->
      check bool "acquire" true (r.Trace.Workload.kind = Trace.Workload.Acquire);
      check bool "entity" true (r.Trace.Workload.entity = "sale");
      check bool "amount 1" true (r.Trace.Workload.amount = 1);
      check bool "in horizon" true
        (r.Trace.Workload.time_ms >= 0.0 && r.Trace.Workload.time_ms <= 5_000.0))
    stream;
  let sorted = ref true in
  Array.iteri
    (fun i r ->
      if i > 0 && r.Trace.Workload.time_ms < stream.(i - 1).Trace.Workload.time_ms
      then sorted := false)
    stream;
  check bool "time-sorted" true !sorted;
  let in_window lo hi =
    Array.fold_left
      (fun acc r ->
        if r.Trace.Workload.time_ms >= lo && r.Trace.Workload.time_ms < hi then
          acc + 1
        else acc)
      0 stream
  in
  (* Poisson means: 400 base arrivals over [0, 2 s), 2000 in the spike
     second, 400 over the 2 s tail — generous 3-sigma-ish bounds. *)
  let base_head = in_window 0.0 2_000.0 in
  let spike = in_window 2_000.0 3_000.0 in
  let base_tail = in_window 3_000.0 5_000.0 in
  check bool "base head plausible" true (base_head > 280 && base_head < 540);
  check bool "spike plausible" true (spike > 1_700 && spike < 2_320);
  check bool "base tail plausible" true (base_tail > 280 && base_tail < 540);
  let home_count =
    Array.fold_left
      (fun acc r -> if r.Trace.Workload.site = 0 then acc + 1 else acc)
      0 stream
  in
  (* home_affinity 0.9 plus 1/5th of the uniform remainder. *)
  let frac = float_of_int home_count /. float_of_int (Array.length stream) in
  check bool "home-skewed" true (frac > 0.85 && frac < 0.98);
  (* Determinism in the rng. *)
  let again = flash_sale_stream (Des.Rng.create 7L) in
  check bool "deterministic" true (stream = again)

let flash_sale_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  let gen ?(home = 0) ?(base = 100.0) ?(spike = 200.0) ?(s0 = 1_000.0)
      ?(s1 = 2_000.0) ?(d = 3_000.0) () =
    Trace.Workload.flash_sale ~rng:(Des.Rng.create 1L) ~entity:"e" ~home
      ~n_clients:3 ~base_rate_per_s:base ~spike_rate_per_s:spike
      ~spike_start_ms:s0 ~spike_end_ms:s1 ~duration_ms:d ()
  in
  check bool "home out of range" true (invalid (fun () -> gen ~home:3 ()));
  check bool "zero base rate" true (invalid (fun () -> gen ~base:0.0 ()));
  check bool "nan spike rate" true (invalid (fun () -> gen ~spike:Float.nan ()));
  check bool "spike end before start" true
    (invalid (fun () -> gen ~s0:2_500.0 ~s1:2_000.0 ()));
  check bool "spike past duration" true (invalid (fun () -> gen ~s1:4_000.0 ()));
  check bool "well-formed ok" true (Array.length (gen ()) > 0)

let spike_partition_schedule () =
  let s =
    Chaos.Nemesis.spike_partition ~site:2 ~n_sites:5 ~at_ms:1_000.0
      ~heal_ms:2_000.0 ~duration_ms:5_000.0
  in
  (match s.Chaos.Nemesis.faults with
  | [ { Chaos.Nemesis.kind = Chaos.Nemesis.Partition { groups }; at_ms; heal_ms } ]
    ->
      check bool "isolates the site" true (groups = [ [ 2 ]; [ 0; 1; 3; 4 ] ]);
      check bool "window" true (at_ms = 1_000.0 && heal_ms = 2_000.0)
  | _ -> Alcotest.fail "expected exactly one partition fault");
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  check bool "site out of range" true
    (invalid (fun () ->
         Chaos.Nemesis.spike_partition ~site:5 ~n_sites:5 ~at_ms:1.0 ~heal_ms:2.0
           ~duration_ms:3.0));
  check bool "heal before cut" true
    (invalid (fun () ->
         Chaos.Nemesis.spike_partition ~site:0 ~n_sites:5 ~at_ms:2.0 ~heal_ms:2.0
           ~duration_ms:3.0));
  check bool "heal past duration" true
    (invalid (fun () ->
         Chaos.Nemesis.spike_partition ~site:0 ~n_sites:5 ~at_ms:1.0 ~heal_ms:4.0
           ~duration_ms:3.0))

(* ------------------------------------------------------------------ *)
(* Conservation under shedding: randomized overload + targeted partition *)

let conservation_under_shedding_random () =
  List.iter
    (fun seed ->
      let rng = Des.Rng.create (Int64.of_int (1_000 + seed)) in
      let quota = 200 + Des.Rng.int rng 800 in
      let spike = 800.0 +. Des.Rng.float rng 1_200.0 in
      let config =
        {
          Samya.Config.default with
          Samya.Config.prediction_enabled = false;
          local_processing_ms = 0.5;
          redistribution_cooldown_ms = 500.0;
          deadline_budget_ms = 400.0;
          admission =
            { Samya.Config.Admission.target_ms = 20.0; interval_ms = 50.0 };
          breaker = { Samya.Config.Breaker.threshold = 2; probe_ms = 1_000.0 };
        }
      in
      let cluster =
        Samya.Cluster.create ~seed:(Int64.of_int seed) ~config
          ~regions:(regions ()) ()
      in
      Samya.Cluster.init_entity cluster ~entity:"sale" ~maximum:quota;
      let t_system =
        Facade.of_samya_cluster ~name:"shed-soak"
          ~hooks:(Facade.samya_hooks ()) ~regions:(regions ())
          ~entity:"sale" cluster
      in
      let requests =
        Trace.Workload.flash_sale
          ~rng:(Des.Rng.create (Int64.of_int (77 + seed)))
          ~entity:"sale" ~home:0 ~n_clients:5 ~base_rate_per_s:300.0
          ~spike_rate_per_s:spike ~spike_start_ms:2_000.0 ~spike_end_ms:3_500.0
          ~duration_ms:8_000.0 ()
      in
      let spec =
        {
          (Harness.Driver.default_spec ~client_regions:(regions ()) ~requests
             ~duration_ms:8_000.0)
          with
          Harness.Driver.drain_ms = 10_000.0;
          events =
            [
              {
                Harness.Driver.at_ms = 2_200.0;
                action =
                  (fun () ->
                    t_system.Harness.Systems.partition [ [ 0 ]; [ 1; 2; 3; 4 ] ]);
              };
              {
                Harness.Driver.at_ms = 4_000.0;
                action = (fun () -> t_system.Harness.Systems.heal ());
              };
            ];
          client_timeout_ms = 500.0;
          grant_driven_release_ms = Some 400.0;
          deadline_budget_ms = 500.0;
          retry =
            Some
              {
                Harness.Driver.max_attempts = 3;
                base_backoff_ms = 100.0;
                max_backoff_ms = 800.0;
                jitter = 0.3;
                jitter_seed = Int64.of_int (5 + seed);
              };
        }
      in
      let r = Harness.Driver.run ~t_system spec in
      check bool
        (Printf.sprintf "seed %d: sheds or timeouts occurred" seed)
        true
        (r.Harness.Driver.shed + r.Harness.Driver.timed_out > 0);
      check bool
        (Printf.sprintf "seed %d: conservation (quota %d)" seed quota)
        true
        (Samya.Cluster.check_invariant cluster ~entity:"sale" ~maximum:quota
        = Ok ()))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Hot-path allocation guard *)

let accept_minor_words ~admission =
  (* Low load, obs off: whether the admission gate is armed or not, the
     accept path must allocate identically — the gate is one load and
     one float compare, not an allocation. *)
  let config =
    if admission then
      {
        Samya.Config.default with
        Samya.Config.admission =
          { Samya.Config.Admission.default with target_ms = 1.0e9 };
      }
    else Samya.Config.default
  in
  let cluster = Samya.Cluster.create ~seed:11L ~config ~regions:(regions ()) () in
  Samya.Cluster.init_entity cluster ~entity ~maximum:5_000;
  for i = 0 to 999 do
    let t = float_of_int i *. 10.0 in
    submit_at cluster ~time_ms:t ~region:Geonet.Region.Us_west1
      (Samya.Types.acquire ~entity ~amount:1 ())
      ignore;
    submit_at cluster ~time_ms:(t +. 5.0) ~region:Geonet.Region.Us_west1
      (Samya.Types.release ~entity ~amount:1 ())
      ignore
  done;
  let before = Gc.minor_words () in
  drain ~extra:20_000.0 cluster;
  Gc.minor_words () -. before

let accept_path_allocation_guard () =
  ignore (accept_minor_words ~admission:false);
  ignore (accept_minor_words ~admission:true);
  let off = accept_minor_words ~admission:false in
  let armed = accept_minor_words ~admission:true in
  check bool
    (Printf.sprintf "armed gate allocates no more (off %.0f, armed %.0f)" off
       armed)
    true
    (armed <= off +. 512.0)

(* ------------------------------------------------------------------ *)
(* The retry-storm experiment: sharded byte-identity and the verdict *)

let retrystorm_engine_jobs_identical () =
  (* The heaviest arm — retries, watchdogs, jittered backoff, deadline
     sheds, buffered SLO — must reproduce byte-identically at any
     --engine-jobs setting. *)
  let arm =
    List.find
      (fun a -> a.Harness.Exp_retrystorm.a_id = "admission")
      Harness.Exp_retrystorm.arms
  in
  let fingerprint engine_jobs =
    let c = Harness.Exp_retrystorm.capture ~engine_jobs ~quick:true ~arm () in
    let r = c.Harness.Exp_retrystorm.result in
    let pre, post, ratio = Harness.Exp_retrystorm.recovery c in
    Format.asprintf "%d/%d/%d/%d/%d/%d p50=%.4f pre=%.3f post=%.3f r=%.5f slo=%a"
      r.Harness.Driver.committed r.Harness.Driver.rejected
      r.Harness.Driver.shed r.Harness.Driver.timed_out r.Harness.Driver.retries
      r.Harness.Driver.no_reply
      (Harness.Driver.percentile r 50.0)
      pre post ratio
      (Format.pp_print_list (fun fmt (l : Obs.Slo.report_line) ->
           Format.fprintf fmt "%s:%d/%d" l.Obs.Slo.name l.Obs.Slo.violations
             l.Obs.Slo.windows))
      (Obs.Slo.report c.Harness.Exp_retrystorm.slo)
  in
  let one = fingerprint 1 in
  check bool "produced data" true (String.length one > 40);
  check Alcotest.string "engine-jobs 2 byte-identical" one (fingerprint 2);
  check Alcotest.string "engine-jobs 4 byte-identical" one (fingerprint 4)

let retrystorm_metastable_gap () =
  (* The scenario's reason to exist: naive immediate retries stay
     metastable after the heal while backoff+admission recovers. *)
  let capture id =
    let arm =
      List.find (fun a -> a.Harness.Exp_retrystorm.a_id = id)
        Harness.Exp_retrystorm.arms
    in
    Harness.Exp_retrystorm.capture ~quick:true ~arm ()
  in
  let naive = capture "naive" in
  let admission = capture "admission" in
  let _, _, naive_ratio = Harness.Exp_retrystorm.recovery naive in
  let _, _, adm_ratio = Harness.Exp_retrystorm.recovery admission in
  check bool
    (Printf.sprintf "naive metastable (post/pre %.2f)" naive_ratio)
    true (naive_ratio < 0.5);
  check bool
    (Printf.sprintf "admission recovers (post/pre %.2f)" adm_ratio)
    true (adm_ratio >= 0.9);
  check bool "admission shed load" true
    (naive.Harness.Exp_retrystorm.shed_admission = 0
    && admission.Harness.Exp_retrystorm.shed_admission > 0);
  List.iter
    (fun c ->
      check bool "conservation" true
        (Samya.Cluster.check_invariant c.Harness.Exp_retrystorm.cluster
           ~entity:"sale" ~maximum:c.Harness.Exp_retrystorm.scale.Harness.Exp_retrystorm.quota
        = Ok ()))
    [ naive; admission ]

let suite =
  [
    Alcotest.test_case "config: overload knob validation" `Quick
      config_rejects_bad_overload_knobs;
    Alcotest.test_case "types: nan deadline rejected" `Quick
      request_rejects_nan_deadline;
    Alcotest.test_case "shed: dead on arrival" `Quick dead_on_arrival_is_shed;
    Alcotest.test_case "shed: queued entry expires" `Quick
      queued_entry_expires_unreplayed;
    Alcotest.test_case "admission: sheds and recovers" `Quick
      admission_gate_sheds_and_recovers;
    Alcotest.test_case "breaker: opens and re-probes" `Quick
      breaker_opens_and_reprobes;
    Alcotest.test_case "avantan: stale accept leader unwedges" `Quick
      stale_accept_leader_unwedges;
    Alcotest.test_case "driver: retry spec validation" `Quick
      driver_spec_validation_raises;
    Alcotest.test_case "driver: retries acquires, never releases" `Quick
      retrying_clients_resubmit_but_not_releases;
    Alcotest.test_case "driver: jittered retries deterministic" `Quick
      retry_backoff_is_deterministic;
    Alcotest.test_case "driver: timeout attribution in SLO" `Quick
      timeouts_attributed_in_slo;
    Alcotest.test_case "slo: abort classes" `Quick slo_abort_classes_accumulate;
    Alcotest.test_case "workload: flash sale shape" `Quick flash_sale_shape;
    Alcotest.test_case "workload: flash sale validation" `Quick
      flash_sale_validation;
    Alcotest.test_case "nemesis: spike partition" `Quick spike_partition_schedule;
    Alcotest.test_case "conservation under shedding (randomized)" `Slow
      conservation_under_shedding_random;
    Alcotest.test_case "accept path: allocation guard" `Slow
      accept_path_allocation_guard;
    Alcotest.test_case "retrystorm: engine-jobs byte-identical" `Slow
      retrystorm_engine_jobs_identical;
    Alcotest.test_case "retrystorm: metastable gap" `Slow retrystorm_metastable_gap;
  ]
