(* Tests for the discrete-event simulation engine: deterministic RNG,
   heap ordering, event scheduling and timers. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Rng *)

let rng_deterministic () =
  let a = Des.Rng.create 42L and b = Des.Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Des.Rng.bits64 a) (Des.Rng.bits64 b)
  done

let rng_copy_independent () =
  let a = Des.Rng.create 7L in
  ignore (Des.Rng.bits64 a);
  let b = Des.Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Des.Rng.bits64 a) (Des.Rng.bits64 b)

let rng_split_diverges () =
  let a = Des.Rng.create 7L in
  let b = Des.Rng.split a in
  let xs = List.init 20 (fun _ -> Des.Rng.bits64 a) in
  let ys = List.init 20 (fun _ -> Des.Rng.bits64 b) in
  check bool "split streams differ" true (xs <> ys)

let rng_int_bounds () =
  let rng = Des.Rng.create 1L in
  for _ = 1 to 10_000 do
    let v = Des.Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.check_raises "non-positive bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Des.Rng.int rng 0))

let rng_float_bounds () =
  let rng = Des.Rng.create 2L in
  for _ = 1 to 10_000 do
    let v = Des.Rng.float rng 3.5 in
    if v < 0.0 || v >= 3.5 then Alcotest.failf "out of range: %f" v
  done

let rng_gaussian_moments () =
  let rng = Des.Rng.create 3L in
  let n = 50_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let v = Des.Rng.gaussian rng ~mean:5.0 ~std:2.0 in
    sum := !sum +. v;
    sq := !sq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  check bool "mean close to 5" true (Float.abs (mean -. 5.0) < 0.05);
  check bool "variance close to 4" true (Float.abs (var -. 4.0) < 0.15)

let rng_exponential_mean () =
  let rng = Des.Rng.create 4L in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Des.Rng.exponential rng ~rate:2.0
  done;
  check bool "mean close to 1/rate" true (Float.abs ((!sum /. float_of_int n) -. 0.5) < 0.02)

let rng_bool_probability () =
  let rng = Des.Rng.create 5L in
  let hits = ref 0 in
  for _ = 1 to 20_000 do
    if Des.Rng.bool rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. 20_000.0 in
  check bool "bernoulli rate" true (Float.abs (p -. 0.3) < 0.02)

let rng_shuffle_permutes () =
  let rng = Des.Rng.create 6L in
  let a = Array.init 50 (fun i -> i) in
  Des.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check bool "is a permutation" true (sorted = Array.init 50 (fun i -> i));
  check bool "actually shuffled" true (a <> Array.init 50 (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Pheap *)

let pheap_ordering () =
  let h = Des.Pheap.create () in
  let rng = Des.Rng.create 11L in
  for i = 0 to 999 do
    Des.Pheap.push h ~priority:(Des.Rng.float rng 100.0) i
  done;
  let last = ref neg_infinity in
  let count = ref 0 in
  let rec drain () =
    match Des.Pheap.pop h with
    | None -> ()
    | Some (key, _) ->
        check bool "non-decreasing" true (key >= !last);
        last := key;
        incr count;
        drain ()
  in
  drain ();
  check int "popped all" 1000 !count

let pheap_fifo_ties () =
  let h = Des.Pheap.create () in
  List.iter (fun v -> Des.Pheap.push h ~priority:1.0 v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> match Des.Pheap.pop h with Some (_, v) -> v | None -> -1) in
  check (Alcotest.list int) "insertion order on equal keys" [ 1; 2; 3; 4 ] order

let pheap_property =
  QCheck.Test.make ~count:200 ~name:"pheap pops in sorted order"
    QCheck.(list (float_range 0.0 1000.0))
    (fun keys ->
      let h = Des.Pheap.create () in
      List.iter (fun k -> Des.Pheap.push h ~priority:k ()) keys;
      let rec drain acc =
        match Des.Pheap.pop h with None -> List.rev acc | Some (k, ()) -> drain (k :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare keys)

(* Model-based property: arbitrary interleavings of pushes (Some key) and
   pops (None) against a stable sorted-list model. Keys are drawn from a
   tiny domain so equal-priority ties are common, exercising the FIFO
   tie-break through every push/pop/sift path. Values are push sequence
   numbers, so FIFO violations are directly observable. *)
let pheap_interleaving_property =
  (* Insert before the first strictly-greater key: stable among equals. *)
  let rec model_insert entry model =
    match model with
    | [] -> [ entry ]
    | (key, _) :: _ when fst entry < key -> entry :: model
    | head :: rest -> head :: model_insert entry rest
  in
  QCheck.Test.make ~count:500
    ~name:"pheap: push/pop interleavings match stable sorted model"
    QCheck.(list (option (int_bound 7)))
    (fun ops ->
      let h = Des.Pheap.create () in
      let model = ref [] in
      let next = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some k ->
              let key = float_of_int k in
              Des.Pheap.push h ~priority:key !next;
              model := model_insert (key, !next) !model;
              incr next
          | None -> (
              match (Des.Pheap.pop h, !model) with
              | None, [] -> ()
              | Some (key, value), (mkey, mvalue) :: rest ->
                  if key <> mkey || value <> mvalue then ok := false
                  else model := rest
              | Some _, [] | None, _ :: _ -> ok := false))
        ops;
      (* Drain whatever is left and check it too. *)
      let rec drain () =
        match (Des.Pheap.pop h, !model) with
        | None, [] -> ()
        | Some (key, value), (mkey, mvalue) :: rest ->
            if key <> mkey || value <> mvalue then ok := false
            else begin
              model := rest;
              drain ()
            end
        | Some _, [] | None, _ :: _ -> ok := false
      in
      drain ();
      !ok && Des.Pheap.is_empty h)

let pheap_pop_unsafe_matches_pop () =
  let h = Des.Pheap.create () in
  let rng = Des.Rng.create 23L in
  for i = 0 to 499 do
    Des.Pheap.push h ~priority:(float_of_int (Des.Rng.int rng 10)) i
  done;
  let previous_key = ref neg_infinity in
  let count = ref 0 in
  while not (Des.Pheap.is_empty h) do
    let key = Des.Pheap.min_key h in
    ignore (Des.Pheap.pop_unsafe h);
    check bool "min_key non-decreasing" true (key >= !previous_key);
    previous_key := key;
    incr count
  done;
  check int "drained all" 500 !count

(* ------------------------------------------------------------------ *)
(* Engine *)

let engine_runs_in_time_order () =
  let engine = Des.Engine.create () in
  let log = ref [] in
  Des.Engine.schedule engine ~delay_ms:30.0 (fun () -> log := 3 :: !log);
  Des.Engine.schedule engine ~delay_ms:10.0 (fun () -> log := 1 :: !log);
  Des.Engine.schedule engine ~delay_ms:20.0 (fun () -> log := 2 :: !log);
  Des.Engine.run engine;
  check (Alcotest.list int) "time order" [ 1; 2; 3 ] (List.rev !log);
  check bool "clock advanced" true (Des.Engine.now engine >= 30.0)

let engine_simultaneous_fifo () =
  let engine = Des.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Des.Engine.schedule engine ~delay_ms:5.0 (fun () -> log := i :: !log)
  done;
  Des.Engine.run engine;
  check (Alcotest.list int) "fifo for equal times" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let engine_nested_scheduling () =
  let engine = Des.Engine.create () in
  let fired = ref 0 in
  Des.Engine.schedule engine ~delay_ms:1.0 (fun () ->
      Des.Engine.schedule engine ~delay_ms:1.0 (fun () ->
          Des.Engine.schedule engine ~delay_ms:1.0 (fun () -> fired := 3)));
  Des.Engine.run engine;
  check int "chain completed" 3 !fired;
  check bool "time is 3ms" true (Float.abs (Des.Engine.now engine -. 3.0) < 1e-9)

let engine_run_until () =
  let engine = Des.Engine.create () in
  let fired = ref [] in
  List.iter
    (fun d -> Des.Engine.schedule engine ~delay_ms:d (fun () -> fired := d :: !fired))
    [ 5.0; 15.0; 25.0 ];
  Des.Engine.run engine ~until_ms:16.0;
  check int "two fired" 2 (List.length !fired);
  check bool "clock clamped to limit" true (Des.Engine.now engine = 16.0);
  Des.Engine.run engine;
  check int "last fires later" 3 (List.length !fired)

let engine_cancel_timer () =
  let engine = Des.Engine.create () in
  let fired = ref false in
  let timer = Des.Engine.timer engine ~delay_ms:10.0 (fun () -> fired := true) in
  Des.Engine.schedule engine ~delay_ms:5.0 (fun () -> Des.Engine.cancel timer);
  Des.Engine.run engine;
  check bool "cancelled timer did not fire" false !fired

let engine_timer_pending_lifecycle () =
  let engine = Des.Engine.create () in
  let armed = Des.Engine.timer engine ~delay_ms:5.0 (fun () -> ()) in
  let cancelled = Des.Engine.timer engine ~delay_ms:10.0 (fun () -> ()) in
  check bool "armed timer pending" true (Des.Engine.timer_pending armed);
  Des.Engine.cancel cancelled;
  check bool "cancelled timer not pending" false (Des.Engine.timer_pending cancelled);
  Des.Engine.run engine;
  check bool "fired timer not pending" false (Des.Engine.timer_pending armed);
  (* Cancelling after firing stays a no-op: the timer is Fired, not
     Cancelled, and remains not pending. *)
  Des.Engine.cancel armed;
  check bool "cancel after fire is no-op" false (Des.Engine.timer_pending armed)

let engine_negative_delay_clamped () =
  let engine = Des.Engine.create () in
  Des.Engine.schedule engine ~delay_ms:5.0 (fun () ->
      Des.Engine.schedule engine ~delay_ms:(-10.0) (fun () ->
          check bool "clock did not go backwards" true (Des.Engine.now engine >= 5.0)));
  Des.Engine.run engine

let engine_past_absolute_time_clamped () =
  let engine = Des.Engine.create () in
  Des.Engine.schedule engine ~delay_ms:10.0 (fun () ->
      Des.Engine.schedule_at engine ~time_ms:1.0 (fun () ->
          check bool "not in the past" true (Des.Engine.now engine >= 10.0)));
  Des.Engine.run engine

let drain_minor_words ~label =
  let engine = Des.Engine.create () in
  for i = 0 to 999 do
    let delay_ms = float_of_int ((i * 7) mod 997) in
    ignore
      (match label with
      | None -> Des.Engine.timer engine ~delay_ms (fun () -> ())
      | Some label -> Des.Engine.timer ~label engine ~delay_ms (fun () -> ()))
  done;
  let before = Gc.minor_words () in
  Des.Engine.run_for engine 1_000.0;
  Gc.minor_words () -. before

let engine_untraced_drain_no_extra_allocation () =
  (* Labelled timers exist for the observability layer; with no tracer
     installed, draining them must allocate exactly as much as draining
     plain timers — the PR-1 hot-path budget must not regress when the
     obs layer is off. First rounds warm both paths. *)
  ignore (drain_minor_words ~label:None);
  ignore (drain_minor_words ~label:(Some "t"));
  let plain = drain_minor_words ~label:None in
  let labelled = drain_minor_words ~label:(Some "t") in
  check bool
    (Printf.sprintf "labelled drain allocates no more (plain %.0f, labelled %.0f)"
       plain labelled)
    true
    (labelled <= plain +. 64.0)

let suite =
  [
    Alcotest.test_case "rng: deterministic by seed" `Quick rng_deterministic;
    Alcotest.test_case "rng: copy continues the stream" `Quick rng_copy_independent;
    Alcotest.test_case "rng: split diverges" `Quick rng_split_diverges;
    Alcotest.test_case "rng: int bounds" `Quick rng_int_bounds;
    Alcotest.test_case "rng: float bounds" `Quick rng_float_bounds;
    Alcotest.test_case "rng: gaussian moments" `Quick rng_gaussian_moments;
    Alcotest.test_case "rng: exponential mean" `Quick rng_exponential_mean;
    Alcotest.test_case "rng: bernoulli rate" `Quick rng_bool_probability;
    Alcotest.test_case "rng: shuffle permutes" `Quick rng_shuffle_permutes;
    Alcotest.test_case "pheap: sorted drain" `Quick pheap_ordering;
    Alcotest.test_case "pheap: fifo on ties" `Quick pheap_fifo_ties;
    Alcotest.test_case "pheap: pop_unsafe/min_key drain" `Quick pheap_pop_unsafe_matches_pop;
    QCheck_alcotest.to_alcotest pheap_property;
    QCheck_alcotest.to_alcotest pheap_interleaving_property;
    Alcotest.test_case "engine: time order" `Quick engine_runs_in_time_order;
    Alcotest.test_case "engine: fifo for simultaneous" `Quick engine_simultaneous_fifo;
    Alcotest.test_case "engine: nested scheduling" `Quick engine_nested_scheduling;
    Alcotest.test_case "engine: run until" `Quick engine_run_until;
    Alcotest.test_case "engine: cancellable timers" `Quick engine_cancel_timer;
    Alcotest.test_case "engine: timer_pending lifecycle" `Quick engine_timer_pending_lifecycle;
    Alcotest.test_case "engine: negative delay clamped" `Quick engine_negative_delay_clamped;
    Alcotest.test_case "engine: past schedule clamped" `Quick engine_past_absolute_time_clamped;
    Alcotest.test_case "engine: obs-off drain allocation" `Quick
      engine_untraced_drain_no_extra_allocation;
  ]
