(* Tests for the discrete-event simulation engine: deterministic RNG,
   heap ordering, event scheduling and timers. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Rng *)

let rng_deterministic () =
  let a = Des.Rng.create 42L and b = Des.Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Des.Rng.bits64 a) (Des.Rng.bits64 b)
  done

let rng_copy_independent () =
  let a = Des.Rng.create 7L in
  ignore (Des.Rng.bits64 a);
  let b = Des.Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Des.Rng.bits64 a) (Des.Rng.bits64 b)

let rng_split_diverges () =
  let a = Des.Rng.create 7L in
  let b = Des.Rng.split a in
  let xs = List.init 20 (fun _ -> Des.Rng.bits64 a) in
  let ys = List.init 20 (fun _ -> Des.Rng.bits64 b) in
  check bool "split streams differ" true (xs <> ys)

let rng_int_bounds () =
  let rng = Des.Rng.create 1L in
  for _ = 1 to 10_000 do
    let v = Des.Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.check_raises "non-positive bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Des.Rng.int rng 0))

let rng_float_bounds () =
  let rng = Des.Rng.create 2L in
  for _ = 1 to 10_000 do
    let v = Des.Rng.float rng 3.5 in
    if v < 0.0 || v >= 3.5 then Alcotest.failf "out of range: %f" v
  done

let rng_gaussian_moments () =
  let rng = Des.Rng.create 3L in
  let n = 50_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let v = Des.Rng.gaussian rng ~mean:5.0 ~std:2.0 in
    sum := !sum +. v;
    sq := !sq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  check bool "mean close to 5" true (Float.abs (mean -. 5.0) < 0.05);
  check bool "variance close to 4" true (Float.abs (var -. 4.0) < 0.15)

let rng_exponential_mean () =
  let rng = Des.Rng.create 4L in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Des.Rng.exponential rng ~rate:2.0
  done;
  check bool "mean close to 1/rate" true (Float.abs ((!sum /. float_of_int n) -. 0.5) < 0.02)

let rng_bool_probability () =
  let rng = Des.Rng.create 5L in
  let hits = ref 0 in
  for _ = 1 to 20_000 do
    if Des.Rng.bool rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. 20_000.0 in
  check bool "bernoulli rate" true (Float.abs (p -. 0.3) < 0.02)

let rng_shuffle_permutes () =
  let rng = Des.Rng.create 6L in
  let a = Array.init 50 (fun i -> i) in
  Des.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check bool "is a permutation" true (sorted = Array.init 50 (fun i -> i));
  check bool "actually shuffled" true (a <> Array.init 50 (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Pheap *)

let pheap_ordering () =
  let h = Des.Pheap.create () in
  let rng = Des.Rng.create 11L in
  for i = 0 to 999 do
    Des.Pheap.push h ~priority:(Des.Rng.float rng 100.0) i
  done;
  let last = ref neg_infinity in
  let count = ref 0 in
  let rec drain () =
    match Des.Pheap.pop h with
    | None -> ()
    | Some (key, _) ->
        check bool "non-decreasing" true (key >= !last);
        last := key;
        incr count;
        drain ()
  in
  drain ();
  check int "popped all" 1000 !count

let pheap_fifo_ties () =
  let h = Des.Pheap.create () in
  List.iter (fun v -> Des.Pheap.push h ~priority:1.0 v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> match Des.Pheap.pop h with Some (_, v) -> v | None -> -1) in
  check (Alcotest.list int) "insertion order on equal keys" [ 1; 2; 3; 4 ] order

let pheap_property =
  QCheck.Test.make ~count:200 ~name:"pheap pops in sorted order"
    QCheck.(list (float_range 0.0 1000.0))
    (fun keys ->
      let h = Des.Pheap.create () in
      List.iter (fun k -> Des.Pheap.push h ~priority:k ()) keys;
      let rec drain acc =
        match Des.Pheap.pop h with None -> List.rev acc | Some (k, ()) -> drain (k :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare keys)

(* Model-based property: arbitrary interleavings of pushes (Some key) and
   pops (None) against a stable sorted-list model. Keys are drawn from a
   tiny domain so equal-priority ties are common, exercising the FIFO
   tie-break through every push/pop/sift path. Values are push sequence
   numbers, so FIFO violations are directly observable. *)
let pheap_interleaving_property =
  (* Insert before the first strictly-greater key: stable among equals. *)
  let rec model_insert entry model =
    match model with
    | [] -> [ entry ]
    | (key, _) :: _ when fst entry < key -> entry :: model
    | head :: rest -> head :: model_insert entry rest
  in
  QCheck.Test.make ~count:500
    ~name:"pheap: push/pop interleavings match stable sorted model"
    QCheck.(list (option (int_bound 7)))
    (fun ops ->
      let h = Des.Pheap.create () in
      let model = ref [] in
      let next = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some k ->
              let key = float_of_int k in
              Des.Pheap.push h ~priority:key !next;
              model := model_insert (key, !next) !model;
              incr next
          | None -> (
              match (Des.Pheap.pop h, !model) with
              | None, [] -> ()
              | Some (key, value), (mkey, mvalue) :: rest ->
                  if key <> mkey || value <> mvalue then ok := false
                  else model := rest
              | Some _, [] | None, _ :: _ -> ok := false))
        ops;
      (* Drain whatever is left and check it too. *)
      let rec drain () =
        match (Des.Pheap.pop h, !model) with
        | None, [] -> ()
        | Some (key, value), (mkey, mvalue) :: rest ->
            if key <> mkey || value <> mvalue then ok := false
            else begin
              model := rest;
              drain ()
            end
        | Some _, [] | None, _ :: _ -> ok := false
      in
      drain ();
      !ok && Des.Pheap.is_empty h)

let pheap_drain_below_and_to () =
  let h = Des.Pheap.create () in
  for i = 0 to 9 do
    Des.Pheap.push h ~priority:(float_of_int i) i
  done;
  let seen = ref [] in
  Des.Pheap.drain_below h ~limit:5.0 (fun key value ->
      seen := (key, value) :: !seen;
      (* A push below the limit during the drain joins the same pass. *)
      if value = 2 then Des.Pheap.push h ~priority:2.5 99);
  check bool "strictly-below drain includes the re-entrant push" true
    (List.rev !seen
    = [ (0.0, 0); (1.0, 1); (2.0, 2); (2.5, 99); (3.0, 3); (4.0, 4) ]);
  seen := [];
  Des.Pheap.drain_to h ~limit:7.0 (fun key value -> seen := (key, value) :: !seen);
  check bool "inclusive drain takes the limit key" true
    (List.rev !seen = [ (5.0, 5); (6.0, 6); (7.0, 7) ]);
  check int "rest stays queued" 2 (Des.Pheap.length h)

let pheap_pop_unsafe_matches_pop () =
  let h = Des.Pheap.create () in
  let rng = Des.Rng.create 23L in
  for i = 0 to 499 do
    Des.Pheap.push h ~priority:(float_of_int (Des.Rng.int rng 10)) i
  done;
  let previous_key = ref neg_infinity in
  let count = ref 0 in
  while not (Des.Pheap.is_empty h) do
    let key = Des.Pheap.min_key h in
    ignore (Des.Pheap.pop_unsafe h);
    check bool "min_key non-decreasing" true (key >= !previous_key);
    previous_key := key;
    incr count
  done;
  check int "drained all" 500 !count

(* ------------------------------------------------------------------ *)
(* Engine *)

let engine_runs_in_time_order () =
  let engine = Des.Engine.create () in
  let log = ref [] in
  Des.Engine.schedule engine ~delay_ms:30.0 (fun () -> log := 3 :: !log);
  Des.Engine.schedule engine ~delay_ms:10.0 (fun () -> log := 1 :: !log);
  Des.Engine.schedule engine ~delay_ms:20.0 (fun () -> log := 2 :: !log);
  Des.Engine.run engine;
  check (Alcotest.list int) "time order" [ 1; 2; 3 ] (List.rev !log);
  check bool "clock advanced" true (Des.Engine.now engine >= 30.0)

let engine_simultaneous_fifo () =
  let engine = Des.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Des.Engine.schedule engine ~delay_ms:5.0 (fun () -> log := i :: !log)
  done;
  Des.Engine.run engine;
  check (Alcotest.list int) "fifo for equal times" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let engine_nested_scheduling () =
  let engine = Des.Engine.create () in
  let fired = ref 0 in
  Des.Engine.schedule engine ~delay_ms:1.0 (fun () ->
      Des.Engine.schedule engine ~delay_ms:1.0 (fun () ->
          Des.Engine.schedule engine ~delay_ms:1.0 (fun () -> fired := 3)));
  Des.Engine.run engine;
  check int "chain completed" 3 !fired;
  check bool "time is 3ms" true (Float.abs (Des.Engine.now engine -. 3.0) < 1e-9)

let engine_run_until () =
  let engine = Des.Engine.create () in
  let fired = ref [] in
  List.iter
    (fun d -> Des.Engine.schedule engine ~delay_ms:d (fun () -> fired := d :: !fired))
    [ 5.0; 15.0; 25.0 ];
  Des.Engine.run engine ~until_ms:16.0;
  check int "two fired" 2 (List.length !fired);
  check bool "clock clamped to limit" true (Des.Engine.now engine = 16.0);
  Des.Engine.run engine;
  check int "last fires later" 3 (List.length !fired)

let engine_cancel_timer () =
  let engine = Des.Engine.create () in
  let fired = ref false in
  let timer = Des.Engine.timer engine ~delay_ms:10.0 (fun () -> fired := true) in
  Des.Engine.schedule engine ~delay_ms:5.0 (fun () -> Des.Engine.cancel timer);
  Des.Engine.run engine;
  check bool "cancelled timer did not fire" false !fired

let engine_timer_pending_lifecycle () =
  let engine = Des.Engine.create () in
  let armed = Des.Engine.timer engine ~delay_ms:5.0 (fun () -> ()) in
  let cancelled = Des.Engine.timer engine ~delay_ms:10.0 (fun () -> ()) in
  check bool "armed timer pending" true (Des.Engine.timer_pending armed);
  Des.Engine.cancel cancelled;
  check bool "cancelled timer not pending" false (Des.Engine.timer_pending cancelled);
  Des.Engine.run engine;
  check bool "fired timer not pending" false (Des.Engine.timer_pending armed);
  (* Cancelling after firing stays a no-op: the timer is Fired, not
     Cancelled, and remains not pending. *)
  Des.Engine.cancel armed;
  check bool "cancel after fire is no-op" false (Des.Engine.timer_pending armed)

let engine_negative_delay_clamped () =
  let engine = Des.Engine.create () in
  Des.Engine.schedule engine ~delay_ms:5.0 (fun () ->
      Des.Engine.schedule engine ~delay_ms:(-10.0) (fun () ->
          check bool "clock did not go backwards" true (Des.Engine.now engine >= 5.0)));
  Des.Engine.run engine

let engine_past_absolute_time_clamped () =
  let engine = Des.Engine.create () in
  Des.Engine.schedule engine ~delay_ms:10.0 (fun () ->
      Des.Engine.schedule_at engine ~time_ms:1.0 (fun () ->
          check bool "not in the past" true (Des.Engine.now engine >= 10.0)));
  Des.Engine.run engine

let drain_minor_words ~label =
  let engine = Des.Engine.create () in
  for i = 0 to 999 do
    let delay_ms = float_of_int ((i * 7) mod 997) in
    ignore
      (match label with
      | None -> Des.Engine.timer engine ~delay_ms (fun () -> ())
      | Some label -> Des.Engine.timer ~label engine ~delay_ms (fun () -> ()))
  done;
  let before = Gc.minor_words () in
  Des.Engine.run_for engine 1_000.0;
  Gc.minor_words () -. before

let engine_untraced_drain_no_extra_allocation () =
  (* Labelled timers exist for the observability layer; with no tracer
     installed, draining them must allocate exactly as much as draining
     plain timers — the PR-1 hot-path budget must not regress when the
     obs layer is off. First rounds warm both paths. *)
  ignore (drain_minor_words ~label:None);
  ignore (drain_minor_words ~label:(Some "t"));
  let plain = drain_minor_words ~label:None in
  let labelled = drain_minor_words ~label:(Some "t") in
  check bool
    (Printf.sprintf "labelled drain allocates no more (plain %.0f, labelled %.0f)"
       plain labelled)
    true
    (labelled <= plain +. 64.0)

(* ------------------------------------------------------------------ *)
(* Shard: region-sharded engines under conservative lookahead *)

let shard_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  check bool "rejects zero lanes" true
    (invalid (fun () -> Des.Shard.create ~lanes:0 ~lookahead_ms:1.0 ()));
  check bool "rejects zero lookahead" true
    (invalid (fun () -> Des.Shard.create ~lanes:2 ~lookahead_ms:0.0 ()));
  check bool "rejects nan lookahead" true
    (invalid (fun () -> Des.Shard.create ~lanes:2 ~lookahead_ms:Float.nan ()))

let shard_cross_lane_ping_pong () =
  let shard = Des.Shard.create ~lanes:2 ~lookahead_ms:10.0 () in
  check int "two lanes" 2 (Des.Shard.lanes shard);
  let log = ref [] in
  let rec ping lane time =
    log := (lane, time) :: !log;
    if time < 95.0 then
      Des.Shard.schedule_cross shard ~src:lane ~dst:(1 - lane)
        ~time_ms:(time +. 10.0)
        (fun () -> ping (1 - lane) (time +. 10.0))
  in
  Des.Shard.schedule_cross shard ~src:0 ~dst:0 ~time_ms:0.0 (fun () -> ping 0 0.0);
  Des.Shard.run shard ~until_ms:200.0;
  let expected = List.init 11 (fun i -> (i mod 2, float_of_int (10 * i))) in
  check bool "alternating cross-lane deliveries in time order" true
    (List.rev !log = expected);
  check bool "barrier clock ends at the limit" true (Des.Shard.now shard = 200.0)

let shard_horizon_guard () =
  (* The conservative-lookahead safety contract: a mid-window cross send
     below the window horizon would race a lane that may already have
     drained past it, so it must be rejected loudly, and globals may only
     be armed between windows. *)
  let shard = Des.Shard.create ~lanes:2 ~lookahead_ms:10.0 () in
  let cross_rejected = ref false and global_rejected = ref false in
  Des.Shard.schedule_cross shard ~src:0 ~dst:0 ~time_ms:5.0 (fun () ->
      (try Des.Shard.schedule_cross shard ~src:0 ~dst:1 ~time_ms:6.0 (fun () -> ())
       with Invalid_argument _ -> cross_rejected := true);
      (try Des.Shard.schedule_global shard ~time_ms:50.0 (fun () -> ())
       with Invalid_argument _ -> global_rejected := true));
  Des.Shard.run shard ~until_ms:100.0;
  check bool "below-horizon cross send rejected" true !cross_rejected;
  check bool "mid-window global rejected" true !global_rejected

let shard_global_barrier_aligns_clocks () =
  let shard = Des.Shard.create ~lanes:3 ~lookahead_ms:5.0 () in
  for lane = 0 to 2 do
    for k = 1 to 9 do
      Des.Shard.schedule_cross shard ~src:lane ~dst:lane
        ~time_ms:(float_of_int ((k * 7) + lane))
        (fun () -> ())
    done
  done;
  let observed = ref [] in
  Des.Shard.schedule_global shard ~time_ms:33.0 (fun () ->
      observed := Array.to_list (Array.map Des.Engine.now (Des.Shard.engines shard)));
  Des.Shard.run shard ~until_ms:100.0;
  check bool "every lane clock agrees when the global runs" true
    (!observed = [ 33.0; 33.0; 33.0 ]);
  check bool "no window open afterwards" false (Des.Shard.in_window shard)

let shard_fleet_matches_sequential () =
  (* The worker-domain count moves wall time only: the same cascade run
     with 1 and 4 domains must produce identical per-lane logs. Each lane
     writes only its own slot, so the logs are race-free under the fleet;
     the window barriers and the final joins publish them. *)
  let lanes = 4 in
  let run workers =
    let shard = Des.Shard.create ~seed:11L ~workers ~lanes ~lookahead_ms:4.0 () in
    let logs = Array.init lanes (fun _ -> ref []) in
    let rec hop lane time ttl =
      logs.(lane) := (time, ttl) :: !(logs.(lane));
      if ttl > 0 then begin
        let dst = (lane + ttl) mod lanes in
        Des.Shard.schedule_cross shard ~src:lane ~dst ~time_ms:(time +. 4.0)
          (fun () -> hop dst (time +. 4.0) (ttl - 1));
        Des.Engine.schedule (Des.Shard.engine shard lane) ~delay_ms:1.0 (fun () ->
            logs.(lane) := (time +. 1.0, -ttl) :: !(logs.(lane)))
      end
    in
    for lane = 0 to lanes - 1 do
      for k = 0 to 7 do
        let start = float_of_int ((lane * 3) + (k * 5)) in
        Des.Shard.schedule_cross shard ~src:lane ~dst:lane ~time_ms:start
          (fun () -> hop lane start (2 + ((lane + k) mod 3)))
      done
    done;
    Des.Shard.run shard ~until_ms:500.0;
    Array.map (fun log -> List.rev !log) logs
  in
  check bool "fleet run identical to sequential" true (run 1 = run 4)

let shard_lookahead_monotone_property =
  (* Conservative-lookahead soundness is monotone: any lookahead that is
     still a lower bound on the cross-lane delivery delay yields the same
     per-lane timelines — only the window widths change. (The order in
     which a sequential drain interleaves *different* lanes within a
     window is a scheduling artifact, invisible to the simulation: lanes
     observe each other through messages only, and those land on the
     destination's own timeline.) Random cascades whose cross messages
     travel exactly 20ms ahead must log identically at L = 1, 7 and 20. *)
  QCheck.Test.make ~count:60 ~name:"shard: lookahead-horizon monotonicity"
    QCheck.(
      list_of_size
        Gen.(int_range 1 20)
        (triple (int_bound 2) (int_bound 40) (int_bound 3)))
    (fun seeds ->
      let lanes = 3 in
      let run lookahead_ms =
        let shard = Des.Shard.create ~lanes ~lookahead_ms () in
        let logs = Array.init lanes (fun _ -> ref []) in
        let rec hop lane time ttl =
          logs.(lane) := (time, ttl) :: !(logs.(lane));
          if ttl > 0 then
            let dst = (lane + 1) mod lanes in
            Des.Shard.schedule_cross shard ~src:lane ~dst ~time_ms:(time +. 20.0)
              (fun () -> hop dst (time +. 20.0) (ttl - 1))
        in
        List.iter
          (fun (lane, start, ttl) ->
            let start = float_of_int start in
            Des.Shard.schedule_cross shard ~src:lane ~dst:lane ~time_ms:start
              (fun () -> hop lane start ttl))
          seeds;
        Des.Shard.run shard ~until_ms:300.0;
        Array.map (fun log -> List.rev !log) logs
      in
      let reference = run 20.0 in
      run 7.0 = reference && run 1.0 = reference)

let shard_cross_delivery_order_property =
  (* Deliveries buffered during one window flush in (dst, src, append)
     order, so a destination executes same-time messages in source order,
     then emission order — a pure function of the simulation, never of
     domain scheduling. The model predicts the exact sequence. *)
  QCheck.Test.make ~count:100 ~name:"shard: cross-domain delivery ordering"
    QCheck.(
      list_of_size
        Gen.(int_range 1 25)
        (triple (int_bound 2) (int_bound 2) (int_bound 1)))
    (fun messages ->
      let lanes = 3 in
      let shard = Des.Shard.create ~lanes ~lookahead_ms:10.0 () in
      let tagged = List.mapi (fun i (src, dst, late) -> (i, src, dst, late)) messages in
      let delivery_ms late = if late = 1 then 150.0 else 100.0 in
      let logs = Array.make lanes [] in
      (* One emitter event per source lane at t=0 sends that source's
         messages in list order; all three emitters share one window. *)
      for src = 0 to lanes - 1 do
        Des.Shard.schedule_cross shard ~src ~dst:src ~time_ms:0.0 (fun () ->
            List.iter
              (fun (tag, msg_src, dst, late) ->
                if msg_src = src then
                  Des.Shard.schedule_cross shard ~src ~dst
                    ~time_ms:(delivery_ms late) (fun () ->
                      logs.(dst) <- tag :: logs.(dst)))
              tagged)
      done;
      Des.Shard.run shard ~until_ms:200.0;
      let expected dst =
        let at time =
          List.concat_map
            (fun src ->
              List.filter_map
                (fun (tag, msg_src, msg_dst, late) ->
                  if msg_src = src && msg_dst = dst && delivery_ms late = time then
                    Some tag
                  else None)
                tagged)
            [ 0; 1; 2 ]
        in
        at 100.0 @ at 150.0
      in
      List.for_all (fun dst -> List.rev logs.(dst) = expected dst) [ 0; 1; 2 ])

let suite =
  [
    Alcotest.test_case "rng: deterministic by seed" `Quick rng_deterministic;
    Alcotest.test_case "rng: copy continues the stream" `Quick rng_copy_independent;
    Alcotest.test_case "rng: split diverges" `Quick rng_split_diverges;
    Alcotest.test_case "rng: int bounds" `Quick rng_int_bounds;
    Alcotest.test_case "rng: float bounds" `Quick rng_float_bounds;
    Alcotest.test_case "rng: gaussian moments" `Quick rng_gaussian_moments;
    Alcotest.test_case "rng: exponential mean" `Quick rng_exponential_mean;
    Alcotest.test_case "rng: bernoulli rate" `Quick rng_bool_probability;
    Alcotest.test_case "rng: shuffle permutes" `Quick rng_shuffle_permutes;
    Alcotest.test_case "pheap: sorted drain" `Quick pheap_ordering;
    Alcotest.test_case "pheap: fifo on ties" `Quick pheap_fifo_ties;
    Alcotest.test_case "pheap: drain_below / drain_to" `Quick pheap_drain_below_and_to;
    Alcotest.test_case "pheap: pop_unsafe/min_key drain" `Quick pheap_pop_unsafe_matches_pop;
    QCheck_alcotest.to_alcotest pheap_property;
    QCheck_alcotest.to_alcotest pheap_interleaving_property;
    Alcotest.test_case "engine: time order" `Quick engine_runs_in_time_order;
    Alcotest.test_case "engine: fifo for simultaneous" `Quick engine_simultaneous_fifo;
    Alcotest.test_case "engine: nested scheduling" `Quick engine_nested_scheduling;
    Alcotest.test_case "engine: run until" `Quick engine_run_until;
    Alcotest.test_case "engine: cancellable timers" `Quick engine_cancel_timer;
    Alcotest.test_case "engine: timer_pending lifecycle" `Quick engine_timer_pending_lifecycle;
    Alcotest.test_case "engine: negative delay clamped" `Quick engine_negative_delay_clamped;
    Alcotest.test_case "engine: past schedule clamped" `Quick engine_past_absolute_time_clamped;
    Alcotest.test_case "engine: obs-off drain allocation" `Quick
      engine_untraced_drain_no_extra_allocation;
    Alcotest.test_case "shard: parameter validation" `Quick shard_validation;
    Alcotest.test_case "shard: cross-lane ping-pong" `Quick shard_cross_lane_ping_pong;
    Alcotest.test_case "shard: horizon guard" `Quick shard_horizon_guard;
    Alcotest.test_case "shard: global barrier aligns clocks" `Quick
      shard_global_barrier_aligns_clocks;
    Alcotest.test_case "shard: fleet matches sequential" `Quick
      shard_fleet_matches_sequential;
    QCheck_alcotest.to_alcotest shard_lookahead_monotone_property;
    QCheck_alcotest.to_alcotest shard_cross_delivery_order_property;
  ]
