(* Tests for the simulated geo network: latency model, delivery, loss,
   crashes and partitions. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let five () = Array.of_list Geonet.Region.default_five

let make ?drop ?jitter () =
  let engine = Des.Engine.create ~seed:5L () in
  let network =
    Geonet.Network.create engine ~regions:(five ()) ?drop_probability:drop
      ?jitter_fraction:jitter ()
  in
  (engine, network)

let region_symmetry () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check (Alcotest.float 1e-9) "rtt symmetric" (Geonet.Region.rtt_ms a b)
            (Geonet.Region.rtt_ms b a))
        Geonet.Region.all)
    Geonet.Region.all

let region_intra_is_fast () =
  List.iter
    (fun r -> check bool "intra-region ~1ms" true (Geonet.Region.rtt_ms r r <= 2.0))
    Geonet.Region.all

let region_of_string_roundtrip () =
  List.iter
    (fun r ->
      match Geonet.Region.of_string (Geonet.Region.name r) with
      | Some r' -> check bool "roundtrip" true (r = r')
      | None -> Alcotest.fail "of_string failed")
    Geonet.Region.all;
  check bool "unknown rejected" true (Geonet.Region.of_string "mars-east1" = None)

let delivery_with_latency () =
  let engine, network = make ~jitter:0.0 () in
  let received = ref None in
  Geonet.Network.register network ~node:1 (fun envelope ->
      received := Some (envelope.Geonet.Network.src, envelope.Geonet.Network.payload,
                        Des.Engine.now engine));
  Geonet.Network.send network ~src:0 ~dst:1 "hello";
  Des.Engine.run engine;
  match !received with
  | Some (src, payload, at) ->
      check int "src" 0 src;
      check Alcotest.string "payload" "hello" payload;
      let expected = Geonet.Network.latency_ms network ~src:0 ~dst:1 in
      check (Alcotest.float 1e-6) "arrives after one-way latency" expected at
  | None -> Alcotest.fail "not delivered"

let broadcast_reaches_everyone () =
  let engine, network = make () in
  let got = Array.make 5 false in
  for node = 0 to 4 do
    Geonet.Network.register network ~node (fun _ -> got.(node) <- true)
  done;
  Geonet.Network.broadcast network ~src:2 ();
  Des.Engine.run engine;
  check (Alcotest.array bool) "all but source" [| true; true; false; true; true |] got

let drops_lose_messages () =
  let engine, network = make ~drop:1.0 () in
  let received = ref 0 in
  Geonet.Network.register network ~node:1 (fun _ -> incr received);
  for _ = 1 to 50 do
    Geonet.Network.send network ~src:0 ~dst:1 ()
  done;
  Des.Engine.run engine;
  check int "all dropped" 0 !received;
  check int "accounted as dropped" 50 (Geonet.Network.stats_dropped network)

let drop_rate_statistical () =
  let engine, network = make ~drop:0.3 () in
  let received = ref 0 in
  Geonet.Network.register network ~node:1 (fun _ -> incr received);
  for _ = 1 to 5_000 do
    Geonet.Network.send network ~src:0 ~dst:1 ()
  done;
  Des.Engine.run engine;
  let rate = 1.0 -. (float_of_int !received /. 5_000.0) in
  check bool "loss near 30%" true (Float.abs (rate -. 0.3) < 0.03)

let crashed_node_receives_nothing () =
  let engine, network = make () in
  let received = ref 0 in
  Geonet.Network.register network ~node:1 (fun _ -> incr received);
  Geonet.Network.crash network 1;
  Geonet.Network.send network ~src:0 ~dst:1 ();
  Des.Engine.run engine;
  check int "crashed target" 0 !received;
  Geonet.Network.recover network 1;
  Geonet.Network.send network ~src:0 ~dst:1 ();
  Des.Engine.run engine;
  check int "delivered after recovery" 1 !received

let crashed_node_sends_nothing () =
  let engine, network = make () in
  let received = ref 0 in
  Geonet.Network.register network ~node:1 (fun _ -> incr received);
  Geonet.Network.crash network 0;
  Geonet.Network.send network ~src:0 ~dst:1 ();
  Des.Engine.run engine;
  check int "crashed source" 0 !received

let partition_blocks_cross_traffic () =
  let engine, network = make () in
  let received = Array.make 5 0 in
  for node = 0 to 4 do
    Geonet.Network.register network ~node (fun _ -> received.(node) <- received.(node) + 1)
  done;
  Geonet.Network.set_partition network [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  Geonet.Network.send network ~src:0 ~dst:1 ();
  Geonet.Network.send network ~src:0 ~dst:3 ();
  Geonet.Network.send network ~src:3 ~dst:4 ();
  Geonet.Network.send network ~src:4 ~dst:2 ();
  Des.Engine.run engine;
  check int "same side A" 1 received.(1);
  check int "cross blocked" 0 received.(3);
  check int "same side B" 1 received.(4);
  check int "cross blocked reverse" 0 received.(2);
  check bool "reachable within" true (Geonet.Network.reachable network 0 2);
  check bool "unreachable across" false (Geonet.Network.reachable network 0 4)

let heal_restores_traffic () =
  let engine, network = make () in
  let received = ref 0 in
  Geonet.Network.register network ~node:3 (fun _ -> incr received);
  Geonet.Network.set_partition network [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  Geonet.Network.send network ~src:0 ~dst:3 ();
  Des.Engine.run engine;
  check int "blocked" 0 !received;
  Geonet.Network.clear_partition network;
  Geonet.Network.send network ~src:0 ~dst:3 ();
  Des.Engine.run engine;
  check int "healed" 1 !received

let partition_checked_at_delivery () =
  (* A message in flight when the partition heals still gets through:
     delay and disconnection are indistinguishable in an asynchronous
     network. *)
  let engine, network = make () in
  let received = ref 0 in
  Geonet.Network.register network ~node:3 (fun _ -> incr received);
  Geonet.Network.send network ~src:0 ~dst:3 ();
  (* Heal before the in-flight message lands. *)
  Geonet.Network.set_partition network [ [ 0 ]; [ 3 ] ];
  Des.Engine.schedule engine ~delay_ms:1.0 (fun () -> Geonet.Network.clear_partition network);
  Des.Engine.run engine;
  check int "late heal lets it through" 1 !received

let unlisted_nodes_are_isolated () =
  let engine, network = make () in
  let received = ref 0 in
  Geonet.Network.register network ~node:4 (fun _ -> incr received);
  Geonet.Network.set_partition network [ [ 0; 1 ] ];
  Geonet.Network.send network ~src:0 ~dst:4 ();
  Geonet.Network.send network ~src:2 ~dst:4 ();
  Des.Engine.run engine;
  check int "singleton groups" 0 !received

let reregistration_replaces_handler () =
  (* A recovering site re-registers; the fresh handler must win or stale
     closures over discarded state would keep receiving traffic. *)
  let engine, network = make () in
  let old_handler = ref 0 and new_handler = ref 0 in
  Geonet.Network.register network ~node:1 (fun _ -> incr old_handler);
  Geonet.Network.register network ~node:1 (fun _ -> incr new_handler);
  Geonet.Network.send network ~src:0 ~dst:1 ();
  Des.Engine.run engine;
  check int "old handler silent" 0 !old_handler;
  check int "new handler receives" 1 !new_handler

let crash_while_partitioned_no_stale () =
  (* Messages sent at a site that is crashed behind a partition must not
     surface after both faults heal: the target was down at delivery
     time, so the sends are gone, not queued. *)
  let engine, network = make () in
  let received = ref 0 in
  Geonet.Network.register network ~node:3 (fun _ -> incr received);
  Geonet.Network.set_partition network [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  Geonet.Network.crash network 3;
  Geonet.Network.send network ~src:0 ~dst:3 ();
  Geonet.Network.send network ~src:4 ~dst:3 ();
  Geonet.Network.clear_partition network;
  Des.Engine.run engine;
  check int "dropped while down" 0 !received;
  Geonet.Network.recover network 3;
  Des.Engine.run engine;
  check int "nothing stale after recovery" 0 !received;
  Geonet.Network.send network ~src:0 ~dst:3 ();
  Des.Engine.run engine;
  check int "fresh traffic flows" 1 !received

let one_way_cut_is_directional () =
  let engine, network = make () in
  let at_0 = ref 0 and at_3 = ref 0 in
  Geonet.Network.register network ~node:0 (fun _ -> incr at_0);
  Geonet.Network.register network ~node:3 (fun _ -> incr at_3);
  Geonet.Network.block_one_way network ~src:0 ~dst:3;
  check bool "cut direction closed" false (Geonet.Network.link_open network ~src:0 ~dst:3);
  check bool "reverse open" true (Geonet.Network.link_open network ~src:3 ~dst:0);
  let dropped_before = Geonet.Network.stats_dropped network in
  Geonet.Network.send network ~src:0 ~dst:3 ();
  Geonet.Network.send network ~src:3 ~dst:0 ();
  Des.Engine.run engine;
  check int "cut direction blocked" 0 !at_3;
  check int "reverse delivered" 1 !at_0;
  check int "blocked send counted dropped" (dropped_before + 1)
    (Geonet.Network.stats_dropped network);
  Geonet.Network.unblock_one_way network ~src:0 ~dst:3;
  Geonet.Network.send network ~src:0 ~dst:3 ();
  Des.Engine.run engine;
  check int "unblocked" 1 !at_3

let duplication_delivers_twice () =
  let engine, network = make ~drop:0.0 () in
  let received = ref 0 in
  Geonet.Network.register network ~node:1 (fun _ -> incr received);
  Geonet.Network.set_duplicate_probability network 1.0;
  Geonet.Network.send network ~src:0 ~dst:1 ();
  Des.Engine.run engine;
  check int "delivered twice" 2 !received;
  check int "duplication counted" 1 (Geonet.Network.stats_duplicated network);
  check int "one logical send" 1 (Geonet.Network.stats_sent network);
  Geonet.Network.set_duplicate_probability network 0.0;
  Geonet.Network.send network ~src:0 ~dst:1 ();
  Des.Engine.run engine;
  check int "single again" 3 !received

let link_drop_override () =
  let engine, network = make ~drop:0.0 () in
  let at_1 = ref 0 and at_2 = ref 0 in
  Geonet.Network.register network ~node:1 (fun _ -> incr at_1);
  Geonet.Network.register network ~node:2 (fun _ -> incr at_2);
  Geonet.Network.set_link_drop network ~src:0 ~dst:1 (Some 1.0);
  for _ = 1 to 10 do
    Geonet.Network.send network ~src:0 ~dst:1 ();
    Geonet.Network.send network ~src:0 ~dst:2 ()
  done;
  Des.Engine.run engine;
  check int "surged link loses all" 0 !at_1;
  check int "other link untouched" 10 !at_2;
  Geonet.Network.clear_link_overrides network;
  Geonet.Network.send network ~src:0 ~dst:1 ();
  Des.Engine.run engine;
  check int "override cleared" 1 !at_1

let latency_spike_delays_arrival () =
  let engine, network = make ~jitter:0.0 () in
  let arrived_at = ref nan in
  Geonet.Network.register network ~node:1 (fun _ -> arrived_at := Des.Engine.now engine);
  Geonet.Network.set_link_extra_latency network ~src:0 ~dst:1 250.0;
  Geonet.Network.send network ~src:0 ~dst:1 ();
  Des.Engine.run engine;
  let base = Geonet.Network.latency_ms network ~src:0 ~dst:1 in
  check (Alcotest.float 1e-6) "base + spike" (base +. 250.0) !arrived_at

let fault_parameter_validation () =
  let invalid f = try f (); false with Invalid_argument _ -> true in
  let engine = Des.Engine.create ~seed:5L () in
  let fresh () = Geonet.Network.create engine ~regions:(five ()) () in
  check bool "create rejects p > 1" true
    (invalid (fun () ->
         ignore (Geonet.Network.create engine ~regions:(five ()) ~drop_probability:1.5 ())));
  check bool "create rejects p < 0" true
    (invalid (fun () ->
         ignore
           (Geonet.Network.create engine ~regions:(five ()) ~drop_probability:(-0.1) ())));
  check bool "create rejects NaN drop" true
    (invalid (fun () ->
         ignore (Geonet.Network.create engine ~regions:(five ()) ~drop_probability:nan ())));
  check bool "create rejects negative jitter" true
    (invalid (fun () ->
         ignore (Geonet.Network.create engine ~regions:(five ()) ~jitter_fraction:(-0.5) ())));
  check bool "create rejects NaN jitter" true
    (invalid (fun () ->
         ignore (Geonet.Network.create engine ~regions:(five ()) ~jitter_fraction:nan ())));
  check bool "set_drop_probability rejects NaN" true
    (invalid (fun () -> Geonet.Network.set_drop_probability (fresh ()) nan));
  check bool "set_drop_probability rejects 2.0" true
    (invalid (fun () -> Geonet.Network.set_drop_probability (fresh ()) 2.0));
  check bool "set_duplicate_probability rejects NaN" true
    (invalid (fun () -> Geonet.Network.set_duplicate_probability (fresh ()) nan));
  check bool "set_link_drop rejects out-of-range" true
    (invalid (fun () -> Geonet.Network.set_link_drop (fresh ()) ~src:0 ~dst:1 (Some 1.2)));
  check bool "set_link_extra_latency rejects negative" true
    (invalid (fun () ->
         Geonet.Network.set_link_extra_latency (fresh ()) ~src:0 ~dst:1 (-1.0)));
  (* In-range values still accepted. *)
  let network = fresh () in
  Geonet.Network.set_drop_probability network 0.5;
  Geonet.Network.set_link_drop network ~src:0 ~dst:1 (Some 0.0);
  Geonet.Network.set_link_drop network ~src:0 ~dst:1 None;
  check bool "valid values accepted" true (Geonet.Network.drop_probability network = 0.5)

let suite =
  [
    Alcotest.test_case "region: rtt symmetric" `Quick region_symmetry;
    Alcotest.test_case "region: intra fast" `Quick region_intra_is_fast;
    Alcotest.test_case "region: name roundtrip" `Quick region_of_string_roundtrip;
    Alcotest.test_case "network: delivery with latency" `Quick delivery_with_latency;
    Alcotest.test_case "network: broadcast" `Quick broadcast_reaches_everyone;
    Alcotest.test_case "network: full loss" `Quick drops_lose_messages;
    Alcotest.test_case "network: statistical loss" `Quick drop_rate_statistical;
    Alcotest.test_case "network: crash target" `Quick crashed_node_receives_nothing;
    Alcotest.test_case "network: crash source" `Quick crashed_node_sends_nothing;
    Alcotest.test_case "network: partition" `Quick partition_blocks_cross_traffic;
    Alcotest.test_case "network: heal" `Quick heal_restores_traffic;
    Alcotest.test_case "network: partition at delivery time" `Quick partition_checked_at_delivery;
    Alcotest.test_case "network: unlisted nodes isolated" `Quick unlisted_nodes_are_isolated;
    Alcotest.test_case "network: re-registration replaces handler" `Quick
      reregistration_replaces_handler;
    Alcotest.test_case "network: crash behind partition leaves nothing stale" `Quick
      crash_while_partitioned_no_stale;
    Alcotest.test_case "network: one-way cut is directional" `Quick one_way_cut_is_directional;
    Alcotest.test_case "network: duplication delivers twice" `Quick duplication_delivers_twice;
    Alcotest.test_case "network: per-link drop override" `Quick link_drop_override;
    Alcotest.test_case "network: latency spike delays arrival" `Quick
      latency_spike_delays_arrival;
    Alcotest.test_case "network: fault parameter validation" `Quick fault_parameter_validation;
  ]
