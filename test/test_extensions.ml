(* Tests for the extension modules: Holt-Winters forecasting, the
   pluggable reallocation policies, the hierarchical org tracker, and the
   CRDT counter comparison. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Holt-Winters *)

let hw_learns_seasonality () =
  let period = 12 in
  let series =
    Array.init 240 (fun i ->
        100.0 +. (0.5 *. float_of_int i)
        +. (20.0 *. sin (2.0 *. Float.pi *. float_of_int i /. float_of_int period)))
  in
  let train, test = Stats.Series.split_at_fraction 0.8 series in
  let model = Ml.Holt_winters.fit ~period train in
  let hw = Ml.Holt_winters.forecaster model in
  let rw = Ml.Random_walk.forecaster () in
  let mae_hw = Ml.Forecaster.rolling_mae hw ~train ~test in
  let mae_rw = Ml.Forecaster.rolling_mae rw ~train ~test in
  check bool
    (Printf.sprintf "hw %.2f < rw %.2f on seasonal+trend data" mae_hw mae_rw)
    true (mae_hw < mae_rw)

let hw_components_sane () =
  let period = 4 in
  let series = Array.init 40 (fun i -> [| 10.0; 20.0; 30.0; 20.0 |].(i mod 4)) in
  let model = Ml.Holt_winters.fit ~period series in
  let level, trend, seasonal = Ml.Holt_winters.components model in
  check bool "level near the mean" true (Float.abs (level -. 20.0) < 3.0);
  check bool "no spurious trend" true (Float.abs trend < 0.5);
  check int "seasonal length" period (Array.length seasonal)

let hw_input_validation () =
  Alcotest.check_raises "short series"
    (Invalid_argument "Holt_winters.fit: need at least two periods") (fun () ->
      ignore (Ml.Holt_winters.fit ~period:10 (Array.make 15 1.0)));
  Alcotest.check_raises "bad alpha" (Invalid_argument "Holt_winters: alpha outside (0,1)")
    (fun () -> ignore (Ml.Holt_winters.fit ~alpha:1.5 ~period:2 (Array.make 10 1.0)))

(* ------------------------------------------------------------------ *)
(* Reallocation policies *)

open Samya.Reallocation

let entry site tokens_left tokens_wanted = { site; tokens_left; tokens_wanted }

let entries_gen =
  QCheck.Gen.(
    let entry_gen site =
      map2 (fun tl tw -> { site; tokens_left = tl; tokens_wanted = tw })
        (int_bound 2_000) (int_bound 800)
    in
    int_range 1 12 >>= fun n -> flatten_l (List.init n entry_gen))

let arbitrary_entries = QCheck.make ~print:(fun es -> string_of_int (List.length es)) entries_gen

let policies = [ Max_usage; Max_requests; Proportional ]

let all_policies_conserve =
  QCheck.Test.make ~count:300 ~name:"every policy conserves tokens" arbitrary_entries
    (fun entries ->
      List.for_all
        (fun policy -> conserves_tokens entries (redistribute_with policy entries))
        policies)

let max_requests_satisfies_at_least_as_many =
  QCheck.Test.make ~count:300
    ~name:"max-requests satisfies >= as many requests as max-usage" arbitrary_entries
    (fun entries ->
      let satisfied policy =
        redistribute_with policy entries
        |> List.filter (fun g -> g.wanted_satisfied)
        |> List.length
      in
      satisfied Max_requests >= satisfied Max_usage)

let proportional_scales () =
  (* Pool 100 against wants 150+50: grants scale by 1/2. *)
  let entries = [ entry 0 0 150; entry 1 0 50; entry 2 100 0 ] in
  let grants = redistribute_with Proportional entries in
  let grant site = (List.find (fun g -> g.site = site) grants).new_tokens_left in
  check bool "big request scaled" true (grant 0 >= 75 && grant 0 <= 76);
  check bool "small request scaled" true (grant 1 >= 25 && grant 1 <= 26);
  check bool "tokens conserved" true (conserves_tokens entries grants)

let max_requests_keeps_small () =
  (* Pool 100 against {90, 80}: max-usage keeps 90; max-requests keeps 80
     only if that lets more requests through — here both keep exactly one,
     but different ones. *)
  let entries = [ entry 0 0 90; entry 1 0 80; entry 2 100 0 ] in
  let usage = redistribute_with Max_usage entries in
  let requests = redistribute_with Max_requests entries in
  let satisfied grants site = (List.find (fun g -> g.site = site) grants).wanted_satisfied in
  check bool "max-usage keeps the large" true (satisfied usage 0);
  check bool "max-requests keeps the small" true (satisfied requests 1);
  check bool "max-requests drops the large" false (satisfied requests 0)

let cluster_uses_configured_policy () =
  (* A proportional-policy cluster still conserves and enforces. *)
  let config =
    { Samya.Config.default with reallocation_policy = Samya.Reallocation.Proportional }
  in
  let regions = Array.of_list Geonet.Region.default_five in
  let cluster = Samya.Cluster.create ~seed:9L ~config ~regions () in
  Samya.Cluster.init_entity cluster ~entity:"VM" ~maximum:2_000;
  let engine = Samya.Cluster.engine cluster in
  let granted = ref 0 in
  for i = 0 to 1_499 do
    Des.Engine.schedule_at engine
      ~time_ms:(float_of_int i *. 5.0)
      (fun () ->
        Samya.Cluster.submit cluster ~region:regions.(0)
          (Samya.Types.Acquire { entity = "VM"; amount = 1; deadline_ms = infinity })
          ~reply:(function Samya.Types.Granted -> incr granted | _ -> ()))
  done;
  Des.Engine.run engine ~until_ms:120_000.0;
  check bool "served beyond the local share" true (!granted > 500);
  check bool "invariant" true
    (Samya.Cluster.check_invariant cluster ~entity:"VM" ~maximum:2_000 = Ok ())

(* ------------------------------------------------------------------ *)
(* Hierarchy *)

let org_setup () =
  let regions = Array.of_list Geonet.Region.default_five in
  let cluster = Samya.Cluster.create ~seed:5L ~config:Samya.Config.default ~regions () in
  let org = Hierarchy.Org.create ~cluster ~org_name:"acme" ~root_limit:1_000 in
  (cluster, org)

let org_paths_and_ancestors () =
  let _, org = org_setup () in
  let root = Hierarchy.Org.root org in
  let retail = Hierarchy.Org.add_unit org ~parent:root ~name:"retail" () in
  let clothing = Hierarchy.Org.add_unit org ~parent:retail ~name:"clothing" ~limit:200 () in
  check Alcotest.string "path" "acme/retail/clothing" (Hierarchy.Org.path org clothing);
  let ancestors = Hierarchy.Org.limited_ancestors org clothing in
  (* clothing (limited), retail skipped (unlimited), root (limited) *)
  check int "two limited levels" 2 (List.length ancestors);
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Org.add_unit: duplicate unit name under this parent") (fun () ->
      ignore (Hierarchy.Org.add_unit org ~parent:retail ~name:"clothing" ()))

let org_charges_every_level () =
  let cluster, org = org_setup () in
  let engine = Samya.Cluster.engine cluster in
  let root = Hierarchy.Org.root org in
  let team = Hierarchy.Org.add_unit org ~parent:root ~name:"team" ~limit:300 () in
  let response = ref None in
  Des.Engine.schedule engine ~delay_ms:1.0 (fun () ->
      Hierarchy.Org.consume org ~node:team ~region:Geonet.Region.Us_west1 ~amount:50
        ~reply:(fun r -> response := Some r));
  Des.Engine.run engine ~until_ms:60_000.0;
  check bool "granted" true (!response = Some Samya.Types.Granted);
  check int "team charged" 50 (Hierarchy.Org.usage org team);
  check int "root charged" 50 (Hierarchy.Org.usage org root)

let org_team_limit_binds () =
  let cluster, org = org_setup () in
  let engine = Samya.Cluster.engine cluster in
  let root = Hierarchy.Org.root org in
  let team = Hierarchy.Org.add_unit org ~parent:root ~name:"team" ~limit:100 () in
  let granted = ref 0 and denied = ref 0 in
  for i = 0 to 199 do
    Des.Engine.schedule_at engine
      ~time_ms:(float_of_int i *. 100.0)
      (fun () ->
        Hierarchy.Org.consume org ~node:team ~region:Geonet.Region.Us_west1 ~amount:1
          ~reply:(function
            | Samya.Types.Granted -> incr granted
            | _ -> incr denied))
  done;
  Des.Engine.run engine ~until_ms:300_000.0;
  (* Avantan[(n+1)/2] pools a majority of sites per instance, so only the
     quorum's share of the team budget flows to the hot region; the limit
     itself can never be exceeded. *)
  check bool (Printf.sprintf "a quorum's worth granted (%d)" !granted) true (!granted >= 40);
  check bool "never beyond the team limit" true (!granted <= 100);
  check int "grants + denials account for all" 200 (!granted + !denied);
  check int "team usage equals grants" !granted (Hierarchy.Org.usage org team);
  (* The root was charged only for grants: compensation released the
     root-level tokens of denied attempts. *)
  check int "root usage equals grants" !granted (Hierarchy.Org.usage org root)

let org_release_returns_every_level () =
  let cluster, org = org_setup () in
  let engine = Samya.Cluster.engine cluster in
  let root = Hierarchy.Org.root org in
  let team = Hierarchy.Org.add_unit org ~parent:root ~name:"team" ~limit:300 () in
  Des.Engine.schedule engine ~delay_ms:1.0 (fun () ->
      Hierarchy.Org.consume org ~node:team ~region:Geonet.Region.Us_west1 ~amount:40
        ~reply:(fun _ ->
          Hierarchy.Org.return_resources org ~node:team ~region:Geonet.Region.Us_west1
            ~amount:15 ~reply:(fun _ -> ())));
  Des.Engine.run engine ~until_ms:60_000.0;
  check int "team net" 25 (Hierarchy.Org.usage org team);
  check int "root net" 25 (Hierarchy.Org.usage org root)

(* ------------------------------------------------------------------ *)
(* CRDT counter *)

let crdt_converges () =
  let crdt = Baselines.Crdt_counter.create ~seed:3L () in
  Baselines.Crdt_counter.init_entity crdt ~entity:"VM" ~maximum:1_000_000;
  let engine = Baselines.Crdt_counter.engine crdt in
  let regions = Array.of_list Geonet.Region.default_five in
  Array.iter
    (fun region ->
      for _ = 1 to 100 do
        Baselines.Crdt_counter.submit crdt ~region
          (Samya.Types.Acquire { entity = "VM"; amount = 1; deadline_ms = infinity })
          ~reply:(fun _ -> ())
      done)
    regions;
  Des.Engine.run engine ~until_ms:30_000.0;
  check int "converged total" 500 (Baselines.Crdt_counter.total_acquired crdt ~entity:"VM");
  (* After gossip settles, a read anywhere sees the full total. *)
  let seen = ref None in
  Baselines.Crdt_counter.submit crdt ~region:Geonet.Region.Us_west1
    (Samya.Types.Read { entity = "VM"; deadline_ms = infinity })
    ~reply:(fun r -> seen := Some r);
  Des.Engine.run engine ~until_ms:35_000.0;
  check bool "read sees converged availability" true
    (!seen = Some (Samya.Types.Read_result { tokens_available = 999_500 }))

let crdt_cannot_enforce_the_constraint () =
  (* Five regions race for a limit of 100: each local view says "fine"
     until gossip arrives, so the converged total overshoots. Samya under
     the same race never does (its qcheck invariants); this is the §2
     comparison made executable. *)
  let crdt = Baselines.Crdt_counter.create ~seed:3L () in
  Baselines.Crdt_counter.init_entity crdt ~entity:"VM" ~maximum:100;
  let engine = Baselines.Crdt_counter.engine crdt in
  let regions = Array.of_list Geonet.Region.default_five in
  Array.iter
    (fun region ->
      for _ = 1 to 80 do
        Baselines.Crdt_counter.submit crdt ~region
          (Samya.Types.Acquire { entity = "VM"; amount = 1; deadline_ms = infinity })
          ~reply:(fun _ -> ())
      done)
    regions;
  Des.Engine.run engine ~until_ms:30_000.0;
  let overshoot = Baselines.Crdt_counter.overshoot crdt ~entity:"VM" in
  check bool
    (Printf.sprintf "constraint violated by %d tokens" overshoot)
    true (overshoot > 0)

let suite =
  [
    Alcotest.test_case "holt-winters: beats RW on seasonal data" `Quick hw_learns_seasonality;
    Alcotest.test_case "holt-winters: components" `Quick hw_components_sane;
    Alcotest.test_case "holt-winters: validation" `Quick hw_input_validation;
    QCheck_alcotest.to_alcotest all_policies_conserve;
    QCheck_alcotest.to_alcotest max_requests_satisfies_at_least_as_many;
    Alcotest.test_case "policy: proportional scales" `Quick proportional_scales;
    Alcotest.test_case "policy: max-requests vs max-usage" `Quick max_requests_keeps_small;
    Alcotest.test_case "policy: cluster uses configured policy" `Quick
      cluster_uses_configured_policy;
    Alcotest.test_case "org: paths and ancestors" `Quick org_paths_and_ancestors;
    Alcotest.test_case "org: charges every level" `Quick org_charges_every_level;
    Alcotest.test_case "org: team limit binds with compensation" `Quick org_team_limit_binds;
    Alcotest.test_case "org: release returns every level" `Quick
      org_release_returns_every_level;
    Alcotest.test_case "crdt: converges" `Quick crdt_converges;
    Alcotest.test_case "crdt: cannot enforce Equation 1" `Quick
      crdt_cannot_enforce_the_constraint;
  ]
