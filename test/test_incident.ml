(* The always-on incident layer (DESIGN.md §16): flight-recorder ring
   and ordering semantics, the Misra-Gries merge algebra the per-lane
   windows rely on, the Zipfian error bound, the watchdog rules, and
   the end-to-end byte-identity of recorder dumps and incident lists at
   every --engine-jobs setting. *)

open Alcotest

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let recorder_sort_and_drain_invariance () =
  (* The same logical stream recorded into two recorders — one drained
     at arbitrary points, one never — must dump identically: [events]
     is a pure function of what was recorded, not of barrier timing. *)
  let a = Obs.Flight_recorder.create () in
  let b = Obs.Flight_recorder.create () in
  let feed t =
    Obs.Flight_recorder.record t ~lane:2 ~ts:10.0
      ~kind:Obs.Flight_recorder.Shed ~site:2 ~entity:"e" "admission";
    Obs.Flight_recorder.record t ~lane:0 ~ts:10.0
      ~kind:Obs.Flight_recorder.Protocol ~site:0 ~entity:"e" "decided";
    (* Same (ts, lane): kind rank must break the tie the same way
       regardless of recording order. *)
    Obs.Flight_recorder.record t ~lane:(-1) ~ts:14.0
      ~kind:Obs.Flight_recorder.Slo_breach ~entity:"p50" "breach";
    Obs.Flight_recorder.record t ~lane:(-1) ~ts:14.0
      ~kind:Obs.Flight_recorder.Fault "heal"
  in
  Obs.Flight_recorder.record a ~lane:2 ~ts:10.0
    ~kind:Obs.Flight_recorder.Shed ~site:2 ~entity:"e" "admission";
  Obs.Flight_recorder.drain a;
  Obs.Flight_recorder.record a ~lane:0 ~ts:10.0
    ~kind:Obs.Flight_recorder.Protocol ~site:0 ~entity:"e" "decided";
  Obs.Flight_recorder.record a ~lane:(-1) ~ts:14.0
    ~kind:Obs.Flight_recorder.Slo_breach ~entity:"p50" "breach";
  Obs.Flight_recorder.drain a;
  Obs.Flight_recorder.record a ~lane:(-1) ~ts:14.0
    ~kind:Obs.Flight_recorder.Fault "heal";
  feed b;
  let render t =
    String.concat "\n"
      (List.map Obs.Flight_recorder.line (Obs.Flight_recorder.events t))
  in
  check string "drain timing invisible" (render b) (render a);
  (* The Fault at t=14 must sort before the SLO breach at t=14 (kind
     rank), even though it was recorded later. *)
  let kinds =
    List.map
      (fun (e : Obs.Flight_recorder.event) -> e.Obs.Flight_recorder.kind)
      (Obs.Flight_recorder.events a)
  in
  check bool "fault sorts before slo at equal (ts, lane)" true
    (kinds
    = [
        Obs.Flight_recorder.Protocol;
        Obs.Flight_recorder.Shed;
        Obs.Flight_recorder.Fault;
        Obs.Flight_recorder.Slo_breach;
      ])

let recorder_ring_overflow () =
  let t = Obs.Flight_recorder.create ~lane_capacity:4 ~global_capacity:8 () in
  for i = 0 to 9 do
    Obs.Flight_recorder.record t ~lane:0 ~ts:(float_of_int i)
      ~kind:Obs.Flight_recorder.Note
      (Printf.sprintf "n%d" i)
  done;
  check int "recorded counts everything" 10 (Obs.Flight_recorder.recorded t);
  check int "oldest dropped" 6 (Obs.Flight_recorder.dropped t);
  let retained =
    List.map
      (fun (e : Obs.Flight_recorder.event) -> e.Obs.Flight_recorder.detail)
      (Obs.Flight_recorder.events t)
  in
  check (list string) "newest survive in order" [ "n6"; "n7"; "n8"; "n9" ]
    retained

let port_disarmed_is_noop () =
  let port = Obs.Flight_recorder.port () in
  check bool "disarmed tap" true (Obs.Flight_recorder.tap port = None);
  let recorder = Obs.Flight_recorder.create () in
  Obs.Flight_recorder.attach port { Obs.Flight_recorder.recorder; hot = None };
  (match Obs.Flight_recorder.tap port with
  | Some a ->
      check bool "armed tap yields the recorder" true
        (a.Obs.Flight_recorder.recorder == recorder)
  | None -> fail "armed port must tap");
  Obs.Flight_recorder.detach port;
  check bool "detached tap" true (Obs.Flight_recorder.tap port = None)

(* ------------------------------------------------------------------ *)
(* Heavy hitters: the merge algebra (qcheck) *)

let sketch_of ops =
  let t = Obs.Heavy_hitters.create ~k:3 () in
  List.iter
    (fun (key, count) ->
      Obs.Heavy_hitters.observe ~count t (Printf.sprintf "k%d" key))
    ops;
  t

let ops_gen =
  QCheck.(small_list (pair (int_bound 5) (int_range 1 20)))

let dump_eq a b = Obs.Heavy_hitters.dump a = Obs.Heavy_hitters.dump b

let merge_commutative =
  QCheck.Test.make ~name:"hh merge commutative" ~count:300
    QCheck.(pair ops_gen ops_gen)
    (fun (xs, ys) ->
      let a = sketch_of xs and b = sketch_of ys in
      dump_eq (Obs.Heavy_hitters.merge a b) (Obs.Heavy_hitters.merge b a))

let merge_associative =
  QCheck.Test.make ~name:"hh merge associative" ~count:300
    QCheck.(triple ops_gen ops_gen ops_gen)
    (fun (xs, ys, zs) ->
      let a = sketch_of xs and b = sketch_of ys and c = sketch_of zs in
      dump_eq
        (Obs.Heavy_hitters.merge (Obs.Heavy_hitters.merge a b) c)
        (Obs.Heavy_hitters.merge a (Obs.Heavy_hitters.merge b c)))

let merge_lossless_on_disjoint =
  QCheck.Test.make ~name:"hh merge lossless on disjoint keys" ~count:300
    QCheck.(pair ops_gen ops_gen)
    (fun (xs, ys) ->
      (* Disjoint alphabets: left keys a*, right keys b*. The pointwise
         merge must preserve both sides exactly — estimates unchanged,
         errors summed. *)
      let build prefix ops =
        let t = Obs.Heavy_hitters.create ~k:3 () in
        List.iter
          (fun (key, count) ->
            Obs.Heavy_hitters.observe ~count t
              (Printf.sprintf "%s%d" prefix key))
          ops;
        t
      in
      let a = build "a" xs and b = build "b" ys in
      let m = Obs.Heavy_hitters.merge a b in
      let preserved t =
        List.for_all
          (fun (key, est) -> Obs.Heavy_hitters.estimate m key = est)
          (Obs.Heavy_hitters.top t)
      in
      preserved a && preserved b
      && Obs.Heavy_hitters.error m
         = Obs.Heavy_hitters.error a + Obs.Heavy_hitters.error b
      && Obs.Heavy_hitters.total m
         = Obs.Heavy_hitters.total a + Obs.Heavy_hitters.total b)

let zipfian_error_bound () =
  (* A Zipf(0.99) stream over 500 keys through a k=16 sketch: every
     estimate obeys [estimate <= true <= estimate + error], and the
     sketch finds the true hottest key. *)
  let n_keys = 500 and samples = 30_000 in
  let zipf = Trace.Zipf.create n_keys in
  let rng = Des.Rng.stream 42L 7 in
  let exact = Hashtbl.create 64 in
  let sketch = Obs.Heavy_hitters.create ~k:16 () in
  for _ = 1 to samples do
    let key = Printf.sprintf "key%04d" (Trace.Zipf.sample zipf rng) in
    Hashtbl.replace exact key (1 + Option.value ~default:0 (Hashtbl.find_opt exact key));
    Obs.Heavy_hitters.observe sketch key
  done;
  let err = Obs.Heavy_hitters.error sketch in
  Hashtbl.iter
    (fun key true_count ->
      let est = Obs.Heavy_hitters.estimate sketch key in
      check bool (Printf.sprintf "%s: estimate below truth" key) true
        (est <= true_count);
      check bool (Printf.sprintf "%s: truth within error" key) true
        (true_count <= est + err))
    exact;
  (* A key never observed estimates 0 and is covered by the bound. *)
  check int "unseen key estimates zero" 0
    (Obs.Heavy_hitters.estimate sketch "never-observed");
  let true_top =
    Hashtbl.fold
      (fun key c (bk, bc) -> if c > bc then (key, c) else (bk, bc))
      exact ("", 0)
    |> fst
  in
  match Obs.Heavy_hitters.top ~n:1 sketch with
  | [ (sk, _) ] -> check string "sketch finds the true hottest key" true_top sk
  | _ -> fail "sketch tracked nothing"

let windowed_lane_independence () =
  (* The same timestamped stream fed through 1 lane and split across 3
     lanes must produce identical window views while the per-lane
     sketches stay within capacity (k >= distinct keys, so no
     compression): the pointwise merge is then exact and the worker
     layout invisible. *)
  let feed ~lanes w =
    for i = 0 to 999 do
      let key = Printf.sprintf "k%d" (i mod 7) in
      Obs.Heavy_hitters.Windowed.observe w ~lane:(i mod lanes)
        ~now_ms:(float_of_int i *. 10.0)
        key
    done
  in
  let one = Obs.Heavy_hitters.Windowed.create ~k:8 ~window_ms:2_000.0 () in
  let three = Obs.Heavy_hitters.Windowed.create ~k:8 ~window_ms:2_000.0 () in
  feed ~lanes:1 one;
  feed ~lanes:3 three;
  let view w =
    List.map
      (fun (start, sk) -> (start, Obs.Heavy_hitters.dump sk))
      (Obs.Heavy_hitters.Windowed.windows w)
  in
  check bool "windows equal across lane layouts" true (view one = view three);
  check bool "cumulative equal across lane layouts" true
    (Obs.Heavy_hitters.dump (Obs.Heavy_hitters.Windowed.cumulative one)
    = Obs.Heavy_hitters.dump (Obs.Heavy_hitters.Windowed.cumulative three))

(* ------------------------------------------------------------------ *)
(* Watchdog *)

let record_seq recorder specs =
  List.iter
    (fun (ts, kind, entity, detail) ->
      Obs.Flight_recorder.record recorder ~lane:0 ~ts ~kind ~site:0 ~entity
        detail)
    specs

let watchdog_rules_fire () =
  let r = Obs.Flight_recorder.create () in
  record_seq r
    [
      (1_000.0, Obs.Flight_recorder.Breaker, "sale", "opened (trip 1)");
      (* Within the 5 s cooldown for (breaker-trip, sale): suppressed. *)
      (3_000.0, Obs.Flight_recorder.Breaker, "sale", "opened (trip 2)");
      (* Past the cooldown: fires again. *)
      (9_000.0, Obs.Flight_recorder.Breaker, "sale", "opened (trip 3)");
      (* Four switches inside 10 s on one entity: mechanism-flap. *)
      (10_000.0, Obs.Flight_recorder.Mech, "hot", "escrow>borrow");
      (12_000.0, Obs.Flight_recorder.Mech, "hot", "borrow>escrow");
      (14_000.0, Obs.Flight_recorder.Mech, "hot", "escrow>borrow");
      (16_000.0, Obs.Flight_recorder.Mech, "hot", "borrow>escrow");
      (20_000.0, Obs.Flight_recorder.Invariant, "sale", "leaked 3 tokens");
    ]
  (* A shed burst: 600 sheds within one second. *);
  for i = 0 to 599 do
    Obs.Flight_recorder.record r ~lane:1
      ~ts:(30_000.0 +. float_of_int i)
      ~kind:Obs.Flight_recorder.Shed ~site:1 ~entity:"sale" "admission"
  done;
  let incidents = Obs.Watchdog.detect (Obs.Flight_recorder.events r) in
  let by_rule = Obs.Watchdog.count_by_rule incidents in
  let count rule = Option.value ~default:0 (List.assoc_opt rule by_rule) in
  check int "breaker trips (cooldown suppressed one)" 2 (count "breaker-trip");
  check int "mechanism flap" 1 (count "mechanism-flap");
  check int "invariant violation" 1 (count "invariant-violation");
  check int "shed burst (cooldown bounds the storm)" 1 (count "shed-burst")

let bundle_names_breached_window () =
  (* An SLO breach is stamped at its window's end; the bundle must
     report the window that breached, not the one that starts there. *)
  let r = Obs.Flight_recorder.create () in
  let hot = Obs.Heavy_hitters.Windowed.create ~k:4 ~window_ms:2_000.0 () in
  Obs.Heavy_hitters.Windowed.observe hot ~lane:0 ~now_ms:500.0 "early";
  Obs.Heavy_hitters.Windowed.observe hot ~lane:0 ~now_ms:1_500.0 "early";
  Obs.Heavy_hitters.Windowed.observe hot ~lane:0 ~now_ms:2_500.0 "late";
  Obs.Flight_recorder.record r ~lane:(-1) ~ts:2_000.0
    ~kind:Obs.Flight_recorder.Slo_breach ~entity:"p50"
    "window [0 s, 2 s): 400.0 ms > target 250.0 ms";
  let events = Obs.Flight_recorder.events r in
  match Obs.Watchdog.detect events with
  | [ incident ] ->
      let b = Obs.Watchdog.bundle ~hot events incident in
      check (option (float 0.001)) "breached window start" (Some 0.0)
        b.Obs.Watchdog.b_hot_window;
      check (list (pair string int)) "hot keys of the breached window"
        [ ("early", 2) ] b.Obs.Watchdog.b_hot
  | incidents -> fail (Printf.sprintf "expected 1 incident, got %d" (List.length incidents))

(* ------------------------------------------------------------------ *)
(* End to end: recorder dumps byte-identical at any --engine-jobs *)

let retrystorm_flight_recorder_identical () =
  let arm =
    List.find
      (fun a -> a.Harness.Exp_retrystorm.a_id = "admission")
      Harness.Exp_retrystorm.arms
  in
  let snapshot engine_jobs =
    let c = Harness.Exp_retrystorm.capture ~engine_jobs ~quick:true ~arm () in
    let dump =
      String.concat "\n"
        (List.map Obs.Flight_recorder.line
           (Obs.Flight_recorder.events c.Harness.Exp_retrystorm.flight))
    in
    let incidents =
      String.concat "\n"
        (List.map Obs.Watchdog.incident_line c.Harness.Exp_retrystorm.incidents)
    in
    let hot =
      List.map
        (fun (start, sk) -> (start, Obs.Heavy_hitters.dump sk))
        (Obs.Heavy_hitters.Windowed.windows c.Harness.Exp_retrystorm.hot)
    in
    (dump, incidents, hot)
  in
  let d1, i1, h1 = snapshot 1 in
  let d2, i2, h2 = snapshot 2 in
  let d4, i4, h4 = snapshot 4 in
  check string "recorder dump: jobs 1 = jobs 2" d1 d2;
  check string "recorder dump: jobs 1 = jobs 4" d1 d4;
  check string "incidents: jobs 1 = jobs 2" i1 i2;
  check string "incidents: jobs 1 = jobs 4" i1 i4;
  check bool "hot windows: jobs 1 = jobs 2" true (h1 = h2);
  check bool "hot windows: jobs 1 = jobs 4" true (h1 = h4);
  (* The scenario's own acceptance story: the incident list names the
     tripped breaker and the breaching SLO window. *)
  let contains ~needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  check bool "a breaker trip is on the record" true
    (contains ~needle:"breaker-trip" i1);
  check bool "an slo breach is on the record" true
    (contains ~needle:"slo-breach" i1)

let suite =
  let qcheck = QCheck_alcotest.to_alcotest in
  [
    test_case "recorder: sort and drain invariance" `Quick
      recorder_sort_and_drain_invariance;
    test_case "recorder: ring overflow drops oldest" `Quick
      recorder_ring_overflow;
    test_case "recorder: port arm/disarm" `Quick port_disarmed_is_noop;
    qcheck merge_commutative;
    qcheck merge_associative;
    qcheck merge_lossless_on_disjoint;
    test_case "hh: zipfian error bound" `Quick zipfian_error_bound;
    test_case "hh: windowed lane independence" `Quick
      windowed_lane_independence;
    test_case "watchdog: rules fire with cooldown" `Quick watchdog_rules_fire;
    test_case "watchdog: bundle names breached window" `Quick
      bundle_names_breached_window;
    test_case "retrystorm: flight recorder byte-identical" `Slow
      retrystorm_flight_recorder_identical;
  ]
