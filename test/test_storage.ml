(* Tests for the simulated stable storage. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let wal_append_get () =
  let wal = Storage.Wal.create () in
  check int "index 0" 0 (Storage.Wal.append wal "a");
  check int "index 1" 1 (Storage.Wal.append wal "b");
  check Alcotest.string "get 0" "a" (Storage.Wal.get wal 0);
  check Alcotest.string "get 1" "b" (Storage.Wal.get wal 1);
  check int "length" 2 (Storage.Wal.length wal);
  check (Alcotest.option Alcotest.string) "last" (Some "b") (Storage.Wal.last wal)

let wal_out_of_range () =
  let wal = Storage.Wal.create () in
  ignore (Storage.Wal.append wal 1);
  Alcotest.check_raises "negative" (Invalid_argument "Wal.get: index out of range")
    (fun () -> ignore (Storage.Wal.get wal (-1)));
  Alcotest.check_raises "beyond" (Invalid_argument "Wal.get: index out of range")
    (fun () -> ignore (Storage.Wal.get wal 1))

let wal_truncate () =
  let wal = Storage.Wal.create () in
  List.iter (fun v -> ignore (Storage.Wal.append wal v)) [ 1; 2; 3; 4; 5 ];
  Storage.Wal.truncate_from wal 2;
  check int "truncated" 2 (Storage.Wal.length wal);
  check (Alcotest.list int) "remaining" [ 1; 2 ] (Storage.Wal.to_list wal);
  (* Appending after truncation reuses indices. *)
  check int "reused index" 2 (Storage.Wal.append wal 9);
  Storage.Wal.truncate_from wal 10;
  check int "truncate beyond end is no-op" 3 (Storage.Wal.length wal)

let wal_fold_iter () =
  let wal = Storage.Wal.create () in
  List.iter (fun v -> ignore (Storage.Wal.append wal v)) [ 1; 2; 3 ];
  check int "fold sums" 6 (Storage.Wal.fold wal ~init:0 ~f:( + ));
  let seen = ref [] in
  Storage.Wal.iter wal (fun v -> seen := v :: !seen);
  check (Alcotest.list int) "iter order" [ 1; 2; 3 ] (List.rev !seen)

let wal_growth =
  QCheck.Test.make ~count:50 ~name:"wal preserves all appends in order"
    QCheck.(list small_int)
    (fun values ->
      let wal = Storage.Wal.create () in
      List.iter (fun v -> ignore (Storage.Wal.append wal v)) values;
      Storage.Wal.to_list wal = values)

let store_put_get () =
  let store = Storage.Stable_store.create () in
  Storage.Stable_store.put store ~key:"x" 1;
  Storage.Stable_store.put store ~key:"y" 2;
  check (Alcotest.option int) "get x" (Some 1) (Storage.Stable_store.get store ~key:"x");
  check int "get_exn" 2 (Storage.Stable_store.get_exn store ~key:"y");
  Storage.Stable_store.put store ~key:"x" 10;
  check (Alcotest.option int) "overwrite" (Some 10) (Storage.Stable_store.get store ~key:"x");
  check int "write count" 3 (Storage.Stable_store.write_count store)

let store_remove_mem () =
  let store = Storage.Stable_store.create () in
  Storage.Stable_store.put store ~key:"k" ();
  check bool "mem" true (Storage.Stable_store.mem store ~key:"k");
  Storage.Stable_store.remove store ~key:"k";
  check bool "removed" false (Storage.Stable_store.mem store ~key:"k");
  Alcotest.check_raises "get_exn missing" Not_found (fun () ->
      ignore (Storage.Stable_store.get_exn store ~key:"k"))

let store_keys_sorted () =
  let store = Storage.Stable_store.create () in
  List.iter
    (fun key -> Storage.Stable_store.put store ~key ())
    [ "zeta"; "alpha"; "mid"; "beta" ];
  check (Alcotest.list Alcotest.string) "sorted ascending"
    [ "alpha"; "beta"; "mid"; "zeta" ]
    (Storage.Stable_store.keys store)

let durable_sync_always () =
  let d = Storage.Durable.create ~policy:Storage.Durable.Sync_always () in
  Storage.Durable.put d ~key:"a" 1;
  check (Alcotest.option int) "durable immediately" (Some 1)
    (Storage.Durable.load d ~key:"a");
  Storage.Durable.put d ~key:"a" 2;
  check int "nothing pending" 0 (Storage.Durable.pending_count d);
  check int "no unsynced loss" 0 (Storage.Durable.lose_unsynced d);
  check (Alcotest.option int) "latest survives crash" (Some 2)
    (Storage.Durable.load d ~key:"a");
  check int "one sync per put" 2 (Storage.Durable.sync_count d)

let durable_sync_batched () =
  let d = Storage.Durable.create ~policy:(Storage.Durable.Sync_batched 3) () in
  Storage.Durable.put d ~key:"a" 1;
  Storage.Durable.put d ~key:"b" 2;
  check (Alcotest.option int) "unsynced invisible" None (Storage.Durable.load d ~key:"a");
  check int "two pending" 2 (Storage.Durable.pending_count d);
  Storage.Durable.put d ~key:"c" 3;
  (* Third write fills the batch: everything flushes. *)
  check int "batch flushed" 0 (Storage.Durable.pending_count d);
  check (Alcotest.option int) "now durable" (Some 1) (Storage.Durable.load d ~key:"a");
  check int "one group commit" 1 (Storage.Durable.sync_count d);
  Storage.Durable.put d ~key:"a" 9;
  check int "partial batch lost on crash" 1 (Storage.Durable.lose_unsynced d);
  check (Alcotest.option int) "rolls back to synced image" (Some 1)
    (Storage.Durable.load d ~key:"a")

let durable_sync_never_and_force () =
  let d = Storage.Durable.create ~policy:Storage.Durable.Sync_never () in
  Storage.Durable.force d ~key:"init" 0;
  Storage.Durable.put d ~key:"init" 5;
  Storage.Durable.put d ~key:"other" 7;
  check (Alcotest.option int) "puts never durable" (Some 0)
    (Storage.Durable.load d ~key:"init");
  check int "crash loses both" 2 (Storage.Durable.lose_unsynced d);
  check (Alcotest.option int) "forced image survives" (Some 0)
    (Storage.Durable.load d ~key:"init");
  check (Alcotest.option int) "unforced gone" None (Storage.Durable.load d ~key:"other");
  (* Explicit sync still makes pending writes durable. *)
  Storage.Durable.put d ~key:"other" 8;
  Storage.Durable.sync d;
  check (Alcotest.option int) "explicit sync" (Some 8) (Storage.Durable.load d ~key:"other")

let durable_validate_policy () =
  (match Storage.Durable.validate_policy (Storage.Durable.Sync_batched 0) with
  | Ok () -> Alcotest.fail "batch size 0 accepted"
  | Error _ -> ());
  Alcotest.check_raises "create rejects batch 0"
    (Invalid_argument "Durable.create: Sync_batched batch size must be >= 1") (fun () ->
      ignore (Storage.Durable.create ~policy:(Storage.Durable.Sync_batched 0) ()))

let suite =
  [
    Alcotest.test_case "wal: append/get" `Quick wal_append_get;
    Alcotest.test_case "wal: bounds" `Quick wal_out_of_range;
    Alcotest.test_case "wal: truncate" `Quick wal_truncate;
    Alcotest.test_case "wal: fold/iter" `Quick wal_fold_iter;
    QCheck_alcotest.to_alcotest wal_growth;
    Alcotest.test_case "store: put/get" `Quick store_put_get;
    Alcotest.test_case "store: remove/mem" `Quick store_remove_mem;
    Alcotest.test_case "store: keys sorted" `Quick store_keys_sorted;
    Alcotest.test_case "durable: write-through" `Quick durable_sync_always;
    Alcotest.test_case "durable: group commit" `Quick durable_sync_batched;
    Alcotest.test_case "durable: never + force" `Quick durable_sync_never_and_force;
    Alcotest.test_case "durable: policy validation" `Quick durable_validate_policy;
  ]
