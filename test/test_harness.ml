(* Tests for the experiment harness: system adapters, the workload driver
   (open and closed loop), the lab pipeline and the registry. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let entity = Harness.Exp_common.entity

let small_ctx () =
  Harness.Lab.create ~params:{ Trace.Azure_trace.default_params with days = 5 } ()

let regions () = Harness.Exp_common.client_regions ()

let samya_system ?(maximum = 5_000) () =
  Harness.Systems.samya ~seed:3L ~config:Samya.Config.default ~regions:(regions ())
    ~entity ~maximum ()

let driver_counts_commits () =
  let ctx = small_ctx () in
  let duration_ms = 120_000.0 in
  let requests =
    Harness.Lab.workload ctx ~client_regions:(regions ()) ~duration_ms ~seed:4L ()
  in
  let t_system = samya_system () in
  let result =
    Harness.Driver.run ~t_system
      (Harness.Driver.default_spec ~client_regions:(regions ()) ~requests ~duration_ms)
  in
  check bool "commits happen" true (result.Harness.Driver.committed > 1_000);
  check bool "latencies recorded" true
    (Stats.Sample_set.count result.Harness.Driver.latencies
    = result.Harness.Driver.committed);
  check bool "invariant" true (t_system.Harness.Systems.invariant ~maximum:5_000 = Ok ())

let driver_client_crash_stops_stream () =
  let ctx = small_ctx () in
  let duration_ms = 120_000.0 in
  let requests =
    Harness.Lab.workload ctx ~client_regions:(regions ()) ~duration_ms ~seed:4L ()
  in
  let run crash =
    let t_system = samya_system () in
    let spec =
      {
        (Harness.Driver.default_spec ~client_regions:(regions ()) ~requests ~duration_ms) with
        Harness.Driver.client_crash = crash;
      }
    in
    (Harness.Driver.run ~t_system spec).Harness.Driver.committed
  in
  let baseline = run [] in
  let reduced = run [ (0.0, 0); (0.0, 1) ] in
  check bool "crashed clients send nothing" true
    (float_of_int reduced < 0.75 *. float_of_int baseline)

let driver_never_releases_unacquired () =
  (* With a tiny maximum, most acquires are rejected; client-side
     accounting must prevent phantom releases from driving total usage
     negative. *)
  let ctx = small_ctx () in
  let duration_ms = 120_000.0 in
  let requests =
    Harness.Lab.workload ctx ~client_regions:(regions ()) ~duration_ms ~seed:4L ()
  in
  let t_system = samya_system ~maximum:50 () in
  let result =
    Harness.Driver.run ~t_system
      (Harness.Driver.default_spec ~client_regions:(regions ()) ~requests ~duration_ms)
  in
  check bool "rejections happened" true (result.Harness.Driver.rejected > 0);
  check bool "invariant with tiny maximum" true
    (t_system.Harness.Systems.invariant ~maximum:50 = Ok ())

let driver_closed_loop_runs () =
  let ctx = small_ctx () in
  let requests =
    Harness.Lab.workload ctx ~client_regions:(regions ()) ~duration_ms:600_000.0 ~seed:4L ()
  in
  let t_system = samya_system () in
  let result =
    Harness.Driver.run_closed ~t_system ~client_regions:(regions ()) ~requests
      ~duration_ms:30_000.0 ~workers_per_client:4 ~window_ms:10_000.0
  in
  (* 20 workers at ~2ms/request: tens of thousands of requests. *)
  check bool "closed loop is latency-bound" true (result.Harness.Driver.committed > 10_000)

let lab_workload_deterministic () =
  let ctx = small_ctx () in
  let a = Harness.Lab.workload ctx ~client_regions:(regions ()) ~duration_ms:60_000.0 ~seed:9L () in
  let b = Harness.Lab.workload ctx ~client_regions:(regions ()) ~duration_ms:60_000.0 ~seed:9L () in
  check bool "same seed, same stream" true (a = b);
  let c = Harness.Lab.workload ctx ~client_regions:(regions ()) ~duration_ms:60_000.0 ~seed:10L () in
  check bool "different seed differs" true (a <> c)

let lab_read_ratio_applies () =
  let ctx = small_ctx () in
  let stream =
    Harness.Lab.workload ctx ~client_regions:(regions ()) ~duration_ms:300_000.0
      ~read_ratio:0.5 ~seed:9L ()
  in
  let reads = Trace.Workload.count_kind stream Trace.Workload.Read in
  let ratio = float_of_int reads /. float_of_int (Array.length stream) in
  check bool "half reads" true (Float.abs (ratio -. 0.5) < 0.05)

let registry_ids_unique_and_complete () =
  let ids = Harness.Registry.ids () in
  check int "sixteen experiments" 16 (List.length ids);
  check int "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      match Harness.Registry.find id with
      | Some e -> check Alcotest.string "self id" id e.Harness.Registry.id
      | None -> Alcotest.failf "missing %s" id)
    ids;
  match Harness.Registry.run_by_id (small_ctx ()) ~quick:true Format.str_formatter "nope" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown id accepted"

let registry_runs_fig3a () =
  let buffer = Buffer.create 512 in
  let fmt = Format.formatter_of_buffer buffer in
  (match Harness.Registry.run_by_id (small_ctx ()) ~quick:true fmt "fig3a" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Format.pp_print_flush fmt ();
  check bool "printed a table" true
    (String.length (Buffer.contents buffer) > 200)

let systems_have_distinct_names () =
  let names =
    [
      (samya_system ()).Harness.Systems.name;
      (Harness.Systems.demarcation ~seed:3L ~entity ~maximum:100 ()).Harness.Systems.name;
      (Harness.Systems.multipaxsys ~seed:3L ~entity ~maximum:100 ()).Harness.Systems.name;
    ]
  in
  check int "unique" 3 (List.length (List.sort_uniq compare names))

(* ------------------------------------------------------------------ *)
(* Pool and the parallel runner *)

let with_jobs jobs f =
  Harness.Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Harness.Pool.set_jobs 1) f

let pool_map_preserves_order () =
  with_jobs 4 (fun () ->
      let expected = List.init 100 (fun i -> i * i) in
      check (Alcotest.list int) "ordered results" expected
        (Harness.Pool.map (fun i -> i * i) (List.init 100 Fun.id)))

let pool_nested_map_runs_inline () =
  with_jobs 3 (fun () ->
      let out =
        Harness.Pool.map
          (fun i -> Harness.Pool.map (fun j -> (i * 10) + j) [ 0; 1; 2 ])
          [ 1; 2; 3; 4 ]
      in
      check
        (Alcotest.list (Alcotest.list int))
        "nested fan-out"
        [ [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ]; [ 40; 41; 42 ] ]
        out)

let pool_map_reraises () =
  with_jobs 2 (fun () ->
      match Harness.Pool.map (fun i -> if i = 3 then failwith "boom" else i) [ 1; 2; 3; 4 ] with
      | _ -> Alcotest.fail "expected the worker exception to resurface"
      | exception Failure message -> check Alcotest.string "exception message" "boom" message)

let registry_parallel_run_deterministic () =
  (* The paper-headline experiment, quick, on a small trace: a parallel
     registry run must render byte-identically to --jobs 1. *)
  let ctx = small_ctx () in
  let experiment =
    match Harness.Registry.find "table2b" with
    | Some e -> e
    | None -> Alcotest.fail "table2b not registered"
  in
  let render jobs =
    with_jobs jobs (fun () ->
        match Harness.Registry.run_many ctx ~quick:true [ experiment ] with
        | [ r ] -> r.Harness.Registry.output
        | _ -> Alcotest.fail "expected exactly one rendered experiment")
  in
  let sequential = render 1 in
  let parallel = render 4 in
  check bool "produced output" true (String.length sequential > 200);
  check Alcotest.string "parallel run byte-identical to --jobs 1" sequential parallel

let with_engine_jobs engine_jobs f =
  Harness.Pool.set_engine_jobs engine_jobs;
  Fun.protect ~finally:(fun () -> Harness.Pool.set_engine_jobs 0) f

let registry_engine_jobs_sweep_deterministic () =
  (* The region-sharded simulation contract: the same experiment renders
     byte-identically at --engine-jobs 1, 2 and 4 — the worker-domain
     count moves wall time only, never results. *)
  let ctx = small_ctx () in
  let experiment =
    match Harness.Registry.find "table2b" with
    | Some e -> e
    | None -> Alcotest.fail "table2b not registered"
  in
  let render engine_jobs =
    with_engine_jobs engine_jobs (fun () ->
        match Harness.Registry.run_many ctx ~quick:true [ experiment ] with
        | [ r ] -> r.Harness.Registry.output
        | _ -> Alcotest.fail "expected exactly one rendered experiment")
  in
  let one = render 1 in
  check bool "produced output" true (String.length one > 200);
  check Alcotest.string "engine-jobs 2 byte-identical" one (render 2);
  check Alcotest.string "engine-jobs 4 byte-identical" one (render 4)

let gateway_engine_jobs_identical () =
  (* The gateway fleet — deferred SLO feed, per-slot entity stats, batched
     site-level instances — must report identically whether the regions
     run on one domain or four. *)
  let fingerprint engine_jobs =
    let c = Harness.Exp_gateway.capture ~engine_jobs ~quick:true () in
    let r = c.Harness.Exp_gateway.result in
    Format.asprintf "%d/%d/%d/%d p50=%.3f p95=%.3f slo=%a by=%a"
      r.Harness.Driver.committed r.Harness.Driver.rejected r.Harness.Driver.unavailable r.Harness.Driver.no_reply
      (Harness.Driver.percentile r 50.0) (Harness.Driver.percentile r 95.0)
      (Format.pp_print_list (fun fmt (l : Obs.Slo.report_line) ->
           Format.fprintf fmt "%s:%d/%d" l.Obs.Slo.name l.Obs.Slo.violations
             l.Obs.Slo.windows))
      (Obs.Slo.report c.Harness.Exp_gateway.slo)
      (Format.pp_print_list (fun fmt (key, (e : Harness.Driver.entity_stats)) ->
           Format.fprintf fmt "%s=%d,%d,%.3f" key e.Harness.Driver.e_committed
             e.Harness.Driver.e_rejected e.Harness.Driver.e_latency_sum_ms))
      r.Harness.Driver.by_entity
  in
  let one = fingerprint 1 in
  Alcotest.check bool "produced data" true (String.length one > 100);
  Alcotest.check Alcotest.string "engine-jobs 2 byte-identical" one (fingerprint 2);
  Alcotest.check Alcotest.string "engine-jobs 4 byte-identical" one (fingerprint 4)

let suite =
  [
    Alcotest.test_case "driver: counts commits" `Quick driver_counts_commits;
    Alcotest.test_case "driver: client crash" `Quick driver_client_crash_stops_stream;
    Alcotest.test_case "driver: no phantom releases" `Quick driver_never_releases_unacquired;
    Alcotest.test_case "driver: closed loop" `Quick driver_closed_loop_runs;
    Alcotest.test_case "lab: deterministic workload" `Quick lab_workload_deterministic;
    Alcotest.test_case "lab: read ratio" `Quick lab_read_ratio_applies;
    Alcotest.test_case "registry: ids" `Quick registry_ids_unique_and_complete;
    Alcotest.test_case "registry: runs fig3a" `Quick registry_runs_fig3a;
    Alcotest.test_case "systems: names" `Quick systems_have_distinct_names;
    Alcotest.test_case "pool: ordered map" `Quick pool_map_preserves_order;
    Alcotest.test_case "pool: nested map" `Quick pool_nested_map_runs_inline;
    Alcotest.test_case "pool: exception propagation" `Quick pool_map_reraises;
    Alcotest.test_case "registry: parallel run deterministic" `Slow
      registry_parallel_run_deterministic;
    Alcotest.test_case "registry: engine-jobs sweep deterministic" `Slow
      registry_engine_jobs_sweep_deterministic;
    Alcotest.test_case "gateway: engine-jobs sweep byte-identical" `Slow
      gateway_engine_jobs_identical;
  ]
