(* Tests for the causal-tracing stack: the trace-context algebra and its
   ambient propagation through the engine, the quantile-sketch merge
   algebra (qcheck'd) and its rank-error bound against the exact sample
   set, critical-path attribution on synthetic logs, the SLO monitor's
   window accounting, and the end-to-end `explain` path — byte-identical
   across pool parallelism and attributing >= 95% of every completed
   request's wall time. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Trace context + engine propagation *)

let context_algebra () =
  check bool "none is none" true (Des.Trace_context.is_none Des.Trace_context.none);
  let root = Des.Trace_context.root ~trace:7 in
  check bool "root is live" false (Des.Trace_context.is_none root);
  check int "root trace" 7 root.Des.Trace_context.trace;
  check int "root hop" 0 root.Des.Trace_context.hop;
  let c = Des.Trace_context.child root ~edge:42 in
  check int "child keeps trace" 7 c.Des.Trace_context.trace;
  check int "child parent edge" 42 c.Des.Trace_context.parent;
  check int "child hop" 1 c.Des.Trace_context.hop

let engine_propagates_context () =
  let engine = Des.Engine.create () in
  let seen = ref [] in
  let note tag =
    seen := (tag, (Des.Engine.current_context engine).Des.Trace_context.trace) :: !seen
  in
  Des.Engine.with_context engine (Des.Trace_context.root ~trace:1) (fun () ->
      (* Timers scheduled inside a context inherit it, including nested
         reschedules... *)
      Des.Engine.schedule engine ~delay_ms:5.0 (fun () ->
          note "inner";
          Des.Engine.schedule engine ~delay_ms:5.0 (fun () -> note "nested")));
  (* ...while timers scheduled outside stay context-free. *)
  Des.Engine.schedule engine ~delay_ms:7.0 (fun () ->
      seen :=
        ("outside", if Des.Trace_context.is_none (Des.Engine.current_context engine)
                    then -1 else -2)
        :: !seen);
  Des.Engine.run engine ~until_ms:100.0;
  check bool "ambient context restored" true
    (Des.Trace_context.is_none (Des.Engine.current_context engine));
  let expected = [ ("inner", 1); ("outside", -1); ("nested", 1) ] in
  check
    Alcotest.(list (pair string int))
    "closures carry their scheduling context" expected (List.rev !seen)

let fresh_ids_consume_no_randomness () =
  let a = Des.Engine.create ~seed:9L () in
  let b = Des.Engine.create ~seed:9L () in
  ignore (Des.Engine.fresh_id a);
  ignore (Des.Engine.fresh_id a);
  check bool "rng stream unchanged by fresh_id" true
    (Des.Rng.int (Des.Engine.rng a) 1_000_000
    = Des.Rng.int (Des.Engine.rng b) 1_000_000)

(* ------------------------------------------------------------------ *)
(* Quantile sketch: merge algebra (qcheck) and rank-error bound *)

let sketch_of values =
  let s = Obs.Quantile_sketch.create () in
  List.iter (Obs.Quantile_sketch.add s) values;
  s

let values_gen = QCheck.(list (float_range 0.0 10_000.0))

let sketch_merge_commutative =
  QCheck.Test.make ~count:200 ~name:"sketch merge is commutative"
    QCheck.(pair values_gen values_gen)
    (fun (xs, ys) ->
      let a = sketch_of xs and b = sketch_of ys in
      Obs.Quantile_sketch.equal
        (Obs.Quantile_sketch.merge a b)
        (Obs.Quantile_sketch.merge b a))

let sketch_merge_associative =
  QCheck.Test.make ~count:200 ~name:"sketch merge is associative"
    QCheck.(triple values_gen values_gen values_gen)
    (fun (xs, ys, zs) ->
      let a = sketch_of xs and b = sketch_of ys and c = sketch_of zs in
      Obs.Quantile_sketch.equal
        (Obs.Quantile_sketch.merge (Obs.Quantile_sketch.merge a b) c)
        (Obs.Quantile_sketch.merge a (Obs.Quantile_sketch.merge b c)))

let sketch_merge_is_concat =
  QCheck.Test.make ~count:200 ~name:"sketch merge equals sketching the concatenation"
    QCheck.(pair values_gen values_gen)
    (fun (xs, ys) ->
      Obs.Quantile_sketch.equal
        (Obs.Quantile_sketch.merge (sketch_of xs) (sketch_of ys))
        (sketch_of (xs @ ys)))

(* The documented contract: for the exact nearest-rank value v (> 1e-3),
   the sketch reports v' with v <= v' < v * gamma. Checked against the
   harness's exact order statistics on a deterministic heavy-tailed
   stream. *)
let sketch_rank_error_bound () =
  let sketch = Obs.Quantile_sketch.create () in
  let exact = Stats.Sample_set.create () in
  let state = ref 0x2545F4914F6CDD1DL in
  let next () =
    (* xorshift64*: deterministic, no dependency on the engine RNG. *)
    let x = !state in
    let x = Int64.logxor x (Int64.shift_right_logical x 12) in
    let x = Int64.logxor x (Int64.shift_left x 25) in
    let x = Int64.logxor x (Int64.shift_right_logical x 27) in
    state := x;
    let u =
      Int64.to_float (Int64.shift_right_logical x 11) /. 9007199254740992.0
    in
    (* Latency-shaped: ~2 ms floor with a long multiplicative tail. *)
    2.0 *. exp (6.0 *. u)
  in
  for _ = 1 to 20_000 do
    let v = next () in
    Obs.Quantile_sketch.add sketch v;
    Stats.Sample_set.add exact v
  done;
  let sorted = Stats.Sample_set.to_sorted_array exact in
  let gamma = Obs.Quantile_sketch.gamma in
  List.iter
    (fun q ->
      (* Exact nearest-rank (the sketch's convention; Sample_set's
         [percentile] interpolates, so rank directly). *)
      let rank =
        max 0 (min (Array.length sorted - 1)
                 (int_of_float (ceil (q *. float_of_int (Array.length sorted))) - 1))
      in
      let v = sorted.(rank) in
      let v' = Obs.Quantile_sketch.quantile sketch q in
      if not (v' >= v *. (1.0 -. 1e-9) && v' < v *. gamma) then
        Alcotest.failf "q=%.3f: exact %.6f, sketch %.6f outside [v, v*%.4f)" q v v'
          gamma)
    [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 0.999 ];
  check int "counts agree" (Stats.Sample_set.count exact)
    (Obs.Quantile_sketch.count sketch)

(* ------------------------------------------------------------------ *)
(* Critical path on synthetic logs *)

let component breakdown name =
  match
    List.find_opt
      (fun c -> c.Obs.Critical_path.comp = name)
      breakdown.Obs.Critical_path.components
  with
  | Some c -> c.Obs.Critical_path.ms
  | None -> 0.0

let feq name expected actual =
  if Float.abs (expected -. actual) > 1e-6 then
    Alcotest.failf "%s: expected %.6f, got %.6f" name expected actual

let critical_path_partitions_window () =
  let events =
    [
      Obs.Causal.Submitted { trace = 3; client = 0; kind = "req.acquire"; entity = ""; ts = 0.0 };
      Obs.Causal.Accepted { trace = 3; site = 1; ts = 10.0 };
      Obs.Causal.Enqueued { trace = 3; site = 1; label = "admission"; ts = 10.0 };
      Obs.Causal.Dequeued { trace = 3; site = 1; ts = 25.0 };
      Obs.Causal.Phase { trace = 3; site = 1; name = "accept"; t0 = 25.0; t1 = 60.0 };
      (* Hops under the phase lose to it; only their overhang counts. *)
      Obs.Causal.Hop { trace = 3; edge = 9; src = 1; dst = 2; t0 = 30.0; t1 = 70.0 };
      Obs.Causal.Service { trace = 3; site = 1; t0 = 70.0; t1 = 75.0 };
      Obs.Causal.Completed { trace = 3; outcome = "granted"; ts = 90.0 };
    ]
  in
  match Obs.Critical_path.analyze events with
  | [ b ] ->
      feq "wall" 90.0 b.Obs.Critical_path.wall_ms;
      feq "queue" 15.0 (component b "queue.admission");
      feq "phase" 35.0 (component b "protocol.accept");
      feq "hop overhang" 10.0 (component b "wan.replication");
      feq "service" 5.0 (component b "local.service");
      (* Leading [0,10] and trailing [75,90] uncovered -> client legs. *)
      feq "client legs" 25.0 (component b "wan.client");
      feq "nothing unattributed" 0.0 (component b "other");
      feq "fraction" 1.0 (Obs.Critical_path.attributed_fraction b)
  | bds -> Alcotest.failf "expected 1 breakdown, got %d" (List.length bds)

let critical_path_reports_interior_gap () =
  let events =
    [
      Obs.Causal.Submitted { trace = 1; client = 2; kind = "req.read"; entity = ""; ts = 0.0 };
      Obs.Causal.Service { trace = 1; site = 0; t0 = 10.0; t1 = 20.0 };
      Obs.Causal.Hop { trace = 1; edge = 4; src = 0; dst = 1; t0 = 32.0; t1 = 40.0 };
      Obs.Causal.Completed { trace = 1; outcome = "granted"; ts = 50.0 };
    ]
  in
  match Obs.Critical_path.analyze events with
  | [ b ] ->
      (* [20,32] touches neither window edge: honest "other", not client WAN. *)
      feq "interior gap" 12.0 (component b "other");
      feq "client legs" 20.0 (component b "wan.client");
      feq "attributed" 38.0 b.Obs.Critical_path.attributed_ms;
      feq "fraction" (38.0 /. 50.0) (Obs.Critical_path.attributed_fraction b)
  | bds -> Alcotest.failf "expected 1 breakdown, got %d" (List.length bds)

let critical_path_ignores_incomplete () =
  let events =
    [
      Obs.Causal.Submitted { trace = 1; client = 0; kind = "req.acquire"; entity = ""; ts = 0.0 };
      Obs.Causal.Submitted { trace = 2; client = 0; kind = "req.acquire"; entity = ""; ts = 1.0 };
      Obs.Causal.Completed { trace = 2; outcome = "rejected"; ts = 4.0 };
    ]
  in
  check int "submitted" 2 (Obs.Critical_path.submitted_count events);
  match Obs.Critical_path.analyze events with
  | [ b ] ->
      check int "only the completed trace" 2 b.Obs.Critical_path.trace;
      check string "outcome" "rejected" b.Obs.Critical_path.outcome;
      (* Zero-event window: everything is the client's round trip. *)
      feq "all client" 3.0 (component b "wan.client");
      feq "fraction" 1.0 (Obs.Critical_path.attributed_fraction b)
  | bds -> Alcotest.failf "expected 1 breakdown, got %d" (List.length bds)

(* ------------------------------------------------------------------ *)
(* SLO monitor *)

let slo_line lines name =
  match List.find_opt (fun l -> l.Obs.Slo.name = name) lines with
  | Some l -> l
  | None -> Alcotest.failf "objective %s missing from report" name

let slo_counts_violating_windows () =
  let slo =
    Obs.Slo.create ~window_ms:1_000.0
      ~objectives:
        [
          Obs.Slo.Latency { name = "p50"; q = 0.5; target_ms = 100.0 };
          Obs.Slo.Abort_rate { name = "aborts"; max_rate = 0.25 };
        ]
      ()
  in
  (* Window 1: fast and clean. Window 2 ([1000,2000)): slow. Window 3:
     empty (skipped). Window 4: fast but 1/3 aborted. *)
  Obs.Slo.commit slo ~now_ms:100.0 ~latency_ms:10.0;
  Obs.Slo.commit slo ~now_ms:200.0 ~latency_ms:20.0;
  Obs.Slo.commit slo ~now_ms:1_100.0 ~latency_ms:400.0;
  Obs.Slo.commit slo ~now_ms:1_200.0 ~latency_ms:500.0;
  Obs.Slo.commit slo ~now_ms:3_100.0 ~latency_ms:10.0;
  Obs.Slo.commit slo ~now_ms:3_200.0 ~latency_ms:20.0;
  Obs.Slo.abort slo ~now_ms:3_300.0;
  let lines = Obs.Slo.report slo in
  check bool "unhealthy" false (Obs.Slo.healthy lines);
  let p50 = slo_line lines "p50" in
  check int "latency windows evaluated" 3 p50.Obs.Slo.windows;
  check int "one slow window" 1 p50.Obs.Slo.violations;
  check bool "worst is the slow window's p50" true (p50.Obs.Slo.worst >= 400.0);
  let aborts = slo_line lines "aborts" in
  check int "abort windows evaluated" 3 aborts.Obs.Slo.windows;
  check int "one aborting window" 1 aborts.Obs.Slo.violations;
  check bool "abort fraction" true (Float.abs (aborts.Obs.Slo.worst -. (1.0 /. 3.0)) < 1e-9)

let slo_healthy_run () =
  let slo = Obs.Slo.create ~window_ms:1_000.0 () in
  for i = 1 to 50 do
    Obs.Slo.commit slo ~now_ms:(float_of_int i *. 100.0) ~latency_ms:5.0
  done;
  let lines = Obs.Slo.report slo in
  check bool "healthy" true (Obs.Slo.healthy lines);
  let p50 = slo_line lines "p50_latency" in
  check int "no violations" 0 p50.Obs.Slo.violations;
  check bool "overall from cumulative sketch" true
    (p50.Obs.Slo.overall >= 5.0 && p50.Obs.Slo.overall <= 6.0)

(* ------------------------------------------------------------------ *)
(* End to end: explain / slo over real systems, across pool parallelism *)

let with_jobs jobs f =
  Harness.Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Harness.Pool.set_jobs 1) f

let explain_deterministic_and_attributed () =
  let ctx =
    Harness.Lab.create ~params:{ Trace.Azure_trace.default_params with days = 5 } ()
  in
  let regions = Harness.Exp_common.client_regions () in
  let duration_ms = 60_000.0 in
  let requests =
    Harness.Lab.workload ctx ~client_regions:regions ~duration_ms ~seed:4L ()
  in
  let entity = Harness.Exp_common.entity in
  (* One of each instrumentation style: Samya (redistribution queues +
     Avantan phases), escrow borrowing, and a leader-based serialized
     queue with retries. A small maximum keeps redistribution busy. *)
  let builders =
    [
      ( "samya",
        fun () ->
          Harness.Systems.samya ~seed:3L ~config:Samya.Config.default ~regions
            ~entity ~maximum:500 () );
      ( "demarcation",
        fun () ->
          Harness.Systems.demarcation ~seed:3L ~regions ~entity ~maximum:500 () );
      ("cockroach", fun () -> Harness.Systems.cockroach ~seed:3L ~entity ~maximum:500 ());
    ]
  in
  let capture () =
    let captures =
      Harness.Pool.map
        (fun (label, build) ->
          let t_system = build () in
          let sink =
            Obs.Sink.create
              ~now:(fun () -> Des.Engine.now t_system.Harness.Systems.engine)
              ()
          in
          t_system.Harness.Systems.subscribe sink;
          let flight = Obs.Flight_recorder.create () in
          let hot = Obs.Heavy_hitters.Windowed.create ~k:8 ~window_ms:10_000.0 () in
          t_system.Harness.Systems.arm
            { Obs.Flight_recorder.recorder = flight; hot = Some hot };
          let slo = Obs.Slo.create () in
          let spec =
            {
              (Harness.Driver.default_spec ~client_regions:regions ~requests
                 ~duration_ms)
              with
              Harness.Driver.obs = Some sink;
              slo = Some slo;
              flight = Some flight;
            }
          in
          let result = Harness.Driver.run ~t_system spec in
          {
            Harness.Exp_trace.label;
            sink;
            slo;
            result;
            stats = t_system.Harness.Systems.stats ();
            flight;
            hot;
            incidents = Obs.Watchdog.detect (Obs.Flight_recorder.events flight);
          })
        builders
    in
    let explain =
      Format.asprintf "%t" (fun fmt ->
          Harness.Exp_trace.explain fmt ~slowest:5 captures)
    in
    let slo_doc = Harness.Exp_trace.slo_json captures in
    (captures, explain, slo_doc)
  in
  let captures, explain1, slo1 = with_jobs 1 capture in
  let _, explain2, slo2 = with_jobs 2 capture in
  check string "explain byte-identical across jobs" explain1 explain2;
  check string "slo json byte-identical across jobs" slo1 slo2;
  List.iter
    (fun c ->
      let bds = Harness.Exp_trace.breakdowns c in
      check bool
        (c.Harness.Exp_trace.label ^ ": has completed traced requests")
        true (bds <> []);
      List.iter
        (fun b ->
          let f = Obs.Critical_path.attributed_fraction b in
          if f < 0.95 then
            Alcotest.failf "%s trace %d: only %.1f%% of %.2f ms attributed"
              c.Harness.Exp_trace.label b.Obs.Critical_path.trace (100.0 *. f)
              b.Obs.Critical_path.wall_ms)
        bds)
    captures

let suite =
  [
    Alcotest.test_case "context: algebra" `Quick context_algebra;
    Alcotest.test_case "context: engine propagation" `Quick engine_propagates_context;
    Alcotest.test_case "context: fresh ids leave rng alone" `Quick
      fresh_ids_consume_no_randomness;
    QCheck_alcotest.to_alcotest sketch_merge_commutative;
    QCheck_alcotest.to_alcotest sketch_merge_associative;
    QCheck_alcotest.to_alcotest sketch_merge_is_concat;
    Alcotest.test_case "sketch: rank-error bound vs exact" `Quick
      sketch_rank_error_bound;
    Alcotest.test_case "critical path: partitions the window" `Quick
      critical_path_partitions_window;
    Alcotest.test_case "critical path: honest interior gap" `Quick
      critical_path_reports_interior_gap;
    Alcotest.test_case "critical path: incomplete traces skipped" `Quick
      critical_path_ignores_incomplete;
    Alcotest.test_case "slo: counts violating windows" `Quick
      slo_counts_violating_windows;
    Alcotest.test_case "slo: healthy run" `Quick slo_healthy_run;
    Alcotest.test_case "explain: deterministic and >=95% attributed" `Slow
      explain_deterministic_and_attributed;
  ]
