let () =
  Alcotest.run "samya-reproduction"
    [
      ("des", Test_des.suite);
      ("geonet", Test_geonet.suite);
      ("storage", Test_storage.suite);
      ("stats", Test_stats.suite);
      ("ml", Test_ml.suite);
      ("trace", Test_trace.suite);
      ("consensus", Test_consensus.suite);
      ("obs", Test_obs.suite);
      ("tracing", Test_tracing.suite);
      ("reallocation", Test_reallocation.suite);
      ("avantan", Test_avantan.suite);
      ("samya", Test_samya.suite);
      ("baselines", Test_baselines.suite);
      ("harness", Test_harness.suite);
      ("extensions", Test_extensions.suite);
      ("chaos", Test_chaos.suite);
      ("overload", Test_overload.suite);
      ("controller", Test_controller.suite);
      ("incident", Test_incident.suite);
    ]
