(* Tests for the chaos engine: nemesis schedule determinism and shape,
   auditor log checks, and seed-sweep soak properties (token conservation
   and a clean audit under crash-amnesia recovery, both Avantan
   variants). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let nemesis_deterministic () =
  let a = Chaos.Nemesis.generate ~seed:42 ~n_sites:5 ~duration_ms:120_000.0 in
  let b = Chaos.Nemesis.generate ~seed:42 ~n_sites:5 ~duration_ms:120_000.0 in
  check bool "same seed, identical schedule" true (a = b);
  let c = Chaos.Nemesis.generate ~seed:43 ~n_sites:5 ~duration_ms:120_000.0 in
  check bool "different seed, different schedule" true (a.Chaos.Nemesis.faults <> c.Chaos.Nemesis.faults)

let nemesis_shape () =
  (* Over many seeds: faults ordered by injection time, every heal after
     its injection and inside the pre-quiescence window, every site index
     in range. *)
  for seed = 1 to 50 do
    let duration_ms = 120_000.0 in
    let schedule = Chaos.Nemesis.generate ~seed ~n_sites:5 ~duration_ms in
    check bool "at least three faults" true (List.length schedule.Chaos.Nemesis.faults >= 3);
    let previous = ref neg_infinity in
    List.iter
      (fun (fault : Chaos.Nemesis.fault) ->
        check bool "sorted by injection time" true (fault.at_ms >= !previous);
        previous := fault.at_ms;
        check bool "heals after injection" true (fault.heal_ms > fault.at_ms);
        check bool "heals before the drain window" true
          (fault.heal_ms <= 0.7 *. duration_ms);
        let site_ok s = s >= 0 && s < 5 in
        match fault.kind with
        | Chaos.Nemesis.Crash { site } -> check bool "crash site in range" true (site_ok site)
        | Chaos.Nemesis.One_way_cut { src; dst } ->
            check bool "cut endpoints" true (site_ok src && site_ok dst && src <> dst)
        | Chaos.Nemesis.Latency_spike { src; dst; extra_ms } ->
            check bool "spike endpoints" true (site_ok src && site_ok dst && src <> dst);
            check bool "spike positive" true (extra_ms > 0.0)
        | Chaos.Nemesis.Partition { groups } ->
            let members = List.concat groups in
            check bool "partition covers all sites" true
              (List.sort compare members = [ 0; 1; 2; 3; 4 ])
        | Chaos.Nemesis.Drop_surge { probability } | Chaos.Nemesis.Duplication { probability }
          ->
            check bool "probability in (0, 1]" true (probability > 0.0 && probability <= 1.0))
      schedule.Chaos.Nemesis.faults
  done

let nemesis_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  check bool "rejects one site" true
    (invalid (fun () -> Chaos.Nemesis.generate ~seed:1 ~n_sites:1 ~duration_ms:10_000.0));
  check bool "rejects non-positive duration" true
    (invalid (fun () -> Chaos.Nemesis.generate ~seed:1 ~n_sites:5 ~duration_ms:0.0))

let ballot num site = { Consensus.Ballot.num; site }

let auditor_flags_duplicate_origin () =
  let value = Samya.Protocol.make_value ~origin:(ballot 3 1) [] in
  let violations = Chaos.Auditor.check_logs [ (0, [ value; value ]) ] in
  check int "one violation" 1 (List.length violations);
  check Alcotest.string "duplicate-origin" "duplicate-origin"
    (List.hd violations).Chaos.Auditor.check

let auditor_flags_divergent_values () =
  let origin = ballot 3 1 in
  let entry tokens : Samya.Protocol.site_entry =
    { site = 0; tokens_left = tokens; tokens_wanted = 0 }
  in
  let a = Samya.Protocol.make_value ~origin [ entry 10 ] in
  let b = Samya.Protocol.make_value ~origin [ entry 20 ] in
  let violations = Chaos.Auditor.check_logs [ (0, [ a ]); (1, [ b ]) ] in
  check int "one violation" 1 (List.length violations);
  check Alcotest.string "value-consistency" "value-consistency"
    (List.hd violations).Chaos.Auditor.check;
  (* Equal values under one origin at two sites are the normal case. *)
  check int "agreement is clean" 0
    (List.length (Chaos.Auditor.check_logs [ (0, [ a ]); (1, [ a ]) ]))

let soak_replays_exactly () =
  let run () = Chaos.Soak.run ~duration_ms:30_000.0 ~variant:Samya.Config.Star ~seed:7 () in
  let a = run () and b = run () in
  let fingerprint (r : Chaos.Soak.report) =
    (r.granted, r.rejected, r.unavailable, r.redistributions, r.durable_syncs, r.duplicated)
  in
  check bool "same seed, same outcome" true (fingerprint a = fingerprint b);
  check bool "faults all healed" true (a.injected = a.healed);
  check Alcotest.string "repro line" "samya_cli chaos --seed 7 --variant star"
    (Chaos.Soak.repro_line a)

let soak_engine_jobs_sweep () =
  (* A region-sharded soak must report byte-identically at every worker
     count — one domain or four, same windows, same channel flush order,
     same report — and still pass the auditor. (Seed 5 is a seed whose
     sharded run genuinely diverges from the legacy single-engine one, so
     this exercises the sharded scheduler, not a degenerate fallback.) *)
  let render (r : Chaos.Soak.report) = Format.asprintf "%a" Chaos.Soak.pp_report r in
  let run engine_jobs =
    Chaos.Soak.run ~duration_ms:30_000.0 ~engine_jobs ~variant:Samya.Config.Majority
      ~seed:5 ()
  in
  let r1 = run 1 in
  check bool "sharded soak passes the audit" true (Chaos.Soak.passed r1);
  let s1 = render r1 in
  check Alcotest.string "engine-jobs 2 byte-identical" s1 (render (run 2));
  check Alcotest.string "engine-jobs 4 byte-identical" s1 (render (run 4))

(* The headline robustness property: across random nemesis seeds and both
   Avantan variants, a crash-amnesiac cluster with write-through
   durability finishes with a clean audit — tokens conserved (Equation 1),
   no origin applied twice, no divergent decision, monotone decided
   prefixes. *)
let soak_conserves_tokens variant name =
  QCheck.Test.make ~count:20 ~name
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let report = Chaos.Soak.run ~duration_ms:45_000.0 ~variant ~seed () in
      if not (Chaos.Soak.passed report) then
        QCheck.Test.fail_reportf "%s@." (Chaos.Soak.repro_line report)
      else true)

let suite =
  [
    Alcotest.test_case "nemesis: deterministic per seed" `Quick nemesis_deterministic;
    Alcotest.test_case "nemesis: schedule shape" `Quick nemesis_shape;
    Alcotest.test_case "nemesis: parameter validation" `Quick nemesis_validation;
    Alcotest.test_case "auditor: duplicate origin" `Quick auditor_flags_duplicate_origin;
    Alcotest.test_case "auditor: divergent values" `Quick auditor_flags_divergent_values;
    Alcotest.test_case "soak: replays exactly" `Quick soak_replays_exactly;
    Alcotest.test_case "soak: engine-jobs sweep byte-identical" `Slow
      soak_engine_jobs_sweep;
    QCheck_alcotest.to_alcotest
      (soak_conserves_tokens Samya.Config.Majority
         "chaos soak: clean audit across seeds (Avantan[(n+1)/2])");
    QCheck_alcotest.to_alcotest
      (soak_conserves_tokens Samya.Config.Star
         "chaos soak: clean audit across seeds (Avantan[*])");
  ]
