(* Tests for the chaos engine: nemesis schedule determinism and shape,
   auditor log checks, and seed-sweep soak properties (token conservation
   and a clean audit under crash-amnesia recovery, both Avantan
   variants). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let nemesis_deterministic () =
  let a = Chaos.Nemesis.generate ~seed:42 ~n_sites:5 ~duration_ms:120_000.0 in
  let b = Chaos.Nemesis.generate ~seed:42 ~n_sites:5 ~duration_ms:120_000.0 in
  check bool "same seed, identical schedule" true (a = b);
  let c = Chaos.Nemesis.generate ~seed:43 ~n_sites:5 ~duration_ms:120_000.0 in
  check bool "different seed, different schedule" true (a.Chaos.Nemesis.faults <> c.Chaos.Nemesis.faults)

let nemesis_shape () =
  (* Over many seeds: faults ordered by injection time, every heal after
     its injection and inside the pre-quiescence window, every site index
     in range. *)
  for seed = 1 to 50 do
    let duration_ms = 120_000.0 in
    let schedule = Chaos.Nemesis.generate ~seed ~n_sites:5 ~duration_ms in
    check bool "at least three faults" true (List.length schedule.Chaos.Nemesis.faults >= 3);
    let previous = ref neg_infinity in
    List.iter
      (fun (fault : Chaos.Nemesis.fault) ->
        check bool "sorted by injection time" true (fault.at_ms >= !previous);
        previous := fault.at_ms;
        check bool "heals after injection" true (fault.heal_ms > fault.at_ms);
        check bool "heals before the drain window" true
          (fault.heal_ms <= 0.7 *. duration_ms);
        let site_ok s = s >= 0 && s < 5 in
        match fault.kind with
        | Chaos.Nemesis.Crash { site } -> check bool "crash site in range" true (site_ok site)
        | Chaos.Nemesis.One_way_cut { src; dst } ->
            check bool "cut endpoints" true (site_ok src && site_ok dst && src <> dst)
        | Chaos.Nemesis.Latency_spike { src; dst; extra_ms } ->
            check bool "spike endpoints" true (site_ok src && site_ok dst && src <> dst);
            check bool "spike positive" true (extra_ms > 0.0)
        | Chaos.Nemesis.Partition { groups } ->
            let members = List.concat groups in
            check bool "partition covers all sites" true
              (List.sort compare members = [ 0; 1; 2; 3; 4 ])
        | Chaos.Nemesis.Drop_surge { probability } | Chaos.Nemesis.Duplication { probability }
          ->
            check bool "probability in (0, 1]" true (probability > 0.0 && probability <= 1.0))
      schedule.Chaos.Nemesis.faults
  done

let nemesis_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  check bool "rejects one site" true
    (invalid (fun () -> Chaos.Nemesis.generate ~seed:1 ~n_sites:1 ~duration_ms:10_000.0));
  check bool "rejects non-positive duration" true
    (invalid (fun () -> Chaos.Nemesis.generate ~seed:1 ~n_sites:5 ~duration_ms:0.0))

let ballot num site = { Consensus.Ballot.num; site }

let auditor_flags_duplicate_origin () =
  let value = Samya.Protocol.make_value ~origin:(ballot 3 1) [] in
  let violations = Chaos.Auditor.check_logs [ (0, [ value; value ]) ] in
  check int "one violation" 1 (List.length violations);
  check Alcotest.string "duplicate-origin" "duplicate-origin"
    (List.hd violations).Chaos.Auditor.check

let auditor_flags_divergent_values () =
  let origin = ballot 3 1 in
  let entry tokens : Samya.Protocol.site_entry =
    { site = 0; tokens_left = tokens; tokens_wanted = 0 }
  in
  let a = Samya.Protocol.make_value ~origin [ entry 10 ] in
  let b = Samya.Protocol.make_value ~origin [ entry 20 ] in
  let violations = Chaos.Auditor.check_logs [ (0, [ a ]); (1, [ b ]) ] in
  check int "one violation" 1 (List.length violations);
  check Alcotest.string "value-consistency" "value-consistency"
    (List.hd violations).Chaos.Auditor.check;
  (* Equal values under one origin at two sites are the normal case. *)
  check int "agreement is clean" 0
    (List.length (Chaos.Auditor.check_logs [ (0, [ a ]); (1, [ a ]) ]))

let soak_replays_exactly () =
  let run () = Chaos.Soak.run ~duration_ms:30_000.0 ~variant:Samya.Config.Star ~seed:7 () in
  let a = run () and b = run () in
  let fingerprint (r : Chaos.Soak.report) =
    (r.granted, r.rejected, r.unavailable, r.redistributions, r.durable_syncs, r.duplicated)
  in
  check bool "same seed, same outcome" true (fingerprint a = fingerprint b);
  check bool "faults all healed" true (a.injected = a.healed);
  check Alcotest.string "repro line" "samya_cli chaos --seed 7 --variant star"
    (Chaos.Soak.repro_line a)

let soak_engine_jobs_sweep () =
  (* A region-sharded soak must report byte-identically at every worker
     count — one domain or four, same windows, same channel flush order,
     same report — and still pass the auditor. (Seed 5 is a seed whose
     sharded run genuinely diverges from the legacy single-engine one, so
     this exercises the sharded scheduler, not a degenerate fallback.) *)
  let render (r : Chaos.Soak.report) = Format.asprintf "%a" Chaos.Soak.pp_report r in
  let run engine_jobs =
    Chaos.Soak.run ~duration_ms:30_000.0 ~engine_jobs ~variant:Samya.Config.Majority
      ~seed:5 ()
  in
  let r1 = run 1 in
  check bool "sharded soak passes the audit" true (Chaos.Soak.passed r1);
  let s1 = render r1 in
  check Alcotest.string "engine-jobs 2 byte-identical" s1 (render (run 2));
  check Alcotest.string "engine-jobs 4 byte-identical" s1 (render (run 4))

(* The headline robustness property: across random nemesis seeds and both
   Avantan variants, a crash-amnesiac cluster with write-through
   durability finishes with a clean audit — tokens conserved (Equation 1),
   no origin applied twice, no divergent decision, monotone decided
   prefixes. *)
let soak_conserves_tokens variant name =
  QCheck.Test.make ~count:20 ~name
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let report = Chaos.Soak.run ~duration_ms:45_000.0 ~variant ~seed () in
      if not (Chaos.Soak.passed report) then
        QCheck.Test.fail_reportf "%s@." (Chaos.Soak.repro_line report)
      else true)

(* Per-entity token conservation under the chaos auditor: a multi-entity
   cluster with the batched site-level protocol, random cross-entity
   traffic and the full nemesis schedule must come out of the drain with
   every key's Equation 1 intact and clean decided logs. (Batching
   requires the freeze crash model: batched instances are not yet in the
   per-entity durable images.) *)
let multi_entity_conserves_under_chaos =
  QCheck.Test.make ~count:8 ~name:"chaos: per-entity conservation, batched protocol"
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let n_sites = 5 and n_entities = 40 and quota = 30 in
      let duration_ms = 45_000.0 in
      let key r = Printf.sprintf "key%02d" r in
      let schedule = Chaos.Nemesis.generate ~seed ~n_sites ~duration_ms in
      let root = Des.Rng.create (Int64.of_int seed) in
      let cluster_seed = Des.Rng.bits64 root in
      let config =
        {
          Samya.Config.default with
          variant = Samya.Config.Majority;
          amnesia_on_crash = false;
          prediction_enabled = false;
          protocol_batch = 8;
          entity_shards = 4;
          entity_capacity = n_entities;
        }
      in
      let all_regions = Array.of_list Geonet.Region.all in
      let regions =
        Array.init n_sites (fun i -> all_regions.(i mod Array.length all_regions))
      in
      let auditor = Chaos.Auditor.create ~variant:config.Samya.Config.variant () in
      let cluster =
        Samya.Cluster.create ~seed:cluster_seed ~config ~regions
          ~on_protocol_event:(fun ~site ~entity:_ event ->
            Chaos.Auditor.on_protocol_event auditor ~site event)
          ()
      in
      Samya.Cluster.register_entities cluster
        (List.init n_entities (fun r -> (key r, quota)));
      let engine = Samya.Cluster.engine cluster in
      let injector =
        Chaos.Injector.install
          ~schedule_at:(Des.Engine.schedule_at engine)
          ~network:(Samya.Cluster.network cluster)
          ~crash:(Samya.Cluster.crash_site cluster)
          ~recover:(fun site ->
            Chaos.Auditor.note_recovery auditor ~site;
            Samya.Cluster.recover_site cluster site)
          schedule
      in
      (* One client per region, each acquiring and releasing across the
         whole key space — never releasing more of a key than it holds. *)
      Array.iter
        (fun region ->
          let rng = Des.Rng.split root in
          let held = Array.make n_entities 0 in
          let rec step () =
            Des.Engine.schedule engine
              ~delay_ms:(Des.Rng.exponential rng ~rate:(1.0 /. 40.0))
              (fun () ->
                if Des.Engine.now engine < duration_ms then begin
                  let r = Des.Rng.int rng n_entities in
                  (if held.(r) > 0 && Des.Rng.bool rng 0.4 then begin
                     let amount = 1 + Des.Rng.int rng (min 3 held.(r)) in
                     held.(r) <- held.(r) - amount;
                     Samya.Cluster.submit cluster ~region
                       (Samya.Types.Release { entity = key r; amount; deadline_ms = infinity })
                       ~reply:(fun _ -> ())
                   end
                   else
                     let amount = 1 + Des.Rng.int rng 4 in
                     Samya.Cluster.submit cluster ~region
                       (Samya.Types.Acquire { entity = key r; amount; deadline_ms = infinity })
                       ~reply:(fun response ->
                         if response = Samya.Types.Granted then
                           held.(r) <- held.(r) + amount));
                  step ()
                end)
          in
          step ())
        regions;
      Des.Engine.run engine
        ~until_ms:
          (duration_ms
          +. Float.max 240_000.0 (4.0 *. config.Samya.Config.anti_entropy_ms));
      if Chaos.Injector.injected injector <> Chaos.Injector.healed injector then
        QCheck.Test.fail_reportf "seed %d: unhealed faults" seed;
      List.iteri
        (fun r (entity, maximum) ->
          (* Live/log checks once (they are entity-independent); the
             quiescent Equation-1 audit for every key. *)
          let violations =
            if r = 0 then
              Chaos.Auditor.check_cluster auditor cluster ~entity ~maximum
                ~quiescent:true
            else
              match Samya.Cluster.check_invariant cluster ~entity ~maximum with
              | Ok () -> []
              | Error detail ->
                  [ { Chaos.Auditor.check = "conservation"; site = None; detail } ]
          in
          match violations with
          | [] -> ()
          | v :: _ ->
              QCheck.Test.fail_reportf "seed %d, %s: %a" seed entity
                Chaos.Auditor.pp_violation v)
        (List.init n_entities (fun r -> (key r, quota)));
      true)

let suite =
  [
    Alcotest.test_case "nemesis: deterministic per seed" `Quick nemesis_deterministic;
    Alcotest.test_case "nemesis: schedule shape" `Quick nemesis_shape;
    Alcotest.test_case "nemesis: parameter validation" `Quick nemesis_validation;
    Alcotest.test_case "auditor: duplicate origin" `Quick auditor_flags_duplicate_origin;
    Alcotest.test_case "auditor: divergent values" `Quick auditor_flags_divergent_values;
    Alcotest.test_case "soak: replays exactly" `Quick soak_replays_exactly;
    Alcotest.test_case "soak: engine-jobs sweep byte-identical" `Slow
      soak_engine_jobs_sweep;
    QCheck_alcotest.to_alcotest
      (soak_conserves_tokens Samya.Config.Majority
         "chaos soak: clean audit across seeds (Avantan[(n+1)/2])");
    QCheck_alcotest.to_alcotest
      (soak_conserves_tokens Samya.Config.Star
         "chaos soak: clean audit across seeds (Avantan[*])");
    QCheck_alcotest.to_alcotest multi_entity_conserves_under_chaos;
  ]
