(* Tests for the Samya core: protocol types, demand tracking, sites,
   clusters, both Avantan variants, queueing, ablations, reads, failures,
   and the Equation-1 invariant under randomized schedules. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let entity = "VM"

let regions () = Array.of_list Geonet.Region.default_five

let make_cluster ?(variant = Samya.Config.Majority) ?(config_f = fun c -> c) ?(seed = 42L)
    ?(maximum = 5_000) ?drop () =
  let config = config_f { Samya.Config.default with variant } in
  let cluster =
    Samya.Cluster.create ~seed ~config ~regions:(regions ()) ?drop_probability:drop ()
  in
  Samya.Cluster.init_entity cluster ~entity ~maximum;
  cluster

let submit_at cluster ~time_ms ~region request callback =
  Des.Engine.schedule_at
    (Samya.Cluster.engine cluster)
    ~time_ms
    (fun () -> Samya.Cluster.submit cluster ~region request ~reply:callback)

let drain ?(extra = 120_000.0) cluster =
  let engine = Samya.Cluster.engine cluster in
  Des.Engine.run engine ~until_ms:(Des.Engine.now engine +. extra)

(* ------------------------------------------------------------------ *)
(* Protocol helpers *)

let protocol_value_helpers () =
  let open Samya.Protocol in
  let value =
    make_value
      ~origin:{ Consensus.Ballot.num = 3; site = 1 }
      [
        { site = 2; tokens_left = 5; tokens_wanted = 0 };
        { site = 0; tokens_left = 1; tokens_wanted = 4 };
      ]
  in
  check (Alcotest.list int) "participants sorted" [ 0; 2 ] (participants value);
  check bool "membership" true (mem_site value 0);
  check bool "non-member" false (mem_site value 1);
  check bool "self equal" true (value_equal value value)

(* ------------------------------------------------------------------ *)
(* Demand tracker *)

let demand_tracker_epochs () =
  let engine = Des.Engine.create () in
  let tracker = Samya.Demand_tracker.create ~engine ~epoch_ms:1_000.0 ~capacity:8 in
  Des.Engine.schedule_at engine ~time_ms:100.0 (fun () ->
      Samya.Demand_tracker.record tracker ~amount:5);
  Des.Engine.schedule_at engine ~time_ms:200.0 (fun () ->
      Samya.Demand_tracker.record tracker ~amount:(-2));
  Des.Engine.schedule_at engine ~time_ms:1_500.0 (fun () ->
      Samya.Demand_tracker.record tracker ~amount:7);
  Des.Engine.schedule_at engine ~time_ms:3_500.0 (fun () ->
      Samya.Demand_tracker.record tracker ~amount:1);
  Des.Engine.run engine;
  let history = Samya.Demand_tracker.history tracker in
  (* Epochs 0..2 completed: net 3, 7, 0 (gap epoch). *)
  check (Alcotest.array (Alcotest.float 1e-9)) "net history" [| 3.0; 7.0; 0.0 |] history;
  let peaks = Samya.Demand_tracker.peak_history tracker in
  check (Alcotest.float 1e-9) "peak of epoch 0" 5.0 peaks.(0);
  check (Alcotest.float 1e-9) "current epoch demand" 1.0
    (Samya.Demand_tracker.current_epoch_demand tracker)

let demand_tracker_capacity () =
  let engine = Des.Engine.create () in
  let tracker = Samya.Demand_tracker.create ~engine ~epoch_ms:10.0 ~capacity:4 in
  for i = 0 to 9 do
    Des.Engine.schedule_at engine ~time_ms:(float_of_int i *. 10.0) (fun () ->
        Samya.Demand_tracker.record tracker ~amount:i)
  done;
  Des.Engine.run engine;
  let history = Samya.Demand_tracker.history tracker in
  check int "capacity bound" 4 (Array.length history);
  check (Alcotest.float 1e-9) "keeps the newest" 8.0 history.(3)

(* ------------------------------------------------------------------ *)
(* Serving basics *)

let acquire_release_roundtrip () =
  let cluster = make_cluster () in
  let responses = ref [] in
  let remember tag response = responses := (tag, response) :: !responses in
  submit_at cluster ~time_ms:0.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.Acquire { entity; amount = 10; deadline_ms = infinity })
    (remember "acquire");
  submit_at cluster ~time_ms:100.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.Release { entity; amount = 4; deadline_ms = infinity })
    (remember "release");
  drain cluster;
  check int "both replied" 2 (List.length !responses);
  List.iter
    (fun (_, response) ->
      check bool "granted" true (response = Samya.Types.Granted))
    !responses;
  check int "net acquired" 6 (Samya.Cluster.total_acquired cluster ~entity);
  check int "local pool reduced" 994
    (Samya.Site.tokens_left (Samya.Cluster.site cluster 0) ~entity)

let invalid_amount_rejected () =
  let cluster = make_cluster () in
  let response = ref None in
  submit_at cluster ~time_ms:0.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.Acquire { entity; amount = 0; deadline_ms = infinity })
    (fun r -> response := Some r);
  drain cluster;
  check bool "rejected" true (!response = Some Samya.Types.Rejected)

let unknown_entity_rejected () =
  let cluster = make_cluster () in
  let response = ref None in
  submit_at cluster ~time_ms:0.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.Acquire { entity = "nope"; amount = 1; deadline_ms = infinity })
    (fun r -> response := Some r);
  drain cluster;
  check bool "rejected" true (!response = Some Samya.Types.Rejected)

let routed_to_nearest_site () =
  let cluster = make_cluster () in
  submit_at cluster ~time_ms:0.0 ~region:Geonet.Region.Asia_east2
    (Samya.Types.Acquire { entity; amount = 3; deadline_ms = infinity })
    ignore;
  drain cluster;
  check int "asia site served it" 3
    (Samya.Site.acquired_net (Samya.Cluster.site cluster 1) ~entity)

let read_returns_global_snapshot () =
  let cluster = make_cluster () in
  let result = ref None in
  submit_at cluster ~time_ms:0.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.Acquire { entity; amount = 100; deadline_ms = infinity })
    ignore;
  submit_at cluster ~time_ms:5_000.0 ~region:Geonet.Region.Europe_west2
    (Samya.Types.Read { entity; deadline_ms = infinity })
    (fun r -> result := Some r);
  drain cluster;
  match !result with
  | Some (Samya.Types.Read_result { tokens_available }) ->
      check int "global availability" 4_900 tokens_available
  | _ -> Alcotest.fail "no read result"

(* ------------------------------------------------------------------ *)
(* Redistribution behaviour *)

let burst cluster ~region ~start ~count ~gap grant_counter reject_counter =
  for i = 0 to count - 1 do
    submit_at cluster ~time_ms:(start +. (float_of_int i *. gap)) ~region
      (Samya.Types.Acquire { entity; amount = 1; deadline_ms = infinity })
      (function
        | Samya.Types.Granted -> incr grant_counter
        | Samya.Types.Rejected -> incr reject_counter
        | _ -> ())
  done

let redistribution_exceeds_local_share variant () =
  let cluster = make_cluster ~variant () in
  let granted = ref 0 and rejected = ref 0 in
  (* 1800 > the local share of 1000: needs redistribution to succeed. *)
  burst cluster ~region:Geonet.Region.Us_west1 ~start:0.0 ~count:1_800 ~gap:5.0 granted
    rejected;
  drain ~extra:200_000.0 cluster;
  check bool
    (Printf.sprintf "most granted via redistribution (granted=%d)" !granted)
    true
    (!granted > 1_500);
  check bool "redistributions happened" true (Samya.Cluster.total_redistributions cluster > 0);
  check bool "invariant" true
    (Samya.Cluster.check_invariant cluster ~entity ~maximum:5_000 = Ok ())

let constraint_is_global variant () =
  (* Demand 7000 against M = 5000: exactly 5000 granted in total. *)
  let cluster = make_cluster ~variant () in
  let granted = ref 0 and rejected = ref 0 in
  Array.iter
    (fun region ->
      burst cluster ~region ~start:0.0 ~count:1_400 ~gap:10.0 granted rejected)
    (regions ());
  drain ~extra:400_000.0 cluster;
  check bool
    (Printf.sprintf "never exceeds the maximum (granted=%d)" !granted)
    true (!granted <= 5_000);
  check bool "most of the pool is used" true (!granted > 4_500);
  check bool "rest rejected or queued" true (!rejected > 0);
  check bool "invariant" true
    (Samya.Cluster.check_invariant cluster ~entity ~maximum:5_000 = Ok ())

let no_redistribution_rejects_locally () =
  let cluster =
    make_cluster
      ~config_f:(fun c -> { c with Samya.Config.redistribution_enabled = false })
      ()
  in
  let granted = ref 0 and rejected = ref 0 in
  burst cluster ~region:Geonet.Region.Us_west1 ~start:0.0 ~count:1_500 ~gap:2.0 granted
    rejected;
  drain cluster;
  check int "exactly the local share granted" 1_000 !granted;
  check int "the rest rejected" 500 !rejected;
  check int "no redistributions" 0 (Samya.Cluster.total_redistributions cluster)

let no_constraint_grants_everything () =
  let cluster =
    make_cluster ~config_f:(fun c -> { c with Samya.Config.enforce_constraint = false }) ()
  in
  let granted = ref 0 and rejected = ref 0 in
  burst cluster ~region:Geonet.Region.Us_west1 ~start:0.0 ~count:8_000 ~gap:1.0 granted
    rejected;
  drain cluster;
  check int "all granted" 8_000 !granted;
  check int "none rejected" 0 !rejected

let no_prediction_is_reactive_only () =
  let cluster =
    make_cluster ~config_f:(fun c -> { c with Samya.Config.prediction_enabled = false }) ()
  in
  let granted = ref 0 and rejected = ref 0 in
  burst cluster ~region:Geonet.Region.Us_west1 ~start:0.0 ~count:1_500 ~gap:5.0 granted
    rejected;
  drain ~extra:200_000.0 cluster;
  let stats = Samya.Cluster.aggregate_site_stats cluster in
  check int "no proactive triggers" 0 stats.Samya.Site.proactive_triggers;
  check bool "reactive triggers fired" true (stats.Samya.Site.reactive_triggers > 0)

let requests_queue_during_redistribution () =
  (* Reactive-only so the redistribution happens exactly at exhaustion. *)
  let cluster =
    make_cluster ~config_f:(fun c -> { c with Samya.Config.prediction_enabled = false }) ()
  in
  let engine = Samya.Cluster.engine cluster in
  (* Exhaust site 0 so the next acquire triggers a reactive instance. *)
  submit_at cluster ~time_ms:0.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.Acquire { entity; amount = 1_000; deadline_ms = infinity })
    ignore;
  let reply_time = ref nan in
  submit_at cluster ~time_ms:1_000.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.Acquire { entity; amount = 10; deadline_ms = infinity })
    (fun _ -> reply_time := Des.Engine.now engine);
  drain cluster;
  (* The reply had to wait for a cross-region protocol round, far longer
     than the ~2 ms local path. *)
  check bool
    (Printf.sprintf "queued behind Avantan (%.1f ms)" (!reply_time -. 1_000.0))
    true
    (!reply_time -. 1_000.0 > 50.0)

(* ------------------------------------------------------------------ *)
(* Failures *)

let aborts_when_majority_unreachable () =
  let cluster = make_cluster () in
  (* Cut site 0 off with one peer only: a fresh leader cannot assemble a
     majority, aborts, and serves/rejects locally (§4.3.1). *)
  Samya.Cluster.partition cluster [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  let granted = ref 0 and rejected = ref 0 in
  burst cluster ~region:Geonet.Region.Us_west1 ~start:0.0 ~count:1_200 ~gap:5.0 granted
    rejected;
  drain ~extra:300_000.0 cluster;
  check int "local share still served" 1_000 !granted;
  check bool "excess rejected after aborts" true (!rejected > 0);
  let stats = Samya.Cluster.aggregate_site_stats cluster in
  check bool "instances aborted" true (stats.Samya.Site.redistributions_aborted > 0)

let star_redistributes_in_minority_partition () =
  let cluster = make_cluster ~variant:Samya.Config.Star () in
  Samya.Cluster.partition cluster [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  let granted = ref 0 and rejected = ref 0 in
  (* 1500 > 1000 local: Avantan[*] can pull site 1's tokens despite being
     in a 2-node minority. *)
  burst cluster ~region:Geonet.Region.Us_west1 ~start:0.0 ~count:1_500 ~gap:5.0 granted
    rejected;
  drain ~extra:300_000.0 cluster;
  check bool (Printf.sprintf "served beyond local share (%d)" !granted) true
    (!granted > 1_200);
  check bool "invariant" true
    (Samya.Cluster.check_invariant cluster ~entity ~maximum:5_000 = Ok ())

let crashed_site_fails_over () =
  let cluster = make_cluster () in
  Samya.Cluster.crash_site cluster 0;
  let served_by = ref None in
  submit_at cluster ~time_ms:0.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.Acquire { entity; amount = 5; deadline_ms = infinity })
    (fun response ->
      check bool "granted elsewhere" true (response = Samya.Types.Granted);
      served_by := Some ());
  drain cluster;
  check bool "request served" true (!served_by <> None);
  check int "crashed site untouched" 1_000
    (Samya.Site.tokens_left (Samya.Cluster.site cluster 0) ~entity);
  (* The app manager failed over to some other site. *)
  let total_elsewhere =
    List.fold_left
      (fun acc i -> acc + Samya.Site.acquired_net (Samya.Cluster.site cluster i) ~entity)
      0 [ 1; 2; 3; 4 ]
  in
  check int "served by a live site" 5 total_elsewhere

let all_sites_down_unavailable () =
  let cluster = make_cluster () in
  for i = 0 to 4 do
    Samya.Cluster.crash_site cluster i
  done;
  let response = ref None in
  submit_at cluster ~time_ms:0.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.Acquire { entity; amount = 1; deadline_ms = infinity })
    (fun r -> response := Some r);
  drain cluster;
  check bool "unavailable" true (!response = Some Samya.Types.Unavailable)

let recovery_restores_service () =
  let cluster = make_cluster () in
  Samya.Cluster.crash_site cluster 0;
  Samya.Cluster.recover_site cluster 0;
  let response = ref None in
  submit_at cluster ~time_ms:0.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.Acquire { entity; amount = 1; deadline_ms = infinity })
    (fun r -> response := Some r);
  drain cluster;
  check bool "granted after recovery" true (!response = Some Samya.Types.Granted);
  check int "served locally again" 1
    (Samya.Site.acquired_net (Samya.Cluster.site cluster 0) ~entity)

(* ------------------------------------------------------------------ *)
(* Decided-log bounding *)

let decided_log_stays_bounded () =
  (* Retention 2 while many instances decide: the recovery log must stay
     capped and token conservation must survive the dropped history. *)
  let cluster =
    make_cluster
      ~config_f:(fun c -> { c with Samya.Config.decided_log_retention = 2 })
      ()
  in
  let granted = ref 0 and rejected = ref 0 in
  burst cluster ~region:Geonet.Region.Us_west1 ~start:0.0 ~count:1_800 ~gap:5.0 granted
    rejected;
  drain ~extra:200_000.0 cluster;
  check bool "several instances decided" true
    (Samya.Cluster.total_redistributions cluster > 1);
  for i = 0 to 4 do
    let len =
      Samya.Site.decided_log_length (Samya.Cluster.site cluster i) ~entity
    in
    check bool (Printf.sprintf "site %d log capped (%d)" i len) true (len <= 2)
  done;
  check bool "invariant" true
    (Samya.Cluster.check_invariant cluster ~entity ~maximum:5_000 = Ok ())

(* ------------------------------------------------------------------ *)
(* Protocol-event hook *)

let event_hook_observes_protocol () =
  (* The structured on_event feed must agree with the unified stats: what
     the sites count is exactly what an observer sees, with no
     printf-scraping. *)
  let started = ref 0 and decided = ref 0 and aborted = ref 0 and joined = ref 0 in
  let config = { Samya.Config.default with Samya.Config.variant = Samya.Config.Majority } in
  let cluster =
    Samya.Cluster.create ~seed:42L ~config ~regions:(regions ())
      ~on_protocol_event:(fun ~site ~entity:e event ->
        check bool "site id in range" true (site >= 0 && site < 5);
        check bool "known entity" true (e = entity);
        match event with
        | Samya.Avantan_core.Election_started _ -> incr started
        | Samya.Avantan_core.Election_joined _ -> incr joined
        | Samya.Avantan_core.Decided _ -> incr decided
        | Samya.Avantan_core.Instance_aborted _ -> incr aborted
        | _ -> ())
      ()
  in
  Samya.Cluster.init_entity cluster ~entity ~maximum:5_000;
  let granted = ref 0 and rejected = ref 0 in
  burst cluster ~region:Geonet.Region.Us_west1 ~start:0.0 ~count:1_800 ~gap:5.0 granted
    rejected;
  drain ~extra:200_000.0 cluster;
  let proto = Samya.Cluster.aggregate_protocol_stats cluster in
  check bool "elections observed" true (!started > 0);
  check bool "cohort joins observed" true (!joined > 0);
  check int "election events = led_started" proto.Samya.Avantan_core.led_started !started;
  check int "decided events = decisions applied"
    proto.Samya.Avantan_core.decisions_applied !decided;
  check int "cohort joins = participations" proto.Samya.Avantan_core.participated !joined

(* ------------------------------------------------------------------ *)
(* Randomized invariants (Theorems 1 & 2, operationally) *)

let random_schedule_invariant variant ~drop ~crash ?(part = false)
    ?(config_f = fun c -> c) (seed, ops) =
  let maximum = 2_000 in
  let cluster =
    make_cluster ~variant ~seed:(Int64.of_int (seed + 1)) ~maximum ~config_f ?drop ()
  in
  let engine = Samya.Cluster.engine cluster in
  let rng = Des.Rng.create (Int64.of_int (seed * 31)) in
  let outstanding = ref 0 in
  List.iteri
    (fun i op ->
      let time_ms = float_of_int i *. Des.Rng.float rng 120.0 in
      let region = Des.Rng.pick rng (regions ()) in
      match op mod 3 with
      | 0 | 1 ->
          let amount = 1 + (op mod 40) in
          submit_at cluster ~time_ms ~region
            (Samya.Types.Acquire { entity; amount; deadline_ms = infinity })
            (function Samya.Types.Granted -> incr outstanding | _ -> ())
      | _ ->
          submit_at cluster ~time_ms ~region (Samya.Types.Read { entity; deadline_ms = infinity }) ignore)
    ops;
  (if crash then
     Des.Engine.schedule engine ~delay_ms:500.0 (fun () -> Samya.Cluster.crash_site cluster 4));
  (if part then
     Des.Engine.schedule engine ~delay_ms:800.0 (fun () ->
         Samya.Cluster.partition cluster [ [ 0; 1 ]; [ 2; 3; 4 ] ]));
  (* Heal loss and partitions before quiescence so retry loops can finish;
     a crashed site recovers (the paper assumes sites do not crash
     indefinitely) and catches up on missed decisions before the
     conservation check. *)
  Des.Engine.run engine ~until_ms:60_000.0;
  Geonet.Network.set_drop_probability (Samya.Cluster.network cluster) 0.0;
  (if part then Samya.Cluster.heal cluster);
  (if crash then Samya.Cluster.recover_site cluster 4);
  Des.Engine.run engine ~until_ms:600_000.0;
  match Samya.Cluster.check_invariant cluster ~entity ~maximum with
  | Ok () -> true
  | Error e -> QCheck.Test.fail_reportf "invariant: %s" e

let arbitrary_schedule =
  QCheck.make
    ~print:(fun (seed, ops) -> Printf.sprintf "seed=%d ops=%d" seed (List.length ops))
    QCheck.Gen.(pair (int_bound 10_000) (list_size (int_range 10 120) (int_bound 1_000)))

let invariant_majority =
  QCheck.Test.make ~count:25 ~name:"Equation 1 holds under random schedules (majority)"
    arbitrary_schedule
    (random_schedule_invariant Samya.Config.Majority ~drop:None ~crash:false)

let invariant_star =
  QCheck.Test.make ~count:25 ~name:"Equation 1 holds under random schedules (star)"
    arbitrary_schedule
    (random_schedule_invariant Samya.Config.Star ~drop:None ~crash:false)

let invariant_majority_lossy =
  QCheck.Test.make ~count:15 ~name:"Equation 1 holds under 5% message loss (majority)"
    arbitrary_schedule
    (random_schedule_invariant Samya.Config.Majority ~drop:(Some 0.05) ~crash:false)

let invariant_majority_crash =
  QCheck.Test.make ~count:15 ~name:"Equation 1 holds with a crashed site (majority)"
    arbitrary_schedule
    (random_schedule_invariant Samya.Config.Majority ~drop:None ~crash:true)

(* The unified core must keep both instantiations token-conserving under
   the same chaos: loss and crashes for the star variant too, and a 2-3
   partition window for both. *)
let invariant_star_lossy =
  QCheck.Test.make ~count:15 ~name:"Equation 1 holds under 5% message loss (star)"
    arbitrary_schedule
    (random_schedule_invariant Samya.Config.Star ~drop:(Some 0.05) ~crash:false)

let invariant_star_crash =
  QCheck.Test.make ~count:15 ~name:"Equation 1 holds with a crashed site (star)"
    arbitrary_schedule
    (random_schedule_invariant Samya.Config.Star ~drop:None ~crash:true)

let invariant_majority_partition =
  QCheck.Test.make ~count:10 ~name:"Equation 1 holds across a partition (majority)"
    arbitrary_schedule
    (random_schedule_invariant Samya.Config.Majority ~drop:None ~crash:false ~part:true)

let invariant_star_partition =
  QCheck.Test.make ~count:10 ~name:"Equation 1 holds across a partition (star)"
    arbitrary_schedule
    (random_schedule_invariant Samya.Config.Star ~drop:None ~crash:false ~part:true)

(* Recovery must replay correctly when the peers only retain a handful of
   decided values: loss + crash with decided_log_retention = 4. *)
let invariant_small_log_cap =
  QCheck.Test.make ~count:10
    ~name:"recovery replays within a small decided-log cap (majority)"
    arbitrary_schedule
    (random_schedule_invariant Samya.Config.Majority ~drop:(Some 0.05) ~crash:true
       ~config_f:(fun c -> { c with Samya.Config.decided_log_retention = 4 }))

(* ------------------------------------------------------------------ *)
(* The sharded entity arena (the multi-entity core).                    *)

let entity_map_registration () =
  let map : unit Samya.Entity_map.t =
    Samya.Entity_map.create ~shards:4 ~capacity:8 ()
  in
  for r = 0 to 99 do
    let core =
      Samya.Entity_map.register map ~entity:(Printf.sprintf "e%02d" r) ~tokens:r
    in
    check int "dense eid in registration order" r core.Samya.Entity_map.eid
  done;
  check int "length" 100 (Samya.Entity_map.length map);
  check int "all cold" 0 (Samya.Entity_map.hot_count map);
  (match Samya.Entity_map.find map "e42" with
  | Some core ->
      check int "find by name" 42 core.Samya.Entity_map.eid;
      check int "tokens kept" 42 core.Samya.Entity_map.tokens_left
  | None -> Alcotest.fail "registered entity not found");
  check bool "unknown name" true (Samya.Entity_map.find map "nope" = None);
  check Alcotest.string "by_eid" "e07" (Samya.Entity_map.by_eid map 7).Samya.Entity_map.name

let entity_map_iteration_shard_independent () =
  (* Iteration runs in dense-eid order whatever the shard count — the
     property every deterministic merge in the stack leans on. *)
  let names shards =
    let map : unit Samya.Entity_map.t = Samya.Entity_map.create ~shards () in
    for r = 0 to 199 do
      ignore (Samya.Entity_map.register map ~entity:(Printf.sprintf "k%03d" r) ~tokens:1)
    done;
    Samya.Entity_map.fold (fun core acc -> core.Samya.Entity_map.name :: acc) map []
  in
  let one = names 1 in
  check bool "1 vs 7 shards" true (one = names 7);
  check bool "1 vs 64 shards" true (one = names 64);
  check bool "registration order" true
    (List.rev one = List.init 200 (Printf.sprintf "k%03d"))

let entity_map_hot_tracking () =
  let map : string Samya.Entity_map.t = Samya.Entity_map.create () in
  let a = Samya.Entity_map.register map ~entity:"a" ~tokens:1 in
  let _b = Samya.Entity_map.register map ~entity:"b" ~tokens:1 in
  Samya.Entity_map.set_hot map a "heavy";
  check int "one hot" 1 (Samya.Entity_map.hot_count map);
  let seen = ref [] in
  Samya.Entity_map.iter_hot
    (fun core hot -> seen := (core.Samya.Entity_map.name, hot) :: !seen)
    map;
  check bool "iter_hot visits the hot one" true (!seen = [ ("a", "heavy") ])

let entity_map_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  check bool "shards >= 1" true
    (invalid (fun () -> (Samya.Entity_map.create ~shards:0 () : unit Samya.Entity_map.t)));
  check bool "capacity >= 1" true
    (invalid (fun () -> (Samya.Entity_map.create ~capacity:0 () : unit Samya.Entity_map.t)));
  let map : unit Samya.Entity_map.t = Samya.Entity_map.create () in
  ignore (Samya.Entity_map.register map ~entity:"dup" ~tokens:1);
  check bool "duplicate name" true
    (invalid (fun () -> Samya.Entity_map.register map ~entity:"dup" ~tokens:1));
  check bool "negative tokens" true
    (invalid (fun () -> Samya.Entity_map.register map ~entity:"neg" ~tokens:(-1)));
  check bool "by_eid out of range" true (invalid (fun () -> Samya.Entity_map.by_eid map 5))

let suite =
  [
    Alcotest.test_case "protocol: value helpers" `Quick protocol_value_helpers;
    Alcotest.test_case "demand tracker: epochs" `Quick demand_tracker_epochs;
    Alcotest.test_case "demand tracker: capacity" `Quick demand_tracker_capacity;
    Alcotest.test_case "serve: acquire/release" `Quick acquire_release_roundtrip;
    Alcotest.test_case "serve: invalid amount" `Quick invalid_amount_rejected;
    Alcotest.test_case "serve: unknown entity" `Quick unknown_entity_rejected;
    Alcotest.test_case "serve: nearest site" `Quick routed_to_nearest_site;
    Alcotest.test_case "serve: global read" `Quick read_returns_global_snapshot;
    Alcotest.test_case "redistribution: majority variant" `Quick
      (redistribution_exceeds_local_share Samya.Config.Majority);
    Alcotest.test_case "redistribution: star variant" `Quick
      (redistribution_exceeds_local_share Samya.Config.Star);
    Alcotest.test_case "constraint: global (majority)" `Slow
      (constraint_is_global Samya.Config.Majority);
    Alcotest.test_case "constraint: global (star)" `Slow
      (constraint_is_global Samya.Config.Star);
    Alcotest.test_case "ablation: no redistribution" `Quick no_redistribution_rejects_locally;
    Alcotest.test_case "ablation: no constraint" `Quick no_constraint_grants_everything;
    Alcotest.test_case "ablation: no prediction" `Quick no_prediction_is_reactive_only;
    Alcotest.test_case "queueing during protocol" `Quick requests_queue_during_redistribution;
    Alcotest.test_case "decided log stays bounded" `Quick decided_log_stays_bounded;
    Alcotest.test_case "event hook matches stats" `Quick event_hook_observes_protocol;
    Alcotest.test_case "failure: fresh-leader abort" `Quick aborts_when_majority_unreachable;
    Alcotest.test_case "failure: star works in minority" `Quick
      star_redistributes_in_minority_partition;
    Alcotest.test_case "failure: app-manager failover" `Quick crashed_site_fails_over;
    Alcotest.test_case "failure: all down" `Quick all_sites_down_unavailable;
    Alcotest.test_case "failure: recovery" `Quick recovery_restores_service;
    QCheck_alcotest.to_alcotest invariant_majority;
    QCheck_alcotest.to_alcotest invariant_star;
    QCheck_alcotest.to_alcotest invariant_majority_lossy;
    QCheck_alcotest.to_alcotest invariant_majority_crash;
    QCheck_alcotest.to_alcotest invariant_star_lossy;
    QCheck_alcotest.to_alcotest invariant_star_crash;
    QCheck_alcotest.to_alcotest invariant_majority_partition;
    QCheck_alcotest.to_alcotest invariant_star_partition;
    QCheck_alcotest.to_alcotest invariant_small_log_cap;
    Alcotest.test_case "entity map: registration" `Quick entity_map_registration;
    Alcotest.test_case "entity map: shard-independent iteration" `Quick
      entity_map_iteration_shard_independent;
    Alcotest.test_case "entity map: hot tracking" `Quick entity_map_hot_tracking;
    Alcotest.test_case "entity map: validation" `Quick entity_map_validation;
  ]
