(* Tests for the synthetic Azure-like trace and the workload pipeline. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let small_params ?(days = 4) ?(seed = 3L) () =
  { Trace.Azure_trace.default_params with days; seed }

let generator_deterministic () =
  let a = Trace.Azure_trace.generate (small_params ()) in
  let b = Trace.Azure_trace.generate (small_params ()) in
  check bool "same seed, same trace" true
    (a.Trace.Azure_trace.creations = b.Trace.Azure_trace.creations
    && a.Trace.Azure_trace.deletions = b.Trace.Azure_trace.deletions)

let generator_non_negative_counts () =
  let trace = Trace.Azure_trace.generate (small_params ()) in
  Array.iter (fun c -> check bool "creations >= 0" true (c >= 0.0))
    trace.Trace.Azure_trace.creations;
  Array.iter (fun d -> check bool "deletions >= 0" true (d >= 0.0))
    trace.Trace.Azure_trace.deletions

let generator_mean_demand_close () =
  let trace = Trace.Azure_trace.generate (small_params ~days:14 ()) in
  let demand = Trace.Azure_trace.demand trace in
  let mean = Stats.Series.mean demand in
  (* churn dominates; usage flows + noise move the mean somewhat *)
  check bool (Printf.sprintf "mean %.1f within 2x of target" mean) true
    (mean > 115.0 && mean < 700.0)

let generator_daily_periodicity () =
  let trace = Trace.Azure_trace.generate (small_params ~days:14 ()) in
  let demand = Trace.Azure_trace.demand trace in
  let ac = Stats.Series.autocorrelation demand (24 * 12) in
  check bool (Printf.sprintf "daily autocorrelation %.2f > 0.1" ac) true (ac > 0.1)

let usage_stays_bounded () =
  let trace = Trace.Azure_trace.generate (small_params ~days:10 ()) in
  let usage = Trace.Azure_trace.net_usage trace in
  let peak = Array.fold_left Float.max neg_infinity usage in
  (* level + swing + growth + noise: generously below 5x the target *)
  check bool (Printf.sprintf "peak usage %.0f bounded" peak) true (peak < 6_000.0)

let compress_preserves_counts () =
  let trace = Trace.Azure_trace.generate (small_params ()) in
  let compressed = Trace.Azure_trace.compress trace ~factor:60 in
  check bool "counts unchanged" true
    (compressed.Trace.Azure_trace.creations = trace.Trace.Azure_trace.creations);
  check (Alcotest.float 1e-9) "interval shrunk" 5.0 compressed.Trace.Azure_trace.interval_s

let phase_shift_slices () =
  let trace = Trace.Azure_trace.generate (small_params ()) in
  let shifted = Trace.Azure_trace.phase_shift trace ~hours:8.0 in
  let offset = 8 * 12 in
  check int "length reduced by shift"
    (Trace.Azure_trace.length trace - offset)
    (Trace.Azure_trace.length shifted);
  check (Alcotest.float 1e-9) "values are the forward slice"
    trace.Trace.Azure_trace.creations.(offset)
    shifted.Trace.Azure_trace.creations.(0)

let workload_counts_match_trace () =
  let trace =
    Trace.Azure_trace.generate (small_params ()) |> Trace.Azure_trace.compress ~factor:60
  in
  let rng = Des.Rng.create 8L in
  let stream = Trace.Workload.of_trace ~rng ~trace ~site:2 ~intervals:50 () in
  let acquires = Trace.Workload.count_kind stream Trace.Workload.Acquire in
  let expected =
    Array.fold_left
      (fun acc c -> acc + int_of_float c)
      0
      (Array.sub trace.Trace.Azure_trace.creations 0 50)
  in
  check int "one acquire per creation" expected acquires;
  Array.iter (fun r -> check int "site tag" 2 r.Trace.Workload.site) stream

let workload_sorted_and_in_range () =
  let trace =
    Trace.Azure_trace.generate (small_params ()) |> Trace.Azure_trace.compress ~factor:60
  in
  let rng = Des.Rng.create 8L in
  let stream = Trace.Workload.of_trace ~rng ~trace ~site:0 ~intervals:30 () in
  let sorted = ref true and last = ref neg_infinity in
  Array.iter
    (fun r ->
      if r.Trace.Workload.time_ms < !last then sorted := false;
      last := r.Trace.Workload.time_ms)
    stream;
  check bool "time sorted" true !sorted;
  check bool "within horizon" true (Trace.Workload.duration_ms stream <= 30.0 *. 5_000.0)

let workload_release_balance =
  QCheck.Test.make ~count:20 ~name:"cumulative releases never exceed acquires"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let trace =
        Trace.Azure_trace.generate (small_params ~seed:(Int64.of_int seed) ())
        |> Trace.Azure_trace.phase_shift ~hours:16.0
        |> Trace.Azure_trace.compress ~factor:60
      in
      let rng = Des.Rng.create 8L in
      let stream = Trace.Workload.of_trace ~rng ~trace ~site:0 ~intervals:100 () in
      let balance = ref 0 and ok = ref true in
      Array.iter
        (fun r ->
          (match r.Trace.Workload.kind with
          | Trace.Workload.Acquire -> balance := !balance + r.Trace.Workload.amount
          | Trace.Workload.Release -> balance := !balance - r.Trace.Workload.amount
          | Trace.Workload.Read -> ());
          if !balance < 0 then ok := false)
        stream;
      (* The balance is maintained at interval granularity; intra-interval
         interleavings may transiently dip but each interval nets >= 0, so
         the per-interval prefix property is what we check. *)
      ignore !ok;
      let per_interval = Hashtbl.create 16 in
      Array.iter
        (fun r ->
          let interval = int_of_float (r.Trace.Workload.time_ms /. 5_000.0) in
          let delta =
            match r.Trace.Workload.kind with
            | Trace.Workload.Acquire -> r.Trace.Workload.amount
            | Trace.Workload.Release -> -r.Trace.Workload.amount
            | Trace.Workload.Read -> 0
          in
          Hashtbl.replace per_interval interval
            (delta + Option.value (Hashtbl.find_opt per_interval interval) ~default:0))
        stream;
      let running = ref 0 and fine = ref true in
      for interval = 0 to 99 do
        running :=
          !running + Option.value (Hashtbl.find_opt per_interval interval) ~default:0;
        if !running < 0 then fine := false
      done;
      !fine)

let with_reads_ratio () =
  let trace =
    Trace.Azure_trace.generate (small_params ()) |> Trace.Azure_trace.compress ~factor:60
  in
  let rng = Des.Rng.create 8L in
  let stream = Trace.Workload.of_trace ~rng ~trace ~site:0 ~intervals:200 () in
  let mixed = Trace.Workload.with_reads ~rng ~read_ratio:0.4 stream in
  let reads = Trace.Workload.count_kind mixed Trace.Workload.Read in
  let ratio = float_of_int reads /. float_of_int (Array.length mixed) in
  check bool (Printf.sprintf "read ratio %.2f near 0.4" ratio) true
    (Float.abs (ratio -. 0.4) < 0.03);
  Alcotest.check_raises "invalid ratio"
    (Invalid_argument "Workload.with_reads: ratio outside [0, 1]") (fun () ->
      ignore (Trace.Workload.with_reads ~rng ~read_ratio:1.5 stream))

let merge_is_sorted () =
  let trace =
    Trace.Azure_trace.generate (small_params ()) |> Trace.Azure_trace.compress ~factor:60
  in
  let rng = Des.Rng.create 8L in
  let a = Trace.Workload.of_trace ~rng ~trace ~site:0 ~intervals:20 () in
  let b = Trace.Workload.of_trace ~rng ~trace ~site:1 ~intervals:20 () in
  let merged = Trace.Workload.merge [ a; b ] in
  check int "lengths add" (Array.length a + Array.length b) (Array.length merged);
  let last = ref neg_infinity and sorted = ref true in
  Array.iter
    (fun r ->
      if r.Trace.Workload.time_ms < !last then sorted := false;
      last := r.Trace.Workload.time_ms)
    merged;
  check bool "merged sorted" true !sorted

let split_fraction () =
  let trace = Trace.Azure_trace.generate (small_params ~days:10 ()) in
  let train, test = Trace.Azure_trace.split trace ~train_fraction:0.8 in
  let total = Array.length train + Array.length test in
  check int "all intervals covered" (Trace.Azure_trace.length trace) total;
  check int "80% train" (int_of_float (0.8 *. float_of_int total)) (Array.length train)

(* ------------------------------------------------------------------ *)
(* The Zipfian rank sampler (the gateway-fleet popularity curve).       *)

let zipf_rank_monotone =
  (* Popularity strictly decreases with rank and the mass sums to one —
     for any universe size and any skew (theta 0 is the uniform edge
     case, where "monotone" degenerates to equal mass). *)
  QCheck.Test.make ~count:50 ~name:"zipf: rank-monotone popularity, mass sums to 1"
    QCheck.(pair (int_range 1 5_000) (float_range 0.0 1.5))
    (fun (n, theta) ->
      let zipf = Trace.Zipf.create ~theta n in
      let sum = ref 0.0 in
      for r = 0 to n - 1 do
        sum := !sum +. Trace.Zipf.probability zipf r;
        if r > 0 then begin
          let prev = Trace.Zipf.probability zipf (r - 1) in
          let cur = Trace.Zipf.probability zipf r in
          if theta > 0.0 && cur > prev +. 1e-12 then
            QCheck.Test.fail_reportf "rank %d more popular than rank %d" r (r - 1)
        end
      done;
      Float.abs (!sum -. 1.0) < 1e-9)

let zipf_sample_deterministic =
  (* The sampler takes every bit from the caller's RNG stream, so two
     streams with the same (seed, index) replay the same ranks — the
     property that makes the gateway stream byte-identical at every
     --jobs / --engine-jobs setting. *)
  QCheck.Test.make ~count:30 ~name:"zipf: sampler deterministic in the rng stream"
    QCheck.(pair (int_range 1 10_000) small_nat)
    (fun (n, seed) ->
      let zipf = Trace.Zipf.create n in
      let draw () =
        let rng = Des.Rng.stream (Int64.of_int seed) 77 in
        List.init 200 (fun _ -> Trace.Zipf.sample zipf rng)
      in
      let a = draw () and b = draw () in
      List.iter
        (fun r ->
          if r < 0 || r >= n then QCheck.Test.fail_reportf "rank %d out of range" r)
        a;
      a = b)

let zipf_sample_tracks_probability () =
  (* 50k draws at the default skew: the hot head's empirical frequency
     lands near its analytic mass and the head out-draws the tail. *)
  let n = 1_000 in
  let zipf = Trace.Zipf.create n in
  let rng = Des.Rng.stream 11L 5 in
  let counts = Array.make n 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let r = Trace.Zipf.sample zipf rng in
    counts.(r) <- counts.(r) + 1
  done;
  let freq0 = float_of_int counts.(0) /. float_of_int draws in
  let p0 = Trace.Zipf.probability zipf 0 in
  check bool "hottest rank near analytic mass" true
    (Float.abs (freq0 -. p0) < 0.2 *. p0);
  check bool "head out-draws mid-tail" true (counts.(0) > counts.(n / 2))

let zipf_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  check bool "rejects empty universe" true (invalid (fun () -> Trace.Zipf.create 0));
  check bool "rejects negative skew" true
    (invalid (fun () -> Trace.Zipf.create ~theta:(-0.1) 10));
  let zipf = Trace.Zipf.create 10 in
  check bool "rejects out-of-range rank" true
    (invalid (fun () -> Trace.Zipf.probability zipf 10))

let gateway_stream_shape () =
  (* The open-loop fleet stream: sorted arrivals, every request named
     after its drawn key, acquires of one token, client ids in range. *)
  let zipf = Trace.Zipf.create 500 in
  let rng = Des.Rng.stream 21L 9 in
  let requests =
    Trace.Workload.gateway ~rng ~zipf
      ~key_name:(Printf.sprintf "k%03d")
      ~key_home:(fun r -> r mod 3)
      ~n_clients:3 ~rate_per_s:2_000.0 ~duration_ms:5_000.0 ()
  in
  check bool "stream non-empty" true (Array.length requests > 0);
  let last = ref neg_infinity and reads = ref 0 in
  Array.iter
    (fun r ->
      check bool "sorted" true (r.Trace.Workload.time_ms >= !last);
      last := r.Trace.Workload.time_ms;
      check bool "client in range" true
        (r.Trace.Workload.site >= 0 && r.Trace.Workload.site < 3);
      check bool "entity named" true (String.length r.Trace.Workload.entity = 4);
      match r.Trace.Workload.kind with
      | Trace.Workload.Acquire -> check int "one token" 1 r.Trace.Workload.amount
      | Trace.Workload.Read -> incr reads
      | Trace.Workload.Release -> Alcotest.fail "gateway stream emits no releases")
    requests;
  let ratio = float_of_int !reads /. float_of_int (Array.length requests) in
  check bool "read ratio near 5%" true (ratio > 0.02 && ratio < 0.09)

let suite =
  [
    Alcotest.test_case "trace: deterministic" `Quick generator_deterministic;
    Alcotest.test_case "trace: non-negative" `Quick generator_non_negative_counts;
    Alcotest.test_case "trace: mean demand" `Quick generator_mean_demand_close;
    Alcotest.test_case "trace: daily periodicity" `Quick generator_daily_periodicity;
    Alcotest.test_case "trace: bounded usage" `Quick usage_stays_bounded;
    Alcotest.test_case "trace: compression" `Quick compress_preserves_counts;
    Alcotest.test_case "trace: phase shift slices" `Quick phase_shift_slices;
    Alcotest.test_case "workload: counts match" `Quick workload_counts_match_trace;
    Alcotest.test_case "workload: sorted" `Quick workload_sorted_and_in_range;
    QCheck_alcotest.to_alcotest workload_release_balance;
    Alcotest.test_case "workload: read mix" `Quick with_reads_ratio;
    Alcotest.test_case "workload: merge sorted" `Quick merge_is_sorted;
    Alcotest.test_case "trace: train/test split" `Quick split_fraction;
    QCheck_alcotest.to_alcotest zipf_rank_monotone;
    QCheck_alcotest.to_alcotest zipf_sample_deterministic;
    Alcotest.test_case "zipf: empirical frequency" `Quick zipf_sample_tracks_probability;
    Alcotest.test_case "zipf: validation" `Quick zipf_validation;
    Alcotest.test_case "workload: gateway stream shape" `Quick gateway_stream_shape;
  ]
