(* White-box tests of the Avantan state machines: the failure-free phases
   and the recovery cases of Algorithm 1 (§4.3.1) and of Avantan[*]
   (§4.3.2), driven by crafted message sequences against a single machine
   with a scripted environment. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

module Ballot = Consensus.Ballot
module P = Samya.Protocol

let entry site tokens_left tokens_wanted = { P.site; tokens_left; tokens_wanted }

(* Scripted environment: outbound messages, outcomes, and the structured
   protocol events of the {!Avantan_core.on_event} hook are all recorded
   so tests can assert on them. *)
type script = {
  engine : Des.Engine.t;
  sent : (int * P.msg) list ref;
  outcomes : P.outcome list ref;
  events : Samya.Avantan_core.event list ref;  (* newest first *)
  mutable state : P.site_entry;
}

let make_script ?(self = 0) ?(tokens_left = 100) ?(tokens_wanted = 50) () =
  let engine = Des.Engine.create () in
  let script =
    {
      engine;
      sent = ref [];
      outcomes = ref [];
      events = ref [];
      state = entry self tokens_left tokens_wanted;
    }
  in
  script

(* Both variants now share one env type: the policy, not the env, is what
   distinguishes them. *)
let core_env script ~self ~n_sites =
  {
    Samya.Avantan_core.self;
    n_sites;
    send = (fun dst msg -> script.sent := (dst, msg) :: !(script.sent));
    set_timer = (fun ~delay_ms f -> Des.Engine.timer script.engine ~delay_ms f);
    local_state = (fun ~scope:_ -> [ ("", script.state) ]);
    refresh_wanted = (fun ~scope:_ -> ());
    my_scope = (fun () -> []);
    on_outcome = (fun outcome -> script.outcomes := outcome :: !(script.outcomes));
    on_event = (fun event -> script.events := event :: !(script.events));
    persist = (fun () -> ());
    election_timeout_ms = 800.0;
    accept_timeout_ms = 800.0;
    cohort_timeout_ms = 2_500.0;
    status_retry_ms = 1_000.0;
  }

let majority_env = core_env

let star_env = core_env

let has_event script predicate = List.exists predicate !(script.events)

let sent_to script dst =
  List.filter_map (fun (d, m) -> if d = dst then Some m else None) !(script.sent)
  |> List.rev

let count_kind script predicate =
  List.length (List.filter (fun (_, m) -> predicate m) !(script.sent))

let is_election = function P.Election_get_value _ -> true | _ -> false
let is_accept = function P.Accept_value _ -> true | _ -> false
let is_decision = function P.Decision _ -> true | _ -> false
let is_discard = function P.Discard _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Majority variant: failure-free leader path *)

let maj_leader_happy_path () =
  let script = make_script () in
  let machine = Samya.Avantan_majority.create (majority_env script ~self:0 ~n_sites:5) in
  Samya.Avantan_majority.start machine;
  check int "election broadcast to 4 peers" 4 (count_kind script is_election);
  check bool "participating while leading" true
    (Samya.Avantan_majority.participating machine);
  let bal = Samya.Avantan_majority.ballot machine in
  (* Two ElectionOks (+ self) form the majority of 5. *)
  List.iter
    (fun site ->
      Samya.Avantan_majority.handle machine ~src:site
        (P.Election_ok_value
           {
             bal;
             contribs = [ ("", entry site 200 0) ];
             accept_val = None;
             accept_num = Ballot.zero site;
             decision = false;
           }))
    [ 1; 2 ];
  check int "accept broadcast" 4 (count_kind script is_accept);
  (* Acks from the same majority decide. *)
  List.iter
    (fun site -> Samya.Avantan_majority.handle machine ~src:site (P.Accept_ok { bal }))
    [ 1; 2 ];
  check int "decision broadcast" 4 (count_kind script is_decision);
  (match !(script.outcomes) with
  | [ P.Decided value ] ->
      check (Alcotest.list int) "R_t = responders + self" [ 0; 1; 2 ]
        (P.participants value)
  | _ -> Alcotest.fail "expected one decided outcome");
  check bool "instance concluded" false (Samya.Avantan_majority.participating machine);
  (* The structured event feed saw the whole instance. *)
  check bool "election event" true
    (has_event script (function
      | Samya.Avantan_core.Election_started { round = 1; _ } -> true
      | _ -> false));
  check bool "construction event" true
    (has_event script (function
      | Samya.Avantan_core.Value_constructed { participants = 3; _ } -> true
      | _ -> false));
  check bool "decided event as leader, one round" true
    (has_event script (function
      | Samya.Avantan_core.Decided { led = true; rounds = 1; participants = 3; _ } -> true
      | _ -> false))

let maj_cohort_happy_path () =
  let script = make_script ~self:3 ~tokens_wanted:0 () in
  let machine = Samya.Avantan_majority.create (majority_env script ~self:3 ~n_sites:5) in
  let bal = { Ballot.num = 1; site = 0 } in
  Samya.Avantan_majority.handle machine ~src:0 (P.Election_get_value { bal; scope = [] });
  (match sent_to script 0 with
  | [ P.Election_ok_value { bal = b; contribs = [ (_, init_val) ]; _ } ] ->
      check bool "promised the ballot" true (Ballot.equal b bal);
      check int "reports own tokens" 100 init_val.P.tokens_left
  | _ -> Alcotest.fail "expected an ElectionOk");
  check bool "exposed after promising" true (Samya.Avantan_majority.participating machine);
  let value = P.make_value ~origin:bal [ entry 0 50 10; entry 3 100 0 ] in
  Samya.Avantan_majority.handle machine ~src:0
    (P.Accept_value { bal; value; decision = false });
  check bool "acked" true
    (List.exists (function P.Accept_ok _ -> true | _ -> false) (sent_to script 0));
  Samya.Avantan_majority.handle machine ~src:0 (P.Decision { bal; value });
  (match !(script.outcomes) with
  | [ P.Decided v ] -> check bool "same value" true (P.value_equal v value)
  | _ -> Alcotest.fail "expected decided");
  check bool "released" false (Samya.Avantan_majority.participating machine);
  check bool "joined event names the leader" true
    (has_event script (function
      | Samya.Avantan_core.Election_joined { leader = 0; _ } -> true
      | _ -> false));
  check bool "accepted event" true
    (has_event script (function
      | Samya.Avantan_core.Value_accepted { leader = 0; _ } -> true
      | _ -> false));
  check bool "decided event as pure cohort" true
    (has_event script (function
      | Samya.Avantan_core.Decided { led = false; rounds = 0; _ } -> true
      | _ -> false))

let maj_stale_ballot_ignored () =
  let script = make_script ~self:3 () in
  let machine = Samya.Avantan_majority.create (majority_env script ~self:3 ~n_sites:5) in
  let high = { Ballot.num = 5; site = 0 } in
  Samya.Avantan_majority.handle machine ~src:0 (P.Election_get_value { bal = high; scope = [] });
  script.sent := [];
  (* A lower ballot from another would-be leader is ignored. *)
  Samya.Avantan_majority.handle machine ~src:1
    (P.Election_get_value { bal = { Ballot.num = 2; site = 1 }; scope = [] });
  check int "no reply to a stale election" 0 (List.length !(script.sent))

let maj_decision_applied_once () =
  let script = make_script ~self:3 () in
  let machine = Samya.Avantan_majority.create (majority_env script ~self:3 ~n_sites:5) in
  let bal = { Ballot.num = 2; site = 0 } in
  let value = P.make_value ~origin:bal [ entry 0 0 40; entry 3 100 0 ] in
  Samya.Avantan_majority.handle machine ~src:0 (P.Decision { bal; value });
  Samya.Avantan_majority.handle machine ~src:1 (P.Decision { bal; value });
  let decided =
    List.filter (function P.Decided _ -> true | P.Aborted -> false) !(script.outcomes)
  in
  check int "one application for duplicate decisions" 1 (List.length decided)

let maj_recovery_adopts_accepted_value () =
  (* The new leader's majority includes a cohort holding an accepted value:
     it must adopt it, not construct a fresh one (lines 19-20). *)
  let script = make_script () in
  let machine = Samya.Avantan_majority.create (majority_env script ~self:0 ~n_sites:5) in
  Samya.Avantan_majority.start machine;
  let bal = Samya.Avantan_majority.ballot machine in
  let old_bal = { Ballot.num = 0; site = 4 } in
  let orphan = P.make_value ~origin:old_bal [ entry 4 10 5; entry 1 300 0 ] in
  Samya.Avantan_majority.handle machine ~src:1
    (P.Election_ok_value
       {
         bal;
         contribs = [ ("", entry 1 300 0) ];
         accept_val = Some orphan;
         accept_num = old_bal;
         decision = false;
       });
  Samya.Avantan_majority.handle machine ~src:2
    (P.Election_ok_value
       {
         bal;
         contribs = [ ("", entry 2 300 0) ];
         accept_val = None;
         accept_num = Ballot.zero 2;
         decision = false;
       });
  (* The accept phase must re-drive the orphaned value. *)
  let accepts =
    List.filter_map
      (fun (_, m) -> match m with P.Accept_value { value; _ } -> Some value | _ -> None)
      !(script.sent)
  in
  (match accepts with
  | value :: _ -> check bool "adopted the orphan" true (P.value_equal value orphan)
  | [] -> Alcotest.fail "no Accept-Value sent")

let maj_recovery_short_circuits_on_decision () =
  (* A response reporting decision=true ends the protocol immediately:
     the new leader just redistributes the decision (lines 16-18). *)
  let script = make_script () in
  let machine = Samya.Avantan_majority.create (majority_env script ~self:0 ~n_sites:5) in
  Samya.Avantan_majority.start machine;
  let bal = Samya.Avantan_majority.ballot machine in
  let old_bal = { Ballot.num = 0; site = 4 } in
  let decided = P.make_value ~origin:old_bal [ entry 4 10 5; entry 0 100 50 ] in
  Samya.Avantan_majority.handle machine ~src:1
    (P.Election_ok_value
       {
         bal;
         contribs = [ ("", entry 1 300 0) ];
         accept_val = Some decided;
         accept_num = old_bal;
         decision = true;
       });
  Samya.Avantan_majority.handle machine ~src:2
    (P.Election_ok_value
       {
         bal;
         contribs = [ ("", entry 2 300 0) ];
         accept_val = None;
         accept_num = Ballot.zero 2;
         decision = false;
       });
  check bool "decision redistributed" true (count_kind script is_decision >= 4);
  (match !(script.outcomes) with
  | [ P.Decided v ] -> check bool "applied the decided value" true (P.value_equal v decided)
  | _ -> Alcotest.fail "expected the decided outcome")

let maj_fresh_leader_aborts_on_timeout () =
  let script = make_script () in
  let machine = Samya.Avantan_majority.create (majority_env script ~self:0 ~n_sites:5) in
  Samya.Avantan_majority.start machine;
  let bal = Samya.Avantan_majority.ballot machine in
  (* One response is not a majority; let the election timer fire. *)
  Samya.Avantan_majority.handle machine ~src:1
    (P.Election_ok_value
       {
         bal;
         contribs = [ ("", entry 1 300 0) ];
         accept_val = None;
         accept_num = Ballot.zero 1;
         decision = false;
       });
  Des.Engine.run script.engine ~until_ms:1_000.0;
  check bool "aborted" true (!(script.outcomes) = [ P.Aborted ]);
  check bool "responder released" true
    (List.exists (function P.Discard _ -> true | _ -> false) (sent_to script 1));
  let stats = Samya.Avantan_majority.stats machine in
  check int "abort counted" 1 stats.Samya.Avantan_majority.led_aborted;
  check bool "abort event as leader" true
    (has_event script (function
      | Samya.Avantan_core.Instance_aborted { led = true; rounds = 1; _ } -> true
      | _ -> false))

(* ------------------------------------------------------------------ *)
(* Star variant *)

let star_leader_minimal_set () =
  let script = make_script ~tokens_left:0 ~tokens_wanted:100 () in
  let machine = Samya.Avantan_star.create (star_env script ~self:0 ~n_sites:5) in
  Samya.Avantan_star.start machine;
  let bal = Samya.Avantan_star.ballot machine in
  (* The first responder already covers TW=100: R_t = {0, 1}. *)
  Samya.Avantan_star.handle machine ~src:1
    (P.Election_ok_value
       {
         bal;
         contribs = [ ("", entry 1 500 0) ];
         accept_val = None;
         accept_num = Ballot.zero 1;
         decision = false;
       });
  let accepts =
    List.filter_map
      (fun (d, m) -> match m with P.Accept_value { value; _ } -> Some (d, value) | _ -> None)
      !(script.sent)
  in
  (match accepts with
  | [ (1, value) ] ->
      check (Alcotest.list int) "minimal participant set" [ 0; 1 ] (P.participants value)
  | _ -> Alcotest.fail "expected one Accept-Value to site 1");
  (* Non-members are told to discard. *)
  check bool "discards to non-members" true (count_kind script is_discard >= 3);
  (* The single member's ack decides (ALL of R_t). *)
  Samya.Avantan_star.handle machine ~src:1 (P.Accept_ok { bal });
  (match !(script.outcomes) with
  | [ P.Decided _ ] -> ()
  | _ -> Alcotest.fail "expected decided")

let star_locked_cohort_rejects_other_leaders () =
  let script = make_script ~self:2 ~tokens_wanted:0 () in
  let machine = Samya.Avantan_star.create (star_env script ~self:2 ~n_sites:5) in
  let bal_a = { Ballot.num = 3; site = 0 } in
  Samya.Avantan_star.handle machine ~src:0 (P.Election_get_value { bal = bal_a; scope = [] });
  check bool "locked" true (Samya.Avantan_star.participating machine);
  script.sent := [];
  (* A concurrent leader with an even higher ballot is rejected. *)
  Samya.Avantan_star.handle machine ~src:4
    (P.Election_get_value { bal = { Ballot.num = 9; site = 4 }; scope = [] });
  (match sent_to script 4 with
  | [ P.Election_reject _ ] -> ()
  | _ -> Alcotest.fail "expected a rejection while locked")

let star_cohort_aborts_without_accepted_value () =
  (* Case (i) of §4.3.2: no AcceptVal received, leader silent: the cohort
     may abort unilaterally. *)
  let script = make_script ~self:2 ~tokens_wanted:0 () in
  let machine = Samya.Avantan_star.create (star_env script ~self:2 ~n_sites:5) in
  Samya.Avantan_star.handle machine ~src:0
    (P.Election_get_value { bal = { Ballot.num = 3; site = 0 }; scope = [] });
  Des.Engine.run script.engine ~until_ms:5_000.0;
  check bool "aborted unilaterally" true (!(script.outcomes) = [ P.Aborted ]);
  check bool "unlocked" false (Samya.Avantan_star.participating machine)

let star_cohort_recovers_via_status_query () =
  (* Case (ii): an accepted value and a silent leader: interrogate R_t;
     identical AcceptVals at every other member mean the value is safe to
     decide. *)
  let script = make_script ~self:2 ~tokens_wanted:0 () in
  let machine = Samya.Avantan_star.create (star_env script ~self:2 ~n_sites:5) in
  let bal = { Ballot.num = 3; site = 0 } in
  Samya.Avantan_star.handle machine ~src:0 (P.Election_get_value { bal; scope = [] });
  let value = P.make_value ~origin:bal [ entry 0 0 50; entry 1 100 0; entry 2 100 0 ] in
  Samya.Avantan_star.handle machine ~src:0 (P.Accept_value { bal; value; decision = false });
  script.sent := [];
  (* Leader dies; the cohort times out and queries R_t. *)
  Des.Engine.run script.engine ~until_ms:3_000.0;
  check bool "status query sent" true
    (List.exists (function P.Status_query _ -> true | _ -> false) (sent_to script 1));
  (* The only other non-leader member confirms the same value. *)
  Samya.Avantan_star.handle machine ~src:1
    (P.Status_reply { bal; accept_val = Some value; accept_num = bal; decision = false });
  (match !(script.outcomes) with
  | [ P.Decided v ] -> check bool "decided the stored value" true (P.value_equal v value)
  | _ -> Alcotest.fail "expected decided after recovery");
  check bool "decision distributed" true (count_kind script is_decision >= 1);
  check bool "recovery event" true
    (has_event script (function
      | Samya.Avantan_core.Recovery_started _ -> true
      | _ -> false))

let star_cohort_aborts_when_member_reports_empty () =
  (* A member replying bottom proves the leader never had all acks: abort. *)
  let script = make_script ~self:2 ~tokens_wanted:0 () in
  let machine = Samya.Avantan_star.create (star_env script ~self:2 ~n_sites:5) in
  let bal = { Ballot.num = 3; site = 0 } in
  Samya.Avantan_star.handle machine ~src:0 (P.Election_get_value { bal; scope = [] });
  let value = P.make_value ~origin:bal [ entry 0 0 50; entry 1 100 0; entry 2 100 0 ] in
  Samya.Avantan_star.handle machine ~src:0 (P.Accept_value { bal; value; decision = false });
  Des.Engine.run script.engine ~until_ms:3_000.0;
  Samya.Avantan_star.handle machine ~src:1
    (P.Status_reply { bal; accept_val = None; accept_num = bal; decision = false });
  check bool "aborted" true (List.mem P.Aborted !(script.outcomes))

let star_status_query_answered_from_applied_log () =
  (* A site that already applied the decision answers a late Status-Query
     with decision=true. *)
  let script = make_script ~self:2 ~tokens_wanted:0 () in
  let machine = Samya.Avantan_star.create (star_env script ~self:2 ~n_sites:5) in
  let bal = { Ballot.num = 3; site = 0 } in
  Samya.Avantan_star.handle machine ~src:0 (P.Election_get_value { bal; scope = [] });
  let value = P.make_value ~origin:bal [ entry 0 0 50; entry 2 100 0 ] in
  Samya.Avantan_star.handle machine ~src:0 (P.Accept_value { bal; value; decision = false });
  Samya.Avantan_star.handle machine ~src:0 (P.Decision { bal; value });
  script.sent := [];
  Samya.Avantan_star.handle machine ~src:1 (P.Status_query { bal });
  (match sent_to script 1 with
  | [ P.Status_reply { decision; accept_val = Some v; _ } ] ->
      check bool "decision reported" true decision;
      check bool "value included" true (P.value_equal v value)
  | _ -> Alcotest.fail "expected a status reply")

let suite =
  [
    Alcotest.test_case "maj: leader happy path" `Quick maj_leader_happy_path;
    Alcotest.test_case "maj: cohort happy path" `Quick maj_cohort_happy_path;
    Alcotest.test_case "maj: stale ballots ignored" `Quick maj_stale_ballot_ignored;
    Alcotest.test_case "maj: decision applied once" `Quick maj_decision_applied_once;
    Alcotest.test_case "maj: recovery adopts accepted value" `Quick
      maj_recovery_adopts_accepted_value;
    Alcotest.test_case "maj: recovery short-circuits on decision" `Quick
      maj_recovery_short_circuits_on_decision;
    Alcotest.test_case "maj: fresh leader aborts on timeout" `Quick
      maj_fresh_leader_aborts_on_timeout;
    Alcotest.test_case "star: minimal participant set" `Quick star_leader_minimal_set;
    Alcotest.test_case "star: locked cohort rejects" `Quick
      star_locked_cohort_rejects_other_leaders;
    Alcotest.test_case "star: unilateral abort (case i)" `Quick
      star_cohort_aborts_without_accepted_value;
    Alcotest.test_case "star: status-query recovery (case ii)" `Quick
      star_cohort_recovers_via_status_query;
    Alcotest.test_case "star: abort on empty member" `Quick
      star_cohort_aborts_when_member_reports_empty;
    Alcotest.test_case "star: status answered from log" `Quick
      star_status_query_answered_from_applied_log;
  ]
