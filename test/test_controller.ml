(* Tests for the Mechanism API and the adaptive contention controller:
   config validation (including the controller/amnesia cross-check), the
   pure hysteresis state machine (no flapping under an oscillating
   signal), end-to-end peer borrowing with token conservation, static
   and org-tier policy pins, randomized conservation under mid-flight
   mechanism switches, and sharded byte-identity of the contention
   experiment. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let entity = "hot"

let regions () = Array.of_list Geonet.Region.default_five

module C = Samya.Config.Controller

let with_controller ?(policy = C.Adaptive) config =
  {
    config with
    Samya.Config.controller = { C.default with C.enabled = true; policy };
  }

let make_cluster ?(policy = C.Adaptive) ?(config_f = fun c -> c) ?(seed = 42L)
    ?(maximum = 500) () =
  let config = config_f (with_controller ~policy Samya.Config.default) in
  (match Samya.Config.validate config with
  | Ok () -> ()
  | Error e -> Alcotest.failf "test config invalid: %s" e);
  let cluster = Samya.Cluster.create ~seed ~config ~regions:(regions ()) () in
  Samya.Cluster.init_entity cluster ~entity ~maximum;
  cluster

let submit_at cluster ~time_ms ~region request callback =
  Des.Engine.schedule_at
    (Samya.Cluster.engine cluster)
    ~time_ms
    (fun () -> Samya.Cluster.submit cluster ~region request ~reply:callback)

let drain ?(extra = 120_000.0) cluster =
  let engine = Samya.Cluster.engine cluster in
  Des.Engine.run engine ~until_ms:(Des.Engine.now engine +. extra)

(* ------------------------------------------------------------------ *)
(* Config validation *)

let config_rejects_bad_controller_knobs () =
  let bad f =
    let c = with_controller Samya.Config.default in
    match
      Samya.Config.validate
        { c with Samya.Config.controller = f c.Samya.Config.controller }
    with
    | Error _ -> true
    | Ok () -> false
  in
  check bool "window_ms = 0" true (bad (fun c -> { c with C.window_ms = 0.0 }));
  check bool "window_ms = nan" true
    (bad (fun c -> { c with C.window_ms = Float.nan }));
  check bool "escalate_contention = 0" true
    (bad (fun c -> { c with C.escalate_contention = 0.0 }));
  check bool "escalate_contention = 1.5" true
    (bad (fun c -> { c with C.escalate_contention = 1.5 }));
  check bool "deescalate_margin = 1" true
    (bad (fun c -> { c with C.deescalate_margin = 1.0 }));
  check bool "borrow_fail_escalate = 0" true
    (bad (fun c -> { c with C.borrow_fail_escalate = 0.0 }));
  check bool "p99_target_ms = 0" true
    (bad (fun c -> { c with C.p99_target_ms = 0.0 }));
  check bool "dwell_ms = -1" true (bad (fun c -> { c with C.dwell_ms = -1.0 }));
  check bool "dwell_ms = inf" true
    (bad (fun c -> { c with C.dwell_ms = infinity }));
  check bool "cooldown_ms = nan" true
    (bad (fun c -> { c with C.cooldown_ms = Float.nan }));
  check bool "borrow_quantum = -1" true
    (bad (fun c -> { c with C.borrow_quantum = -1 }));
  check bool "borrow_patience_ms = 0" true
    (bad (fun c -> { c with C.borrow_patience_ms = 0.0 }));
  check bool "defaults validate" true
    (Samya.Config.validate Samya.Config.default = Ok ());
  check bool "enabled controller validates" true
    (Samya.Config.validate (with_controller Samya.Config.default) = Ok ())

let config_rejects_controller_with_amnesia () =
  (* Borrow grants move tokens ledger-to-ledger without a durable-image
     write, so the controller refuses to run under crash-amnesia. *)
  let amnesiac =
    { (with_controller Samya.Config.default) with Samya.Config.amnesia_on_crash = true }
  in
  check bool "controller + amnesia rejected" true
    (match Samya.Config.validate amnesiac with Error _ -> true | Ok () -> false);
  check bool "amnesia alone fine" true
    (Samya.Config.validate
       { Samya.Config.default with Samya.Config.amnesia_on_crash = true }
    = Ok ())

(* ------------------------------------------------------------------ *)
(* The pure hysteresis state machine *)

let cfg = C.default

let sig_ ?(borrow_fail = 0.0) ?(p99 = 0.0) contention =
  { Samya.Controller.contention; borrow_fail; p99_ms = p99 }

let target ~current s = Samya.Controller.target ~cfg ~current s

let mech = Alcotest.testable (Fmt.of_to_string C.mechanism_name) ( = )

let hysteresis_escalates_one_tier () =
  check mech "escrow escalates to borrow" C.Borrow
    (target ~current:C.Escrow (sig_ cfg.C.escalate_contention));
  check mech "escrow never jumps to redistribute" C.Borrow
    (target ~current:C.Escrow (sig_ 1.0));
  check mech "borrow holds while borrowing works" C.Borrow
    (target ~current:C.Borrow (sig_ 1.0));
  check mech "borrow escalates on borrow failures" C.Redistribute
    (target ~current:C.Borrow
       (sig_ ~borrow_fail:cfg.C.borrow_fail_escalate 1.0));
  check mech "borrow escalates on slow waits" C.Redistribute
    (target ~current:C.Borrow (sig_ ~p99:(cfg.C.p99_target_ms +. 1.0) 1.0))

let hysteresis_band_prevents_flapping () =
  let esc = cfg.C.escalate_contention in
  let band = esc *. cfg.C.deescalate_margin in
  (* An oscillating signal inside the hysteresis band — above the
     de-escalation line, below the escalation line — must never move the
     mechanism, in either direction, no matter how long it oscillates. *)
  let inside = [ band; band +. 0.2 *. (esc -. band); esc -. 0.001; band ] in
  List.iteri
    (fun i contention ->
      check mech
        (Printf.sprintf "borrow holds inside the band (step %d)" i)
        C.Borrow
        (target ~current:C.Borrow (sig_ contention));
      check mech
        (Printf.sprintf "escrow holds inside the band (step %d)" i)
        C.Escrow
        (target ~current:C.Escrow (sig_ contention));
      check mech
        (Printf.sprintf "redistribute holds inside the band (step %d)" i)
        C.Redistribute
        (target ~current:C.Redistribute (sig_ contention)))
    inside;
  (* Below the band, each tier steps down exactly one. *)
  check mech "borrow de-escalates below the band" C.Escrow
    (target ~current:C.Borrow (sig_ (band /. 2.0)));
  check mech "redistribute de-escalates below the band" C.Borrow
    (target ~current:C.Redistribute (sig_ (band /. 2.0)));
  check mech "escrow stays escrow when idle" C.Escrow
    (target ~current:C.Escrow (sig_ 0.0))

(* ------------------------------------------------------------------ *)
(* End-to-end borrowing *)

let borrow_moves_tokens_and_conserves () =
  (* 500 tokens over 5 sites = 100 each. 150 one-token acquires through
     one region: the first ~100 are local escrow, the rest force the
     pinned Borrow mechanism to pull peer tokens. Everything must grant
     and the global ledger must still sum to the quota. *)
  let cluster = make_cluster ~policy:(C.Static C.Borrow) () in
  let granted = ref 0 and other = ref 0 in
  for i = 0 to 149 do
    submit_at cluster
      ~time_ms:(float_of_int i *. 2.0)
      ~region:Geonet.Region.Us_west1
      (Samya.Types.acquire ~entity ~amount:1 ())
      (fun response ->
        match response with
        | Samya.Types.Granted -> incr granted
        | _ -> incr other)
  done;
  drain cluster;
  check int "all 150 granted" 150 !granted;
  check int "no rejections" 0 !other;
  let stats = Samya.Cluster.aggregate_site_stats cluster in
  check bool "borrow conversations happened" true (stats.Samya.Site.borrows > 0);
  check bool "borrowed tokens moved" true (stats.Samya.Site.borrow_tokens >= 50);
  check bool "no consensus instances" true
    (stats.Samya.Site.redistributions_started = 0);
  check bool "borrowing site runs Borrow" true
    (Array.exists
       (fun site -> Samya.Site.mechanism site ~entity = Some C.Borrow)
       (Samya.Cluster.sites cluster));
  check bool "conservation" true
    (Samya.Cluster.check_invariant cluster ~entity ~maximum:500 = Ok ())

(* ------------------------------------------------------------------ *)
(* Policy pins *)

let pins_override_site_policy () =
  let cluster = make_cluster () in
  (* An adaptive site policy, pinned per-entity to a static mechanism. *)
  Samya.Cluster.pin_policy cluster ~entity (C.Static C.Redistribute);
  Array.iter
    (fun site ->
      check bool "pinned mechanism everywhere" true
        (Samya.Site.mechanism site ~entity = Some C.Redistribute))
    (Samya.Cluster.sites cluster);
  (* Re-pinning adaptive resumes the state machine from the current
     mechanism rather than resetting — no token thrash on a re-pin. *)
  Samya.Cluster.pin_policy cluster ~entity C.Adaptive;
  check bool "adaptive pin resumes in place" true
    (Samya.Site.mechanism (Samya.Cluster.site cluster 0) ~entity
    = Some C.Redistribute);
  (* Unknown entities and disabled controllers are contract violations. *)
  check bool "unknown entity raises" true
    (try
       Samya.Cluster.pin_policy cluster ~entity:"nope" C.Adaptive;
       false
     with Invalid_argument _ -> true);
  let plain =
    Samya.Cluster.create ~seed:7L ~config:Samya.Config.default
      ~regions:(regions ()) ()
  in
  Samya.Cluster.init_entity plain ~entity ~maximum:100;
  check bool "disabled controller raises" true
    (try
       Samya.Cluster.pin_policy plain ~entity (C.Static C.Escrow);
       false
     with Invalid_argument _ -> true)

let org_tiers_pin_by_depth () =
  let cluster = make_cluster () in
  let org = Hierarchy.Org.create ~cluster ~org_name:"acme" ~root_limit:400 in
  let root = Hierarchy.Org.root org in
  let retail = Hierarchy.Org.add_unit org ~parent:root ~name:"retail" ~limit:200 () in
  let _grouping = Hierarchy.Org.add_unit org ~parent:root ~name:"ops" () in
  let clothing =
    Hierarchy.Org.add_unit org ~parent:retail ~name:"clothing" ~limit:50 ()
  in
  Hierarchy.Org.pin_contention_tiers org;
  let mechanism_of node =
    match Hierarchy.Org.limited_ancestors org node with
    | (_, e) :: _ -> Samya.Site.mechanism (Samya.Cluster.site cluster 0) ~entity:e
    | [] -> None
  in
  (* The root runs the adaptive state machine, which starts at escrow;
     a team limit is pinned to borrow; a deeper limit to escrow. *)
  check bool "root starts at escrow (adaptive)" true
    (mechanism_of root = Some C.Escrow);
  check bool "team tier pinned to borrow" true
    (mechanism_of retail = Some C.Borrow);
  check bool "leaf tier pinned to escrow" true
    (mechanism_of clothing = Some C.Escrow);
  (* Without a controller the tier pinning is a contract violation. *)
  let plain =
    Samya.Cluster.create ~seed:9L ~config:Samya.Config.default
      ~regions:(regions ()) ()
  in
  let org' = Hierarchy.Org.create ~cluster:plain ~org_name:"beta" ~root_limit:10 in
  check bool "disabled controller raises" true
    (try
       Hierarchy.Org.pin_contention_tiers org';
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Conservation under mid-flight switches (randomized) *)

let conservation_under_switches =
  QCheck.Test.make ~count:6
    ~name:"controller: conservation under mid-flight switches"
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      (* An aggressive controller (tiny window, no dwell/cooldown) over a
         bursty skewed stream: mechanisms switch while borrow
         conversations and redistributions are in flight. Whatever the
         interleaving, the global ledger must still sum to the quota. *)
      let rng = Des.Rng.create (Int64.of_int (3_000 + seed)) in
      let quota = 100 + Des.Rng.int rng 400 in
      let rate = 400.0 +. Des.Rng.float rng 1_200.0 in
      let config =
        {
          (with_controller Samya.Config.default) with
          Samya.Config.prediction_enabled = false;
          local_processing_ms = 0.2;
          redistribution_cooldown_ms = 300.0;
          controller =
            {
              C.default with
              C.enabled = true;
              window_ms = 100.0;
              dwell_ms = 0.0;
              cooldown_ms = 0.0;
              borrow_patience_ms = 200.0;
            };
        }
      in
      let cluster =
        Samya.Cluster.create ~seed:(Int64.of_int seed) ~config
          ~regions:(regions ()) ()
      in
      Samya.Cluster.init_entity cluster ~entity ~maximum:quota;
      let t_system =
        Facade.of_samya_cluster ~name:"switch-soak"
          ~hooks:(Facade.samya_hooks ()) ~regions:(regions ()) ~entity cluster
      in
      let requests =
        Trace.Workload.skew_ramp
          ~rng:(Des.Rng.create (Int64.of_int (91 + seed)))
          ~entity ~home:0 ~n_clients:5
          ~phases:
            [
              { Trace.Workload.until_ms = 1_500.0; rate_per_s = 100.0; home_affinity = 0.2 };
              { Trace.Workload.until_ms = 4_000.0; rate_per_s = rate; home_affinity = 0.9 };
              { Trace.Workload.until_ms = 6_000.0; rate_per_s = rate; home_affinity = 0.3 };
            ]
          ()
      in
      let spec =
        {
          (Harness.Driver.default_spec ~client_regions:(regions ()) ~requests
             ~duration_ms:6_000.0)
          with
          Harness.Driver.drain_ms = 10_000.0;
          grant_driven_release_ms = Some 500.0;
        }
      in
      let r = Harness.Driver.run ~t_system spec in
      if r.Harness.Driver.committed = 0 then
        QCheck.Test.fail_reportf "seed %d: nothing committed" seed;
      let stats = Samya.Cluster.aggregate_site_stats cluster in
      if stats.Samya.Site.mechanism_switches = 0 then
        QCheck.Test.fail_reportf "seed %d: controller never switched" seed;
      (match Samya.Cluster.check_invariant cluster ~entity ~maximum:quota with
      | Ok () -> ()
      | Error reason ->
          QCheck.Test.fail_reportf "seed %d (quota %d): %s" seed quota reason);
      true)

(* ------------------------------------------------------------------ *)
(* The contention experiment: sharded byte-identity *)

let contention_engine_jobs_identical () =
  (* The adaptive arm — borrow conversations, controller switches,
     per-phase accounting — must reproduce byte-identically at any
     --engine-jobs setting. *)
  let arm =
    List.find
      (fun a -> a.Harness.Exp_contention.a_id = "adaptive")
      Harness.Exp_contention.arms
  in
  let fingerprint engine_jobs =
    let c = Harness.Exp_contention.capture ~engine_jobs ~quick:true ~arm () in
    let r = c.Harness.Exp_contention.result in
    Format.asprintf "%d/%d/%d/%d p50=%.4f borrows=%d switches=%d final=%s %a slo=%a"
      r.Harness.Driver.committed r.Harness.Driver.rejected
      r.Harness.Driver.timed_out r.Harness.Driver.no_reply
      (Harness.Driver.percentile r 50.0)
      c.Harness.Exp_contention.stats.Harness.Systems.borrows
      c.Harness.Exp_contention.stats.Harness.Systems.mechanism_switches
      c.Harness.Exp_contention.final_mechanism
      (Format.pp_print_list (fun fmt (v : Harness.Exp_contention.phase_row) ->
           Format.fprintf fmt "%s:%.3f/%.4f" v.Harness.Exp_contention.v_name
             v.Harness.Exp_contention.v_tps v.Harness.Exp_contention.v_p99))
      (Harness.Exp_contention.phase_rows c)
      (Format.pp_print_list (fun fmt (l : Obs.Slo.report_line) ->
           Format.fprintf fmt "%s:%d/%d" l.Obs.Slo.name l.Obs.Slo.violations
             l.Obs.Slo.windows))
      (Obs.Slo.report c.Harness.Exp_contention.slo)
  in
  let one = fingerprint 1 in
  check Alcotest.string "engine-jobs 2 = 1" one (fingerprint 2);
  check Alcotest.string "engine-jobs 4 = 1" one (fingerprint 4)

let suite =
  [
    Alcotest.test_case "config: controller knob validation" `Quick
      config_rejects_bad_controller_knobs;
    Alcotest.test_case "config: controller rejects amnesia" `Quick
      config_rejects_controller_with_amnesia;
    Alcotest.test_case "hysteresis: escalates one tier" `Quick
      hysteresis_escalates_one_tier;
    Alcotest.test_case "hysteresis: band prevents flapping" `Quick
      hysteresis_band_prevents_flapping;
    Alcotest.test_case "borrow: moves tokens, conserves" `Quick
      borrow_moves_tokens_and_conserves;
    Alcotest.test_case "pins: override site policy" `Quick
      pins_override_site_policy;
    Alcotest.test_case "pins: org tiers by depth" `Quick org_tiers_pin_by_depth;
    QCheck_alcotest.to_alcotest conservation_under_switches;
    Alcotest.test_case "contention: engine-jobs byte-identical" `Slow
      contention_engine_jobs_identical;
  ]
