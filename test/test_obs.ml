(* Tests for the observability layer: metric registry semantics (including
   the qcheck'd histogram-merge algebra), the span recorder, the
   trace_event/metrics exporters, and end-to-end trace determinism across
   pool parallelism levels. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Metrics *)

let metrics_instruments_interned () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "c" in
  Obs.Metrics.incr c;
  Obs.Metrics.add (Obs.Metrics.counter m "c") 4;
  check int "counter shared by name" 5 (Obs.Metrics.counter_value c);
  let g = Obs.Metrics.gauge m "g" in
  Obs.Metrics.set g 2.0;
  Obs.Metrics.set (Obs.Metrics.gauge m "g") 7.0;
  Obs.Metrics.set g 3.0;
  check bool "gauge last" true (Obs.Metrics.gauge_value g = Some 3.0);
  check bool "gauge max survives later writes" true (Obs.Metrics.gauge_max g = Some 7.0)

let metrics_histogram_quantiles () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "h" in
  for i = 1 to 1000 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  let s = Obs.Metrics.snapshot_histogram h in
  check int "count" 1000 s.Obs.Metrics.count;
  check bool "min" true (s.Obs.Metrics.min = 1.0);
  check bool "max" true (s.Obs.Metrics.max = 1000.0);
  let p50 = Obs.Metrics.quantile s 0.5 in
  let p99 = Obs.Metrics.quantile s 0.99 in
  (* Log buckets are ~19% wide: quantiles are right up to one bucket. *)
  check bool "p50 near 500" true (p50 >= 450.0 && p50 <= 650.0);
  check bool "p99 near 990" true (p99 >= 900.0 && p99 <= 1300.0);
  check bool "p99 >= p50" true (p99 >= p50)

let metrics_null_is_inert () =
  let c = Obs.Metrics.counter Obs.Metrics.null "c" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 10;
  check int "dead counter stays 0" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.observe (Obs.Metrics.histogram Obs.Metrics.null "h") 1.0;
  Obs.Metrics.set (Obs.Metrics.gauge Obs.Metrics.null "g") 1.0;
  let s = Obs.Metrics.snapshot Obs.Metrics.null in
  check bool "null snapshot empty" true
    (s.Obs.Metrics.counters = [] && s.Obs.Metrics.gauges = []
    && s.Obs.Metrics.histograms = [])

let snapshot_of_values values =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "h" in
  List.iter (Obs.Metrics.observe h) values;
  Obs.Metrics.snapshot_histogram h

(* Everything except the float [sum] must merge exactly; [sum] up to
   rounding. *)
let same_merged (a : Obs.Metrics.histogram_snapshot) (b : Obs.Metrics.histogram_snapshot) =
  let feq x y =
    (Float.is_nan x && Float.is_nan y)
    || Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.abs x)
  in
  a.Obs.Metrics.count = b.Obs.Metrics.count
  && a.Obs.Metrics.buckets = b.Obs.Metrics.buckets
  && feq a.Obs.Metrics.min b.Obs.Metrics.min
  && feq a.Obs.Metrics.max b.Obs.Metrics.max
  && feq a.Obs.Metrics.sum b.Obs.Metrics.sum

let values_gen = QCheck.(list (float_range 0.0 10_000.0))

let merge_commutative =
  QCheck.Test.make ~count:200 ~name:"histogram merge is commutative"
    QCheck.(pair values_gen values_gen)
    (fun (xs, ys) ->
      let a = snapshot_of_values xs and b = snapshot_of_values ys in
      same_merged (Obs.Metrics.merge a b) (Obs.Metrics.merge b a))

let merge_associative =
  QCheck.Test.make ~count:200 ~name:"histogram merge is associative"
    QCheck.(triple values_gen values_gen values_gen)
    (fun (xs, ys, zs) ->
      let a = snapshot_of_values xs
      and b = snapshot_of_values ys
      and c = snapshot_of_values zs in
      same_merged
        (Obs.Metrics.merge (Obs.Metrics.merge a b) c)
        (Obs.Metrics.merge a (Obs.Metrics.merge b c)))

let merge_is_concat =
  QCheck.Test.make ~count:200 ~name:"merge equals observing the concatenation"
    QCheck.(pair values_gen values_gen)
    (fun (xs, ys) ->
      same_merged
        (Obs.Metrics.merge (snapshot_of_values xs) (snapshot_of_values ys))
        (snapshot_of_values (xs @ ys)))

(* ------------------------------------------------------------------ *)
(* Spans *)

let span_records_in_order () =
  let clock = ref 0.0 in
  let t = Obs.Span.create ~now:(fun () -> !clock) () in
  let span = Obs.Span.start t ~cat:"c" ~tid:3 "work" in
  clock := 5.0;
  Obs.Span.instant t ~tid:3 "tick";
  clock := 9.0;
  Obs.Span.finish t ~args:[ ("k", "v") ] span;
  match Obs.Span.events t with
  | [ Obs.Span.Instant { name = "tick"; ts = 5.0; _ };
      Obs.Span.Complete { name = "work"; ts = 0.0; dur = 9.0; args = [ ("k", "v") ]; _ } ] ->
      check int "event_count" 2 (Obs.Span.event_count t)
  | events -> Alcotest.failf "unexpected events (%d)" (List.length events)

let span_disabled_records_nothing () =
  let t = Obs.Span.null in
  let span = Obs.Span.start t "work" in
  Obs.Span.finish t span;
  Obs.Span.instant t "tick";
  Obs.Span.counter_sample t ~value:1.0 "c";
  check int "no events" 0 (Obs.Span.event_count t)

let sink_port_taps_late () =
  let port = Obs.Sink.port () in
  check bool "untapped" true (Obs.Sink.tap port = None);
  let sink = Obs.Sink.create ~now:(fun () -> 0.0) () in
  Obs.Sink.attach port sink;
  (match Obs.Sink.tap port with
  | Some s -> check bool "same sink" true (s == sink)
  | None -> Alcotest.fail "tap after attach");
  Obs.Sink.detach port;
  check bool "detached" true (Obs.Sink.tap port = None)

(* ------------------------------------------------------------------ *)
(* Export *)

let export_valid_trace () =
  let clock = ref 0.0 in
  let t = Obs.Span.create ~now:(fun () -> !clock) () in
  Obs.Span.thread_name t ~tid:0 "site 0";
  let span = Obs.Span.start t ~cat:"net" "hop \"quoted\"\n" in
  clock := 1.5;
  Obs.Span.finish t span;
  Obs.Span.instant t ~args:[ ("why", "test") ] "drop";
  Obs.Span.counter_sample t ~value:3.0 "depth";
  let buf = Buffer.create 256 in
  Obs.Export.trace_json buf [ ("sys", t) ];
  let json = Buffer.contents buf in
  match Obs.Export.validate_trace json with
  | Ok events ->
      (* 4 recorded + process_name metadata *)
      check int "events" 5 events
  | Error reason -> Alcotest.failf "invalid trace: %s\n%s" reason json

let export_rejects_garbage () =
  let invalid = [ ""; "[]"; "{\"traceEvents\": 3}"; "{\"traceEvents\": [3]}";
                  "{\"traceEvents\": [{\"ph\": \"X\"}]}" ] in
  List.iter
    (fun s ->
      match Obs.Export.validate_trace s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    invalid

let export_metrics_schema () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr (Obs.Metrics.counter m "a.b");
  Obs.Metrics.observe (Obs.Metrics.histogram m "h") 4.2;
  let buf = Buffer.create 256 in
  Obs.Export.metrics_json buf ~meta:[ ("k", "v") ] [ ("sys", m) ];
  let out = Buffer.contents buf in
  let contains needle =
    let n = String.length needle and l = String.length out in
    let rec go i = i + n <= l && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  check bool "schema header" true (contains "samya-metrics/1");
  check bool "meta" true (contains "\"k\":\"v\"");
  check bool "counter" true (contains "a.b")

(* ------------------------------------------------------------------ *)
(* End to end: facade subscription + driver, byte-identical across jobs *)

let entity = Harness.Exp_common.entity

let with_jobs jobs f =
  Harness.Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Harness.Pool.set_jobs 1) f

let trace_deterministic_across_jobs () =
  let ctx =
    Harness.Lab.create ~params:{ Trace.Azure_trace.default_params with days = 5 } ()
  in
  let regions = Harness.Exp_common.client_regions () in
  let duration_ms = 60_000.0 in
  let requests =
    Harness.Lab.workload ctx ~client_regions:regions ~duration_ms ~seed:4L ()
  in
  (* A small maximum forces redistributions, so the Avantan observer's
     spans are part of what must be deterministic. *)
  let builders =
    [
      ( "samya",
        fun () ->
          Harness.Systems.samya ~seed:3L ~config:Samya.Config.default ~regions
            ~entity ~maximum:500 () );
      ("multipaxsys", fun () -> Harness.Systems.multipaxsys ~seed:3L ~entity ~maximum:500 ());
    ]
  in
  let capture () =
    let recorders =
      Harness.Pool.map
        (fun (label, build) ->
          let t_system = build () in
          let sink =
            Obs.Sink.create
              ~now:(fun () -> Des.Engine.now t_system.Harness.Systems.engine)
              ()
          in
          t_system.Harness.Systems.subscribe sink;
          let spec =
            {
              (Harness.Driver.default_spec ~client_regions:regions ~requests
                 ~duration_ms)
              with
              Harness.Driver.obs = Some sink;
            }
          in
          ignore (Harness.Driver.run ~t_system spec);
          (label, sink))
        builders
    in
    let buf = Buffer.create (1 lsl 16) in
    Obs.Export.trace_json buf
      (List.map (fun (l, s) -> (l, s.Obs.Sink.spans)) recorders);
    let mbuf = Buffer.create 4096 in
    Obs.Export.metrics_json mbuf
      (List.map (fun (l, s) -> (l, s.Obs.Sink.metrics)) recorders);
    (Buffer.contents buf, Buffer.contents mbuf)
  in
  let trace1, metrics1 = with_jobs 1 capture in
  let trace2, metrics2 = with_jobs 2 capture in
  (match Obs.Export.validate_trace trace1 with
  | Ok events -> check bool "trace has events" true (events > 100)
  | Error reason -> Alcotest.failf "invalid trace: %s" reason);
  check string "trace byte-identical across jobs" trace1 trace2;
  check string "metrics byte-identical across jobs" metrics1 metrics2

let unsubscribed_run_matches_baseline () =
  (* The facade without a sink must not change results at all. *)
  let regions = Harness.Exp_common.client_regions () in
  let ctx =
    Harness.Lab.create ~params:{ Trace.Azure_trace.default_params with days = 5 } ()
  in
  let duration_ms = 60_000.0 in
  let requests =
    Harness.Lab.workload ctx ~client_regions:regions ~duration_ms ~seed:4L ()
  in
  let run ~observe =
    let t_system =
      Harness.Systems.samya ~seed:3L ~config:Samya.Config.default ~regions ~entity
        ~maximum:500 ()
    in
    let spec =
      Harness.Driver.default_spec ~client_regions:regions ~requests ~duration_ms
    in
    let spec =
      if observe then begin
        let sink =
          Obs.Sink.create
            ~now:(fun () -> Des.Engine.now t_system.Harness.Systems.engine)
            ()
        in
        t_system.Harness.Systems.subscribe sink;
        { spec with Harness.Driver.obs = Some sink }
      end
      else spec
    in
    let result = Harness.Driver.run ~t_system spec in
    ( result.Harness.Driver.committed,
      result.Harness.Driver.rejected,
      (t_system.Harness.Systems.stats ()).Harness.Systems.redistributions )
  in
  check
    (Alcotest.triple int int int)
    "observing does not perturb the run" (run ~observe:false) (run ~observe:true)

let suite =
  [
    Alcotest.test_case "metrics: interning" `Quick metrics_instruments_interned;
    Alcotest.test_case "metrics: histogram quantiles" `Quick metrics_histogram_quantiles;
    Alcotest.test_case "metrics: null registry" `Quick metrics_null_is_inert;
    QCheck_alcotest.to_alcotest merge_commutative;
    QCheck_alcotest.to_alcotest merge_associative;
    QCheck_alcotest.to_alcotest merge_is_concat;
    Alcotest.test_case "span: records in order" `Quick span_records_in_order;
    Alcotest.test_case "span: disabled is inert" `Quick span_disabled_records_nothing;
    Alcotest.test_case "sink: late-bound port" `Quick sink_port_taps_late;
    Alcotest.test_case "export: valid trace_event" `Quick export_valid_trace;
    Alcotest.test_case "export: rejects malformed" `Quick export_rejects_garbage;
    Alcotest.test_case "export: metrics schema" `Quick export_metrics_schema;
    Alcotest.test_case "trace: deterministic across jobs" `Slow
      trace_deterministic_across_jobs;
    Alcotest.test_case "trace: observation does not perturb" `Slow
      unsubscribed_run_matches_baseline;
  ]
