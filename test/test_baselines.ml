(* Tests for the three baselines: MultiPaxSys, Demarcation/Escrow and the
   CockroachDB-like Raft system. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let entity = "VM"

(* ------------------------------------------------------------------ *)
(* MultiPaxSys *)

let mp_make ?(maximum = 100) () =
  let system = Baselines.Multipaxsys.create ~seed:5L () in
  Baselines.Multipaxsys.init_entity system ~entity ~maximum;
  system

let mp_submit system ~time_ms request callback =
  Des.Engine.schedule_at
    (Baselines.Multipaxsys.engine system)
    ~time_ms
    (fun () ->
      Baselines.Multipaxsys.submit system ~region:Geonet.Region.Us_west1 request
        ~reply:callback)

let mp_basic_commit () =
  let system = mp_make () in
  let response = ref None in
  mp_submit system ~time_ms:0.0
    (Samya.Types.Acquire { entity; amount = 10; deadline_ms = infinity })
    (fun r -> response := Some r);
  Des.Engine.run (Baselines.Multipaxsys.engine system) ~until_ms:5_000.0;
  check bool "granted" true (!response = Some Samya.Types.Granted);
  check int "replicated state" 10 (Baselines.Multipaxsys.total_acquired system ~entity);
  check int "committed counter" 1 (Baselines.Multipaxsys.committed_txns system)

let mp_constraint_enforced () =
  let system = mp_make ~maximum:15 () in
  let outcomes = ref [] in
  List.iteri
    (fun i amount ->
      mp_submit system
        ~time_ms:(float_of_int i *. 500.0)
        (Samya.Types.Acquire { entity; amount; deadline_ms = infinity })
        (fun r -> outcomes := r :: !outcomes))
    [ 10; 10; 5 ];
  Des.Engine.run (Baselines.Multipaxsys.engine system) ~until_ms:20_000.0;
  check (Alcotest.list bool) "grant, reject, grant"
    [ true; false; true ]
    (List.rev_map (fun r -> r = Samya.Types.Granted) !outcomes);
  check int "state at limit" 15 (Baselines.Multipaxsys.total_acquired system ~entity);
  check bool "invariant" true
    (Baselines.Multipaxsys.check_invariant system ~entity ~maximum:15 = Ok ())

let mp_release_cannot_go_negative () =
  let system = mp_make () in
  let response = ref None in
  mp_submit system ~time_ms:0.0
    (Samya.Types.Release { entity; amount = 5; deadline_ms = infinity })
    (fun r -> response := Some r);
  Des.Engine.run (Baselines.Multipaxsys.engine system) ~until_ms:5_000.0;
  check bool "rejected" true (!response = Some Samya.Types.Rejected);
  check int "state unchanged" 0 (Baselines.Multipaxsys.total_acquired system ~entity)

let mp_serializes_hot_entity () =
  (* Two-round WAN replication per txn: 20 txns take at least 20x the
     round cost, confirming sequential execution. *)
  let system = mp_make () in
  let done_at = ref 0.0 in
  let engine = Baselines.Multipaxsys.engine system in
  let remaining = ref 20 in
  (* Submit with spacing under the service time so the queue is the
     bottleneck; admission control caps it, so feed one at a time. *)
  let rec feed i =
    if i < 20 then
      mp_submit system ~time_ms:0.0
        (Samya.Types.Acquire { entity; amount = 1; deadline_ms = infinity })
        (fun _ ->
          decr remaining;
          done_at := Des.Engine.now engine;
          feed (i + 1))
    else ()
  in
  feed 0;
  (* Feeding on reply means each txn waits for the previous one. *)
  Des.Engine.run engine ~until_ms:60_000.0;
  check int "all served" 0 !remaining;
  check bool
    (Printf.sprintf "sequential rounds dominate (%.0f ms)" !done_at)
    true (!done_at > 20.0 *. 60.0)

let mp_reads_at_leader () =
  let system = mp_make ~maximum:100 () in
  mp_submit system ~time_ms:0.0 (Samya.Types.Acquire { entity; amount = 40; deadline_ms = infinity }) ignore;
  let result = ref None in
  mp_submit system ~time_ms:2_000.0 (Samya.Types.Read { entity; deadline_ms = infinity }) (fun r -> result := Some r);
  Des.Engine.run (Baselines.Multipaxsys.engine system) ~until_ms:10_000.0;
  check bool "read result" true
    (!result = Some (Samya.Types.Read_result { tokens_available = 60 }))

let mp_unavailable_when_leader_down () =
  let system = mp_make () in
  Baselines.Multipaxsys.crash_site system 1;
  let response = ref None in
  mp_submit system ~time_ms:0.0
    (Samya.Types.Acquire { entity; amount = 1; deadline_ms = infinity })
    (fun r -> response := Some r);
  Des.Engine.run (Baselines.Multipaxsys.engine system) ~until_ms:5_000.0;
  check bool "unavailable" true (!response = Some Samya.Types.Unavailable)

let mp_blocks_without_majority () =
  let system = mp_make () in
  (* Keep the leader (1) and the us-west gateway (0) up; kill the rest. *)
  Baselines.Multipaxsys.crash_site system 2;
  Baselines.Multipaxsys.crash_site system 3;
  Baselines.Multipaxsys.crash_site system 4;
  let replied = ref false in
  mp_submit system ~time_ms:0.0
    (Samya.Types.Acquire { entity; amount = 1; deadline_ms = infinity })
    (fun _ -> replied := true);
  Des.Engine.run (Baselines.Multipaxsys.engine system) ~until_ms:30_000.0;
  check bool "no reply without majority" false !replied

(* ------------------------------------------------------------------ *)
(* Demarcation / Escrow *)

let dem_make ?(maximum = 5_000) () =
  let system = Baselines.Demarcation.create ~seed:6L () in
  Baselines.Demarcation.init_entity system ~entity ~maximum;
  system

let dem_submit system ~time_ms ~region request callback =
  Des.Engine.schedule_at
    (Baselines.Demarcation.engine system)
    ~time_ms
    (fun () -> Baselines.Demarcation.submit system ~region request ~reply:callback)

let dem_local_service () =
  let system = dem_make () in
  let response = ref None in
  dem_submit system ~time_ms:0.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.Acquire { entity; amount = 100; deadline_ms = infinity })
    (fun r -> response := Some r);
  Des.Engine.run (Baselines.Demarcation.engine system) ~until_ms:5_000.0;
  check bool "granted" true (!response = Some Samya.Types.Granted);
  check int "escrow reduced" 900 (Baselines.Demarcation.total_tokens_left system ~entity - 4_000)

let dem_borrows_when_exhausted () =
  let system = dem_make () in
  let granted = ref 0 in
  for i = 0 to 1_499 do
    dem_submit system
      ~time_ms:(float_of_int i *. 5.0)
      ~region:Geonet.Region.Us_west1
      (Samya.Types.Acquire { entity; amount = 1; deadline_ms = infinity })
      (function Samya.Types.Granted -> incr granted | _ -> ())
  done;
  Des.Engine.run (Baselines.Demarcation.engine system) ~until_ms:120_000.0;
  check bool (Printf.sprintf "borrowing served beyond the share (%d)" !granted) true
    (!granted >= 1_390);
  check bool "borrows happened" true (Baselines.Demarcation.borrows system > 0);
  check bool "conservation" true
    (Baselines.Demarcation.check_invariant system ~entity ~maximum:5_000 = Ok ())

let dem_global_exhaustion_rejects () =
  let system = dem_make ~maximum:50 () in
  let granted = ref 0 and rejected = ref 0 in
  for i = 0 to 99 do
    dem_submit system
      ~time_ms:(float_of_int i *. 50.0)
      ~region:Geonet.Region.Us_west1
      (Samya.Types.Acquire { entity; amount = 1; deadline_ms = infinity })
      (function
        | Samya.Types.Granted -> incr granted
        | Samya.Types.Rejected -> incr rejected
        | _ -> ())
  done;
  Des.Engine.run (Baselines.Demarcation.engine system) ~until_ms:300_000.0;
  check int "exactly the pool granted" 50 !granted;
  check int "the rest rejected" 50 !rejected

let dem_reads_are_local () =
  let system = dem_make () in
  let result = ref None in
  dem_submit system ~time_ms:0.0 ~region:Geonet.Region.Us_west1
    (Samya.Types.Read { entity; deadline_ms = infinity })
    (fun r -> result := Some r);
  Des.Engine.run (Baselines.Demarcation.engine system) ~until_ms:5_000.0;
  check bool "local escrow view" true
    (!result = Some (Samya.Types.Read_result { tokens_available = 1_000 }))

(* ------------------------------------------------------------------ *)
(* CockroachDB-like *)

let crdb_make ?(maximum = 100) () =
  let system = Baselines.Cockroach_sim.create ~seed:7L () in
  Baselines.Cockroach_sim.init_entity system ~entity ~maximum;
  Baselines.Cockroach_sim.start system;
  Des.Engine.run_for (Baselines.Cockroach_sim.engine system) 10_000.0;
  system

let crdb_elects_preferred_leaseholder () =
  let system = crdb_make () in
  check (Alcotest.option int) "node 1 is the leaseholder" (Some 1)
    (Baselines.Cockroach_sim.leader system)

let crdb_commits_and_enforces () =
  let system = crdb_make ~maximum:25 () in
  let engine = Baselines.Cockroach_sim.engine system in
  let outcomes = ref [] in
  List.iteri
    (fun i amount ->
      Des.Engine.schedule engine ~delay_ms:(float_of_int i *. 1_000.0) (fun () ->
          Baselines.Cockroach_sim.submit system ~region:Geonet.Region.Us_west1
            (Samya.Types.Acquire { entity; amount; deadline_ms = infinity })
            ~reply:(fun r -> outcomes := r :: !outcomes)))
    [ 20; 20; 5 ];
  Des.Engine.run engine ~until_ms:60_000.0;
  check (Alcotest.list bool) "grant, reject, grant"
    [ true; false; true ]
    (List.rev_map (fun r -> r = Samya.Types.Granted) !outcomes);
  check int "state at limit" 25 (Baselines.Cockroach_sim.total_acquired system ~entity)

let crdb_survives_follower_crash () =
  let system = crdb_make () in
  let engine = Baselines.Cockroach_sim.engine system in
  Baselines.Cockroach_sim.crash_site system 3;
  Baselines.Cockroach_sim.crash_site system 4;
  let response = ref None in
  Des.Engine.schedule engine ~delay_ms:100.0 (fun () ->
      Baselines.Cockroach_sim.submit system ~region:Geonet.Region.Us_west1
        (Samya.Types.Acquire { entity; amount = 1; deadline_ms = infinity })
        ~reply:(fun r -> response := Some r));
  Des.Engine.run engine ~until_ms:60_000.0;
  check bool "still commits with 3/5" true (!response = Some Samya.Types.Granted)

let crdb_reelects_after_leaseholder_crash () =
  let system = crdb_make () in
  let engine = Baselines.Cockroach_sim.engine system in
  Baselines.Cockroach_sim.crash_site system 1;
  Des.Engine.run_for engine 60_000.0;
  (match Baselines.Cockroach_sim.leader system with
  | Some leader -> check bool "new leaseholder" true (leader <> 1)
  | None -> Alcotest.fail "no leader re-elected");
  let response = ref None in
  Baselines.Cockroach_sim.submit system ~region:Geonet.Region.Us_west1
    (Samya.Types.Acquire { entity; amount = 1; deadline_ms = infinity })
    ~reply:(fun r -> response := Some r);
  Des.Engine.run engine ~until_ms:(Des.Engine.now engine +. 60_000.0);
  check bool "commits under new leaseholder" true (!response = Some Samya.Types.Granted)

let suite =
  [
    Alcotest.test_case "multipax: basic commit" `Quick mp_basic_commit;
    Alcotest.test_case "multipax: constraint" `Quick mp_constraint_enforced;
    Alcotest.test_case "multipax: no negative usage" `Quick mp_release_cannot_go_negative;
    Alcotest.test_case "multipax: serializes hot entity" `Quick mp_serializes_hot_entity;
    Alcotest.test_case "multipax: leader reads" `Quick mp_reads_at_leader;
    Alcotest.test_case "multipax: leader down" `Quick mp_unavailable_when_leader_down;
    Alcotest.test_case "multipax: blocks without majority" `Quick mp_blocks_without_majority;
    Alcotest.test_case "demarcation: local service" `Quick dem_local_service;
    Alcotest.test_case "demarcation: borrows" `Quick dem_borrows_when_exhausted;
    Alcotest.test_case "demarcation: global exhaustion" `Quick dem_global_exhaustion_rejects;
    Alcotest.test_case "demarcation: local reads" `Quick dem_reads_are_local;
    Alcotest.test_case "cockroach: preferred leaseholder" `Quick
      crdb_elects_preferred_leaseholder;
    Alcotest.test_case "cockroach: commits and enforces" `Quick crdb_commits_and_enforces;
    Alcotest.test_case "cockroach: follower crashes" `Quick crdb_survives_follower_crash;
    Alcotest.test_case "cockroach: leaseholder re-election" `Quick
      crdb_reelects_after_leaseholder_crash;
  ]
