(* Airline ticket booking — the classic escrow example ([2], [9], [19])
   the paper builds on.

   A flight has exactly 420 seats, sold simultaneously by agencies on
   five continents. Tokens are seats: most bookings commit locally at an
   agency's site; Avantan shifts unsold seats toward the continents that
   are selling; the global constraint guarantees the flight is never
   oversold even though no per-booking global coordination happens.
   Cancellations return seats, and late bookings pick them up.

     dune exec examples/airline.exe *)

let flight = "UC-418"
let seats = 420

let () =
  let regions = Array.of_list Geonet.Region.default_five in
  let cluster =
    Samya.Cluster.create ~config:Samya.Config.default ~regions ~seed:31L ()
  in
  let engine = Samya.Cluster.engine cluster in
  Samya.Cluster.init_entity cluster ~entity:flight ~maximum:seats;
  let rng = Des.Rng.split (Des.Engine.rng engine) in
  let booked = ref 0 and turned_away = ref 0 and cancelled = ref 0 in

  (* Bookings arrive worldwide; 6% of them cancel later. Demand (700+
     attempts) deliberately exceeds the cabin. *)
  let book region at =
    Des.Engine.schedule_at engine ~time_ms:at (fun () ->
        Samya.Cluster.submit cluster ~region
          (Samya.Types.Acquire { entity = flight; amount = 1; deadline_ms = infinity })
          ~reply:(function
            | Samya.Types.Granted ->
                incr booked;
                if Des.Rng.bool rng 0.06 then
                  Des.Engine.schedule engine
                    ~delay_ms:(Des.Rng.float rng 60_000.0)
                    (fun () ->
                      Samya.Cluster.submit cluster ~region
                        (Samya.Types.Release { entity = flight; amount = 1; deadline_ms = infinity })
                        ~reply:(function
                          | Samya.Types.Granted ->
                              decr booked;
                              incr cancelled
                          | _ -> ()))
            | Samya.Types.Rejected | Samya.Types.Rejected_deadline | Samya.Types.Unavailable ->
                incr turned_away
            | Samya.Types.Read_result _ -> ()))
  in
  for _ = 1 to 700 do
    let region = Des.Rng.pick rng regions in
    book region (Des.Rng.float rng 120_000.0)
  done;
  Des.Engine.run engine ~until_ms:600_000.0;

  Format.printf "flight %s, %d seats, 700 booking attempts across 5 continents:@.@."
    flight seats;
  Format.printf "  booked (net)  %4d@." !booked;
  Format.printf "  cancellations %4d (seats resold to later bookings)@." !cancelled;
  Format.printf "  turned away   %4d@." !turned_away;
  Format.printf "  redistributions: %d@." (Samya.Cluster.total_redistributions cluster);
  (match Samya.Cluster.check_invariant cluster ~entity:flight ~maximum:seats with
  | Ok () -> Format.printf "@.never oversold: net bookings <= %d at every instant.@." seats
  | Error e -> Format.printf "@.OVERSOLD: %s@." e);
  assert (!booked <= seats)
