(* Geo-distributed API rate limiting (the paper's quota-service use case).

   Two API tiers share one Samya deployment: each tier is an entity whose
   maximum is its global requests-in-flight quota. Gateways acquire a
   token per in-flight call and release it on completion — all locally,
   with Avantan[*] rebalancing quota between continents as traffic
   follows the sun. Avantan[*] suits this workload: a gateway that needs
   quota can grab it from any subset of peers without a majority.

     dune exec examples/rate_limiter.exe *)

let tiers = [ ("api-basic", 600); ("api-premium", 200) ]

let () =
  let regions = Array.of_list Geonet.Region.default_five in
  let config = { Samya.Config.default with variant = Samya.Config.Star } in
  let cluster = Samya.Cluster.create ~config ~regions ~seed:23L () in
  let engine = Samya.Cluster.engine cluster in
  List.iter
    (fun (tier, quota) -> Samya.Cluster.init_entity cluster ~entity:tier ~maximum:quota)
    tiers;
  let rng = Des.Rng.split (Des.Engine.rng engine) in
  let admitted = Hashtbl.create 4 and throttled = Hashtbl.create 4 in
  let bump table key = Hashtbl.replace table key (1 + Option.value (Hashtbl.find_opt table key) ~default:0) in

  (* Each region's gateway: calls arrive, hold quota for their duration,
     then release. Traffic intensity rotates across regions over time,
     like a day-night cycle. *)
  let duration_ms = 4.0 *. 60_000.0 in
  let call gateway tier at =
    Des.Engine.schedule_at engine ~time_ms:at (fun () ->
        Samya.Cluster.submit cluster ~region:regions.(gateway)
          (Samya.Types.Acquire { entity = tier; amount = 1 })
          ~reply:(function
            | Samya.Types.Granted ->
                bump admitted tier;
                (* The call completes 200-1200 ms later and returns quota. *)
                Des.Engine.schedule engine
                  ~delay_ms:(200.0 +. Des.Rng.float rng 1_000.0)
                  (fun () ->
                    Samya.Cluster.submit cluster ~region:regions.(gateway)
                      (Samya.Types.Release { entity = tier; amount = 1 })
                      ~reply:(fun _ -> ()))
            | Samya.Types.Rejected | Samya.Types.Unavailable -> bump throttled tier
            | Samya.Types.Read_result _ -> ()))
  in
  for gateway = 0 to Array.length regions - 1 do
    List.iter
      (fun (tier, quota) ->
        (* Offered load holds ~80% of the tier's quota on average (calls
           hold quota ~0.7 s), so the limiter works near its limit and
           quota genuinely has to follow the sun. *)
        let base_rate = float_of_int quota /. 4_400.0 in
        let rec arrivals at =
          if at < duration_ms then begin
            (* Sinusoidal day-night modulation, phase-shifted per region. *)
            let phase = float_of_int gateway /. 5.0 in
            let intensity =
              base_rate
              *. (0.3 +. (0.7 *. Float.abs (sin ((at /. 40_000.0) +. (phase *. 6.28)))))
            in
            call gateway tier at;
            arrivals (at +. Des.Rng.exponential rng ~rate:intensity)
          end
        in
        arrivals (Des.Rng.float rng 100.0))
      tiers
  done;
  Des.Engine.run engine ~until_ms:600_000.0;
  Format.printf "geo-distributed rate limiter (4 simulated minutes):@.@.";
  List.iter
    (fun (tier, quota) ->
      let a = Option.value (Hashtbl.find_opt admitted tier) ~default:0 in
      let th = Option.value (Hashtbl.find_opt throttled tier) ~default:0 in
      Format.printf "  %-12s quota %4d: admitted %6d, throttled %5d (%.1f%%)@." tier quota
        a th
        (100.0 *. float_of_int th /. float_of_int (max 1 (a + th)));
      match Samya.Cluster.check_invariant cluster ~entity:tier ~maximum:quota with
      | Ok () -> Format.printf "  %-12s in-flight never exceeded the quota.@." ""
      | Error e -> Format.printf "  %-12s QUOTA VIOLATED: %s@." "" e)
    tiers;
  let stats = Samya.Cluster.aggregate_site_stats cluster in
  Format.printf "@.quota rebalancing: %d proactive + %d reactive triggers, %d decided@."
    stats.Samya.Site.proactive_triggers stats.Samya.Site.reactive_triggers
    (Samya.Cluster.total_redistributions cluster)
