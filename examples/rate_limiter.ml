(* A gateway fleet's rate-limiter registry (the multi-entity use case).

   One Samya deployment holds the per-customer quotas of an API-gateway
   fleet: two thousand keys bulk-registered cold in the compact entity
   arena, Zipfian traffic heating the popular head into full per-entity
   protocol machines while the cold tail is served straight from the
   per-site ledgers. Gateways acquire a token per in-flight call and
   release it when the rate-limit window expires — all locally, with the
   site-level batched Avantan[*] machine piggybacking many keys'
   reallocations onto each WAN round as quota follows the traffic.

     dune exec examples/rate_limiter.exe *)

let keys = 2_000
let key r = Printf.sprintf "customer-%04d" r
let hold_ms = 500.0 (* the rate-limit window: how long a call holds its token *)
let rate_per_s = 300.0 (* offered calls across the whole fleet *)
let duration_ms = 2.0 *. 60_000.0

let () =
  let regions = Array.of_list Geonet.Region.default_five in
  let n_sites = Array.length regions in
  let zipf = Trace.Zipf.create keys in
  (* Little's-law quota per key: expected in-flight calls of rank [r]
     with 5x headroom, floored at one token per site. *)
  let quota r =
    let expected =
      rate_per_s *. Trace.Zipf.probability zipf r *. (hold_ms /. 1000.0)
    in
    max n_sites (int_of_float (ceil (5.0 *. expected)))
  in
  let config =
    {
      Samya.Config.default with
      variant = Samya.Config.Star;
      prediction_enabled = false;
      (* One machine per site, up to 32 keys per Avantan instance; 16-way
         sharded entity maps keep the 2k-key registry cheap to touch. *)
      protocol_batch = 32;
      entity_shards = 16;
      entity_capacity = keys;
    }
  in
  let cluster = Samya.Cluster.create ~config ~regions ~seed:23L () in
  let engine = Samya.Cluster.engine cluster in
  Samya.Cluster.register_entities cluster
    (List.init keys (fun r -> (key r, quota r)));
  let rng = Des.Rng.split (Des.Engine.rng engine) in
  let admitted = ref 0 and throttled = ref 0 in
  let per_key_admitted = Hashtbl.create 256 in
  let bump table k =
    Hashtbl.replace table k (1 + Option.value (Hashtbl.find_opt table k) ~default:0)
  in

  (* Open-loop Zipfian arrivals: each call draws its customer from the
     popularity curve and lands on the customer's home gateway 80% of the
     time (a geo-pinned customer base), anywhere otherwise. A granted
     call returns its token when the window expires. *)
  let call at rank gateway =
    let entity = key rank in
    Des.Engine.schedule_at engine ~time_ms:at (fun () ->
        Samya.Cluster.submit cluster ~region:regions.(gateway)
          (Samya.Types.Acquire { entity; amount = 1; deadline_ms = infinity })
          ~reply:(function
            | Samya.Types.Granted ->
                incr admitted;
                bump per_key_admitted entity;
                Des.Engine.schedule engine ~delay_ms:hold_ms (fun () ->
                    Samya.Cluster.submit cluster ~region:regions.(gateway)
                      (Samya.Types.Release { entity; amount = 1; deadline_ms = infinity })
                      ~reply:(fun _ -> ()))
            | Samya.Types.Rejected | Samya.Types.Rejected_deadline | Samya.Types.Unavailable ->
                incr throttled
            | Samya.Types.Read_result _ -> ()))
  in
  let rec arrivals at =
    if at < duration_ms then begin
      let rank = Trace.Zipf.sample zipf rng in
      let home = rank mod n_sites in
      let gateway =
        if Des.Rng.float rng 1.0 < 0.8 then home else Des.Rng.int rng n_sites
      in
      call at rank gateway;
      arrivals (at +. Des.Rng.exponential rng ~rate:(rate_per_s /. 1000.0))
    end
  in
  arrivals (Des.Rng.float rng 10.0);
  (* Run past the end so the last windows expire and quota comes home. *)
  Des.Engine.run engine ~until_ms:(duration_ms +. 60_000.0);

  Format.printf "gateway fleet rate limiter (%d keys, 2 simulated minutes):@.@."
    keys;
  Format.printf "  admitted %d, throttled %d (%.2f%%)@." !admitted !throttled
    (100.0 *. float_of_int !throttled /. float_of_int (max 1 (!admitted + !throttled)));
  let hot = Samya.Cluster.hot_entities cluster in
  Format.printf "  hot keys: %d of %d registered (summed over %d sites) — the cold tail never built protocol state@."
    hot
    (Samya.Cluster.entity_count cluster)
    n_sites;
  (* The head of the popularity curve, where the traffic went. *)
  let top =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_key_admitted []
    |> List.sort (fun (ka, va) (kb, vb) ->
           let c = Int.compare vb va in
           if c <> 0 then c else String.compare ka kb)
    |> List.filteri (fun i _ -> i < 5)
  in
  Format.printf "@.  hottest customers:@.";
  List.iter
    (fun (k, calls) -> Format.printf "    %-14s %5d calls admitted@." k calls)
    top;
  (* Every key's tokens are conserved against its own quota — hot head
     and cold tail alike. *)
  let violated = ref 0 in
  for r = 0 to keys - 1 do
    match Samya.Cluster.check_invariant cluster ~entity:(key r) ~maximum:(quota r) with
    | Ok () -> ()
    | Error e ->
        incr violated;
        if !violated <= 3 then Format.printf "  %s QUOTA VIOLATED: %s@." (key r) e
  done;
  if !violated = 0 then
    Format.printf "@.  token conservation: all %d keys audited OK@." keys
  else Format.printf "@.  token conservation: %d keys VIOLATED@." !violated;
  let stats = Samya.Cluster.aggregate_site_stats cluster in
  Format.printf
    "@.quota rebalancing: %d reactive triggers -> %d decided (batched, piggybacked)@."
    stats.Samya.Site.reactive_triggers
    (Samya.Cluster.total_redistributions cluster)
