(* Flash-sale inventory (one of the paper's "other applications", §1).

   A retailer lists 8000 units of a hot SKU, sold from five regional
   storefronts. At minute two, a flash sale makes the US storefront's
   demand explode. Samya's per-site stock is just a partition of the
   global count: the prediction module sees the surge and Avantan pulls
   unsold stock from the quiet regions, so the US keeps selling without a
   per-order global transaction — and the total sold can never exceed the
   listing (Equation 1).

     dune exec examples/inventory.exe *)

let sku = "sku-ultrawidget"
let listed = 8_000

let () =
  let regions = Array.of_list Geonet.Region.default_five in
  let cluster =
    Samya.Cluster.create ~config:Samya.Config.default ~regions ~seed:11L ()
  in
  let engine = Samya.Cluster.engine cluster in
  Samya.Cluster.init_entity cluster ~entity:sku ~maximum:listed;
  let sold = Array.make (Array.length regions) 0 in
  let missed = Array.make (Array.length regions) 0 in
  let rng = Des.Rng.split (Des.Engine.rng engine) in

  (* Background shopping everywhere: ~20 orders/s per region. *)
  let order region_index at =
    Des.Engine.schedule_at engine ~time_ms:at (fun () ->
        Samya.Cluster.submit cluster ~region:regions.(region_index)
          (Samya.Types.Acquire { entity = sku; amount = 1; deadline_ms = infinity })
          ~reply:(function
            | Samya.Types.Granted -> sold.(region_index) <- sold.(region_index) + 1
            | Samya.Types.Rejected | Samya.Types.Rejected_deadline | Samya.Types.Unavailable ->
                missed.(region_index) <- missed.(region_index) + 1
            | Samya.Types.Read_result _ -> ()))
  in
  let duration_ms = 5.0 *. 60_000.0 in
  for region_index = 0 to Array.length regions - 1 do
    let rec background at =
      if at < duration_ms then begin
        order region_index at;
        background (at +. Des.Rng.exponential rng ~rate:0.02 (* per ms *))
      end
    in
    background (Des.Rng.float rng 50.0)
  done;
  (* The flash sale: the US storefront jumps to ~400 orders/s for a minute. *)
  let rec surge at =
    if at < 180_000.0 then begin
      order 0 at;
      surge (at +. Des.Rng.exponential rng ~rate:0.4)
    end
  in
  surge 120_000.0;

  Des.Engine.run engine ~until_ms:600_000.0;
  Format.printf "flash sale on %s (%d listed):@.@." sku listed;
  Array.iteri
    (fun i _ ->
      Format.printf "  %-22s sold %5d  missed %4d  stock left %4d@."
        (Geonet.Region.name regions.(i))
        sold.(i) missed.(i)
        (Samya.Site.tokens_left (Samya.Cluster.site cluster i) ~entity:sku))
    regions;
  let total_sold = Array.fold_left ( + ) 0 sold in
  Format.printf "@.total sold %d <= listed %d; redistributions executed: %d@." total_sold
    listed
    (Samya.Cluster.total_redistributions cluster);
  match Samya.Cluster.check_invariant cluster ~entity:sku ~maximum:listed with
  | Ok () -> Format.printf "inventory never oversold (Equation 1 verified).@."
  | Error e -> Format.printf "OVERSOLD: %s@." e
