(* Quickstart: a five-region Samya deployment tracking one resource.

   Build a cluster, set a global limit, acquire and release tokens from
   different regions, take a global-snapshot read, and verify the system
   constraint (Equation 1 of the paper). Run with:

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A cluster: one site per region, Avantan[(n+1)/2] redistribution. *)
  let regions = Array.of_list Geonet.Region.default_five in
  let cluster =
    Samya.Cluster.create ~config:Samya.Config.default ~regions ~seed:7L ()
  in
  let engine = Samya.Cluster.engine cluster in

  (* 2. An entity: clients may hold at most 5000 "VM" tokens in total.
        Each site starts with an equal share (1000). *)
  Samya.Cluster.init_entity cluster ~entity:"VM" ~maximum:5_000;

  (* 3. Clients: acquire from two regions, release from one. Replies are
        callbacks; the simulation engine delivers them with realistic
        geo-latency. *)
  let show label response =
    Format.printf "  %-28s -> %a@." label Samya.Types.pp_response response
  in
  Samya.Cluster.submit cluster ~region:Geonet.Region.Us_west1
    (Samya.Types.Acquire { entity = "VM"; amount = 3; deadline_ms = infinity })
    ~reply:(show "us-west acquires 3 VMs");
  Samya.Cluster.submit cluster ~region:Geonet.Region.Asia_east2
    (Samya.Types.Acquire { entity = "VM"; amount = 10; deadline_ms = infinity })
    ~reply:(show "asia acquires 10 VMs");
  Samya.Cluster.submit cluster ~region:Geonet.Region.Us_west1
    (Samya.Types.Release { entity = "VM"; amount = 1; deadline_ms = infinity })
    ~reply:(show "us-west releases 1 VM");

  (* 4. A global-snapshot read (fans out to every site). *)
  Samya.Cluster.submit cluster ~region:Geonet.Region.Europe_west2
    (Samya.Types.Read { entity = "VM"; deadline_ms = infinity })
    ~reply:(show "europe reads availability");

  (* 5. Run the virtual clock until everything settles. *)
  Des.Engine.run engine ~until_ms:60_000.0;

  Format.printf "@.per-site state:@.";
  Array.iter
    (fun site ->
      Format.printf "  %-22s tokens_left=%4d acquired_net=%2d@."
        (Geonet.Region.name regions.(Samya.Site.id site))
        (Samya.Site.tokens_left site ~entity:"VM")
        (Samya.Site.acquired_net site ~entity:"VM"))
    (Samya.Cluster.sites cluster);
  match Samya.Cluster.check_invariant cluster ~entity:"VM" ~maximum:5_000 with
  | Ok () -> Format.printf "Equation 1 holds: total acquired <= 5000, tokens conserved.@."
  | Error e -> Format.printf "invariant violated: %s@." e
