(* Benchmark harness entry point — all logic lives in Cli.Bench_cmd, which
   samya_cli mounts as its `bench` subcommand.

   Usage:
     dune exec bench/main.exe                 -- everything, full durations
     dune exec bench/main.exe -- --quick      -- everything, short durations
     dune exec bench/main.exe -- table2b fig3c ... [--quick]
     dune exec bench/main.exe -- micro        -- bechamel micro-benchmarks
     dune exec bench/main.exe -- --jobs 4     -- parallel trial runner
     dune exec bench/main.exe -- --json PATH  -- machine-readable results
     dune exec bench/main.exe -- --metrics-out PATH  -- metrics JSON

   Independent trials run on a domain pool (--jobs, env SAMYA_BENCH_JOBS);
   the experiment output is byte-identical at every jobs level.
   SAMYA_BENCH_QUICK=1 in the environment is equivalent to --quick. *)

let () = exit (Cmdliner.Cmd.eval' Cli.Bench_cmd.cmd)
