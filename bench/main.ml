(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index), plus bechamel
   micro-benchmarks of the core data-path operations.

   Usage:
     dune exec bench/main.exe                 -- everything, full durations
     dune exec bench/main.exe -- --quick      -- everything, short durations
     dune exec bench/main.exe -- table2b fig3c ... [--quick]
     dune exec bench/main.exe -- micro        -- bechamel micro-benchmarks
     dune exec bench/main.exe -- --jobs 4     -- parallel trial runner
     dune exec bench/main.exe -- --json PATH  -- machine-readable results

   Independent trials run on a domain pool (--jobs, env SAMYA_BENCH_JOBS);
   the experiment output is byte-identical at every jobs level.
   SAMYA_BENCH_QUICK=1 in the environment is equivalent to --quick. *)

let usage () =
  String.concat "\n"
    [
      "usage: main.exe [options] [experiment ids...]";
      "";
      "ids (default: every experiment except fig3b, then micro):";
      Printf.sprintf "  %s micro" (String.concat " " (Harness.Registry.ids ()));
      "";
      "options:";
      "  --quick      short durations (env SAMYA_BENCH_QUICK=1)";
      "  --jobs N     worker domains for independent trials (env SAMYA_BENCH_JOBS;";
      "               default: hardware parallelism); output is identical for any N";
      "  --json PATH  also write a machine-readable BENCH_*.json results file";
      "  --help       show this message";
      "";
    ]

let die message =
  prerr_string (message ^ "\n\n" ^ usage ());
  exit 2

type options = {
  quick : bool;
  jobs : int;
  json : string option;
  ids : string list;
}

let parse_args argv =
  let quick = ref (Sys.getenv_opt "SAMYA_BENCH_QUICK" = Some "1") in
  let jobs = ref None in
  let json = ref None in
  let ids = ref [] in
  let positive_int ~flag value =
    match int_of_string_opt value with
    | Some n when n >= 1 -> n
    | Some _ | None -> die (Printf.sprintf "%s expects a positive integer, got %S" flag value)
  in
  let rec parse = function
    | [] -> ()
    | "--" :: rest -> parse rest
    | ("--help" | "-h" | "-help") :: _ ->
        print_string (usage ());
        exit 0
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--jobs" :: value :: rest ->
        jobs := Some (positive_int ~flag:"--jobs" value);
        parse rest
    | [ "--jobs" ] -> die "--jobs requires a value"
    | "--json" :: path :: rest ->
        json := Some path;
        parse rest
    | [ "--json" ] -> die "--json requires a value"
    | arg :: rest when String.length arg > 1 && arg.[0] = '-' -> (
        match String.index_opt arg '=' with
        | Some eq -> parse (String.sub arg 0 eq :: String.sub arg (eq + 1) (String.length arg - eq - 1) :: rest)
        | None -> die (Printf.sprintf "unknown option %S" arg))
    | id :: rest ->
        ids := id :: !ids;
        parse rest
  in
  parse (List.tl (Array.to_list argv));
  let jobs =
    match !jobs with
    | Some n -> n
    | None -> (
        match Sys.getenv_opt "SAMYA_BENCH_JOBS" with
        | Some v -> (
            match int_of_string_opt v with
            | Some n when n >= 1 -> n
            | Some _ | None -> die (Printf.sprintf "SAMYA_BENCH_JOBS must be a positive integer, got %S" v))
        | None -> Harness.Pool.default_jobs ())
  in
  { quick = !quick; jobs; json = !json; ids = List.rev !ids }

(* ------------------------------------------------------------------ *)
(* Micro benchmarks (bechamel) *)

let micro_benchmarks () =
  let open Bechamel in
  let rng = Des.Rng.create 99L in
  let entries =
    List.init 16 (fun site ->
        {
          Samya.Reallocation.site;
          tokens_left = Des.Rng.int rng 2_000;
          tokens_wanted = Des.Rng.int rng 500;
        })
  in
  let realloc =
    Test.make ~name:"reallocation.redistribute(16 sites)"
      (Staged.stage (fun () -> ignore (Samya.Reallocation.redistribute entries)))
  in
  let heap =
    Test.make ~name:"pheap.push+pop(1k)"
      (Staged.stage (fun () ->
           let h = Des.Pheap.create () in
           for i = 0 to 999 do
             Des.Pheap.push h ~priority:(float_of_int ((i * 7) mod 997)) i
           done;
           while Des.Pheap.pop h <> None do
             ()
           done))
  in
  let a = Ml.Matrix.random (Des.Rng.create 3L) 64 64 ~scale:1.0 in
  let b = Ml.Matrix.random (Des.Rng.create 4L) 64 64 ~scale:1.0 in
  let matmul =
    Test.make ~name:"matrix.matmul(64x64)"
      (Staged.stage (fun () -> ignore (Ml.Matrix.matmul a b)))
  in
  let series = Array.init 400 (fun i -> 50.0 +. (40.0 *. sin (float_of_int i /. 9.0))) in
  let model =
    Ml.Lstm.train
      ~config:{ Ml.Lstm.default_config with epochs = 2; hidden = 8; window = 12 }
      series
  in
  let lstm =
    Test.make ~name:"lstm.predict_next(w=12,h=8)"
      (Staged.stage (fun () -> ignore (Ml.Lstm.predict_next model series)))
  in
  let grouped = Test.make_grouped ~name:"core" [ realloc; heap; matmul; lstm ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Format.printf "@.== micro: bechamel benchmarks of core operations ==@.";
  let measured = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ time_ns ] ->
          measured := (name, time_ns) :: !measured;
          Format.printf "  %-42s %12.1f ns/run@." name time_ns
      | Some _ | None -> ())
    analyzed;
  Format.printf "@.";
  List.sort (fun (a, _) (b, _) -> String.compare a b) !measured

(* ------------------------------------------------------------------ *)
(* Machine-readable results (BENCH_*.json) *)

let json_escape s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let write_json ~path ~options ~experiments ~micro ~total_wall_s =
  let out = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string out) fmt in
  add "{\n";
  add "  \"schema\": \"samya-bench/1\",\n";
  add "  \"generated_at_unix\": %.0f,\n" (Unix.gettimeofday ());
  add "  \"quick\": %b,\n" options.quick;
  add "  \"jobs\": %d,\n" options.jobs;
  add "  \"seed\": %Ld,\n" Harness.Exp_common.seed;
  add "  \"experiments\": [";
  List.iteri
    (fun i (id, seconds) ->
      add "%s\n    {\"id\": \"%s\", \"wall_s\": %.3f}" (if i = 0 then "" else ",") (json_escape id) seconds)
    experiments;
  add "%s],\n" (if experiments = [] then "" else "\n  ");
  add "  \"micro\": [";
  List.iteri
    (fun i (name, ns) ->
      add "%s\n    {\"name\": \"%s\", \"ns_per_run\": %.1f}" (if i = 0 then "" else ",") (json_escape name) ns)
    micro;
  add "%s],\n" (if micro = [] then "" else "\n  ");
  add "  \"total_wall_s\": %.3f\n" total_wall_s;
  add "}\n";
  let channel = open_out path in
  output_string channel (Buffer.contents out);
  close_out channel

(* ------------------------------------------------------------------ *)

let () =
  let options = parse_args Sys.argv in
  let run_micro = options.ids = [] || List.mem "micro" options.ids in
  let experiment_ids =
    if options.ids = [] then Harness.Registry.ids () |> List.filter (fun id -> id <> "fig3b")
    else List.filter (fun id -> id <> "micro") options.ids
  in
  let experiments =
    match Harness.Registry.validate experiment_ids with
    | Ok experiments -> experiments
    | Error message -> die ("error: " ^ message)
  in
  (* Fail before the sweep, not after it, if the JSON target is unwritable. *)
  (match options.json with
  | Some path -> (
      match open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path with
      | channel -> close_out channel
      | exception Sys_error reason -> die ("error: cannot write --json file: " ^ reason))
  | None -> ());
  Harness.Pool.set_jobs options.jobs;
  (* Runner metadata goes to stderr: stdout is byte-identical at any
     --jobs level, so two runs can be diffed directly. *)
  Format.eprintf "jobs: %d@." options.jobs;
  Format.printf
    "Samya reproduction benchmarks (%s durations; seed fixed, fully deterministic)@."
    (if options.quick then "quick" else "paper-scale");
  let started = Unix.gettimeofday () in
  let ctx = Harness.Lab.create () in
  let rendered =
    Harness.Registry.run_many ~time:Unix.gettimeofday ctx ~quick:options.quick experiments
  in
  List.iter (fun (r : Harness.Registry.rendered) -> print_string r.output) rendered;
  let micro = if run_micro then micro_benchmarks () else [] in
  let total_wall_s = Unix.gettimeofday () -. started in
  (match options.json with
  | Some path ->
      let experiments =
        List.map
          (fun (r : Harness.Registry.rendered) -> (r.experiment.Harness.Registry.id, r.seconds))
          rendered
      in
      write_json ~path ~options ~experiments ~micro ~total_wall_s;
      Format.eprintf "wrote %s@." path
  | None -> ());
  Format.printf "@.done.@."
