(* The paper's Figure 1, live: ultraCloud tracks resource usage for its
   customer eCommerce.com, an org tree whose root carries the global VM
   limit and whose teams carry their own budgets. Every VM creation
   charges each limited ancestor; the hot root counter is dis-aggregated
   across the five geo-distributed sites by Samya, so teams on different
   continents consume concurrently without per-update synchronization.

     dune exec examples/org_quotas.exe *)

let () =
  let regions = Array.of_list Geonet.Region.default_five in
  let cluster = Samya.Cluster.create ~config:Samya.Config.default ~regions ~seed:77L () in
  let engine = Samya.Cluster.engine cluster in
  let org = Hierarchy.Org.create ~cluster ~org_name:"eCommerce.com" ~root_limit:3_000 in
  let root = Hierarchy.Org.root org in
  let retail = Hierarchy.Org.add_unit org ~parent:root ~name:"retail" () in
  let clothing = Hierarchy.Org.add_unit org ~parent:retail ~name:"clothing" ~limit:800 () in
  let electronics =
    Hierarchy.Org.add_unit org ~parent:retail ~name:"electronics" ~limit:1_500 ()
  in
  let platform = Hierarchy.Org.add_unit org ~parent:root ~name:"platform" ~limit:2_000 () in
  let granted = Hashtbl.create 4 and denied = Hashtbl.create 4 in
  let bump table node =
    Hashtbl.replace table node (1 + Option.value (Hashtbl.find_opt table node) ~default:0)
  in
  let rng = Des.Rng.split (Des.Engine.rng engine) in
  (* Each team creates VMs from its home region; demand exceeds several
     budgets so both team limits and the root limit end up binding. *)
  let teams =
    [ (clothing, Geonet.Region.Us_west1, 1_000);
      (electronics, Geonet.Region.Europe_west2, 1_800);
      (platform, Geonet.Region.Asia_east2, 2_400) ]
  in
  List.iter
    (fun (team, region, demand) ->
      for _ = 1 to demand do
        Des.Engine.schedule engine ~delay_ms:(Des.Rng.float rng 480_000.0) (fun () ->
            Hierarchy.Org.consume org ~node:team ~region ~amount:1 ~reply:(function
              | Samya.Types.Granted -> bump granted team
              | _ -> bump denied team))
      done)
    teams;
  Des.Engine.run engine ~until_ms:900_000.0;
  Format.printf "eCommerce.com on ultraCloud: root limit 3000 VMs@.@.";
  List.iter
    (fun (team, _, demand) ->
      Format.printf "  %-34s demanded %4d  granted %4d  denied %4d@."
        (Hierarchy.Org.path org team)
        demand
        (Option.value (Hashtbl.find_opt granted team) ~default:0)
        (Option.value (Hashtbl.find_opt denied team) ~default:0))
    teams;
  Format.printf "@.  root usage %d / 3000 (availability %d)@."
    (Hierarchy.Org.usage org root)
    (Hierarchy.Org.availability org root);
  Format.printf "  clothing usage %d / 800, platform usage %d / 2000@."
    (Hierarchy.Org.usage org clothing)
    (Hierarchy.Org.usage org platform);
  assert (Hierarchy.Org.usage org root <= 3_000);
  assert (Hierarchy.Org.usage org clothing <= 800);
  Format.printf "@.every limit on every path held; redistributions executed: %d@."
    (Samya.Cluster.total_redistributions cluster)
