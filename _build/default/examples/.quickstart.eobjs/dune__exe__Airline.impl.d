examples/airline.ml: Array Des Format Geonet Samya
