examples/rate_limiter.ml: Array Des Float Format Geonet Hashtbl List Option Samya
