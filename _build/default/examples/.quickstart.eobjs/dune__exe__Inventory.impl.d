examples/inventory.ml: Array Des Format Geonet Samya
