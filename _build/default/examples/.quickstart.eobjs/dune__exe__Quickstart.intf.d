examples/quickstart.mli:
