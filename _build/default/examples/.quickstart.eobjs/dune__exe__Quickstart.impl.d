examples/quickstart.ml: Array Des Format Geonet Samya
