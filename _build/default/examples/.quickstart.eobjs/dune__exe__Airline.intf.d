examples/airline.mli:
