examples/rate_limiter.mli:
