examples/org_quotas.mli:
