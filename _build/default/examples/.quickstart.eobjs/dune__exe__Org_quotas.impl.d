examples/org_quotas.ml: Array Des Format Geonet Hashtbl Hierarchy List Option Samya
