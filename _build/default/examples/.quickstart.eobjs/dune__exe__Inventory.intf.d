examples/inventory.mli:
