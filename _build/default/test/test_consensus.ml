(* Tests for the consensus substrate: ballots, single-decree Paxos,
   multi-Paxos and Raft (election safety, log safety, partitions). *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Ballot *)

let ballot_ordering () =
  let open Consensus.Ballot in
  let a = { num = 1; site = 0 } and b = { num = 1; site = 1 } and c = { num = 2; site = 0 } in
  check bool "site breaks ties" true (b > a);
  check bool "num dominates" true (c > b);
  check bool "next increments" true (next a ~site:5 > a);
  check bool "equal" true (equal a a)

(* ------------------------------------------------------------------ *)
(* Paxos harness *)

type 'v paxos_cluster = {
  engine : Des.Engine.t;
  network : 'v Consensus.Paxos.msg Geonet.Network.t;
  nodes : 'v Consensus.Paxos.t array;
  decided : (int * 'v) list ref;
}

let paxos_cluster ?(n = 5) ?(drop = 0.0) ~seed () =
  let engine = Des.Engine.create ~seed () in
  let regions = Array.of_list Geonet.Region.default_five in
  let regions = Array.init n (fun i -> regions.(i mod 5)) in
  let network = Geonet.Network.create engine ~regions ~drop_probability:drop () in
  let decided = ref [] in
  let membership = List.init n (fun i -> i) in
  let nodes =
    Array.init n (fun id ->
        Consensus.Paxos.create ~engine ~id ~nodes:membership
          ~send:(fun dst msg -> Geonet.Network.send network ~src:id ~dst msg)
          ~on_decide:(fun v -> decided := (id, v) :: !decided)
          ())
  in
  Array.iteri
    (fun id node ->
      Geonet.Network.register network ~node:id (fun envelope ->
          Consensus.Paxos.handle node ~src:envelope.Geonet.Network.src
            envelope.Geonet.Network.payload))
    nodes;
  { engine; network; nodes; decided }

let paxos_simple_agreement () =
  let cluster = paxos_cluster ~seed:1L () in
  Consensus.Paxos.propose cluster.nodes.(0) "v0";
  Des.Engine.run cluster.engine ~until_ms:10_000.0;
  check int "all five decided" 5 (List.length !(cluster.decided));
  List.iter (fun (_, v) -> check Alcotest.string "same value" "v0" v) !(cluster.decided)

let paxos_dueling_proposers () =
  let cluster = paxos_cluster ~seed:2L () in
  Consensus.Paxos.propose cluster.nodes.(0) "a";
  Consensus.Paxos.propose cluster.nodes.(4) "b";
  Des.Engine.run cluster.engine ~until_ms:30_000.0;
  let values = List.map snd !(cluster.decided) |> List.sort_uniq compare in
  check int "exactly one value chosen" 1 (List.length values);
  check bool "everyone decided" true (List.length !(cluster.decided) >= 3)

let paxos_agreement_under_drops () =
  (* 20% loss: retries must still converge on a single value. *)
  let cluster = paxos_cluster ~seed:3L ~drop:0.2 () in
  Consensus.Paxos.propose cluster.nodes.(1) "x";
  Consensus.Paxos.propose cluster.nodes.(3) "y";
  Des.Engine.run cluster.engine ~until_ms:120_000.0;
  let values = List.map snd !(cluster.decided) |> List.sort_uniq compare in
  check int "single value despite loss" 1 (List.length values)

let paxos_minority_cannot_decide () =
  let cluster = paxos_cluster ~seed:4L () in
  (* Partition the proposer with just one peer. *)
  Geonet.Network.set_partition cluster.network [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  Consensus.Paxos.propose cluster.nodes.(0) "minority";
  Des.Engine.run cluster.engine ~until_ms:5_000.0;
  check int "no decision in minority" 0 (List.length !(cluster.decided));
  (* Heal: the retry loop should finish the round. *)
  Geonet.Network.clear_partition cluster.network;
  Des.Engine.run cluster.engine ~until_ms:30_000.0;
  check bool "decides after heal" true (List.length !(cluster.decided) >= 3)

let paxos_value_survives_proposer_restart () =
  let cluster = paxos_cluster ~seed:5L () in
  Consensus.Paxos.propose cluster.nodes.(0) "persist";
  Des.Engine.run cluster.engine ~until_ms:10_000.0;
  Consensus.Paxos.restart cluster.nodes.(2);
  (* A later competing proposal must re-discover the decided value. *)
  Consensus.Paxos.propose cluster.nodes.(2) "usurper";
  Des.Engine.run cluster.engine ~until_ms:30_000.0;
  let values = List.map snd !(cluster.decided) |> List.sort_uniq compare in
  check (Alcotest.list Alcotest.string) "original value wins" [ "persist" ] values

(* ------------------------------------------------------------------ *)
(* Multi-Paxos *)

type mp_cluster = {
  mp_engine : Des.Engine.t;
  mp_network : int Consensus.Multipaxos.msg Geonet.Network.t;
  mp_nodes : int Consensus.Multipaxos.t array;
  applied : (int * int) list ref; (* node, command *)
}

let mp_cluster ?(n = 5) ~seed () =
  let engine = Des.Engine.create ~seed () in
  let regions = Array.init n (fun i -> List.nth Geonet.Region.default_five (i mod 5)) in
  let network = Geonet.Network.create engine ~regions () in
  let applied = ref [] in
  let membership = List.init n (fun i -> i) in
  let nodes =
    Array.init n (fun id ->
        Consensus.Multipaxos.create ~engine ~id ~nodes:membership ~leader:0
          ~send:(fun dst msg -> Geonet.Network.send network ~src:id ~dst msg)
          ~on_apply:(fun _ c -> applied := (id, c) :: !applied)
          ())
  in
  Array.iteri
    (fun id node ->
      Geonet.Network.register network ~node:id (fun envelope ->
          Consensus.Multipaxos.handle node ~src:envelope.Geonet.Network.src
            envelope.Geonet.Network.payload))
    nodes;
  (* The module is retry-free by contract: the owner retransmits. *)
  let rec retry () =
    Des.Engine.schedule engine ~delay_ms:500.0 (fun () ->
        if Consensus.Multipaxos.pending_count nodes.(0) > 0 then
          Consensus.Multipaxos.resend_pending nodes.(0);
        if Des.Engine.pending engine > 0 then retry ())
  in
  retry ();
  { mp_engine = engine; mp_network = network; mp_nodes = nodes; applied }

let multipaxos_commits_in_order () =
  let cluster = mp_cluster ~seed:6L () in
  let commits = ref [] in
  for command = 1 to 10 do
    Consensus.Multipaxos.submit cluster.mp_nodes.(0) command ~on_commit:(fun () ->
        commits := command :: !commits)
  done;
  Des.Engine.run cluster.mp_engine ~until_ms:10_000.0;
  check (Alcotest.list int) "commit order" (List.init 10 (fun i -> i + 1)) (List.rev !commits);
  let leader_applied =
    List.filter (fun (node, _) -> node = 0) !(cluster.applied) |> List.map snd |> List.rev
  in
  check (Alcotest.list int) "leader applied in order" (List.init 10 (fun i -> i + 1))
    leader_applied

let multipaxos_follower_submission_rejected () =
  let cluster = mp_cluster ~seed:7L () in
  Alcotest.check_raises "not the leader" (Invalid_argument "Multipaxos.submit: not the leader")
    (fun () -> Consensus.Multipaxos.submit cluster.mp_nodes.(1) 1 ~on_commit:ignore)

let multipaxos_blocks_without_majority () =
  let cluster = mp_cluster ~seed:8L () in
  Geonet.Network.crash cluster.mp_network 2;
  Geonet.Network.crash cluster.mp_network 3;
  Geonet.Network.crash cluster.mp_network 4;
  let committed = ref false in
  Consensus.Multipaxos.submit cluster.mp_nodes.(0) 42 ~on_commit:(fun () -> committed := true);
  Des.Engine.run cluster.mp_engine ~until_ms:10_000.0;
  check bool "no commit without majority" false !committed;
  (* Recover one node and retransmit: commit completes. *)
  Geonet.Network.recover cluster.mp_network 2;
  Consensus.Multipaxos.resend_pending cluster.mp_nodes.(0);
  Des.Engine.run cluster.mp_engine ~until_ms:20_000.0;
  check bool "commits after recovery" true !committed

(* ------------------------------------------------------------------ *)
(* Raft *)

type raft_cluster = {
  r_engine : Des.Engine.t;
  r_network : int Consensus.Raft.msg Geonet.Network.t;
  rafts : int Consensus.Raft.t array;
  r_applied : (int, int list ref) Hashtbl.t;
}

let raft_cluster ?(n = 5) ~seed () =
  let engine = Des.Engine.create ~seed () in
  let regions = Array.init n (fun i -> List.nth Geonet.Region.default_five (i mod 5)) in
  let network = Geonet.Network.create engine ~regions () in
  let membership = List.init n (fun i -> i) in
  let r_applied = Hashtbl.create 8 in
  let rafts =
    Array.init n (fun id ->
        let log = ref [] in
        Hashtbl.replace r_applied id log;
        Consensus.Raft.create ~engine ~id ~nodes:membership
          ~send:(fun dst msg -> Geonet.Network.send network ~src:id ~dst msg)
          ~election_timeout_ms:(1_000.0, 2_000.0) ~heartbeat_ms:300.0
          ~on_apply:(fun _ c -> log := c :: !log)
          ())
  in
  Array.iteri
    (fun id raft ->
      Geonet.Network.register network ~node:id (fun envelope ->
          Consensus.Raft.handle raft ~src:envelope.Geonet.Network.src
            envelope.Geonet.Network.payload))
    rafts;
  { r_engine = engine; r_network = network; rafts; r_applied }

let raft_leaders cluster =
  Array.to_list cluster.rafts |> List.filter Consensus.Raft.is_leader

let raft_elects_single_leader () =
  let cluster = raft_cluster ~seed:9L () in
  Array.iter Consensus.Raft.start cluster.rafts;
  Des.Engine.run cluster.r_engine ~until_ms:15_000.0;
  let leaders = raft_leaders cluster in
  check int "exactly one leader" 1 (List.length leaders)

let raft_replicates_and_applies () =
  let cluster = raft_cluster ~seed:10L () in
  Array.iter Consensus.Raft.start cluster.rafts;
  Des.Engine.run cluster.r_engine ~until_ms:15_000.0;
  let leader = List.hd (raft_leaders cluster) in
  let commits = ref 0 in
  for command = 1 to 5 do
    match Consensus.Raft.submit leader command ~on_commit:(fun () -> incr commits) with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "leader rejected submit"
  done;
  Des.Engine.run cluster.r_engine ~until_ms:25_000.0;
  check int "all committed" 5 !commits;
  (* Every node applied the same prefix in the same order. *)
  Hashtbl.iter
    (fun _ log ->
      check (Alcotest.list int) "applied order" [ 1; 2; 3; 4; 5 ] (List.rev !log))
    cluster.r_applied

let raft_submit_rejected_at_follower () =
  let cluster = raft_cluster ~seed:11L () in
  Array.iter Consensus.Raft.start cluster.rafts;
  Des.Engine.run cluster.r_engine ~until_ms:15_000.0;
  let follower =
    Array.to_list cluster.rafts |> List.find (fun r -> not (Consensus.Raft.is_leader r))
  in
  (match Consensus.Raft.submit follower 1 ~on_commit:ignore with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "follower accepted a submit")

let raft_reelects_after_leader_crash () =
  let cluster = raft_cluster ~seed:12L () in
  Array.iter Consensus.Raft.start cluster.rafts;
  Des.Engine.run cluster.r_engine ~until_ms:15_000.0;
  let old_leader = List.hd (raft_leaders cluster) in
  let old_term = Consensus.Raft.current_term old_leader in
  (* Crash it. *)
  Array.iteri
    (fun id raft ->
      if Consensus.Raft.is_leader raft then begin
        Geonet.Network.crash cluster.r_network id;
        Consensus.Raft.pause raft
      end)
    cluster.rafts;
  Des.Engine.run cluster.r_engine ~until_ms:60_000.0;
  let leaders = raft_leaders cluster in
  check int "new leader elected" 1 (List.length leaders);
  check bool "term advanced" true (Consensus.Raft.current_term (List.hd leaders) > old_term)

let raft_log_safety_across_leader_change () =
  let cluster = raft_cluster ~seed:13L () in
  Array.iter Consensus.Raft.start cluster.rafts;
  Des.Engine.run cluster.r_engine ~until_ms:15_000.0;
  let leader = List.hd (raft_leaders cluster) in
  for command = 1 to 3 do
    ignore (Consensus.Raft.submit leader command ~on_commit:ignore)
  done;
  Des.Engine.run cluster.r_engine ~until_ms:25_000.0;
  (* Crash the leader, elect a new one, commit more entries. *)
  Array.iteri
    (fun id raft ->
      if Consensus.Raft.is_leader raft then begin
        Geonet.Network.crash cluster.r_network id;
        Consensus.Raft.pause raft
      end)
    cluster.rafts;
  Des.Engine.run cluster.r_engine ~until_ms:70_000.0;
  let new_leader = List.hd (raft_leaders cluster) in
  for command = 4 to 6 do
    ignore (Consensus.Raft.submit new_leader command ~on_commit:ignore)
  done;
  Des.Engine.run cluster.r_engine ~until_ms:100_000.0;
  (* Log safety: applied sequences at live nodes agree on their common
     prefix and include 1..6 at the new leader. *)
  let logs =
    Hashtbl.fold
      (fun id log acc -> if Geonet.Network.is_up cluster.r_network id then List.rev !log :: acc else acc)
      cluster.r_applied []
  in
  let rec common_prefix a b =
    match (a, b) with
    | x :: xs, y :: ys when x = y -> x :: common_prefix xs ys
    | _ -> []
  in
  List.iter
    (fun log ->
      List.iter
        (fun other ->
          let p = common_prefix log other in
          let shorter = min (List.length log) (List.length other) in
          check int "prefixes agree" shorter (List.length p))
        logs)
    logs;
  check bool "new leader applied all six" true
    (List.exists (fun log -> log = [ 1; 2; 3; 4; 5; 6 ]) logs)

let raft_minority_partition_cannot_commit () =
  let cluster = raft_cluster ~seed:14L () in
  Array.iter Consensus.Raft.start cluster.rafts;
  Des.Engine.run cluster.r_engine ~until_ms:15_000.0;
  let leader_id =
    let found = ref (-1) in
    Array.iteri (fun id r -> if Consensus.Raft.is_leader r then found := id) cluster.rafts;
    !found
  in
  (* Put the leader in a 2-node minority. *)
  let peer = (leader_id + 1) mod 5 in
  let minority = [ leader_id; peer ] in
  let majority = List.filter (fun i -> not (List.mem i minority)) [ 0; 1; 2; 3; 4 ] in
  Geonet.Network.set_partition cluster.r_network [ minority; majority ];
  let committed = ref false in
  ignore
    (Consensus.Raft.submit cluster.rafts.(leader_id) 99 ~on_commit:(fun () ->
         committed := true));
  Des.Engine.run cluster.r_engine ~until_ms:40_000.0;
  check bool "minority leader cannot commit" false !committed;
  (* The majority side elected its own leader at a higher term. *)
  let majority_leader =
    List.exists (fun id -> Consensus.Raft.is_leader cluster.rafts.(id)) majority
  in
  check bool "majority elected a leader" true majority_leader

let suite =
  [
    Alcotest.test_case "ballot: ordering" `Quick ballot_ordering;
    Alcotest.test_case "paxos: simple agreement" `Quick paxos_simple_agreement;
    Alcotest.test_case "paxos: dueling proposers" `Quick paxos_dueling_proposers;
    Alcotest.test_case "paxos: agreement under drops" `Quick paxos_agreement_under_drops;
    Alcotest.test_case "paxos: minority blocks" `Quick paxos_minority_cannot_decide;
    Alcotest.test_case "paxos: decided value survives restart" `Quick
      paxos_value_survives_proposer_restart;
    Alcotest.test_case "multipaxos: ordered commits" `Quick multipaxos_commits_in_order;
    Alcotest.test_case "multipaxos: follower rejects" `Quick
      multipaxos_follower_submission_rejected;
    Alcotest.test_case "multipaxos: majority required" `Quick
      multipaxos_blocks_without_majority;
    Alcotest.test_case "raft: single leader" `Quick raft_elects_single_leader;
    Alcotest.test_case "raft: replicates and applies" `Quick raft_replicates_and_applies;
    Alcotest.test_case "raft: follower rejects submit" `Quick raft_submit_rejected_at_follower;
    Alcotest.test_case "raft: re-election on crash" `Quick raft_reelects_after_leader_crash;
    Alcotest.test_case "raft: log safety across leader change" `Quick
      raft_log_safety_across_leader_change;
    Alcotest.test_case "raft: minority cannot commit" `Quick
      raft_minority_partition_cannot_commit;
  ]
