(* Tests for the statistics toolkit: summaries, exact percentiles,
   throughput windows and series utilities. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let feq = Alcotest.float 1e-9
let fapprox = Alcotest.float 1e-6

let summary_matches_naive () =
  let values = [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) values;
  check fapprox "mean" 5.0 (Stats.Summary.mean s);
  check fapprox "stddev (sample)" (sqrt (32.0 /. 7.0)) (Stats.Summary.stddev s);
  check feq "min" 2.0 (Stats.Summary.min_value s);
  check feq "max" 9.0 (Stats.Summary.max_value s);
  check int "count" 8 (Stats.Summary.count s);
  check feq "total" 40.0 (Stats.Summary.total s)

let summary_empty () =
  let s = Stats.Summary.create () in
  check bool "mean nan" true (Float.is_nan (Stats.Summary.mean s));
  check bool "variance nan" true (Float.is_nan (Stats.Summary.variance s))

let summary_merge =
  QCheck.Test.make ~count:100 ~name:"summary merge equals concatenation"
    QCheck.(pair (list (float_range (-100.) 100.)) (list (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      QCheck.assume (xs <> [] && ys <> []);
      let a = Stats.Summary.create () and b = Stats.Summary.create () in
      List.iter (Stats.Summary.add a) xs;
      List.iter (Stats.Summary.add b) ys;
      let merged = Stats.Summary.merge a b in
      let whole = Stats.Summary.create () in
      List.iter (Stats.Summary.add whole) (xs @ ys);
      Float.abs (Stats.Summary.mean merged -. Stats.Summary.mean whole) < 1e-6
      && Stats.Summary.count merged = Stats.Summary.count whole)

let sample_set_percentiles () =
  let s = Stats.Sample_set.create () in
  List.iter (Stats.Sample_set.add s) [ 15.0; 20.0; 35.0; 40.0; 50.0 ];
  check feq "p0 = min" 15.0 (Stats.Sample_set.percentile s 0.0);
  check feq "p100 = max" 50.0 (Stats.Sample_set.percentile s 100.0);
  check feq "median" 35.0 (Stats.Sample_set.median s);
  (* numpy-style linear interpolation: p30 of this set is 21.5? rank =
     0.3*4 = 1.2 -> 20 + 0.2*(35-20) = 23. *)
  check fapprox "p30 interpolated" 23.0 (Stats.Sample_set.percentile s 30.0);
  check fapprox "mean" 32.0 (Stats.Sample_set.mean s)

let sample_set_unsorted_input () =
  let s = Stats.Sample_set.create () in
  List.iter (Stats.Sample_set.add s) [ 5.0; 1.0; 3.0 ];
  check feq "median of unsorted" 3.0 (Stats.Sample_set.median s);
  (* Adding after sorting must keep working. *)
  Stats.Sample_set.add s 0.0;
  check feq "min after re-add" 0.0 (Stats.Sample_set.percentile s 0.0)

let sample_set_bounds () =
  let s = Stats.Sample_set.create () in
  Stats.Sample_set.add s 1.0;
  Alcotest.check_raises "p > 100" (Invalid_argument "Sample_set.percentile") (fun () ->
      ignore (Stats.Sample_set.percentile s 101.0))

let sample_set_percentile_property =
  QCheck.Test.make ~count:100 ~name:"percentiles are monotone and within range"
    QCheck.(list_of_size Gen.(int_range 1 200) (float_range 0.0 1000.0))
    (fun values ->
      let s = Stats.Sample_set.create () in
      List.iter (Stats.Sample_set.add s) values;
      let ps = [ 0.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ] in
      let qs = List.map (Stats.Sample_set.percentile s) ps in
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
        | _ -> true
      in
      monotone qs && List.for_all (fun q -> q >= lo -. 1e-9 && q <= hi +. 1e-9) qs)

let throughput_windows () =
  let t = Stats.Throughput.create ~window_ms:1000.0 in
  Stats.Throughput.record t ~time_ms:100.0;
  Stats.Throughput.record t ~time_ms:900.0;
  Stats.Throughput.record t ~time_ms:1500.0;
  Stats.Throughput.record_n t ~time_ms:2500.0 3;
  check int "total" 6 (Stats.Throughput.total t);
  let series = Stats.Throughput.series t () in
  check int "three windows" 3 (List.length series);
  let tps = List.map snd series in
  check (Alcotest.list feq) "per-second rates" [ 2.0; 1.0; 3.0 ] tps

let throughput_empty_windows_included () =
  let t = Stats.Throughput.create ~window_ms:1000.0 in
  Stats.Throughput.record t ~time_ms:100.0;
  Stats.Throughput.record t ~time_ms:3_500.0;
  let series = Stats.Throughput.series t () in
  check int "four windows including empties" 4 (List.length series);
  check feq "empty window zero" 0.0 (List.nth series 1 |> snd)

let series_diff_undiff =
  QCheck.Test.make ~count:100 ~name:"undiff inverts diff"
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-50.0) 50.0))
    (fun xs ->
      let a = Array.of_list xs in
      let rebuilt = Stats.Series.undiff ~first:a.(0) (Stats.Series.diff a) in
      Array.length rebuilt = Array.length a
      && Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-6) a rebuilt)

let series_moving_average () =
  let out = Stats.Series.moving_average 2 [| 1.0; 3.0; 5.0; 7.0 |] in
  check (Alcotest.array fapprox) "trailing window" [| 1.0; 2.0; 4.0; 6.0 |] out

let series_autocorrelation_periodic () =
  let xs = Array.init 200 (fun i -> sin (float_of_int i *. Float.pi /. 10.0)) in
  let at_period = Stats.Series.autocorrelation xs 20 in
  let off_period = Stats.Series.autocorrelation xs 10 in
  check bool "high at period" true (at_period > 0.8);
  check bool "negative at half period" true (off_period < -0.5)

let series_split () =
  let xs = Array.init 10 float_of_int in
  let train, test = Stats.Series.split_at_fraction 0.8 xs in
  check int "train" 8 (Array.length train);
  check int "test" 2 (Array.length test);
  check feq "boundary" 8.0 test.(0)

let series_windows () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let pairs = Stats.Series.windows ~input:3 xs in
  check int "two pairs" 2 (Array.length pairs);
  let input, target = pairs.(1) in
  check (Alcotest.array feq) "window content" [| 2.0; 3.0; 4.0 |] input;
  check feq "target" 5.0 target

let suite =
  [
    Alcotest.test_case "summary: matches naive" `Quick summary_matches_naive;
    Alcotest.test_case "summary: empty" `Quick summary_empty;
    QCheck_alcotest.to_alcotest summary_merge;
    Alcotest.test_case "sample_set: percentiles" `Quick sample_set_percentiles;
    Alcotest.test_case "sample_set: unsorted input" `Quick sample_set_unsorted_input;
    Alcotest.test_case "sample_set: bounds" `Quick sample_set_bounds;
    QCheck_alcotest.to_alcotest sample_set_percentile_property;
    Alcotest.test_case "throughput: windows" `Quick throughput_windows;
    Alcotest.test_case "throughput: empty windows" `Quick throughput_empty_windows_included;
    QCheck_alcotest.to_alcotest series_diff_undiff;
    Alcotest.test_case "series: moving average" `Quick series_moving_average;
    Alcotest.test_case "series: autocorrelation" `Quick series_autocorrelation_periodic;
    Alcotest.test_case "series: split" `Quick series_split;
    Alcotest.test_case "series: windows" `Quick series_windows;
  ]
