(* Tests for Algorithm 2 (token reallocation): worked examples and the
   qcheck invariants listed in DESIGN.md. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

open Samya.Reallocation

let entry site tokens_left tokens_wanted = { site; tokens_left; tokens_wanted }

let grant_of grants site = List.find (fun g -> g.site = site) grants

let all_satisfiable () =
  (* Spare 600 >= wanted 300: everyone granted, leftover split equally. *)
  let entries = [ entry 0 0 300; entry 1 300 0; entry 2 300 0 ] in
  let grants = redistribute entries in
  check bool "conserves" true (conserves_tokens entries grants);
  let g0 = grant_of grants 0 in
  check bool "requester satisfied" true g0.wanted_satisfied;
  check int "requester gets wanted + share" 400 g0.new_tokens_left;
  check int "others get the split" 100 (grant_of grants 1).new_tokens_left

let rejects_smallest_first () =
  (* Spare 100 < wanted 150: the smaller request (50) is rejected first;
     the larger (100) fits. *)
  let entries = [ entry 0 0 50; entry 1 0 100; entry 2 100 0 ] in
  let grants = redistribute entries in
  check bool "conserves" true (conserves_tokens entries grants);
  check bool "small rejected" false (grant_of grants 0).wanted_satisfied;
  check bool "large satisfied" true (grant_of grants 1).wanted_satisfied;
  check int "large got it" 100 (grant_of grants 1).new_tokens_left

let rejection_cascade () =
  (* Nothing fits: everything rejected; pool split equally. *)
  let entries = [ entry 0 10 500; entry 1 10 600; entry 2 10 700 ] in
  let grants = redistribute entries in
  check bool "conserves" true (conserves_tokens entries grants);
  List.iter (fun g -> check bool "rejected" false g.wanted_satisfied) grants;
  List.iter (fun g -> check int "equal split" 10 g.new_tokens_left) grants

let zero_wanted_is_satisfied () =
  let entries = [ entry 0 100 0; entry 1 0 1000 ] in
  let grants = redistribute entries in
  check bool "no request = satisfied" true (grant_of grants 0).wanted_satisfied;
  check bool "impossible request rejected" false (grant_of grants 1).wanted_satisfied

let remainder_to_low_sites () =
  (* Leftover 7 over 3 sites: 3/2/2 with the extra token to low ids. *)
  let entries = [ entry 2 0 0; entry 0 7 0; entry 1 0 0 ] in
  let grants = redistribute entries in
  check int "site 0" 3 (grant_of grants 0).new_tokens_left;
  check int "site 1" 2 (grant_of grants 1).new_tokens_left;
  check int "site 2" 2 (grant_of grants 2).new_tokens_left

let duplicate_site_rejected () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Reallocation.redistribute: duplicate site")
    (fun () -> ignore (redistribute [ entry 0 1 0; entry 0 2 0 ]))

let negative_rejected () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Reallocation.redistribute: negative token count") (fun () ->
      ignore (redistribute [ entry 0 (-1) 0 ]))

let entries_gen =
  QCheck.Gen.(
    let entry_gen site =
      map2 (fun tl tw -> { site; tokens_left = tl; tokens_wanted = tw })
        (int_bound 2_000) (int_bound 800)
    in
    int_range 1 12 >>= fun n -> flatten_l (List.init n entry_gen))

let arbitrary_entries = QCheck.make ~print:(fun es -> string_of_int (List.length es)) entries_gen

let conservation_property =
  QCheck.Test.make ~count:500 ~name:"reallocation conserves tokens" arbitrary_entries
    (fun entries -> conserves_tokens entries (redistribute entries))

let satisfied_get_wanted_property =
  QCheck.Test.make ~count:500 ~name:"satisfied sites receive at least their wanted tokens"
    arbitrary_entries (fun entries ->
      let grants = redistribute entries in
      List.for_all
        (fun (e : entry) ->
          let g = List.find (fun g -> g.site = e.site) grants in
          (not g.wanted_satisfied) || g.new_tokens_left >= e.tokens_wanted)
        entries)

let greedy_rejection_property =
  QCheck.Test.make ~count:500
    ~name:"a rejected request is never larger than a satisfied one... (ascending rejection)"
    arbitrary_entries (fun entries ->
      let grants = redistribute entries in
      let wanted_of site =
        (List.find (fun (e : entry) -> e.site = site) entries).tokens_wanted
      in
      (* Rejection works on ascending wanted: every rejected request with
         wanted w must have all satisfied requests with wanted >= w OR be
         justified by tie-breaking on site id. *)
      let rejected =
        List.filter (fun g -> (not g.wanted_satisfied) && wanted_of g.site > 0) grants
      in
      let satisfied =
        List.filter (fun g -> g.wanted_satisfied && wanted_of g.site > 0) grants
      in
      List.for_all
        (fun r ->
          List.for_all
            (fun s ->
              wanted_of s.site > wanted_of r.site
              || (wanted_of s.site = wanted_of r.site && s.site > r.site))
            satisfied)
        rejected)

let no_rejection_when_plenty_property =
  QCheck.Test.make ~count:500 ~name:"no rejection when spare covers all wants"
    arbitrary_entries (fun entries ->
      QCheck.assume (total_wanted entries <= spare entries);
      let grants = redistribute entries in
      List.for_all (fun g -> g.wanted_satisfied) grants)

let determinism_property =
  QCheck.Test.make ~count:200 ~name:"reallocation is deterministic and order-insensitive"
    arbitrary_entries (fun entries ->
      let a = redistribute entries in
      let b = redistribute (List.rev entries) in
      a = b)

let suite =
  [
    Alcotest.test_case "all satisfiable" `Quick all_satisfiable;
    Alcotest.test_case "rejects smallest first" `Quick rejects_smallest_first;
    Alcotest.test_case "rejection cascade" `Quick rejection_cascade;
    Alcotest.test_case "zero wanted" `Quick zero_wanted_is_satisfied;
    Alcotest.test_case "remainder placement" `Quick remainder_to_low_sites;
    Alcotest.test_case "duplicate site" `Quick duplicate_site_rejected;
    Alcotest.test_case "negative counts" `Quick negative_rejected;
    QCheck_alcotest.to_alcotest conservation_property;
    QCheck_alcotest.to_alcotest satisfied_get_wanted_property;
    QCheck_alcotest.to_alcotest greedy_rejection_property;
    QCheck_alcotest.to_alcotest no_rejection_when_plenty_property;
    QCheck_alcotest.to_alcotest determinism_property;
  ]
