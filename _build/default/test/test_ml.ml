(* Tests for the ML substrate: linear algebra, scalers, metrics, and the
   three forecasters (gradient checks included for the LSTM). *)

let check = Alcotest.check
let bool = Alcotest.bool
let fapprox = Alcotest.float 1e-6

let matrix_matmul () =
  let a = Ml.Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Ml.Matrix.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Ml.Matrix.matmul a b in
  check fapprox "c00" 19.0 (Ml.Matrix.get c 0 0);
  check fapprox "c01" 22.0 (Ml.Matrix.get c 0 1);
  check fapprox "c10" 43.0 (Ml.Matrix.get c 1 0);
  check fapprox "c11" 50.0 (Ml.Matrix.get c 1 1)

let matrix_matvec () =
  let m = Ml.Matrix.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let v = [| 1.0; 0.0; -1.0 |] in
  check (Alcotest.array fapprox) "mat_vec" [| -2.0; -2.0 |] (Ml.Matrix.mat_vec m v);
  check (Alcotest.array fapprox) "vec_mat" [| -3.0; -3.0; -3.0 |]
    (Ml.Matrix.vec_mat [| 1.0; -1.0 |] m)

let matrix_transpose_identity =
  QCheck.Test.make ~count:50 ~name:"transpose is an involution"
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (rows, cols) ->
      let rng = Des.Rng.create 9L in
      let m = Ml.Matrix.random rng rows cols ~scale:5.0 in
      let tt = Ml.Matrix.transpose (Ml.Matrix.transpose m) in
      Ml.Matrix.frobenius_norm (Ml.Matrix.sub m tt) < 1e-9)

let matrix_solve () =
  (* 2x + y = 5 ; x - y = 1  -> x = 2, y = 1 *)
  let a = Ml.Matrix.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] in
  let x = Ml.Matrix.solve a [| 5.0; 1.0 |] in
  check (Alcotest.array fapprox) "solution" [| 2.0; 1.0 |] x

let matrix_solve_random =
  QCheck.Test.make ~count:50 ~name:"solve satisfies a x = b"
    QCheck.(int_range 1 8)
    (fun n ->
      let rng = Des.Rng.create (Int64.of_int (1000 + n)) in
      let a = Ml.Matrix.random rng n n ~scale:2.0 in
      (* Diagonal dominance avoids singular draws. *)
      let a = Ml.Matrix.add a (Ml.Matrix.scale 10.0 (Ml.Matrix.identity n)) in
      let b = Array.init n (fun _ -> Des.Rng.float rng 10.0) in
      let x = Ml.Matrix.solve a b in
      let reconstructed = Ml.Matrix.mat_vec a x in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) reconstructed b)

let matrix_singular () =
  let a = Ml.Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Matrix.solve: singular system") (fun () ->
      ignore (Ml.Matrix.solve a [| 1.0; 2.0 |]))

let matrix_outer () =
  let m = Ml.Matrix.outer [| 1.0; 2.0 |] [| 3.0; 4.0; 5.0 |] in
  check fapprox "outer 1,2" 10.0 (Ml.Matrix.get m 1 2);
  check Alcotest.int "rows" 2 (Ml.Matrix.rows m);
  check Alcotest.int "cols" 3 (Ml.Matrix.cols m)

let scaler_roundtrip =
  QCheck.Test.make ~count:100 ~name:"min-max scaler inverts"
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-100.0) 100.0))
    (fun xs ->
      let a = Array.of_list xs in
      let scaler = Ml.Scaler.fit_min_max a in
      Array.for_all
        (fun x -> Float.abs (Ml.Scaler.inverse scaler (Ml.Scaler.transform scaler x) -. x) < 1e-6)
        a)

let scaler_range () =
  let xs = [| 10.0; 20.0; 30.0 |] in
  let scaler = Ml.Scaler.fit_min_max ~low:0.0 ~high:1.0 xs in
  check fapprox "min -> 0" 0.0 (Ml.Scaler.transform scaler 10.0);
  check fapprox "max -> 1" 1.0 (Ml.Scaler.transform scaler 30.0);
  check fapprox "mid -> 0.5" 0.5 (Ml.Scaler.transform scaler 20.0)

let scaler_standard () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let scaler = Ml.Scaler.fit_standard xs in
  check fapprox "mean -> 0" 0.0 (Ml.Scaler.transform scaler 3.0);
  let transformed = Ml.Scaler.transform_array scaler xs in
  check bool "unit-ish spread" true (Float.abs (Stats.Series.stddev transformed -. 1.0) < 1e-6)

let metrics_known_values () =
  let actual = [| 1.0; 2.0; 3.0 |] and predicted = [| 2.0; 2.0; 1.0 |] in
  check fapprox "mae" 1.0 (Ml.Metrics.mae ~actual ~predicted);
  check fapprox "rmse" (sqrt (5.0 /. 3.0)) (Ml.Metrics.rmse ~actual ~predicted);
  Alcotest.check_raises "length mismatch" (Invalid_argument "Metrics: length mismatch")
    (fun () -> ignore (Ml.Metrics.mae ~actual ~predicted:[| 1.0 |]))

let random_walk_predicts_last () =
  let f = Ml.Random_walk.forecaster () in
  check fapprox "persistence" 42.0 (f.Ml.Forecaster.predict [| 1.0; 17.0; 42.0 |]);
  check fapprox "empty history" 0.0 (f.Ml.Forecaster.predict [||])

let arima_recovers_ar_process () =
  (* Simulate y_t = 0.7 y_{t-1} + eps on differenced data and check the
     fitted coefficient is close. *)
  let rng = Des.Rng.create 12L in
  let n = 2_000 in
  let z = Array.make n 0.0 in
  for i = 1 to n - 1 do
    z.(i) <- (0.7 *. z.(i - 1)) +. Des.Rng.gaussian rng ~mean:0.0 ~std:1.0
  done;
  (* Integrate once so ARIMA(1,1,0) sees the AR(1) after differencing. *)
  let series = Stats.Series.undiff ~first:0.0 z in
  let model = Ml.Arima.fit ~p:1 ~d:1 series in
  let coefficients = Ml.Arima.coefficients model in
  check bool "phi_1 near 0.7" true (Float.abs (coefficients.(1) -. 0.7) < 0.08)

let arima_beats_random_walk_on_trend () =
  (* A steady trend: differencing + drift should beat persistence. *)
  let rng = Des.Rng.create 13L in
  let series =
    Array.init 500 (fun i -> (2.0 *. float_of_int i) +. Des.Rng.gaussian rng ~mean:0.0 ~std:1.0)
  in
  let train, test = Stats.Series.split_at_fraction 0.8 series in
  let arima = Ml.Arima.forecaster (Ml.Arima.fit ~p:2 ~d:1 train) in
  let rw = Ml.Random_walk.forecaster () in
  let mae_arima = Ml.Forecaster.rolling_mae arima ~train ~test in
  let mae_rw = Ml.Forecaster.rolling_mae rw ~train ~test in
  check bool "arima < rw on trend" true (mae_arima < mae_rw)

let arima_too_short () =
  Alcotest.check_raises "short series" (Invalid_argument "Arima.fit: series too short")
    (fun () -> ignore (Ml.Arima.fit ~p:3 ~d:1 [| 1.0; 2.0 |]))

let lstm_gradient_check () =
  let err = Ml.Lstm.gradient_check ~hidden:5 ~window:6 ~seed:77L () in
  check bool (Printf.sprintf "max rel err %.2e < 1e-4" err) true (err < 1e-4)

let lstm_training_reduces_loss () =
  let series = Array.init 300 (fun i -> 10.0 +. (8.0 *. sin (float_of_int i /. 7.0))) in
  let config = { Ml.Lstm.default_config with epochs = 5; hidden = 8; window = 10 } in
  let model = Ml.Lstm.train ~config series in
  let losses = Ml.Lstm.training_losses model in
  check bool "loss decreased"
    true
    (losses.(Array.length losses - 1) < losses.(0) /. 2.0)

let lstm_learns_sine_better_than_rw () =
  let rng = Des.Rng.create 21L in
  let series =
    Array.init 600 (fun i ->
        50.0
        +. (30.0 *. sin (float_of_int i /. 8.0))
        +. Des.Rng.gaussian rng ~mean:0.0 ~std:2.0)
  in
  let train, test = Stats.Series.split_at_fraction 0.8 series in
  let config = { Ml.Lstm.default_config with epochs = 6; hidden = 10; window = 16 } in
  let lstm = Ml.Lstm.forecaster (Ml.Lstm.train ~config train) in
  let rw = Ml.Random_walk.forecaster () in
  let mae_lstm = Ml.Forecaster.rolling_mae lstm ~train ~test in
  let mae_rw = Ml.Forecaster.rolling_mae rw ~train ~test in
  check bool "lstm < rw on periodic data" true (mae_lstm < mae_rw)

let lstm_short_history_fallback () =
  let series = Array.init 100 (fun i -> float_of_int i) in
  let config = { Ml.Lstm.default_config with epochs = 1; hidden = 4; window = 10 } in
  let model = Ml.Lstm.train ~config series in
  check fapprox "persistence below window" 5.0 (Ml.Lstm.predict_next model [| 3.0; 5.0 |])

let forecaster_rolling_uses_history () =
  (* The i-th rolling prediction must see exactly train @ test[0..i-1]. *)
  let seen = ref [] in
  let probe =
    Ml.Forecaster.of_fn ~name:"probe" (fun history ->
        seen := Array.length history :: !seen;
        0.0)
  in
  ignore (Ml.Forecaster.rolling_eval probe ~train:[| 1.0; 2.0 |] ~test:[| 3.0; 4.0; 5.0 |]);
  check (Alcotest.list Alcotest.int) "history lengths" [ 2; 3; 4 ] (List.rev !seen)

let suite =
  [
    Alcotest.test_case "matrix: matmul" `Quick matrix_matmul;
    Alcotest.test_case "matrix: mat_vec/vec_mat" `Quick matrix_matvec;
    QCheck_alcotest.to_alcotest matrix_transpose_identity;
    Alcotest.test_case "matrix: solve known system" `Quick matrix_solve;
    QCheck_alcotest.to_alcotest matrix_solve_random;
    Alcotest.test_case "matrix: singular detection" `Quick matrix_singular;
    Alcotest.test_case "matrix: outer product" `Quick matrix_outer;
    QCheck_alcotest.to_alcotest scaler_roundtrip;
    Alcotest.test_case "scaler: target range" `Quick scaler_range;
    Alcotest.test_case "scaler: standard" `Quick scaler_standard;
    Alcotest.test_case "metrics: known values" `Quick metrics_known_values;
    Alcotest.test_case "random walk: persistence" `Quick random_walk_predicts_last;
    Alcotest.test_case "arima: recovers AR coefficient" `Quick arima_recovers_ar_process;
    Alcotest.test_case "arima: beats RW on trend" `Quick arima_beats_random_walk_on_trend;
    Alcotest.test_case "arima: rejects short series" `Quick arima_too_short;
    Alcotest.test_case "lstm: analytic = numeric gradients" `Quick lstm_gradient_check;
    Alcotest.test_case "lstm: training reduces loss" `Quick lstm_training_reduces_loss;
    Alcotest.test_case "lstm: beats RW on periodic data" `Quick lstm_learns_sine_better_than_rw;
    Alcotest.test_case "lstm: persistence fallback" `Quick lstm_short_history_fallback;
    Alcotest.test_case "forecaster: rolling history" `Quick forecaster_rolling_uses_history;
  ]
