(* Tests for the simulated stable storage. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let wal_append_get () =
  let wal = Storage.Wal.create () in
  check int "index 0" 0 (Storage.Wal.append wal "a");
  check int "index 1" 1 (Storage.Wal.append wal "b");
  check Alcotest.string "get 0" "a" (Storage.Wal.get wal 0);
  check Alcotest.string "get 1" "b" (Storage.Wal.get wal 1);
  check int "length" 2 (Storage.Wal.length wal);
  check (Alcotest.option Alcotest.string) "last" (Some "b") (Storage.Wal.last wal)

let wal_out_of_range () =
  let wal = Storage.Wal.create () in
  ignore (Storage.Wal.append wal 1);
  Alcotest.check_raises "negative" (Invalid_argument "Wal.get: index out of range")
    (fun () -> ignore (Storage.Wal.get wal (-1)));
  Alcotest.check_raises "beyond" (Invalid_argument "Wal.get: index out of range")
    (fun () -> ignore (Storage.Wal.get wal 1))

let wal_truncate () =
  let wal = Storage.Wal.create () in
  List.iter (fun v -> ignore (Storage.Wal.append wal v)) [ 1; 2; 3; 4; 5 ];
  Storage.Wal.truncate_from wal 2;
  check int "truncated" 2 (Storage.Wal.length wal);
  check (Alcotest.list int) "remaining" [ 1; 2 ] (Storage.Wal.to_list wal);
  (* Appending after truncation reuses indices. *)
  check int "reused index" 2 (Storage.Wal.append wal 9);
  Storage.Wal.truncate_from wal 10;
  check int "truncate beyond end is no-op" 3 (Storage.Wal.length wal)

let wal_fold_iter () =
  let wal = Storage.Wal.create () in
  List.iter (fun v -> ignore (Storage.Wal.append wal v)) [ 1; 2; 3 ];
  check int "fold sums" 6 (Storage.Wal.fold wal ~init:0 ~f:( + ));
  let seen = ref [] in
  Storage.Wal.iter wal (fun v -> seen := v :: !seen);
  check (Alcotest.list int) "iter order" [ 1; 2; 3 ] (List.rev !seen)

let wal_growth =
  QCheck.Test.make ~count:50 ~name:"wal preserves all appends in order"
    QCheck.(list small_int)
    (fun values ->
      let wal = Storage.Wal.create () in
      List.iter (fun v -> ignore (Storage.Wal.append wal v)) values;
      Storage.Wal.to_list wal = values)

let store_put_get () =
  let store = Storage.Stable_store.create () in
  Storage.Stable_store.put store ~key:"x" 1;
  Storage.Stable_store.put store ~key:"y" 2;
  check (Alcotest.option int) "get x" (Some 1) (Storage.Stable_store.get store ~key:"x");
  check int "get_exn" 2 (Storage.Stable_store.get_exn store ~key:"y");
  Storage.Stable_store.put store ~key:"x" 10;
  check (Alcotest.option int) "overwrite" (Some 10) (Storage.Stable_store.get store ~key:"x");
  check int "write count" 3 (Storage.Stable_store.write_count store)

let store_remove_mem () =
  let store = Storage.Stable_store.create () in
  Storage.Stable_store.put store ~key:"k" ();
  check bool "mem" true (Storage.Stable_store.mem store ~key:"k");
  Storage.Stable_store.remove store ~key:"k";
  check bool "removed" false (Storage.Stable_store.mem store ~key:"k");
  Alcotest.check_raises "get_exn missing" Not_found (fun () ->
      ignore (Storage.Stable_store.get_exn store ~key:"k"))

let suite =
  [
    Alcotest.test_case "wal: append/get" `Quick wal_append_get;
    Alcotest.test_case "wal: bounds" `Quick wal_out_of_range;
    Alcotest.test_case "wal: truncate" `Quick wal_truncate;
    Alcotest.test_case "wal: fold/iter" `Quick wal_fold_iter;
    QCheck_alcotest.to_alcotest wal_growth;
    Alcotest.test_case "store: put/get" `Quick store_put_get;
    Alcotest.test_case "store: remove/mem" `Quick store_remove_mem;
  ]
