(* Tests for the simulated geo network: latency model, delivery, loss,
   crashes and partitions. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let five () = Array.of_list Geonet.Region.default_five

let make ?drop ?jitter () =
  let engine = Des.Engine.create ~seed:5L () in
  let network =
    Geonet.Network.create engine ~regions:(five ()) ?drop_probability:drop
      ?jitter_fraction:jitter ()
  in
  (engine, network)

let region_symmetry () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check (Alcotest.float 1e-9) "rtt symmetric" (Geonet.Region.rtt_ms a b)
            (Geonet.Region.rtt_ms b a))
        Geonet.Region.all)
    Geonet.Region.all

let region_intra_is_fast () =
  List.iter
    (fun r -> check bool "intra-region ~1ms" true (Geonet.Region.rtt_ms r r <= 2.0))
    Geonet.Region.all

let region_of_string_roundtrip () =
  List.iter
    (fun r ->
      match Geonet.Region.of_string (Geonet.Region.name r) with
      | Some r' -> check bool "roundtrip" true (r = r')
      | None -> Alcotest.fail "of_string failed")
    Geonet.Region.all;
  check bool "unknown rejected" true (Geonet.Region.of_string "mars-east1" = None)

let delivery_with_latency () =
  let engine, network = make ~jitter:0.0 () in
  let received = ref None in
  Geonet.Network.register network ~node:1 (fun envelope ->
      received := Some (envelope.Geonet.Network.src, envelope.Geonet.Network.payload,
                        Des.Engine.now engine));
  Geonet.Network.send network ~src:0 ~dst:1 "hello";
  Des.Engine.run engine;
  match !received with
  | Some (src, payload, at) ->
      check int "src" 0 src;
      check Alcotest.string "payload" "hello" payload;
      let expected = Geonet.Network.latency_ms network ~src:0 ~dst:1 in
      check (Alcotest.float 1e-6) "arrives after one-way latency" expected at
  | None -> Alcotest.fail "not delivered"

let broadcast_reaches_everyone () =
  let engine, network = make () in
  let got = Array.make 5 false in
  for node = 0 to 4 do
    Geonet.Network.register network ~node (fun _ -> got.(node) <- true)
  done;
  Geonet.Network.broadcast network ~src:2 ();
  Des.Engine.run engine;
  check (Alcotest.array bool) "all but source" [| true; true; false; true; true |] got

let drops_lose_messages () =
  let engine, network = make ~drop:1.0 () in
  let received = ref 0 in
  Geonet.Network.register network ~node:1 (fun _ -> incr received);
  for _ = 1 to 50 do
    Geonet.Network.send network ~src:0 ~dst:1 ()
  done;
  Des.Engine.run engine;
  check int "all dropped" 0 !received;
  check int "accounted as dropped" 50 (Geonet.Network.stats_dropped network)

let drop_rate_statistical () =
  let engine, network = make ~drop:0.3 () in
  let received = ref 0 in
  Geonet.Network.register network ~node:1 (fun _ -> incr received);
  for _ = 1 to 5_000 do
    Geonet.Network.send network ~src:0 ~dst:1 ()
  done;
  Des.Engine.run engine;
  let rate = 1.0 -. (float_of_int !received /. 5_000.0) in
  check bool "loss near 30%" true (Float.abs (rate -. 0.3) < 0.03)

let crashed_node_receives_nothing () =
  let engine, network = make () in
  let received = ref 0 in
  Geonet.Network.register network ~node:1 (fun _ -> incr received);
  Geonet.Network.crash network 1;
  Geonet.Network.send network ~src:0 ~dst:1 ();
  Des.Engine.run engine;
  check int "crashed target" 0 !received;
  Geonet.Network.recover network 1;
  Geonet.Network.send network ~src:0 ~dst:1 ();
  Des.Engine.run engine;
  check int "delivered after recovery" 1 !received

let crashed_node_sends_nothing () =
  let engine, network = make () in
  let received = ref 0 in
  Geonet.Network.register network ~node:1 (fun _ -> incr received);
  Geonet.Network.crash network 0;
  Geonet.Network.send network ~src:0 ~dst:1 ();
  Des.Engine.run engine;
  check int "crashed source" 0 !received

let partition_blocks_cross_traffic () =
  let engine, network = make () in
  let received = Array.make 5 0 in
  for node = 0 to 4 do
    Geonet.Network.register network ~node (fun _ -> received.(node) <- received.(node) + 1)
  done;
  Geonet.Network.set_partition network [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  Geonet.Network.send network ~src:0 ~dst:1 ();
  Geonet.Network.send network ~src:0 ~dst:3 ();
  Geonet.Network.send network ~src:3 ~dst:4 ();
  Geonet.Network.send network ~src:4 ~dst:2 ();
  Des.Engine.run engine;
  check int "same side A" 1 received.(1);
  check int "cross blocked" 0 received.(3);
  check int "same side B" 1 received.(4);
  check int "cross blocked reverse" 0 received.(2);
  check bool "reachable within" true (Geonet.Network.reachable network 0 2);
  check bool "unreachable across" false (Geonet.Network.reachable network 0 4)

let heal_restores_traffic () =
  let engine, network = make () in
  let received = ref 0 in
  Geonet.Network.register network ~node:3 (fun _ -> incr received);
  Geonet.Network.set_partition network [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  Geonet.Network.send network ~src:0 ~dst:3 ();
  Des.Engine.run engine;
  check int "blocked" 0 !received;
  Geonet.Network.clear_partition network;
  Geonet.Network.send network ~src:0 ~dst:3 ();
  Des.Engine.run engine;
  check int "healed" 1 !received

let partition_checked_at_delivery () =
  (* A message in flight when the partition heals still gets through:
     delay and disconnection are indistinguishable in an asynchronous
     network. *)
  let engine, network = make () in
  let received = ref 0 in
  Geonet.Network.register network ~node:3 (fun _ -> incr received);
  Geonet.Network.send network ~src:0 ~dst:3 ();
  (* Heal before the in-flight message lands. *)
  Geonet.Network.set_partition network [ [ 0 ]; [ 3 ] ];
  Des.Engine.schedule engine ~delay_ms:1.0 (fun () -> Geonet.Network.clear_partition network);
  Des.Engine.run engine;
  check int "late heal lets it through" 1 !received

let unlisted_nodes_are_isolated () =
  let engine, network = make () in
  let received = ref 0 in
  Geonet.Network.register network ~node:4 (fun _ -> incr received);
  Geonet.Network.set_partition network [ [ 0; 1 ] ];
  Geonet.Network.send network ~src:0 ~dst:4 ();
  Geonet.Network.send network ~src:2 ~dst:4 ();
  Des.Engine.run engine;
  check int "singleton groups" 0 !received

let suite =
  [
    Alcotest.test_case "region: rtt symmetric" `Quick region_symmetry;
    Alcotest.test_case "region: intra fast" `Quick region_intra_is_fast;
    Alcotest.test_case "region: name roundtrip" `Quick region_of_string_roundtrip;
    Alcotest.test_case "network: delivery with latency" `Quick delivery_with_latency;
    Alcotest.test_case "network: broadcast" `Quick broadcast_reaches_everyone;
    Alcotest.test_case "network: full loss" `Quick drops_lose_messages;
    Alcotest.test_case "network: statistical loss" `Quick drop_rate_statistical;
    Alcotest.test_case "network: crash target" `Quick crashed_node_receives_nothing;
    Alcotest.test_case "network: crash source" `Quick crashed_node_sends_nothing;
    Alcotest.test_case "network: partition" `Quick partition_blocks_cross_traffic;
    Alcotest.test_case "network: heal" `Quick heal_restores_traffic;
    Alcotest.test_case "network: partition at delivery time" `Quick partition_checked_at_delivery;
    Alcotest.test_case "network: unlisted nodes isolated" `Quick unlisted_nodes_are_isolated;
  ]
