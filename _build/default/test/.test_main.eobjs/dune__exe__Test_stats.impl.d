test/test_stats.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Stats
