test/test_des.ml: Alcotest Array Des Float List QCheck QCheck_alcotest
