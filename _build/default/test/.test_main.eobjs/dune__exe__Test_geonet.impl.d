test/test_geonet.ml: Alcotest Array Des Float Geonet List
