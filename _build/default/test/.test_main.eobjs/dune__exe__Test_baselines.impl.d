test/test_baselines.ml: Alcotest Baselines Des Geonet List Printf Samya
