test/test_consensus.ml: Alcotest Array Consensus Des Geonet Hashtbl List
