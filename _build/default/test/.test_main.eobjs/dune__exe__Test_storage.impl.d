test/test_storage.ml: Alcotest List QCheck QCheck_alcotest Storage
