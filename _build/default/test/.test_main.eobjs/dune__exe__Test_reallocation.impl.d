test/test_reallocation.ml: Alcotest List QCheck QCheck_alcotest Samya
