test/test_trace.ml: Alcotest Array Des Float Hashtbl Int64 Option Printf QCheck QCheck_alcotest Stats Trace
