test/test_samya.ml: Alcotest Array Consensus Des Geonet Int64 List Printf QCheck QCheck_alcotest Samya
