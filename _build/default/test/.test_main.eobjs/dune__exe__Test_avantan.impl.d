test/test_avantan.ml: Alcotest Consensus Des List Samya
