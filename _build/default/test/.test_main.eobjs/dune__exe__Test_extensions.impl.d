test/test_extensions.ml: Alcotest Array Baselines Des Float Geonet Hierarchy List Ml Printf QCheck QCheck_alcotest Samya Stats
