test/test_harness.ml: Alcotest Array Buffer Float Format Harness List Samya Stats String Trace
