test/test_ml.ml: Alcotest Array Des Float Gen Int64 List Ml Printf QCheck QCheck_alcotest Stats
