type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t entry =
  let capacity = max 16 (2 * Array.length t.data) in
  let data = Array.make capacity entry in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = if left < t.size && less t.data.(left) t.data.(i) then left else i in
  let smallest =
    if right < t.size && less t.data.(right) t.data.(smallest) then right else smallest
  in
  if smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(smallest);
    t.data.(smallest) <- tmp;
    sift_down t smallest
  end

let push t ~priority value =
  let entry = { key = priority; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.data then grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.key, top.value)
  end

let peek t = if t.size = 0 then None else Some (t.data.(0).key, t.data.(0).value)

let clear t =
  t.data <- [||];
  t.size <- 0;
  t.next_seq <- 0
