type event = { fire : unit -> unit; mutable cancelled : bool }

type t = {
  mutable clock : float;
  queue : event Pheap.t;
  root_rng : Rng.t;
}

type timer = event

let create ?(seed = 42L) () =
  { clock = 0.0; queue = Pheap.create (); root_rng = Rng.create seed }

let now t = t.clock

let rng t = t.root_rng

let schedule_at t ~time_ms f =
  let time_ms = Float.max time_ms t.clock in
  Pheap.push t.queue ~priority:time_ms { fire = f; cancelled = false }

let schedule t ~delay_ms f = schedule_at t ~time_ms:(t.clock +. Float.max 0.0 delay_ms) f

let timer t ~delay_ms f =
  let event = { fire = f; cancelled = false } in
  Pheap.push t.queue ~priority:(t.clock +. Float.max 0.0 delay_ms) event;
  event

let cancel event = event.cancelled <- true

let timer_pending event = not event.cancelled

let pending t = Pheap.length t.queue

let step t =
  match Pheap.pop t.queue with
  | None -> false
  | Some (time, event) ->
      t.clock <- Float.max t.clock time;
      if not event.cancelled then event.fire ();
      true

let run ?until_ms t =
  match until_ms with
  | None -> while step t do () done
  | Some limit ->
      let rec loop () =
        match Pheap.peek t.queue with
        | Some (time, _) when time <= limit ->
            ignore (step t);
            loop ()
        | Some _ | None -> t.clock <- Float.max t.clock limit
      in
      loop ()

let run_for t d = run t ~until_ms:(t.clock +. d)
