lib/des/pheap.mli:
