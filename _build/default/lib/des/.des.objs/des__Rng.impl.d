lib/des/rng.ml: Array Float Int64
