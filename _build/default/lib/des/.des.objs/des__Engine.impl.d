lib/des/engine.ml: Float Pheap Rng
