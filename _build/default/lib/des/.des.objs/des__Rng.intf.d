lib/des/rng.mli:
