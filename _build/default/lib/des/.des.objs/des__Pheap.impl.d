lib/des/pheap.ml: Array
