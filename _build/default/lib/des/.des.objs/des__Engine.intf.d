lib/des/engine.mli: Rng
