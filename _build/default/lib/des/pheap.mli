(** Array-backed binary min-heap keyed by [(priority, sequence)].

    The event queue of the simulation engine. Ties on priority are broken by
    insertion order (the sequence number), which gives the engine FIFO
    semantics for simultaneous events — essential for deterministic replay. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit
(** [push t ~priority v] inserts [v]; cost O(log n). *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the entry with the smallest [(priority, sequence)]
    key, or [None] when empty. *)

val peek : 'a t -> (float * 'a) option
(** Like {!pop} without removal. *)

val clear : 'a t -> unit
