(** Experiments `ext1` / `ext2`: the extended technical report's sweeps
    (§5.9).

    ext1 varies the global maximum M_e from the trace's mean demand level
    to its maximum. Shape: Avantan's committed throughput grows roughly 5x
    from the smallest to the largest limit — a tight limit rejects most
    contended acquires, a loose one lets the dis-aggregated pool absorb
    every peak.

    ext2 varies the request arrival interval from the compressed 5 s back
    to the original 300 s. Shape: the throughput advantage over
    MultiPaxSys shrinks as arrivals slow, but remains (the paper reports
    +43% at the original rate: bursts still overwhelm a serializing
    leader). *)

val run_max_limit : Lab.context -> quick:bool -> Format.formatter -> unit

val run_arrival_rate : Lab.context -> quick:bool -> Format.formatter -> unit
