(** Experiments `fig3e` / `fig3f`: the mechanism ablations (§5.5, §5.6).

    Fig. 3e asks whether redistribution is worth its cost: Samya (both
    variants) against a no-constraint upper bound (every request succeeds
    locally) and a no-redistribution lower bound (exhausted sites simply
    reject). The paper's shape: Samya sits within ~4% of the no-constraint
    optimum and ~14% above no-redistribution.

    Fig. 3f measures the value of prediction: both Avantan variants with
    the Prediction Module on and off (reactive-only). The paper reports
    ~1.4x higher throughput with predictions. Client requests time out
    after 1 s, as reactive-only operation loses its commits to stalls, not
    to rejects alone. *)

val run_constraint_ablation : Lab.context -> quick:bool -> Format.formatter -> unit

val run_prediction_ablation : Lab.context -> quick:bool -> Format.formatter -> unit
