(** Experiment `fig3g`: scalability from 5 to 20 sites (§5.7).

    Additional sites (with their own clients) are spawned in the same five
    regions. Each added client carries full request intensity but a
    proportionally smaller net-usage footprint, so the aggregate stays
    comparable to the fixed limit M_e — more sites means more concurrent
    local serving of the same pool, which is the paper's point. The shape
    to reproduce: throughput grows roughly linearly with the number of
    sites while average latency stays flat, for both Avantan variants. Clients
    run closed-loop worker pools, as in Fig. 3h. *)

val run : Lab.context -> quick:bool -> Format.formatter -> unit
