(** Experiments `fig3c` / `fig3d`: crash failures and network partitions
    (§5.4).

    Fig. 3c: starting from five regions, one region (server and its
    clients) crashes every fifth of the run. Shapes to reproduce:
    MultiPaxSys's throughput drops to zero once three servers are down
    (majority lost); both Samya variants keep serving locally, and
    Avantan[*] overtakes Avantan[(n+1)/2] once no majority remains, since
    it can still redistribute within the surviving minority.

    Fig. 3d: a 3–2 partition for the rest of the run. MultiPaxSys serves
    only clients on the leader's side; Avantan[(n+1)/2] redistributes only
    in the majority partition, Avantan[*] in both. *)

val run_crash : Lab.context -> quick:bool -> Format.formatter -> unit

val run_partition : Lab.context -> quick:bool -> Format.formatter -> unit
