(** Index of every reproducible table and figure, keyed by the experiment
    ids used in DESIGN.md, the bench harness and the CLI. *)

type experiment = {
  id : string;
  paper_artifact : string;  (** e.g. "Table 2b" *)
  description : string;
  run : Lab.context -> quick:bool -> Format.formatter -> unit;
}

val all : experiment list

val find : string -> experiment option

val ids : unit -> string list

val run_by_id : Lab.context -> quick:bool -> Format.formatter -> string -> (unit, string) result
