let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let table fmt ~title ~header ~rows =
  let all = header :: rows in
  let columns = List.length header in
  let widths =
    List.init columns (fun c ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all)
  in
  let print_row row =
    let cells = List.map2 (fun w cell -> pad w cell) widths row in
    Format.fprintf fmt "  %s@." (String.concat "  " cells)
  in
  let rule = String.make (List.fold_left ( + ) (2 * (columns - 1)) widths + 2) '-' in
  Format.fprintf fmt "@.%s@.%s@." title rule;
  print_row header;
  Format.fprintf fmt "%s@." rule;
  List.iter print_row rows;
  Format.fprintf fmt "%s@." rule

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x

let ms x =
  if Float.abs x >= 100.0 then Printf.sprintf "%.1f ms" x else Printf.sprintf "%.2f ms" x

let minutes_of_ms x = x /. 60_000.0

let series fmt ~title ~unit_label labelled =
  match labelled with
  | [] -> ()
  | (_, first) :: _ ->
      let header = "t (min)" :: List.map fst labelled in
      let rows =
        List.mapi
          (fun i (x, _) ->
            f1 (minutes_of_ms x)
            :: List.map
                 (fun (_, points) ->
                   match List.nth_opt points i with
                   | Some (_, y) -> f1 y
                   | None -> "-")
                 labelled)
          first
      in
      table fmt ~title:(Printf.sprintf "%s  [%s]" title unit_label) ~header ~rows

let kv fmt pairs =
  let width = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs in
  List.iter (fun (k, v) -> Format.fprintf fmt "  %s : %s@." (pad width k) v) pairs
