(** Experiment `fig3h`: read-write workload mix (§5.8).

    Closed-loop clients (a fixed worker pool per region) issue a stream in
    which each request is a global-snapshot read with probability [r]. In
    Samya a read fans out to every site and aggregates TokensLeft (a slow,
    WAN-bound operation); in MultiPaxSys a read executes at the leader
    without replication (fast). Writes are the opposite: local in Samya,
    serialized two-round replication in MultiPaxSys.

    Shape to reproduce: Samya's average throughput falls as reads grow,
    MultiPaxSys's rises, and the curves cross somewhere past a read ratio
    of ~50% (the paper measures ~65%: MultiPaxSys's single leader also
    serializes its cheap reads' arrival legs). *)

val run : Lab.context -> quick:bool -> Format.formatter -> unit
