let run_fig3a ctx fmt =
  let trace = Lab.base_trace ctx in
  let demand = Trace.Azure_trace.demand trace in
  (* Show three days at hourly resolution: enough to see the daily shape
     and the weekday effect. *)
  let per_hour = 12 in
  let hours = min 72 (Array.length demand / per_hour) in
  let rows =
    List.init hours (fun h ->
        let bucket = Array.sub demand (h * per_hour) per_hour in
        [
          string_of_int h;
          Report.f1 (Stats.Series.mean bucket);
          Report.f1 (Array.fold_left Float.max neg_infinity bucket);
        ])
  in
  Report.table fmt
    ~title:"Fig 3a: VM demand (tokens per 5-min interval), first 3 days, hourly buckets"
    ~header:[ "hour"; "mean"; "peak" ] ~rows;
  let usage = Trace.Azure_trace.net_usage trace in
  Report.kv fmt
    [
      ("intervals", string_of_int (Array.length demand));
      ("mean demand", Report.f1 (Stats.Series.mean demand));
      ("max demand", Report.f1 (Array.fold_left Float.max neg_infinity demand));
      ( "lag-1day autocorrelation",
        Report.f2 (Stats.Series.autocorrelation demand (24 * 12)) );
      ( "tracked usage range",
        Printf.sprintf "%.0f .. %.0f tokens"
          (Array.fold_left Float.min infinity usage)
          (Array.fold_left Float.max neg_infinity usage) );
    ]

let run_table2a ctx fmt =
  let results = Lab.table2a ctx in
  let paper = [ ("Random Walk", 1212.19); ("ARIMA", 609.13); ("LSTM", 259.21) ] in
  let rows =
    List.map
      (fun (name, mae) ->
        let reported = List.assoc name paper in
        [ name; Report.f2 mae; Report.f2 reported ])
      results
  in
  Report.table fmt
    ~title:"Table 2a: MAE of demand prediction (tokens) — measured vs paper"
    ~header:[ "model"; "MAE (ours)"; "MAE (paper)" ]
    ~rows;
  let mae name = List.assoc name results in
  Report.kv fmt
    [
      ( "ordering LSTM < ARIMA < RW",
        if mae "LSTM" < mae "ARIMA" && mae "ARIMA" < mae "Random Walk" then "REPRODUCED"
        else "NOT reproduced" );
    ]
