(** Experiment `table2a` / `fig3a`: resource-demand data and its prediction
    (§5.1, Table 2a, Fig. 3a).

    Prints a downsampled view of the demand curve (Fig. 3a) and the
    mean-absolute-error of random walk, ARIMA and LSTM forecasters on the
    80/20 split of the demand series (Table 2a). The paper reports
    RW 1212.19, ARIMA 609.13, LSTM 259.21 on the real Azure trace; the
    reproduced shape to check is the strict ordering LSTM < ARIMA < RW. *)

val run_fig3a : Lab.context -> Format.formatter -> unit

val run_table2a : Lab.context -> Format.formatter -> unit
