lib/harness/exp_common.ml: Array Driver Geonet Option Samya Stats Systems
