lib/harness/exp_scalability.mli: Format Lab
