lib/harness/exp_prediction.mli: Format Lab
