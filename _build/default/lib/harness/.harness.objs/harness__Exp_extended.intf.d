lib/harness/exp_extended.mli: Format Lab
