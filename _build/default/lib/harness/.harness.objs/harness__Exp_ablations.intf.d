lib/harness/exp_ablations.mli: Format Lab
