lib/harness/exp_headline.mli: Format Lab
