lib/harness/exp_readmix.ml: Driver Exp_common Format Lab List Report Samya Systems
