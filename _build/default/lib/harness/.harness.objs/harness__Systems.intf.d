lib/harness/systems.mli: Des Geonet Ml Samya
