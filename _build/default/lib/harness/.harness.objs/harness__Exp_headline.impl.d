lib/harness/exp_headline.ml: Array Driver Exp_common Format Lab List Printf Report Samya Systems
