lib/harness/exp_common.mli: Driver Geonet Samya Systems Trace
