lib/harness/exp_ablations.ml: Driver Exp_common Format Lab List Printf Report Samya Systems
