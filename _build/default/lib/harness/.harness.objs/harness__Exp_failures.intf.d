lib/harness/exp_failures.mli: Format Lab
