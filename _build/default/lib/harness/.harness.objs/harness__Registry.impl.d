lib/harness/registry.ml: Exp_ablations Exp_extended Exp_failures Exp_headline Exp_prediction Exp_readmix Exp_scalability Format Lab List Printf String
