lib/harness/lab.mli: Geonet Ml Trace
