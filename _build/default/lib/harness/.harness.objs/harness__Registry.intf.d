lib/harness/registry.mli: Format Lab
