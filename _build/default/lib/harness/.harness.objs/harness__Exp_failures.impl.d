lib/harness/exp_failures.ml: Driver Exp_common Format Lab List Printf Report Samya Systems
