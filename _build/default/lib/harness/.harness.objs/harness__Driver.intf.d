lib/harness/driver.mli: Geonet Stats Systems Trace
