lib/harness/exp_scalability.ml: Array Driver Exp_common Format Lab List Printf Report Samya Stats Systems
