lib/harness/driver.ml: Array Des Float Geonet List Queue Samya Stats Systems Trace
