lib/harness/report.ml: Float Format List Printf String
