lib/harness/lab.ml: Array Des Float Int64 List Ml Option Stats Trace
