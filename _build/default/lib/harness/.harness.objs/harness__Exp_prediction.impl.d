lib/harness/exp_prediction.ml: Array Float Lab List Printf Report Stats Trace
