lib/harness/exp_readmix.mli: Format Lab
