lib/harness/report.mli: Format
