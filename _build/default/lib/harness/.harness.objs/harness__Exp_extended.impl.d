lib/harness/exp_extended.ml: Driver Exp_common Float Format Lab List Report Samya Stats Systems
