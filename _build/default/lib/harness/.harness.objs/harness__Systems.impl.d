lib/harness/systems.ml: Array Baselines Des Geonet List Option Samya
