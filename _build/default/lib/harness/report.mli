(** Plain-text tables and series for the experiment output — formatted to
    read side by side with the paper's tables and figures. *)

val table :
  Format.formatter -> title:string -> header:string list -> rows:string list list -> unit
(** Column-aligned table with a title rule. *)

val series :
  Format.formatter ->
  title:string ->
  unit_label:string ->
  (string * (float * float) list) list ->
  unit
(** Multi-line time series, one column per labelled series, rows indexed by
    the first series' x values (minutes). *)

val kv : Format.formatter -> (string * string) list -> unit
(** Aligned "key: value" lines. *)

val f1 : float -> string
(** One decimal place. *)

val f2 : float -> string

val ms : float -> string
(** Milliseconds with adaptive precision, e.g. "1.40 ms". *)

val minutes_of_ms : float -> float
