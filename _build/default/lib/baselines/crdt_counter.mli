(** An eventually-consistent replicated counter (CRDT), for the §2
    comparison.

    A PN-counter: each replica owns an increment vector and a decrement
    vector, merged by pointwise max during periodic gossip — the standard
    state-based CRDT. Replicas serve acquires and releases locally with no
    coordination at all and converge to the same total.

    The point of the baseline is what it {e cannot} do: enforcing the
    global constraint requires checking [total_acquired <= maximum]
    against a view that is stale by up to a gossip round, so concurrent
    acquires near the limit overshoot it. CRDTs give convergence, not
    invariants — which is exactly the gap Samya fills (the paper's CRDT
    discussion in §2). *)

type t

val create :
  ?seed:int64 ->
  ?regions:Geonet.Region.t array ->
  ?gossip_interval_ms:float ->
  unit ->
  t
(** Default: the paper's five regions, 1 s gossip. *)

val engine : t -> Des.Engine.t

val init_entity : t -> entity:Samya.Types.entity -> maximum:int -> unit

val submit :
  t ->
  region:Geonet.Region.t ->
  Samya.Types.request ->
  reply:(Samya.Types.response -> unit) ->
  unit
(** Acquires are granted iff the replica's {e local view} of the total
    stays within the maximum — the best a coordination-free counter can
    check. *)

val total_acquired : t -> entity:Samya.Types.entity -> int
(** The converged total (sum over replicas' own counts) — ground truth,
    which can exceed the maximum. *)

val overshoot : t -> entity:Samya.Types.entity -> int
(** [max 0 (total_acquired - maximum)]: how far Equation 1 was violated. *)
