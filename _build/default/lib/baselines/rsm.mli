(** The deterministic entity-counter state machine shared by the replicated
    baselines (MultiPaxSys and the CockroachDB-like system).

    Log entries are either no-op {e intents} (the locking round of a
    read-write transaction) or {e commits} carrying a token delta. A commit
    that would take an entity's usage outside [\[0, maximum\]] applies as a
    no-op, and the per-entity outcome of the last applied commit is
    recorded so a leader can answer its client with the decision the state
    machine actually took. *)

type command = {
  c_entity : Samya.Types.entity;
  delta : int;  (** +n acquire, -m release; 0 for intents *)
  intent : bool;
}

type state

val create_state : unit -> state

val set_maximum : state -> entity:Samya.Types.entity -> int -> unit

val apply : state -> command -> unit

val acquired : state -> entity:Samya.Types.entity -> int

val maximum : state -> entity:Samya.Types.entity -> int
(** [max_int] when unset. *)

val last_outcome : state -> entity:Samya.Types.entity -> bool
(** Whether the most recent commit entry for [entity] was accepted;
    [false] before any commit. *)

val available : state -> entity:Samya.Types.entity -> int
(** [maximum - acquired] (0 when no maximum configured). *)
