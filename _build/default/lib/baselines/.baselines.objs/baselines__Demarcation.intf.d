lib/baselines/demarcation.mli: Des Geonet Samya
