lib/baselines/rsm.mli: Samya
