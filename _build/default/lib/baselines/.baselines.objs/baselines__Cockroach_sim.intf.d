lib/baselines/cockroach_sim.mli: Des Geonet Samya
