lib/baselines/crdt_counter.ml: Array Des Geonet Hashtbl Samya
