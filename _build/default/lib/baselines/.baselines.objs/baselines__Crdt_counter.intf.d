lib/baselines/crdt_counter.mli: Des Geonet Samya
