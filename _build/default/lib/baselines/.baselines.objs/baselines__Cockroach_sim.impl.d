lib/baselines/cockroach_sim.ml: Array Consensus Des Geonet Hashtbl List Printf Queue Rsm Samya
