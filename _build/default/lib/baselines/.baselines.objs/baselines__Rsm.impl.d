lib/baselines/rsm.ml: Hashtbl Option Samya
