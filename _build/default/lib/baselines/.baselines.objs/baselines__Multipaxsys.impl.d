lib/baselines/multipaxsys.ml: Array Consensus Des Geonet Hashtbl List Printf Queue Rsm Samya
