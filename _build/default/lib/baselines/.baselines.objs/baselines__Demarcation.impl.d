lib/baselines/demarcation.ml: Array Des Float Geonet Hashtbl List Printf Queue Samya
