lib/baselines/multipaxsys.mli: Des Geonet Samya
