type command = {
  c_entity : Samya.Types.entity;
  delta : int;
  intent : bool;
}

type state = {
  acquired_tbl : (Samya.Types.entity, int) Hashtbl.t;
  maxima : (Samya.Types.entity, int) Hashtbl.t;
  outcomes : (Samya.Types.entity, bool) Hashtbl.t;
}

let create_state () =
  { acquired_tbl = Hashtbl.create 4; maxima = Hashtbl.create 4; outcomes = Hashtbl.create 4 }

let set_maximum state ~entity maximum = Hashtbl.replace state.maxima entity maximum

let acquired state ~entity = Option.value (Hashtbl.find_opt state.acquired_tbl entity) ~default:0

let maximum state ~entity = Option.value (Hashtbl.find_opt state.maxima entity) ~default:max_int

let last_outcome state ~entity =
  Option.value (Hashtbl.find_opt state.outcomes entity) ~default:false

let apply state command =
  if not command.intent then begin
    let current = acquired state ~entity:command.c_entity in
    let limit = maximum state ~entity:command.c_entity in
    let next = current + command.delta in
    let ok = next >= 0 && next <= limit in
    if ok then Hashtbl.replace state.acquired_tbl command.c_entity next;
    Hashtbl.replace state.outcomes command.c_entity ok
  end

let available state ~entity =
  let limit = maximum state ~entity in
  if limit = max_int then 0 else limit - acquired state ~entity
