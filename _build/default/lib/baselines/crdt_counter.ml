module Types = Samya.Types

type vectors = {
  increments : int array; (* per replica *)
  decrements : int array;
}

type entity_state = {
  maximum : int;
  mutable local : vectors; (* this replica's merged view *)
}

type msg = Gossip of { g_entity : Types.entity; vectors : vectors }

type replica = {
  replica_id : int;
  states : (Types.entity, entity_state) Hashtbl.t;
}

type t = {
  engine : Des.Engine.t;
  network : msg Geonet.Network.t;
  region_array : Geonet.Region.t array;
  replicas : replica array;
  rng : Des.Rng.t;
  maxima : (Types.entity, int) Hashtbl.t;
}

let merge a b =
  {
    increments = Array.map2 max a.increments b.increments;
    decrements = Array.map2 max a.decrements b.decrements;
  }

let view_total v =
  Array.fold_left ( + ) 0 v.increments - Array.fold_left ( + ) 0 v.decrements

let create ?(seed = 42L) ?regions ?(gossip_interval_ms = 1_000.0) () =
  let regions =
    match regions with Some r -> r | None -> Array.of_list Geonet.Region.default_five
  in
  let engine = Des.Engine.create ~seed () in
  let network = Geonet.Network.create engine ~regions () in
  let replicas =
    Array.init (Array.length regions) (fun replica_id ->
        { replica_id; states = Hashtbl.create 4 })
  in
  let t =
    {
      engine;
      network;
      region_array = regions;
      replicas;
      rng = Des.Rng.split (Des.Engine.rng engine);
      maxima = Hashtbl.create 4;
    }
  in
  Array.iteri
    (fun node replica ->
      Geonet.Network.register network ~node (fun envelope ->
          match envelope.Geonet.Network.payload with
          | Gossip { g_entity; vectors } -> (
              match Hashtbl.find_opt replica.states g_entity with
              | Some state -> state.local <- merge state.local vectors
              | None -> ())))
    replicas;
  (* State-based gossip: each replica periodically pushes its merged view
     to every peer. *)
  let rec gossip_loop () =
    Des.Engine.schedule engine ~delay_ms:gossip_interval_ms (fun () ->
        Array.iter
          (fun replica ->
            Hashtbl.iter
              (fun g_entity state ->
                Geonet.Network.broadcast network ~src:replica.replica_id
                  (Gossip { g_entity; vectors = state.local }))
              replica.states)
          replicas;
        gossip_loop ())
  in
  gossip_loop ();
  t

let engine t = t.engine

let init_entity t ~entity ~maximum =
  Hashtbl.replace t.maxima entity maximum;
  let n = Array.length t.replicas in
  Array.iter
    (fun replica ->
      Hashtbl.replace replica.states entity
        {
          maximum;
          local = { increments = Array.make n 0; decrements = Array.make n 0 };
        })
    t.replicas

let nearest t ~region =
  let best = ref 0 in
  Array.iteri
    (fun i r ->
      if
        Geonet.Region.one_way_ms region r
        < Geonet.Region.one_way_ms region t.region_array.(!best)
      then best := i)
    t.region_array;
  !best

let submit t ~region request ~reply =
  match Types.validate request with
  | Error _ -> reply Types.Rejected
  | Ok () ->
      let replica_id = nearest t ~region in
      let replica = t.replicas.(replica_id) in
      let leg =
        (Geonet.Region.client_site_rtt_ms /. 2.0)
        +. Geonet.Region.one_way_ms region t.region_array.(replica_id)
      in
      Des.Engine.schedule t.engine ~delay_ms:leg (fun () ->
          let answer response =
            Des.Engine.schedule t.engine ~delay_ms:leg (fun () -> reply response)
          in
          let entity = Types.request_entity request in
          match Hashtbl.find_opt replica.states entity with
          | None -> answer Types.Rejected
          | Some state -> (
              match request with
              | Types.Read _ ->
                  answer
                    (Types.Read_result
                       { tokens_available = state.maximum - view_total state.local })
              | Types.Acquire { amount; _ } ->
                  (* The constraint check can only consult the local,
                     possibly stale, view. *)
                  if view_total state.local + amount <= state.maximum then begin
                    state.local.increments.(replica_id) <-
                      state.local.increments.(replica_id) + amount;
                    answer Types.Granted
                  end
                  else answer Types.Rejected
              | Types.Release { amount; _ } ->
                  state.local.decrements.(replica_id) <-
                    state.local.decrements.(replica_id) + amount;
                  answer Types.Granted))

(* Ground truth: each replica is authoritative for its own slots. *)
let total_acquired t ~entity =
  Array.fold_left
    (fun acc replica ->
      match Hashtbl.find_opt replica.states entity with
      | Some state ->
          acc
          + state.local.increments.(replica.replica_id)
          - state.local.decrements.(replica.replica_id)
      | None -> acc)
    0 t.replicas

let overshoot t ~entity =
  match Hashtbl.find_opt t.maxima entity with
  | Some maximum -> max 0 (total_acquired t ~entity - maximum)
  | None -> 0
