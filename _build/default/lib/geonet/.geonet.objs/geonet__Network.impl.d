lib/geonet/network.ml: Array Des Float List Region
