lib/geonet/region.mli:
