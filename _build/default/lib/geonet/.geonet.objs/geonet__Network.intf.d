lib/geonet/network.mli: Des Region
