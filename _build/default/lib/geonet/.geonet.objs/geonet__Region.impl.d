lib/geonet/region.ml: Array String
