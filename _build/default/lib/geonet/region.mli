(** Cloud regions and the inter-region latency model.

    The paper deploys on Google Cloud Platform in five regions (US-West1,
    Asia-East2, Europe-West2, Australia-Southeast1, SouthAmerica-East1), plus
    two further US regions for the MultiPaxSys placement (a Spanner-like
    system keeps a majority of replicas inside the US). Round-trip times are
    calibrated to published GCP inter-region measurements; they need only be
    accurate in {e ratio} for the evaluation's shape to hold. *)

type t =
  | Us_west1
  | Us_central1
  | Us_east1
  | Asia_east2
  | Europe_west2
  | Australia_southeast1
  | Southamerica_east1

val name : t -> string

val all : t list

val default_five : t list
(** The five regions used by most experiments, in the paper's order. *)

val multipax_five : t list
(** Placement used for MultiPaxSys: three US regions plus Asia and Europe. *)

val rtt_ms : t -> t -> float
(** Symmetric inter-region round-trip time. Within a region the RTT models
    zone-local networking (~1 ms). *)

val one_way_ms : t -> t -> float
(** [rtt_ms a b /. 2.]. *)

val client_site_rtt_ms : float
(** RTT between a client/app-manager and a site in the same region. *)

val of_string : string -> t option
