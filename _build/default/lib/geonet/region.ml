type t =
  | Us_west1
  | Us_central1
  | Us_east1
  | Asia_east2
  | Europe_west2
  | Australia_southeast1
  | Southamerica_east1

let name = function
  | Us_west1 -> "us-west1"
  | Us_central1 -> "us-central1"
  | Us_east1 -> "us-east1"
  | Asia_east2 -> "asia-east2"
  | Europe_west2 -> "europe-west2"
  | Australia_southeast1 -> "australia-southeast1"
  | Southamerica_east1 -> "southamerica-east1"

let all =
  [ Us_west1; Us_central1; Us_east1; Asia_east2; Europe_west2;
    Australia_southeast1; Southamerica_east1 ]

let default_five =
  [ Us_west1; Asia_east2; Europe_west2; Australia_southeast1; Southamerica_east1 ]

let multipax_five = [ Us_west1; Us_central1; Us_east1; Asia_east2; Europe_west2 ]

let index = function
  | Us_west1 -> 0
  | Us_central1 -> 1
  | Us_east1 -> 2
  | Asia_east2 -> 3
  | Europe_west2 -> 4
  | Australia_southeast1 -> 5
  | Southamerica_east1 -> 6

(* Round-trip times in milliseconds, calibrated to public GCP inter-region
   ping measurements (gcping-style medians, rounded). Row/column order
   follows [index]. *)
let rtt_table =
  [| (*              usw1   usc1   use1   ase2   euw2   ause1  sae1 *)
     (* us-west1 *) [| 1.0;  35.0;  60.0; 118.0; 130.0; 140.0; 170.0 |];
     (* us-cent1 *) [| 35.0;  1.0;  30.0; 140.0; 100.0; 165.0; 145.0 |];
     (* us-east1 *) [| 60.0; 30.0;   1.0; 170.0;  80.0; 190.0; 120.0 |];
     (* asia-e2  *) [| 118.0; 140.0; 170.0;  1.0; 190.0; 120.0; 300.0 |];
     (* eu-west2 *) [| 130.0; 100.0;  80.0; 190.0;  1.0; 250.0; 190.0 |];
     (* aus-se1  *) [| 140.0; 165.0; 190.0; 120.0; 250.0;  1.0; 290.0 |];
     (* sa-east1 *) [| 170.0; 145.0; 120.0; 300.0; 190.0; 290.0;  1.0 |]
  |]

let rtt_ms a b = rtt_table.(index a).(index b)

let one_way_ms a b = rtt_ms a b /. 2.0

let client_site_rtt_ms = 1.0

let of_string s =
  let rec find = function
    | [] -> None
    | r :: rest -> if String.equal (name r) s then Some r else find rest
  in
  find all
