(** Simulated geo-distributed message network.

    Nodes are dense integer ids, each placed in a {!Region.t}. [send]
    delivers a payload to the destination's registered handler after the
    inter-region one-way latency plus log-normal-ish jitter, unless the
    message is dropped (loss probability), a network partition separates the
    two nodes, or either endpoint is crashed.

    The model matches the paper's assumptions: asynchronous network, messages
    can be delayed, dropped or reordered; nodes fail by crashing (no
    Byzantine behaviour). Crash and partition injection are first-class so
    the failure experiments (Figs. 3c, 3d) are ordinary test scenarios. *)

type 'msg t

type 'msg envelope = {
  src : int;
  dst : int;
  sent_at : float;  (** virtual ms when [send] was called *)
  payload : 'msg;
}

val create :
  Des.Engine.t ->
  regions:Region.t array ->
  ?drop_probability:float ->
  ?jitter_fraction:float ->
  unit ->
  'msg t
(** [regions.(i)] places node [i]. [drop_probability] (default [0.]) applies
    independently per message. [jitter_fraction] (default [0.05]) scales a
    non-negative random additive delay relative to the base latency. *)

val engine : _ t -> Des.Engine.t

val node_count : _ t -> int

val region_of : _ t -> int -> Region.t

val register : 'msg t -> node:int -> ('msg envelope -> unit) -> unit
(** Installs the delivery handler for [node]. Re-registering replaces the
    handler (used when a node recovers with a fresh protocol state). *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Fire-and-forget. Self-sends are delivered after a small local delay. *)

val broadcast : 'msg t -> src:int -> 'msg -> unit
(** [send] to every node except [src]. *)

val latency_ms : 'msg t -> src:int -> dst:int -> float
(** Base one-way latency between two nodes (no jitter). *)

val crash : _ t -> int -> unit
(** A crashed node neither sends nor receives; messages in flight to it are
    silently lost on arrival. *)

val recover : _ t -> int -> unit

val is_up : _ t -> int -> bool

val set_partition : _ t -> int list list -> unit
(** [set_partition t groups] drops every message whose endpoints fall in
    different groups. Nodes absent from every group form an implicit extra
    group. Replaces any previous partition. *)

val clear_partition : _ t -> unit

val set_drop_probability : _ t -> float -> unit
(** Change the per-message loss rate on the fly (tests heal a lossy
    network before asserting quiescent invariants). *)

val reachable : _ t -> int -> int -> bool
(** Both endpoints up and in the same partition group. *)

val stats_sent : _ t -> int
val stats_delivered : _ t -> int
val stats_dropped : _ t -> int
