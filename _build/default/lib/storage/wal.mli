(** Simulated write-ahead log.

    Models the stable storage the paper assumes at every site ("when a
    crashed site recovers, it reconstructs its previous state, typically
    stored on stable storage"). Appends survive a simulated crash; volatile
    protocol state does not. Records are typed; a log is an append-only
    sequence with O(1) append and indexed read. *)

type 'a t

val create : unit -> 'a t

val append : 'a t -> 'a -> int
(** Durably appends a record, returning its index. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] if the index is out of range. *)

val last : 'a t -> 'a option

val iter : 'a t -> ('a -> unit) -> unit
(** In append order. *)

val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b

val truncate_from : 'a t -> int -> unit
(** [truncate_from t i] discards records at indices [>= i] (used by Raft to
    resolve log conflicts). *)

val to_list : 'a t -> 'a list
