lib/storage/wal.mli:
