lib/storage/wal.ml: Array
