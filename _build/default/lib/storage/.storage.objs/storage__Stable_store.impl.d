lib/storage/stable_store.ml: Hashtbl
