lib/storage/stable_store.mli:
