(** Raft consensus (Ongaro & Ousterhout, USENIX ATC'14).

    The replication substrate for the CockroachDB-like baseline (§5,
    baseline iii). Implements the complete core protocol: randomized leader
    election with terms and log-up-to-date voting, AppendEntries log
    replication with consistency checks and conflict truncation, and
    majority commit restricted to current-term entries (the Figure 8 rule).
    Snapshots and membership changes are out of scope — the baseline
    cluster is static and logs stay in (simulated) memory.

    Transport-agnostic like the other protocols: the owner wires [send] to
    a {!Geonet.Network.t} and feeds deliveries to {!handle}. Timers run on
    the simulation engine; {!pause} models a crash (no timers, no sends)
    and {!resume} a recovery with durable state intact. *)

type 'c entry = { term : int; command : 'c }

type 'c msg =
  | Request_vote of { term : int; last_log_index : int; last_log_term : int }
  | Vote of { term : int; granted : bool }
  | Append_entries of {
      term : int;
      prev_index : int;
      prev_term : int;
      entries : 'c entry array;
      leader_commit : int;
    }
  | Append_reply of { term : int; success : bool; match_index : int }

type 'c t

type role = Follower | Candidate | Leader

val create :
  engine:Des.Engine.t ->
  id:int ->
  nodes:int list ->
  send:(int -> 'c msg -> unit) ->
  ?election_timeout_ms:float * float ->
  ?heartbeat_ms:float ->
  ?on_apply:(int -> 'c -> unit) ->
  ?on_leader_change:(bool -> unit) ->
  unit ->
  'c t
(** [election_timeout_ms] is the (min, max) randomization range (default
    (150, 300) scaled for WAN use by the caller); [heartbeat_ms] defaults
    to a third of the minimum timeout. [on_apply] fires per node as entries
    commit, in log order. *)

val start : 'c t -> unit
(** Arms the first election timeout. *)

val handle : 'c t -> src:int -> 'c msg -> unit

val submit : 'c t -> 'c -> on_commit:(unit -> unit) -> (int, int option) result
(** At the leader: appends, replicates, returns [Ok index]; [on_commit]
    fires when the entry commits at the leader (dropped on leadership
    loss — the client-side times out and retries, as in a real system).
    At a non-leader: [Error leader_hint]. *)

val role : 'c t -> role
val is_leader : 'c t -> bool
val current_term : 'c t -> int
val leader_hint : 'c t -> int option
val commit_index : 'c t -> int
(** [-1] when nothing is committed. *)

val log_length : 'c t -> int
val log_entry : 'c t -> int -> 'c entry

val pause : 'c t -> unit
(** Crash: cancels timers and ignores messages until {!resume}. Durable
    state (term, vote, log) survives. *)

val resume : 'c t -> unit
