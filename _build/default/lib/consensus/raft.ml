type 'c entry = { term : int; command : 'c }

type 'c msg =
  | Request_vote of { term : int; last_log_index : int; last_log_term : int }
  | Vote of { term : int; granted : bool }
  | Append_entries of {
      term : int;
      prev_index : int;
      prev_term : int;
      entries : 'c entry array;
      leader_commit : int;
    }
  | Append_reply of { term : int; success : bool; match_index : int }

type role = Follower | Candidate | Leader

type 'c t = {
  engine : Des.Engine.t;
  id : int;
  nodes : int list;
  send : int -> 'c msg -> unit;
  timeout_range : float * float;
  heartbeat_ms : float;
  on_apply : (int -> 'c -> unit) option;
  on_leader_change : (bool -> unit) option;
  rng : Des.Rng.t;
  log : 'c entry Storage.Wal.t;
  mutable term : int;
  mutable voted_for : int option;
  mutable role : role;
  mutable leader : int option;
  mutable commit_index : int;
  mutable applied : int;
  mutable votes : (int, unit) Hashtbl.t;
  next_index : (int, int) Hashtbl.t;
  match_index : (int, int) Hashtbl.t;
  waiters : (int, int * (unit -> unit)) Hashtbl.t; (* index -> (term, callback) *)
  mutable election_timer : Des.Engine.timer option;
  mutable heartbeat_timer : Des.Engine.timer option;
  mutable paused : bool;
}

let create ~engine ~id ~nodes ~send ?(election_timeout_ms = (150.0, 300.0))
    ?heartbeat_ms ?on_apply ?on_leader_change () =
  let heartbeat_ms =
    Option.value heartbeat_ms ~default:(fst election_timeout_ms /. 3.0)
  in
  {
    engine;
    id;
    nodes;
    send;
    timeout_range = election_timeout_ms;
    heartbeat_ms;
    on_apply;
    on_leader_change;
    rng = Des.Rng.split (Des.Engine.rng engine);
    log = Storage.Wal.create ();
    term = 0;
    voted_for = None;
    role = Follower;
    leader = None;
    commit_index = -1;
    applied = -1;
    votes = Hashtbl.create 8;
    next_index = Hashtbl.create 8;
    match_index = Hashtbl.create 8;
    waiters = Hashtbl.create 32;
    election_timer = None;
    heartbeat_timer = None;
    paused = false;
  }

let majority t = (List.length t.nodes / 2) + 1

let peers t = List.filter (fun node -> node <> t.id) t.nodes

let last_log_index t = Storage.Wal.length t.log - 1

let term_at t index = if index < 0 then 0 else (Storage.Wal.get t.log index).term

let cancel_timer slot =
  match slot with Some timer -> Des.Engine.cancel timer | None -> ()

let apply_committed t =
  while t.applied < t.commit_index do
    t.applied <- t.applied + 1;
    match t.on_apply with
    | Some f -> f t.applied (Storage.Wal.get t.log t.applied).command
    | None -> ()
  done

let notify_leader_change t now_leader =
  match t.on_leader_change with Some f -> f now_leader | None -> ()

let rec arm_election_timer t =
  cancel_timer t.election_timer;
  let lo, hi = t.timeout_range in
  let delay = lo +. Des.Rng.float t.rng (hi -. lo) in
  t.election_timer <-
    Some (Des.Engine.timer t.engine ~delay_ms:delay (fun () -> on_election_timeout t))

and on_election_timeout t =
  if (not t.paused) && t.role <> Leader then begin
    (* Become candidate for a fresh term. *)
    t.term <- t.term + 1;
    t.role <- Candidate;
    t.voted_for <- Some t.id;
    t.leader <- None;
    t.votes <- Hashtbl.create 8;
    Hashtbl.replace t.votes t.id ();
    let last = last_log_index t in
    List.iter
      (fun node ->
        t.send node
          (Request_vote { term = t.term; last_log_index = last; last_log_term = term_at t last }))
      (peers t);
    check_votes t
  end;
  if not t.paused then arm_election_timer t

and become_leader t =
  t.role <- Leader;
  t.leader <- Some t.id;
  Hashtbl.reset t.next_index;
  Hashtbl.reset t.match_index;
  let next = Storage.Wal.length t.log in
  List.iter
    (fun node ->
      Hashtbl.replace t.next_index node next;
      Hashtbl.replace t.match_index node (-1))
    (peers t);
  notify_leader_change t true;
  send_heartbeats t;
  arm_heartbeat_timer t

and check_votes t =
  if t.role = Candidate && Hashtbl.length t.votes >= majority t then become_leader t

and arm_heartbeat_timer t =
  cancel_timer t.heartbeat_timer;
  t.heartbeat_timer <-
    Some
      (Des.Engine.timer t.engine ~delay_ms:t.heartbeat_ms (fun () ->
           if (not t.paused) && t.role = Leader then begin
             send_heartbeats t;
             arm_heartbeat_timer t
           end))

and send_append t node =
  let next = Option.value (Hashtbl.find_opt t.next_index node) ~default:0 in
  let prev_index = next - 1 in
  let count = Storage.Wal.length t.log - next in
  let entries = Array.init (max 0 count) (fun i -> Storage.Wal.get t.log (next + i)) in
  t.send node
    (Append_entries
       {
         term = t.term;
         prev_index;
         prev_term = term_at t prev_index;
         entries;
         leader_commit = t.commit_index;
       })

and send_heartbeats t = List.iter (send_append t) (peers t)

let step_down t new_term =
  let was_leader = t.role = Leader in
  t.term <- new_term;
  t.role <- Follower;
  t.voted_for <- None;
  cancel_timer t.heartbeat_timer;
  t.heartbeat_timer <- None;
  if was_leader then notify_leader_change t false;
  arm_election_timer t

let advance_leader_commit t =
  (* Find the highest index replicated on a majority with an entry from the
     current term (Raft's commitment rule, §5.4.2 of the paper). *)
  let changed = ref false in
  let candidate = ref (t.commit_index + 1) in
  let continue_scan = ref true in
  while !continue_scan && !candidate <= last_log_index t do
    let index = !candidate in
    let replicas =
      1
      + List.length
          (List.filter
             (fun node -> Option.value (Hashtbl.find_opt t.match_index node) ~default:(-1) >= index)
             (peers t))
    in
    if replicas >= majority t && term_at t index = t.term then begin
      t.commit_index <- index;
      changed := true;
      incr candidate
    end
    else if replicas >= majority t then incr candidate (* older-term entry: skip, commit via later entry *)
    else continue_scan := false
  done;
  if !changed then begin
    apply_committed t;
    (* Fire commit callbacks for entries at or below the commit index. *)
    let fired = ref [] in
    Hashtbl.iter
      (fun index (term, callback) ->
        if index <= t.commit_index then begin
          if term_at t index = term then callback ();
          fired := index :: !fired
        end)
      t.waiters;
    List.iter (Hashtbl.remove t.waiters) !fired
  end

let start t = arm_election_timer t

let handle t ~src msg =
  if t.paused then ()
  else begin
    (* Any message from a later term demotes us. *)
    (match msg with
    | Request_vote { term; _ } | Vote { term; _ }
    | Append_entries { term; _ } | Append_reply { term; _ } ->
        if term > t.term then step_down t term);
    match msg with
    | Request_vote { term; last_log_index = cand_last; last_log_term = cand_last_term } ->
        let my_last = last_log_index t in
        let up_to_date =
          cand_last_term > term_at t my_last
          || (cand_last_term = term_at t my_last && cand_last >= my_last)
        in
        let grant =
          term = t.term && up_to_date
          && (t.voted_for = None || t.voted_for = Some src)
        in
        if grant then begin
          t.voted_for <- Some src;
          arm_election_timer t
        end;
        t.send src (Vote { term = t.term; granted = grant })
    | Vote { term; granted } ->
        if t.role = Candidate && term = t.term && granted then begin
          Hashtbl.replace t.votes src ();
          check_votes t
        end
    | Append_entries { term; prev_index; prev_term; entries; leader_commit } ->
        if term < t.term then
          t.send src (Append_reply { term = t.term; success = false; match_index = -1 })
        else begin
          (* Valid leader for this term. *)
          if t.role <> Follower then step_down t term;
          t.leader <- Some src;
          arm_election_timer t;
          let have_prev =
            prev_index < 0
            || (prev_index <= last_log_index t && term_at t prev_index = prev_term)
          in
          if not have_prev then
            t.send src (Append_reply { term = t.term; success = false; match_index = -1 })
          else begin
            (* Append, truncating on conflicts. *)
            Array.iteri
              (fun offset (entry : _ entry) ->
                let index = prev_index + 1 + offset in
                if index <= last_log_index t then begin
                  if (Storage.Wal.get t.log index).term <> entry.term then begin
                    Storage.Wal.truncate_from t.log index;
                    ignore (Storage.Wal.append t.log entry)
                  end
                end
                else ignore (Storage.Wal.append t.log entry))
              entries;
            let match_index = prev_index + Array.length entries in
            if leader_commit > t.commit_index then begin
              t.commit_index <- min leader_commit (last_log_index t);
              apply_committed t
            end;
            t.send src (Append_reply { term = t.term; success = true; match_index })
          end
        end
    | Append_reply { term; success; match_index } ->
        if t.role = Leader && term = t.term then begin
          if success then begin
            Hashtbl.replace t.match_index src match_index;
            Hashtbl.replace t.next_index src (match_index + 1);
            advance_leader_commit t
          end
          else begin
            (* Back off and retry immediately. *)
            let next = Option.value (Hashtbl.find_opt t.next_index src) ~default:0 in
            Hashtbl.replace t.next_index src (max 0 (next - 1));
            send_append t src
          end
        end
  end

let submit t command ~on_commit =
  if t.role <> Leader then Error t.leader
  else begin
    let index = Storage.Wal.append t.log { term = t.term; command } in
    Hashtbl.replace t.waiters index (t.term, on_commit);
    List.iter (send_append t) (peers t);
    (* A single-node cluster commits immediately. *)
    advance_leader_commit t;
    Ok index
  end

let role t = t.role
let is_leader t = t.role = Leader
let current_term t = t.term
let leader_hint t = t.leader
let commit_index t = t.commit_index
let log_length t = Storage.Wal.length t.log
let log_entry t i = Storage.Wal.get t.log i

let pause t =
  t.paused <- true;
  cancel_timer t.election_timer;
  cancel_timer t.heartbeat_timer;
  t.election_timer <- None;
  t.heartbeat_timer <- None;
  if t.role = Leader then notify_leader_change t false;
  t.role <- Follower;
  t.leader <- None;
  Hashtbl.reset t.waiters

let resume t =
  t.paused <- false;
  arm_election_timer t
