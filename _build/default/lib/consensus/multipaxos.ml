type 'c msg =
  | Accept of { index : int; command : 'c }
  | Accept_ok of { index : int }
  | Commit of { index : int }

type 'c pending = {
  acks : (int, unit) Hashtbl.t;
  on_commit : unit -> unit;
}

type 'c t = {
  id : int;
  nodes : int list;
  leader : int;
  send : int -> 'c msg -> unit;
  on_apply : (int -> 'c -> unit) option;
  log : 'c Storage.Wal.t;
  pending : (int, 'c pending) Hashtbl.t; (* leader: in-flight entries *)
  mutable commit_index : int;
  mutable applied : int;
}

let create ~engine:_ ~id ~nodes ~leader ~send ?on_apply () =
  {
    id;
    nodes;
    leader;
    send;
    on_apply;
    log = Storage.Wal.create ();
    pending = Hashtbl.create 32;
    commit_index = -1;
    applied = -1;
  }

let is_leader t = t.id = t.leader

let majority t = (List.length t.nodes / 2) + 1

let apply_up_to t =
  (* Apply committed entries in order, but only those locally present (a
     follower may learn a commit index ahead of its log). *)
  let limit = min t.commit_index (Storage.Wal.length t.log - 1) in
  while t.applied < limit do
    t.applied <- t.applied + 1;
    match t.on_apply with
    | Some f -> f t.applied (Storage.Wal.get t.log t.applied)
    | None -> ()
  done

let advance_commit t =
  (* Commit contiguously from the current commit index; each entry is
     applied to the local state machine before its on_commit callback runs,
     so callbacks observe the post-application state. *)
  let rec loop () =
    let next = t.commit_index + 1 in
    match Hashtbl.find_opt t.pending next with
    | Some entry when Hashtbl.length entry.acks >= majority t ->
        t.commit_index <- next;
        Hashtbl.remove t.pending next;
        List.iter (fun node -> if node <> t.id then t.send node (Commit { index = next })) t.nodes;
        apply_up_to t;
        entry.on_commit ();
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  apply_up_to t

let submit t command ~on_commit =
  if not (is_leader t) then invalid_arg "Multipaxos.submit: not the leader";
  let index = Storage.Wal.append t.log command in
  let entry = { acks = Hashtbl.create 8; on_commit } in
  Hashtbl.replace entry.acks t.id ();
  Hashtbl.replace t.pending index entry;
  List.iter (fun node -> if node <> t.id then t.send node (Accept { index; command })) t.nodes;
  advance_commit t

let handle t ~src msg =
  match msg with
  | Accept { index; command } ->
      (* In-order durable append; out-of-order arrivals (a gap) are ignored
         and will be re-sent by a real system — with FIFO-ish simulated
         links and no leader change, gaps only arise from message loss. *)
      if index = Storage.Wal.length t.log then begin
        ignore (Storage.Wal.append t.log command);
        t.send src (Accept_ok { index })
      end
      else if index < Storage.Wal.length t.log then t.send src (Accept_ok { index })
  | Accept_ok { index } -> (
      match Hashtbl.find_opt t.pending index with
      | Some entry ->
          Hashtbl.replace entry.acks src ();
          advance_commit t
      | None -> ())
  | Commit { index } ->
      if index > t.commit_index then begin
        t.commit_index <- index;
        apply_up_to t
      end

let resend_pending t =
  Hashtbl.iter
    (fun index _ ->
      let command = Storage.Wal.get t.log index in
      List.iter
        (fun node -> if node <> t.id then t.send node (Accept { index; command }))
        t.nodes)
    t.pending

let pending_count t = Hashtbl.length t.pending

let commit_index t = t.commit_index

let log_length t = Storage.Wal.length t.log

let log_entry t i = Storage.Wal.get t.log i
