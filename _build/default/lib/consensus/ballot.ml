type t = { num : int; site : int }

let zero site = { num = 0; site }

let next b ~site = { num = b.num + 1; site }

let compare a b =
  match Int.compare a.num b.num with 0 -> Int.compare a.site b.site | c -> c

let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let equal a b = compare a b = 0

let pp fmt b = Format.fprintf fmt "<%d,%d>" b.num b.site

let to_string b = Format.asprintf "%a" pp b
