(** Single-decree Paxos.

    A classic proposer/acceptor/learner state machine, transport-agnostic:
    the owner supplies a [send] callback and feeds incoming messages to
    {!handle}. Used directly in tests (agreement under drops and duelling
    proposers) and as the reference point against which Avantan's
    differences are documented — Avantan agrees on a {e constructed list}
    of site states rather than a proposed value.

    Durability: promised/accepted state is journalled to a {!Storage.Stable_store.t}
    so a crashed acceptor can be restarted with its obligations intact. *)

type 'v msg =
  | Prepare of { bal : Ballot.t }
  | Promise of { bal : Ballot.t; accepted : (Ballot.t * 'v) option }
  | Nack of { bal : Ballot.t }
  | Accept of { bal : Ballot.t; value : 'v }
  | Accepted of { bal : Ballot.t }
  | Learn of { bal : Ballot.t; value : 'v }

type 'v t

val create :
  engine:Des.Engine.t ->
  id:int ->
  nodes:int list ->
  send:(int -> 'v msg -> unit) ->
  on_decide:('v -> unit) ->
  ?retry_timeout_ms:float ->
  unit ->
  'v t
(** [nodes] is the full membership including [id]. [on_decide] fires exactly
    once, when this node first learns the decided value. *)

val propose : 'v t -> 'v -> unit
(** Starts (or restarts, with a higher ballot) a proposal. If another value
    was already decided, that value wins — the proposer re-proposes the
    accepted value per the Paxos rules. *)

val handle : 'v t -> src:int -> 'v msg -> unit

val decided : 'v t -> 'v option

val ballot : 'v t -> Ballot.t
(** Highest ballot this node has seen (diagnostics/tests). *)

val restart : 'v t -> unit
(** Simulated crash-recovery: wipes volatile proposer state and reloads the
    acceptor obligations from stable storage. *)
