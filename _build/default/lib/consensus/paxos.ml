type 'v msg =
  | Prepare of { bal : Ballot.t }
  | Promise of { bal : Ballot.t; accepted : (Ballot.t * 'v) option }
  | Nack of { bal : Ballot.t }
  | Accept of { bal : Ballot.t; value : 'v }
  | Accepted of { bal : Ballot.t }
  | Learn of { bal : Ballot.t; value : 'v }

(* Durable acceptor state, journalled as a whole on every mutation. *)
type 'v acceptor = {
  promised : Ballot.t;
  accepted : (Ballot.t * 'v) option;
}

type 'v proposer_phase =
  | Idle
  | Preparing of { bal : Ballot.t; promises : (int, (Ballot.t * 'v) option) Hashtbl.t }
  | Accepting of { bal : Ballot.t; value : 'v; acks : (int, unit) Hashtbl.t }

type 'v t = {
  engine : Des.Engine.t;
  id : int;
  nodes : int list;
  send : int -> 'v msg -> unit;
  on_decide : 'v -> unit;
  retry_timeout_ms : float;
  store : 'v acceptor Storage.Stable_store.t;
  mutable acceptor : 'v acceptor;
  mutable phase : 'v proposer_phase;
  mutable wanted : 'v option; (* the value this node tried to propose *)
  mutable decided : 'v option;
  mutable retry : Des.Engine.timer option;
}

let majority t = (List.length t.nodes / 2) + 1

let create ~engine ~id ~nodes ~send ~on_decide ?(retry_timeout_ms = 500.0) () =
  let store = Storage.Stable_store.create () in
  let acceptor = { promised = Ballot.zero id; accepted = None } in
  Storage.Stable_store.put store ~key:"acceptor" acceptor;
  {
    engine;
    id;
    nodes;
    send;
    on_decide;
    retry_timeout_ms;
    store;
    acceptor;
    phase = Idle;
    wanted = None;
    decided = None;
    retry = None;
  }

let ballot t =
  match t.phase with
  | Preparing { bal; _ } | Accepting { bal; _ } ->
      if Ballot.(bal > t.acceptor.promised) then bal else t.acceptor.promised
  | Idle -> t.acceptor.promised

let persist t acceptor =
  t.acceptor <- acceptor;
  Storage.Stable_store.put t.store ~key:"acceptor" acceptor

let broadcast t msg = List.iter (fun node -> if node <> t.id then t.send node msg) t.nodes

let decide t value =
  if t.decided = None then begin
    t.decided <- Some value;
    (match t.retry with Some timer -> Des.Engine.cancel timer | None -> ());
    t.retry <- None;
    t.phase <- Idle;
    t.on_decide value
  end

let cancel_retry t =
  match t.retry with
  | Some timer ->
      Des.Engine.cancel timer;
      t.retry <- None
  | None -> ()

let rec arm_retry t =
  cancel_retry t;
  t.retry <-
    Some
      (Des.Engine.timer t.engine ~delay_ms:t.retry_timeout_ms (fun () ->
           t.retry <- None;
           if t.decided = None then
             match t.wanted with Some v -> start_round t v | None -> ()))

and start_round t value =
  t.wanted <- Some value;
  let bal = Ballot.next (ballot t) ~site:t.id in
  let promises = Hashtbl.create 8 in
  t.phase <- Preparing { bal; promises };
  (* Self-promise. *)
  persist t { t.acceptor with promised = bal };
  Hashtbl.replace promises t.id t.acceptor.accepted;
  broadcast t (Prepare { bal });
  arm_retry t;
  check_promises t

and check_promises t =
  match t.phase with
  | Preparing { bal; promises } when Hashtbl.length promises >= majority t ->
      (* Adopt the highest accepted value among the promises, if any. *)
      let best =
        Hashtbl.fold
          (fun _ accepted best ->
            match (accepted, best) with
            | None, best -> best
            | Some (b, v), Some (b', _) when Ballot.(b' >= b) -> Some (b', v)
            | Some (b, v), _ -> Some (b, v))
          promises None
      in
      let value =
        match (best, t.wanted) with
        | Some (_, v), _ -> v
        | None, Some v -> v
        | None, None -> assert false
      in
      let acks = Hashtbl.create 8 in
      t.phase <- Accepting { bal; value; acks };
      persist t { promised = bal; accepted = Some (bal, value) };
      Hashtbl.replace acks t.id ();
      broadcast t (Accept { bal; value });
      check_acks t
  | Preparing _ | Accepting _ | Idle -> ()

and check_acks t =
  match t.phase with
  | Accepting { bal; value; acks } when Hashtbl.length acks >= majority t ->
      broadcast t (Learn { bal; value });
      decide t value
  | Accepting _ | Preparing _ | Idle -> ()

let propose t value =
  match t.decided with
  | Some _ -> ()
  | None -> start_round t value

let handle t ~src msg =
  match msg with
  | Prepare { bal } ->
      if Ballot.(bal > t.acceptor.promised) then begin
        persist t { t.acceptor with promised = bal };
        t.send src (Promise { bal; accepted = t.acceptor.accepted })
      end
      else t.send src (Nack { bal = t.acceptor.promised })
  | Promise { bal; accepted } -> (
      match t.phase with
      | Preparing ({ bal = current; promises } as _p) when Ballot.equal bal current ->
          Hashtbl.replace promises src accepted;
          check_promises t
      | Preparing _ | Accepting _ | Idle -> ())
  | Nack { bal } ->
      (* Someone holds a higher ballot: back off; the retry timer will
         re-run with a ballot above [bal]. *)
      if Ballot.(bal > t.acceptor.promised) then persist t { t.acceptor with promised = bal }
  | Accept { bal; value } ->
      if Ballot.(bal >= t.acceptor.promised) then begin
        persist t { promised = bal; accepted = Some (bal, value) };
        t.send src (Accepted { bal })
      end
      else t.send src (Nack { bal = t.acceptor.promised })
  | Accepted { bal } -> (
      match t.phase with
      | Accepting ({ bal = current; acks; _ } as _a) when Ballot.equal bal current ->
          Hashtbl.replace acks src ();
          check_acks t
      | Accepting _ | Preparing _ | Idle -> ())
  | Learn { bal = _; value } -> decide t value

let decided t = t.decided

let restart t =
  cancel_retry t;
  t.phase <- Idle;
  t.wanted <- None;
  t.acceptor <- Storage.Stable_store.get_exn t.store ~key:"acceptor"
