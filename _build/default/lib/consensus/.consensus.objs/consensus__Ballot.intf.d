lib/consensus/ballot.mli: Format
