lib/consensus/raft.mli: Des
