lib/consensus/multipaxos.ml: Hashtbl List Storage
