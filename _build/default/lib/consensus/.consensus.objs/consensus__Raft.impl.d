lib/consensus/raft.ml: Array Des Hashtbl List Option Storage
