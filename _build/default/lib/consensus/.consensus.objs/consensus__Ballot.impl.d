lib/consensus/ballot.ml: Format Int
