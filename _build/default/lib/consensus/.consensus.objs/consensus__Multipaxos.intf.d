lib/consensus/multipaxos.mli: Des
