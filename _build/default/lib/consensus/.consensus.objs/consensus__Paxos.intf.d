lib/consensus/paxos.mli: Ballot Des
