lib/consensus/paxos.ml: Ballot Des Hashtbl List Storage
