(** Ballot numbers: the [< num, site-id >] pairs that totally order
    proposals in Paxos and in both Avantan variants (Table 1c). *)

type t = { num : int; site : int }

val zero : int -> t
(** [zero site] is [< 0, site >], the initial ballot at a site. *)

val next : t -> site:int -> t
(** [next b ~site] increments the counter and stamps the caller's id —
    the "BallotNum <- (BallotNum.num + 1, selfId)" step. *)

val compare : t -> t -> int
(** Lexicographic on [(num, site)]. *)

val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
