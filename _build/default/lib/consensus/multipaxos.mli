(** Multi-Paxos replicated log with a stable leader.

    The replication engine of the MultiPaxSys baseline (§5, baseline i): a
    Spanner-like system runs the equivalent of a Paxos phase-2 round per log
    entry under a long-lived leader lease, so the steady-state cost of a
    command is one majority round trip. Elections are out of scope for the
    baseline (the paper pins the MultiPaxSys leader); liveness under leader
    failure is what the Samya comparison is about, not this module.

    Commands commit in log order; each command's [on_commit] callback fires
    at the leader once a majority (leader included) has acknowledged it and
    all earlier entries are committed. *)

type 'c msg =
  | Accept of { index : int; command : 'c }
  | Accept_ok of { index : int }
  | Commit of { index : int }

type 'c t

val create :
  engine:Des.Engine.t ->
  id:int ->
  nodes:int list ->
  leader:int ->
  send:(int -> 'c msg -> unit) ->
  ?on_apply:(int -> 'c -> unit) ->
  unit ->
  'c t
(** One instance per node; [leader] names the distinguished proposer.
    [on_apply] fires on every node as entries commit (in order). *)

val is_leader : 'c t -> bool

val submit : 'c t -> 'c -> on_commit:(unit -> unit) -> unit
(** Leader only; raises [Invalid_argument] on a follower. *)

val handle : 'c t -> src:int -> 'c msg -> unit

val resend_pending : 'c t -> unit
(** Leader: re-broadcast Accept for all in-flight entries. Called on a
    timer by the owner to recover from message loss or healed partitions
    (multi-Paxos itself is retry-free). *)

val pending_count : 'c t -> int

val commit_index : 'c t -> int
(** Index of the last committed entry; [-1] when none. *)

val log_length : 'c t -> int

val log_entry : 'c t -> int -> 'c
