lib/hierarchy/org.ml: Array List Printf Samya String
