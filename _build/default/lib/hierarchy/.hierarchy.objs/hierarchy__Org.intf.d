lib/hierarchy/org.mli: Geonet Samya
