type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: non-positive dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let of_arrays arrays =
  let rows = Array.length arrays in
  if rows = 0 then invalid_arg "Matrix.of_arrays: empty";
  let cols = Array.length arrays.(0) in
  if cols = 0 then invalid_arg "Matrix.of_arrays: empty row";
  Array.iter
    (fun row ->
      if Array.length row <> cols then invalid_arg "Matrix.of_arrays: ragged rows")
    arrays;
  let m = create rows cols in
  for i = 0 to rows - 1 do
    Array.blit arrays.(i) 0 m.data (i * cols) cols
  done;
  m

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let random rng rows cols ~scale =
  init rows cols (fun _ _ -> Des.Rng.float rng (2.0 *. scale) -. scale)

let rows m = m.rows
let cols m = m.cols

let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

let copy m = { m with data = Array.copy m.data }

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.matmul: dimension mismatch";
  let out = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          out.data.((i * b.cols) + j) <-
            out.data.((i * b.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  out

let mat_vec m v =
  if Array.length v <> m.cols then invalid_arg "Matrix.mat_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. v.(j))
      done;
      !acc)

let vec_mat v m =
  if Array.length v <> m.rows then invalid_arg "Matrix.vec_mat: dimension mismatch";
  Array.init m.cols (fun j ->
      let acc = ref 0.0 in
      for i = 0 to m.rows - 1 do
        acc := !acc +. (v.(i) *. m.data.((i * m.cols) + j))
      done;
      !acc)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let zip_with op a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix: shape mismatch";
  { a with data = Array.init (Array.length a.data) (fun i -> op a.data.(i) b.data.(i)) }

let add a b = zip_with ( +. ) a b
let sub a b = zip_with ( -. ) a b
let hadamard a b = zip_with ( *. ) a b

let scale k m = { m with data = Array.map (fun x -> k *. x) m.data }

let map f m = { m with data = Array.map f m.data }

let add_in_place acc m =
  if acc.rows <> m.rows || acc.cols <> m.cols then
    invalid_arg "Matrix.add_in_place: shape mismatch";
  for i = 0 to Array.length acc.data - 1 do
    acc.data.(i) <- acc.data.(i) +. m.data.(i)
  done

let scale_in_place k m =
  for i = 0 to Array.length m.data - 1 do
    m.data.(i) <- k *. m.data.(i)
  done

let fill m v = Array.fill m.data 0 (Array.length m.data) v

let outer u v =
  let m = create (Array.length u) (Array.length v) in
  for i = 0 to Array.length u - 1 do
    for j = 0 to Array.length v - 1 do
      m.data.((i * m.cols) + j) <- u.(i) *. v.(j)
    done
  done;
  m

let frobenius_norm m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let solve a b =
  if a.rows <> a.cols then invalid_arg "Matrix.solve: matrix must be square";
  if Array.length b <> a.rows then invalid_arg "Matrix.solve: shape mismatch";
  let n = a.rows in
  let aug = Array.init n (fun i -> Array.init (n + 1) (fun j -> if j = n then b.(i) else get a i j)) in
  for col = 0 to n - 1 do
    (* Partial pivoting: bring the largest remaining entry into the pivot. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs aug.(row).(col) > Float.abs aug.(!pivot).(col) then pivot := row
    done;
    if Float.abs aug.(!pivot).(col) < 1e-12 then failwith "Matrix.solve: singular system";
    if !pivot <> col then begin
      let tmp = aug.(col) in
      aug.(col) <- aug.(!pivot);
      aug.(!pivot) <- tmp
    end;
    for row = col + 1 to n - 1 do
      let factor = aug.(row).(col) /. aug.(col).(col) in
      if factor <> 0.0 then
        for j = col to n do
          aug.(row).(j) <- aug.(row).(j) -. (factor *. aug.(col).(j))
        done
    done
  done;
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let acc = ref aug.(i).(n) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (aug.(i).(j) *. x.(j))
    done;
    x.(i) <- !acc /. aug.(i).(i)
  done;
  x

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)
