(** Common interface for one-step-ahead demand forecasters.

    The paper's Prediction Module is pluggable; this type is the plug. A
    forecaster maps a demand history (one value per epoch, oldest first) to
    a prediction for the next epoch. Implementations: {!Random_walk},
    {!Arima}, {!Lstm}, plus test oracles built with {!constant} / {!of_fn}. *)

type t = {
  name : string;
  min_history : int;
      (** Fewest history points needed for a meaningful prediction; with
          less, implementations fall back to a naive estimate. *)
  predict : float array -> float;
}

val of_fn : name:string -> ?min_history:int -> (float array -> float) -> t

val constant : float -> t
(** Always predicts the given value — useful as a pessimistic / optimistic
    oracle in tests and ablations. *)

val rolling_eval : t -> train:float array -> test:float array -> float array
(** One-step rolling forecast over [test]: the i-th prediction sees
    [train @ test[0..i-1]]. Returns the predictions (same length as
    [test]). *)

val rolling_mae : t -> train:float array -> test:float array -> float
(** MAE of {!rolling_eval} against [test] — the Table 2a protocol. *)
