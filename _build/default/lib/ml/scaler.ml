(* A scaler is the affine map x -> (x - shift) / span. *)
type t = { shift : float; span : float }

let fit_min_max ?(low = 0.0) ?(high = 1.0) xs =
  if Array.length xs = 0 then invalid_arg "Scaler.fit_min_max: empty";
  if high <= low then invalid_arg "Scaler.fit_min_max: empty target range";
  let lo = Array.fold_left Float.min infinity xs in
  let hi = Array.fold_left Float.max neg_infinity xs in
  if hi = lo then
    (* Constant series: map everything to the midpoint of the target. *)
    { shift = lo -. (((low +. high) /. 2.0) *. 1.0); span = 1.0 }
  else begin
    let span = (hi -. lo) /. (high -. low) in
    { shift = lo -. (low *. span); span }
  end

let fit_standard xs =
  if Array.length xs < 2 then invalid_arg "Scaler.fit_standard: need >= 2 points";
  let mean = Stats.Series.mean xs in
  let std = Stats.Series.stddev xs in
  let span = if std > 0.0 then std else 1.0 in
  { shift = mean; span }

let transform t x = (x -. t.shift) /. t.span

let inverse t y = (y *. t.span) +. t.shift

let transform_array t xs = Array.map (transform t) xs

let inverse_array t xs = Array.map (inverse t) xs
