(** Dense row-major float matrices and the linear algebra the forecasting
    models need: products, elementwise ops, transpose, and a pivoted
    Gaussian solver for the ARIMA/OLS normal equations. *)

type t = private { rows : int; cols : int; data : float array }

val create : int -> int -> t
(** Zero-filled [rows x cols] matrix. Raises [Invalid_argument] on
    non-positive dimensions. *)

val of_arrays : float array array -> t
(** Rows must be non-empty and equal length. *)

val init : int -> int -> (int -> int -> float) -> t

val random : Des.Rng.t -> int -> int -> scale:float -> t
(** Entries uniform in [(-scale, scale)] — standard small-weight init. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val copy : t -> t

val matmul : t -> t -> t
(** Raises [Invalid_argument] on dimension mismatch. *)

val mat_vec : t -> float array -> float array
(** [mat_vec m v] with [Array.length v = cols m]. *)

val vec_mat : float array -> t -> float array
(** Row vector times matrix. *)

val transpose : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val hadamard : t -> t
 -> t
val scale : float -> t -> t
val map : (float -> float) -> t -> t

val add_in_place : t -> t -> unit
(** [add_in_place acc m]: [acc <- acc + m]. *)

val scale_in_place : float -> t -> unit

val fill : t -> float -> unit

val outer : float array -> float array -> t
(** [outer u v] is the [|u| x |v|] rank-one product. *)

val frobenius_norm : t -> float

val solve : t -> float array -> float array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting. Raises [Failure] on a (numerically) singular system and
    [Invalid_argument] on shape mismatch. *)

val identity : int -> t
