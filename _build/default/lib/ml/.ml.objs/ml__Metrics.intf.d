lib/ml/metrics.mli:
