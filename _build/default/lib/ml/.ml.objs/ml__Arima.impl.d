lib/ml/arima.ml: Array Forecaster Matrix Printf Stats
