lib/ml/forecaster.mli:
