lib/ml/holt_winters.ml: Array Forecaster Printf
