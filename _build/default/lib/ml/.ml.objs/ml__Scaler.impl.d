lib/ml/scaler.ml: Array Float Stats
