lib/ml/forecaster.ml: Array Metrics
