lib/ml/matrix.mli: Des
