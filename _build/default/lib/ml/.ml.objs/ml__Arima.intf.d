lib/ml/arima.mli: Forecaster
