lib/ml/lstm.mli: Forecaster
