lib/ml/matrix.ml: Array Des Float
