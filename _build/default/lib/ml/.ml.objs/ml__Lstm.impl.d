lib/ml/lstm.ml: Array Des Float Forecaster List Scaler Stats
