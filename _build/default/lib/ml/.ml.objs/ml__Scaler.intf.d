lib/ml/scaler.mli:
