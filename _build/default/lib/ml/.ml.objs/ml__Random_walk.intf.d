lib/ml/random_walk.mli: Forecaster
