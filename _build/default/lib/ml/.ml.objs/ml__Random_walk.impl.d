lib/ml/random_walk.ml: Array Forecaster
