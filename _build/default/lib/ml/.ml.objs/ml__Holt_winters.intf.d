lib/ml/holt_winters.mli: Forecaster
