(** LSTM forecaster — the non-linear regression model of Table 2a.

    A single-layer LSTM (input size 1, configurable hidden size) with a
    linear read-out, trained by truncated back-propagation through time and
    Adam on supervised windows of the scaled training series. Everything is
    implemented from scratch: forward pass, BPTT gradients, optimizer,
    gradient clipping.

    This is deliberately a small model: the paper's point is only that a
    recurrent non-linear learner predicts the periodic Azure demand better
    than ARIMA and random walk, and a few thousand parameters suffice for
    that on the reproduced trace. *)

type config = {
  hidden : int;  (** hidden-state width (default 16) *)
  window : int;  (** input sequence length (default 24 epochs) *)
  epochs : int;  (** passes over the training windows (default 8) *)
  learning_rate : float;  (** Adam step size (default 5e-3) *)
  clip_norm : float;  (** global gradient-norm clip (default 1.0) *)
  seed : int64;  (** weight init + shuffling seed *)
}

val default_config : config

type t

val train : ?config:config -> float array -> t
(** [train series] fits the scaler and the network on [series] (the
    training split, original scale). Raises [Invalid_argument] when the
    series is shorter than [window + 2]. *)

val config : t -> config

val predict_next : t -> float array -> float
(** One-step forecast from the last [window] points of the history
    (original scale); persistence fallback on shorter histories. *)

val forecaster : t -> Forecaster.t

val training_losses : t -> float array
(** Mean squared loss per epoch, in training order — decreasing values are
    the cheap sanity check that learning happened. *)

val gradient_check : ?hidden:int -> ?window:int -> seed:int64 -> unit -> float
(** Builds a tiny random instance and returns the maximum relative error
    between analytic (BPTT) and central-finite-difference gradients over
    all parameters — should be well below 1e-4. Exposed for the test
    suite. *)
