let last_or_zero history =
  let n = Array.length history in
  if n = 0 then 0.0 else history.(n - 1)

let forecaster () =
  Forecaster.of_fn ~name:"random-walk" ~min_history:1 last_or_zero

let with_drift () =
  let predict history =
    let n = Array.length history in
    if n < 2 then last_or_zero history
    else begin
      let drift = (history.(n - 1) -. history.(0)) /. float_of_int (n - 1) in
      history.(n - 1) +. drift
    end
  in
  Forecaster.of_fn ~name:"random-walk-drift" ~min_history:2 predict
