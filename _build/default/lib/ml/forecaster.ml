type t = {
  name : string;
  min_history : int;
  predict : float array -> float;
}

let of_fn ~name ?(min_history = 1) predict = { name; min_history; predict }

let constant v = { name = "constant"; min_history = 0; predict = (fun _ -> v) }

let rolling_eval t ~train ~test =
  let n_test = Array.length test in
  let history = Array.make (Array.length train + n_test) 0.0 in
  Array.blit train 0 history 0 (Array.length train);
  let predictions = Array.make n_test 0.0 in
  for i = 0 to n_test - 1 do
    let len = Array.length train + i in
    predictions.(i) <- t.predict (Array.sub history 0 len);
    history.(len) <- test.(i)
  done;
  predictions

let rolling_mae t ~train ~test =
  let predicted = rolling_eval t ~train ~test in
  Metrics.mae ~actual:test ~predicted
