type model = {
  alpha : float;
  beta : float;
  gamma : float;
  period : int;
  level : float;
  trend : float;
  seasonal : float array;
}

let check_factor name x =
  if x <= 0.0 || x >= 1.0 then invalid_arg (Printf.sprintf "Holt_winters: %s outside (0,1)" name)

(* One smoothing step (additive seasonality). [s] indexes the seasonal
   slot of the observation. *)
let step m x s =
  let season = m.seasonal.(s) in
  let level' = (m.alpha *. (x -. season)) +. ((1.0 -. m.alpha) *. (m.level +. m.trend)) in
  let trend' = (m.beta *. (level' -. m.level)) +. ((1.0 -. m.beta) *. m.trend) in
  let seasonal' = Array.copy m.seasonal in
  seasonal'.(s) <- (m.gamma *. (x -. level')) +. ((1.0 -. m.gamma) *. season);
  { m with level = level'; trend = trend'; seasonal = seasonal' }

let smooth_through m series ~offset =
  let acc = ref m in
  Array.iteri (fun i x -> acc := step !acc x ((offset + i) mod m.period)) series;
  !acc

let fit ?(alpha = 0.3) ?(beta = 0.05) ?(gamma = 0.15) ~period series =
  check_factor "alpha" alpha;
  check_factor "beta" beta;
  check_factor "gamma" gamma;
  if period < 2 then invalid_arg "Holt_winters.fit: period must be >= 2";
  let n = Array.length series in
  if n < 2 * period then invalid_arg "Holt_winters.fit: need at least two periods";
  (* Initial components from the first two periods. *)
  let mean lo = Array.fold_left ( +. ) 0.0 (Array.sub series lo period) /. float_of_int period in
  let mean1 = mean 0 and mean2 = mean period in
  let level = mean1 in
  let trend = (mean2 -. mean1) /. float_of_int period in
  let seasonal = Array.init period (fun i -> series.(i) -. mean1) in
  let initial = { alpha; beta; gamma; period; level; trend; seasonal } in
  smooth_through initial (Array.sub series period (n - period)) ~offset:period

let predict_next model history =
  let n = Array.length history in
  if n = 0 then 0.0
  else if n < model.period then history.(n - 1)
  else begin
    (* Re-run the smoothing over the recent history so the forecast
       reflects the current phase; the fitted components are the prior. *)
    let window = min n (4 * model.period) in
    let recent = Array.sub history (n - window) window in
    (* Align the seasonal index so the forecast slot follows the history:
       slot of history.(i) = (n - window + i) mod period relative to the
       original series is unknowable, so phase is taken modulo from the
       history length, which preserves relative alignment across calls
       with growing histories. *)
    let offset = (n - window) mod model.period in
    let m = smooth_through model recent ~offset in
    m.level +. m.trend +. m.seasonal.(n mod model.period)
  end

let forecaster model =
  Forecaster.of_fn
    ~name:(Printf.sprintf "holt-winters(%d)" model.period)
    ~min_history:model.period (predict_next model)

let components model = (model.level, model.trend, Array.copy model.seasonal)
