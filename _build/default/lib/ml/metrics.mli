(** Forecast accuracy metrics (Table 2a reports MAE). *)

val mae : actual:float array -> predicted:float array -> float
(** Mean absolute error. Raises [Invalid_argument] on length mismatch or
    empty input. *)

val rmse : actual:float array -> predicted:float array -> float

val mape : actual:float array -> predicted:float array -> float
(** Mean absolute percentage error; zero actuals are skipped. *)

val smape : actual:float array -> predicted:float array -> float
(** Symmetric MAPE in [\[0, 200\]]. *)
