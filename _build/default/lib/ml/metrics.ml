let check actual predicted =
  let n = Array.length actual in
  if n = 0 then invalid_arg "Metrics: empty input";
  if n <> Array.length predicted then invalid_arg "Metrics: length mismatch";
  n

let mae ~actual ~predicted =
  let n = check actual predicted in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. Float.abs (actual.(i) -. predicted.(i))
  done;
  !acc /. float_of_int n

let rmse ~actual ~predicted =
  let n = check actual predicted in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. ((actual.(i) -. predicted.(i)) ** 2.0)
  done;
  sqrt (!acc /. float_of_int n)

let mape ~actual ~predicted =
  let n = check actual predicted in
  let acc = ref 0.0 and used = ref 0 in
  for i = 0 to n - 1 do
    if actual.(i) <> 0.0 then begin
      acc := !acc +. Float.abs ((actual.(i) -. predicted.(i)) /. actual.(i));
      incr used
    end
  done;
  if !used = 0 then nan else 100.0 *. !acc /. float_of_int !used

let smape ~actual ~predicted =
  let n = check actual predicted in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let denom = (Float.abs actual.(i) +. Float.abs predicted.(i)) /. 2.0 in
    if denom > 0.0 then
      acc := !acc +. (Float.abs (actual.(i) -. predicted.(i)) /. denom)
  done;
  100.0 *. !acc /. float_of_int n
