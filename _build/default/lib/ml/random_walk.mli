(** Random-walk (naive / persistence) forecaster: the next value equals the
    last observed value. The paper's baseline model in Table 2a. *)

val forecaster : unit -> Forecaster.t

val with_drift : unit -> Forecaster.t
(** Adds the mean historical step — random walk with drift. *)
