(** Holt–Winters (triple exponential smoothing) forecaster.

    An additive-seasonality exponential smoother: level, trend and a
    seasonal profile of a configurable period, updated online. For the
    strongly periodic cloud-demand data the paper targets, this is the
    classic lightweight alternative between a random walk and a learned
    model — and a natural drop-in for Samya's pluggable Prediction
    Module. *)

type model

val fit :
  ?alpha:float ->
  ?beta:float ->
  ?gamma:float ->
  period:int ->
  float array ->
  model
(** [fit ~period series] estimates initial level/trend/seasonal components
    from the first periods and then smooths through the rest.
    Smoothing factors default to [alpha = 0.3] (level), [beta = 0.05]
    (trend), [gamma = 0.15] (season). Raises [Invalid_argument] when the
    series is shorter than two periods or a factor is outside [(0, 1)]. *)

val predict_next : model -> float array -> float
(** One-step forecast given a history on the original scale: the model's
    smoothing is re-run over the tail of the history (last few periods),
    so the forecaster is stateless between calls like the others. *)

val forecaster : model -> Forecaster.t

val components : model -> float * float * float array
(** [(level, trend, seasonal profile)] after fitting — for tests. *)
