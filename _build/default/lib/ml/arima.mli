(** ARIMA(p, d, 0) forecaster — the linear-regression model of Table 2a.

    The series is differenced [d] times, an autoregression of order [p]
    (plus intercept, and optionally one seasonal AR term) is fitted by
    ordinary least squares on the training data, and one-step forecasts are
    integrated back to the original scale. A pure-AR ARIMA keeps estimation
    closed-form (normal equations) while retaining the model family's
    behaviour: it tracks local trend and autocorrelation, beating a random
    walk, but cannot capture the non-linear daily shape the LSTM learns. *)

type model

val fit : ?p:int -> ?d:int -> ?seasonal_lag:int -> float array -> model
(** Defaults [p = 3], [d = 1], no seasonal term. Raises [Invalid_argument]
    if the series is too short for the requested orders ([< p + d +
    seasonal_lag + 2] points). *)

val order : model -> int * int
(** [(p, d)]. *)

val coefficients : model -> float array
(** [[| intercept; phi_1; ...; phi_p; (seasonal) |]]. *)

val predict_next : model -> float array -> float
(** One-step forecast given a history on the original scale. Falls back to
    persistence while the history is shorter than the model needs. *)

val forecaster : model -> Forecaster.t
