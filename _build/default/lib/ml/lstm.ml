type config = {
  hidden : int;
  window : int;
  epochs : int;
  learning_rate : float;
  clip_norm : float;
  seed : int64;
}

let default_config =
  { hidden = 16; window = 24; epochs = 8; learning_rate = 5e-3; clip_norm = 1.0; seed = 7L }

(* All parameters live in one flat vector [theta]. Gate order within the
   4H pre-activation block: input | forget | cell(g) | output.

   Layout:  wx (4H)  |  wh (4H*H, row-major [gate*H + j])  |  b (4H)
          | wy (H)   |  by (1)                                           *)
type layout = { h : int; owx : int; owh : int; ob : int; owy : int; oby : int; size : int }

let make_layout h =
  let owx = 0 in
  let owh = owx + (4 * h) in
  let ob = owh + (4 * h * h) in
  let owy = ob + (4 * h) in
  let oby = owy + h in
  { h; owx; owh; ob; owy; oby; size = oby + 1 }

type t = {
  cfg : config;
  layout : layout;
  theta : float array;
  scaler : Scaler.t;
  losses : float array;
}

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

(* Forward pass over a window, returning the prediction and — when
   [caches] is given — the per-step activations needed by BPTT. *)
type step_cache = {
  x : float;
  i : float array;
  f : float array;
  g : float array;
  o : float array;
  c : float array;
  tanh_c : float array;
  h_prev : float array;
  c_prev : float array;
}

let forward layout theta xs ~caches =
  let h = layout.h in
  let h_state = ref (Array.make h 0.0) in
  let c_state = ref (Array.make h 0.0) in
  Array.iter
    (fun x ->
      let h_prev = !h_state and c_prev = !c_state in
      let i = Array.make h 0.0
      and f = Array.make h 0.0
      and g = Array.make h 0.0
      and o = Array.make h 0.0
      and c = Array.make h 0.0
      and tanh_c = Array.make h 0.0
      and h_new = Array.make h 0.0 in
      for k = 0 to (4 * h) - 1 do
        let acc = ref ((theta.(layout.owx + k) *. x) +. theta.(layout.ob + k)) in
        let row = layout.owh + (k * h) in
        for j = 0 to h - 1 do
          acc := !acc +. (theta.(row + j) *. h_prev.(j))
        done;
        let gate = k / h and unit = k mod h in
        (match gate with
        | 0 -> i.(unit) <- sigmoid !acc
        | 1 -> f.(unit) <- sigmoid !acc
        | 2 -> g.(unit) <- tanh !acc
        | _ -> o.(unit) <- sigmoid !acc)
      done;
      for unit = 0 to h - 1 do
        c.(unit) <- (f.(unit) *. c_prev.(unit)) +. (i.(unit) *. g.(unit));
        tanh_c.(unit) <- tanh c.(unit);
        h_new.(unit) <- o.(unit) *. tanh_c.(unit)
      done;
      (match caches with
      | None -> ()
      | Some stack ->
          stack := { x; i; f; g; o; c; tanh_c; h_prev; c_prev } :: !stack);
      h_state := h_new;
      c_state := c)
    xs;
  let y = ref theta.(layout.oby) in
  for j = 0 to h - 1 do
    y := !y +. (theta.(layout.owy + j) *. !h_state.(j))
  done;
  (!y, !h_state)

let predict_scaled layout theta xs = fst (forward layout theta xs ~caches:None)

(* Backward pass: accumulates d(loss)/d(theta) into [grad] for squared
   loss 0.5 * (y - target)^2 on one window. Returns the loss. *)
let backward layout theta xs target grad =
  let h = layout.h in
  let caches = ref [] in
  let y, h_last = forward layout theta xs ~caches:(Some caches) in
  let dy = y -. target in
  let loss = 0.5 *. dy *. dy in
  (* Read-out layer. *)
  grad.(layout.oby) <- grad.(layout.oby) +. dy;
  let dh = Array.make h 0.0 in
  for j = 0 to h - 1 do
    grad.(layout.owy + j) <- grad.(layout.owy + j) +. (dy *. h_last.(j));
    dh.(j) <- dy *. theta.(layout.owy + j)
  done;
  let dc = Array.make h 0.0 in
  let da = Array.make (4 * h) 0.0 in
  (* Walk time steps last-to-first; [caches] is already reversed. *)
  List.iter
    (fun cache ->
      for unit = 0 to h - 1 do
        let d_o = dh.(unit) *. cache.tanh_c.(unit) in
        dc.(unit) <-
          dc.(unit)
          +. (dh.(unit) *. cache.o.(unit) *. (1.0 -. (cache.tanh_c.(unit) *. cache.tanh_c.(unit))));
        let d_i = dc.(unit) *. cache.g.(unit) in
        let d_f = dc.(unit) *. cache.c_prev.(unit) in
        let d_g = dc.(unit) *. cache.i.(unit) in
        da.(unit) <- d_i *. cache.i.(unit) *. (1.0 -. cache.i.(unit));
        da.(h + unit) <- d_f *. cache.f.(unit) *. (1.0 -. cache.f.(unit));
        da.((2 * h) + unit) <- d_g *. (1.0 -. (cache.g.(unit) *. cache.g.(unit)));
        da.((3 * h) + unit) <- d_o *. cache.o.(unit) *. (1.0 -. cache.o.(unit))
      done;
      (* Parameter gradients and the recurrent back-flow. *)
      Array.fill dh 0 h 0.0;
      for k = 0 to (4 * h) - 1 do
        let dak = da.(k) in
        grad.(layout.owx + k) <- grad.(layout.owx + k) +. (dak *. cache.x);
        grad.(layout.ob + k) <- grad.(layout.ob + k) +. dak;
        let row = layout.owh + (k * h) in
        for j = 0 to h - 1 do
          grad.(row + j) <- grad.(row + j) +. (dak *. cache.h_prev.(j));
          dh.(j) <- dh.(j) +. (dak *. theta.(row + j))
        done
      done;
      for unit = 0 to h - 1 do
        dc.(unit) <- dc.(unit) *. cache.f.(unit)
      done)
    !caches;
  loss

(* Adam with bias correction and global-norm clipping. *)
type adam = {
  m : float array;
  v : float array;
  mutable step : int;
  lr : float;
  clip : float;
}

let adam_create size ~lr ~clip = { m = Array.make size 0.0; v = Array.make size 0.0; step = 0; lr; clip }

let adam_update opt theta grad =
  let beta1 = 0.9 and beta2 = 0.999 and eps = 1e-8 in
  let norm = sqrt (Array.fold_left (fun acc g -> acc +. (g *. g)) 0.0 grad) in
  let factor = if norm > opt.clip && norm > 0.0 then opt.clip /. norm else 1.0 in
  opt.step <- opt.step + 1;
  let t = float_of_int opt.step in
  let correction1 = 1.0 -. (beta1 ** t) and correction2 = 1.0 -. (beta2 ** t) in
  for k = 0 to Array.length theta - 1 do
    let g = grad.(k) *. factor in
    opt.m.(k) <- (beta1 *. opt.m.(k)) +. ((1.0 -. beta1) *. g);
    opt.v.(k) <- (beta2 *. opt.v.(k)) +. ((1.0 -. beta2) *. g *. g);
    let m_hat = opt.m.(k) /. correction1 in
    let v_hat = opt.v.(k) /. correction2 in
    theta.(k) <- theta.(k) -. (opt.lr *. m_hat /. (sqrt v_hat +. eps))
  done

let init_theta rng layout =
  (* Uniform(-s, s) with s scaled to fan-in; forget-gate bias starts at 1.0
     (standard trick: remember by default). *)
  let s = 1.0 /. sqrt (float_of_int layout.h) in
  let theta = Array.init layout.size (fun _ -> Des.Rng.float rng (2.0 *. s) -. s) in
  for unit = 0 to layout.h - 1 do
    theta.(layout.ob + layout.h + unit) <- 1.0
  done;
  theta.(layout.oby) <- 0.0;
  theta

let train ?(config = default_config) series =
  if Array.length series < config.window + 2 then
    invalid_arg "Lstm.train: series shorter than window + 2";
  let layout = make_layout config.hidden in
  let rng = Des.Rng.create config.seed in
  let theta = init_theta rng layout in
  let scaler = Scaler.fit_min_max ~low:0.0 ~high:1.0 series in
  let scaled = Scaler.transform_array scaler series in
  let pairs = Stats.Series.windows ~input:config.window scaled in
  let order = Array.init (Array.length pairs) (fun i -> i) in
  let grad = Array.make layout.size 0.0 in
  let opt = adam_create layout.size ~lr:config.learning_rate ~clip:config.clip_norm in
  let losses = Array.make config.epochs 0.0 in
  for epoch = 0 to config.epochs - 1 do
    Des.Rng.shuffle rng order;
    let epoch_loss = ref 0.0 in
    Array.iter
      (fun idx ->
        let xs, target = pairs.(idx) in
        Array.fill grad 0 layout.size 0.0;
        epoch_loss := !epoch_loss +. backward layout theta xs target grad;
        adam_update opt theta grad)
      order;
    losses.(epoch) <- !epoch_loss /. float_of_int (max 1 (Array.length pairs))
  done;
  { cfg = config; layout; theta; scaler; losses }

let config t = t.cfg

let training_losses t = Array.copy t.losses

let predict_next t history =
  let n = Array.length history in
  if n < t.cfg.window then (if n = 0 then 0.0 else history.(n - 1))
  else begin
    let window = Array.sub history (n - t.cfg.window) t.cfg.window in
    let scaled = Array.map (Scaler.transform t.scaler) window in
    Scaler.inverse t.scaler (predict_scaled t.layout t.theta scaled)
  end

let forecaster t =
  Forecaster.of_fn ~name:"lstm" ~min_history:t.cfg.window (predict_next t)

let gradient_check ?(hidden = 4) ?(window = 5) ~seed () =
  let layout = make_layout hidden in
  let rng = Des.Rng.create seed in
  let theta = init_theta rng layout in
  let xs = Array.init window (fun _ -> Des.Rng.float rng 1.0) in
  let target = Des.Rng.float rng 1.0 in
  let analytic = Array.make layout.size 0.0 in
  ignore (backward layout theta xs target analytic);
  let eps = 1e-5 in
  let worst = ref 0.0 in
  for k = 0 to layout.size - 1 do
    let saved = theta.(k) in
    theta.(k) <- saved +. eps;
    let y_plus = predict_scaled layout theta xs in
    let loss_plus = 0.5 *. ((y_plus -. target) ** 2.0) in
    theta.(k) <- saved -. eps;
    let y_minus = predict_scaled layout theta xs in
    let loss_minus = 0.5 *. ((y_minus -. target) ** 2.0) in
    theta.(k) <- saved;
    let numeric = (loss_plus -. loss_minus) /. (2.0 *. eps) in
    let denom = Float.max 1e-6 (Float.abs numeric +. Float.abs analytic.(k)) in
    let rel = Float.abs (numeric -. analytic.(k)) /. denom in
    if rel > !worst then worst := rel
  done;
  !worst
