type model = {
  p : int;
  d : int;
  seasonal_lag : int; (* 0 = none *)
  beta : float array; (* intercept :: AR coefficients (:: seasonal) *)
}

let rec difference times xs = if times = 0 then xs else difference (times - 1) (Stats.Series.diff xs)

(* Regressor vector for predicting the step after position [t] (inclusive
   end of history) of the differenced series [z]. *)
let regressors model z t =
  let terms = 1 + model.p + if model.seasonal_lag > 0 then 1 else 0 in
  let row = Array.make terms 1.0 in
  for i = 1 to model.p do
    row.(i) <- z.(t - i + 1)
  done;
  if model.seasonal_lag > 0 then row.(terms - 1) <- z.(t - model.seasonal_lag + 1);
  row

let fit ?(p = 3) ?(d = 1) ?(seasonal_lag = 0) series =
  if p < 1 then invalid_arg "Arima.fit: p must be >= 1";
  if d < 0 then invalid_arg "Arima.fit: d must be >= 0";
  if seasonal_lag < 0 then invalid_arg "Arima.fit: seasonal lag must be >= 0";
  let needed = p + d + seasonal_lag + 2 in
  if Array.length series < needed then invalid_arg "Arima.fit: series too short";
  let model0 = { p; d; seasonal_lag; beta = [||] } in
  let z = difference d series in
  let max_lag = max p seasonal_lag in
  let n = Array.length z in
  let terms = 1 + p + if seasonal_lag > 0 then 1 else 0 in
  (* Normal equations with a small ridge for numerical stability. *)
  let xtx = Matrix.create terms terms in
  let xty = Array.make terms 0.0 in
  for t = max_lag - 1 to n - 2 do
    let row = regressors model0 z t in
    let y = z.(t + 1) in
    for i = 0 to terms - 1 do
      xty.(i) <- xty.(i) +. (row.(i) *. y);
      for j = 0 to terms - 1 do
        Matrix.set xtx i j (Matrix.get xtx i j +. (row.(i) *. row.(j)))
      done
    done
  done;
  for i = 0 to terms - 1 do
    Matrix.set xtx i i (Matrix.get xtx i i +. 1e-6)
  done;
  let beta = Matrix.solve xtx xty in
  { model0 with beta }

let order model = (model.p, model.d)

let coefficients model = Array.copy model.beta

let predict_next model history =
  let n = Array.length history in
  let max_lag = max model.p model.seasonal_lag in
  if n < model.d + max_lag + 1 then (if n = 0 then 0.0 else history.(n - 1))
  else begin
    let z = difference model.d history in
    let zn = Array.length z in
    let row = regressors model z (zn - 1) in
    let dz = ref 0.0 in
    Array.iteri (fun i r -> dz := !dz +. (model.beta.(i) *. r)) row;
    (* Integrate the forecast back d times. For d = 1 this is
       last + dz; in general each level adds its own last value. *)
    let rec integrate level forecast =
      if level = 0 then forecast
      else begin
        let series = difference (level - 1) history in
        integrate (level - 1) (series.(Array.length series - 1) +. forecast)
      end
    in
    integrate model.d !dz
  end

let forecaster model =
  Forecaster.of_fn
    ~name:(Printf.sprintf "arima(%d,%d,0)" model.p model.d)
    ~min_history:(model.d + max model.p model.seasonal_lag + 1)
    (predict_next model)
