(** Feature scaling for the learners.

    LSTM training needs inputs in a small range; ARIMA benefits from
    centring. A scaler is fitted on training data only and then applied to
    both splits — fitting on the full series would leak test information. *)

type t

val fit_min_max : ?low:float -> ?high:float -> float array -> t
(** Affine map sending the observed min/max onto [\[low, high\]] (defaults
    [0, 1]). A constant series maps to the midpoint. *)

val fit_standard : float array -> t
(** Z-score scaler (zero mean, unit variance on the fit data). *)

val transform : t -> float -> float

val inverse : t -> float -> float
(** [inverse t (transform t x) = x] up to rounding. *)

val transform_array : t -> float array -> float array

val inverse_array : t -> float array -> float array
