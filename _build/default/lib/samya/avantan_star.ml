module Ballot = Consensus.Ballot

type env = {
  self : int;
  n_sites : int;
  send : int -> Protocol.msg -> unit;
  set_timer : delay_ms:float -> (unit -> unit) -> Des.Engine.timer;
  local_state : unit -> Protocol.site_entry;
  refresh_wanted : unit -> unit;
  on_outcome : Protocol.outcome -> unit;
  election_timeout_ms : float;
  accept_timeout_ms : float;
  cohort_timeout_ms : float;
  status_retry_ms : float;
}

type status = { s_accept_val : Protocol.value option; s_decision : bool }

type phase =
  | Idle
  | Leading_election of { bal : Ballot.t; responses : (int, Protocol.site_entry) Hashtbl.t }
  | Leading_accept of { bal : Ballot.t; value : Protocol.value; acks : (int, unit) Hashtbl.t }
  | Cohort_waiting of { bal : Ballot.t; leader : int }
  | Cohort_accepted of { bal : Ballot.t; leader : int; value : Protocol.value }
  | Recovering of { bal : Ballot.t; value : Protocol.value; replies : (int, status) Hashtbl.t }

type stats = {
  led_started : int;
  led_decided : int;
  led_aborted : int;
  participated : int;
  decisions_applied : int;
  recoveries : int;
}

type t = {
  env : env;
  mutable ballot : Ballot.t; (* highest ballot seen; instance ballots live in [phase] *)
  mutable phase : phase;
  mutable timer : Des.Engine.timer option;
  applied : (Ballot.t, Protocol.value) Hashtbl.t; (* origin -> decided value *)
  mutable s_led_started : int;
  mutable s_led_decided : int;
  mutable s_led_aborted : int;
  mutable s_participated : int;
  mutable s_applied : int;
  mutable s_recoveries : int;
}

let create env =
  {
    env;
    ballot = Ballot.zero env.self;
    phase = Idle;
    timer = None;
    applied = Hashtbl.create 32;
    s_led_started = 0;
    s_led_decided = 0;
    s_led_aborted = 0;
    s_participated = 0;
    s_applied = 0;
    s_recoveries = 0;
  }

let participating t = t.phase <> Idle

let ballot t = t.ballot

let stats t =
  {
    led_started = t.s_led_started;
    led_decided = t.s_led_decided;
    led_aborted = t.s_led_aborted;
    participated = t.s_participated;
    decisions_applied = t.s_applied;
    recoveries = t.s_recoveries;
  }

let stop_timer t =
  (match t.timer with Some timer -> Des.Engine.cancel timer | None -> ());
  t.timer <- None

let arm_timer t delay f =
  stop_timer t;
  t.timer <- Some (t.env.set_timer ~delay_ms:delay f)

let members value = Protocol.participants value

let send_members t value msg =
  List.iter (fun site -> if site <> t.env.self then t.env.send site msg) (members value)

let conclude t outcome =
  stop_timer t;
  t.phase <- Idle;
  t.env.on_outcome outcome

let apply_decision t (value : Protocol.value) =
  if Hashtbl.mem t.applied value.origin then begin
    if participating t then conclude t Protocol.Aborted
  end
  else begin
    Hashtbl.replace t.applied value.origin value;
    t.s_applied <- t.s_applied + 1;
    conclude t (Protocol.Decided value)
  end

(* The leader proceeds once the pooled spare can cover its own wants. *)
let satisfied t responses =
  let own = t.env.local_state () in
  let pooled =
    Hashtbl.fold (fun _ (e : Protocol.site_entry) acc -> acc + e.tokens_left) responses
      own.tokens_left
  in
  pooled >= own.tokens_wanted + own.tokens_left

let rec start t =
  if not (participating t) then begin
    t.ballot <- Ballot.next t.ballot ~site:t.env.self;
    t.s_led_started <- t.s_led_started + 1;
    let responses = Hashtbl.create 8 in
    let bal = t.ballot in
    t.phase <- Leading_election { bal; responses };
    for node = 0 to t.env.n_sites - 1 do
      if node <> t.env.self then t.env.send node (Protocol.Election_get_value { bal })
    done;
    arm_timer t t.env.election_timeout_ms (fun () -> on_election_timeout t);
    try_form t
  end

and on_election_timeout t =
  match t.phase with
  | Leading_election { bal; responses } ->
      let pooled =
        Hashtbl.fold (fun _ (e : Protocol.site_entry) acc -> acc + e.tokens_left) responses 0
      in
      if pooled > 0 then
        (* No more responders are coming, but those who answered do hold
           spare: form R_t from them — a partial redistribution keeps the
           minority partition serving (Fig. 3d). *)
        force_form t
      else begin
        (* Nothing to pool: abort and release everyone who may have locked
           onto this instance. *)
        t.s_led_aborted <- t.s_led_aborted + 1;
        Hashtbl.iter (fun site _ -> t.env.send site (Protocol.Discard { bal })) responses;
        for node = 0 to t.env.n_sites - 1 do
          if node <> t.env.self && not (Hashtbl.mem responses node) then
            t.env.send node (Protocol.Discard { bal })
        done;
        conclude t Protocol.Aborted
      end
  | Leading_accept _ | Cohort_waiting _ | Cohort_accepted _ | Recovering _ | Idle -> ()

and form t bal responses =
  let entries =
    (t.env.self, t.env.local_state ())
    :: Hashtbl.fold (fun site e acc -> (site, e) :: acc) responses []
    |> List.sort compare |> List.map snd
  in
  let value = Protocol.make_value ~origin:bal entries in
  (* Everyone outside R_t discards this instance. *)
  for node = 0 to t.env.n_sites - 1 do
    if node <> t.env.self && not (Protocol.mem_site value node) then
      t.env.send node (Protocol.Discard { bal })
  done;
  let acks = Hashtbl.create 8 in
  Hashtbl.replace acks t.env.self ();
  t.phase <- Leading_accept { bal; value; acks };
  send_members t value (Protocol.Accept_value { bal; value; decision = false });
  arm_timer t t.env.accept_timeout_ms (fun () -> on_accept_timeout t);
  try_decide t

and force_form t =
  match t.phase with
  | Leading_election { bal; responses } -> form t bal responses
  | Leading_accept _ | Cohort_waiting _ | Cohort_accepted _ | Recovering _ | Idle -> ()

and try_form t =
  match t.phase with
  | Leading_election { bal; responses } when satisfied t responses ->
      form t bal responses
  | Leading_election _ | Leading_accept _ | Cohort_waiting _ | Cohort_accepted _
  | Recovering _ | Idle ->
      ()

and on_accept_timeout t =
  match t.phase with
  | Leading_accept { bal; value; acks } ->
      (* Blocked until every participant acks: re-send to the laggards. *)
      List.iter
        (fun site ->
          if site <> t.env.self && not (Hashtbl.mem acks site) then
            t.env.send site (Protocol.Accept_value { bal; value; decision = false }))
        (members value);
      arm_timer t t.env.accept_timeout_ms (fun () -> on_accept_timeout t)
  | Leading_election _ | Cohort_waiting _ | Cohort_accepted _ | Recovering _ | Idle -> ()

and try_decide t =
  match t.phase with
  | Leading_accept { bal; value; acks }
    when List.for_all (fun site -> Hashtbl.mem acks site) (members value) ->
      t.s_led_decided <- t.s_led_decided + 1;
      send_members t value (Protocol.Decision { bal; value });
      apply_decision t value
  | Leading_accept _ | Leading_election _ | Cohort_waiting _ | Cohort_accepted _
  | Recovering _ | Idle ->
      ()

and on_cohort_timeout t =
  match t.phase with
  | Cohort_waiting _ ->
      (* Case (i): we never accepted a value, so the leader cannot have
         decided without our Accept-Ok — abort unilaterally. *)
      conclude t Protocol.Aborted
  | Cohort_accepted { bal; value; leader = _ } ->
      (* Case (ii): interrogate the participant set. *)
      t.s_recoveries <- t.s_recoveries + 1;
      let replies = Hashtbl.create 8 in
      t.phase <- Recovering { bal; value; replies };
      send_members t value (Protocol.Status_query { bal });
      arm_timer t t.env.status_retry_ms (fun () -> on_status_retry t)
  | Recovering _ | Leading_election _ | Leading_accept _ | Idle -> ()

and on_status_retry t =
  match t.phase with
  | Recovering { bal; value; replies } ->
      List.iter
        (fun site ->
          if site <> t.env.self && not (Hashtbl.mem replies site) then
            t.env.send site (Protocol.Status_query { bal }))
        (members value);
      arm_timer t t.env.status_retry_ms (fun () -> on_status_retry t)
  | Cohort_waiting _ | Cohort_accepted _ | Leading_election _ | Leading_accept _ | Idle -> ()

and evaluate_recovery t =
  match t.phase with
  | Recovering { bal; value; replies } ->
      let decided =
        Hashtbl.fold
          (fun _ s acc ->
            match acc with
            | Some _ -> acc
            | None -> if s.s_decision then s.s_accept_val else None)
          replies None
      in
      (match decided with
      | Some decided_value ->
          send_members t decided_value (Protocol.Decision { bal; value = decided_value });
          apply_decision t decided_value
      | None ->
          let someone_empty =
            Hashtbl.fold (fun _ s acc -> acc || s.s_accept_val = None) replies false
          in
          if someone_empty then begin
            (* Same as case (i): the leader can never assemble all acks. *)
            send_members t value (Protocol.Discard { bal });
            conclude t Protocol.Aborted
          end
          else begin
            (* Decide once every participant except the (failed) leader has
               confirmed the identical accepted value. *)
            let leader = value.Protocol.origin.Ballot.site in
            let needed =
              List.filter (fun site -> site <> t.env.self && site <> leader) (members value)
            in
            if List.for_all (fun site -> Hashtbl.mem replies site) needed then begin
              send_members t value (Protocol.Decision { bal; value });
              apply_decision t value
            end
          end)
  | Cohort_waiting _ | Cohort_accepted _ | Leading_election _ | Leading_accept _ | Idle -> ()

let status_for t ~bal =
  match t.phase with
  | Cohort_accepted { bal = b; value; _ } when Ballot.equal b bal ->
      { s_accept_val = Some value; s_decision = false }
  | Recovering { bal = b; value; _ } when Ballot.equal b bal ->
      { s_accept_val = Some value; s_decision = false }
  | Leading_accept { bal = b; value; _ } when Ballot.equal b bal ->
      { s_accept_val = Some value; s_decision = false }
  | _ -> (
      match Hashtbl.find_opt t.applied bal with
      | Some value -> { s_accept_val = Some value; s_decision = true }
      | None -> { s_accept_val = None; s_decision = false })

let handle t ~src msg =
  match msg with
  | Protocol.Election_get_value { bal } ->
      if participating t then t.env.send src (Protocol.Election_reject { bal = t.ballot })
      else if Ballot.(bal > t.ballot) then begin
        t.ballot <- bal;
        t.env.refresh_wanted ();
        let init_val = t.env.local_state () in
        t.s_participated <- t.s_participated + 1;
        t.phase <- Cohort_waiting { bal; leader = src };
        t.env.send src
          (Protocol.Election_ok_value
             { bal; init_val; accept_val = None; accept_num = Ballot.zero t.env.self;
               decision = false });
        arm_timer t t.env.cohort_timeout_ms (fun () -> on_cohort_timeout t)
      end
      else t.env.send src (Protocol.Election_reject { bal = t.ballot })
  | Protocol.Election_ok_value { bal; init_val; _ } -> (
      match t.phase with
      | Leading_election { bal = b; responses } when Ballot.equal b bal ->
          Hashtbl.replace responses src init_val;
          try_form t;
          (* Everyone answered and nothing can be pooled: waiting out the
             timer helps nobody, abort now. *)
          (match t.phase with
          | Leading_election { responses; _ }
            when Hashtbl.length responses >= t.env.n_sites - 1 ->
              on_election_timeout t
          | _ -> ())
      | Leading_election _ | Leading_accept _ | Cohort_waiting _ | Cohort_accepted _
      | Recovering _ | Idle ->
          (* Straggler from a closed collection: release it. *)
          t.env.send src (Protocol.Discard { bal }))
  | Protocol.Election_reject { bal } ->
      (* Keep our counter ahead so the next attempt is acceptable. *)
      if Ballot.(bal > t.ballot) then t.ballot <- { bal with Ballot.site = t.env.self }
  | Protocol.Accept_value { bal; value; decision = _ } -> (
      match t.phase with
      | Cohort_waiting { bal = b; leader } when Ballot.equal b bal && leader = src ->
          t.phase <- Cohort_accepted { bal; leader; value };
          t.env.send src (Protocol.Accept_ok { bal });
          arm_timer t t.env.cohort_timeout_ms (fun () -> on_cohort_timeout t)
      | Cohort_accepted { bal = b; leader; _ } when Ballot.equal b bal && leader = src ->
          (* Duplicate (leader retrying): re-ack. *)
          t.env.send src (Protocol.Accept_ok { bal })
      | Cohort_waiting _ | Cohort_accepted _ | Leading_election _ | Leading_accept _
      | Recovering _ | Idle ->
          ())
  | Protocol.Accept_ok { bal } -> (
      match t.phase with
      | Leading_accept { bal = b; acks; _ } when Ballot.equal b bal ->
          Hashtbl.replace acks src ();
          try_decide t
      | Leading_accept _ | Leading_election _ | Cohort_waiting _ | Cohort_accepted _
      | Recovering _ | Idle ->
          ())
  | Protocol.Decision { bal = _; value } -> apply_decision t value
  | Protocol.Discard { bal } -> (
      match t.phase with
      | Cohort_waiting { bal = b; _ } when Ballot.equal b bal -> conclude t Protocol.Aborted
      | Cohort_accepted { bal = b; _ } when Ballot.equal b bal -> conclude t Protocol.Aborted
      | Recovering { bal = b; _ } when Ballot.equal b bal -> conclude t Protocol.Aborted
      | Cohort_waiting _ | Cohort_accepted _ | Recovering _ | Leading_election _
      | Leading_accept _ | Idle ->
          ())
  | Protocol.Status_query { bal } ->
      let { s_accept_val; s_decision } = status_for t ~bal in
      t.env.send src
        (Protocol.Status_reply
           { bal; accept_val = s_accept_val; accept_num = bal; decision = s_decision })
  | Protocol.Status_reply { bal; accept_val; accept_num = _; decision } -> (
      match t.phase with
      | Recovering { bal = b; replies; _ } when Ballot.equal b bal ->
          Hashtbl.replace replies src { s_accept_val = accept_val; s_decision = decision };
          evaluate_recovery t
      | Recovering _ | Cohort_waiting _ | Cohort_accepted _ | Leading_election _
      | Leading_accept _ | Idle ->
          ())
