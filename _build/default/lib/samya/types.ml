type entity = string

type request =
  | Acquire of { entity : entity; amount : int }
  | Release of { entity : entity; amount : int }
  | Read of { entity : entity }

type response =
  | Granted
  | Rejected
  | Read_result of { tokens_available : int }
  | Unavailable

let request_entity = function
  | Acquire { entity; _ } | Release { entity; _ } | Read { entity } -> entity

let validate = function
  | Acquire { amount; _ } when amount <= 0 -> Error "acquireTokens: amount must be positive"
  | Release { amount; _ } when amount <= 0 -> Error "releaseTokens: amount must be positive"
  | Acquire _ | Release _ | Read _ -> Ok ()

let pp_request fmt = function
  | Acquire { entity; amount } -> Format.fprintf fmt "acquireTokens(%s, %d)" entity amount
  | Release { entity; amount } -> Format.fprintf fmt "releaseTokens(%s, %d)" entity amount
  | Read { entity } -> Format.fprintf fmt "readTokens(%s)" entity

let pp_response fmt = function
  | Granted -> Format.fprintf fmt "granted"
  | Rejected -> Format.fprintf fmt "rejected"
  | Read_result { tokens_available } -> Format.fprintf fmt "read(%d)" tokens_available
  | Unavailable -> Format.fprintf fmt "unavailable"
