type net_msg =
  | Avantan of { entity : Types.entity; msg : Protocol.msg }
  | Read_query of { entity : Types.entity; rid : int }
  | Read_reply of { entity : Types.entity; rid : int; tokens_left : int }
  | Recovery_query of { entity : Types.entity }
      (** a recovering site asks peers for decided values it may have
          missed while crashed *)
  | Recovery_reply of { entity : Types.entity; decisions : Protocol.value list }

type av = Maj of Avantan_majority.t | St of Avantan_star.t

type entity_ctx = {
  entity : Types.entity;
  mutable tokens_left : int;
  mutable tokens_wanted : int;
  mutable acquired_net : int;
  queue : (Types.request * (Types.response -> unit)) Queue.t;
  tracker : Demand_tracker.t;
      (** per-epoch net token consumption and peak concurrent draw *)
  applied_origins : (Consensus.Ballot.t, unit) Hashtbl.t;
      (** decisions already applied — each instance moves tokens exactly
          once, whether it arrives via the protocol or via recovery *)
  mutable decided_log : Protocol.value list;
      (** decisions this site has seen, newest first; answers the
          Recovery_query of a peer that was down when they happened *)
  mutable av : av option;
  mutable last_redistribution_ms : float;
  mutable last_proactive_check_ms : float;
  mutable backoff_ms : float;
      (** current redistribution spacing: the configured cooldown normally,
          doubled (capped) after each instance that failed to satisfy this
          site — triggering again during a global token famine only burns
          synchronization rounds *)
  mutable request_scale : float;
      (** multiplier on the requested headroom, halved after each
          unsatisfied instance: Algorithm 2's rejection is all-or-nothing,
          so when the pool runs low a site must shrink its ask to drain
          what remains instead of being rejected repeatedly *)
}

type read_ctx = {
  r_entity : Types.entity;
  mutable acc : int;
  mutable replies : int;
  r_reply : Types.response -> unit;
  mutable r_timer : Des.Engine.timer option;
}

type stats = {
  served_acquires : int;
  served_releases : int;
  served_reads : int;
  rejected : int;
  queued_peak : int;
  redistributions_led : int;
  redistributions_started : int;
  redistributions_aborted : int;
  proactive_triggers : int;
  reactive_triggers : int;
}

type t = {
  config : Config.t;
  engine : Des.Engine.t;
  network : net_msg Geonet.Network.t;
  site_id : int;
  n_sites : int;
  forecaster : Ml.Forecaster.t option;
  entities : (Types.entity, entity_ctx) Hashtbl.t;
  pending_reads : (int, read_ctx) Hashtbl.t;
  mutable next_rid : int;
  mutable is_alive : bool;
  mutable busy_until : float;
  mutable s_acquires : int;
  mutable s_releases : int;
  mutable s_reads : int;
  mutable s_rejected : int;
  mutable s_queued_peak : int;
  mutable s_proactive : int;
  mutable s_reactive : int;
}

let id t = t.site_id

let alive t = t.is_alive

(* ------------------------------------------------------------------ *)
(* Avantan plumbing                                                     *)

let av_start = function Maj a -> Avantan_majority.start a | St a -> Avantan_star.start a

let av_handle av ~src msg =
  match av with
  | Maj a -> Avantan_majority.handle a ~src msg
  | St a -> Avantan_star.handle a ~src msg

let av_participating = function
  | Maj a -> Avantan_majority.participating a
  | St a -> Avantan_star.participating a

let participating_ctx ctx = match ctx.av with Some av -> av_participating av | None -> false

(* ------------------------------------------------------------------ *)
(* Prediction                                                           *)

(* The token pool a site wants to hold: [buffer_epochs] worth of the
   predicted per-epoch net consumption (the forecaster's job), plus
   working capital covering the peak concurrent draw observed in recent
   epochs (intra-epoch bursts that releases later replenish). *)
let predicted_need t ctx =
  let net_history = Demand_tracker.history ctx.tracker in
  let net =
    match t.forecaster with
    | Some f -> f.Ml.Forecaster.predict net_history
    | None ->
        let n = Array.length net_history in
        if n = 0 then Demand_tracker.current_epoch_demand ctx.tracker
        else net_history.(n - 1)
  in
  let peaks = Demand_tracker.peak_history ctx.tracker in
  let capital =
    let n = Array.length peaks in
    if n = 0 then Demand_tracker.current_epoch_peak ctx.tracker
    else begin
      let window = min n 6 in
      Stats.Series.mean (Array.sub peaks (n - window) window)
    end
  in
  let target =
    (Float.max 0.0 net *. float_of_int t.config.Config.buffer_epochs)
    +. Float.max 0.0 capital
  in
  int_of_float (Float.ceil target)

(* High watermark: what a triggered redistribution asks for, shrunk while
   previous instances could not satisfy this site — Algorithm 2's
   rejection is all-or-nothing, so a site facing a shrinking pool must
   lower its ask to keep draining what remains. *)
let requested_pool t ctx need =
  int_of_float
    (Float.ceil (t.config.Config.request_headroom *. ctx.request_scale *. float_of_int need))

(* Algorithm 1 lines 9-11, run by cohorts before answering an election. *)
let refresh_wanted t ctx () =
  if t.config.Config.prediction_enabled then begin
    let need = predicted_need t ctx in
    if need > ctx.tokens_left then
      ctx.tokens_wanted <- max ctx.tokens_wanted (requested_pool t ctx need - ctx.tokens_left)
  end

(* ------------------------------------------------------------------ *)
(* Serving                                                              *)

let now t = Des.Engine.now t.engine

(* Requests occupy the site's CPU for [local_processing_ms] each; the
   reply carries the queueing-for-CPU delay, which is what saturates a
   hot site during demand spikes. *)
let reply_after_processing t reply response =
  let start = Float.max (now t) t.busy_until in
  let finish = start +. t.config.Config.local_processing_ms in
  t.busy_until <- finish;
  Des.Engine.schedule_at t.engine ~time_ms:finish (fun () -> reply response)

let cooldown_ok t ctx = now t -. ctx.last_redistribution_ms >= ctx.backoff_ms

(* A reactive trigger has a client in hand that local tokens cannot serve:
   it may redistribute immediately unless the site is backing off from a
   token famine (recent instances failed to satisfy it). *)
let reactive_ok t ctx =
  ctx.backoff_ms <= t.config.Config.redistribution_cooldown_ms || cooldown_ok t ctx

let register_outcome_satisfaction t ctx ~satisfied =
  if satisfied then begin
    ctx.backoff_ms <- t.config.Config.redistribution_cooldown_ms;
    ctx.request_scale <- 1.0
  end
  else begin
    ctx.backoff_ms <-
      Float.min (2.0 *. ctx.backoff_ms) (32.0 *. t.config.Config.redistribution_cooldown_ms);
    ctx.request_scale <- Float.max (ctx.request_scale /. 2.0) 0.05
  end

(* Serve a single acquire/release against local state. In [drain] mode the
   request was queued behind a redistribution that just ended, and an
   unservable acquire is rejected rather than triggering another
   instance. Returns [true] when served. *)
let rec serve_local t ctx request reply ~drain =
  match request with
  | Types.Release { amount; _ } ->
      ctx.tokens_left <- ctx.tokens_left + amount;
      ctx.acquired_net <- ctx.acquired_net - amount;
      t.s_releases <- t.s_releases + 1;
      reply_after_processing t reply Types.Granted
  | Types.Acquire { amount; _ } ->
      if not t.config.Config.enforce_constraint then begin
        ctx.acquired_net <- ctx.acquired_net + amount;
        t.s_acquires <- t.s_acquires + 1;
        reply_after_processing t reply Types.Granted
      end
      else if ctx.tokens_left >= amount then begin
        ctx.tokens_left <- ctx.tokens_left - amount;
        ctx.acquired_net <- ctx.acquired_net + amount;
        t.s_acquires <- t.s_acquires + 1;
        reply_after_processing t reply Types.Granted;
        if not drain then proactive_check t ctx
      end
      else if
        (not drain)
        && t.config.Config.redistribution_enabled
        && (not (participating_ctx ctx))
        && reactive_ok t ctx
      then begin
        (* Reactive redistribution (Equation 5); with prediction enabled
           the site folds its forecast buffer into the request so one
           synchronization covers the demand that is about to follow. *)
        t.s_reactive <- t.s_reactive + 1;
        let wanted =
          if t.config.Config.prediction_enabled then
            max amount (requested_pool t ctx (predicted_need t ctx) - ctx.tokens_left)
          else amount
        in
        ctx.tokens_wanted <- max ctx.tokens_wanted wanted;
        ctx.last_redistribution_ms <- now t;
        Queue.push (request, reply) ctx.queue;
        t.s_queued_peak <- max t.s_queued_peak (Queue.length ctx.queue);
        match ctx.av with Some av -> av_start av | None -> ()
      end
      else begin
        t.s_rejected <- t.s_rejected + 1;
        reply_after_processing t reply Types.Rejected
      end
  | Types.Read _ -> (* handled before dispatch *) assert false

(* Proactive redistribution (Equation 4): after serving an acquire,
   predict the next epoch in the background and trigger when the forecast
   exceeds the local pool. *)
and proactive_check t ctx =
  if
    t.config.Config.prediction_enabled
    && t.config.Config.redistribution_enabled
    && now t -. ctx.last_proactive_check_ms >= t.config.Config.proactive_check_ms
  then begin
    ctx.last_proactive_check_ms <- now t;
    let need = predicted_need t ctx in
    if need > ctx.tokens_left && (not (participating_ctx ctx)) && cooldown_ok t ctx then begin
      let wanted = requested_pool t ctx need - ctx.tokens_left in
      if wanted > 0 then begin
        t.s_proactive <- t.s_proactive + 1;
        ctx.tokens_wanted <- wanted;
        ctx.last_redistribution_ms <- now t;
        match ctx.av with Some av -> av_start av | None -> ()
      end
    end
  end

let drain_queue t ctx =
  let items = Queue.length ctx.queue in
  for _ = 1 to items do
    let request, reply = Queue.pop ctx.queue in
    if participating_ctx ctx then
      (* A re-triggered instance started while draining: keep queueing. *)
      Queue.push (request, reply) ctx.queue
    else
      (* [drain:false] lets an unservable acquire re-trigger a reactive
         redistribution (subject to famine backoff) instead of being
         rejected outright. *)
      serve_local t ctx request reply ~drain:false
  done

(* Apply a decided value's reallocation as a delta against the InitVal
   this site contributed — idempotent per instance (origin-keyed) and
   conserving under races; see DESIGN.md. Returns whether this site's
   request was satisfied (None when the value does not involve it or was
   already applied). *)
let apply_value t ctx (value : Protocol.value) =
  if Hashtbl.mem ctx.applied_origins value.Protocol.origin then None
  else begin
    Hashtbl.replace ctx.applied_origins value.Protocol.origin ();
    ctx.decided_log <- value :: ctx.decided_log;
    let mine =
      List.find_opt (fun (e : Protocol.site_entry) -> e.site = t.site_id)
        value.Protocol.entries
    in
    match mine with
    | Some init_entry ->
        let grants =
          Reallocation.redistribute_with t.config.Config.reallocation_policy
            value.Protocol.entries
        in
        let grant = List.find (fun (g : Reallocation.grant) -> g.site = t.site_id) grants in
        let delta = grant.Reallocation.new_tokens_left - init_entry.tokens_left in
        ctx.tokens_left <- ctx.tokens_left + delta;
        Some (init_entry.tokens_wanted = 0 || grant.Reallocation.wanted_satisfied)
    | None -> None
  end

(* Protocol instance finished: apply the decision and serve the queue. *)
let on_outcome t ctx outcome =
  ctx.last_redistribution_ms <- now t;
  (match outcome with
  | Protocol.Decided value ->
      (match apply_value t ctx value with
      | Some satisfied -> register_outcome_satisfaction t ctx ~satisfied
      | None -> ());
      ctx.tokens_wanted <- 0
  | Protocol.Aborted ->
      register_outcome_satisfaction t ctx ~satisfied:(ctx.tokens_wanted = 0);
      ctx.tokens_wanted <- 0);
  drain_queue t ctx

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)

let make_av t ctx =
  let send dst msg =
    Geonet.Network.send t.network ~src:t.site_id ~dst (Avantan { entity = ctx.entity; msg })
  in
  let set_timer ~delay_ms f =
    Des.Engine.timer t.engine ~delay_ms (fun () -> if t.is_alive then f ())
  in
  let local_state () =
    {
      Protocol.site = t.site_id;
      tokens_left = ctx.tokens_left;
      tokens_wanted = ctx.tokens_wanted;
    }
  in
  match t.config.Config.variant with
  | Config.Majority ->
      Maj
        (Avantan_majority.create
           {
             Avantan_majority.self = t.site_id;
             n_sites = t.n_sites;
             send;
             set_timer;
             local_state;
             refresh_wanted = refresh_wanted t ctx;
             on_outcome = on_outcome t ctx;
             election_timeout_ms = t.config.Config.election_timeout_ms;
             accept_timeout_ms = t.config.Config.accept_timeout_ms;
             cohort_timeout_ms = t.config.Config.cohort_timeout_ms;
           })
  | Config.Star ->
      St
        (Avantan_star.create
           {
             Avantan_star.self = t.site_id;
             n_sites = t.n_sites;
             send;
             set_timer;
             local_state;
             refresh_wanted = refresh_wanted t ctx;
             on_outcome = on_outcome t ctx;
             election_timeout_ms = t.config.Config.election_timeout_ms;
             accept_timeout_ms = t.config.Config.accept_timeout_ms;
             cohort_timeout_ms = t.config.Config.cohort_timeout_ms;
             status_retry_ms = t.config.Config.status_retry_ms;
           })

let get_ctx t entity = Hashtbl.find_opt t.entities entity

let init_entity t ~entity ~tokens =
  if tokens < 0 then invalid_arg "Site.init_entity: negative tokens";
  let ctx =
    {
      entity;
      tokens_left = tokens;
      tokens_wanted = 0;
      acquired_net = 0;
      queue = Queue.create ();
      tracker =
        Demand_tracker.create ~engine:t.engine ~epoch_ms:t.config.Config.epoch_ms
          ~capacity:t.config.Config.history_epochs;
      applied_origins = Hashtbl.create 64;
      decided_log = [];
      av = None;
      last_redistribution_ms = neg_infinity;
      last_proactive_check_ms = neg_infinity;
      backoff_ms = t.config.Config.redistribution_cooldown_ms;
      request_scale = 1.0;
    }
  in
  ctx.av <- Some (make_av t ctx);
  Hashtbl.replace t.entities entity ctx;
  (* Anti-entropy: periodically reconcile missed decisions (a lost
     Decision message or an aborted recovery must not leave this site's
     contribution un-applied forever). *)
  if t.config.Config.anti_entropy_ms > 0.0 then begin
    let rec gossip () =
      Des.Engine.schedule t.engine ~delay_ms:t.config.Config.anti_entropy_ms (fun () ->
          if t.is_alive then
            Geonet.Network.broadcast t.network ~src:t.site_id (Recovery_query { entity });
          gossip ())
    in
    gossip ()
  end

(* ------------------------------------------------------------------ *)
(* Reads: global snapshot by fan-out (§5.8)                             *)

let finish_read t rid =
  match Hashtbl.find_opt t.pending_reads rid with
  | None -> ()
  | Some read ->
      (match read.r_timer with Some timer -> Des.Engine.cancel timer | None -> ());
      Hashtbl.remove t.pending_reads rid;
      t.s_reads <- t.s_reads + 1;
      reply_after_processing t read.r_reply
        (Types.Read_result { tokens_available = read.acc })

let serve_read t ~entity reply =
  let own = match get_ctx t entity with Some ctx -> ctx.tokens_left | None -> 0 in
  if t.n_sites = 1 then begin
    t.s_reads <- t.s_reads + 1;
    reply_after_processing t reply (Types.Read_result { tokens_available = own })
  end
  else begin
    let rid = t.next_rid in
    t.next_rid <- t.next_rid + 1;
    let read = { r_entity = entity; acc = own; replies = 0; r_reply = reply; r_timer = None } in
    Hashtbl.replace t.pending_reads rid read;
    read.r_timer <-
      Some
        (Des.Engine.timer t.engine ~delay_ms:t.config.Config.read_timeout_ms (fun () ->
             if t.is_alive then finish_read t rid));
    Geonet.Network.broadcast t.network ~src:t.site_id (Read_query { entity; rid })
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)

let submit t request ~reply =
  if not t.is_alive then reply Types.Unavailable
  else
    match Types.validate request with
    | Error _ -> reply Types.Rejected
    | Ok () -> (
        let entity = Types.request_entity request in
        match request with
        | Types.Read _ -> serve_read t ~entity reply
        | Types.Acquire { amount; _ } -> (
            match get_ctx t entity with
            | None -> reply Types.Rejected
            | Some ctx ->
                Demand_tracker.record ctx.tracker ~amount;
                if participating_ctx ctx then begin
                  Queue.push (request, reply) ctx.queue;
                  t.s_queued_peak <- max t.s_queued_peak (Queue.length ctx.queue)
                end
                else serve_local t ctx request reply ~drain:false)
        | Types.Release { amount; _ } -> (
            match get_ctx t entity with
            | None -> reply Types.Rejected
            | Some ctx ->
                Demand_tracker.record ctx.tracker ~amount:(-amount);
                if participating_ctx ctx then begin
                  Queue.push (request, reply) ctx.queue;
                  t.s_queued_peak <- max t.s_queued_peak (Queue.length ctx.queue)
                end
                else serve_local t ctx request reply ~drain:false))

let handle_net t ~src msg =
  if t.is_alive then
    match msg with
    | Avantan { entity; msg } -> (
        match get_ctx t entity with
        | Some ctx -> ( match ctx.av with Some av -> av_handle av ~src msg | None -> ())
        | None -> ())
    | Read_query { entity; rid } ->
        let tokens_left =
          match get_ctx t entity with Some ctx -> ctx.tokens_left | None -> 0
        in
        Geonet.Network.send t.network ~src:t.site_id ~dst:src
          (Read_reply { entity; rid; tokens_left })
    | Read_reply { entity = _; rid; tokens_left } -> (
        match Hashtbl.find_opt t.pending_reads rid with
        | None -> ()
        | Some read ->
            read.acc <- read.acc + tokens_left;
            read.replies <- read.replies + 1;
            if read.replies >= t.n_sites - 1 then finish_read t rid)
    | Recovery_query { entity } -> (
        match get_ctx t entity with
        | None -> ()
        | Some ctx ->
            (* Send back the decisions that involve the recovering peer:
               those are the instances that may have moved its tokens. *)
            let relevant =
              List.filter (fun value -> Protocol.mem_site value src) ctx.decided_log
            in
            if relevant <> [] then
              Geonet.Network.send t.network ~src:t.site_id ~dst:src
                (Recovery_reply { entity; decisions = relevant }))
    | Recovery_reply { entity; decisions } -> (
        match get_ctx t entity with
        | None -> ()
        | Some ctx ->
            (* Apply missed decisions in instance order; the origin-keyed
               dedupe makes overlapping peer replies harmless. *)
            let ordered =
              List.sort
                (fun (a : Protocol.value) (b : Protocol.value) ->
                  Consensus.Ballot.compare a.Protocol.origin b.Protocol.origin)
                decisions
            in
            List.iter (fun value -> ignore (apply_value t ctx value)) ordered)

let create ~config ~network ~id ?forecaster () =
  (match Config.validate config with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Site.create: " ^ reason));
  let t =
    {
      config;
      engine = Geonet.Network.engine network;
      network;
      site_id = id;
      n_sites = Geonet.Network.node_count network;
      forecaster;
      entities = Hashtbl.create 4;
      pending_reads = Hashtbl.create 16;
      next_rid = 0;
      is_alive = true;
      busy_until = 0.0;
      s_acquires = 0;
      s_releases = 0;
      s_reads = 0;
      s_rejected = 0;
      s_queued_peak = 0;
      s_proactive = 0;
      s_reactive = 0;
    }
  in
  Geonet.Network.register network ~node:id (fun envelope ->
      handle_net t ~src:envelope.Geonet.Network.src envelope.Geonet.Network.payload);
  t

(* ------------------------------------------------------------------ *)
(* Accessors / failure injection                                        *)

let with_ctx t entity f = match get_ctx t entity with Some ctx -> f ctx | None -> 0

let tokens_left t ~entity = with_ctx t entity (fun ctx -> ctx.tokens_left)
let tokens_wanted t ~entity = with_ctx t entity (fun ctx -> ctx.tokens_wanted)
let acquired_net t ~entity = with_ctx t entity (fun ctx -> ctx.acquired_net)
let queued t ~entity = with_ctx t entity (fun ctx -> Queue.length ctx.queue)

let participating t ~entity =
  match get_ctx t entity with Some ctx -> participating_ctx ctx | None -> false

let crash t =
  t.is_alive <- false;
  Geonet.Network.crash t.network t.site_id;
  Hashtbl.iter (fun _ ctx -> Queue.clear ctx.queue) t.entities;
  Hashtbl.reset t.pending_reads

let recover t =
  t.is_alive <- true;
  Geonet.Network.recover t.network t.site_id;
  (* Catch up on redistributions decided while we were down: peers answer
     with any decision our InitVal took part in. *)
  Hashtbl.iter
    (fun entity _ ->
      Geonet.Network.broadcast t.network ~src:t.site_id (Recovery_query { entity }))
    t.entities

let stats t =
  let led, started, aborted =
    Hashtbl.fold
      (fun _ ctx (led, started, aborted) ->
        match ctx.av with
        | Some (Maj a) ->
            let s = Avantan_majority.stats a in
            ( led + s.Avantan_majority.led_decided,
              started + s.Avantan_majority.led_started,
              aborted + s.Avantan_majority.led_aborted )
        | Some (St a) ->
            let s = Avantan_star.stats a in
            ( led + s.Avantan_star.led_decided,
              started + s.Avantan_star.led_started,
              aborted + s.Avantan_star.led_aborted )
        | None -> (led, started, aborted))
      t.entities (0, 0, 0)
  in
  {
    served_acquires = t.s_acquires;
    served_releases = t.s_releases;
    served_reads = t.s_reads;
    rejected = t.s_rejected;
    queued_peak = t.s_queued_peak;
    redistributions_led = led;
    redistributions_started = started;
    redistributions_aborted = aborted;
    proactive_triggers = t.s_proactive;
    reactive_triggers = t.s_reactive;
  }
