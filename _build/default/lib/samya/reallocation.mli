(** Deterministic token reallocation — Algorithm 2 of the paper.

    Input: the agreed list [L_t] of per-site states [(TokensLeft,
    TokensWanted)] for the sites in [R_t]. All participants run this pure
    procedure on the same input and therefore compute the same outcome
    without further communication.

    Semantics, following the paper:
    - spare [S_t] = sum of all TokensLeft; total wanted = sum of TokensWanted;
    - if wanted exceeds spare, requests are rejected greedily in ascending
      order of TokensWanted — smallest first, maximising overall token
      usage — until the remaining demand fits the spare pool. (The paper's
      pseudo-code phrases the stopping test as "increasing the spare
      quantity"; rejecting a request shrinks outstanding demand by the same
      amount, which is the interpretation implemented and tested here.)
    - every surviving request is granted in full, and any leftover spare is
      split equally, with the integer remainder assigned in ascending
      site-id order so that tokens are conserved exactly.

    The procedure is pluggable at the {!Site} level; this is the default. *)

type entry = { site : int; tokens_left : int; tokens_wanted : int }

type grant = {
  site : int;
  new_tokens_left : int;  (** the site's whole post-redistribution pool *)
  wanted_satisfied : bool;  (** false iff this site's request was rejected *)
}

val redistribute : entry list -> grant list
(** Result is in ascending site order. Raises [Invalid_argument] on
    duplicate sites or negative token counts. *)

(** Alternative strategies for the pluggable Redistribution Module. All
    conserve tokens exactly and never grant more than the pool; they
    differ in how scarcity is shared:

    - [Max_usage]: the paper's Algorithm 2 — reject the smallest requests
      first, maximising overall token usage ({!redistribute}).
    - [Max_requests]: reject the {e largest} requests first, maximising
      the number of satisfied requests.
    - [Proportional]: under scarcity every request is scaled by
      [spare / total_wanted] (no all-or-nothing rejection); leftovers
      split equally as usual. [wanted_satisfied] is true only for fully
      served requests. *)
type policy = Max_usage | Max_requests | Proportional

val default_policy : policy

val policy_name : policy -> string

val redistribute_with : policy -> entry list -> grant list
(** Every participant must run the same policy: the procedure is
    deterministic so sites agree on the outcome without communication. *)

val spare : entry list -> int
(** Total spare tokens [S_t]. *)

val total_wanted : entry list -> int

val conserves_tokens : entry list -> grant list -> bool
(** [sum new_tokens_left = sum tokens_left] — the safety check behind
    Equation 1, used by tests and runtime assertions. *)
