(** Avantan[(n+1)/2] — the majority-quorum redistribution protocol
    (Algorithm 1, §4.3.1).

    Three rounds / five phases per instance:

    + {b Election-GetValue}: the triggering site increments its ballot and
      solicits every site's entity state.
    + {b ElectionOk-Value}: cohorts with a lower ballot promise, refresh
      their [TokensWanted] from their own prediction, and reply with their
      InitVal plus any previously accepted value (for recovery).
    + {b Accept-Value}: with a majority of replies the leader constructs
      [AcceptVal] — a decided value from any reply that has one, else the
      highest-[AcceptNum] accepted value, else the concatenation of the
      collected InitVals — and stores it fault-tolerantly.
    + {b Accept-Ok}: cohorts with ballot at most the leader's accept.
    + {b Decision}: on a majority of acks the leader decides and
      distributes the decision asynchronously.

    Recovery follows the paper: a cohort that times out runs the same
    leader code with a higher ballot; quorum intersection forces it to
    adopt any possibly-decided value (Theorem 1). A leader that cannot
    assemble a majority in phase 1 aborts (it constructed nothing), telling
    responders to discard; a leader that stored a value but cannot gather
    majority acks re-broadcasts until a majority is back — the blocking
    case §4.3.1 describes.

    The machine is transport-agnostic and engine-driven like the
    {!Consensus} protocols; {!Site} owns request queueing and applies
    decided values through {!Reallocation}. *)

type env = {
  self : int;
  n_sites : int;
  send : int -> Protocol.msg -> unit;
  set_timer : delay_ms:float -> (unit -> unit) -> Des.Engine.timer;
  local_state : unit -> Protocol.site_entry;
      (** snapshot of the entity's [TokensLeft]/[TokensWanted] at this site *)
  refresh_wanted : unit -> unit;
      (** lines 9–11: re-predict and raise [TokensWanted] before answering
          an election (a no-op when prediction is disabled) *)
  on_outcome : Protocol.outcome -> unit;
      (** participation ended: a value was decided (apply it and drain the
          queue) or the instance aborted *)
  election_timeout_ms : float;
  accept_timeout_ms : float;
  cohort_timeout_ms : float;
}

type t

val create : env -> t

val start : t -> unit
(** Trigger a redistribution as leader. No-op unless {!participating} is
    [false]. *)

val handle : t -> src:int -> Protocol.msg -> unit

val participating : t -> bool
(** [true] while this site's InitVal is exposed to a live instance — the
    interval during which the owning site must queue client requests. *)

val ballot : t -> Consensus.Ballot.t

type stats = {
  led_started : int;  (** instances this site started or recovered *)
  led_decided : int;  (** instances this site drove to decision *)
  led_aborted : int;  (** phase-1 aborts *)
  participated : int;  (** instances joined as cohort *)
  decisions_applied : int;
}

val stats : t -> stats
