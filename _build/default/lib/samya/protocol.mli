(** Wire messages of the Avantan redistribution protocols (§4.3).

    Both variants share the message vocabulary; they differ in quorum rules,
    participation and recovery, implemented in {!Avantan_majority} and
    {!Avantan_star}. [AcceptVal] is a {e list} of per-site states — the key
    departure from Paxos, where the value is a single client proposal. *)

module Ballot = Consensus.Ballot

type site_entry = Reallocation.entry = {
  site : int;
  tokens_left : int;
  tokens_wanted : int;
}

type value = {
  origin : Ballot.t;
      (** the ballot at which this value was first constructed (line 22 of
          Algorithm 1). Recovery leaders adopt a value {e unchanged}, so
          [origin] uniquely identifies the redistribution instance even
          when the same value is re-driven and decided under a higher
          ballot — sites use it to apply each decision exactly once. *)
  entries : site_entry list;  (** the list [L_t] of InitVals of [R_t] *)
}

val make_value : origin:Ballot.t -> site_entry list -> value

val participants : value -> int list
(** Site ids present in a value, ascending. *)

val mem_site : value -> int -> bool

val value_equal : value -> value -> bool

type msg =
  | Election_get_value of { bal : Ballot.t }
      (** leader: phase-1 solicitation (leader election + value collection) *)
  | Election_ok_value of {
      bal : Ballot.t;
      init_val : site_entry;
      accept_val : value option;
      accept_num : Ballot.t;
      decision : bool;
    }  (** cohort: promise carrying its state and any accepted value *)
  | Election_reject of { bal : Ballot.t }
      (** Avantan[*]: cohort is locked in another instance *)
  | Accept_value of { bal : Ballot.t; value : value; decision : bool }
      (** leader: phase-2 fault-tolerant storage of the constructed value *)
  | Accept_ok of { bal : Ballot.t }
  | Decision of { bal : Ballot.t; value : value }
      (** asynchronous decision distribution *)
  | Discard of { bal : Ballot.t }
      (** leader aborted the instance; cohorts unlock and resume *)
  | Status_query of { bal : Ballot.t }
      (** Avantan[*] recovery: interrogate the other participants *)
  | Status_reply of {
      bal : Ballot.t;
      accept_val : value option;
      accept_num : Ballot.t;
      decision : bool;
    }

val pp_msg : Format.formatter -> msg -> unit

val msg_ballot : msg -> Ballot.t

(** Outcome reported to the site when an instance finishes. *)
type outcome =
  | Decided of value
  | Aborted  (** instance abandoned; site serves locally what it can *)
