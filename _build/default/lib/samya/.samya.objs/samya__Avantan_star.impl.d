lib/samya/avantan_star.ml: Consensus Des Hashtbl List Protocol
