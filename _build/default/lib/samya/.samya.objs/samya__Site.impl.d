lib/samya/site.ml: Array Avantan_majority Avantan_star Config Consensus Demand_tracker Des Float Geonet Hashtbl List Ml Protocol Queue Reallocation Stats Types
