lib/samya/cluster.ml: Array Des Geonet Printf Site Types
