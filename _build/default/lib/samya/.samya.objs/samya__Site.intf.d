lib/samya/site.mli: Config Geonet Ml Protocol Types
