lib/samya/avantan_majority.ml: Consensus Des Hashtbl List Protocol
