lib/samya/reallocation.mli:
