lib/samya/avantan_majority.mli: Consensus Des Protocol
