lib/samya/types.ml: Format
