lib/samya/demand_tracker.ml: Array Des
