lib/samya/protocol.mli: Consensus Format Reallocation
