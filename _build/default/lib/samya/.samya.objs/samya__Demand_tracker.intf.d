lib/samya/demand_tracker.mli: Des
