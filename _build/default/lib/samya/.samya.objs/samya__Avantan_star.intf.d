lib/samya/avantan_star.mli: Consensus Des Protocol
