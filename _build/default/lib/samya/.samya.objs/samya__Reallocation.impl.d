lib/samya/reallocation.ml: Hashtbl List
