lib/samya/types.mli: Format
