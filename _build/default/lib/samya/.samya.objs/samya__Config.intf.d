lib/samya/config.mli: Reallocation
