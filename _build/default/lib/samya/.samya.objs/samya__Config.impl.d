lib/samya/config.ml: Reallocation
