lib/samya/protocol.ml: Consensus Format List Reallocation
