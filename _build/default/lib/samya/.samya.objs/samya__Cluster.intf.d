lib/samya/cluster.mli: Config Des Geonet Ml Site Types
