(** Per-epoch demand history at a site.

    Feeds the Prediction Module: every acquire request's token amount is
    recorded into the current epoch's bucket; completed epochs form the
    history the forecaster extrapolates from (§4.2). *)

type t

val create : engine:Des.Engine.t -> epoch_ms:float -> capacity:int -> t
(** Keeps up to [capacity] completed epochs. *)

val record : t -> amount:int -> unit
(** Adds demand at the engine's current time. *)

val history : t -> float array
(** Completed epochs' net demand, oldest first (empty epochs included as
    zeros). With signed recording (acquire [+], release [-]) this is the
    per-epoch net consumption the forecaster extrapolates. *)

val peak_history : t -> float array
(** Per completed epoch: the maximum of the running demand sum within the
    epoch — the peak concurrent token draw, i.e. the working capital a
    site needed at that epoch's worst moment. *)

val current_epoch_demand : t -> float
(** Demand accumulated so far in the not-yet-complete epoch. *)

val current_epoch_peak : t -> float

val epoch_index : t -> int
(** Index of the current epoch (floor(now / epoch_ms)). *)
