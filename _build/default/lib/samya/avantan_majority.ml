module Ballot = Consensus.Ballot

type env = {
  self : int;
  n_sites : int;
  send : int -> Protocol.msg -> unit;
  set_timer : delay_ms:float -> (unit -> unit) -> Des.Engine.timer;
  local_state : unit -> Protocol.site_entry;
  refresh_wanted : unit -> unit;
  on_outcome : Protocol.outcome -> unit;
  election_timeout_ms : float;
  accept_timeout_ms : float;
  cohort_timeout_ms : float;
}

(* What a cohort tells a prospective leader; the leader's own state is
   stored in the same form. *)
type report = {
  init_val : Protocol.site_entry;
  r_accept_val : Protocol.value option;
  r_accept_num : Ballot.t;
  r_decision : bool;
}

type phase =
  | Idle
  | Leading_election of { responses : (int, report) Hashtbl.t }
  | Leading_accept of { value : Protocol.value; acks : (int, unit) Hashtbl.t }
  | Cohort_waiting  (** promised; InitVal exposed; awaiting Accept-Value *)
  | Cohort_accepted  (** accepted a value; awaiting Decision *)

type stats = {
  led_started : int;
  led_decided : int;
  led_aborted : int;
  participated : int;
  decisions_applied : int;
}

type t = {
  env : env;
  mutable ballot : Ballot.t;
  mutable accept_val : Protocol.value option;
  mutable accept_num : Ballot.t;
  mutable decision : bool;
  mutable phase : phase;
  mutable exposed : bool;
      (* true from the moment our InitVal leaves this site (leading, or an
         ElectionOk sent) until the instance concludes; while exposed the
         site queues client traffic *)
  mutable timer : Des.Engine.timer option;
  mutable in_recovery : bool;
      (* true while re-running the leader code because a leader we promised
         to went silent; if we also hold an accepted value, election
         timeouts must retry (stay blocked) rather than abort, since that
         value may have been decided (§4.3.1) *)
  mutable last_applied_origin : Ballot.t option;
  mutable s_led_started : int;
  mutable s_led_decided : int;
  mutable s_led_aborted : int;
  mutable s_participated : int;
  mutable s_applied : int;
}

let create env =
  {
    env;
    ballot = Ballot.zero env.self;
    accept_val = None;
    accept_num = Ballot.zero env.self;
    decision = false;
    phase = Idle;
    exposed = false;
    timer = None;
    in_recovery = false;
    last_applied_origin = None;
    s_led_started = 0;
    s_led_decided = 0;
    s_led_aborted = 0;
    s_participated = 0;
    s_applied = 0;
  }

let majority t = (t.env.n_sites / 2) + 1

let participating t = t.exposed

let ballot t = t.ballot

let stats t =
  {
    led_started = t.s_led_started;
    led_decided = t.s_led_decided;
    led_aborted = t.s_led_aborted;
    participated = t.s_participated;
    decisions_applied = t.s_applied;
  }

let stop_timer t =
  (match t.timer with Some timer -> Des.Engine.cancel timer | None -> ());
  t.timer <- None

let arm_timer t delay f =
  stop_timer t;
  t.timer <- Some (t.env.set_timer ~delay_ms:delay f)

let broadcast t msg =
  for node = 0 to t.env.n_sites - 1 do
    if node <> t.env.self then t.env.send node msg
  done

(* Instance over: reset the Table 1c variables (BallotNum survives) and
   report the outcome so the site can reallocate / drain its queue. *)
let conclude t outcome =
  stop_timer t;
  t.phase <- Idle;
  t.exposed <- false;
  t.in_recovery <- false;
  t.accept_val <- None;
  t.accept_num <- Ballot.zero t.env.self;
  t.decision <- false;
  t.env.on_outcome outcome

let apply_decision t value =
  let fresh =
    match t.last_applied_origin with
    | Some origin -> Ballot.(value.Protocol.origin > origin)
    | None -> true
  in
  if fresh then begin
    t.last_applied_origin <- Some value.Protocol.origin;
    t.s_applied <- t.s_applied + 1;
    conclude t (Protocol.Decided value)
  end
  else if t.exposed || t.phase <> Idle then
    (* A re-delivered decision for an instance we already applied still
       releases us from any residual participation. *)
    conclude t Protocol.Aborted

let my_report t =
  {
    init_val = t.env.local_state ();
    r_accept_val = t.accept_val;
    r_accept_num = t.accept_num;
    r_decision = t.decision;
  }

(* Value construction (Algorithm 1, lines 15-23) over the collected
   reports, the leader's own included. *)
let choose_value t responses =
  let reports = Hashtbl.fold (fun _ r acc -> r :: acc) responses [] in
  let decided = List.find_opt (fun r -> r.r_decision) reports in
  match decided with
  | Some { r_accept_val = Some v; _ } -> (v, true)
  | Some { r_accept_val = None; _ } | None -> (
      let best_accepted =
        List.fold_left
          (fun best r ->
            match r.r_accept_val with
            | None -> best
            | Some v -> (
                match best with
                | Some (num, _) when Ballot.(num >= r.r_accept_num) -> best
                | Some _ | None -> Some (r.r_accept_num, v)))
          None reports
      in
      match best_accepted with
      | Some (_, v) -> (v, false)
      | None ->
          (* Fresh construction: concatenate the InitVals, one per site,
             deterministically ordered. *)
          let entries =
            Hashtbl.fold (fun site r acc -> (site, r.init_val) :: acc) responses []
            |> List.sort compare |> List.map snd
          in
          (Protocol.make_value ~origin:t.ballot entries, false))

let rec start t =
  if not t.exposed then begin
    t.ballot <- Ballot.next t.ballot ~site:t.env.self;
    t.s_led_started <- t.s_led_started + 1;
    let responses = Hashtbl.create 8 in
    Hashtbl.replace responses t.env.self (my_report t);
    t.phase <- Leading_election { responses };
    t.exposed <- true;
    broadcast t (Protocol.Election_get_value { bal = t.ballot });
    arm_timer t t.env.election_timeout_ms (fun () -> on_election_timeout t);
    (* Degenerate single-site system: we are our own majority. *)
    try_construct t
  end

(* Recovery: run the same leader code with a higher ballot (§4.3.1). *)
and recover t =
  t.exposed <- false;
  t.in_recovery <- true;
  start t

and on_election_timeout t =
  match t.phase with
  | Leading_election { responses } when t.in_recovery && t.accept_val <> None ->
      (* We hold an accepted value that may have been decided elsewhere: we
         must stay blocked until a majority tells us its fate — the
         paper's blocked-until-majority case. Retry with a higher ballot. *)
      ignore responses;
      t.exposed <- false;
      start t
  | Leading_election { responses } ->
      (* Fresh trigger with no majority: nothing was constructed, abort is
         safe (§4.3.1); release any cohorts that did promise. *)
      t.s_led_aborted <- t.s_led_aborted + 1;
      Hashtbl.iter
        (fun site _ ->
          if site <> t.env.self then t.env.send site (Protocol.Discard { bal = t.ballot }))
        responses;
      conclude t Protocol.Aborted
  | Leading_accept _ | Cohort_waiting | Cohort_accepted | Idle -> ()

and try_construct t =
  match t.phase with
  | Leading_election { responses } when Hashtbl.length responses >= majority t ->
      let value, known_decided = choose_value t responses in
      t.accept_val <- Some value;
      t.accept_num <- t.ballot;
      t.decision <- known_decided;
      if known_decided then begin
        (* The instance was already decided by a failed leader: just
           redistribute the decision. *)
        broadcast t (Protocol.Decision { bal = t.ballot; value });
        t.s_led_decided <- t.s_led_decided + 1;
        apply_decision t value
      end
      else begin
        let acks = Hashtbl.create 8 in
        Hashtbl.replace acks t.env.self ();
        t.phase <- Leading_accept { value; acks };
        broadcast t (Protocol.Accept_value { bal = t.ballot; value; decision = false });
        arm_timer t t.env.accept_timeout_ms (fun () -> on_accept_timeout t);
        try_decide t
      end
  | Leading_election _ | Leading_accept _ | Cohort_waiting | Cohort_accepted | Idle -> ()

and on_accept_timeout t =
  match t.phase with
  | Leading_accept { value; _ } ->
      (* Value constructed but not yet fault-tolerant: the paper's blocking
         case. Keep re-broadcasting until a majority is back (a higher
         ballot can still supersede us). *)
      broadcast t (Protocol.Accept_value { bal = t.ballot; value; decision = false });
      arm_timer t t.env.accept_timeout_ms (fun () -> on_accept_timeout t)
  | Leading_election _ | Cohort_waiting | Cohort_accepted | Idle -> ()

and try_decide t =
  match t.phase with
  | Leading_accept { value; acks } when Hashtbl.length acks >= majority t ->
      t.decision <- true;
      t.s_led_decided <- t.s_led_decided + 1;
      broadcast t (Protocol.Decision { bal = t.ballot; value });
      apply_decision t value
  | Leading_accept _ | Leading_election _ | Cohort_waiting | Cohort_accepted | Idle -> ()

let handle t ~src msg =
  match msg with
  | Protocol.Election_get_value { bal } ->
      if Ballot.(bal > t.ballot) then begin
        t.ballot <- bal;
        (* Lines 9-11: refresh TokensWanted from the local prediction
           before exposing our state. *)
        t.env.refresh_wanted ();
        let report = my_report t in
        (match t.phase with
        | Idle | Leading_election _ | Leading_accept _ ->
            (* Any leadership attempt of ours is superseded; our accepted
               value (if any) rides along in the report. *)
            t.s_participated <- t.s_participated + 1
        | Cohort_waiting | Cohort_accepted -> ());
        t.phase <- Cohort_waiting;
        t.exposed <- true;
        t.env.send src
          (Protocol.Election_ok_value
             {
               bal;
               init_val = report.init_val;
               accept_val = report.r_accept_val;
               accept_num = report.r_accept_num;
               decision = report.r_decision;
             });
        arm_timer t t.env.cohort_timeout_ms (fun () -> recover t)
      end
  | Protocol.Election_ok_value { bal; init_val; accept_val; accept_num; decision } -> (
      match t.phase with
      | Leading_election { responses } when Ballot.equal bal t.ballot ->
          Hashtbl.replace responses src
            { init_val; r_accept_val = accept_val; r_accept_num = accept_num;
              r_decision = decision };
          try_construct t
      | Leading_election _ | Leading_accept _ | Cohort_waiting | Cohort_accepted | Idle -> ())
  | Protocol.Accept_value { bal; value; decision } ->
      if Ballot.(bal >= t.ballot) then begin
        t.ballot <- bal;
        t.accept_val <- Some value;
        t.accept_num <- bal;
        t.decision <- decision;
        t.env.send src (Protocol.Accept_ok { bal });
        if decision then apply_decision t value
        else begin
          (match t.phase with
          | Leading_election _ | Leading_accept _ ->
              (* Our own attempt is superseded by an equal-or-higher ballot. *)
              ()
          | Idle | Cohort_waiting | Cohort_accepted -> ());
          t.phase <- Cohort_accepted;
          arm_timer t t.env.cohort_timeout_ms (fun () -> recover t)
        end
      end
  | Protocol.Accept_ok { bal } -> (
      match t.phase with
      | Leading_accept { acks; _ } when Ballot.equal bal t.ballot ->
          Hashtbl.replace acks src ();
          try_decide t
      | Leading_accept _ | Leading_election _ | Cohort_waiting | Cohort_accepted | Idle -> ())
  | Protocol.Decision { bal = _; value } -> apply_decision t value
  | Protocol.Discard { bal } -> (
      match t.phase with
      | Cohort_waiting when Ballot.equal bal t.ballot -> conclude t Protocol.Aborted
      | Cohort_waiting | Cohort_accepted | Leading_election _ | Leading_accept _ | Idle -> ())
  | Protocol.Election_reject _ | Protocol.Status_query _ | Protocol.Status_reply _ ->
      (* Avantan[*]-only traffic; inert in the majority variant. *)
      ()
