module Ballot = Consensus.Ballot

type site_entry = Reallocation.entry = {
  site : int;
  tokens_left : int;
  tokens_wanted : int;
}

type value = {
  origin : Ballot.t;
  entries : site_entry list;
}

let make_value ~origin entries = { origin; entries }

let participants value = List.sort compare (List.map (fun e -> e.site) value.entries)

let mem_site value site = List.exists (fun e -> e.site = site) value.entries

let value_equal a b = Ballot.equal a.origin b.origin && a.entries = b.entries

type msg =
  | Election_get_value of { bal : Ballot.t }
  | Election_ok_value of {
      bal : Ballot.t;
      init_val : site_entry;
      accept_val : value option;
      accept_num : Ballot.t;
      decision : bool;
    }
  | Election_reject of { bal : Ballot.t }
  | Accept_value of { bal : Ballot.t; value : value; decision : bool }
  | Accept_ok of { bal : Ballot.t }
  | Decision of { bal : Ballot.t; value : value }
  | Discard of { bal : Ballot.t }
  | Status_query of { bal : Ballot.t }
  | Status_reply of {
      bal : Ballot.t;
      accept_val : value option;
      accept_num : Ballot.t;
      decision : bool;
    }

let pp_msg fmt = function
  | Election_get_value { bal } -> Format.fprintf fmt "Election-GetValue(%a)" Ballot.pp bal
  | Election_ok_value { bal; init_val; decision; _ } ->
      Format.fprintf fmt "ElectionOk-Value(%a, TL=%d, TW=%d, dec=%b)" Ballot.pp bal
        init_val.tokens_left init_val.tokens_wanted decision
  | Election_reject { bal } -> Format.fprintf fmt "Election-Reject(%a)" Ballot.pp bal
  | Accept_value { bal; value; decision } ->
      Format.fprintf fmt "Accept-Value(%a, |R|=%d, dec=%b)" Ballot.pp bal
        (List.length value.entries) decision
  | Accept_ok { bal } -> Format.fprintf fmt "Accept-Ok(%a)" Ballot.pp bal
  | Decision { bal; value } ->
      Format.fprintf fmt "Decision(%a, |R|=%d)" Ballot.pp bal (List.length value.entries)
  | Discard { bal } -> Format.fprintf fmt "Discard(%a)" Ballot.pp bal
  | Status_query { bal } -> Format.fprintf fmt "Status-Query(%a)" Ballot.pp bal
  | Status_reply { bal; decision; _ } ->
      Format.fprintf fmt "Status-Reply(%a, dec=%b)" Ballot.pp bal decision

let msg_ballot = function
  | Election_get_value { bal }
  | Election_ok_value { bal; _ }
  | Election_reject { bal }
  | Accept_value { bal; _ }
  | Accept_ok { bal }
  | Decision { bal; _ }
  | Discard { bal }
  | Status_query { bal }
  | Status_reply { bal; _ } ->
      bal

type outcome =
  | Decided of value
  | Aborted
