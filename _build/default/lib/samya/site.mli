(** A Samya site: the Request Handling, Prediction, Protocol and
    Redistribution modules of Fig. 2, wired together.

    A site serves [acquireTokens]/[releaseTokens] locally against its
    partition of the dis-aggregated token pool. It triggers redistribution
    {e proactively} when its forecaster predicts next-epoch demand beyond
    the local pool (Equation 4) and {e reactively} when a request cannot be
    served (Equation 5). While the site participates in a protocol instance
    it queues client requests; on the instance's outcome it applies the
    agreed reallocation (as a delta, see {!Avantan_star}) and drains the
    queue, rejecting what still cannot be served.

    Global-snapshot reads (§5.8) fan out to every site and aggregate the
    replies.

    Ablations: {!Config.t} switches off prediction, redistribution, or the
    constraint itself, reproducing the baselines of Figs. 3e/3f. *)

type net_msg =
  | Avantan of { entity : Types.entity; msg : Protocol.msg }
  | Read_query of { entity : Types.entity; rid : int }
  | Read_reply of { entity : Types.entity; rid : int; tokens_left : int }
  | Recovery_query of { entity : Types.entity }
  | Recovery_reply of { entity : Types.entity; decisions : Protocol.value list }

type t

val create :
  config:Config.t ->
  network:net_msg Geonet.Network.t ->
  id:int ->
  ?forecaster:Ml.Forecaster.t ->
  unit ->
  t
(** Registers the site's handler with the network at node [id]. Without a
    [forecaster] the site falls back to a persistence forecast of the last
    epoch's demand (prediction can still be disabled entirely via
    [config]). *)

val id : t -> int

val init_entity : t -> entity:Types.entity -> tokens:int -> unit
(** Installs this site's initial share of entity [entity]'s tokens. Every
    site must be initialised consistently; {!Cluster} does this. *)

val submit : t -> Types.request -> reply:(Types.response -> unit) -> unit
(** A client request as delivered by an app manager (transport latency
    already accounted for by the caller). [reply] fires when the request is
    granted/rejected — possibly much later if it is queued behind a
    redistribution. *)

val tokens_left : t -> entity:Types.entity -> int

val tokens_wanted : t -> entity:Types.entity -> int

val acquired_net : t -> entity:Types.entity -> int
(** Granted acquires minus granted releases at this site — summed across
    sites this must never exceed the entity's maximum (Equation 1). *)

val queued : t -> entity:Types.entity -> int

val participating : t -> entity:Types.entity -> bool

val crash : t -> unit
(** Stops serving, drops queued requests, freezes protocol participation
    (timers are inert while crashed). *)

val recover : t -> unit
(** Restores service from (simulated) stable storage state and runs the
    recovery catch-up: peers are asked for redistribution decisions that
    involved this site while it was down, and any missed ones are applied
    (each instance moves tokens exactly once). *)

val alive : t -> bool

type stats = {
  served_acquires : int;
  served_releases : int;
  served_reads : int;
  rejected : int;
  queued_peak : int;
  redistributions_led : int;  (** decided instances this site drove *)
  redistributions_started : int;
  redistributions_aborted : int;
  proactive_triggers : int;
  reactive_triggers : int;
}

val stats : t -> stats
