(** Client-visible data model (§3.2).

    An {e entity} is a resource type (e.g. "VM"); its instances are
    indistinguishable {e tokens}. Clients acquire and release tokens;
    Samya tracks usage so that collectively no more than the preset
    maximum [m_e] is ever acquired (Equation 1). *)

type entity = string

type request =
  | Acquire of { entity : entity; amount : int }
      (** [acquireTokens(e, n)], [n > 0] *)
  | Release of { entity : entity; amount : int }
      (** [releaseTokens(e, m)], [m > 0] *)
  | Read of { entity : entity }
      (** global-snapshot read of total available tokens (§5.8) *)

type response =
  | Granted
  | Rejected  (** not enough tokens anywhere, or site gave up redistribution *)
  | Read_result of { tokens_available : int }
  | Unavailable  (** no reachable site to serve the request *)

val request_entity : request -> entity

val validate : request -> (unit, string) result
(** Rejects non-positive amounts. *)

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
