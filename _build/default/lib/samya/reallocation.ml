type entry = { site : int; tokens_left : int; tokens_wanted : int }

type grant = {
  site : int;
  new_tokens_left : int;
  wanted_satisfied : bool;
}

let spare entries = List.fold_left (fun acc e -> acc + e.tokens_left) 0 entries

let total_wanted entries = List.fold_left (fun acc e -> acc + e.tokens_wanted) 0 entries

let validate entries =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if e.tokens_left < 0 || e.tokens_wanted < 0 then
        invalid_arg "Reallocation.redistribute: negative token count";
      if Hashtbl.mem seen e.site then
        invalid_arg "Reallocation.redistribute: duplicate site";
      Hashtbl.replace seen e.site ())
    entries

(* Shared allocation tail: grant [granted_of e] to each entry, then split
   the leftover pool equally with the integer remainder assigned in
   ascending site order so tokens are conserved exactly. *)
let allocate entries ~pool ~granted_of ~satisfied_of =
  let in_site_order =
    List.sort (fun (a : entry) (b : entry) -> compare a.site b.site) entries
  in
  let total_granted = List.fold_left (fun acc e -> acc + granted_of e) 0 in_site_order in
  let leftover = pool - total_granted in
  let n = List.length entries in
  let share = if n = 0 then 0 else leftover / n in
  let extra = if n = 0 then 0 else leftover mod n in
  List.mapi
    (fun rank (e : entry) ->
      let bonus = if rank < extra then 1 else 0 in
      {
        site = e.site;
        new_tokens_left = granted_of e + share + bonus;
        wanted_satisfied = satisfied_of e;
      })
    in_site_order

(* Algorithm 2: reject ascending by wanted until demand fits the pool. *)
let redistribute_max_usage entries =
  let pool = spare entries in
  let wanted = total_wanted entries in
  let by_wanted =
    List.sort (fun a b -> compare (a.tokens_wanted, a.site) (b.tokens_wanted, b.site)) entries
  in
  let rejected = Hashtbl.create 8 in
  let remaining = ref wanted in
  List.iter
    (fun e ->
      if !remaining > pool && e.tokens_wanted > 0 then begin
        remaining := !remaining - e.tokens_wanted;
        Hashtbl.replace rejected e.site ()
      end)
    by_wanted;
  allocate entries ~pool
    ~granted_of:(fun e -> if Hashtbl.mem rejected e.site then 0 else e.tokens_wanted)
    ~satisfied_of:(fun e -> not (Hashtbl.mem rejected e.site))

(* Reject descending by wanted: keeps as many requests whole as possible. *)
let redistribute_max_requests entries =
  let pool = spare entries in
  let wanted = total_wanted entries in
  let by_wanted_desc =
    List.sort
      (fun a b -> compare (b.tokens_wanted, b.site) (a.tokens_wanted, a.site))
      entries
  in
  let rejected = Hashtbl.create 8 in
  let remaining = ref wanted in
  List.iter
    (fun e ->
      if !remaining > pool && e.tokens_wanted > 0 then begin
        remaining := !remaining - e.tokens_wanted;
        Hashtbl.replace rejected e.site ()
      end)
    by_wanted_desc;
  allocate entries ~pool
    ~granted_of:(fun e -> if Hashtbl.mem rejected e.site then 0 else e.tokens_wanted)
    ~satisfied_of:(fun e -> not (Hashtbl.mem rejected e.site))

(* Scale every request by the scarcity ratio instead of rejecting. *)
let redistribute_proportional entries =
  let pool = spare entries in
  let wanted = total_wanted entries in
  if wanted <= pool then
    allocate entries ~pool
      ~granted_of:(fun e -> e.tokens_wanted)
      ~satisfied_of:(fun _ -> true)
  else begin
    let scale = float_of_int pool /. float_of_int wanted in
    allocate entries ~pool
      ~granted_of:(fun e -> int_of_float (float_of_int e.tokens_wanted *. scale))
      ~satisfied_of:(fun e -> e.tokens_wanted = 0)
  end

type policy = Max_usage | Max_requests | Proportional

let default_policy = Max_usage

let policy_name = function
  | Max_usage -> "max-usage (Algorithm 2)"
  | Max_requests -> "max-requests"
  | Proportional -> "proportional"

let redistribute_with policy entries =
  validate entries;
  match policy with
  | Max_usage -> redistribute_max_usage entries
  | Max_requests -> redistribute_max_requests entries
  | Proportional -> redistribute_proportional entries

let redistribute entries = redistribute_with Max_usage entries

let conserves_tokens entries grants =
  spare entries = List.fold_left (fun acc g -> acc + g.new_tokens_left) 0 grants
