type t = {
  engine : Des.Engine.t;
  epoch_ms : float;
  capacity : int;
  buffer : float array; (* ring of completed epochs: net demand *)
  peaks : float array; (* ring of completed epochs: peak running draw *)
  mutable stored : int; (* number of completed epochs held, <= capacity *)
  mutable head : int; (* next write slot *)
  mutable current_epoch : int;
  mutable current_demand : float;
  mutable current_peak : float;
}

let create ~engine ~epoch_ms ~capacity =
  if epoch_ms <= 0.0 then invalid_arg "Demand_tracker.create: epoch must be positive";
  if capacity < 1 then invalid_arg "Demand_tracker.create: capacity must be >= 1";
  {
    engine;
    epoch_ms;
    capacity;
    buffer = Array.make capacity 0.0;
    peaks = Array.make capacity 0.0;
    stored = 0;
    head = 0;
    current_epoch = 0;
    current_demand = 0.0;
    current_peak = 0.0;
  }

let push_completed t value peak =
  t.buffer.(t.head) <- value;
  t.peaks.(t.head) <- peak;
  t.head <- (t.head + 1) mod t.capacity;
  if t.stored < t.capacity then t.stored <- t.stored + 1

let epoch_of t = int_of_float (Des.Engine.now t.engine /. t.epoch_ms)

(* Close out any epochs that elapsed since the last record. *)
let roll t =
  let now_epoch = epoch_of t in
  while t.current_epoch < now_epoch do
    push_completed t t.current_demand t.current_peak;
    t.current_demand <- 0.0;
    t.current_peak <- 0.0;
    t.current_epoch <- t.current_epoch + 1
  done

let record t ~amount =
  roll t;
  t.current_demand <- t.current_demand +. float_of_int amount;
  if t.current_demand > t.current_peak then t.current_peak <- t.current_demand

let ring t source =
  Array.init t.stored (fun i ->
      let idx = (t.head - t.stored + i + (2 * t.capacity)) mod t.capacity in
      source.(idx))

let history t =
  roll t;
  ring t t.buffer

let peak_history t =
  roll t;
  ring t t.peaks

let current_epoch_demand t =
  roll t;
  t.current_demand

let current_epoch_peak t =
  roll t;
  t.current_peak

let epoch_index t = epoch_of t
