(** Streaming summary statistics (Welford's online algorithm).

    Constant-memory mean/variance/min/max over a stream of observations;
    used for latency and throughput aggregates in the harness. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** [nan] when empty. *)

val variance : t -> float
(** Sample variance (n-1 denominator); [nan] for fewer than two samples. *)

val stddev : t -> float

val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val total : t -> float
(** Sum of all observations. *)

val merge : t -> t -> t
(** Summary of the concatenated streams (Chan et al. parallel update). *)
