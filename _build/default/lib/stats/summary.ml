type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; sum = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.sum <- t.sum +. x

let count t = t.n

let mean t = if t.n = 0 then nan else t.mean

let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min_value t = t.min

let max_value t = t.max

let total t = t.sum

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      sum = a.sum +. b.sum;
    }
  end
