lib/stats/sample_set.ml: Array Float
