lib/stats/series.ml: Array Float
