lib/stats/throughput.ml: Hashtbl Option
