lib/stats/summary.ml: Float
