lib/stats/summary.mli:
