lib/stats/throughput.mli:
