lib/stats/series.mli:
