let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then nan
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let diff xs =
  let n = Array.length xs in
  if n <= 1 then [||]
  else Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i))

let undiff ~first deltas =
  let n = Array.length deltas in
  let out = Array.make (n + 1) first in
  for i = 0 to n - 1 do
    out.(i + 1) <- out.(i) +. deltas.(i)
  done;
  out

let moving_average k xs =
  if k <= 0 then invalid_arg "Series.moving_average: window must be positive";
  let n = Array.length xs in
  let out = Array.make n 0.0 in
  let running = ref 0.0 in
  for i = 0 to n - 1 do
    running := !running +. xs.(i);
    if i >= k then running := !running -. xs.(i - k);
    let width = min (i + 1) k in
    out.(i) <- !running /. float_of_int width
  done;
  out

let autocorrelation xs lag =
  let n = Array.length xs in
  if lag < 0 || lag >= n || n < 2 then nan
  else begin
    let m = mean xs in
    let num = ref 0.0 and den = ref 0.0 in
    for i = 0 to n - 1 do
      den := !den +. ((xs.(i) -. m) ** 2.0)
    done;
    for i = 0 to n - 1 - lag do
      num := !num +. ((xs.(i) -. m) *. (xs.(i + lag) -. m))
    done;
    if !den = 0.0 then nan else !num /. !den
  end

let split_at_fraction fraction xs =
  let fraction = Float.min 1.0 (Float.max 0.0 fraction) in
  let n = Array.length xs in
  let cut = int_of_float (Float.round (fraction *. float_of_int n)) in
  (Array.sub xs 0 cut, Array.sub xs cut (n - cut))

let windows ~input xs =
  let n = Array.length xs in
  if input <= 0 || n <= input then [||]
  else
    Array.init (n - input) (fun i -> (Array.sub xs i input, xs.(i + input)))

let scale_linear factor xs = Array.map (fun x -> x *. factor) xs

let clamp_non_negative xs = Array.map (fun x -> Float.max 0.0 x) xs
