(** Small utilities over float time series (dense arrays).

    Shared by the trace pipeline and the forecasting code: differencing,
    moving averages, autocorrelation, train/test splits, elementwise maps. *)

val mean : float array -> float

val stddev : float array -> float

val diff : float array -> float array
(** First difference; length decreases by one. Empty input yields empty. *)

val undiff : first:float -> float array -> float array
(** Inverse of {!diff}: cumulative sum anchored at [first]. *)

val moving_average : int -> float array -> float array
(** [moving_average k xs]: centred-causal window of the last [k] values
    (positions [< k-1] average the available prefix). Raises
    [Invalid_argument] if [k <= 0]. *)

val autocorrelation : float array -> int -> float
(** [autocorrelation xs lag]: Pearson autocorrelation at the given lag;
    [nan] when undefined. *)

val split_at_fraction : float -> float array -> float array * float array
(** [split_at_fraction 0.8 xs] is the 80/20 prefix/suffix split used for
    train/test. The fraction is clamped to [\[0, 1\]]. *)

val windows : input:int -> float array -> (float array * float) array
(** [windows ~input xs] builds supervised pairs: each item is ([input]
    consecutive values, the next value). Returns [||] when [xs] is too
    short. *)

val scale_linear : float -> float array -> float array

val clamp_non_negative : float array -> float array
