type t = {
  interval_s : float;
  creations : float array;
  deletions : float array;
}

type params = {
  days : int;
  mean_demand : float;
  usage_level : float;
  usage_swing : float;
  usage_growth_per_day : float;
  churn_lifetime_intervals : int;
  noise : float;
  burst_probability : float;
  seed : int64;
}

let default_params =
  {
    days = 30;
    mean_demand = 230.0;
    usage_level = 450.0;
    usage_swing = 700.0;
    usage_growth_per_day = 150.0;
    churn_lifetime_intervals = 0;
    noise = 0.40;
    burst_probability = 0.02;
    seed = 2021L;
  }

let intervals_per_day = 24 * 12 (* 5-minute sampling *)

(* Asymmetric, non-linear daily profile: a log-periodic curve with a sharp
   business-hours ramp. [u] is the fraction of the day in [0, 1). *)
let daily_shape u =
  let two_pi = 2.0 *. Float.pi in
  exp ((1.1 *. sin (two_pi *. (u -. 0.25))) +. (0.45 *. sin ((2.0 *. two_pi *. u) +. 1.1)))

let weekly_factor day = if day mod 7 >= 5 then 0.62 else 1.0

let generate params =
  if params.days <= 0 then invalid_arg "Azure_trace.generate: days must be positive";
  let n = params.days * intervals_per_day in
  let rng = Des.Rng.create params.seed in
  (* Mean of the raw daily shape, used to normalise demand to the target. *)
  let shape_mean =
    let acc = ref 0.0 in
    for i = 0 to intervals_per_day - 1 do
      acc := !acc +. daily_shape (float_of_int i /. float_of_int intervals_per_day)
    done;
    !acc /. float_of_int intervals_per_day
  in
  let creations = Array.make n 0.0 and deletions = Array.make n 0.0 in
  let log_noise = ref 0.0 in
  (* Usage starts at zero — nothing is pre-acquired when the system comes
     up — and ramps towards the periodic target. *)
  let usage = ref 0.0 in
  for i = 0 to n - 1 do
    let day = i / intervals_per_day in
    let u = float_of_int (i mod intervals_per_day) /. float_of_int intervals_per_day in
    (* AR(1) multiplicative noise. *)
    log_noise :=
      (0.7 *. !log_noise) +. Des.Rng.gaussian rng ~mean:0.0 ~std:params.noise;
    let burst =
      if Des.Rng.bool rng params.burst_probability then
        2.0 +. Des.Rng.float rng 6.0
      else 1.0
    in
    let churn =
      params.mean_demand /. 2.0 /. shape_mean
      *. daily_shape u *. weekly_factor day *. exp !log_noise *. burst
    in
    (* Bounded usage process: creations/deletions are the symmetric churn
       plus the signed step that steers usage towards its periodic target. *)
    let usage_target =
      Float.max 0.0
        (((params.usage_level
          +. (params.usage_swing *. sin (2.0 *. Float.pi *. (u -. 0.35))))
         *. weekly_factor day)
        +. (params.usage_growth_per_day *. float_of_int i /. float_of_int intervals_per_day))
    in
    let du =
      (0.15 *. (usage_target -. !usage))
      +. Des.Rng.gaussian rng ~mean:0.0 ~std:(params.mean_demand /. 20.0)
    in
    usage := Float.max 0.0 (!usage +. du);
    let created = Float.max 0.0 (churn +. Float.max 0.0 du) in
    creations.(i) <- Float.round created;
    (* Churned VMs live for a while before deletion: the symmetric churn
       volume is returned [churn_lifetime_intervals] later, so short-lived
       VMs still hold tokens — the standing usage that makes a tight limit
       M_e genuinely binding (§5.9.i). *)
    let lifetime = max 0 params.churn_lifetime_intervals in
    let delayed = i + lifetime in
    if delayed < n then
      deletions.(delayed) <- deletions.(delayed) +. Float.round (Float.max 0.0 churn);
    deletions.(i) <- deletions.(i) +. Float.round (Float.max 0.0 (-.du))
  done;
  { interval_s = 300.0; creations; deletions }

let length t = Array.length t.creations

let demand t = Array.init (length t) (fun i -> t.creations.(i) +. t.deletions.(i))

let net_usage t =
  let n = length t in
  let out = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. t.creations.(i) -. t.deletions.(i);
    out.(i) <- !acc
  done;
  out

let compress t ~factor =
  if factor <= 0 then invalid_arg "Azure_trace.compress: factor must be positive";
  { t with interval_s = t.interval_s /. float_of_int factor }

let phase_shift t ~hours =
  let shift = int_of_float (Float.round (hours *. 3600.0 /. 300.0)) in
  (* The shift is defined on the original 5-minute grid; applying it by
     index keeps the same relative phase after compression. A region ahead
     by [hours] sees the trace [shift] intervals early, so we slice forward
     (never wrap — wrapping would splice the end of the month, with its
     accumulated usage growth, onto the beginning). *)
  let n = length t in
  if shift < 0 || shift >= n then invalid_arg "Azure_trace.phase_shift: shift out of range";
  {
    t with
    creations = Array.sub t.creations shift (n - shift);
    deletions = Array.sub t.deletions shift (n - shift);
  }

let region_shift_hours region =
  match region with
  | Geonet.Region.Us_west1 -> 0.0
  | Geonet.Region.Us_central1 -> 2.0
  | Geonet.Region.Us_east1 -> 3.0
  | Geonet.Region.Asia_east2 -> 16.0
  | Geonet.Region.Europe_west2 -> 8.0
  | Geonet.Region.Australia_southeast1 -> 18.0
  | Geonet.Region.Southamerica_east1 -> 5.0

let split t ~train_fraction = Stats.Series.split_at_fraction train_fraction (demand t)
