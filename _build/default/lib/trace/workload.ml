type kind = Acquire | Release | Read

type request = {
  time_ms : float;
  site : int;
  kind : kind;
  amount : int;
}

let compare_time a b = compare a.time_ms b.time_ms

let of_trace ~rng ~trace ~site ?(start_interval = 0) ?intervals ?(amount = 1) () =
  let total = Azure_trace.length trace in
  let intervals = Option.value intervals ~default:(total - start_interval) in
  if start_interval < 0 || start_interval + intervals > total then
    invalid_arg "Workload.of_trace: interval range out of bounds";
  let interval_ms = trace.Azure_trace.interval_s *. 1000.0 in
  let out = ref [] in
  (* Clients never release more than they acquired (§3.2): deletions are
     capped by the running balance of the emitted stream, which also
     absorbs the wrap-around of phase-shifted traces. *)
  let balance = ref 0 in
  for i = 0 to intervals - 1 do
    let idx = start_interval + i in
    let base = float_of_int i *. interval_ms in
    let emit kind count =
      for _ = 1 to count do
        let time_ms = base +. Des.Rng.float rng interval_ms in
        out := { time_ms; site; kind; amount } :: !out
      done
    in
    let created = int_of_float trace.Azure_trace.creations.(idx) in
    let deleted = min (int_of_float trace.Azure_trace.deletions.(idx)) (!balance + created) in
    balance := !balance + created - deleted;
    emit Acquire created;
    emit Release deleted
  done;
  let arr = Array.of_list !out in
  Array.sort compare_time arr;
  arr

let merge streams =
  let arr = Array.concat streams in
  Array.sort compare_time arr;
  arr

let with_reads ~rng ~read_ratio stream =
  if read_ratio < 0.0 || read_ratio > 1.0 then
    invalid_arg "Workload.with_reads: ratio outside [0, 1]";
  Array.map
    (fun r -> if Des.Rng.bool rng read_ratio then { r with kind = Read } else r)
    stream

let duration_ms stream =
  let n = Array.length stream in
  if n = 0 then 0.0 else stream.(n - 1).time_ms

let count_kind stream kind =
  Array.fold_left (fun acc r -> if r.kind = kind then acc + 1 else acc) 0 stream
