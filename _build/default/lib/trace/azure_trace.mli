(** Synthetic Azure-like VM workload trace.

    Stand-in for the Azure Public Dataset used by the paper (§5.1): a
    month-long trace of VM creation/deletion counts at 5-minute intervals
    with strongly periodic daily/weekly structure ("history is an accurate
    predictor of future behavior" — Cortez et al.). The generator
    reproduces the properties the paper exploits:

    - an asymmetric, non-linear daily demand shape (log-periodic, sharp
      morning ramp) modulated by a weekday/weekend factor;
    - autocorrelated multiplicative noise and occasional bursts;
    - a bounded resource-usage process, so creations and deletions balance
      over time and the tracked aggregate oscillates rather than drifting
      monotonically into the global limit.

    Creations map to [acquireTokens(VM, 1)] and deletions to
    [releaseTokens(VM, 1)], exactly as in §5.1.2. *)

type t = {
  interval_s : float;  (** sampling interval; 300 s as generated *)
  creations : float array;  (** VM creations per interval *)
  deletions : float array;  (** VM deletions per interval *)
}

type params = {
  days : int;  (** trace length (default 30, as in the dataset) *)
  mean_demand : float;
      (** target mean of creations+deletions per interval (default 230,
          which reproduces the paper's ~820 k transactions per compressed
          hour across five regions) *)
  usage_level : float;
      (** mean of the periodic tracked-usage target, in tokens (default
          450); usage starts at zero and ramps towards the target *)
  usage_swing : float;  (** amplitude of the daily usage oscillation (default 700) *)
  usage_growth_per_day : float;
      (** upward drift of the usage target (default 150 tokens/day) — real
          cloud usage grows over a month, and the drift is what eventually
          pushes the tracked aggregate against the global limit *)
  churn_lifetime_intervals : int;
      (** how many intervals a churned (short-lived) VM holds its token
          before release (default 0 — instant recycling; the M_e sweep uses
          grant-driven lifetimes in the driver instead): churn
          contributes standing usage, not just flow *)
  noise : float;  (** std-dev of the AR(1) log-noise innovations (default 0.40) *)
  burst_probability : float;  (** per-interval probability of a demand burst (default 0.02) *)
  seed : int64;
}

val default_params : params

val generate : params -> t

val length : t -> int

val demand : t -> float array
(** [creations + deletions] per interval — the series of Fig. 3a and the
    prediction target of Table 2a. *)

val net_usage : t -> float array
(** Cumulative [creations - deletions]: the tracked aggregate over time.
    Bounded by construction. *)

val compress : t -> factor:int -> t
(** §5.1.2's data processing: shrink the sampling interval by [factor]
    (300 s / 60 = 5 s) so the same requests arrive at 60x the rate. Counts
    are unchanged; only [interval_s] shrinks. *)

val phase_shift : t -> hours:float -> t
(** Shifts the series forward by a timezone offset (slicing, not wrapping), preserving
    per-region periodicity while staggering peaks across regions
    (§5.1.2). *)

val region_shift_hours : Geonet.Region.t -> float
(** Timezone offset applied per region, relative to US-West. *)

val split : t -> train_fraction:float -> float array * float array
(** Train/test split of {!demand} (the paper uses 80/20). *)
