lib/trace/workload.ml: Array Azure_trace Des Option
