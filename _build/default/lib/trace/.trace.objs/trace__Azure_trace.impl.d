lib/trace/azure_trace.ml: Array Des Float Geonet Stats
