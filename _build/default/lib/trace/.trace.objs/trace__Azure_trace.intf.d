lib/trace/azure_trace.mli: Geonet
