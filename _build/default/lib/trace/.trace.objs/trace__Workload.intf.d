lib/trace/workload.mli: Azure_trace Des
