(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index), plus bechamel
   micro-benchmarks of the core data-path operations.

   Usage:
     dune exec bench/main.exe                 -- everything, full durations
     dune exec bench/main.exe -- --quick      -- everything, short durations
     dune exec bench/main.exe -- table2b fig3c ... [--quick]
     dune exec bench/main.exe -- micro        -- bechamel micro-benchmarks

   SAMYA_BENCH_QUICK=1 in the environment is equivalent to --quick. *)

let micro_benchmarks () =
  let open Bechamel in
  let rng = Des.Rng.create 99L in
  let entries =
    List.init 16 (fun site ->
        {
          Samya.Reallocation.site;
          tokens_left = Des.Rng.int rng 2_000;
          tokens_wanted = Des.Rng.int rng 500;
        })
  in
  let realloc =
    Test.make ~name:"reallocation.redistribute(16 sites)"
      (Staged.stage (fun () -> ignore (Samya.Reallocation.redistribute entries)))
  in
  let heap =
    Test.make ~name:"pheap.push+pop(1k)"
      (Staged.stage (fun () ->
           let h = Des.Pheap.create () in
           for i = 0 to 999 do
             Des.Pheap.push h ~priority:(float_of_int ((i * 7) mod 997)) i
           done;
           while Des.Pheap.pop h <> None do
             ()
           done))
  in
  let a = Ml.Matrix.random (Des.Rng.create 3L) 64 64 ~scale:1.0 in
  let b = Ml.Matrix.random (Des.Rng.create 4L) 64 64 ~scale:1.0 in
  let matmul =
    Test.make ~name:"matrix.matmul(64x64)"
      (Staged.stage (fun () -> ignore (Ml.Matrix.matmul a b)))
  in
  let series = Array.init 400 (fun i -> 50.0 +. (40.0 *. sin (float_of_int i /. 9.0))) in
  let model =
    Ml.Lstm.train
      ~config:{ Ml.Lstm.default_config with epochs = 2; hidden = 8; window = 12 }
      series
  in
  let lstm =
    Test.make ~name:"lstm.predict_next(w=12,h=8)"
      (Staged.stage (fun () -> ignore (Ml.Lstm.predict_next model series)))
  in
  let grouped = Test.make_grouped ~name:"core" [ realloc; heap; matmul; lstm ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Format.printf "@.== micro: bechamel benchmarks of core operations ==@.";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ time_ns ] -> Format.printf "  %-42s %12.1f ns/run@." name time_ns
      | Some _ | None -> ())
    analyzed;
  Format.printf "@."

let () =
  let args = Array.to_list Sys.argv |> List.tl |> List.filter (fun a -> a <> "--") in
  let quick =
    List.mem "--quick" args || Sys.getenv_opt "SAMYA_BENCH_QUICK" = Some "1"
  in
  let ids = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let run_micro = ids = [] || List.mem "micro" ids in
  let experiment_ids =
    if ids = [] then Harness.Registry.ids () |> List.filter (fun id -> id <> "fig3b")
    else List.filter (fun id -> id <> "micro") ids
  in
  Format.printf
    "Samya reproduction benchmarks (%s durations; seed fixed, fully deterministic)@."
    (if quick then "quick" else "paper-scale");
  let ctx = Harness.Lab.create () in
  List.iter
    (fun id ->
      match Harness.Registry.run_by_id ctx ~quick Format.std_formatter id with
      | Ok () -> ()
      | Error message ->
          Format.printf "error: %s@." message;
          exit 2)
    experiment_ids;
  if run_micro then micro_benchmarks ();
  Format.printf "@.done.@."
