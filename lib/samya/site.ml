type net_msg =
  | Avantan of { entity : Types.entity; msg : Protocol.msg }
  | Read_query of { entity : Types.entity; rid : int }
  | Read_reply of { entity : Types.entity; rid : int; tokens_left : int }
  | Recovery_query of { entity : Types.entity }
      (** a recovering site asks peers for decided values it may have
          missed while crashed *)
  | Recovery_reply of { entity : Types.entity; decisions : Protocol.value list }
  | Borrow_request of { entity : Types.entity; needed : int }
      (** the borrow mechanism asks a peer for [needed] tokens *)
  | Borrow_grant of { entity : Types.entity; tokens : int }
      (** the lender's answer; [tokens = 0] still advances the borrower's
          conversation to its next peer *)

type stats = {
  served_acquires : int;
  served_releases : int;
  served_reads : int;
  rejected : int;
  queued_peak : int;
  redistributions_led : int;
  redistributions_started : int;
  redistributions_aborted : int;
  proactive_triggers : int;
  reactive_triggers : int;
  borrows : int;
  borrow_tokens : int;
  mechanism_switches : int;
}

(* The site is a thin coordinator: per-entity state lives in the
   {!Entity_map} arena (cold cores, lazily heated {!Entity_state}
   records), and the four Fig. 2 modules — {!Request_handler},
   {!Prediction}, {!Protocol_driver}, {!Redistribution_policy} — are
   wired to each other through closures built in {!create}. *)
type t = {
  config : Config.t;
  engine : Des.Engine.t;
  network : net_msg Geonet.Network.t;
  site_id : int;
  n_sites : int;
  entities : Entity_state.t Entity_map.t;
  is_alive : bool ref;
  incarnation : int ref;
      (* bumped on each amnesia crash so timers armed by a previous
         incarnation's protocol instances never fire into the recovered
         process (ghost timers would resurrect discarded state) *)
  durable : Durable_image.t Storage.Durable.t option;
      (* Some iff [config.amnesia_on_crash]: one image per entity *)
  rpolicy : Redistribution_policy.t;
  prediction : Prediction.t;
  handler : Request_handler.t;
  driver : Protocol_driver.t;
  controller : Controller.t option;
      (* Some iff [config.controller.enabled]: the adaptive contention
         controller owning the per-entity mechanism choice *)
  heat : Entity_state.t Entity_map.core -> Entity_state.t;
  flight : Obs.Flight_recorder.port;
  lane : int;
      (* hosting region's engine lane — flight-recorder events written
         from this site land in that lane's ring *)
  mutable fleet_gossip_armed : bool;
      (* the single site-level anti-entropy loop bulk registration arms
         (the legacy [init_entity] path keeps its per-entity timer) *)
}

let id t = t.site_id

let alive t = !(t.is_alive)

let get_core t entity = Entity_map.find t.entities entity

let get_ctx t entity =
  match get_core t entity with
  | Some { Entity_map.hot = Some ctx; _ } -> Some ctx
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Network dispatch                                                     *)

let handle_net t ~src msg =
  if !(t.is_alive) then
    match msg with
    | Avantan { entity; msg } ->
        if String.equal entity Protocol_driver.batch_channel then
          Protocol_driver.handle_batch t.driver ~src msg
        else (
          match get_ctx t entity with
          | Some ctx -> Protocol_driver.handle t.driver ctx ~src msg
          | None -> ())
    | Read_query { entity; rid } ->
        let tokens_left =
          match get_core t entity with
          | Some core -> core.Entity_map.tokens_left
          | None -> 0
        in
        Geonet.Network.send t.network ~src:t.site_id ~dst:src
          (Read_reply { entity; rid; tokens_left })
    | Read_reply { entity = _; rid; tokens_left } ->
        Request_handler.on_read_reply t.handler ~rid ~tokens_left
    | Recovery_query { entity } -> (
        match get_ctx t entity with
        | None -> () (* cold entities hold no decided log to answer from *)
        | Some ctx ->
            let relevant = Protocol_driver.recovery_decisions t.driver ctx ~peer:src in
            if relevant <> [] then
              Geonet.Network.send t.network ~src:t.site_id ~dst:src
                (Recovery_reply { entity; decisions = relevant }))
    | Recovery_reply { entity; decisions } -> (
        match get_core t entity with
        | None -> ()
        | Some core ->
            if decisions <> [] then
              let ctx =
                match core.Entity_map.hot with
                | Some ctx -> ctx
                | None -> t.heat core
              in
              Protocol_driver.apply_recovery t.driver ctx decisions)
    | Borrow_request { entity; needed } ->
        (* Lender side: grant from local headroom (shortfall plus a
           quantum, never more than the pool), unless the ledger is
           exposed to an engagement of our own. A zero grant is still
           sent — the borrower needs the answer to walk to its next
           peer. *)
        let tokens =
          match get_core t entity with
          | None -> 0
          | Some core ->
              let lendable =
                match core.Entity_map.hot with
                | Some ctx -> not (Entity_state.parked ctx)
                | None -> not core.Entity_map.exposed
              in
              if not lendable then 0
              else begin
                let g =
                  Mechanism.grant_for
                    ~quantum:
                      t.config.Config.controller.Config.Controller.borrow_quantum
                    ~tokens_left:core.Entity_map.tokens_left ~needed
                in
                core.Entity_map.tokens_left <- core.Entity_map.tokens_left - g;
                g
              end
        in
        Geonet.Network.send t.network ~src:t.site_id ~dst:src
          (Borrow_grant { entity; tokens })
    | Borrow_grant { entity; tokens } -> (
        (* Borrower side: bank the tokens and advance the conversation. A
           grant landing after the conversation died (patience fired, or
           the controller is gone) still lands in the ledger —
           conservation never depends on the conversation being alive. *)
        match get_core t entity with
        | None -> ()
        | Some core -> (
            match (core.Entity_map.hot, t.controller) with
            | Some ctx, Some c ->
                Mechanism.on_grant (Controller.borrow_deps c) ctx ~tokens
            | _ ->
                core.Entity_map.tokens_left <-
                  core.Entity_map.tokens_left + tokens))

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)

let create ~config ~network ~id ?forecaster ?on_protocol_event ?obs
    ?(flight = Obs.Flight_recorder.port ()) ?(lane = 0) () =
  (match Config.validate config with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Site.create: " ^ reason));
  let engine = Geonet.Network.engine_of network ~node:id in
  let n_sites = Geonet.Network.node_count network in
  let is_alive = ref true in
  let incarnation = ref 0 in
  let entities =
    Entity_map.create ~shards:config.Config.entity_shards
      ~capacity:config.Config.entity_capacity ()
  in
  let durable =
    if config.Config.amnesia_on_crash then
      Some (Storage.Durable.create ~policy:config.Config.durability_sync ())
    else None
  in
  let persist (ctx : Entity_state.t) =
    match durable with
    | None -> ()
    | Some store ->
        (* Whole-image writes keep the ledger, the dedupe set and the
           protocol state consistent with each other under any sync
           policy: a crash rolls them back together. *)
        Storage.Durable.put store ~key:(Entity_state.entity ctx)
          (Durable_image.capture ctx)
  in
  let now () = Des.Engine.now engine in
  (* Flight-recorder write, armed path only (the disarmed branch is the
     [tap] match at each wrapper below). *)
  let flight_record ~kind ~entity detail =
    match Obs.Flight_recorder.tap flight with
    | None -> ()
    | Some a ->
        Obs.Flight_recorder.record a.Obs.Flight_recorder.recorder ~lane
          ~ts:(now ()) ~kind ~site:id ~entity detail
  in
  let prediction = Prediction.create ~config ?forecaster () in
  let rpolicy = Redistribution_policy.create ~config in
  (* Forward cell: the controller wraps the driver's trigger, but the
     driver's outcome hook also feeds the controller. Broken by building
     the driver first against this cell. *)
  let controller_cell = ref None in
  let driver =
    Protocol_driver.create ~config ~engine ~site_id:id ~n_sites
      ~send:(fun ~entity ~dst msg ->
        Geonet.Network.send network ~src:id ~dst (Avantan { entity; msg }))
      ~set_timer:(fun ~delay_ms f ->
        let inc = !incarnation in
        Des.Engine.timer ~label:"avantan.timer" engine ~delay_ms (fun () ->
            if !is_alive && !incarnation = inc then f ()))
      ~refresh_wanted:(Prediction.refresh_wanted prediction)
      ~register_outcome:(fun ctx ~aborted ~satisfied ->
        let trips_before = ctx.Entity_state.breaker_trips in
        Redistribution_policy.register_outcome rpolicy ctx ~now:(now ()) ~aborted
          ~satisfied;
        if ctx.Entity_state.breaker_trips > trips_before then
          flight_record ~kind:Obs.Flight_recorder.Breaker
            ~entity:(Entity_state.entity ctx)
            (Printf.sprintf "circuit breaker opened (trip %d)"
               ctx.Entity_state.breaker_trips);
        match !controller_cell with
        | Some c -> Controller.note_redistribution_outcome c ctx ~aborted
        | None -> ())
      ~on_event:(fun entity event ->
        (match event with
        | Avantan_core.Decided { participants; rounds; led = true; _ } ->
            flight_record ~kind:Obs.Flight_recorder.Protocol ~entity
              (Printf.sprintf "decided (%d participants, %d rounds)"
                 participants rounds)
        | Avantan_core.Instance_aborted { rounds; led = true; _ } ->
            flight_record ~kind:Obs.Flight_recorder.Protocol ~entity
              (Printf.sprintf "instance aborted (%d rounds)" rounds)
        | Avantan_core.Recovery_started _ ->
            flight_record ~kind:Obs.Flight_recorder.Protocol ~entity
              "recovery started"
        | _ -> ());
        match on_protocol_event with
        | Some f -> f ~entity event
        | None -> ())
      ~persist ?obs ()
  in
  let heat (core : Entity_state.t Entity_map.core) =
    match core.Entity_map.hot with
    | Some ctx -> ctx
    | None ->
        let ctx = Entity_state.create ~engine ~config ~core in
        Entity_map.set_hot entities core ctx;
        if config.Config.protocol_batch = 1 then
          Protocol_driver.attach driver ctx;
        (match durable with
        | None -> ()
        | Some store ->
            Storage.Durable.force store ~key:core.Entity_map.name
              (Durable_image.capture ctx));
        ctx
  in
  let controller =
    if config.Config.controller.Config.Controller.enabled then begin
      let ctl_cfg = config.Config.controller in
      (* Peers in proximity order (ties by index), self excluded — the
         demarcation baseline's ask order. *)
      let my_region = Geonet.Network.region_of network id in
      let peers =
        List.init n_sites Fun.id
        |> List.filter (fun a -> a <> id)
        |> List.sort (fun a b ->
               compare
                 ( Geonet.Region.one_way_ms my_region
                     (Geonet.Network.region_of network a),
                   a )
                 ( Geonet.Region.one_way_ms my_region
                     (Geonet.Network.region_of network b),
                   b ))
      in
      let bdeps =
        Mechanism.borrow_deps ~engine ~site_id:id ~peers
          ~quantum:ctl_cfg.Config.Controller.borrow_quantum
          ~patience_ms:ctl_cfg.Config.Controller.borrow_patience_ms
          ~alive:(fun () -> !is_alive)
          ~send:(fun ~dst ~entity ~needed ->
            Geonet.Network.send network ~src:id ~dst
              (Borrow_request { entity; needed }))
          ?obs ()
      in
      let redistribute =
        Mechanism.redistribute ~now
          ~reactive_ok:(fun ctx ->
            config.Config.redistribution_enabled
            && Redistribution_policy.reactive_ok rpolicy ~now:(now ()) ctx)
          ~reactive_wanted:(Prediction.reactive_wanted prediction)
          ~trigger:(Protocol_driver.trigger driver)
      in
      Some
        (Controller.create ~cfg:ctl_cfg ~engine ~site_id:id ?obs ~flight ~lane
           ~bdeps ~redistribute ())
    end
    else None
  in
  controller_cell := controller;
  let handler =
    Request_handler.create ~config ~engine ~site_id:id ~n_sites ?obs ~flight
      ~lane
      {
        Request_handler.alive = (fun () -> !is_alive);
        reactive_ok =
          (fun ctx -> Redistribution_policy.reactive_ok rpolicy ~now:(now ()) ctx);
        reactive_wanted = Prediction.reactive_wanted prediction;
        trigger = Protocol_driver.trigger driver;
        proactive =
          (fun ctx ->
            Prediction.proactive_check prediction ~now:(now ())
              ~cooldown_ok:(fun () ->
                Redistribution_policy.cooldown_ok rpolicy ~now:(now ()) ctx)
              ~trigger:(fun () -> Protocol_driver.trigger driver ctx)
              ctx);
        broadcast_read_query =
          (fun ~entity ~rid ->
            Geonet.Network.broadcast network ~src:id (Read_query { entity; rid }));
        persist;
        heat;
        controller;
      }
  in
  Protocol_driver.set_drain driver (Request_handler.drain_queue handler);
  (match controller with
  | Some c ->
      (* An unsatisfied borrow drains in reject mode: serve what the
         grants cover, reject the rest — a starved entity must not loop
         straight back into another conversation. *)
      Mechanism.set_borrow_drain (Controller.borrow_deps c)
        (fun ctx ~satisfied ->
          Request_handler.drain_queue ~reject_unservable:(not satisfied)
            handler ctx)
  | None -> ());
  Protocol_driver.set_resolve driver (Entity_map.find entities);
  Protocol_driver.set_heat driver heat;
  let t =
    {
      config;
      engine;
      network;
      site_id = id;
      n_sites;
      entities;
      is_alive;
      incarnation;
      durable;
      rpolicy;
      prediction;
      handler;
      driver;
      controller;
      heat;
      flight;
      lane;
      fleet_gossip_armed = false;
    }
  in
  Geonet.Network.register network ~node:id (fun envelope ->
      handle_net t ~src:envelope.Geonet.Network.src envelope.Geonet.Network.payload);
  t

let check_entity_name op entity =
  if String.equal entity Protocol_driver.batch_channel then
    invalid_arg (op ^ ": the empty entity name is reserved")

let init_entity t ~entity ~tokens =
  if tokens < 0 then invalid_arg "Site.init_entity: negative tokens";
  check_entity_name "Site.init_entity" entity;
  let core = Entity_map.register t.entities ~entity ~tokens in
  let ctx = Entity_state.create ~engine:t.engine ~config:t.config ~core in
  Entity_map.set_hot t.entities core ctx;
  if t.config.Config.protocol_batch = 1 then Protocol_driver.attach t.driver ctx;
  (* The initial allocation is written through regardless of sync policy:
     a site must not serve before its starting share is durable. *)
  (match t.durable with
  | None -> ()
  | Some store -> Storage.Durable.force store ~key:entity (Durable_image.capture ctx));
  (* Anti-entropy: periodically reconcile missed decisions (a lost
     Decision message or an aborted recovery must not leave this site's
     contribution un-applied forever). *)
  if t.config.Config.anti_entropy_ms > 0.0 then begin
    let rec gossip () =
      Des.Engine.schedule t.engine ~delay_ms:t.config.Config.anti_entropy_ms (fun () ->
          if !(t.is_alive) then
            Geonet.Network.broadcast t.network ~src:t.site_id (Recovery_query { entity });
          gossip ())
    in
    gossip ()
  end

(* The entities whose tokens can have moved in a redistribution: hot ones,
   plus cold cores whose InitVal is exposed to a live batched instance. *)
let involved (core : _ Entity_map.core) =
  core.Entity_map.hot <> None || core.Entity_map.exposed

(* Bulk registration arms one site-level anti-entropy loop instead of a
   timer per entity: each period it queries peers for the (few) entities
   whose tokens can actually have moved. *)
let ensure_fleet_gossip t =
  if t.config.Config.anti_entropy_ms > 0.0 && not t.fleet_gossip_armed then begin
    t.fleet_gossip_armed <- true;
    let rec gossip () =
      Des.Engine.schedule t.engine ~delay_ms:t.config.Config.anti_entropy_ms (fun () ->
          if !(t.is_alive) then
            Entity_map.iter
              (fun core ->
                if involved core then
                  Geonet.Network.broadcast t.network ~src:t.site_id
                    (Recovery_query { entity = core.Entity_map.name }))
              t.entities;
          gossip ())
    in
    gossip ()
  end

let register_entities t entities =
  List.iter
    (fun (entity, tokens) ->
      if tokens < 0 then invalid_arg "Site.register_entities: negative tokens";
      check_entity_name "Site.register_entities" entity;
      let core = Entity_map.register t.entities ~entity ~tokens in
      (* Crash-amnesia needs a durable image per entity from the start, so
         that mode registers hot; the freeze model keeps the fleet cold. *)
      match t.durable with None -> () | Some _ -> ignore (t.heat core))
    entities;
  ensure_fleet_gossip t

let entity_count t = Entity_map.length t.entities

let hot_entities t = Entity_map.hot_count t.entities

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)

let submit t request ~reply =
  if not !(t.is_alive) then reply Types.Unavailable
  else begin
    (* Request-path heavy-hitters feed: per-lane windowed sketches, so
       the merged top-k is identical at any worker count. Disarmed cost:
       one load and one branch. *)
    (match Obs.Flight_recorder.tap t.flight with
    | None -> ()
    | Some { Obs.Flight_recorder.hot = Some hot; _ } ->
        Obs.Heavy_hitters.Windowed.observe hot ~lane:t.lane
          ~now_ms:(Des.Engine.now t.engine)
          (Types.request_entity request)
    | Some _ -> ());
    match Types.validate request with
    | Error _ -> reply Types.Rejected
    | Ok () -> (
        let entity = Types.request_entity request in
        match request with
        | Types.Read _ ->
            let own =
              match get_core t entity with
              | Some core -> core.Entity_map.tokens_left
              | None -> 0
            in
            Request_handler.serve_read t.handler
              ~deadline_ms:(Types.request_deadline request) ~entity ~own reply
        | Types.Acquire _ | Types.Release _ -> (
            match get_core t entity with
            | None -> reply Types.Rejected
            | Some core -> Request_handler.accept_core t.handler core request reply))
  end

(* ------------------------------------------------------------------ *)
(* Accessors / failure injection                                        *)

let with_core t entity f = match get_core t entity with Some core -> f core | None -> 0

let tokens_left t ~entity = with_core t entity (fun core -> core.Entity_map.tokens_left)
let tokens_wanted t ~entity = with_core t entity (fun core -> core.Entity_map.tokens_wanted)
let acquired_net t ~entity = with_core t entity (fun core -> core.Entity_map.acquired_net)

let queued t ~entity =
  match get_ctx t entity with
  | Some ctx -> Queue.length ctx.Entity_state.queue
  | None -> 0

let queue_peak t ~entity =
  match get_ctx t entity with
  | Some ctx -> ctx.Entity_state.queue_peak
  | None -> 0

let breaker_trips t ~entity =
  match get_ctx t entity with
  | Some ctx -> ctx.Entity_state.breaker_trips
  | None -> 0

let breaker_open t ~entity =
  match get_ctx t entity with
  | Some ctx ->
      Redistribution_policy.breaker_open t.rpolicy
        ~now:(Des.Engine.now t.engine) ctx
  | None -> false

let mechanism t ~entity =
  match (t.controller, get_ctx t entity) with
  | Some _, Some ctx -> Some ctx.Entity_state.ctl_mech
  | _ -> None

let mechanism_switches t =
  match t.controller with Some c -> Controller.switches c | None -> 0

let borrows t =
  match t.controller with Some c -> Controller.borrows c | None -> 0

let borrow_tokens t =
  match t.controller with Some c -> Controller.borrow_tokens c | None -> 0

let pin_policy t ~entity policy =
  match t.controller with
  | None -> invalid_arg "Site.pin_policy: controller disabled"
  | Some c -> (
      match get_core t entity with
      | None -> invalid_arg "Site.pin_policy: unknown entity"
      | Some core -> Controller.pin c (t.heat core) policy)

let shed_deadline t = Request_handler.shed_deadline t.handler
let shed_admission t = Request_handler.shed_admission t.handler
let shed_queue_expired t = Request_handler.shed_queue_expired t.handler
let admission_dropping t = Request_handler.admission_dropping t.handler

let decided_log_length t ~entity =
  match get_ctx t entity with Some ctx -> Entity_state.decided_log_length ctx | None -> 0

let decided_log t ~entity =
  match get_ctx t entity with Some ctx -> Entity_state.decided_log ctx | None -> []

let durable_syncs t =
  match t.durable with Some store -> Storage.Durable.sync_count store | None -> 0

let participating t ~entity =
  match get_core t entity with
  | Some { Entity_map.hot = Some ctx; _ } -> Entity_state.participating ctx
  | Some core -> core.Entity_map.exposed
  | None -> false

let crash t =
  t.is_alive := false;
  Geonet.Network.crash t.network t.site_id;
  Entity_map.iter_hot
    (fun _ (ctx : Entity_state.t) -> Queue.clear ctx.Entity_state.queue)
    t.entities;
  Request_handler.on_crash t.handler;
  match t.durable with
  | None -> () (* freeze model: in-memory state survives the crash *)
  | Some store ->
      (* Crash-amnesia: everything volatile dies with the process. The
         in-memory records are rebuilt from the durable images at recovery;
         bumping the incarnation fences off every timer the dead process
         armed, so the discarded protocol instances stay dead. *)
      incr t.incarnation;
      ignore (Storage.Durable.lose_unsynced store)

let recover t =
  t.is_alive := true;
  Geonet.Network.recover t.network t.site_id;
  (match t.durable with
  | None -> ()
  | Some store ->
      Entity_map.iter_hot
        (fun core ctx ->
          match Storage.Durable.load store ~key:core.Entity_map.name with
          | None -> () (* unreachable: the initial image is forced *)
          | Some image ->
              Entity_state.restore ctx ~config:t.config
                ~tokens_left:image.Durable_image.tokens_left
                ~acquired_net:image.Durable_image.acquired_net
                ~applied_origins:image.Durable_image.applied_origins
                ~decided_log:image.Durable_image.decided_log;
              (* Reattaching resumes any acceptance that survived in the
                 image (possibly broadcasting, hence after the network
                 knows we are back up). *)
              Protocol_driver.attach t.driver ?restore:image.Durable_image.protocol
                ctx)
        t.entities);
  (* Catch up on redistributions decided while we were down: peers answer
     with any decision our InitVal took part in. Cold, never-exposed
     entities cannot have contributed, so the fleet stays quiet. *)
  Entity_map.iter
    (fun core ->
      if involved core then
        Geonet.Network.broadcast t.network ~src:t.site_id
          (Recovery_query { entity = core.Entity_map.name }))
    t.entities

let protocol_stats t =
  Entity_map.fold
    (fun core acc ->
      match core.Entity_map.hot with
      | Some ctx ->
          Avantan_core.add_stats acc (Protocol_driver.protocol_stats t.driver ctx)
      | None -> acc)
    t.entities
    (Protocol_driver.batch_stats t.driver)

let stats t =
  let proto = protocol_stats t in
  {
    served_acquires = Request_handler.served_acquires t.handler;
    served_releases = Request_handler.served_releases t.handler;
    served_reads = Request_handler.served_reads t.handler;
    rejected = Request_handler.rejected t.handler;
    queued_peak = Request_handler.queued_peak t.handler;
    redistributions_led = proto.Avantan_core.led_decided;
    redistributions_started = proto.Avantan_core.led_started;
    redistributions_aborted = proto.Avantan_core.led_aborted;
    proactive_triggers = Prediction.proactive_triggers t.prediction;
    reactive_triggers = Request_handler.reactive_triggers t.handler;
    borrows = borrows t;
    borrow_tokens = borrow_tokens t;
    mechanism_switches = mechanism_switches t;
  }
