(* One site-level batch machine (protocol_batch > 1): a single Avantan
   instance piggybacks up to [protocol_batch] triggered entities' deltas
   in one WAN round. *)
type batch = {
  b_av : Avantan_core.t;
  pending : string Queue.t;
  pending_set : (string, unit) Hashtbl.t;
  exposed_set : (string, unit) Hashtbl.t;
  mutable exposed_order : string list;  (* reverse exposure order *)
}

type t = {
  config : Config.t;
  engine : Des.Engine.t;
  site_id : int;
  n_sites : int;
  send : entity:Types.entity -> dst:int -> Protocol.msg -> unit;
  set_timer : delay_ms:float -> (unit -> unit) -> Des.Engine.timer;
  refresh_wanted : Entity_state.t -> unit;
  register_outcome : Entity_state.t -> aborted:bool -> satisfied:bool -> unit;
  on_event : Types.entity -> Avantan_core.event -> unit;
  persist : Entity_state.t -> unit;
      (** durability hook (crash-amnesia); a no-op under the freeze model *)
  obs : Obs.Sink.port;
  mutable drain : Entity_state.t -> unit;
      (** request handler's queue replay; wired after construction to
          break the handler/driver cycle *)
  mutable resolve : Types.entity -> Entity_state.t Entity_map.core option;
      (** entity-map lookup, wired by the site (batched mode) *)
  mutable heat : Entity_state.t Entity_map.core -> Entity_state.t;
      (** hot-state materialisation, wired by the site (batched mode) *)
  mutable batch : batch option;
}

let create ~config ~engine ~site_id ~n_sites ~send ~set_timer ~refresh_wanted
    ~register_outcome ~on_event ?(persist = fun _ -> ())
    ?(obs = Obs.Sink.port ()) () =
  {
    config;
    engine;
    site_id;
    n_sites;
    send;
    set_timer;
    refresh_wanted;
    register_outcome;
    on_event;
    persist;
    obs;
    drain = (fun _ -> ());
    resolve = (fun _ -> None);
    heat = (fun _ -> invalid_arg "Protocol_driver: heat not wired");
    batch = None;
  }

let obs_incr t name =
  match Obs.Sink.tap t.obs with
  | None -> ()
  | Some sink -> Obs.Metrics.incr (Obs.Metrics.counter sink.Obs.Sink.metrics name)

let obs_observe t name v =
  match Obs.Sink.tap t.obs with
  | None -> ()
  | Some sink ->
      Obs.Metrics.observe (Obs.Metrics.histogram sink.Obs.Sink.metrics name) v

let set_drain t f = t.drain <- f

let set_resolve t f = t.resolve <- f

let set_heat t f = t.heat <- f

let batched t = t.config.Config.protocol_batch > 1

let now t = Des.Engine.now t.engine

(* Apply one decided group's reallocation as a delta against the InitVal
   this site contributed — idempotent per (entity, instance) and
   conserving under races; see DESIGN.md. The decided log records the
   per-entity projection, so recovery answers stay per-entity. Returns
   whether this site's request was satisfied (None when the group does not
   involve it or was already applied). *)
let apply_group t (ctx : Entity_state.t) ~origin (g : Protocol.group) =
  if Hashtbl.mem ctx.applied_origins origin then None
  else begin
    Hashtbl.replace ctx.applied_origins origin ();
    Entity_state.record_decision ctx
      ~retention:t.config.Config.decided_log_retention
      { Protocol.origin; groups = [ g ] };
    let mine =
      List.find_opt
        (fun (e : Protocol.site_entry) -> e.site = t.site_id)
        g.Protocol.g_entries
    in
    match mine with
    | Some init_entry ->
        let grants =
          Reallocation.redistribute_with t.config.Config.reallocation_policy
            g.Protocol.g_entries
        in
        let grant =
          List.find (fun (g : Reallocation.grant) -> g.site = t.site_id) grants
        in
        let delta = grant.Reallocation.new_tokens_left - init_entry.tokens_left in
        ctx.core.tokens_left <- ctx.core.tokens_left + delta;
        obs_observe t "samya.apply.delta_tokens" (Float.abs (float_of_int delta));
        Some (init_entry.tokens_wanted = 0 || grant.Reallocation.wanted_satisfied)
    | None -> None
  end

(* Apply a decided value against one entity's state: per-entity machines
   carry a single group; a batched value applies its matching group. *)
let apply_value t (ctx : Entity_state.t) (value : Protocol.value) =
  match value.Protocol.groups with
  | [ g ] -> apply_group t ctx ~origin:value.Protocol.origin g
  | groups -> (
      match
        List.find_opt
          (fun (g : Protocol.group) ->
            String.equal g.Protocol.g_entity (Entity_state.entity ctx))
          groups
      with
      | Some g -> apply_group t ctx ~origin:value.Protocol.origin g
      | None -> None)

(* Protocol instance finished: apply the decision, report satisfaction to
   the redistribution policy, and hand the queue back to the request
   handler. *)
let on_outcome t (ctx : Entity_state.t) outcome =
  ctx.last_redistribution_ms <- now t;
  (match outcome with
  | Protocol.Decided value ->
      obs_incr t "samya.protocol.decided";
      (match apply_value t ctx value with
      | Some satisfied -> t.register_outcome ctx ~aborted:false ~satisfied
      | None -> ());
      ctx.core.tokens_wanted <- 0
  | Protocol.Aborted ->
      obs_incr t "samya.protocol.aborted";
      t.register_outcome ctx ~aborted:true ~satisfied:(ctx.core.tokens_wanted = 0);
      ctx.core.tokens_wanted <- 0);
  t.drain ctx

(* Instantiate the configured Avantan variant for one entity: both are
   the shared {!Avantan_core} machine under different quorum policies.
   With [restore] the fresh machine is rebuilt from a durable image and
   resumes any surviving acceptance (crash-amnesia recovery). *)
let attach t ?restore (ctx : Entity_state.t) =
  let env =
    {
      Avantan_core.self = t.site_id;
      n_sites = t.n_sites;
      send = (fun dst msg -> t.send ~entity:(Entity_state.entity ctx) ~dst msg);
      set_timer = t.set_timer;
      local_state =
        (fun ~scope:_ ->
          [
            ( "",
              {
                Protocol.site = t.site_id;
                (* A site can be in debt (negative ledger) after an
                   abort-then-redecide race: the carried accept state lets
                   a later leader re-decide a value whose InitVal predates
                   grants this site served believing the instance dead.
                   Debt stays local — the site exposes zero spare and
                   repays as releases come home; deltas are applied
                   against the exposed entry, so the global sum is
                   untouched. *)
                tokens_left = max 0 ctx.core.tokens_left;
                tokens_wanted = ctx.core.tokens_wanted;
              } );
          ]);
      refresh_wanted = (fun ~scope:_ -> t.refresh_wanted ctx);
      my_scope = (fun () -> []);
      on_outcome = (fun outcome -> on_outcome t ctx outcome);
      on_event = (fun event -> t.on_event (Entity_state.entity ctx) event);
      persist = (fun () -> t.persist ctx);
      election_timeout_ms = t.config.Config.election_timeout_ms;
      accept_timeout_ms = t.config.Config.accept_timeout_ms;
      cohort_timeout_ms = t.config.Config.cohort_timeout_ms;
      status_retry_ms = t.config.Config.status_retry_ms;
    }
  in
  let policy =
    match t.config.Config.variant with
    | Config.Majority -> Avantan_majority.policy
    | Config.Star -> Avantan_star.policy
  in
  let av = Avantan_core.create ~policy env in
  ctx.av <- Some av;
  match restore with Some image -> Avantan_core.restore av image | None -> ()

(* ------------------------------------------------------------------ *)
(* Batched site-level machine (protocol_batch > 1)                      *)

(* The reserved entity label of the site-level protocol channel: real
   entities are validated non-empty at registration. *)
let batch_channel = ""

let expose t b entity =
  if not (Hashtbl.mem b.exposed_set entity) then begin
    Hashtbl.replace b.exposed_set entity ();
    b.exposed_order <- entity :: b.exposed_order
  end;
  match t.resolve entity with
  | Some core -> core.Entity_map.exposed <- true
  | None -> ()

(* This site's InitVals for every entity in scope — and the moment they
   leave for (or seed) an instance, those entities are exposed and must
   queue client traffic. Cold entities contribute their core ledger
   without heating. *)
let batch_local_state t b ~scope =
  List.filter_map
    (fun entity ->
      match t.resolve entity with
      | None -> None
      | Some core ->
          expose t b entity;
          Some
            ( entity,
              {
                Protocol.site = t.site_id;
                (* Debt stays local — see the per-entity exposure above. *)
                tokens_left = max 0 core.Entity_map.tokens_left;
                tokens_wanted = core.Entity_map.tokens_wanted;
              } ))
    scope

let batch_refresh_wanted t ~scope =
  List.iter
    (fun entity ->
      match t.resolve entity with
      | Some { Entity_map.hot = Some ctx; _ } -> t.refresh_wanted ctx
      | Some _ | None -> ())
    scope

(* Freeze the next instance's scope: drain pending triggers, skipping
   entities already exposed to a live instance. *)
let batch_my_scope t b () =
  let rec take acc k =
    if k = 0 then List.rev acc
    else
      match Queue.take_opt b.pending with
      | None -> List.rev acc
      | Some entity ->
          Hashtbl.remove b.pending_set entity;
          let live =
            match t.resolve entity with
            | Some core -> not core.Entity_map.exposed
            | None -> false
          in
          if live then take (entity :: acc) (k - 1) else take acc k
  in
  let scope = take [] t.config.Config.protocol_batch in
  obs_observe t "samya.batch.scope" (float_of_int (List.length scope));
  scope

let dedup_keep_first entities =
  List.fold_left
    (fun acc e -> if List.mem e acc then acc else e :: acc)
    [] entities
  |> List.rev

(* Start another instance if triggered entities are still waiting (the
   machine is idle again once its on_outcome ran). *)
let kick t b =
  let live =
    Queue.fold
      (fun acc e ->
        acc
        || match t.resolve e with Some c -> not c.Entity_map.exposed | None -> false)
      false b.pending
  in
  if live then Avantan_core.start b.b_av

(* A batched instance concluded: apply each decided group as a per-entity
   delta (heating entities the decision involves), release every exposure,
   and drain the released queues in exposure order. *)
let on_batch_outcome t b outcome =
  let exposed = List.rev b.exposed_order in
  b.exposed_order <- [];
  Hashtbl.reset b.exposed_set;
  let now_ms = now t in
  let touched =
    match outcome with
    | Protocol.Decided value ->
        dedup_keep_first
          (exposed @ List.map (fun g -> g.Protocol.g_entity) value.Protocol.groups)
    | Protocol.Aborted -> exposed
  in
  (match outcome with
  | Protocol.Decided value ->
      obs_incr t "samya.protocol.decided";
      obs_observe t "samya.batch.decided_groups"
        (float_of_int (List.length value.Protocol.groups));
      List.iter
        (fun (g : Protocol.group) ->
          match t.resolve g.Protocol.g_entity with
          | None -> ()
          | Some core ->
              let ctx =
                match core.Entity_map.hot with Some c -> c | None -> t.heat core
              in
              ctx.Entity_state.last_redistribution_ms <- now_ms;
              (match apply_group t ctx ~origin:value.Protocol.origin g with
              | Some satisfied -> t.register_outcome ctx ~aborted:false ~satisfied
              | None -> ());
              core.Entity_map.tokens_wanted <- 0)
        value.Protocol.groups
  | Protocol.Aborted ->
      obs_incr t "samya.protocol.aborted";
      List.iter
        (fun entity ->
          match t.resolve entity with
          | Some ({ Entity_map.hot = Some ctx; _ } as core) ->
              ctx.Entity_state.last_redistribution_ms <- now_ms;
              t.register_outcome ctx ~aborted:true
                ~satisfied:(core.Entity_map.tokens_wanted = 0);
              core.Entity_map.tokens_wanted <- 0
          | Some core -> core.Entity_map.tokens_wanted <- 0
          | None -> ())
        exposed);
  List.iter
    (fun entity ->
      match t.resolve entity with
      | Some core -> core.Entity_map.exposed <- false
      | None -> ())
    touched;
  List.iter
    (fun entity ->
      match t.resolve entity with
      | Some { Entity_map.hot = Some ctx; _ } -> t.drain ctx
      | Some _ | None -> ())
    touched;
  kick t b

let make_batch t =
  let rec b =
    lazy
      (let env =
         {
           Avantan_core.self = t.site_id;
           n_sites = t.n_sites;
           send = (fun dst msg -> t.send ~entity:batch_channel ~dst msg);
           set_timer = t.set_timer;
           local_state = (fun ~scope -> batch_local_state t (Lazy.force b) ~scope);
           refresh_wanted = (fun ~scope -> batch_refresh_wanted t ~scope);
           my_scope = (fun () -> batch_my_scope t (Lazy.force b) ());
           on_outcome = (fun outcome -> on_batch_outcome t (Lazy.force b) outcome);
           on_event = (fun event -> t.on_event batch_channel event);
           persist = (fun () -> ());
           election_timeout_ms = t.config.Config.election_timeout_ms;
           accept_timeout_ms = t.config.Config.accept_timeout_ms;
           cohort_timeout_ms = t.config.Config.cohort_timeout_ms;
           status_retry_ms = t.config.Config.status_retry_ms;
         }
       in
       let policy =
         match t.config.Config.variant with
         | Config.Majority -> Avantan_majority.policy
         | Config.Star -> Avantan_star.policy
       in
       {
         b_av = Avantan_core.create ~policy env;
         pending = Queue.create ();
         pending_set = Hashtbl.create 64;
         exposed_set = Hashtbl.create 64;
         exposed_order = [];
       })
  in
  Lazy.force b

let get_batch t =
  match t.batch with
  | Some b -> b
  | None ->
      let b = make_batch t in
      t.batch <- Some b;
      b

let trigger t (ctx : Entity_state.t) =
  if batched t then begin
    let b = get_batch t in
    let entity = Entity_state.entity ctx in
    if
      (not ctx.core.Entity_map.exposed)
      && not (Hashtbl.mem b.pending_set entity)
    then begin
      Hashtbl.replace b.pending_set entity ();
      Queue.push entity b.pending
    end;
    kick t b
  end
  else match ctx.av with Some av -> Avantan_core.start av | None -> ()

let handle _t (ctx : Entity_state.t) ~src msg =
  match ctx.av with Some av -> Avantan_core.handle av ~src msg | None -> ()

let handle_batch t ~src msg =
  if batched t then Avantan_core.handle (get_batch t).b_av ~src msg

(* The retained decisions that involve [peer]: those are the instances
   that may have moved its tokens while it was down. *)
let recovery_decisions _t (ctx : Entity_state.t) ~peer =
  Entity_state.decisions_for ctx ~peer

(* Apply missed decisions in instance order; the origin-keyed dedupe
   makes overlapping peer replies harmless. *)
let apply_recovery t (ctx : Entity_state.t) decisions =
  let ordered =
    List.sort
      (fun (a : Protocol.value) (b : Protocol.value) ->
        Consensus.Ballot.compare a.Protocol.origin b.Protocol.origin)
      decisions
  in
  List.iter (fun value -> ignore (apply_value t ctx value)) ordered;
  if ordered <> [] then t.persist ctx

let protocol_stats _t (ctx : Entity_state.t) =
  match ctx.av with
  | Some av -> Avantan_core.stats av
  | None -> Avantan_core.zero_stats

let batch_stats t =
  match t.batch with
  | Some b -> Avantan_core.stats b.b_av
  | None -> Avantan_core.zero_stats
