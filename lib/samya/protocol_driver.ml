type t = {
  config : Config.t;
  engine : Des.Engine.t;
  site_id : int;
  n_sites : int;
  send : entity:Types.entity -> dst:int -> Protocol.msg -> unit;
  set_timer : delay_ms:float -> (unit -> unit) -> Des.Engine.timer;
  refresh_wanted : Entity_state.t -> unit;
  register_outcome : Entity_state.t -> satisfied:bool -> unit;
  on_event : Types.entity -> Avantan_core.event -> unit;
  persist : Entity_state.t -> unit;
      (** durability hook (crash-amnesia); a no-op under the freeze model *)
  obs : Obs.Sink.port;
  mutable drain : Entity_state.t -> unit;
      (** request handler's queue replay; wired after construction to
          break the handler/driver cycle *)
}

let create ~config ~engine ~site_id ~n_sites ~send ~set_timer ~refresh_wanted
    ~register_outcome ~on_event ?(persist = fun _ -> ())
    ?(obs = Obs.Sink.port ()) () =
  {
    config;
    engine;
    site_id;
    n_sites;
    send;
    set_timer;
    refresh_wanted;
    register_outcome;
    on_event;
    persist;
    obs;
    drain = (fun _ -> ());
  }

let obs_incr t name =
  match Obs.Sink.tap t.obs with
  | None -> ()
  | Some sink -> Obs.Metrics.incr (Obs.Metrics.counter sink.Obs.Sink.metrics name)

let set_drain t f = t.drain <- f

let now t = Des.Engine.now t.engine

(* Apply a decided value's reallocation as a delta against the InitVal
   this site contributed — idempotent per instance (origin-keyed) and
   conserving under races; see DESIGN.md. Returns whether this site's
   request was satisfied (None when the value does not involve it or was
   already applied). *)
let apply_value t (ctx : Entity_state.t) (value : Protocol.value) =
  if Hashtbl.mem ctx.applied_origins value.Protocol.origin then None
  else begin
    Hashtbl.replace ctx.applied_origins value.Protocol.origin ();
    Entity_state.record_decision ctx
      ~retention:t.config.Config.decided_log_retention value;
    let mine =
      List.find_opt
        (fun (e : Protocol.site_entry) -> e.site = t.site_id)
        value.Protocol.entries
    in
    match mine with
    | Some init_entry ->
        let grants =
          Reallocation.redistribute_with t.config.Config.reallocation_policy
            value.Protocol.entries
        in
        let grant =
          List.find (fun (g : Reallocation.grant) -> g.site = t.site_id) grants
        in
        let delta = grant.Reallocation.new_tokens_left - init_entry.tokens_left in
        ctx.tokens_left <- ctx.tokens_left + delta;
        (match Obs.Sink.tap t.obs with
        | None -> ()
        | Some sink ->
            Obs.Metrics.observe
              (Obs.Metrics.histogram sink.Obs.Sink.metrics
                 "samya.apply.delta_tokens")
              (Float.abs (float_of_int delta)));
        Some (init_entry.tokens_wanted = 0 || grant.Reallocation.wanted_satisfied)
    | None -> None
  end

(* Protocol instance finished: apply the decision, report satisfaction to
   the redistribution policy, and hand the queue back to the request
   handler. *)
let on_outcome t (ctx : Entity_state.t) outcome =
  ctx.last_redistribution_ms <- now t;
  (match outcome with
  | Protocol.Decided value ->
      obs_incr t "samya.protocol.decided";
      (match apply_value t ctx value with
      | Some satisfied -> t.register_outcome ctx ~satisfied
      | None -> ());
      ctx.tokens_wanted <- 0
  | Protocol.Aborted ->
      obs_incr t "samya.protocol.aborted";
      t.register_outcome ctx ~satisfied:(ctx.tokens_wanted = 0);
      ctx.tokens_wanted <- 0);
  t.drain ctx

(* Instantiate the configured Avantan variant for one entity: both are
   the shared {!Avantan_core} machine under different quorum policies.
   With [restore] the fresh machine is rebuilt from a durable image and
   resumes any surviving acceptance (crash-amnesia recovery). *)
let attach t ?restore (ctx : Entity_state.t) =
  let env =
    {
      Avantan_core.self = t.site_id;
      n_sites = t.n_sites;
      send = (fun dst msg -> t.send ~entity:ctx.entity ~dst msg);
      set_timer = t.set_timer;
      local_state =
        (fun () ->
          {
            Protocol.site = t.site_id;
            tokens_left = ctx.tokens_left;
            tokens_wanted = ctx.tokens_wanted;
          });
      refresh_wanted = (fun () -> t.refresh_wanted ctx);
      on_outcome = (fun outcome -> on_outcome t ctx outcome);
      on_event = (fun event -> t.on_event ctx.entity event);
      persist = (fun () -> t.persist ctx);
      election_timeout_ms = t.config.Config.election_timeout_ms;
      accept_timeout_ms = t.config.Config.accept_timeout_ms;
      cohort_timeout_ms = t.config.Config.cohort_timeout_ms;
      status_retry_ms = t.config.Config.status_retry_ms;
    }
  in
  let policy =
    match t.config.Config.variant with
    | Config.Majority -> Avantan_majority.policy
    | Config.Star -> Avantan_star.policy
  in
  let av = Avantan_core.create ~policy env in
  ctx.av <- Some av;
  match restore with Some image -> Avantan_core.restore av image | None -> ()

let trigger _t (ctx : Entity_state.t) =
  match ctx.av with Some av -> Avantan_core.start av | None -> ()

let handle _t (ctx : Entity_state.t) ~src msg =
  match ctx.av with Some av -> Avantan_core.handle av ~src msg | None -> ()

(* The retained decisions that involve [peer]: those are the instances
   that may have moved its tokens while it was down. *)
let recovery_decisions _t (ctx : Entity_state.t) ~peer =
  Entity_state.decisions_for ctx ~peer

(* Apply missed decisions in instance order; the origin-keyed dedupe
   makes overlapping peer replies harmless. *)
let apply_recovery t (ctx : Entity_state.t) decisions =
  let ordered =
    List.sort
      (fun (a : Protocol.value) (b : Protocol.value) ->
        Consensus.Ballot.compare a.Protocol.origin b.Protocol.origin)
      decisions
  in
  List.iter (fun value -> ignore (apply_value t ctx value)) ordered;
  if ordered <> [] then t.persist ctx

let protocol_stats _t (ctx : Entity_state.t) =
  match ctx.av with
  | Some av -> Avantan_core.stats av
  | None -> Avantan_core.zero_stats
