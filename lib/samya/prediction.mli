(** The Prediction Module of a site (§4.2): forecaster integration over
    the per-entity demand tracker, the predicted-need target, and the
    proactive redistribution trigger (Equation 4).

    Without a forecaster the module falls back to a persistence forecast
    of the last epoch's net demand; prediction can also be disabled
    entirely via {!Config.t.prediction_enabled} (the Fig. 3f ablation), in
    which case {!refresh_wanted} is a no-op and {!reactive_wanted} passes
    the triggering amount through unchanged. *)

type t

val create : config:Config.t -> ?forecaster:Ml.Forecaster.t -> unit -> t

val proactive_triggers : t -> int
(** Proactive instances this module has triggered (Fig. 3f bookkeeping). *)

val predicted_need : t -> Entity_state.t -> int
(** The token pool the site wants to hold: [buffer_epochs] worth of the
    forecast per-epoch net consumption plus working capital covering the
    recently observed peak concurrent draw. *)

val requested_pool : t -> Entity_state.t -> int -> int
(** The high watermark a triggered redistribution asks for:
    [request_headroom x need], shrunk by the famine [request_scale]. *)

val refresh_wanted : t -> Entity_state.t -> unit
(** Algorithm 1 lines 9–11: re-predict and raise [tokens_wanted] before
    the entity's state is exposed to an election. *)

val reactive_wanted : t -> Entity_state.t -> amount:int -> int
(** What a reactive trigger (Equation 5) should request: at least the
    unservable [amount], folded with the forecast buffer when prediction
    is enabled so one synchronization covers the demand about to follow. *)

val proactive_check :
  t ->
  now:float ->
  cooldown_ok:(unit -> bool) ->
  trigger:(unit -> unit) ->
  Entity_state.t ->
  unit
(** Equation 4, rate-limited by [proactive_check_ms]: when the forecast
    exceeds the local pool, the entity is not already redistributing, and
    [cooldown_ok ()] holds, set [tokens_wanted] and call [trigger]. *)
