(** A Samya site: the thin coordinator over the four Fig. 2 modules.

    The behaviour lives in the per-module implementations, wired together
    over shared {!Entity_state} records at {!create} time:

    - {!Request_handler} — serve [acquireTokens]/[releaseTokens] locally,
      queue while a redistribution holds the entity's state exposed, and
      fan out global-snapshot reads (§5.8);
    - {!Prediction} — forecaster integration ([predicted_need]), proactive
      trigger checks (Equation 4) and reactive ask sizing (Equation 5);
    - {!Protocol_driver} — per-entity Avantan instances (both variants are
      {!Avantan_core} under different quorum policies), decided-value
      application, and the bounded decided-log recovery path;
    - {!Redistribution_policy} — cooldown, famine backoff, and
      request-scale heuristics between instances.

    Ablations: {!Config.t} switches off prediction, redistribution, or the
    constraint itself, reproducing the baselines of Figs. 3e/3f. *)

type net_msg =
  | Avantan of { entity : Types.entity; msg : Protocol.msg }
  | Read_query of { entity : Types.entity; rid : int }
  | Read_reply of { entity : Types.entity; rid : int; tokens_left : int }
  | Recovery_query of { entity : Types.entity }
      (** a recovering site asks peers for decided values it may have
          missed while crashed *)
  | Recovery_reply of { entity : Types.entity; decisions : Protocol.value list }
  | Borrow_request of { entity : Types.entity; needed : int }
      (** the borrow mechanism asks a peer for [needed] tokens *)
  | Borrow_grant of { entity : Types.entity; tokens : int }
      (** the lender's answer; [tokens = 0] still advances the borrower's
          conversation to its next peer *)

type t

val create :
  config:Config.t ->
  network:net_msg Geonet.Network.t ->
  id:int ->
  ?forecaster:Ml.Forecaster.t ->
  ?on_protocol_event:(entity:Types.entity -> Avantan_core.event -> unit) ->
  ?obs:Obs.Sink.port ->
  ?flight:Obs.Flight_recorder.port ->
  ?lane:int ->
  unit ->
  t
(** Registers the site's handler with the network at node [id]. Without a
    [forecaster] the site falls back to a persistence forecast of the last
    epoch's demand (prediction can still be disabled entirely via
    [config]). [on_protocol_event] observes every {!Avantan_core.event} of
    every entity's protocol instance — elections, accepts, aborts,
    decisions with round counts — without touching protocol state. [obs]
    is the late-bound observability port shared by the site's request
    handler and protocol driver. [flight] is the always-on
    flight-recorder port ([lane] = the site's hosting-region engine
    lane): when armed, leader-side protocol outcomes, breaker trips,
    sheds and mechanism switches are recorded into that lane's ring, and
    the attachment's hot-key sketch is fed from {!submit}. Disarmed cost
    is one load and one branch per instrumented point. *)

val id : t -> int

val init_entity : t -> entity:Types.entity -> tokens:int -> unit
(** Installs this site's initial share of entity [entity]'s tokens, hot:
    the per-entity state is materialised and (per-entity mode) a protocol
    machine attached immediately, with a per-entity anti-entropy timer.
    Every site must be initialised consistently; {!Cluster} does this. *)

val register_entities : t -> (Types.entity * int) list -> unit
(** Bulk registration for large fleets: each entity starts cold — a
    compact core holding its share, no queue/tracker/protocol state —
    and heats on first contention. One site-level anti-entropy loop
    covers the whole fleet (querying only entities whose tokens can have
    moved). Under crash-amnesia the entities register hot instead, since
    each needs a durable image from the start. *)

val entity_count : t -> int

val hot_entities : t -> int
(** Entities whose heavyweight state is currently materialised. *)

val submit : t -> Types.request -> reply:(Types.response -> unit) -> unit
(** A client request as delivered by an app manager (transport latency
    already accounted for by the caller). [reply] fires when the request is
    granted/rejected — possibly much later if it is queued behind a
    redistribution. *)

val tokens_left : t -> entity:Types.entity -> int

val tokens_wanted : t -> entity:Types.entity -> int

val acquired_net : t -> entity:Types.entity -> int
(** Granted acquires minus granted releases at this site — summed across
    sites this must never exceed the entity's maximum (Equation 1). *)

val queued : t -> entity:Types.entity -> int

val queue_peak : t -> entity:Types.entity -> int
(** Per-entity high-water mark of the redistribution queue — the per-key
    companion of the site-wide [queued_peak] stat, so overload scenarios
    can show which keys the admission gate is protecting. *)

val breaker_trips : t -> entity:Types.entity -> int
(** Times the redistribution circuit breaker opened for this entity. *)

val breaker_open : t -> entity:Types.entity -> bool

val mechanism : t -> entity:Types.entity -> Config.Controller.mechanism option
(** The {!Mechanism} currently handling this entity's shortfalls;
    [None] when the controller is disabled or the entity is cold. *)

val mechanism_switches : t -> int
(** Controller mechanism switches across all entities of this site. *)

val borrows : t -> int
(** Borrow conversations finished at this site (as borrower). *)

val borrow_tokens : t -> int
(** Tokens obtained through borrowing (as borrower). *)

val pin_policy : t -> entity:Types.entity -> Config.Controller.policy -> unit
(** Per-entity policy override (the org escalation topology): a static
    pin freezes the entity on that mechanism, an adaptive pin re-enables
    the state machine. Heats the entity. Raises [Invalid_argument] if the
    controller is disabled or the entity unknown. *)

val shed_deadline : t -> int
(** Requests shed on arrival because their deadline had already passed. *)

val shed_admission : t -> int
(** Acquires shed by the CoDel-style admission gate. *)

val shed_queue_expired : t -> int
(** Parked queue entries discarded (not replayed) because their effective
    deadline passed while the entity's state was exposed. *)

val admission_dropping : t -> bool
(** Is the admission gate currently in drop mode? (test hook) *)

val decided_log_length : t -> entity:Types.entity -> int
(** Entries currently retained for peer recovery; never exceeds
    {!Config.t.decided_log_retention}. *)

val decided_log : t -> entity:Types.entity -> Protocol.value list
(** The retained decided values, newest first (the chaos auditor checks
    cross-site consistency and per-site origin uniqueness over these). *)

val durable_syncs : t -> int
(** Stable-storage flushes performed so far (0 under the freeze model) —
    a proxy for the fsync cost of the configured
    {!Config.t.durability_sync} policy. *)

val participating : t -> entity:Types.entity -> bool

val crash : t -> unit
(** Stops serving, drops queued requests, freezes protocol participation
    (timers are inert while crashed). With {!Config.t.amnesia_on_crash}
    the crash additionally discards all volatile state: unsynced durable
    writes are lost and every timer of the dead incarnation is fenced
    off. *)

val recover : t -> unit
(** Restores service and runs the recovery catch-up: peers are asked for
    redistribution decisions that involved this site while it was down,
    and any missed ones are applied (each instance moves tokens exactly
    once). With {!Config.t.amnesia_on_crash} the per-entity state is first
    rebuilt from the durable image — token ledger, applied-origins dedupe
    set, decided log, and protocol state, resuming any acceptance that
    survived the crash. *)

val alive : t -> bool

type stats = {
  served_acquires : int;
  served_releases : int;
  served_reads : int;
  rejected : int;
  queued_peak : int;
  redistributions_led : int;  (** decided instances this site drove *)
  redistributions_started : int;
  redistributions_aborted : int;
  proactive_triggers : int;
  reactive_triggers : int;
  borrows : int;  (** borrow conversations finished (as borrower) *)
  borrow_tokens : int;  (** tokens obtained through borrowing *)
  mechanism_switches : int;  (** controller switches across entities *)
}

val stats : t -> stats

val protocol_stats : t -> Avantan_core.stats
(** The unified protocol counters, aggregated over this site's entities. *)
