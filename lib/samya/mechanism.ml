type kind = Config.Controller.mechanism =
  | Escrow
  | Borrow
  | Redistribute

let kind_name = Config.Controller.mechanism_name

type verdict = Park of string | Refuse

type outcome = {
  o_kind : kind;
  o_satisfied : bool;
  o_obtained : int;
  o_wait_ms : float;
}

type t = {
  kind : kind;
  try_acquire : Entity_state.t -> amount:int -> verdict;
  engage : Entity_state.t -> unit;
  replenish_hint : Entity_state.t -> amount:int -> int;
  cost_estimate : unit -> float;
  note_cost : float -> unit;
}

(* Shared cost model: an EWMA of observed engagement latencies, seeded
   with a prior so a mechanism that has never run still ranks sensibly. *)
let ewma ~seed =
  let cost = ref seed in
  let estimate () = !cost in
  let note ms = cost := (0.8 *. !cost) +. (0.2 *. ms) in
  (estimate, note)

(* ------------------------------------------------------------------ *)
(* Escrow: serve within the local pool only. A shortfall has, by
   definition, already exhausted the headroom — refuse instantly, no
   tokens move, no WAN traffic. *)

let escrow () =
  {
    kind = Escrow;
    try_acquire = (fun _ ~amount:_ -> Refuse);
    engage = (fun _ -> ());
    replenish_hint = (fun _ ~amount:_ -> 0);
    cost_estimate = (fun () -> 0.0);
    note_cost = (fun _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* Peer borrowing: the demarcation baseline's protocol lifted into a
   Samya-native mechanism. Ask peers in proximity order for the queued
   shortfall plus a quantum; tokens move directly between site ledgers
   (one one-way message each direction, no consensus round). Requests
   park behind the conversation exactly as they do behind a
   redistribution. *)

type borrow_deps = {
  bd_engine : Des.Engine.t;
  bd_site : int;
  bd_peers : int list;  (* proximity order, self excluded *)
  bd_quantum : int;
  bd_patience_ms : float;
  bd_alive : unit -> bool;
  bd_send : dst:int -> entity:Types.entity -> needed:int -> unit;
  bd_obs : Obs.Sink.port;
  mutable bd_drain : Entity_state.t -> satisfied:bool -> unit;
      (* Request_handler.drain_queue, wired after the handler exists *)
  mutable bd_on_finish : Entity_state.t -> outcome -> unit;
      (* the controller's signal feed, wired after the controller exists *)
}

let borrow_deps ~engine ~site_id ~peers ~quantum ~patience_ms ~alive ~send
    ?(obs = Obs.Sink.port ()) () =
  {
    bd_engine = engine;
    bd_site = site_id;
    bd_peers = peers;
    bd_quantum = quantum;
    bd_patience_ms = patience_ms;
    bd_alive = alive;
    bd_send = send;
    bd_obs = obs;
    bd_drain = (fun _ ~satisfied:_ -> ());
    bd_on_finish = (fun _ _ -> ());
  }

let set_borrow_drain deps drain = deps.bd_drain <- drain
let set_borrow_on_finish deps f = deps.bd_on_finish <- f

let queued_acquire_total (ctx : Entity_state.t) =
  Queue.fold
    (fun acc (request, _, _, _) ->
      match request with
      | Types.Acquire { amount; _ } -> acc + amount
      | _ -> acc)
    0 ctx.Entity_state.queue

(* What a borrow still needs: the queued acquires the local pool cannot
   cover. Recomputed before every ask — releases and grants that landed
   meanwhile shrink it. *)
let borrow_needed (ctx : Entity_state.t) =
  queued_acquire_total ctx - max 0 ctx.Entity_state.core.Entity_map.tokens_left

(* Lender sizing (the demarcation rule): cover the asker's shortfall plus
   a quantum so one grant buys a little future demand, never more than
   the lender's own pool. *)
let grant_for ~quantum ~tokens_left ~needed =
  min (max 0 tokens_left) (needed + quantum)

let finish_borrow deps (ctx : Entity_state.t) (b : Entity_state.borrow)
    ~satisfied =
  (match b.Entity_state.b_patience with
  | Some timer -> Des.Engine.cancel timer
  | None -> ());
  b.Entity_state.b_patience <- None;
  ctx.Entity_state.borrow <- None;
  let now = Des.Engine.now deps.bd_engine in
  (* The conversation appears on the triggering request's causal timeline
     as a protocol phase, so `explain` attributes the wait to the
     mechanism (component protocol.mech.borrow). *)
  (match Obs.Sink.tap deps.bd_obs with
  | None -> ()
  | Some sink ->
      if not (Des.Trace_context.is_none b.Entity_state.b_ctx) then
        Obs.Causal.record sink.Obs.Sink.causal
          (Obs.Causal.Phase
             {
               trace = b.Entity_state.b_ctx.Des.Trace_context.trace;
               site = deps.bd_site;
               name = "mech.borrow";
               t0 = b.Entity_state.b_t0;
               t1 = now;
             }));
  deps.bd_on_finish ctx
    {
      o_kind = Borrow;
      o_satisfied = satisfied;
      o_obtained = b.Entity_state.b_obtained;
      o_wait_ms = now -. b.Entity_state.b_t0;
    };
  deps.bd_drain ctx ~satisfied

let ask_next deps (ctx : Entity_state.t) (b : Entity_state.borrow) =
  let needed = borrow_needed ctx in
  if needed <= 0 then finish_borrow deps ctx b ~satisfied:true
  else
    match b.Entity_state.b_to_ask with
    | [] -> finish_borrow deps ctx b ~satisfied:false
    | peer :: rest ->
        b.Entity_state.b_to_ask <- rest;
        deps.bd_send ~dst:peer ~entity:(Entity_state.entity ctx) ~needed;
        b.Entity_state.b_patience <-
          Some
            (Des.Engine.timer ~label:"samya.borrow.patience" deps.bd_engine
               ~delay_ms:deps.bd_patience_ms (fun () ->
                 if deps.bd_alive () then
                   (* Give up on the silent peer (crashed, partitioned, or
                      its grant was dropped): settle for what arrived. *)
                   match ctx.Entity_state.borrow with
                   | Some b' when b' == b ->
                       finish_borrow deps ctx b
                         ~satisfied:(borrow_needed ctx <= 0)
                   | Some _ | None -> ()))

(* A grant landed: bank the tokens, then either finish (covered) or walk
   to the next peer. Tokens from a late grant (after the conversation
   finished or died with a crash) still land in the ledger — conservation
   does not depend on the conversation being alive. *)
let on_grant deps (ctx : Entity_state.t) ~tokens =
  ctx.Entity_state.core.Entity_map.tokens_left <-
    ctx.Entity_state.core.Entity_map.tokens_left + tokens;
  match ctx.Entity_state.borrow with
  | None -> ()
  | Some b ->
      b.Entity_state.b_obtained <- b.Entity_state.b_obtained + tokens;
      (match b.Entity_state.b_patience with
      | Some timer -> Des.Engine.cancel timer
      | None -> ());
      b.Entity_state.b_patience <- None;
      ask_next deps ctx b

let borrow deps =
  let cost_estimate, note_cost = ewma ~seed:60.0 in
  {
    kind = Borrow;
    try_acquire =
      (fun ctx ~amount:_ ->
        match ctx.Entity_state.borrow with
        | Some _ -> Park "borrow" (* join the in-flight conversation *)
        | None ->
            if deps.bd_peers = [] then Refuse
            else begin
              ctx.Entity_state.borrow <-
                Some
                  {
                    Entity_state.b_to_ask = deps.bd_peers;
                    b_patience = None;
                    b_obtained = 0;
                    b_ctx = Des.Engine.current_context deps.bd_engine;
                    b_t0 = Des.Engine.now deps.bd_engine;
                  };
              Park "borrow"
            end);
    engage =
      (fun ctx ->
        (* Only a conversation with no ask outstanding needs the first
           ask fired; joins see the armed patience timer and no-op. The
           triggering request is already parked, so [borrow_needed]
           counts it. *)
        match ctx.Entity_state.borrow with
        | Some b when b.Entity_state.b_patience = None -> ask_next deps ctx b
        | Some _ | None -> ());
    replenish_hint =
      (fun ctx ~amount ->
        max amount (borrow_needed ctx) + deps.bd_quantum);
    cost_estimate;
    note_cost;
  }

(* ------------------------------------------------------------------ *)
(* Avantan redistribution: today's consensus path, wrapped. The verdict
   logic is exactly the legacy reactive branch of the request handler:
   famine backoff and breaker gate the trigger, the prediction module
   sizes the ask. *)

let redistribute ~now ~reactive_ok ~reactive_wanted ~trigger =
  let cost_estimate, note_cost = ewma ~seed:400.0 in
  {
    kind = Redistribute;
    try_acquire =
      (fun ctx ~amount ->
        if Entity_state.participating ctx then Park "redistribution"
        else if reactive_ok ctx then begin
          let wanted = reactive_wanted ctx ~amount in
          ctx.Entity_state.core.Entity_map.tokens_wanted <-
            max ctx.Entity_state.core.Entity_map.tokens_wanted wanted;
          ctx.Entity_state.last_redistribution_ms <- now ();
          Park "redistribution"
        end
        else Refuse);
    engage =
      (fun ctx ->
        if not (Entity_state.participating ctx) then trigger ctx);
    replenish_hint = (fun ctx ~amount -> reactive_wanted ctx ~amount);
    cost_estimate;
    note_cost;
  }
