(** Client-visible data model (§3.2).

    An {e entity} is a resource type (e.g. "VM"); its instances are
    indistinguishable {e tokens}. Clients acquire and release tokens;
    Samya tracks usage so that collectively no more than the preset
    maximum [m_e] is ever acquired (Equation 1). *)

type entity = string

type request =
  | Acquire of { entity : entity; amount : int; deadline_ms : float }
      (** [acquireTokens(e, n)], [n > 0]. [deadline_ms] is the absolute
          virtual time after which the reply is worthless to the client
          ([infinity] = none): a site sheds the request on arrival if it
          is already dead and discards it from redistribution queues once
          it expires. *)
  | Release of { entity : entity; amount : int; deadline_ms : float }
      (** [releaseTokens(e, m)], [m > 0] *)
  | Read of { entity : entity; deadline_ms : float }
      (** global-snapshot read of total available tokens (§5.8) *)

type response =
  | Granted
  | Rejected  (** not enough tokens anywhere, or site gave up redistribution *)
  | Rejected_deadline
      (** shed: the deadline passed before the site would have served it
          (dead on arrival, expired in a queue, or dropped by the
          admission gate). Deliberately distinct from {!Rejected} so
          clients can tell "no tokens" from "try again later". *)
  | Read_result of { tokens_available : int }
  | Unavailable  (** no reachable site to serve the request *)

val request_entity : request -> entity

val request_deadline : request -> float
(** The request's absolute deadline, [infinity] when it carries none. *)

val acquire : ?deadline_ms:float -> entity:entity -> amount:int -> unit -> request
val release : ?deadline_ms:float -> entity:entity -> amount:int -> unit -> request
val read : ?deadline_ms:float -> entity:entity -> unit -> request
(** Constructors defaulting [deadline_ms] to [infinity]. *)

val validate : request -> (unit, string) result
(** Rejects non-positive amounts and NaN deadlines. *)

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
