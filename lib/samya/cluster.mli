(** A complete Samya deployment: engine, geo network, sites, and the
    app-manager routing layer between clients and sites.

    App managers are stateless relays co-located with clients (the paper's
    evaluation merges them, §5.2); routing picks the nearest live site and
    fails over to the next-nearest when a region's site is down. Client
    transport latency (client → app manager → site and back) is simulated
    on top of the inter-site network's latency model.

    The cluster also exposes the failure injection (crashes, partitions)
    and the global accounting used by the invariant checks and the
    experiment harness. *)

type t

val create :
  ?seed:int64 ->
  ?engine_jobs:int ->
  config:Config.t ->
  regions:Geonet.Region.t array ->
  ?forecaster:Ml.Forecaster.t ->
  ?drop_probability:float ->
  ?on_protocol_event:(site:int -> entity:Types.entity -> Avantan_core.event -> unit) ->
  ?obs:Obs.Sink.port ->
  unit ->
  t
(** One site per entry of [regions] (node ids follow array order). The
    forecaster, when given, is shared by all sites' Prediction Modules.
    [on_protocol_event] observes every protocol instance of every site —
    see {!Site.create}. [obs] is one late-bound observability port shared
    by every site's request handler and protocol driver (a facade's
    [subscribe] attaches a sink to it).

    [engine_jobs] (default [0]) selects the simulation backend. [0] is
    the legacy single-engine path, byte-identical to earlier releases.
    [n >= 1] shards the simulation by hosting region onto one engine per
    lane (see {!Des.Shard}), drained by up to [n] domains; results are
    byte-identical for every [n >= 1] — the value changes wall time
    only. Falls back to the legacy path when fewer than two distinct
    regions host sites. *)

val engine : t -> Des.Engine.t
(** The engine of a legacy deployment; lane 0's engine of a sharded one
    (callers that need a specific lane use {!engine_of_region}). *)

val shard : t -> Des.Shard.t option
(** The shard coordinator of a sharded deployment, [None] on legacy. *)

val lanes : t -> int
(** Number of simulation lanes ([1] on the legacy path). *)

val engine_of_region : t -> Geonet.Region.t -> Des.Engine.t
(** The engine that executes events homed in [region] — where the driver
    schedules that region's client issue events. *)

val now : t -> float
(** Virtual time. On a sharded deployment, barrier time (meaningful
    between {!run_until} windows and at global events). *)

val run_until : t -> until_ms:float -> unit
(** Advance the simulation to [until_ms] (all lanes, on a sharded
    deployment). *)

val schedule_global : t -> time_ms:float -> (unit -> unit) -> unit
(** Schedule a barrier-aligned event — the only safe way to mutate
    cross-lane shared state (crashes, partitions, link faults) in a
    sharded run. On the legacy path this is plain [schedule_at]. *)

val network : t -> Site.net_msg Geonet.Network.t
val n_sites : t -> int
val site : t -> int -> Site.t
val sites : t -> Site.t array

val init_entity : t -> entity:Types.entity -> maximum:int -> unit
(** Splits [maximum] tokens equally across sites (remainder to the lowest
    ids), as in the paper's setup (M_e = 5000 over 5 sites → 1000 each). *)

val init_entity_shares : t -> entity:Types.entity -> shares:int array -> unit
(** Uneven initial allocation (e.g. derived from historic demand). *)

val register_entities : t -> (Types.entity * int) list -> unit
(** Bulk fleet registration: each [(entity, maximum)] is split equally
    across sites like {!init_entity}, but the entities start cold —
    compact cores that heat on first contention ({!Site.register_entities}).
    List order fixes the dense entity ids identically at every site. *)

val entity_count : t -> int
(** Registered entities (identical at every site by construction). *)

val hot_entities : t -> int
(** Materialised hot entities, summed over sites. *)

val submit :
  t -> region:Geonet.Region.t -> Types.request -> reply:(Types.response -> unit) -> unit
(** Client request from [region]: routed via the local app manager to the
    nearest live site; [reply] fires when the response reaches the client
    (transport + service + queueing latency included). With no live site
    reachable the reply is [Unavailable]. *)

val submit_to_site :
  t -> site:int -> Types.request -> reply:(Types.response -> unit) -> unit
(** Bypass routing (tests). *)

val crash_site : t -> int -> unit
val recover_site : t -> int -> unit
val partition : t -> int list list -> unit
val heal : t -> unit

val arm_flight : t -> Obs.Flight_recorder.attachment -> unit
(** Arm the always-on incident layer: sites record protocol outcomes,
    breaker trips, sheds and mechanism switches into per-lane rings, the
    cluster records injected faults (lane -1), and the attachment's
    hot-key sketch is fed from the request path. Does {e not} force
    sequential windows — per-lane rings are single-writer, and on a
    sharded run the barrier hook drains them into the recorder's global
    buffer. Dumps are byte-identical at any [--engine-jobs]. *)

val total_tokens_left : t -> entity:Types.entity -> int
val total_acquired : t -> entity:Types.entity -> int

val check_invariant : t -> entity:Types.entity -> maximum:int -> (unit, string) result
(** Equation 1 plus token conservation: [0 <= total_acquired <= maximum]
    and [total_tokens_left + total_acquired = maximum]. Meaningful at
    quiescent points (no decision deliveries in flight). *)

val pin_policy : t -> entity:Types.entity -> Config.Controller.policy -> unit
(** {!Site.pin_policy} on every site: pin the entity's token-movement
    policy cluster-wide (the org escalation topology applies its tier
    pins through this). Requires {!Config.Controller.enabled}. *)

val total_redistributions : t -> int
(** Decided instances, summed over leading sites (the paper's
    "208 vs 792 redistributions" metric). *)

val aggregate_site_stats : t -> Site.stats
(** {!Site.stats} summed over all sites ([queued_peak] takes the max). *)

val aggregate_protocol_stats : t -> Avantan_core.stats
(** The unified {!Avantan_core.stats}, summed over all sites and
    entities (both variants share the one counter set). *)
