module Ballot = Consensus.Ballot

type site_entry = Reallocation.entry = {
  site : int;
  tokens_left : int;
  tokens_wanted : int;
}

type group = {
  g_entity : string;
  g_entries : site_entry list;
}

type value = {
  origin : Ballot.t;
  groups : group list;
}

type contrib = string * site_entry

(* Legacy single-entity constructor: per-entity protocol instances label
   their one group with the empty scope marker — the owning driver knows
   which entity the machine is bound to. *)
let make_value ~origin entries = { origin; groups = [ { g_entity = ""; g_entries = entries } ] }

let make_batched ~origin groups = { origin; groups }

let entries value = List.concat_map (fun g -> g.g_entries) value.groups

let participants value =
  List.concat_map (fun g -> List.map (fun e -> e.site) g.g_entries) value.groups
  |> List.sort_uniq compare

let mem_site value site =
  List.exists (fun g -> List.exists (fun e -> e.site = site) g.g_entries) value.groups

let entities value = List.map (fun g -> g.g_entity) value.groups

let project value ~entity =
  match List.find_opt (fun g -> String.equal g.g_entity entity) value.groups with
  | Some g -> Some { origin = value.origin; groups = [ g ] }
  | None -> None

let value_equal a b = Ballot.equal a.origin b.origin && a.groups = b.groups

type msg =
  | Election_get_value of { bal : Ballot.t; scope : string list }
  | Election_ok_value of {
      bal : Ballot.t;
      contribs : contrib list;
      accept_val : value option;
      accept_num : Ballot.t;
      decision : bool;
    }
  | Election_reject of { bal : Ballot.t }
  | Accept_value of { bal : Ballot.t; value : value; decision : bool }
  | Accept_ok of { bal : Ballot.t }
  | Decision of { bal : Ballot.t; value : value }
  | Discard of { bal : Ballot.t }
  | Status_query of { bal : Ballot.t }
  | Status_reply of {
      bal : Ballot.t;
      accept_val : value option;
      accept_num : Ballot.t;
      decision : bool;
    }

let pp_msg fmt = function
  | Election_get_value { bal; scope = [] } ->
      Format.fprintf fmt "Election-GetValue(%a)" Ballot.pp bal
  | Election_get_value { bal; scope } ->
      Format.fprintf fmt "Election-GetValue(%a, |scope|=%d)" Ballot.pp bal
        (List.length scope)
  | Election_ok_value { bal; contribs = [ (_, e) ]; decision; _ } ->
      Format.fprintf fmt "ElectionOk-Value(%a, TL=%d, TW=%d, dec=%b)" Ballot.pp bal
        e.tokens_left e.tokens_wanted decision
  | Election_ok_value { bal; contribs; decision; _ } ->
      Format.fprintf fmt "ElectionOk-Value(%a, |c|=%d, dec=%b)" Ballot.pp bal
        (List.length contribs) decision
  | Election_reject { bal } -> Format.fprintf fmt "Election-Reject(%a)" Ballot.pp bal
  | Accept_value { bal; value; decision } ->
      Format.fprintf fmt "Accept-Value(%a, |R|=%d, dec=%b)" Ballot.pp bal
        (List.length (participants value)) decision
  | Accept_ok { bal } -> Format.fprintf fmt "Accept-Ok(%a)" Ballot.pp bal
  | Decision { bal; value } ->
      Format.fprintf fmt "Decision(%a, |R|=%d)" Ballot.pp bal
        (List.length (participants value))
  | Discard { bal } -> Format.fprintf fmt "Discard(%a)" Ballot.pp bal
  | Status_query { bal } -> Format.fprintf fmt "Status-Query(%a)" Ballot.pp bal
  | Status_reply { bal; decision; _ } ->
      Format.fprintf fmt "Status-Reply(%a, dec=%b)" Ballot.pp bal decision

let msg_ballot = function
  | Election_get_value { bal; _ }
  | Election_ok_value { bal; _ }
  | Election_reject { bal }
  | Accept_value { bal; _ }
  | Accept_ok { bal }
  | Decision { bal; _ }
  | Discard { bal }
  | Status_query { bal }
  | Status_reply { bal; _ } ->
      bal

type outcome =
  | Decided of value
  | Aborted
