(** The protocol-facing module of a site: instantiates the configured
    Avantan variant per entity (both are the shared {!Avantan_core}
    machine under different quorum policies), applies decided values to
    the local pool, and owns the recovery path over the bounded decided
    log.

    Decision application is idempotent per instance (origin-keyed) and
    conserving under races: each site moves its own tokens by the delta
    between its InitVal contribution and the grant the reallocation policy
    computes from the decided value. *)

type t

val create :
  config:Config.t ->
  engine:Des.Engine.t ->
  site_id:int ->
  n_sites:int ->
  send:(entity:Types.entity -> dst:int -> Protocol.msg -> unit) ->
  set_timer:(delay_ms:float -> (unit -> unit) -> Des.Engine.timer) ->
  refresh_wanted:(Entity_state.t -> unit) ->
  register_outcome:(Entity_state.t -> satisfied:bool -> unit) ->
  on_event:(Types.entity -> Avantan_core.event -> unit) ->
  ?persist:(Entity_state.t -> unit) ->
  ?obs:Obs.Sink.port ->
  unit ->
  t
(** [persist] is the crash-amnesia durability hook, invoked whenever an
    entity's protocol-critical state changes (see
    {!Avantan_core.env.persist}) and after recovery replay; defaults to a
    no-op (freeze model). [obs] is the late-bound observability port (see
    {!Request_handler.create}): with a sink attached, decisions, aborts
    and applied token deltas feed the [samya.*] metrics. *)

val set_drain : t -> (Entity_state.t -> unit) -> unit
(** Wire the request handler's queue replay, called when an instance
    ends. Deferred past construction to break the handler/driver cycle. *)

val attach : t -> ?restore:Avantan_core.image -> Entity_state.t -> unit
(** Create the entity's protocol instance and store it in the state
    record. [restore] rebuilds the fresh machine from a durable image and
    resumes any surviving acceptance (crash-amnesia recovery). *)

val trigger : t -> Entity_state.t -> unit
(** Start a redistribution as leader (no-op while already
    participating). *)

val handle : t -> Entity_state.t -> src:int -> Protocol.msg -> unit

val apply_value : t -> Entity_state.t -> Protocol.value -> bool option
(** Apply one decided value. [Some satisfied] when this site contributed
    an InitVal and the value was new; [None] when it does not involve
    this site or was already applied. *)

val recovery_decisions : t -> Entity_state.t -> peer:int -> Protocol.value list
(** What to answer a recovering peer: the retained decisions whose
    participant set includes it. *)

val apply_recovery : t -> Entity_state.t -> Protocol.value list -> unit
(** Apply a peer's recovery reply in instance (ballot) order. *)

val protocol_stats : t -> Entity_state.t -> Avantan_core.stats
