(** The protocol-facing module of a site: instantiates the configured
    Avantan variant per entity (both are the shared {!Avantan_core}
    machine under different quorum policies), applies decided values to
    the local pool, and owns the recovery path over the bounded decided
    log.

    With [Config.protocol_batch > 1] the per-entity machines are replaced
    by one site-level machine: triggered entities queue, each instance
    freezes a scope of up to [protocol_batch] of them, and one WAN round
    piggybacks every scoped entity's deltas. Decided values then carry one
    group per entity, applied as independent per-entity projections.

    Decision application is idempotent per (entity, instance)
    (origin-keyed) and conserving under races: each site moves its own
    tokens by the delta between its InitVal contribution and the grant the
    reallocation policy computes from the decided group. *)

type t

val create :
  config:Config.t ->
  engine:Des.Engine.t ->
  site_id:int ->
  n_sites:int ->
  send:(entity:Types.entity -> dst:int -> Protocol.msg -> unit) ->
  set_timer:(delay_ms:float -> (unit -> unit) -> Des.Engine.timer) ->
  refresh_wanted:(Entity_state.t -> unit) ->
  register_outcome:(Entity_state.t -> aborted:bool -> satisfied:bool -> unit) ->
  on_event:(Types.entity -> Avantan_core.event -> unit) ->
  ?persist:(Entity_state.t -> unit) ->
  ?obs:Obs.Sink.port ->
  unit ->
  t
(** [persist] is the crash-amnesia durability hook, invoked whenever an
    entity's protocol-critical state changes (see
    {!Avantan_core.env.persist}) and after recovery replay; defaults to a
    no-op (freeze model). [obs] is the late-bound observability port (see
    {!Request_handler.create}): with a sink attached, decisions, aborts
    and applied token deltas feed the [samya.*] metrics. *)

val set_drain : t -> (Entity_state.t -> unit) -> unit
(** Wire the request handler's queue replay, called when an instance
    ends. Deferred past construction to break the handler/driver cycle. *)

val set_resolve : t -> (Types.entity -> Entity_state.t Entity_map.core option) -> unit
(** Wire the site's entity-map lookup (required in batched mode). *)

val set_heat : t -> (Entity_state.t Entity_map.core -> Entity_state.t) -> unit
(** Wire the site's hot-state materialiser (required in batched mode:
    decided groups heat the entities they involve). *)

val batch_channel : Types.entity
(** The reserved entity label ([""]) the site-level machine's messages
    travel under; real entities are validated non-empty. *)

val attach : t -> ?restore:Avantan_core.image -> Entity_state.t -> unit
(** Create the entity's protocol instance and store it in the state
    record. [restore] rebuilds the fresh machine from a durable image and
    resumes any surviving acceptance (crash-amnesia recovery). Per-entity
    mode only — under batching entities share the site-level machine. *)

val trigger : t -> Entity_state.t -> unit
(** Start a redistribution as leader (no-op while already
    participating). In batched mode this enqueues the entity for the
    site-level machine's next scope instead. *)

val handle : t -> Entity_state.t -> src:int -> Protocol.msg -> unit

val handle_batch : t -> src:int -> Protocol.msg -> unit
(** Deliver a message from the site-level batch channel. *)

val apply_value : t -> Entity_state.t -> Protocol.value -> bool option
(** Apply one decided value. [Some satisfied] when this site contributed
    an InitVal and the value was new; [None] when it does not involve
    this site or was already applied. *)

val recovery_decisions : t -> Entity_state.t -> peer:int -> Protocol.value list
(** What to answer a recovering peer: the retained decisions whose
    participant set includes it. *)

val apply_recovery : t -> Entity_state.t -> Protocol.value list -> unit
(** Apply a peer's recovery reply in instance (ballot) order. *)

val protocol_stats : t -> Entity_state.t -> Avantan_core.stats

val batch_stats : t -> Avantan_core.stats
(** The site-level machine's counters (zero when none was ever created). *)
