type t = {
  engine : Des.Engine.t;
  network : Site.net_msg Geonet.Network.t;
  regions : Geonet.Region.t array;
  sites : Site.t array;
  rng : Des.Rng.t;
}

let create ?(seed = 42L) ~config ~regions ?forecaster ?(drop_probability = 0.0)
    ?on_protocol_event ?obs () =
  if Array.length regions = 0 then invalid_arg "Cluster.create: no regions";
  let engine = Des.Engine.create ~seed () in
  let network = Geonet.Network.create engine ~regions ~drop_probability () in
  let sites =
    Array.init (Array.length regions) (fun id ->
        let on_protocol_event =
          Option.map (fun f -> fun ~entity event -> f ~site:id ~entity event)
            on_protocol_event
        in
        Site.create ~config ~network ~id ?forecaster ?on_protocol_event ?obs ())
  in
  { engine; network; regions; sites; rng = Des.Rng.split (Des.Engine.rng engine) }

let engine t = t.engine
let network t = t.network
let n_sites t = Array.length t.sites
let site t i = t.sites.(i)
let sites t = t.sites

let init_entity_shares t ~entity ~shares =
  if Array.length shares <> Array.length t.sites then
    invalid_arg "Cluster.init_entity_shares: one share per site required";
  Array.iteri (fun i tokens -> Site.init_entity t.sites.(i) ~entity ~tokens) shares

let init_entity t ~entity ~maximum =
  if maximum < 0 then invalid_arg "Cluster.init_entity: negative maximum";
  let n = Array.length t.sites in
  let share = maximum / n and extra = maximum mod n in
  let shares = Array.init n (fun i -> share + if i < extra then 1 else 0) in
  init_entity_shares t ~entity ~shares

(* Nearest live site to a client region, app-manager failover included. *)
let route t ~region =
  let best = ref None in
  Array.iteri
    (fun i site ->
      if Site.alive site then begin
        let distance = Geonet.Region.one_way_ms region t.regions.(i) in
        match !best with
        | Some (_, d) when d <= distance -> ()
        | Some _ | None -> best := Some (i, distance)
      end)
    t.sites;
  !best

(* Client -> app manager (same region) -> site, plus jitter; and the same
   way back. *)
let client_leg_ms t ~region ~site_index =
  let base =
    (Geonet.Region.client_site_rtt_ms /. 2.0)
    +. Geonet.Region.one_way_ms region t.regions.(site_index)
  in
  base +. Des.Rng.float t.rng (0.05 *. base)

let submit_to_site t ~site request ~reply = Site.submit t.sites.(site) request ~reply

let submit t ~region request ~reply =
  match route t ~region with
  | None -> reply Types.Unavailable
  | Some (site_index, _) ->
      let there = client_leg_ms t ~region ~site_index in
      Des.Engine.schedule t.engine ~delay_ms:there (fun () ->
          let target = t.sites.(site_index) in
          if not (Site.alive target) then
            (* The site died while the request was in flight. *)
            Des.Engine.schedule t.engine ~delay_ms:there (fun () -> reply Types.Unavailable)
          else
            Site.submit target request ~reply:(fun response ->
                let back = client_leg_ms t ~region ~site_index in
                Des.Engine.schedule t.engine ~delay_ms:back (fun () -> reply response)))

let crash_site t i = Site.crash t.sites.(i)
let recover_site t i = Site.recover t.sites.(i)
let partition t groups = Geonet.Network.set_partition t.network groups
let heal t = Geonet.Network.clear_partition t.network

let total_tokens_left t ~entity =
  Array.fold_left (fun acc site -> acc + Site.tokens_left site ~entity) 0 t.sites

let total_acquired t ~entity =
  Array.fold_left (fun acc site -> acc + Site.acquired_net site ~entity) 0 t.sites

let check_invariant t ~entity ~maximum =
  let acquired = total_acquired t ~entity in
  let left = total_tokens_left t ~entity in
  if acquired < 0 then Error (Printf.sprintf "negative total acquisition: %d" acquired)
  else if acquired > maximum then
    Error (Printf.sprintf "constraint violated: %d acquired > maximum %d" acquired maximum)
  else if left + acquired <> maximum then
    Error
      (Printf.sprintf "tokens not conserved: left %d + acquired %d <> maximum %d" left
         acquired maximum)
  else Ok ()

let total_redistributions t =
  Array.fold_left
    (fun acc site -> acc + (Site.stats site).Site.redistributions_led)
    0 t.sites

let aggregate_protocol_stats t =
  Array.fold_left
    (fun acc site -> Avantan_core.add_stats acc (Site.protocol_stats site))
    Avantan_core.zero_stats t.sites

let aggregate_site_stats t =
  Array.fold_left
    (fun (acc : Site.stats) site ->
      let s = Site.stats site in
      Site.
        {
          served_acquires = acc.served_acquires + s.served_acquires;
          served_releases = acc.served_releases + s.served_releases;
          served_reads = acc.served_reads + s.served_reads;
          rejected = acc.rejected + s.rejected;
          queued_peak = max acc.queued_peak s.queued_peak;
          redistributions_led = acc.redistributions_led + s.redistributions_led;
          redistributions_started = acc.redistributions_started + s.redistributions_started;
          redistributions_aborted = acc.redistributions_aborted + s.redistributions_aborted;
          proactive_triggers = acc.proactive_triggers + s.proactive_triggers;
          reactive_triggers = acc.reactive_triggers + s.reactive_triggers;
        })
    Site.
      {
        served_acquires = 0;
        served_releases = 0;
        served_reads = 0;
        rejected = 0;
        queued_peak = 0;
        redistributions_led = 0;
        redistributions_started = 0;
        redistributions_aborted = 0;
        proactive_triggers = 0;
        reactive_triggers = 0;
      }
    t.sites
