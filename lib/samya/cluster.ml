(* Legacy deployments run on one engine with one client-leg RNG split
   from its root — byte-identical to the pre-sharding code. A sharded
   deployment ([engine_jobs >= 1] with at least two hosting regions)
   places each site on its region's shard lane and gives every lane its
   own deterministic client-leg stream: leg jitter is drawn by whichever
   lane executes the leg (client lane outbound, site lane for the
   return), so the draw order — and therefore the whole run — does not
   depend on how many domains drain the windows. *)
type sched =
  | Single of { engine : Des.Engine.t; rng : Des.Rng.t }
  | Sharded of {
      shard : Des.Shard.t;
      region_lane : int array; (* lane per Region.index *)
      lane_leg_rngs : Des.Rng.t array;
    }

type t = {
  sched : sched;
  network : Site.net_msg Geonet.Network.t;
  regions : Geonet.Region.t array;
  sites : Site.t array;
  flight : Obs.Flight_recorder.port;
      (* one port shared by every site (each writes to its own lane) and
         by the cluster itself for fault events (lane -1) *)
}

let make_sites ~config ~network ~regions ~flight ~node_lane ?forecaster
    ?on_protocol_event ?obs () =
  Array.init (Array.length regions) (fun id ->
      let on_protocol_event =
        Option.map (fun f -> fun ~entity event -> f ~site:id ~entity event)
          on_protocol_event
      in
      Site.create ~config ~network ~id ?forecaster ?on_protocol_event ?obs
        ~flight ~lane:node_lane.(id) ())

let create ?(seed = 42L) ?(engine_jobs = 0) ~config ~regions ?forecaster
    ?(drop_probability = 0.0) ?on_protocol_event ?obs () =
  if Array.length regions = 0 then invalid_arg "Cluster.create: no regions";
  let node_lane, region_lane, lanes = Geonet.Region.lane_assignment regions in
  (* Sites record into their *logical* lane's ring in every mode — a
     jobs-0 run and a sharded one produce the same per-lane streams. *)
  let flight = Obs.Flight_recorder.port () in
  if engine_jobs >= 1 && lanes >= 2 then begin
    let lookahead_ms = Geonet.Region.min_cross_one_way_ms () in
    let shard = Des.Shard.create ~seed ~workers:engine_jobs ~lanes ~lookahead_ms () in
    let network =
      Geonet.Network.create_sharded shard ~node_lane ~seed ~regions ~drop_probability ()
    in
    let sites =
      make_sites ~config ~network ~regions ~flight ~node_lane ?forecaster
        ?on_protocol_event ?obs ()
    in
    (* Leg streams hang off reserved namespace 62 of the root seed — the
       network uses 63, lane engines use 0 .. lanes-1; none overlap. *)
    let root = Des.Rng.stream_seed seed 62 in
    let lane_leg_rngs = Array.init lanes (Des.Rng.stream root) in
    {
      sched = Sharded { shard; region_lane; lane_leg_rngs };
      network;
      regions;
      sites;
      flight;
    }
  end
  else begin
    let engine = Des.Engine.create ~seed () in
    let network = Geonet.Network.create engine ~regions ~drop_probability () in
    let sites =
      make_sites ~config ~network ~regions ~flight ~node_lane ?forecaster
        ?on_protocol_event ?obs ()
    in
    let sched = Single { engine; rng = Des.Rng.split (Des.Engine.rng engine) } in
    { sched; network; regions; sites; flight }
  end

let engine t =
  match t.sched with
  | Single s -> s.engine
  | Sharded s -> Des.Shard.engine s.shard 0

let shard t = match t.sched with Single _ -> None | Sharded s -> Some s.shard

let lanes t = match t.sched with Single _ -> 1 | Sharded s -> Des.Shard.lanes s.shard

let engine_of_region t region =
  match t.sched with
  | Single s -> s.engine
  | Sharded s -> Des.Shard.engine s.shard s.region_lane.(Geonet.Region.index region)

let now t =
  match t.sched with
  | Single s -> Des.Engine.now s.engine
  | Sharded s -> Des.Shard.now s.shard

let run_until t ~until_ms =
  match t.sched with
  | Single s -> Des.Engine.run s.engine ~until_ms
  | Sharded s -> Des.Shard.run s.shard ~until_ms

let schedule_global t ~time_ms f =
  match t.sched with
  | Single s -> Des.Engine.schedule_at s.engine ~time_ms f
  | Sharded s -> Des.Shard.schedule_global s.shard ~time_ms f

let network t = t.network
let n_sites t = Array.length t.sites
let site t i = t.sites.(i)
let sites t = t.sites

let init_entity_shares t ~entity ~shares =
  if Array.length shares <> Array.length t.sites then
    invalid_arg "Cluster.init_entity_shares: one share per site required";
  Array.iteri (fun i tokens -> Site.init_entity t.sites.(i) ~entity ~tokens) shares

let init_entity t ~entity ~maximum =
  if maximum < 0 then invalid_arg "Cluster.init_entity: negative maximum";
  let n = Array.length t.sites in
  let share = maximum / n and extra = maximum mod n in
  let shares = Array.init n (fun i -> share + if i < extra then 1 else 0) in
  init_entity_shares t ~entity ~shares

(* Bulk fleet registration: the same equal split as [init_entity], but the
   entities start cold at every site (see {!Site.register_entities}). Each
   site receives the full list in one call, in list order, so dense entity
   ids agree across sites. *)
let register_entities t entities =
  let n = Array.length t.sites in
  let split =
    List.map
      (fun (entity, maximum) ->
        if maximum < 0 then
          invalid_arg "Cluster.register_entities: negative maximum";
        (entity, maximum / n, maximum mod n))
      entities
  in
  Array.iteri
    (fun i site ->
      Site.register_entities site
        (List.map
           (fun (entity, share, extra) ->
             (entity, (share + if i < extra then 1 else 0)))
           split))
    t.sites

let entity_count t =
  if Array.length t.sites = 0 then 0 else Site.entity_count t.sites.(0)

let hot_entities t =
  Array.fold_left (fun acc site -> acc + Site.hot_entities site) 0 t.sites

(* Nearest live site to a client region, app-manager failover included. *)
let route t ~region =
  let best = ref None in
  Array.iteri
    (fun i site ->
      if Site.alive site then begin
        let distance = Geonet.Region.one_way_ms region t.regions.(i) in
        match !best with
        | Some (_, d) when d <= distance -> ()
        | Some _ | None -> best := Some (i, distance)
      end)
    t.sites;
  !best

(* Client -> app manager (same region) -> site, plus jitter; and the same
   way back. [rng] is the leg stream of the lane executing the draw. *)
let client_leg_ms t rng ~region ~site_index =
  let base =
    (Geonet.Region.client_site_rtt_ms /. 2.0)
    +. Geonet.Region.one_way_ms region t.regions.(site_index)
  in
  base +. Des.Rng.float rng (0.05 *. base)

let submit_to_site t ~site request ~reply = Site.submit t.sites.(site) request ~reply

(* Schedule a client leg between the client's lane and the site's lane.
   A cross-lane leg always joins distinct regions, so its latency is at
   least the shard lookahead — exactly the safety contract
   [Shard.schedule_cross] enforces. Same-lane legs (client co-located
   with the site, or homed to it as nearest hosted region) stay local. *)
let schedule_leg t ~from_lane ~to_lane ~delay_ms f =
  match t.sched with
  | Single s -> Des.Engine.schedule s.engine ~delay_ms f
  | Sharded s ->
      let src_engine = Des.Shard.engine s.shard from_lane in
      let time_ms = Des.Engine.now src_engine +. delay_ms in
      if from_lane = to_lane then Des.Engine.schedule_at src_engine ~time_ms f
      else Des.Shard.schedule_cross s.shard ~src:from_lane ~dst:to_lane ~time_ms f

let leg_rng t ~lane =
  match t.sched with Single s -> s.rng | Sharded s -> s.lane_leg_rngs.(lane)

let submit t ~region request ~reply =
  match route t ~region with
  | None -> reply Types.Unavailable
  | Some (site_index, _) ->
      let client_lane =
        match t.sched with
        | Single _ -> 0
        | Sharded s -> s.region_lane.(Geonet.Region.index region)
      in
      let site_lane =
        match t.sched with
        | Single _ -> 0
        | Sharded s -> s.region_lane.(Geonet.Region.index t.regions.(site_index))
      in
      (* Executes on the client's lane: the outbound draw comes from it. *)
      let there = client_leg_ms t (leg_rng t ~lane:client_lane) ~region ~site_index in
      schedule_leg t ~from_lane:client_lane ~to_lane:site_lane ~delay_ms:there (fun () ->
          let target = t.sites.(site_index) in
          if not (Site.alive target) then
            (* The site died while the request was in flight. *)
            schedule_leg t ~from_lane:site_lane ~to_lane:client_lane ~delay_ms:there
              (fun () -> reply Types.Unavailable)
          else
            Site.submit target request ~reply:(fun response ->
                (* Executes on the site's lane: the return draw is its. *)
                let back =
                  client_leg_ms t (leg_rng t ~lane:site_lane) ~region ~site_index
                in
                schedule_leg t ~from_lane:site_lane ~to_lane:client_lane ~delay_ms:back
                  (fun () -> reply response)))

(* Fault events land in lane -1: they are injected between windows (via
   barrier-aligned globals on a sharded run), so stamping them from the
   coordinating domain is race-free in every mode. *)
let flight_fault t detail =
  match Obs.Flight_recorder.tap t.flight with
  | None -> ()
  | Some a ->
      Obs.Flight_recorder.record a.Obs.Flight_recorder.recorder ~lane:(-1)
        ~ts:(now t) ~kind:Obs.Flight_recorder.Fault detail

let crash_site t i =
  flight_fault t (Printf.sprintf "crash site %d" i);
  Site.crash t.sites.(i)

let recover_site t i =
  flight_fault t (Printf.sprintf "recover site %d" i);
  Site.recover t.sites.(i)

let partition t groups =
  flight_fault t
    (Printf.sprintf "partition {%s}"
       (String.concat "|"
          (List.map
             (fun g -> String.concat "," (List.map string_of_int g))
             groups)));
  Geonet.Network.set_partition t.network groups

let heal t =
  flight_fault t "heal";
  Geonet.Network.clear_partition t.network

(* Arm the always-on incident layer: every site starts recording into
   its lane's ring and feeding the attachment's hot-key sketch. Unlike an
   observability subscription this does NOT force sequential windows —
   lane rings are single-writer by construction. On a sharded run the
   barrier hook drains lane rings into the recorder's global buffer to
   bound per-lane memory; dumps are identical with or without it. *)
let arm_flight t (attachment : Obs.Flight_recorder.attachment) =
  Obs.Flight_recorder.attach t.flight attachment;
  match t.sched with
  | Single _ -> ()
  | Sharded s ->
      Des.Shard.set_barrier_hook s.shard (fun () ->
          Obs.Flight_recorder.drain attachment.Obs.Flight_recorder.recorder)

let total_tokens_left t ~entity =
  Array.fold_left (fun acc site -> acc + Site.tokens_left site ~entity) 0 t.sites

let total_acquired t ~entity =
  Array.fold_left (fun acc site -> acc + Site.acquired_net site ~entity) 0 t.sites

let check_invariant t ~entity ~maximum =
  let acquired = total_acquired t ~entity in
  let left = total_tokens_left t ~entity in
  if acquired < 0 then Error (Printf.sprintf "negative total acquisition: %d" acquired)
  else if acquired > maximum then
    Error (Printf.sprintf "constraint violated: %d acquired > maximum %d" acquired maximum)
  else if left + acquired <> maximum then
    Error
      (Printf.sprintf "tokens not conserved: left %d + acquired %d <> maximum %d" left
         acquired maximum)
  else Ok ()

let pin_policy t ~entity policy =
  Array.iter (fun site -> Site.pin_policy site ~entity policy) t.sites

let total_redistributions t =
  Array.fold_left
    (fun acc site -> acc + (Site.stats site).Site.redistributions_led)
    0 t.sites

let aggregate_protocol_stats t =
  Array.fold_left
    (fun acc site -> Avantan_core.add_stats acc (Site.protocol_stats site))
    Avantan_core.zero_stats t.sites

let aggregate_site_stats t =
  Array.fold_left
    (fun (acc : Site.stats) site ->
      let s = Site.stats site in
      Site.
        {
          served_acquires = acc.served_acquires + s.served_acquires;
          served_releases = acc.served_releases + s.served_releases;
          served_reads = acc.served_reads + s.served_reads;
          rejected = acc.rejected + s.rejected;
          queued_peak = max acc.queued_peak s.queued_peak;
          redistributions_led = acc.redistributions_led + s.redistributions_led;
          redistributions_started = acc.redistributions_started + s.redistributions_started;
          redistributions_aborted = acc.redistributions_aborted + s.redistributions_aborted;
          proactive_triggers = acc.proactive_triggers + s.proactive_triggers;
          reactive_triggers = acc.reactive_triggers + s.reactive_triggers;
          borrows = acc.borrows + s.borrows;
          borrow_tokens = acc.borrow_tokens + s.borrow_tokens;
          mechanism_switches = acc.mechanism_switches + s.mechanism_switches;
        })
    Site.
      {
        served_acquires = 0;
        served_releases = 0;
        served_reads = 0;
        rejected = 0;
        queued_peak = 0;
        redistributions_led = 0;
        redistributions_started = 0;
        redistributions_aborted = 0;
        proactive_triggers = 0;
        reactive_triggers = 0;
        borrows = 0;
        borrow_tokens = 0;
        mechanism_switches = 0;
      }
    t.sites
