type t = Avantan_core.t

type env = Avantan_core.env

include Avantan_core.Stats

let policy =
  {
    Avantan_core.name = "Avantan[(n+1)/2]";
    seed_self = true;
    carry_accept_state = true;
    busy_cohort_rejects = false;
    scope_to_participants = false;
    abort_when_all_reported = false;
    discard_unheard_on_abort = false;
    discard_stragglers = false;
    cohort_recovery = `Rerun_leader;
    construct_ready =
      (fun ~n_sites ~own:_ ~reports -> Hashtbl.length reports >= (n_sites / 2) + 1);
    salvage_on_timeout = (fun ~reports:_ -> false);
    decide_ready =
      (fun ~n_sites ~participants:_ ~acks -> Hashtbl.length acks >= (n_sites / 2) + 1);
  }

let create env = Avantan_core.create ~policy env

let start = Avantan_core.start

let handle = Avantan_core.handle

let participating = Avantan_core.participating

let ballot = Avantan_core.ballot

let stats = Avantan_core.stats
