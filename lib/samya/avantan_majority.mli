(** Avantan[(n+1)/2] — the majority-quorum redistribution protocol
    (Algorithm 1, §4.3.1), as an instantiation of {!Avantan_core}.

    The policy: the construction quorum is a majority of all [n] sites
    (the leader's own report included), the decision quorum is a majority
    of acknowledgements, accepted values persist across instances and ride
    along in election replies (so quorum intersection forces a recovering
    leader to adopt any possibly-decided value — Theorem 1), and a cohort
    whose leader goes silent re-runs the same leader code with a higher
    ballot. A leader that cannot assemble a majority in phase 1 aborts (it
    constructed nothing), telling responders to discard; a leader that
    stored a value but cannot gather majority acks re-broadcasts until a
    majority is back — the blocking case §4.3.1 describes.

    The machine is transport-agnostic and engine-driven like the
    {!Consensus} protocols; {!Site} owns request queueing and applies
    decided values through {!Reallocation}. *)

type t = Avantan_core.t

type env = Avantan_core.env

val policy : Avantan_core.policy
(** Majority-of-n construction and decision quorums. *)

val create : env -> t

val start : t -> unit
(** Trigger a redistribution as leader. No-op unless {!participating} is
    [false]. *)

val handle : t -> src:int -> Protocol.msg -> unit

val participating : t -> bool
(** [true] while this site's InitVal is exposed to a live instance — the
    interval during which the owning site must queue client requests. *)

val ballot : t -> Consensus.Ballot.t

include module type of struct include Avantan_core.Stats end
(** The shared stats surface; [recoveries] is always 0 in this variant. *)

val stats : t -> stats
