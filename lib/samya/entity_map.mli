(** Sharded per-site entity arena: one compact {!core} per registered
    entity, dense entity ids, and lazily materialised "hot" state.

    A production gateway holds millions of aggregate objects of which only
    a few are contended at any moment. The arena keeps a cold entity at a
    handful of words — its name, dense id, and token ledger — and defers
    everything heavyweight (request queue, demand tracker, decided log,
    protocol machine) to the ['hot] payload, attached on first contention
    by the owning {!Site}. Lookups hash into one of [shards] tables;
    iteration runs in dense-eid (registration) order, so results never
    depend on the shard count. *)

type 'hot core = {
  name : string;
  eid : int;  (** dense site-local id, assigned in registration order *)
  mutable tokens_left : int;
  mutable acquired_net : int;
  mutable tokens_wanted : int;
  mutable exposed : bool;
      (** participation flag for the batched site-level protocol: [true]
          while this entity's InitVal is exposed to a live instance (the
          per-entity machines track exposure internally instead) *)
  mutable hot : 'hot option;
      (** the heavyweight per-entity state ({!Entity_state.t} in the
          site), [None] while the entity is cold *)
}

type 'hot t

val create : ?shards:int -> ?capacity:int -> unit -> 'hot t
(** [capacity] is a size hint for the arena and the shard tables. Raises
    [Invalid_argument] unless [shards >= 1] and [capacity >= 1]. *)

val register : 'hot t -> entity:string -> tokens:int -> 'hot core
(** Add a cold entity holding [tokens]. Raises [Invalid_argument] on a
    duplicate name or negative tokens. *)

val find : 'hot t -> string -> 'hot core option

val by_eid : 'hot t -> int -> 'hot core
(** Raises [Invalid_argument] out of range. *)

val set_hot : 'hot t -> 'hot core -> 'hot -> unit
(** Attach hot state to a core (keeps {!hot_count} correct). *)

val length : 'hot t -> int

val hot_count : 'hot t -> int

val shard_count : 'hot t -> int

val iter : ('hot core -> unit) -> 'hot t -> unit
(** Dense-eid order — deterministic, shard-count independent. *)

val iter_hot : ('hot core -> 'hot -> unit) -> 'hot t -> unit

val fold : ('hot core -> 'a -> 'a) -> 'hot t -> 'a -> 'a
