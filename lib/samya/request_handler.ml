type read_ctx = {
  r_entity : Types.entity;
  mutable acc : int;
  mutable replies : int;
  r_reply : Types.response -> unit;
  mutable r_timer : Des.Engine.timer option;
  r_ctx : Des.Trace_context.t;
      (* the fan-out's own lineage, restored around the final reply (the
         last peer answer arrives under its hop's context, not ours) *)
  r_t0 : float;
}

(* What request handling needs from the rest of the site: the prediction
   module's ask sizing and proactive check, the redistribution policy's
   famine gate, and the protocol driver's trigger. *)
type deps = {
  alive : unit -> bool;
  reactive_ok : Entity_state.t -> bool;
  reactive_wanted : Entity_state.t -> amount:int -> int;
  trigger : Entity_state.t -> unit;
  proactive : Entity_state.t -> unit;
  broadcast_read_query : entity:Types.entity -> rid:int -> unit;
  persist : Entity_state.t -> unit;
      (** durability hook after a served request moves the token ledger;
          a no-op under the freeze model *)
  heat : Entity_state.t Entity_map.core -> Entity_state.t;
      (** materialise hot state for a cold entity that can no longer be
          served from its core ledger alone (shortfall, or protocol
          exposure) *)
  controller : Controller.t option;
      (** [Some] iff [Config.Controller.enabled]: shortfalls dispatch to
          the entity's current mechanism instead of the legacy
          redistribution wiring *)
}

type t = {
  config : Config.t;
  engine : Des.Engine.t;
  site_id : int;
  n_sites : int;
  deps : deps;
  obs : Obs.Sink.port;
  flight : Obs.Flight_recorder.port;
  lane : int; (* hosting region's engine lane, for flight-recorder writes *)
  pending_reads : (int, read_ctx) Hashtbl.t;
  mutable next_rid : int;
  mutable busy_until : float;
  ctl : Controller.t option;
      (* [deps.controller], hoisted: the controller-off shortfall path is
         one load and one branch, and the grant path one load + match *)
  adm_enabled : bool;
      (* [Config.Admission.enabled], latched at creation: the disabled
         admission path is one load and one branch *)
  adm_target : float;
  adm_interval : float;
      (* the admission sub-record's knobs, cached off the hot gate path *)
  deadline_budget : float;
      (* Config.deadline_budget_ms, cached off the hot enqueue path *)
  mutable adm_above_since : float;
      (* when the CPU backlog first exceeded the sojourn target
         ([neg_infinity] = currently below) *)
  mutable adm_dropping : bool;
  mutable s_acquires : int;
  mutable s_releases : int;
  mutable s_reads : int;
  mutable s_rejected : int;
  mutable s_queued_peak : int;
  mutable s_reactive : int;
  mutable s_shed_deadline : int;
  mutable s_shed_admission : int;
  mutable s_shed_expired : int;
}

let create ~config ~engine ~site_id ~n_sites ?(obs = Obs.Sink.port ())
    ?(flight = Obs.Flight_recorder.port ()) ?(lane = 0) deps =
  {
    config;
    engine;
    site_id;
    n_sites;
    deps;
    obs;
    flight;
    lane;
    pending_reads = Hashtbl.create 16;
    next_rid = 0;
    busy_until = 0.0;
    ctl = deps.controller;
    adm_enabled = Config.Admission.enabled config.Config.admission;
    adm_target = config.Config.admission.Config.Admission.target_ms;
    adm_interval = config.Config.admission.Config.Admission.interval_ms;
    deadline_budget = config.Config.deadline_budget_ms;
    adm_above_since = neg_infinity;
    adm_dropping = false;
    s_acquires = 0;
    s_releases = 0;
    s_reads = 0;
    s_rejected = 0;
    s_queued_peak = 0;
    s_reactive = 0;
    s_shed_deadline = 0;
    s_shed_admission = 0;
    s_shed_expired = 0;
  }

(* Cluster-level metrics, live only while a sink is attached to the port;
   the unattached path is one load and one branch. *)
let obs_incr t name =
  match Obs.Sink.tap t.obs with
  | None -> ()
  | Some sink -> Obs.Metrics.incr (Obs.Metrics.counter sink.Obs.Sink.metrics name)

let obs_queue_depth t depth =
  match Obs.Sink.tap t.obs with
  | None -> ()
  | Some sink ->
      Obs.Metrics.set
        (Obs.Metrics.gauge sink.Obs.Sink.metrics "samya.queue.depth")
        (float_of_int depth)

(* Causal lifecycle recording: the ambient trace id, or -1 when the
   current event carries no lineage. Call sites match on [Obs.Sink.tap]
   inline (never through a closure argument) so the unattached path stays
   one load and one branch with no allocation. *)
let causal_trace t =
  let ctx = Des.Engine.current_context t.engine in
  if Des.Trace_context.is_none ctx then -1 else ctx.Des.Trace_context.trace

let now t = Des.Engine.now t.engine

(* Shed events feed the always-on flight recorder (when armed): the
   watchdog's shed-burst rule reads them back. Disarmed cost: one load,
   one branch. *)
let flight_shed t ~entity why =
  match Obs.Flight_recorder.tap t.flight with
  | None -> ()
  | Some a ->
      Obs.Flight_recorder.record a.Obs.Flight_recorder.recorder ~lane:t.lane
        ~ts:(now t) ~kind:Obs.Flight_recorder.Shed ~site:t.site_id ~entity why

let served_acquires t = t.s_acquires
let served_releases t = t.s_releases
let served_reads t = t.s_reads
let rejected t = t.s_rejected
let queued_peak t = t.s_queued_peak
let reactive_triggers t = t.s_reactive
let shed_deadline t = t.s_shed_deadline
let shed_admission t = t.s_shed_admission
let shed_queue_expired t = t.s_shed_expired
let admission_dropping t = t.adm_dropping

(* ------------------------------------------------------------------ *)
(* Overload shedding                                                    *)

(* CoDel-style admission gate: watch the CPU backlog (the sojourn a new
   arrival would pay before service) against the target; once it has
   stayed above target for a sustained interval, shed newest acquire
   arrivals until the backlog falls back below half the target. Sheds
   cost no CPU — the whole point is to fail more cheaply than serving.
   Releases are never admission-shed: they return tokens and shrink the
   very backlog the gate is protecting. *)
let admission_shed t request =
  t.adm_enabled
  && begin
       let now_ms = now t in
       let backlog = t.busy_until -. now_ms in
       let target = t.adm_target in
       if backlog > target then begin
         if t.adm_above_since = neg_infinity then t.adm_above_since <- now_ms
         else if
           (not t.adm_dropping)
           && now_ms -. t.adm_above_since >= t.adm_interval
         then t.adm_dropping <- true
       end
       else begin
         t.adm_above_since <- neg_infinity;
         if backlog <= 0.5 *. target then t.adm_dropping <- false
       end;
       t.adm_dropping && (match request with Types.Acquire _ -> true | _ -> false)
     end

(* Shed on arrival: a request that is already dead (deadline passed) or
   that the admission gate drops is answered synchronously — no CPU
   occupancy, no queueing, no ledger movement (conservation-trivial). *)
let overload_shed t request reply =
  if Types.request_deadline request < now t then begin
    t.s_shed_deadline <- t.s_shed_deadline + 1;
    obs_incr t "samya.shed.deadline";
    flight_shed t ~entity:(Types.request_entity request) "deadline";
    reply Types.Rejected_deadline;
    true
  end
  else if admission_shed t request then begin
    t.s_shed_admission <- t.s_shed_admission + 1;
    obs_incr t "samya.shed.admission";
    flight_shed t ~entity:(Types.request_entity request) "admission";
    reply Types.Rejected_deadline;
    true
  end
  else false

(* The deadline a queue entry carries: the request's own, tightened by the
   site's default budget. Computed once at enqueue so the drain only
   compares. *)
let effective_deadline t request =
  Float.min (Types.request_deadline request) (now t +. t.deadline_budget)

(* Requests occupy the site's CPU for [local_processing_ms] each; the
   reply carries the queueing-for-CPU delay, which is what saturates a
   hot site during demand spikes. *)
let reply_after_processing t reply response =
  let start = Float.max (now t) t.busy_until in
  let finish = start +. t.config.Config.local_processing_ms in
  t.busy_until <- finish;
  (match Obs.Sink.tap t.obs with
  | None -> ()
  | Some sink ->
      let trace = causal_trace t in
      if trace >= 0 then begin
        let log = sink.Obs.Sink.causal in
        let arrived = now t in
        if start > arrived then
          Obs.Causal.record log
            (Obs.Causal.Wait
               { trace; site = t.site_id; label = "cpu"; t0 = arrived; t1 = start });
        Obs.Causal.record log
          (Obs.Causal.Service { trace; site = t.site_id; t0 = start; t1 = finish })
      end);
  Des.Engine.schedule_at t.engine ~time_ms:finish (fun () -> reply response)

let reject_acquire t reply =
  t.s_rejected <- t.s_rejected + 1;
  obs_incr t "samya.acquire.rejected";
  reply_after_processing t reply Types.Rejected

(* Park a request behind an in-flight engagement (redistribution or
   borrow); [label] names the causal queue window so `explain` attributes
   the wait to the mechanism that caused it. *)
let park t (ctx : Entity_state.t) request reply ~label =
  Queue.push
    (request, reply, Des.Engine.current_context t.engine,
     effective_deadline t request)
    ctx.queue;
  (match Obs.Sink.tap t.obs with
  | None -> ()
  | Some sink ->
      let trace = causal_trace t in
      if trace >= 0 then
        Obs.Causal.record sink.Obs.Sink.causal
          (Obs.Causal.Enqueued { trace; site = t.site_id; label; ts = now t }));
  t.s_queued_peak <- max t.s_queued_peak (Queue.length ctx.queue);
  ctx.queue_peak <- max ctx.queue_peak (Queue.length ctx.queue);
  obs_queue_depth t (Queue.length ctx.queue)

(* Shortfall under the controller: dispatch to the entity's current
   mechanism. The verdict parks the request (then fires the engagement —
   ordering matters, DES sends can resolve synchronously) or refuses. *)
let serve_shortfall t c (ctx : Entity_state.t) request reply ~amount =
  Controller.note_shortfall c ctx;
  let m = Controller.mechanism c ctx in
  match m.Mechanism.try_acquire ctx ~amount with
  | Mechanism.Park label ->
      (match m.Mechanism.kind with
      | Mechanism.Redistribute ->
          t.s_reactive <- t.s_reactive + 1;
          obs_incr t "samya.reactive.queued"
      | Mechanism.Borrow -> obs_incr t "samya.borrow.queued"
      | Mechanism.Escrow -> ());
      park t ctx request reply ~label;
      m.Mechanism.engage ctx
  | Mechanism.Refuse -> reject_acquire t reply

(* Serve a single acquire/release against local state. In [drain] mode the
   request was queued behind a redistribution that just ended, and an
   unservable acquire is rejected rather than triggering another
   instance. *)
let serve_local t (ctx : Entity_state.t) request reply ~drain =
  match request with
  | Types.Release { amount; _ } ->
      ctx.core.tokens_left <- ctx.core.tokens_left + amount;
      ctx.core.acquired_net <- ctx.core.acquired_net - amount;
      t.s_releases <- t.s_releases + 1;
      obs_incr t "samya.release.granted";
      t.deps.persist ctx;
      reply_after_processing t reply Types.Granted
  | Types.Acquire { amount; _ } ->
      if not t.config.Config.enforce_constraint then begin
        ctx.core.acquired_net <- ctx.core.acquired_net + amount;
        t.s_acquires <- t.s_acquires + 1;
        obs_incr t "samya.acquire.granted";
        t.deps.persist ctx;
        reply_after_processing t reply Types.Granted
      end
      else if ctx.core.tokens_left >= amount then begin
        ctx.core.tokens_left <- ctx.core.tokens_left - amount;
        ctx.core.acquired_net <- ctx.core.acquired_net + amount;
        t.s_acquires <- t.s_acquires + 1;
        obs_incr t "samya.acquire.granted";
        t.deps.persist ctx;
        reply_after_processing t reply Types.Granted;
        match t.ctl with
        | None -> if not drain then t.deps.proactive ctx
        | Some c ->
            Controller.note_served c ctx;
            if (not drain) && Controller.proactive_allowed ctx then
              t.deps.proactive ctx
      end
      else begin
        match t.ctl with
        | Some c when not drain ->
            serve_shortfall t c ctx request reply ~amount
        | Some _ | None ->
            if
              (not drain)
              && t.config.Config.redistribution_enabled
              && (not (Entity_state.participating ctx))
              && t.deps.reactive_ok ctx
            then begin
              (* Reactive redistribution (Equation 5): queue the client
                 behind the instance the prediction module sizes for
                 us. *)
              t.s_reactive <- t.s_reactive + 1;
              obs_incr t "samya.reactive.queued";
              let wanted = t.deps.reactive_wanted ctx ~amount in
              ctx.core.tokens_wanted <- max ctx.core.tokens_wanted wanted;
              ctx.last_redistribution_ms <- now t;
              park t ctx request reply ~label:"redistribution";
              t.deps.trigger ctx
            end
            else reject_acquire t reply
      end
  | Types.Read _ -> (* handled before dispatch *) assert false

let drain_queue ?(reject_unservable = false) t (ctx : Entity_state.t) =
  let items = Queue.length ctx.queue in
  for _ = 1 to items do
    let ((request, reply, qctx, deadline) as entry) = Queue.pop ctx.queue in
    if Entity_state.parked ctx then
      (* A re-triggered instance started while draining: keep queueing
         (the causal queue window simply continues). *)
      Queue.push entry ctx.queue
    else if deadline < now t then begin
      (* Expired while parked behind the instance: the client is gone (or
         about to give up) — discard cheaply instead of burning CPU on an
         answer nobody will read. No ledger movement, so conservation is
         untouched. *)
      t.s_shed_expired <- t.s_shed_expired + 1;
      obs_incr t "samya.shed.queue_expired";
      flight_shed t ~entity:(Types.request_entity request) "queue_expired";
      (match Obs.Sink.tap t.obs with
      | None -> ()
      | Some sink ->
          if not (Des.Trace_context.is_none qctx) then
            Obs.Causal.record sink.Obs.Sink.causal
              (Obs.Causal.Dequeued
                 {
                   trace = qctx.Des.Trace_context.trace;
                   site = t.site_id;
                   ts = now t;
                 }));
      reply Types.Rejected_deadline
    end
    else if Des.Trace_context.is_none qctx then
      (* [drain:false] lets an unservable acquire re-trigger a reactive
         redistribution (subject to famine backoff) instead of being
         rejected outright; [reject_unservable] (a borrow that ended
         short) forces the reject so a starved entity cannot loop. *)
      serve_local t ctx request reply ~drain:reject_unservable
    else
      (* Serve under the parked request's own lineage, not whatever
         decision event triggered the drain. *)
      Des.Engine.with_context t.engine qctx (fun () ->
          (match Obs.Sink.tap t.obs with
          | None -> ()
          | Some sink ->
              Obs.Causal.record sink.Obs.Sink.causal
                (Obs.Causal.Dequeued
                   {
                     trace = qctx.Des.Trace_context.trace;
                     site = t.site_id;
                     ts = now t;
                   }));
          serve_local t ctx request reply ~drain:reject_unservable)
  done

(* Entry point for an acquire/release on a known entity: record demand,
   then serve locally — or queue while a redistribution holds the
   entity's state exposed. *)
let accept_inner t (ctx : Entity_state.t) request reply =
  let record_and_dispatch ~net =
    Demand_tracker.record ctx.tracker ~amount:net;
    if Entity_state.parked ctx then
      let label =
        if ctx.borrow <> None then "borrow" else "redistribution"
      in
      park t ctx request reply ~label
    else serve_local t ctx request reply ~drain:false
  in
  match request with
  | Types.Acquire { amount; _ } -> record_and_dispatch ~net:amount
  | Types.Release { amount; _ } -> record_and_dispatch ~net:(-amount)
  | Types.Read _ -> (* handled before dispatch *) assert false

(* A request arriving without lineage (no driver upstream) roots its own
   trace here — sites stamp new roots — so site-local causality exists
   even for bare [Site.submit] callers. *)
let with_root_stamp t k =
  match Obs.Sink.tap t.obs with
  | None -> k ()
  | Some sink ->
      let stamp () =
        let trace = causal_trace t in
        if trace >= 0 then
          Obs.Causal.record sink.Obs.Sink.causal
            (Obs.Causal.Accepted { trace; site = t.site_id; ts = now t });
        k ()
      in
      if Des.Trace_context.is_none (Des.Engine.current_context t.engine) then
        let root = Des.Trace_context.root ~trace:(Des.Engine.fresh_id t.engine) in
        Des.Engine.with_context t.engine root stamp
      else stamp ()

let accept t (ctx : Entity_state.t) request reply =
  if not (overload_shed t request reply) then
    with_root_stamp t (fun () -> accept_inner t ctx request reply)

(* Cold fast path: a request a cold entity's core ledger can serve outright
   — every release, and any acquire within the local pool. No queue, no
   demand tracking, no prediction: a cold entity costs a ledger update and
   the CPU-model reply. Persistence is not consulted (batching and bulk
   registration require the freeze model; amnesia-mode sites heat every
   entity eagerly at registration). *)
let serve_cold t (core : Entity_state.t Entity_map.core) request reply =
  match request with
  | Types.Release { amount; _ } ->
      core.tokens_left <- core.tokens_left + amount;
      core.acquired_net <- core.acquired_net - amount;
      t.s_releases <- t.s_releases + 1;
      obs_incr t "samya.release.granted";
      reply_after_processing t reply Types.Granted
  | Types.Acquire { amount; _ } ->
      if t.config.Config.enforce_constraint then
        core.tokens_left <- core.tokens_left - amount;
      core.acquired_net <- core.acquired_net + amount;
      t.s_acquires <- t.s_acquires + 1;
      obs_incr t "samya.acquire.granted";
      reply_after_processing t reply Types.Granted
  | Types.Read _ -> (* handled before dispatch *) assert false

(* Entry point for an acquire/release on a core that may still be cold:
   serve from the ledger while that suffices, materialise hot state the
   moment the entity needs queueing, demand history, or redistribution. *)
let accept_core t (core : Entity_state.t Entity_map.core) request reply =
  match core.Entity_map.hot with
  | Some ctx -> accept t ctx request reply
  | None ->
      if overload_shed t request reply then ()
      else
      let cold_servable =
        (not core.Entity_map.exposed)
        &&
        match request with
        | Types.Release _ -> true
        | Types.Acquire { amount; _ } ->
            (not t.config.Config.enforce_constraint)
            || core.Entity_map.tokens_left >= amount
        | Types.Read _ -> false
      in
      if cold_servable then with_root_stamp t (fun () -> serve_cold t core request reply)
      else
        (* Already gated above — go straight to the ungated internals so
           the admission gate observes each arrival exactly once. *)
        let ctx = t.deps.heat core in
        with_root_stamp t (fun () -> accept_inner t ctx request reply)

(* ------------------------------------------------------------------ *)
(* Reads: global snapshot by fan-out (§5.8)                             *)

let finish_read t rid =
  match Hashtbl.find_opt t.pending_reads rid with
  | None -> ()
  | Some read ->
      (match read.r_timer with Some timer -> Des.Engine.cancel timer | None -> ());
      Hashtbl.remove t.pending_reads rid;
      t.s_reads <- t.s_reads + 1;
      obs_incr t "samya.read.served";
      let serve () =
        (match Obs.Sink.tap t.obs with
        | None -> ()
        | Some sink ->
            let trace = causal_trace t in
            if trace >= 0 then
              Obs.Causal.record sink.Obs.Sink.causal
                (Obs.Causal.Wait
                   {
                     trace;
                     site = t.site_id;
                     label = "read";
                     t0 = read.r_t0;
                     t1 = now t;
                   }));
        reply_after_processing t read.r_reply
          (Types.Read_result { tokens_available = read.acc })
      in
      (* The closing event (last peer reply or the timeout) runs under its
         own hop's context; restore the fan-out's lineage for the reply. *)
      if Des.Trace_context.is_none read.r_ctx then serve ()
      else Des.Engine.with_context t.engine read.r_ctx serve

let serve_read_inner t ~entity ~own reply =
  (match Obs.Sink.tap t.obs with
  | None -> ()
  | Some sink ->
      let trace = causal_trace t in
      if trace >= 0 then
        Obs.Causal.record sink.Obs.Sink.causal
          (Obs.Causal.Accepted { trace; site = t.site_id; ts = now t }));
  if t.n_sites = 1 then begin
    t.s_reads <- t.s_reads + 1;
    obs_incr t "samya.read.served";
    reply_after_processing t reply (Types.Read_result { tokens_available = own })
  end
  else begin
    let rid = t.next_rid in
    t.next_rid <- t.next_rid + 1;
    let read =
      {
        r_entity = entity;
        acc = own;
        replies = 0;
        r_reply = reply;
        r_timer = None;
        r_ctx = Des.Engine.current_context t.engine;
        r_t0 = now t;
      }
    in
    Hashtbl.replace t.pending_reads rid read;
    read.r_timer <-
      Some
        (Des.Engine.timer ~label:"samya.read.timeout" t.engine
           ~delay_ms:t.config.Config.read_timeout_ms (fun () ->
             if t.deps.alive () then finish_read t rid));
    t.deps.broadcast_read_query ~entity ~rid
  end

let serve_read t ?(deadline_ms = infinity) ~entity ~own reply =
  if deadline_ms < now t then begin
    (* Dead on arrival: same cheap refusal as the write path. *)
    t.s_shed_deadline <- t.s_shed_deadline + 1;
    obs_incr t "samya.shed.deadline";
    flight_shed t ~entity "deadline";
    reply Types.Rejected_deadline
  end
  else
  match Obs.Sink.tap t.obs with
  | None -> serve_read_inner t ~entity ~own reply
  | Some _ ->
      if Des.Trace_context.is_none (Des.Engine.current_context t.engine) then
        let root = Des.Trace_context.root ~trace:(Des.Engine.fresh_id t.engine) in
        Des.Engine.with_context t.engine root (fun () ->
            serve_read_inner t ~entity ~own reply)
      else serve_read_inner t ~entity ~own reply

let on_read_reply t ~rid ~tokens_left =
  match Hashtbl.find_opt t.pending_reads rid with
  | None -> ()
  | Some read ->
      read.acc <- read.acc + tokens_left;
      read.replies <- read.replies + 1;
      if read.replies >= t.n_sites - 1 then finish_read t rid

(* A crash drops in-flight reads; their timers fire into the dead rid and
   no-op. *)
let on_crash t = Hashtbl.reset t.pending_reads
