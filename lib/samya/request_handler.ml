type read_ctx = {
  r_entity : Types.entity;
  mutable acc : int;
  mutable replies : int;
  r_reply : Types.response -> unit;
  mutable r_timer : Des.Engine.timer option;
}

(* What request handling needs from the rest of the site: the prediction
   module's ask sizing and proactive check, the redistribution policy's
   famine gate, and the protocol driver's trigger. *)
type deps = {
  alive : unit -> bool;
  reactive_ok : Entity_state.t -> bool;
  reactive_wanted : Entity_state.t -> amount:int -> int;
  trigger : Entity_state.t -> unit;
  proactive : Entity_state.t -> unit;
  broadcast_read_query : entity:Types.entity -> rid:int -> unit;
  persist : Entity_state.t -> unit;
      (** durability hook after a served request moves the token ledger;
          a no-op under the freeze model *)
}

type t = {
  config : Config.t;
  engine : Des.Engine.t;
  n_sites : int;
  deps : deps;
  obs : Obs.Sink.port;
  pending_reads : (int, read_ctx) Hashtbl.t;
  mutable next_rid : int;
  mutable busy_until : float;
  mutable s_acquires : int;
  mutable s_releases : int;
  mutable s_reads : int;
  mutable s_rejected : int;
  mutable s_queued_peak : int;
  mutable s_reactive : int;
}

let create ~config ~engine ~n_sites ?(obs = Obs.Sink.port ()) deps =
  {
    config;
    engine;
    n_sites;
    deps;
    obs;
    pending_reads = Hashtbl.create 16;
    next_rid = 0;
    busy_until = 0.0;
    s_acquires = 0;
    s_releases = 0;
    s_reads = 0;
    s_rejected = 0;
    s_queued_peak = 0;
    s_reactive = 0;
  }

(* Cluster-level metrics, live only while a sink is attached to the port;
   the unattached path is one load and one branch. *)
let obs_incr t name =
  match Obs.Sink.tap t.obs with
  | None -> ()
  | Some sink -> Obs.Metrics.incr (Obs.Metrics.counter sink.Obs.Sink.metrics name)

let obs_queue_depth t depth =
  match Obs.Sink.tap t.obs with
  | None -> ()
  | Some sink ->
      Obs.Metrics.set
        (Obs.Metrics.gauge sink.Obs.Sink.metrics "samya.queue.depth")
        (float_of_int depth)

let now t = Des.Engine.now t.engine

let served_acquires t = t.s_acquires
let served_releases t = t.s_releases
let served_reads t = t.s_reads
let rejected t = t.s_rejected
let queued_peak t = t.s_queued_peak
let reactive_triggers t = t.s_reactive

(* Requests occupy the site's CPU for [local_processing_ms] each; the
   reply carries the queueing-for-CPU delay, which is what saturates a
   hot site during demand spikes. *)
let reply_after_processing t reply response =
  let start = Float.max (now t) t.busy_until in
  let finish = start +. t.config.Config.local_processing_ms in
  t.busy_until <- finish;
  Des.Engine.schedule_at t.engine ~time_ms:finish (fun () -> reply response)

(* Serve a single acquire/release against local state. In [drain] mode the
   request was queued behind a redistribution that just ended, and an
   unservable acquire is rejected rather than triggering another
   instance. *)
let serve_local t (ctx : Entity_state.t) request reply ~drain =
  match request with
  | Types.Release { amount; _ } ->
      ctx.tokens_left <- ctx.tokens_left + amount;
      ctx.acquired_net <- ctx.acquired_net - amount;
      t.s_releases <- t.s_releases + 1;
      obs_incr t "samya.release.granted";
      t.deps.persist ctx;
      reply_after_processing t reply Types.Granted
  | Types.Acquire { amount; _ } ->
      if not t.config.Config.enforce_constraint then begin
        ctx.acquired_net <- ctx.acquired_net + amount;
        t.s_acquires <- t.s_acquires + 1;
        obs_incr t "samya.acquire.granted";
        t.deps.persist ctx;
        reply_after_processing t reply Types.Granted
      end
      else if ctx.tokens_left >= amount then begin
        ctx.tokens_left <- ctx.tokens_left - amount;
        ctx.acquired_net <- ctx.acquired_net + amount;
        t.s_acquires <- t.s_acquires + 1;
        obs_incr t "samya.acquire.granted";
        t.deps.persist ctx;
        reply_after_processing t reply Types.Granted;
        if not drain then t.deps.proactive ctx
      end
      else if
        (not drain)
        && t.config.Config.redistribution_enabled
        && (not (Entity_state.participating ctx))
        && t.deps.reactive_ok ctx
      then begin
        (* Reactive redistribution (Equation 5): queue the client behind
           the instance the prediction module sizes for us. *)
        t.s_reactive <- t.s_reactive + 1;
        obs_incr t "samya.reactive.queued";
        let wanted = t.deps.reactive_wanted ctx ~amount in
        ctx.tokens_wanted <- max ctx.tokens_wanted wanted;
        ctx.last_redistribution_ms <- now t;
        Queue.push (request, reply) ctx.queue;
        t.s_queued_peak <- max t.s_queued_peak (Queue.length ctx.queue);
        obs_queue_depth t (Queue.length ctx.queue);
        t.deps.trigger ctx
      end
      else begin
        t.s_rejected <- t.s_rejected + 1;
        obs_incr t "samya.acquire.rejected";
        reply_after_processing t reply Types.Rejected
      end
  | Types.Read _ -> (* handled before dispatch *) assert false

let drain_queue t (ctx : Entity_state.t) =
  let items = Queue.length ctx.queue in
  for _ = 1 to items do
    let request, reply = Queue.pop ctx.queue in
    if Entity_state.participating ctx then
      (* A re-triggered instance started while draining: keep queueing. *)
      Queue.push (request, reply) ctx.queue
    else
      (* [drain:false] lets an unservable acquire re-trigger a reactive
         redistribution (subject to famine backoff) instead of being
         rejected outright. *)
      serve_local t ctx request reply ~drain:false
  done

(* Entry point for an acquire/release on a known entity: record demand,
   then serve locally — or queue while a redistribution holds the
   entity's state exposed. *)
let accept t (ctx : Entity_state.t) request reply =
  let record_and_dispatch ~net =
    Demand_tracker.record ctx.tracker ~amount:net;
    if Entity_state.participating ctx then begin
      Queue.push (request, reply) ctx.queue;
      t.s_queued_peak <- max t.s_queued_peak (Queue.length ctx.queue);
      obs_queue_depth t (Queue.length ctx.queue)
    end
    else serve_local t ctx request reply ~drain:false
  in
  match request with
  | Types.Acquire { amount; _ } -> record_and_dispatch ~net:amount
  | Types.Release { amount; _ } -> record_and_dispatch ~net:(-amount)
  | Types.Read _ -> (* handled before dispatch *) assert false

(* ------------------------------------------------------------------ *)
(* Reads: global snapshot by fan-out (§5.8)                             *)

let finish_read t rid =
  match Hashtbl.find_opt t.pending_reads rid with
  | None -> ()
  | Some read ->
      (match read.r_timer with Some timer -> Des.Engine.cancel timer | None -> ());
      Hashtbl.remove t.pending_reads rid;
      t.s_reads <- t.s_reads + 1;
      obs_incr t "samya.read.served";
      reply_after_processing t read.r_reply
        (Types.Read_result { tokens_available = read.acc })

let serve_read t ~entity ~own reply =
  if t.n_sites = 1 then begin
    t.s_reads <- t.s_reads + 1;
    obs_incr t "samya.read.served";
    reply_after_processing t reply (Types.Read_result { tokens_available = own })
  end
  else begin
    let rid = t.next_rid in
    t.next_rid <- t.next_rid + 1;
    let read =
      { r_entity = entity; acc = own; replies = 0; r_reply = reply; r_timer = None }
    in
    Hashtbl.replace t.pending_reads rid read;
    read.r_timer <-
      Some
        (Des.Engine.timer ~label:"samya.read.timeout" t.engine
           ~delay_ms:t.config.Config.read_timeout_ms (fun () ->
             if t.deps.alive () then finish_read t rid));
    t.deps.broadcast_read_query ~entity ~rid
  end

let on_read_reply t ~rid ~tokens_left =
  match Hashtbl.find_opt t.pending_reads rid with
  | None -> ()
  | Some read ->
      read.acc <- read.acc + tokens_left;
      read.replies <- read.replies + 1;
      if read.replies >= t.n_sites - 1 then finish_read t rid

(* A crash drops in-flight reads; their timers fire into the dead rid and
   no-op. *)
let on_crash t = Hashtbl.reset t.pending_reads
