type t = Avantan_core.t

type env = Avantan_core.env

include Avantan_core.Stats

let pooled_tokens reports =
  Hashtbl.fold
    (fun _ (r : Avantan_core.report) acc ->
      List.fold_left
        (fun acc (_, e) -> acc + e.Protocol.tokens_left)
        acc r.Avantan_core.contribs)
    reports 0

let policy =
  {
    Avantan_core.name = "Avantan[*]";
    seed_self = false;
    carry_accept_state = false;
    busy_cohort_rejects = true;
    scope_to_participants = true;
    abort_when_all_reported = true;
    discard_unheard_on_abort = true;
    discard_stragglers = true;
    cohort_recovery = `Interrogate;
    (* The leader proceeds once the pooled spare can cover its own wants. *)
    construct_ready =
      (fun ~n_sites:_ ~own ~reports ->
        let wanted =
          List.fold_left (fun acc (_, e) -> acc + e.Protocol.tokens_wanted) 0 own
        in
        pooled_tokens reports >= wanted);
    salvage_on_timeout = (fun ~reports -> pooled_tokens reports > 0);
    (* The decision requires Accept-Oks from all of R_t, not a majority. *)
    decide_ready =
      (fun ~n_sites:_ ~participants ~acks ->
        List.for_all (fun site -> Hashtbl.mem acks site) participants);
  }

let create env = Avantan_core.create ~policy env

let start = Avantan_core.start

let handle = Avantan_core.handle

let participating = Avantan_core.participating

let ballot = Avantan_core.ballot

let stats = Avantan_core.stats
