(** Avantan[*] — the any-subset redistribution protocol (§4.3.2), as an
    instantiation of {!Avantan_core}.

    Same message vocabulary as Avantan[(n+1)/2] with the paper's three
    modifications, expressed as the quorum policy:

    + the leader stops collecting ElectionOk-Values as soon as the pooled
      [TokensLeft] can satisfy its own [TokensWanted]; the responders plus
      the leader form the participant set [R_t], everyone else is told to
      discard the instance;
    + a cohort participates in at most one instance at a time — while
      locked it rejects other Election-GetValue messages (so disjoint
      subsets redistribute concurrently);
    + the decision requires Accept-Oks from {e all} of [R_t], not a
      majority.

    Recovery follows §4.3.2: a cohort that times out with no accepted
    value aborts unilaterally (the leader cannot have decided without its
    ack); with an accepted value it interrogates [R_t] with Status-Query
    and decides, aborts, or stays blocked according to the replies.

    Safety hardening documented in DESIGN.md: decided values are applied
    as {e deltas} against the InitVal each site contributed, and each
    instance (identified by the value's [origin] ballot) is applied at most
    once — so the asynchronous races this variant admits (the paper notes
    it is "sensitive to message losses") can delay tokens but never mint
    or destroy them. *)

type t = Avantan_core.t

type env = Avantan_core.env

val policy : Avantan_core.policy
(** Token-satisfaction construction quorum, all-of-[R_t] decision quorum. *)

val create : env -> t

val start : t -> unit
(** Trigger a redistribution as leader; no-op while {!participating}. *)

val handle : t -> src:int -> Protocol.msg -> unit

val participating : t -> bool
(** Locked in an instance (as leader, cohort, or recovering cohort). *)

val ballot : t -> Consensus.Ballot.t

include module type of struct include Avantan_core.Stats end
(** The shared stats surface; [recoveries] counts Status-Query
    interrogations. *)

val stats : t -> stats
