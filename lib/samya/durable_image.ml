type t = {
  tokens_left : int;
  acquired_net : int;
  applied_origins : Consensus.Ballot.t list;
  decided_log : Protocol.value list;
  protocol : Avantan_core.image option;
}

let capture (ctx : Entity_state.t) =
  {
    tokens_left = ctx.Entity_state.core.Entity_map.tokens_left;
    acquired_net = ctx.Entity_state.core.Entity_map.acquired_net;
    applied_origins =
      Hashtbl.fold (fun origin () acc -> origin :: acc)
        ctx.Entity_state.applied_origins []
      |> List.sort Consensus.Ballot.compare;
    decided_log = Entity_state.decided_log ctx;
    protocol = Option.map Avantan_core.snapshot ctx.Entity_state.av;
  }
