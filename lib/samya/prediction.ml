type t = {
  config : Config.t;
  forecaster : Ml.Forecaster.t option;
  mutable proactive_triggers : int;
}

let create ~config ?forecaster () = { config; forecaster; proactive_triggers = 0 }

let proactive_triggers t = t.proactive_triggers

(* The token pool a site wants to hold: [buffer_epochs] worth of the
   predicted per-epoch net consumption (the forecaster's job), plus
   working capital covering the peak concurrent draw observed in recent
   epochs (intra-epoch bursts that releases later replenish). *)
let predicted_need t (ctx : Entity_state.t) =
  let net_history = Demand_tracker.history ctx.tracker in
  let net =
    match t.forecaster with
    | Some f -> f.Ml.Forecaster.predict net_history
    | None ->
        let n = Array.length net_history in
        if n = 0 then Demand_tracker.current_epoch_demand ctx.tracker
        else net_history.(n - 1)
  in
  let peaks = Demand_tracker.peak_history ctx.tracker in
  let capital =
    let n = Array.length peaks in
    if n = 0 then Demand_tracker.current_epoch_peak ctx.tracker
    else begin
      let window = min n 6 in
      Stats.Series.mean (Array.sub peaks (n - window) window)
    end
  in
  let target =
    (Float.max 0.0 net *. float_of_int t.config.Config.buffer_epochs)
    +. Float.max 0.0 capital
  in
  int_of_float (Float.ceil target)

(* High watermark: what a triggered redistribution asks for, shrunk while
   previous instances could not satisfy this site — Algorithm 2's
   rejection is all-or-nothing, so a site facing a shrinking pool must
   lower its ask to keep draining what remains. *)
let requested_pool t (ctx : Entity_state.t) need =
  int_of_float
    (Float.ceil
       (t.config.Config.request_headroom *. ctx.request_scale *. float_of_int need))

(* Algorithm 1 lines 9-11, run by cohorts before answering an election. *)
let refresh_wanted t (ctx : Entity_state.t) =
  if t.config.Config.prediction_enabled then begin
    let need = predicted_need t ctx in
    if need > ctx.core.tokens_left then
      ctx.core.tokens_wanted <-
        max ctx.core.tokens_wanted (requested_pool t ctx need - ctx.core.tokens_left)
  end

(* Reactive redistribution's ask (Equation 5); with prediction enabled the
   site folds its forecast buffer into the request so one synchronization
   covers the demand that is about to follow. *)
let reactive_wanted t (ctx : Entity_state.t) ~amount =
  if t.config.Config.prediction_enabled then
    max amount (requested_pool t ctx (predicted_need t ctx) - ctx.core.tokens_left)
  else amount

(* Proactive redistribution (Equation 4): after serving an acquire,
   predict the next epoch in the background and trigger when the forecast
   exceeds the local pool. *)
let proactive_check t ~now ~cooldown_ok ~trigger (ctx : Entity_state.t) =
  if
    t.config.Config.prediction_enabled
    && t.config.Config.redistribution_enabled
    && now -. ctx.last_proactive_check_ms >= t.config.Config.proactive_check_ms
  then begin
    ctx.last_proactive_check_ms <- now;
    let need = predicted_need t ctx in
    if need > ctx.core.tokens_left && (not (Entity_state.participating ctx)) && cooldown_ok ()
    then begin
      let wanted = requested_pool t ctx need - ctx.core.tokens_left in
      if wanted > 0 then begin
        t.proactive_triggers <- t.proactive_triggers + 1;
        ctx.core.tokens_wanted <- wanted;
        ctx.last_redistribution_ms <- now;
        trigger ()
      end
    end
  end
