type variant = Majority | Star

type t = {
  variant : variant;
  epoch_ms : float;
  history_epochs : int;
  buffer_epochs : int;
  request_headroom : float;
  prediction_enabled : bool;
  redistribution_enabled : bool;
  enforce_constraint : bool;
  proactive_check_ms : float;
  redistribution_cooldown_ms : float;
  election_timeout_ms : float;
  accept_timeout_ms : float;
  cohort_timeout_ms : float;
  status_retry_ms : float;
  local_processing_ms : float;
  read_timeout_ms : float;
  anti_entropy_ms : float;
  decided_log_retention : int;
  reallocation_policy : Reallocation.policy;
  amnesia_on_crash : bool;
  durability_sync : Storage.Durable.sync_policy;
  entity_shards : int;
  entity_capacity : int;
  protocol_batch : int;
  deadline_budget_ms : float;
  admission_target_ms : float;
  admission_interval_ms : float;
  breaker_threshold : int;
  breaker_probe_ms : float;
}

let default =
  {
    variant = Majority;
    epoch_ms = 5_000.0;
    history_epochs = 64;
    buffer_epochs = 12;
    request_headroom = 3.0;
    prediction_enabled = true;
    redistribution_enabled = true;
    enforce_constraint = true;
    proactive_check_ms = 1_000.0;
    redistribution_cooldown_ms = 2_000.0;
    election_timeout_ms = 800.0;
    accept_timeout_ms = 800.0;
    cohort_timeout_ms = 2_500.0;
    status_retry_ms = 1_000.0;
    local_processing_ms = 0.15;
    read_timeout_ms = 600.0;
    anti_entropy_ms = 30_000.0;
    decided_log_retention = 1_024;
    reallocation_policy = Reallocation.default_policy;
    amnesia_on_crash = false;
    durability_sync = Storage.Durable.Sync_always;
    entity_shards = 1;
    entity_capacity = 16;
    protocol_batch = 1;
    deadline_budget_ms = infinity;
    admission_target_ms = infinity;
    admission_interval_ms = 100.0;
    breaker_threshold = 0;
    breaker_probe_ms = 5_000.0;
  }

let validate t =
  if t.epoch_ms <= 0.0 then Error "epoch_ms must be positive"
  else if t.history_epochs < 1 then Error "history_epochs must be >= 1"
  else if t.buffer_epochs < 1 then Error "buffer_epochs must be >= 1"
  else if t.request_headroom < 1.0 then Error "request_headroom must be >= 1"
  else if t.election_timeout_ms <= 0.0 || t.accept_timeout_ms <= 0.0 then
    Error "protocol timeouts must be positive"
  else if t.cohort_timeout_ms <= t.election_timeout_ms then
    Error "cohort timeout must exceed the election timeout"
  else if t.local_processing_ms < 0.0 then Error "local_processing_ms must be >= 0"
  else if t.decided_log_retention < 1 then Error "decided_log_retention must be >= 1"
  else if t.entity_shards < 1 then
    Error
      (Printf.sprintf "entity_shards must be >= 1 (got %d): every site needs at least one shard for its entity map"
         t.entity_shards)
  else if t.entity_capacity < 1 then
    Error
      (Printf.sprintf "entity_capacity must be >= 1 (got %d): the entity arena cannot start empty"
         t.entity_capacity)
  else if t.protocol_batch < 1 then
    Error
      (Printf.sprintf "protocol_batch must be >= 1 (got %d): 1 = one Avantan instance per entity, > 1 = site-level batching"
         t.protocol_batch)
  else if t.protocol_batch > 1 && t.amnesia_on_crash then
    Error
      "protocol_batch > 1 requires amnesia_on_crash = false: batched site-level instances are not yet written to the per-entity durable images"
  else if not (t.deadline_budget_ms > 0.0) then
    (* NaN-safe: [not (x > 0)] also rejects NaN, which would otherwise
       defeat every expiry comparison downstream. *)
    Error
      (Printf.sprintf
         "deadline_budget_ms must be positive (got %g): a non-positive default budget would shed every request on arrival"
         t.deadline_budget_ms)
  else if not (t.admission_target_ms > 0.0) then
    Error
      (Printf.sprintf
         "admission_target_ms must be positive (got %g): a non-positive sojourn target would put the gate in permanent drop mode (infinity disables it)"
         t.admission_target_ms)
  else if not (t.admission_interval_ms > 0.0) || t.admission_interval_ms = infinity
  then
    Error
      (Printf.sprintf
         "admission_interval_ms must be positive and finite (got %g): the gate needs a finite observation interval before it starts dropping"
         t.admission_interval_ms)
  else if t.breaker_threshold < 0 then
    Error
      (Printf.sprintf
         "breaker_threshold must be >= 0 (got %d): 0 disables the circuit breaker, k > 0 opens it after k consecutive aborted instances"
         t.breaker_threshold)
  else if not (t.breaker_probe_ms > 0.0) || t.breaker_probe_ms = infinity then
    Error
      (Printf.sprintf
         "breaker_probe_ms must be positive and finite (got %g): an open breaker must eventually re-probe"
         t.breaker_probe_ms)
  else
    match Storage.Durable.validate_policy t.durability_sync with
    | Error reason -> Error ("durability_sync: " ^ reason)
    | Ok () -> Ok ()
