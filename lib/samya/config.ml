type variant = Majority | Star

(* NaN-safe positivity: [not (x > 0)] also rejects NaN, which would
   otherwise defeat every comparison downstream. *)
let positive x = x > 0.0
let positive_finite x = x > 0.0 && x <> infinity

module Admission = struct
  type t = { target_ms : float; interval_ms : float }

  let default = { target_ms = infinity; interval_ms = 100.0 }
  let enabled t = t.target_ms < infinity

  let validate t =
    if not (positive t.target_ms) then
      Error
        (Printf.sprintf
           "admission.target_ms must be positive (got %g): a non-positive sojourn target would put the gate in permanent drop mode (infinity disables it)"
           t.target_ms)
    else if not (positive_finite t.interval_ms) then
      Error
        (Printf.sprintf
           "admission.interval_ms must be positive and finite (got %g): the gate needs a finite observation interval before it starts dropping"
           t.interval_ms)
    else Ok ()
end

module Breaker = struct
  type t = { threshold : int; probe_ms : float }

  let default = { threshold = 0; probe_ms = 5_000.0 }
  let enabled t = t.threshold > 0

  let validate t =
    if t.threshold < 0 then
      Error
        (Printf.sprintf
           "breaker.threshold must be >= 0 (got %d): 0 disables the circuit breaker, k > 0 opens it after k consecutive aborted instances"
           t.threshold)
    else if not (positive_finite t.probe_ms) then
      Error
        (Printf.sprintf
           "breaker.probe_ms must be positive and finite (got %g): an open breaker must eventually re-probe"
           t.probe_ms)
    else Ok ()
end

module Controller = struct
  type mechanism = Escrow | Borrow | Redistribute

  let mechanism_name = function
    | Escrow -> "escrow"
    | Borrow -> "borrow"
    | Redistribute -> "redistribute"

  type policy = Static of mechanism | Adaptive

  let policy_name = function
    | Static m -> "static:" ^ mechanism_name m
    | Adaptive -> "adaptive"

  type t = {
    enabled : bool;
    policy : policy;
    window_ms : float;
    escalate_contention : float;
    deescalate_margin : float;
    borrow_fail_escalate : float;
    p99_target_ms : float;
    dwell_ms : float;
    cooldown_ms : float;
    borrow_quantum : int;
    borrow_patience_ms : float;
  }

  let default =
    {
      enabled = false;
      policy = Adaptive;
      window_ms = 1_000.0;
      escalate_contention = 0.15;
      deescalate_margin = 0.5;
      borrow_fail_escalate = 0.5;
      p99_target_ms = 250.0;
      dwell_ms = 2_000.0;
      cooldown_ms = 1_000.0;
      borrow_quantum = 50;
      borrow_patience_ms = 1_000.0;
    }

  let validate t =
    if not (positive_finite t.window_ms) then
      Error
        (Printf.sprintf
           "controller.window_ms must be positive and finite (got %g): signals are computed over tumbling windows"
           t.window_ms)
    else if not (t.escalate_contention > 0.0) || t.escalate_contention > 1.0 then
      Error
        (Printf.sprintf
           "controller.escalate_contention must be in (0, 1] (got %g): it is the windowed shortfall fraction that escalates"
           t.escalate_contention)
    else if not (t.deescalate_margin > 0.0) || t.deescalate_margin >= 1.0 then
      Error
        (Printf.sprintf
           "controller.deescalate_margin must be in (0, 1) (got %g): de-escalation below escalate * margin is what gives the state machine hysteresis"
           t.deescalate_margin)
    else if not (t.borrow_fail_escalate > 0.0) || t.borrow_fail_escalate > 1.0
    then
      Error
        (Printf.sprintf
           "controller.borrow_fail_escalate must be in (0, 1] (got %g): it is the windowed fraction of unsatisfied borrows that escalates to redistribution"
           t.borrow_fail_escalate)
    else if not (positive t.p99_target_ms) then
      Error
        (Printf.sprintf
           "controller.p99_target_ms must be positive (got %g): infinity disables the latency escalation signal"
           t.p99_target_ms)
    else if Float.is_nan t.dwell_ms || t.dwell_ms < 0.0 || t.dwell_ms = infinity
    then
      Error
        (Printf.sprintf
           "controller.dwell_ms must be >= 0 and finite (got %g): minimum residence time in a mechanism"
           t.dwell_ms)
    else if
      Float.is_nan t.cooldown_ms || t.cooldown_ms < 0.0
      || t.cooldown_ms = infinity
    then
      Error
        (Printf.sprintf
           "controller.cooldown_ms must be >= 0 and finite (got %g): minimum spacing between consecutive switches"
           t.cooldown_ms)
    else if t.borrow_quantum < 0 then
      Error
        (Printf.sprintf
           "controller.borrow_quantum must be >= 0 (got %d): extra tokens requested on top of the observed shortfall per peer ask"
           t.borrow_quantum)
    else if not (positive_finite t.borrow_patience_ms) then
      Error
        (Printf.sprintf
           "controller.borrow_patience_ms must be positive and finite (got %g): a borrower must eventually give up on a silent peer"
           t.borrow_patience_ms)
    else Ok ()
end

type t = {
  variant : variant;
  epoch_ms : float;
  history_epochs : int;
  buffer_epochs : int;
  request_headroom : float;
  prediction_enabled : bool;
  redistribution_enabled : bool;
  enforce_constraint : bool;
  proactive_check_ms : float;
  redistribution_cooldown_ms : float;
  election_timeout_ms : float;
  accept_timeout_ms : float;
  cohort_timeout_ms : float;
  status_retry_ms : float;
  local_processing_ms : float;
  read_timeout_ms : float;
  anti_entropy_ms : float;
  decided_log_retention : int;
  reallocation_policy : Reallocation.policy;
  amnesia_on_crash : bool;
  durability_sync : Storage.Durable.sync_policy;
  entity_shards : int;
  entity_capacity : int;
  protocol_batch : int;
  deadline_budget_ms : float;
  admission : Admission.t;
  breaker : Breaker.t;
  controller : Controller.t;
}

let default =
  {
    variant = Majority;
    epoch_ms = 5_000.0;
    history_epochs = 64;
    buffer_epochs = 12;
    request_headroom = 3.0;
    prediction_enabled = true;
    redistribution_enabled = true;
    enforce_constraint = true;
    proactive_check_ms = 1_000.0;
    redistribution_cooldown_ms = 2_000.0;
    election_timeout_ms = 800.0;
    accept_timeout_ms = 800.0;
    cohort_timeout_ms = 2_500.0;
    status_retry_ms = 1_000.0;
    local_processing_ms = 0.15;
    read_timeout_ms = 600.0;
    anti_entropy_ms = 30_000.0;
    decided_log_retention = 1_024;
    reallocation_policy = Reallocation.default_policy;
    amnesia_on_crash = false;
    durability_sync = Storage.Durable.Sync_always;
    entity_shards = 1;
    entity_capacity = 16;
    protocol_batch = 1;
    deadline_budget_ms = infinity;
    admission = Admission.default;
    breaker = Breaker.default;
    controller = Controller.default;
  }

let validate t =
  if t.epoch_ms <= 0.0 then Error "epoch_ms must be positive"
  else if t.history_epochs < 1 then Error "history_epochs must be >= 1"
  else if t.buffer_epochs < 1 then Error "buffer_epochs must be >= 1"
  else if t.request_headroom < 1.0 then Error "request_headroom must be >= 1"
  else if t.election_timeout_ms <= 0.0 || t.accept_timeout_ms <= 0.0 then
    Error "protocol timeouts must be positive"
  else if t.cohort_timeout_ms <= t.election_timeout_ms then
    Error "cohort timeout must exceed the election timeout"
  else if t.local_processing_ms < 0.0 then Error "local_processing_ms must be >= 0"
  else if t.decided_log_retention < 1 then Error "decided_log_retention must be >= 1"
  else if t.entity_shards < 1 then
    Error
      (Printf.sprintf "entity_shards must be >= 1 (got %d): every site needs at least one shard for its entity map"
         t.entity_shards)
  else if t.entity_capacity < 1 then
    Error
      (Printf.sprintf "entity_capacity must be >= 1 (got %d): the entity arena cannot start empty"
         t.entity_capacity)
  else if t.protocol_batch < 1 then
    Error
      (Printf.sprintf "protocol_batch must be >= 1 (got %d): 1 = one Avantan instance per entity, > 1 = site-level batching"
         t.protocol_batch)
  else if t.protocol_batch > 1 && t.amnesia_on_crash then
    Error
      "protocol_batch > 1 requires amnesia_on_crash = false: batched site-level instances are not yet written to the per-entity durable images"
  else if not (positive t.deadline_budget_ms) then
    Error
      (Printf.sprintf
         "deadline_budget_ms must be positive (got %g): a non-positive default budget would shed every request on arrival"
         t.deadline_budget_ms)
  else if t.controller.Controller.enabled && t.amnesia_on_crash then
    Error
      "controller.enabled requires amnesia_on_crash = false: borrowed tokens move ledger-to-ledger without a durable-image write, so a crash-amnesia site could forget a grant it made"
  else
    match Admission.validate t.admission with
    | Error _ as e -> e
    | Ok () -> (
        match Breaker.validate t.breaker with
        | Error _ as e -> e
        | Ok () -> (
            match Controller.validate t.controller with
            | Error _ as e -> e
            | Ok () -> (
                match Storage.Durable.validate_policy t.durability_sync with
                | Error reason -> Error ("durability_sync: " ^ reason)
                | Ok () -> Ok ())))
