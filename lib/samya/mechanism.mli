(** First-class token-movement mechanisms.

    The paper's prediction module decides {e how many} tokens a site
    should hold; this interface is the generalisation to {e which
    protocol} should move them. Every way the system can respond to a
    local shortfall is one value of {!t}:

    - {!escrow} — serve within the local pool only; shortfalls refuse
      instantly (no WAN traffic, the Fig. 3e no-redistribution ablation
      as a mechanism);
    - {!borrow} — demarcation-style peer borrowing lifted out of
      [lib/baselines/demarcation.ml]: ask peers in proximity order for
      the queued shortfall plus a quantum, tokens move ledger-to-ledger
      in one message each way;
    - {!redistribute} — today's {!Protocol_driver} path: a batched
      Avantan consensus round re-divides the global pool.

    {!Request_handler} consults the {!Controller}'s current mechanism on
    each shortfall: [try_acquire] decides ([Park] behind an engagement or
    [Refuse]), the handler parks the request under the verdict's queue
    label, then [engage] fires the actual operation (protocol trigger or
    first peer ask). [replenish_hint] exposes each mechanism's ask
    sizing, [cost_estimate] an EWMA of its observed engagement latency;
    structured {!outcome} events feed the controller's windowed signals.

    With the controller off none of this is reachable: the legacy
    redistribution wiring is byte-identical. *)

type kind = Config.Controller.mechanism =
  | Escrow
  | Borrow
  | Redistribute

val kind_name : kind -> string

type verdict =
  | Park of string
      (** queue the request behind the mechanism's in-flight engagement;
          the payload is the causal queue label ("borrow" /
          "redistribution"), so [explain] attributes the wait *)
  | Refuse  (** the mechanism cannot obtain tokens now: reject fast *)

(** Structured outcome of one finished engagement, fed to the
    controller. *)
type outcome = {
  o_kind : kind;
  o_satisfied : bool;  (** did it end with the queued shortfall covered? *)
  o_obtained : int;  (** tokens the engagement brought in *)
  o_wait_ms : float;  (** engagement duration (shortfall to outcome) *)
}

type t = {
  kind : kind;
  try_acquire : Entity_state.t -> amount:int -> verdict;
      (** called on a shortfall ([tokens_left < amount]); may record
          sizing state (e.g. raise [tokens_wanted]) but must not serve or
          queue the request itself *)
  engage : Entity_state.t -> unit;
      (** fire the engagement after the request is parked (message sends
          may resolve synchronously in the DES, so ordering matters) *)
  replenish_hint : Entity_state.t -> amount:int -> int;
      (** how many tokens the mechanism would try to obtain for a
          shortfall of [amount] *)
  cost_estimate : unit -> float;
      (** EWMA of observed engagement latency (ms), seeded with a prior *)
  note_cost : float -> unit;  (** feed an observed engagement latency *)
}

val escrow : unit -> t

(** {2 Peer borrowing} *)

(** What the borrow engine needs from the site; [bd_drain] (the request
    handler's queue drain) and [bd_on_finish] (the controller's signal
    feed) are wired after those modules exist, mirroring
    {!Protocol_driver.set_drain}. *)
type borrow_deps

val borrow_deps :
  engine:Des.Engine.t ->
  site_id:int ->
  peers:int list ->
  quantum:int ->
  patience_ms:float ->
  alive:(unit -> bool) ->
  send:(dst:int -> entity:Types.entity -> needed:int -> unit) ->
  ?obs:Obs.Sink.port ->
  unit ->
  borrow_deps
(** [peers] in proximity order, self excluded. *)

val set_borrow_drain :
  borrow_deps -> (Entity_state.t -> satisfied:bool -> unit) -> unit

val set_borrow_on_finish :
  borrow_deps -> (Entity_state.t -> outcome -> unit) -> unit

val borrow : borrow_deps -> t

val on_grant : borrow_deps -> Entity_state.t -> tokens:int -> unit
(** A [Borrow_grant] landed: bank the tokens and advance (or finish) the
    conversation. Late grants — after the conversation finished — still
    land in the ledger, so token conservation never depends on the
    conversation being alive. *)

val grant_for : quantum:int -> tokens_left:int -> needed:int -> int
(** Lender sizing: [min (max 0 tokens_left) (needed + quantum)]. *)

val borrow_needed : Entity_state.t -> int
(** The queued acquires the local pool cannot cover (may be negative when
    the pool more than covers the queue). *)

(** {2 Avantan redistribution} *)

val redistribute :
  now:(unit -> float) ->
  reactive_ok:(Entity_state.t -> bool) ->
  reactive_wanted:(Entity_state.t -> amount:int -> int) ->
  trigger:(Entity_state.t -> unit) ->
  t
(** Wraps the legacy reactive branch: [reactive_ok] is the
    famine/breaker gate ({!Redistribution_policy.reactive_ok}),
    [reactive_wanted] the prediction module's ask sizing, [trigger] the
    {!Protocol_driver} entry point. *)
