type 'hot core = {
  name : string;
  eid : int;
  mutable tokens_left : int;
  mutable acquired_net : int;
  mutable tokens_wanted : int;
  mutable exposed : bool;
  mutable hot : 'hot option;
}

type 'hot t = {
  shards : (string, 'hot core) Hashtbl.t array;
  mutable cores : 'hot core option array;
  mutable n : int;
  mutable hot_n : int;
}

let create ?(shards = 1) ?(capacity = 16) () =
  if shards < 1 then invalid_arg "Entity_map.create: shards must be >= 1";
  if capacity < 1 then invalid_arg "Entity_map.create: capacity must be >= 1";
  let per_shard = max 8 (capacity / shards) in
  {
    shards = Array.init shards (fun _ -> Hashtbl.create per_shard);
    cores = Array.make (max 8 capacity) None;
    n = 0;
    hot_n = 0;
  }

let shard_count t = Array.length t.shards

(* Shard selection must be independent of the shard tables' own bucket
   hashing (Hashtbl.hash = seeded_hash 0, masked by a power-of-two bucket
   count): with the unseeded hash here, every key in shard [s] shares its
   low bits, so each table uses 1/shards of its buckets and lookups
   degrade to linear chain scans (~30 us at a million keys). Any fixed
   seed <> 0 decorrelates the two; placement is not observable, so this
   choice cannot affect simulation output. *)
let shard_of t name = Hashtbl.seeded_hash 0x5eed name mod Array.length t.shards

let length t = t.n

let hot_count t = t.hot_n

let find t name = Hashtbl.find_opt t.shards.(shard_of t name) name

let by_eid t eid =
  if eid < 0 || eid >= t.n then invalid_arg "Entity_map.by_eid: out of range";
  match t.cores.(eid) with Some c -> c | None -> assert false

let grow t =
  let cap = Array.length t.cores in
  let next = Array.make (cap * 2) None in
  Array.blit t.cores 0 next 0 cap;
  t.cores <- next

let register t ~entity ~tokens =
  if tokens < 0 then invalid_arg "Entity_map.register: negative tokens";
  let shard = t.shards.(shard_of t entity) in
  if Hashtbl.mem shard entity then
    invalid_arg ("Entity_map.register: duplicate entity " ^ entity);
  if t.n >= Array.length t.cores then grow t;
  let core =
    {
      name = entity;
      eid = t.n;
      tokens_left = tokens;
      acquired_net = 0;
      tokens_wanted = 0;
      exposed = false;
      hot = None;
    }
  in
  t.cores.(t.n) <- Some core;
  t.n <- t.n + 1;
  Hashtbl.replace shard entity core;
  core

let set_hot t core state =
  (match core.hot with None -> t.hot_n <- t.hot_n + 1 | Some _ -> ());
  core.hot <- Some state

(* Iteration is in dense-eid (registration) order, so it is deterministic
   and independent of the shard count — shards only bound hash-table size. *)
let iter f t =
  for i = 0 to t.n - 1 do
    match t.cores.(i) with Some c -> f c | None -> ()
  done

let iter_hot f t =
  for i = 0 to t.n - 1 do
    match t.cores.(i) with
    | Some ({ hot = Some h; _ } as c) -> f c h
    | Some _ | None -> ()
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun c -> acc := f c !acc) t;
  !acc
