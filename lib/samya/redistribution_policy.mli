(** When a site may trigger a redistribution, and how it adapts to token
    famine.

    Owns the cooldown/backoff/request-scale fields of {!Entity_state.t}:
    the spacing between instances one site triggers, exponential backoff
    (capped at 32x the configured cooldown) after instances that failed to
    satisfy the site, and the matching shrink of the requested headroom —
    Algorithm 2's rejection is all-or-nothing, so a site facing a
    shrinking global pool must lower its ask to keep draining what
    remains. *)

type t

val create : config:Config.t -> t

val cooldown_ok : t -> now:float -> Entity_state.t -> bool
(** Has the entity's current backoff elapsed since its last instance? *)

val reactive_ok : t -> now:float -> Entity_state.t -> bool
(** May a reactive trigger (client in hand) start an instance now?
    Immediately unless the site is backing off from a famine. *)

val register_outcome : t -> Entity_state.t -> satisfied:bool -> unit
(** Record whether the instance satisfied this site's request: reset the
    backoff and request scale on success, double/halve them on failure. *)
