(** When a site may trigger a redistribution, and how it adapts to token
    famine and synchronization failure.

    Owns the cooldown/backoff/request-scale fields of {!Entity_state.t}:
    the spacing between instances one site triggers, exponential backoff
    (capped at 32x the configured cooldown) after instances that failed to
    satisfy the site, and the matching shrink of the requested headroom —
    Algorithm 2's rejection is all-or-nothing, so a site facing a
    shrinking global pool must lower its ask to keep draining what
    remains.

    Also owns the redistribution {e circuit breaker}
    ({!Config.Breaker.threshold}): after k consecutive {e aborted}
    instances — the signature of a partitioned or storm-ridden quorum,
    where every further trigger costs a multi-second round and parks every
    arriving request behind an exposure that will fail — the entity is
    held to local-escrow-only service (in-pool acquires still succeed,
    the rest fail fast) until {!Config.Breaker.probe_ms} elapses; then
    one probe instance may run, and another abort re-opens the breaker
    immediately. *)

type t

val create : config:Config.t -> t

val cooldown_ok : t -> now:float -> Entity_state.t -> bool
(** Has the entity's current backoff elapsed since its last instance
    (and is the breaker closed)? *)

val reactive_ok : t -> now:float -> Entity_state.t -> bool
(** May a reactive trigger (client in hand) start an instance now?
    Immediately unless the site is backing off from a famine or the
    breaker is open. *)

val breaker_open : t -> now:float -> Entity_state.t -> bool

val register_outcome :
  t -> Entity_state.t -> now:float -> aborted:bool -> satisfied:bool -> unit
(** Record an instance outcome. [satisfied] steers the famine backoff
    (reset on success, double/halve on failure); [aborted] steers the
    breaker (consecutive aborts open it, any decided instance closes
    it). *)
