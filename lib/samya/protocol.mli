(** Wire messages of the Avantan redistribution protocols (§4.3).

    Both variants share the message vocabulary; they differ in quorum rules,
    participation and recovery, implemented in {!Avantan_majority} and
    {!Avantan_star}. [AcceptVal] is a {e list} of per-site states — the key
    departure from Paxos, where the value is a single client proposal.

    Since the multi-entity refactor a value is a list of {e groups}, one
    per entity whose deltas piggyback on the instance. Per-entity protocol
    machines (one Avantan instance per entity, the original layout) put
    their single group under the empty entity name [""] — the driver knows
    which entity the machine is bound to, so the label is never consulted.
    Batched site-level machines label every group with its entity so one
    WAN round can redistribute many entities at once. *)

module Ballot = Consensus.Ballot

type site_entry = Reallocation.entry = {
  site : int;
  tokens_left : int;
  tokens_wanted : int;
}

type group = {
  g_entity : string;  (** entity whose per-site states this group carries *)
  g_entries : site_entry list;  (** the list [L_t] of InitVals of [R_t] *)
}

type value = {
  origin : Ballot.t;
      (** the ballot at which this value was first constructed (line 22 of
          Algorithm 1). Recovery leaders adopt a value {e unchanged}, so
          [origin] uniquely identifies the redistribution instance even
          when the same value is re-driven and decided under a higher
          ballot — sites use it to apply each decision exactly once. *)
  groups : group list;  (** one group per piggybacked entity *)
}

type contrib = string * site_entry
(** One site's InitVal for one entity — what election replies carry. *)

val make_value : origin:Ballot.t -> site_entry list -> value
(** Single-entity value under the [""] group (per-entity machines). *)

val make_batched : origin:Ballot.t -> group list -> value

val entries : value -> site_entry list
(** All entries across groups, in group order. *)

val participants : value -> int list
(** Site ids present in a value, ascending, deduplicated across groups. *)

val mem_site : value -> int -> bool

val entities : value -> string list
(** Group labels in group order. *)

val project : value -> entity:string -> value option
(** The single-group projection of a batched value onto one entity, with
    the same [origin] — what per-entity decided logs record. *)

val value_equal : value -> value -> bool

type msg =
  | Election_get_value of { bal : Ballot.t; scope : string list }
      (** leader: phase-1 solicitation (leader election + value collection);
          [scope] lists the entities piggybacked on this instance ([[]] for
          per-entity machines) *)
  | Election_ok_value of {
      bal : Ballot.t;
      contribs : contrib list;
      accept_val : value option;
      accept_num : Ballot.t;
      decision : bool;
    }  (** cohort: promise carrying its per-entity states and any accepted
           value *)
  | Election_reject of { bal : Ballot.t }
      (** Avantan[*]: cohort is locked in another instance *)
  | Accept_value of { bal : Ballot.t; value : value; decision : bool }
      (** leader: phase-2 fault-tolerant storage of the constructed value *)
  | Accept_ok of { bal : Ballot.t }
  | Decision of { bal : Ballot.t; value : value }
      (** asynchronous decision distribution *)
  | Discard of { bal : Ballot.t }
      (** leader aborted the instance; cohorts unlock and resume *)
  | Status_query of { bal : Ballot.t }
      (** Avantan[*] recovery: interrogate the other participants *)
  | Status_reply of {
      bal : Ballot.t;
      accept_val : value option;
      accept_num : Ballot.t;
      decision : bool;
    }

val pp_msg : Format.formatter -> msg -> unit

val msg_ballot : msg -> Ballot.t

(** Outcome reported to the site when an instance finishes. *)
type outcome =
  | Decided of value
  | Aborted  (** instance abandoned; site serves locally what it can *)
