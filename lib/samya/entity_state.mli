(** Hot per-entity site state, shared by the four site modules.

    Since the multi-entity refactor a {!Site} holds one compact
    {!Entity_map.core} per registered entity — name, dense id, token
    ledger — and materialises one of these records only when the entity
    heats up (first shortfall, protocol participation, or eager
    registration on the legacy single-entity path). {!Request_handler}
    serves and queues against the core ledger and [queue], {!Prediction}
    reads the demand [tracker] and raises the core's [tokens_wanted],
    {!Protocol_driver} runs the attached Avantan instance and applies
    decided values, and {!Redistribution_policy} owns the
    cooldown/backoff/request-scale fields. *)

(** One in-flight peer-borrow conversation (the {!Mechanism} Borrow tier):
    peers still to ask in proximity order, the per-ask patience timer, and
    the triggering request's lineage for the causal mech.borrow phase. *)
type borrow = {
  mutable b_to_ask : int list;
  mutable b_patience : Des.Engine.timer option;
  mutable b_obtained : int;
  b_ctx : Des.Trace_context.t;
  b_t0 : float;
}

type t = {
  core : t Entity_map.core;
      (** the arena slot this record animates: the token ledger
          ([tokens_left]/[acquired_net]/[tokens_wanted]) and the batched
          participation flag live there so cold entities can be served
          without materialising this record *)
  queue :
    (Types.request * (Types.response -> unit) * Des.Trace_context.t * float) Queue.t;
      (** each entry keeps the causal context it arrived under, restored
          around its eventual service so lineage survives the park, plus
          its effective deadline (the request's own, tightened by
          {!Config.t.deadline_budget_ms} at enqueue time) — entries whose
          deadline passed are discarded, not replayed, when the queue
          drains *)
  mutable queue_peak : int;
      (** high-water mark of this entity's queue — the per-key companion
          of the site-wide {!Request_handler.queued_peak} *)
  tracker : Demand_tracker.t;
      (** per-epoch net token consumption and peak concurrent draw *)
  applied_origins : (Consensus.Ballot.t, unit) Hashtbl.t;
      (** decisions already applied — each instance moves tokens exactly
          once, whether it arrives via the protocol or via recovery *)
  mutable decided_log : Protocol.value list;
      (** decisions this site has seen (per-entity projections under
          batching), newest first, capped at
          {!Config.t.decided_log_retention}; answers the Recovery_query of
          a peer that was down when they happened *)
  mutable decided_log_len : int;
  mutable av : Avantan_core.t option;
      (** per-entity protocol machine; [None] under site-level batching *)
  mutable last_redistribution_ms : float;
  mutable last_proactive_check_ms : float;
  mutable backoff_ms : float;
      (** current redistribution spacing: the configured cooldown normally,
          doubled (capped) after each instance that failed to satisfy this
          site — see {!Redistribution_policy} *)
  mutable request_scale : float;
      (** multiplier on the requested headroom, halved after each
          unsatisfied instance — see {!Redistribution_policy} *)
  mutable consec_aborts : int;
      (** consecutive aborted instances; {!Redistribution_policy}'s
          circuit breaker opens once it reaches
          {!Config.Breaker.threshold} *)
  mutable breaker_open_until : float;
      (** absolute time until which the breaker holds this entity to
          local-escrow-only service ([neg_infinity] = closed) *)
  mutable breaker_trips : int;  (** times the breaker has opened *)
  mutable borrow : borrow option;
      (** in-flight peer borrow; [None] always when the controller is off *)
  mutable ctl_mech : Config.Controller.mechanism;
      (** the mechanism currently handling this entity's shortfalls —
          owned by {!Controller} *)
  mutable ctl_pinned : Config.Controller.policy option;
      (** per-entity policy override (org escalation tiers); [None] = the
          site-wide configured policy *)
  mutable ctl_since_ms : float;  (** when [ctl_mech] was entered (dwell) *)
  mutable ctl_cooldown_until : float;  (** no further switch before this *)
  mutable ctl_win_start : float;  (** current signal window's start *)
  mutable ctl_served : int;  (** window: acquires served from the pool *)
  mutable ctl_shortfall : int;  (** window: shortfall events *)
  mutable ctl_borrows : int;  (** window: borrows finished *)
  mutable ctl_borrow_fails : int;  (** window: unsatisfied borrows *)
  mutable ctl_wait : Obs.Quantile_sketch.t option;
      (** window: engagement latencies (shortfall to mechanism outcome);
          allocated only when the controller is on *)
  mutable ctl_switches : int;  (** run statistic: mechanism switches *)
}

val create : engine:Des.Engine.t -> config:Config.t -> core:t Entity_map.core -> t
(** Materialise hot state over a registered core. The caller links it back
    with {!Entity_map.set_hot}; the protocol instance ([av]) is attached
    separately by {!Protocol_driver.attach}. *)

val entity : t -> Types.entity

val core : t -> t Entity_map.core

val restore :
  t ->
  config:Config.t ->
  tokens_left:int ->
  acquired_net:int ->
  applied_origins:Consensus.Ballot.t list ->
  decided_log:Protocol.value list ->
  unit
(** Crash-amnesia recovery: overwrite the ledger fields with a durable
    image and reset all volatile state (queue, wanted, pacing). The demand
    tracker is left intact (soft state, prediction quality only); the
    protocol instance is cleared and must be reattached. *)

val participating : t -> bool
(** [true] while this entity's state is exposed to a live protocol
    instance — the interval during which requests must queue. Reads the
    attached machine when one exists, the core's [exposed] flag under
    site-level batching. *)

val parked : t -> bool
(** {!participating}, or a peer borrow in flight — the full "requests must
    queue" predicate. One extra load and branch over [participating] when
    the controller is off. *)

val initial_mechanism : Config.t -> Config.Controller.mechanism
(** The tier an entity starts under: the pin when the configured policy is
    static, Escrow (cheapest, serve-while-cold) when adaptive. *)

val record_decision : t -> retention:int -> Protocol.value -> unit
(** Prepend a decided value to the recovery log, dropping the oldest entry
    once [retention] values are held. *)

val decided_log : t -> Protocol.value list

val decided_log_length : t -> int

val decisions_for : t -> peer:int -> Protocol.value list
(** The retained decisions whose participant set includes [peer]. *)
