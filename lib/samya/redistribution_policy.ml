type t = { config : Config.t }

let create ~config = { config }

let cooldown_ok _t ~now (ctx : Entity_state.t) =
  now -. ctx.last_redistribution_ms >= ctx.backoff_ms

(* A reactive trigger has a client in hand that local tokens cannot serve:
   it may redistribute immediately unless the site is backing off from a
   token famine (recent instances failed to satisfy it). *)
let reactive_ok t ~now (ctx : Entity_state.t) =
  ctx.backoff_ms <= t.config.Config.redistribution_cooldown_ms || cooldown_ok t ~now ctx

let register_outcome t (ctx : Entity_state.t) ~satisfied =
  if satisfied then begin
    ctx.backoff_ms <- t.config.Config.redistribution_cooldown_ms;
    ctx.request_scale <- 1.0
  end
  else begin
    ctx.backoff_ms <-
      Float.min (2.0 *. ctx.backoff_ms)
        (32.0 *. t.config.Config.redistribution_cooldown_ms);
    ctx.request_scale <- Float.max (ctx.request_scale /. 2.0) 0.05
  end
