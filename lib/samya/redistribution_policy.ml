type t = { config : Config.t; brk : Config.Breaker.t }

let create ~config = { config; brk = config.Config.breaker }

(* Circuit breaker (overload resilience): after [Breaker.threshold]
   consecutive aborted instances the entity is held to local-escrow-only
   service — every further trigger would burn another multi-second
   synchronization round against the same partition or contention storm.
   Once [Breaker.probe_ms] elapses the gates open again (half-open): one
   probe instance may run, and a further abort re-opens immediately
   because [consec_aborts] is still at the threshold. *)
let breaker_open t ~now (ctx : Entity_state.t) =
  t.brk.Config.Breaker.threshold > 0 && now < ctx.breaker_open_until

let cooldown_ok t ~now (ctx : Entity_state.t) =
  (not (breaker_open t ~now ctx))
  && now -. ctx.last_redistribution_ms >= ctx.backoff_ms

(* A reactive trigger has a client in hand that local tokens cannot serve:
   it may redistribute immediately unless the site is backing off from a
   token famine (recent instances failed to satisfy it) or the breaker is
   holding the entity local. *)
let reactive_ok t ~now (ctx : Entity_state.t) =
  (not (breaker_open t ~now ctx))
  && (ctx.backoff_ms <= t.config.Config.redistribution_cooldown_ms
     || now -. ctx.last_redistribution_ms >= ctx.backoff_ms)

let register_outcome t (ctx : Entity_state.t) ~now ~aborted ~satisfied =
  (if aborted then begin
     ctx.consec_aborts <- ctx.consec_aborts + 1;
     let k = t.brk.Config.Breaker.threshold in
     if k > 0 && ctx.consec_aborts >= k && now >= ctx.breaker_open_until then begin
       ctx.breaker_open_until <- now +. t.brk.Config.Breaker.probe_ms;
       ctx.breaker_trips <- ctx.breaker_trips + 1
     end
   end
   else ctx.consec_aborts <- 0);
  if satisfied then begin
    ctx.backoff_ms <- t.config.Config.redistribution_cooldown_ms;
    ctx.request_scale <- 1.0
  end
  else begin
    ctx.backoff_ms <-
      Float.min (2.0 *. ctx.backoff_ms)
        (32.0 *. t.config.Config.redistribution_cooldown_ms);
    ctx.request_scale <- Float.max (ctx.request_scale /. 2.0) 0.05
  end
