type entity = string

type request =
  | Acquire of { entity : entity; amount : int; deadline_ms : float }
  | Release of { entity : entity; amount : int; deadline_ms : float }
  | Read of { entity : entity; deadline_ms : float }

type response =
  | Granted
  | Rejected
  | Rejected_deadline
  | Read_result of { tokens_available : int }
  | Unavailable

let request_entity = function
  | Acquire { entity; _ } | Release { entity; _ } | Read { entity; _ } -> entity

let request_deadline = function
  | Acquire { deadline_ms; _ } | Release { deadline_ms; _ } | Read { deadline_ms; _ }
    ->
      deadline_ms

let acquire ?(deadline_ms = infinity) ~entity ~amount () =
  Acquire { entity; amount; deadline_ms }

let release ?(deadline_ms = infinity) ~entity ~amount () =
  Release { entity; amount; deadline_ms }

let read ?(deadline_ms = infinity) ~entity () = Read { entity; deadline_ms }

let validate = function
  | Acquire { amount; _ } when amount <= 0 -> Error "acquireTokens: amount must be positive"
  | Release { amount; _ } when amount <= 0 -> Error "releaseTokens: amount must be positive"
  | (Acquire { deadline_ms; _ } | Release { deadline_ms; _ } | Read { deadline_ms; _ })
    when Float.is_nan deadline_ms ->
      Error "deadline_ms must not be NaN"
  | Acquire _ | Release _ | Read _ -> Ok ()

let pp_request fmt = function
  | Acquire { entity; amount; _ } ->
      Format.fprintf fmt "acquireTokens(%s, %d)" entity amount
  | Release { entity; amount; _ } ->
      Format.fprintf fmt "releaseTokens(%s, %d)" entity amount
  | Read { entity; _ } -> Format.fprintf fmt "readTokens(%s)" entity

let pp_response fmt = function
  | Granted -> Format.fprintf fmt "granted"
  | Rejected -> Format.fprintf fmt "rejected"
  | Rejected_deadline -> Format.fprintf fmt "rejected(deadline)"
  | Read_result { tokens_available } -> Format.fprintf fmt "read(%d)" tokens_available
  | Unavailable -> Format.fprintf fmt "unavailable"
