(** The shared Avantan phase machine, parameterised by a quorum policy.

    Both redistribution protocols of the paper — Avantan[(n+1)/2]
    (Algorithm 1, §4.3.1) and Avantan[*] (§4.3.2) — run the same five
    phases over the same message vocabulary:

    + {b Election-GetValue}: the triggering site increments its ballot and
      solicits the entity state of its cohorts.
    + {b ElectionOk-Value}: cohorts promise, refresh their [TokensWanted]
      from their own prediction, and reply with their InitVal (plus any
      previously accepted value when the policy carries accept state).
    + {b Accept-Value}: once the policy's construction quorum is met the
      leader constructs [AcceptVal] and distributes it.
    + {b Accept-Ok}: cohorts acknowledge the accepted value.
    + {b Decision}: once the policy's decision quorum acknowledges, the
      leader decides and distributes the decision asynchronously.

    What differs between the two protocols is captured in {!policy}: the
    construction quorum (a majority of all sites vs. any subset whose
    pooled tokens satisfy the leader), the decision quorum (majority vs.
    {e all} participants), whether accept state persists across instances
    (Paxos-style supersession vs. single-instance locking), and the two
    recovery disciplines (re-running the leader code with a higher ballot
    vs. interrogating the participant set with Status-Query).

    {!Avantan_majority} and {!Avantan_star} are thin instantiations; new
    variants (flexible quorums, reconfiguration) only need a new {!policy}
    value. *)

module Ballot = Consensus.Ballot

(** {1 Protocol events}

    A structured feed of instance milestones, for harnesses and tests that
    want to observe elections, accepts, aborts and round counts without
    scraping logs. The hook must not mutate protocol state. *)

type event =
  | Election_started of { ballot : Ballot.t; round : int }
      (** this site started (or retried) an instance as leader *)
  | Election_joined of { ballot : Ballot.t; leader : int }
      (** this site promised an election and exposed its InitVal *)
  | Value_constructed of { ballot : Ballot.t; participants : int }
      (** the leader assembled its quorum and constructed a value *)
  | Value_accepted of { ballot : Ballot.t; leader : int }
      (** this site accepted a value as cohort *)
  | Recovery_started of { ballot : Ballot.t }
      (** leader-failure recovery began (either discipline) *)
  | Decided of { origin : Ballot.t; participants : int; led : bool; rounds : int }
      (** a decision was applied here; [rounds] counts this site's own
          election attempts within the instance (0 for pure cohorts) *)
  | Instance_aborted of { ballot : Ballot.t; led : bool; rounds : int }

val pp_event : Format.formatter -> event -> unit

(** {1 Environment} *)

type env = {
  self : int;
  n_sites : int;
  send : int -> Protocol.msg -> unit;
  set_timer : delay_ms:float -> (unit -> unit) -> Des.Engine.timer;
  local_state : scope:string list -> Protocol.contrib list;
      (** snapshot of [TokensLeft]/[TokensWanted] at this site for each
          entity in [scope] ([scope = []] on per-entity machines: the one
          bound entity, labelled [""]) *)
  refresh_wanted : scope:string list -> unit;
      (** Algorithm 1 lines 9–11: re-predict and raise [TokensWanted]
          before answering an election (a no-op when prediction is
          disabled) *)
  my_scope : unit -> string list;
      (** called once when this site starts leading an instance: the
          entities to piggyback on it. Per-entity machines return [[]];
          the batched driver drains its pending set here. *)
  on_outcome : Protocol.outcome -> unit;
      (** participation ended: a value was decided (apply it and drain the
          queue) or the instance aborted *)
  on_event : event -> unit;  (** structured observation hook; use [ignore] *)
  persist : unit -> unit;
      (** durability hook, called whenever protocol-critical state
          (promised ballot, accepted value, applied ledger) changes and
          {e before} the message that reveals the change is sent — the
          Paxos write-ahead discipline. The site wires this to its durable
          image under crash-amnesia; use [ignore] for the freeze model. *)
  election_timeout_ms : float;
  accept_timeout_ms : float;
  cohort_timeout_ms : float;
  status_retry_ms : float;  (** Status-Query retry period while blocked *)
}

(** {1 Quorum policy} *)

type report = {
  contribs : Protocol.contrib list;
  r_accept_val : Protocol.value option;
  r_accept_num : Ballot.t;
  r_decision : bool;
}
(** What a cohort tells a prospective leader. *)

type policy = {
  name : string;
  seed_self : bool;
      (** count the leader's own report toward the construction quorum
          (majority counting) rather than adding it at construction time *)
  carry_accept_state : bool;
      (** Paxos lineage: accepted values persist across instances, ride
          along in election replies, and higher ballots supersede; without
          it a cohort is locked to exactly one instance at a time *)
  busy_cohort_rejects : bool;
      (** a locked cohort answers Election-GetValue with Election-Reject
          (so disjoint subsets can redistribute concurrently) *)
  scope_to_participants : bool;
      (** accepts/decisions go only to the value's participant set [R_t];
          everyone else is told to discard the instance *)
  abort_when_all_reported : bool;
      (** once every site answered, waiting out the election timer helps
          nobody: run the timeout logic immediately *)
  discard_unheard_on_abort : bool;
      (** on a phase-1 abort, also release sites whose replies may still
          be in flight *)
  discard_stragglers : bool;
      (** release a cohort whose ElectionOk arrives after the collection
          closed *)
  cohort_recovery : [ `Rerun_leader | `Interrogate ];
      (** leader-failure discipline: re-run the leader code with a higher
          ballot (quorum intersection adopts any possibly-decided value)
          vs. interrogate [R_t] with Status-Query *)
  construct_ready :
    n_sites:int -> own:Protocol.contrib list -> reports:(int, report) Hashtbl.t -> bool;
      (** may the leader construct a value from these reports now? *)
  salvage_on_timeout : reports:(int, report) Hashtbl.t -> bool;
      (** may an election that timed out still construct from the partial
          reports (partial [R_t] keeps a minority partition serving)? *)
  decide_ready :
    n_sites:int -> participants:int list -> acks:(int, unit) Hashtbl.t -> bool;
      (** is the accepted value decided given these acknowledgements? *)
}

(** {1 The machine} *)

type t

val create : policy:policy -> env -> t

val start : t -> unit
(** Trigger a redistribution as leader. No-op while {!participating}. *)

val handle : t -> src:int -> Protocol.msg -> unit

val participating : t -> bool
(** [true] while this site's InitVal is exposed to a live instance — the
    interval during which the owning site must queue client requests. *)

val ballot : t -> Ballot.t

(** {1 Durable image (crash-amnesia recovery)} *)

type image
(** The protocol-critical state that must survive a crash for the safety
    argument to hold: the promised ballot, any accepted (possibly-decided)
    value, and the applied-instance log that answers Status-Query. *)

val snapshot : t -> image

val restore : t -> image -> unit
(** Rebuild a freshly-created machine from a durable image and resume:
    with carried accept state a restored accepted value re-runs the leader
    code under a higher ballot (it may have been decided); without it a
    restored cohort acceptance re-enters [Cohort_accepted] with the
    failure detector re-armed. Call once, immediately after {!create}. *)

(** {1 Statistics}

    One stats surface shared by every variant: {!Avantan_majority} and
    {!Avantan_star} re-export {!Stats} with a single
    [include module type of] instead of duplicating the record. *)

module Stats : sig
  type stats = {
    led_started : int;  (** instances this site started or recovered *)
    led_decided : int;  (** instances this site drove to decision *)
    led_aborted : int;  (** phase-1 aborts *)
    participated : int;  (** instances joined as cohort *)
    decisions_applied : int;
    recoveries : int;  (** Status-Query interrogations started (Avantan[*]) *)
  }

  val zero_stats : stats

  val add_stats : stats -> stats -> stats
end

include module type of struct include Stats end

val stats : t -> stats
