module Ballot = Consensus.Ballot

type event =
  | Election_started of { ballot : Ballot.t; round : int }
  | Election_joined of { ballot : Ballot.t; leader : int }
  | Value_constructed of { ballot : Ballot.t; participants : int }
  | Value_accepted of { ballot : Ballot.t; leader : int }
  | Recovery_started of { ballot : Ballot.t }
  | Decided of { origin : Ballot.t; participants : int; led : bool; rounds : int }
  | Instance_aborted of { ballot : Ballot.t; led : bool; rounds : int }

let pp_event fmt = function
  | Election_started { ballot; round } ->
      Format.fprintf fmt "election-started(%a, round=%d)" Ballot.pp ballot round
  | Election_joined { ballot; leader } ->
      Format.fprintf fmt "election-joined(%a, leader=%d)" Ballot.pp ballot leader
  | Value_constructed { ballot; participants } ->
      Format.fprintf fmt "value-constructed(%a, |R|=%d)" Ballot.pp ballot participants
  | Value_accepted { ballot; leader } ->
      Format.fprintf fmt "value-accepted(%a, leader=%d)" Ballot.pp ballot leader
  | Recovery_started { ballot } ->
      Format.fprintf fmt "recovery-started(%a)" Ballot.pp ballot
  | Decided { origin; participants; led; rounds } ->
      Format.fprintf fmt "decided(%a, |R|=%d, led=%b, rounds=%d)" Ballot.pp origin
        participants led rounds
  | Instance_aborted { ballot; led; rounds } ->
      Format.fprintf fmt "aborted(%a, led=%b, rounds=%d)" Ballot.pp ballot led rounds

type env = {
  self : int;
  n_sites : int;
  send : int -> Protocol.msg -> unit;
  set_timer : delay_ms:float -> (unit -> unit) -> Des.Engine.timer;
  local_state : scope:string list -> Protocol.contrib list;
  refresh_wanted : scope:string list -> unit;
  my_scope : unit -> string list;
  on_outcome : Protocol.outcome -> unit;
  on_event : event -> unit;
  persist : unit -> unit;
  election_timeout_ms : float;
  accept_timeout_ms : float;
  cohort_timeout_ms : float;
  status_retry_ms : float;
}

(* What a cohort tells a prospective leader; the leader's own state is
   stored in the same form. Policies without carried accept state leave
   the accept fields at their zero values. *)
type report = {
  contribs : Protocol.contrib list;
  r_accept_val : Protocol.value option;
  r_accept_num : Ballot.t;
  r_decision : bool;
}

type status = { s_accept_val : Protocol.value option; s_decision : bool }

type policy = {
  name : string;
  seed_self : bool;
  carry_accept_state : bool;
  busy_cohort_rejects : bool;
  scope_to_participants : bool;
  abort_when_all_reported : bool;
  discard_unheard_on_abort : bool;
  discard_stragglers : bool;
  cohort_recovery : [ `Rerun_leader | `Interrogate ];
  construct_ready :
    n_sites:int -> own:Protocol.contrib list -> reports:(int, report) Hashtbl.t -> bool;
  salvage_on_timeout : reports:(int, report) Hashtbl.t -> bool;
  decide_ready :
    n_sites:int -> participants:int list -> acks:(int, unit) Hashtbl.t -> bool;
}

type phase =
  | Idle
  | Leading_election of { bal : Ballot.t; responses : (int, report) Hashtbl.t }
  | Leading_accept of {
      bal : Ballot.t;
      value : Protocol.value;
      acks : (int, unit) Hashtbl.t;
    }
  | Cohort_waiting of { bal : Ballot.t; leader : int }
  | Cohort_accepted of { bal : Ballot.t; leader : int; value : Protocol.value }
  | Recovering of {
      bal : Ballot.t;
      value : Protocol.value;
      replies : (int, status) Hashtbl.t;
    }

(* The one stats surface for every Avantan variant: the protocol modules
   re-export this module wholesale instead of duplicating the record. *)
module Stats = struct
  type stats = {
    led_started : int;
    led_decided : int;
    led_aborted : int;
    participated : int;
    decisions_applied : int;
    recoveries : int;
  }

  let zero_stats =
    {
      led_started = 0;
      led_decided = 0;
      led_aborted = 0;
      participated = 0;
      decisions_applied = 0;
      recoveries = 0;
    }

  let add_stats a b =
    {
      led_started = a.led_started + b.led_started;
      led_decided = a.led_decided + b.led_decided;
      led_aborted = a.led_aborted + b.led_aborted;
      participated = a.participated + b.participated;
      decisions_applied = a.decisions_applied + b.decisions_applied;
      recoveries = a.recoveries + b.recoveries;
    }
end

include Stats

type t = {
  env : env;
  pol : policy;
  mutable ballot : Ballot.t;
  mutable phase : phase;
  mutable scope : string list;
      (* entities piggybacked on the current instance: frozen from
         [env.my_scope] when we lead, adopted from Election-GetValue when
         we join; [[]] on per-entity machines (and between instances) *)
  mutable exposed : bool;
      (* exposure-based participation (carried-accept-state policies): true
         from the moment our InitVal leaves this site until the instance
         concludes; while exposed the site queues client traffic *)
  mutable in_recovery : bool;
      (* true while re-running the leader code because a leader we promised
         to went silent; if we also hold an accepted value, election
         timeouts must retry (stay blocked) rather than abort, since that
         value may have been decided (§4.3.1) *)
  mutable accept_val : Protocol.value option;
  mutable accept_num : Ballot.t;
  mutable decision : bool;
  mutable timer : Des.Engine.timer option;
  mutable last_applied_origin : Ballot.t option;
      (* carried-state dedupe: instances decide in origin order *)
  applied : (Ballot.t, Protocol.value) Hashtbl.t;
      (* per-instance dedupe + the log that answers Status-Query *)
  mutable rounds : int; (* election attempts within the current instance *)
  mutable s_led_started : int;
  mutable s_led_decided : int;
  mutable s_led_aborted : int;
  mutable s_participated : int;
  mutable s_applied : int;
  mutable s_recoveries : int;
}

let create ~policy env =
  {
    env;
    pol = policy;
    ballot = Ballot.zero env.self;
    phase = Idle;
    scope = [];
    exposed = false;
    in_recovery = false;
    accept_val = None;
    accept_num = Ballot.zero env.self;
    decision = false;
    timer = None;
    last_applied_origin = None;
    applied = Hashtbl.create 32;
    rounds = 0;
    s_led_started = 0;
    s_led_decided = 0;
    s_led_aborted = 0;
    s_participated = 0;
    s_applied = 0;
    s_recoveries = 0;
  }

let participating t = if t.pol.carry_accept_state then t.exposed else t.phase <> Idle

let ballot t = t.ballot

(* ------------------------------------------------------------------ *)
(* Durable image (crash-amnesia recovery)                               *)

type image = {
  i_ballot : Ballot.t;
  i_accept_val : Protocol.value option;
  i_accept_num : Ballot.t;
  i_decision : bool;
  i_last_applied_origin : Ballot.t option;
  i_applied : (Ballot.t * Protocol.value) list;
}

let snapshot t =
  (* Without carried accept state the accepted value lives in the phase,
     not in the mutable fields: only a cohort-held acceptance must survive
     a crash (an in-flight leadership attempt of our own dies with us and
     is recovered by the cohorts' own failure detectors). *)
  let accept_val, accept_num =
    if t.pol.carry_accept_state then (t.accept_val, t.accept_num)
    else
      match t.phase with
      | Cohort_accepted { bal; value; _ } | Recovering { bal; value; _ } ->
          (Some value, bal)
      | Idle | Leading_election _ | Leading_accept _ | Cohort_waiting _ ->
          (None, Ballot.zero t.env.self)
  in
  {
    i_ballot = t.ballot;
    i_accept_val = accept_val;
    i_accept_num = accept_num;
    i_decision = t.decision;
    i_last_applied_origin = t.last_applied_origin;
    i_applied =
      Hashtbl.fold (fun origin value acc -> (origin, value) :: acc) t.applied []
      |> List.sort (fun (a, _) (b, _) -> Ballot.compare a b);
  }

let stats t =
  {
    led_started = t.s_led_started;
    led_decided = t.s_led_decided;
    led_aborted = t.s_led_aborted;
    participated = t.s_participated;
    decisions_applied = t.s_applied;
    recoveries = t.s_recoveries;
  }

let stop_timer t =
  (match t.timer with Some timer -> Des.Engine.cancel timer | None -> ());
  t.timer <- None

let arm_timer t delay f =
  stop_timer t;
  t.timer <- Some (t.env.set_timer ~delay_ms:delay f)

let broadcast t msg =
  for node = 0 to t.env.n_sites - 1 do
    if node <> t.env.self then t.env.send node msg
  done

let members value = Protocol.participants value

let send_members t value msg =
  List.iter (fun site -> if site <> t.env.self then t.env.send site msg) (members value)

(* Instance over: reset the Table 1c variables (BallotNum survives) and
   report the outcome so the site can reallocate / drain its queue. *)
let conclude t outcome =
  let led =
    match t.phase with Leading_election _ | Leading_accept _ -> true | _ -> false
  in
  let rounds = t.rounds in
  stop_timer t;
  t.phase <- Idle;
  t.scope <- [];
  t.exposed <- false;
  t.in_recovery <- false;
  t.accept_val <- None;
  t.accept_num <- Ballot.zero t.env.self;
  t.decision <- false;
  t.rounds <- 0;
  (match outcome with
  | Protocol.Decided value ->
      t.env.on_event
        (Decided
           {
             origin = value.Protocol.origin;
             participants = List.length (Protocol.participants value);
             led;
             rounds;
           })
  | Protocol.Aborted ->
      t.env.on_event (Instance_aborted { ballot = t.ballot; led; rounds }));
  t.env.on_outcome outcome;
  (* One durability point covers the whole conclusion: the applied ledger
     update (on_outcome runs decision application and the queue drain) and
     the reset accept state land in the same image. *)
  t.env.persist ()

let apply_decision t (value : Protocol.value) =
  if t.pol.carry_accept_state then begin
    let fresh =
      match t.last_applied_origin with
      | Some origin -> Ballot.(value.Protocol.origin > origin)
      | None -> true
    in
    if fresh then begin
      t.last_applied_origin <- Some value.Protocol.origin;
      Hashtbl.replace t.applied value.Protocol.origin value;
      t.s_applied <- t.s_applied + 1;
      conclude t (Protocol.Decided value)
    end
    else if t.exposed || t.phase <> Idle then
      (* A re-delivered decision for an instance we already applied still
         releases us from any residual participation. *)
      conclude t Protocol.Aborted
  end
  else if Hashtbl.mem t.applied value.Protocol.origin then begin
    if participating t then conclude t Protocol.Aborted
  end
  else begin
    Hashtbl.replace t.applied value.Protocol.origin value;
    t.s_applied <- t.s_applied + 1;
    conclude t (Protocol.Decided value)
  end

let my_report t =
  if t.pol.carry_accept_state then
    {
      contribs = t.env.local_state ~scope:t.scope;
      r_accept_val = t.accept_val;
      r_accept_num = t.accept_num;
      r_decision = t.decision;
    }
  else
    {
      contribs = t.env.local_state ~scope:t.scope;
      r_accept_val = None;
      r_accept_num = Ballot.zero t.env.self;
      r_decision = false;
    }

(* Fresh construction: group the collected InitVals by entity, each group's
   entries deterministically ordered by (site, entry). With a single entity
   this degenerates to the old flat per-site concatenation. *)
let fresh_value origin contribs_by_site =
  let triples =
    List.concat_map
      (fun (site, cs) -> List.map (fun (entity, entry) -> (entity, (site, entry))) cs)
      contribs_by_site
    |> List.sort compare
  in
  let rec gather = function
    | [] -> []
    | (entity, first) :: rest ->
        let same, others = List.partition (fun (e, _) -> String.equal e entity) rest in
        let pairs = first :: List.map snd same in
        { Protocol.g_entity = entity; g_entries = List.map snd pairs } :: gather others
  in
  Protocol.make_batched ~origin (gather triples)

(* Value construction over the collected reports. With carried accept
   state this is Algorithm 1 lines 15-23 (decided value > highest-ballot
   accepted value > fresh concatenation); without it the value is always
   the fresh concatenation of the InitVals, the leader's own included.
   Returns the value and whether it is already known decided. *)
let construct_value t origin responses =
  if t.pol.carry_accept_state then begin
    let reports = Hashtbl.fold (fun _ r acc -> r :: acc) responses [] in
    let decided = List.find_opt (fun r -> r.r_decision) reports in
    match decided with
    | Some { r_accept_val = Some v; _ } -> (v, true)
    | Some { r_accept_val = None; _ } | None -> (
        let best_accepted =
          List.fold_left
            (fun best r ->
              match r.r_accept_val with
              | None -> best
              | Some v -> (
                  match best with
                  | Some (num, _) when Ballot.(num >= r.r_accept_num) -> best
                  | Some _ | None -> Some (r.r_accept_num, v)))
            None reports
        in
        match best_accepted with
        | Some (_, v) -> (v, false)
        | None ->
            ( fresh_value origin
                (Hashtbl.fold (fun site r acc -> (site, r.contribs) :: acc) responses []),
              false ))
  end
  else
    ( fresh_value origin
        ((t.env.self, t.env.local_state ~scope:t.scope)
        :: Hashtbl.fold (fun site r acc -> (site, r.contribs) :: acc) responses []),
      false )

let rec start t =
  if not (participating t) then begin
    t.ballot <- Ballot.next t.ballot ~site:t.env.self;
    t.s_led_started <- t.s_led_started + 1;
    t.rounds <- t.rounds + 1;
    (* Freeze the instance scope on the first attempt; retries within the
       instance (recovery re-runs) keep soliciting the same entities. *)
    if t.scope = [] then t.scope <- t.env.my_scope ();
    let responses = Hashtbl.create 8 in
    if t.pol.seed_self then Hashtbl.replace responses t.env.self (my_report t);
    t.phase <- Leading_election { bal = t.ballot; responses };
    t.exposed <- true;
    t.env.on_event (Election_started { ballot = t.ballot; round = t.rounds });
    (* The bumped ballot must be durable before any site hears it, or an
       amnesiac restart could reuse it for a different instance. *)
    t.env.persist ();
    broadcast t (Protocol.Election_get_value { bal = t.ballot; scope = t.scope });
    arm_timer t t.env.election_timeout_ms (fun () -> on_election_timeout t);
    (* Degenerate single-site system: we are our own quorum. *)
    try_construct t
  end

(* Recovery: run the same leader code with a higher ballot (§4.3.1). *)
and recover_as_leader t =
  t.exposed <- false;
  t.in_recovery <- true;
  t.env.on_event (Recovery_started { ballot = t.ballot });
  start t

and on_election_timeout t =
  match t.phase with
  | Leading_election _ when t.pol.carry_accept_state && t.in_recovery && t.accept_val <> None
    ->
      (* We hold an accepted value that may have been decided elsewhere: we
         must stay blocked until a quorum tells us its fate — the paper's
         blocked-until-majority case. Retry with a higher ballot. *)
      t.exposed <- false;
      start t
  | Leading_election { bal; responses } when t.pol.salvage_on_timeout ~reports:responses
    ->
      (* No more responders are coming, but those who answered do hold
         spare: form R_t from them — a partial redistribution keeps the
         minority partition serving (Fig. 3d). *)
      construct t bal responses
  | Leading_election { bal; responses } ->
      (* Nothing was constructed, abort is safe; release any cohort that
         may have locked onto this instance. *)
      t.s_led_aborted <- t.s_led_aborted + 1;
      Hashtbl.iter
        (fun site _ ->
          if site <> t.env.self then t.env.send site (Protocol.Discard { bal }))
        responses;
      if t.pol.discard_unheard_on_abort then
        for node = 0 to t.env.n_sites - 1 do
          if node <> t.env.self && not (Hashtbl.mem responses node) then
            t.env.send node (Protocol.Discard { bal })
        done;
      conclude t Protocol.Aborted
  | Leading_accept _ | Cohort_waiting _ | Cohort_accepted _ | Recovering _ | Idle -> ()

and construct t bal responses =
  let value, known_decided = construct_value t bal responses in
  if t.pol.carry_accept_state then begin
    t.accept_val <- Some value;
    t.accept_num <- bal;
    t.decision <- known_decided;
    (* The leader self-accepts: durable before the value leaves. *)
    t.env.persist ()
  end;
  if known_decided then begin
    (* The instance was already decided by a failed leader: just
       redistribute the decision. *)
    broadcast t (Protocol.Decision { bal; value });
    t.s_led_decided <- t.s_led_decided + 1;
    apply_decision t value
  end
  else begin
    t.env.on_event
      (Value_constructed
         { ballot = bal; participants = List.length (Protocol.participants value) });
    if t.pol.scope_to_participants then
      (* Everyone outside R_t discards this instance. *)
      for node = 0 to t.env.n_sites - 1 do
        if node <> t.env.self && not (Protocol.mem_site value node) then
          t.env.send node (Protocol.Discard { bal })
      done;
    let acks = Hashtbl.create 8 in
    Hashtbl.replace acks t.env.self ();
    t.phase <- Leading_accept { bal; value; acks };
    let accept = Protocol.Accept_value { bal; value; decision = false } in
    if t.pol.scope_to_participants then send_members t value accept
    else broadcast t accept;
    arm_timer t t.env.accept_timeout_ms (fun () -> on_accept_timeout t);
    try_decide t
  end

and try_construct t =
  match t.phase with
  | Leading_election { bal; responses }
    when t.pol.construct_ready ~n_sites:t.env.n_sites
           ~own:(t.env.local_state ~scope:t.scope) ~reports:responses ->
      construct t bal responses
  | Leading_election _ | Leading_accept _ | Cohort_waiting _ | Cohort_accepted _
  | Recovering _ | Idle ->
      ()

and on_accept_timeout t =
  match t.phase with
  | Leading_accept { bal; value; acks } ->
      (* Value constructed but not yet fault-tolerant: the paper's blocking
         case. Keep re-sending until the quorum is back (with carried
         accept state a higher ballot can still supersede us). *)
      if t.pol.scope_to_participants then
        List.iter
          (fun site ->
            if site <> t.env.self && not (Hashtbl.mem acks site) then
              t.env.send site (Protocol.Accept_value { bal; value; decision = false }))
          (members value)
      else broadcast t (Protocol.Accept_value { bal; value; decision = false });
      arm_timer t t.env.accept_timeout_ms (fun () -> on_accept_timeout t)
  | Leading_election _ | Cohort_waiting _ | Cohort_accepted _ | Recovering _ | Idle -> ()

and try_decide t =
  match t.phase with
  | Leading_accept { bal; value; acks }
    when t.pol.decide_ready ~n_sites:t.env.n_sites ~participants:(members value) ~acks ->
      if t.pol.carry_accept_state then t.decision <- true;
      t.s_led_decided <- t.s_led_decided + 1;
      let decision = Protocol.Decision { bal; value } in
      if t.pol.scope_to_participants then send_members t value decision
      else broadcast t decision;
      apply_decision t value
  | Leading_accept _ | Leading_election _ | Cohort_waiting _ | Cohort_accepted _
  | Recovering _ | Idle ->
      ()

and on_cohort_timeout t =
  match t.pol.cohort_recovery with
  | `Rerun_leader -> recover_as_leader t
  | `Interrogate -> (
      match t.phase with
      | Cohort_waiting _ ->
          (* Case (i): we never accepted a value, so the leader cannot have
             decided without our Accept-Ok — abort unilaterally. *)
          conclude t Protocol.Aborted
      | Cohort_accepted { bal; value; leader = _ } ->
          (* Case (ii): interrogate the participant set. *)
          t.s_recoveries <- t.s_recoveries + 1;
          t.env.on_event (Recovery_started { ballot = bal });
          let replies = Hashtbl.create 8 in
          t.phase <- Recovering { bal; value; replies };
          send_members t value (Protocol.Status_query { bal });
          arm_timer t t.env.status_retry_ms (fun () -> on_status_retry t)
      | Recovering _ | Leading_election _ | Leading_accept _ | Idle -> ())

and on_status_retry t =
  match t.phase with
  | Recovering { bal; value; replies } ->
      List.iter
        (fun site ->
          if site <> t.env.self && not (Hashtbl.mem replies site) then
            t.env.send site (Protocol.Status_query { bal }))
        (members value);
      arm_timer t t.env.status_retry_ms (fun () -> on_status_retry t)
  | Cohort_waiting _ | Cohort_accepted _ | Leading_election _ | Leading_accept _ | Idle
    ->
      ()

let evaluate_recovery t =
  match t.phase with
  | Recovering { bal; value; replies } ->
      let decided =
        Hashtbl.fold
          (fun _ s acc ->
            match acc with
            | Some _ -> acc
            | None -> if s.s_decision then s.s_accept_val else None)
          replies None
      in
      (match decided with
      | Some decided_value ->
          send_members t decided_value (Protocol.Decision { bal; value = decided_value });
          apply_decision t decided_value
      | None ->
          let someone_empty =
            Hashtbl.fold (fun _ s acc -> acc || s.s_accept_val = None) replies false
          in
          if someone_empty then begin
            (* Same as case (i): the leader can never assemble all acks. *)
            send_members t value (Protocol.Discard { bal });
            conclude t Protocol.Aborted
          end
          else begin
            (* Decide once every participant except the (failed) leader has
               confirmed the identical accepted value. *)
            let leader = value.Protocol.origin.Ballot.site in
            let needed =
              List.filter
                (fun site -> site <> t.env.self && site <> leader)
                (members value)
            in
            if List.for_all (fun site -> Hashtbl.mem replies site) needed then begin
              send_members t value (Protocol.Decision { bal; value });
              apply_decision t value
            end
          end)
  | Cohort_waiting _ | Cohort_accepted _ | Leading_election _ | Leading_accept _ | Idle
    ->
      ()

let restore t (image : image) =
  t.ballot <- image.i_ballot;
  t.last_applied_origin <- image.i_last_applied_origin;
  Hashtbl.reset t.applied;
  List.iter
    (fun (origin, value) -> Hashtbl.replace t.applied origin value)
    image.i_applied;
  if t.pol.carry_accept_state then begin
    t.accept_val <- image.i_accept_val;
    t.accept_num <- image.i_accept_num;
    t.decision <- image.i_decision;
    match image.i_accept_val with
    | Some _ ->
        (* We hold a possibly-decided value: re-run the leader code with a
           higher ballot until a quorum tells us its fate (§4.3.1) — the
           same discipline as outliving a silent leader. *)
        recover_as_leader t
    | None -> ()
  end
  else
    match image.i_accept_val with
    | Some value ->
        (* A cohort that accepted before crashing resumes in
           Cohort_accepted, so the leader's Accept-Value retries are
           re-acked; if the leader died meanwhile the re-armed cohort
           timeout interrogates the participant set as usual. *)
        let leader = value.Protocol.origin.Ballot.site in
        t.phase <- Cohort_accepted { bal = image.i_accept_num; leader; value };
        arm_timer t t.env.cohort_timeout_ms (fun () -> on_cohort_timeout t)
    | None -> ()

let status_for t ~bal =
  match t.phase with
  | Cohort_accepted { bal = b; value; _ } when Ballot.equal b bal ->
      { s_accept_val = Some value; s_decision = false }
  | Recovering { bal = b; value; _ } when Ballot.equal b bal ->
      { s_accept_val = Some value; s_decision = false }
  | Leading_accept { bal = b; value; _ } when Ballot.equal b bal ->
      { s_accept_val = Some value; s_decision = false }
  | _ -> (
      match Hashtbl.find_opt t.applied bal with
      | Some value -> { s_accept_val = Some value; s_decision = true }
      | None -> { s_accept_val = None; s_decision = false })

let handle t ~src msg =
  match msg with
  | Protocol.Election_get_value { bal; scope } ->
      if t.pol.busy_cohort_rejects && participating t then
        t.env.send src (Protocol.Election_reject { bal = t.ballot })
      else if Ballot.(bal > t.ballot) then begin
        t.ballot <- bal;
        t.scope <- scope;
        (* Lines 9-11: refresh TokensWanted from the local prediction
           before exposing our state. *)
        t.env.refresh_wanted ~scope;
        let report = my_report t in
        (match t.phase with
        | Idle | Leading_election _ | Leading_accept _ ->
            (* Any leadership attempt of ours is superseded; our accepted
               value (if any) rides along in the report. *)
            t.s_participated <- t.s_participated + 1
        | Cohort_waiting _ | Cohort_accepted _ | Recovering _ -> ());
        t.phase <- Cohort_waiting { bal; leader = src };
        t.exposed <- true;
        t.env.on_event (Election_joined { ballot = bal; leader = src });
        (* Paxos promise discipline: the promised ballot must be durable
           before the promise is sent, or a crash-and-restart could promise
           a smaller ballot to a second leader. *)
        t.env.persist ();
        t.env.send src
          (Protocol.Election_ok_value
             {
               bal;
               contribs = report.contribs;
               accept_val = report.r_accept_val;
               accept_num = report.r_accept_num;
               decision = report.r_decision;
             });
        arm_timer t t.env.cohort_timeout_ms (fun () -> on_cohort_timeout t)
      end
      else if t.pol.busy_cohort_rejects then
        t.env.send src (Protocol.Election_reject { bal = t.ballot })
  | Protocol.Election_ok_value { bal; contribs; accept_val; accept_num; decision } -> (
      match t.phase with
      | Leading_election { bal = b; responses } when Ballot.equal b bal ->
          Hashtbl.replace responses src
            {
              contribs;
              r_accept_val = accept_val;
              r_accept_num = accept_num;
              r_decision = decision;
            };
          try_construct t;
          if t.pol.abort_when_all_reported then begin
            (* Everyone answered and nothing could be pooled: waiting out
               the timer helps nobody, abort now. *)
            match t.phase with
            | Leading_election { responses; _ }
              when Hashtbl.length responses >= t.env.n_sites - 1 ->
                on_election_timeout t
            | _ -> ()
          end
      | Leading_election _ | Leading_accept _ | Cohort_waiting _ | Cohort_accepted _
      | Recovering _ | Idle ->
          (* Straggler from a closed collection: release it. *)
          if t.pol.discard_stragglers then t.env.send src (Protocol.Discard { bal }))
  | Protocol.Election_reject { bal } ->
      (* Keep our counter ahead so the next attempt is acceptable. *)
      if
        (t.pol.busy_cohort_rejects || t.pol.carry_accept_state)
        && Ballot.(bal > t.ballot)
      then begin
        t.ballot <- { bal with Ballot.site = t.env.self };
        t.env.persist ();
        match t.phase with
        | Leading_accept _ when t.pol.carry_accept_state ->
            (* Our accept phase was superseded behind a partition: the
               carried value may have been decided without us, so we must
               not abort — re-run leadership at a higher ballot until a
               quorum reveals the instance's fate (the same
               blocked-until-majority rule as recovery). *)
            recover_as_leader t
        | Leading_election _ | Cohort_waiting _ | Cohort_accepted _
        | Recovering _ | Idle | Leading_accept _ ->
            ()
      end
  | Protocol.Accept_value { bal; value; decision } ->
      if t.pol.carry_accept_state then begin
        if Ballot.(bal >= t.ballot) then begin
          t.ballot <- bal;
          t.accept_val <- Some value;
          t.accept_num <- bal;
          t.decision <- decision;
          (* Accepted state must be durable before the Accept-Ok leaves:
             the leader counts this ack toward the decision quorum. *)
          t.env.persist ();
          t.env.send src (Protocol.Accept_ok { bal });
          if decision then apply_decision t value
          else begin
            t.phase <- Cohort_accepted { bal; leader = src; value };
            t.env.on_event (Value_accepted { ballot = bal; leader = src });
            arm_timer t t.env.cohort_timeout_ms (fun () -> on_cohort_timeout t)
          end
        end
        else
          (* Stale ballot: the sender is a leader that was cut off
             mid-accept while the rest of us recovered its instance under
             a higher ballot. Silence would leave it re-sending (and its
             entity exposed) forever — tell it where the ballot stands so
             it can re-run leadership and learn its value's fate. *)
          t.env.send src (Protocol.Election_reject { bal = t.ballot })
      end
      else begin
        match t.phase with
        | Cohort_waiting { bal = b; leader } when Ballot.equal b bal && leader = src ->
            t.phase <- Cohort_accepted { bal; leader; value };
            t.env.on_event (Value_accepted { ballot = bal; leader = src });
            t.env.persist ();
            t.env.send src (Protocol.Accept_ok { bal });
            arm_timer t t.env.cohort_timeout_ms (fun () -> on_cohort_timeout t)
        | Cohort_accepted { bal = b; leader; _ } when Ballot.equal b bal && leader = src
          ->
            (* Duplicate (leader retrying): re-ack. *)
            t.env.send src (Protocol.Accept_ok { bal })
        | Cohort_waiting _ | Cohort_accepted _ | Leading_election _ | Leading_accept _
        | Recovering _ | Idle ->
            ()
      end
  | Protocol.Accept_ok { bal } -> (
      match t.phase with
      | Leading_accept { bal = b; acks; _ } when Ballot.equal b bal ->
          Hashtbl.replace acks src ();
          try_decide t
      | Leading_accept _ | Leading_election _ | Cohort_waiting _ | Cohort_accepted _
      | Recovering _ | Idle ->
          ())
  | Protocol.Decision { bal = _; value } -> apply_decision t value
  | Protocol.Discard { bal } -> (
      match t.phase with
      | Cohort_waiting { bal = b; _ } when Ballot.equal b bal ->
          conclude t Protocol.Aborted
      | Cohort_accepted { bal = b; _ }
        when (not t.pol.carry_accept_state) && Ballot.equal b bal ->
          (* With carried accept state an accepted value may already be
             decided elsewhere, so a Discard must not release it. *)
          conclude t Protocol.Aborted
      | Recovering { bal = b; _ } when Ballot.equal b bal -> conclude t Protocol.Aborted
      | Cohort_waiting _ | Cohort_accepted _ | Recovering _ | Leading_election _
      | Leading_accept _ | Idle ->
          ())
  | Protocol.Status_query { bal } -> (
      match t.pol.cohort_recovery with
      | `Rerun_leader -> (* no interrogation machinery in this policy *) ()
      | `Interrogate ->
          let { s_accept_val; s_decision } = status_for t ~bal in
          t.env.send src
            (Protocol.Status_reply
               { bal; accept_val = s_accept_val; accept_num = bal; decision = s_decision }))
  | Protocol.Status_reply { bal; accept_val; accept_num = _; decision } -> (
      match t.phase with
      | Recovering { bal = b; replies; _ } when Ballot.equal b bal ->
          Hashtbl.replace replies src { s_accept_val = accept_val; s_decision = decision };
          evaluate_recovery t
      | Recovering _ | Cohort_waiting _ | Cohort_accepted _ | Leading_election _
      | Leading_accept _ | Idle ->
          ())
