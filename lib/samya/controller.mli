(** The adaptive contention controller: close the loop from observed
    SLO signals to token-movement policy.

    One controller per site, state per entity (on {!Entity_state}): each
    entity runs under one {!Mechanism} at a time — escrow while cold,
    peer borrowing under moderate skew, consensus redistribution under
    sustained pressure. Decisions are made on tumbling
    {!Config.Controller.window_ms} windows from three signals:

    - {b contention} — shortfalls / (served + shortfalls);
    - {b borrow failure rate} — fraction of borrow conversations that
      ended with queued demand still uncovered;
    - {b wait p99} — a {!Obs.Quantile_sketch} of engagement latencies
      (shortfall to mechanism outcome).

    The state machine moves one tier at a time
    (Escrow <-> Borrow <-> Redistribute) with hysteresis: escalation
    requires contention at/above [escalate_contention], de-escalation
    requires it below [escalate_contention * deescalate_margin], and
    both are gated by a minimum dwell in the current tier plus a
    cooldown after every switch — an oscillating signal cannot flap the
    mechanism (see the controller test suite). Borrow escalates to
    Redistribute only when its own outcomes degrade ([borrow_fail] or
    p99 over target): peers with spare tokens make borrowing strictly
    cheaper than consensus, peers without make it useless. *)

type signals = { contention : float; borrow_fail : float; p99_ms : float }

type t

val create :
  cfg:Config.Controller.t ->
  engine:Des.Engine.t ->
  site_id:int ->
  ?obs:Obs.Sink.port ->
  ?flight:Obs.Flight_recorder.port ->
  ?lane:int ->
  bdeps:Mechanism.borrow_deps ->
  redistribute:Mechanism.t ->
  unit ->
  t
(** Builds the three mechanisms (escrow and borrow internally, the
    redistribute wrapper passed in) and installs the borrow outcome feed
    on [bdeps]. [flight]/[lane] route mechanism-switch events to the
    always-on flight recorder when armed. *)

val mechanism : t -> Entity_state.t -> Mechanism.t
(** The mechanism currently handling this entity's shortfalls. *)

val borrow_deps : t -> Mechanism.borrow_deps

val proactive_allowed : Entity_state.t -> bool
(** Proactive prediction checks only run while the entity's mechanism is
    Redistribute — a static borrow/escrow pin must not quietly trigger
    consensus rounds. *)

val note_served : t -> Entity_state.t -> unit
(** An acquire was served from the local pool (window signal + tick). *)

val note_shortfall : t -> Entity_state.t -> unit
(** A shortfall was dispatched to the current mechanism. *)

val note_redistribution_outcome : t -> Entity_state.t -> aborted:bool -> unit
(** A protocol instance this entity triggered concluded; feeds the wait
    sketch and the redistribute cost EWMA. (Borrow outcomes arrive
    through the {!Mechanism.borrow_deps} finish hook installed by
    {!create}.) *)

val tick : t -> Entity_state.t -> unit
(** Advance the entity's window if due — called from every signal feed,
    exposed for tests. *)

val target :
  cfg:Config.Controller.t ->
  current:Config.Controller.mechanism ->
  signals ->
  Config.Controller.mechanism
(** The pure one-step decision (no dwell/cooldown gating): exposed for
    the hysteresis unit tests. *)

val signals_of : Entity_state.t -> signals
(** The current window's signals. *)

val switches : t -> int
(** Mechanism switches across all entities of this site. *)

val borrows : t -> int
(** Borrow conversations finished. *)

val borrow_tokens : t -> int
(** Tokens obtained through borrowing. *)

val pin : t -> Entity_state.t -> Config.Controller.policy -> unit
(** Per-entity policy override (the org -> team -> key escalation
    topology): a static pin switches the entity to that mechanism
    immediately and freezes it; an adaptive pin re-enables the state
    machine. *)

val pinned : Entity_state.t -> Config.Controller.policy option
