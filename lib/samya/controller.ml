type signals = { contention : float; borrow_fail : float; p99_ms : float }

type t = {
  cfg : Config.Controller.t;
  engine : Des.Engine.t;
  site_id : int;
  obs : Obs.Sink.port;
  flight : Obs.Flight_recorder.port;
  lane : int;
  escrow : Mechanism.t;
  borrow : Mechanism.t;
  redistribute : Mechanism.t;
  bdeps : Mechanism.borrow_deps;
  mutable switches : int;
  mutable borrows : int;
  mutable borrow_tokens : int;
}

let create ~(cfg : Config.Controller.t) ~engine ~site_id
    ?(obs = Obs.Sink.port ()) ?(flight = Obs.Flight_recorder.port ())
    ?(lane = 0) ~bdeps ~redistribute () =
  let t =
    {
      cfg;
      engine;
      site_id;
      obs;
      flight;
      lane;
      escrow = Mechanism.escrow ();
      borrow = Mechanism.borrow bdeps;
      redistribute;
      bdeps;
      switches = 0;
      borrows = 0;
      borrow_tokens = 0;
    }
  in
  Mechanism.set_borrow_on_finish bdeps (fun ctx outcome ->
      t.borrows <- t.borrows + 1;
      t.borrow_tokens <- t.borrow_tokens + outcome.Mechanism.o_obtained;
      ctx.Entity_state.ctl_borrows <- ctx.Entity_state.ctl_borrows + 1;
      if not outcome.Mechanism.o_satisfied then
        ctx.Entity_state.ctl_borrow_fails <-
          ctx.Entity_state.ctl_borrow_fails + 1;
      (match ctx.Entity_state.ctl_wait with
      | Some sketch -> Obs.Quantile_sketch.add sketch outcome.Mechanism.o_wait_ms
      | None -> ());
      t.borrow.Mechanism.note_cost outcome.Mechanism.o_wait_ms);
  t

let mechanism t (ctx : Entity_state.t) =
  match ctx.Entity_state.ctl_mech with
  | Config.Controller.Escrow -> t.escrow
  | Config.Controller.Borrow -> t.borrow
  | Config.Controller.Redistribute -> t.redistribute

let borrow_deps t = t.bdeps
let switches t = t.switches
let borrows t = t.borrows
let borrow_tokens t = t.borrow_tokens

(* Proactive prediction checks trigger consensus redistributions; under
   the controller they only make sense while that is the entity's
   mechanism (a static borrow arm must not quietly redistribute). *)
let proactive_allowed (ctx : Entity_state.t) =
  ctx.Entity_state.ctl_mech = Config.Controller.Redistribute

(* ------------------------------------------------------------------ *)
(* The escalation state machine                                         *)

(* One tier at a time, with a hysteresis band: escalation needs windowed
   contention at/above [escalate_contention]; de-escalation needs it
   below [escalate_contention * deescalate_margin]. Signals between the
   two thresholds keep the current tier — an oscillating signal cannot
   flap the mechanism. Borrow additionally escalates to consensus when
   its own outcomes degrade (unsatisfied grants or slow conversations):
   that is the "sustained pressure" condition where peers have nothing
   spare and only a global re-division helps. *)
let target ~(cfg : Config.Controller.t) ~current (s : signals) =
  let esc = cfg.Config.Controller.escalate_contention in
  let low = esc *. cfg.Config.Controller.deescalate_margin in
  match current with
  | Config.Controller.Escrow ->
      if s.contention >= esc then Config.Controller.Borrow
      else Config.Controller.Escrow
  | Config.Controller.Borrow ->
      if
        s.contention >= esc
        && (s.borrow_fail >= cfg.Config.Controller.borrow_fail_escalate
           || s.p99_ms > cfg.Config.Controller.p99_target_ms)
      then Config.Controller.Redistribute
      else if s.contention < low then Config.Controller.Escrow
      else Config.Controller.Borrow
  | Config.Controller.Redistribute ->
      if s.contention < low then Config.Controller.Borrow
      else Config.Controller.Redistribute

let signals_of (ctx : Entity_state.t) =
  let served = ctx.Entity_state.ctl_served
  and short = ctx.Entity_state.ctl_shortfall in
  let total = served + short in
  let contention =
    if total = 0 then 0.0 else float_of_int short /. float_of_int total
  in
  let borrow_fail =
    if ctx.Entity_state.ctl_borrows = 0 then 0.0
    else
      float_of_int ctx.Entity_state.ctl_borrow_fails
      /. float_of_int ctx.Entity_state.ctl_borrows
  in
  let p99_ms =
    match ctx.Entity_state.ctl_wait with
    | Some sketch when Obs.Quantile_sketch.count sketch > 0 ->
        Obs.Quantile_sketch.quantile sketch 0.99
    | Some _ | None -> 0.0
  in
  { contention; borrow_fail; p99_ms }

let reset_window (ctx : Entity_state.t) ~now =
  ctx.Entity_state.ctl_win_start <- now;
  ctx.Entity_state.ctl_served <- 0;
  ctx.Entity_state.ctl_shortfall <- 0;
  ctx.Entity_state.ctl_borrows <- 0;
  ctx.Entity_state.ctl_borrow_fails <- 0;
  match ctx.Entity_state.ctl_wait with
  | Some _ -> ctx.Entity_state.ctl_wait <- Some (Obs.Quantile_sketch.create ())
  | None -> ()

let switch t (ctx : Entity_state.t) ~now next =
  let prev = ctx.Entity_state.ctl_mech in
  ctx.Entity_state.ctl_mech <- next;
  ctx.Entity_state.ctl_since_ms <- now;
  ctx.Entity_state.ctl_cooldown_until <-
    now +. t.cfg.Config.Controller.cooldown_ms;
  ctx.Entity_state.ctl_switches <- ctx.Entity_state.ctl_switches + 1;
  t.switches <- t.switches + 1;
  (match Obs.Flight_recorder.tap t.flight with
  | None -> ()
  | Some a ->
      Obs.Flight_recorder.record a.Obs.Flight_recorder.recorder ~lane:t.lane
        ~ts:now ~kind:Obs.Flight_recorder.Mech ~site:t.site_id
        ~entity:(Entity_state.entity ctx)
        (Mechanism.kind_name prev ^ ">" ^ Mechanism.kind_name next));
  match Obs.Sink.tap t.obs with
  | None -> ()
  | Some sink ->
      Obs.Metrics.incr
        (Obs.Metrics.counter sink.Obs.Sink.metrics
           ("samya.controller.switch." ^ Mechanism.kind_name next));
      (* A zero-width phase marks the switch instant on whatever request
         lineage drove the deciding window. *)
      let tctx = Des.Engine.current_context t.engine in
      if not (Des.Trace_context.is_none tctx) then
        Obs.Causal.record sink.Obs.Sink.causal
          (Obs.Causal.Phase
             {
               trace = tctx.Des.Trace_context.trace;
               site = t.site_id;
               name =
                 "mech.switch:" ^ Mechanism.kind_name prev ^ ">"
                 ^ Mechanism.kind_name next;
               t0 = now;
               t1 = now;
             })

(* Window boundary: evaluate the state machine under the hysteresis
   guards (dwell in the current tier, cooldown since the last switch),
   then start a fresh window. Static pins never switch; per-entity pins
   (the org escalation topology) override the site-wide policy. *)
let evaluate t (ctx : Entity_state.t) ~now =
  let policy =
    match ctx.Entity_state.ctl_pinned with
    | Some p -> p
    | None -> t.cfg.Config.Controller.policy
  in
  (match policy with
  | Config.Controller.Static _ -> ()
  | Config.Controller.Adaptive ->
      if
        now -. ctx.Entity_state.ctl_since_ms
        >= t.cfg.Config.Controller.dwell_ms
        && now >= ctx.Entity_state.ctl_cooldown_until
      then begin
        let next = target ~cfg:t.cfg ~current:ctx.Entity_state.ctl_mech
            (signals_of ctx)
        in
        if next <> ctx.Entity_state.ctl_mech then switch t ctx ~now next
      end);
  reset_window ctx ~now

let tick t (ctx : Entity_state.t) =
  let now = Des.Engine.now t.engine in
  if now -. ctx.Entity_state.ctl_win_start >= t.cfg.Config.Controller.window_ms
  then evaluate t ctx ~now

(* ------------------------------------------------------------------ *)
(* Signal feeds                                                         *)

let note_served t (ctx : Entity_state.t) =
  ctx.Entity_state.ctl_served <- ctx.Entity_state.ctl_served + 1;
  tick t ctx

let note_shortfall t (ctx : Entity_state.t) =
  ctx.Entity_state.ctl_shortfall <- ctx.Entity_state.ctl_shortfall + 1;
  tick t ctx

(* Redistribution outcomes reach the controller through the site's
   [register_outcome] hook; the engagement latency approximates as time
   since the reactive trigger stamped [last_redistribution_ms]. *)
let note_redistribution_outcome t (ctx : Entity_state.t) ~aborted:_ =
  let now = Des.Engine.now t.engine in
  let wait = now -. ctx.Entity_state.last_redistribution_ms in
  if wait >= 0.0 && wait < infinity then begin
    (match ctx.Entity_state.ctl_wait with
    | Some sketch -> Obs.Quantile_sketch.add sketch wait
    | None -> ());
    t.redistribute.Mechanism.note_cost wait
  end;
  tick t ctx

(* ------------------------------------------------------------------ *)
(* Topology pins (the org escalation tiers)                             *)

let pin t (ctx : Entity_state.t) policy =
  ctx.Entity_state.ctl_pinned <- Some policy;
  (match policy with
  | Config.Controller.Static m -> ctx.Entity_state.ctl_mech <- m
  | Config.Controller.Adaptive -> ());
  ignore t

let pinned (ctx : Entity_state.t) = ctx.Entity_state.ctl_pinned
