(** Site/cluster configuration, including the ablation switches used by the
    evaluation (Figs. 3e, 3f).

    Knob families that accreted across the overload and controller work are
    grouped into validated sub-records ({!Admission}, {!Breaker},
    {!Controller}); {!validate} is the single entry point and delegates to
    each sub-record's validator. Single knobs with no family
    ([amnesia_on_crash], [protocol_batch], [deadline_budget_ms]) stay flat. *)

type variant = Majority  (** Avantan[(n+1)/2] *) | Star  (** Avantan[*] *)

(** CoDel-style per-site admission gate on CPU backlog (PR 8). *)
module Admission : sig
  type t = {
    target_ms : float;
        (** sojourn target: when the CPU backlog has exceeded this target
            for a sustained [interval_ms] the site sheds newest acquire
            arrivals ([Rejected_deadline], zero CPU cost) until the backlog
            falls back below half the target. [infinity] (default) disables
            the gate entirely — the disabled path costs one load and one
            branch. *)
    interval_ms : float;
        (** how long the backlog must stay above target before the gate
            enters drop mode — absorbs bursts shorter than this *)
  }

  val default : t
  val enabled : t -> bool
  val validate : t -> (unit, string) result
end

(** Circuit breaker on repeatedly aborting redistributions (PR 8). *)
module Breaker : sig
  type t = {
    threshold : int;
        (** after this many consecutive aborted Avantan instances for one
            entity the site stops triggering new instances for it and
            serves local-escrow-only until [probe_ms] elapses, then
            re-probes with one instance. 0 (default) disables the
            breaker. *)
    probe_ms : float;
        (** how long an open breaker holds before allowing a probe
            instance *)
  }

  val default : t
  val enabled : t -> bool
  val validate : t -> (unit, string) result
end

(** The adaptive contention controller: per-entity online selection of the
    token-movement {!Mechanism} (escrow headroom / peer borrowing / Avantan
    redistribution) from windowed contention, borrow-outcome and wait-p99
    signals, with hysteresis so it cannot flap. *)
module Controller : sig
  type mechanism =
    | Escrow  (** serve from the local pool only; shortfalls reject *)
    | Borrow
        (** demarcation-style peer borrowing: ask peers in proximity order
            for [shortfall + borrow_quantum] tokens, park the queue while
            an ask is in flight *)
    | Redistribute
        (** today's Avantan path: trigger a consensus redistribution and
            park the queue until it decides *)

  val mechanism_name : mechanism -> string

  type policy =
    | Static of mechanism  (** pin one mechanism (the experiment's arms) *)
    | Adaptive  (** run the escalation state machine *)

  val policy_name : policy -> string

  type t = {
    enabled : bool;
        (** [false] (default) keeps the historical redistribution-only
            wiring; the disabled path costs one load and one branch on the
            shortfall path and nothing on the grant path. *)
    policy : policy;
    window_ms : float;  (** tumbling signal window *)
    escalate_contention : float;
        (** windowed shortfall fraction (shortfalls / (served + shortfalls))
            at or above which the controller escalates one tier *)
    deescalate_margin : float;
        (** de-escalate only when contention falls below
            [escalate_contention * deescalate_margin] — the hysteresis
            band *)
    borrow_fail_escalate : float;
        (** windowed fraction of borrows that ended unsatisfied at or above
            which Borrow escalates to Redistribute *)
    p99_target_ms : float;
        (** windowed p99 of parked-wait time above which Borrow escalates
            to Redistribute; [infinity] disables the latency signal *)
    dwell_ms : float;  (** minimum residence time before any switch *)
    cooldown_ms : float;  (** minimum spacing between consecutive switches *)
    borrow_quantum : int;
        (** extra tokens asked on top of the observed shortfall, so one
            grant covers a little future demand *)
    borrow_patience_ms : float;
        (** per-peer patience before moving to the next peer / giving up *)
  }

  val default : t
  val validate : t -> (unit, string) result
end

type t = {
  variant : variant;
  epoch_ms : float;
      (** prediction look-ahead window (§4.2); 5 s of compressed trace time
          corresponds to the paper's 5-minute epochs *)
  history_epochs : int;  (** demand history kept for the forecaster *)
  buffer_epochs : int;
      (** how many epochs of predicted demand a redistribution should leave
          the site holding. Triggering follows Equation 4 (predicted
          next-epoch demand exceeds the local pool), but requesting only a
          single epoch's worth would re-trigger every epoch; a multi-epoch
          buffer amortises one synchronization over many epochs of local
          serving, which is the point of the design. *)
  request_headroom : float;
      (** low/high watermark ratio: a redistribution triggers when the
          local pool drops below the predicted need but requests
          [headroom x need], so consecutive instances are spaced by the
          time it takes to erode the extra headroom rather than one
          epoch. *)
  prediction_enabled : bool;  (** [false] = reactive-only (Fig. 3f) *)
  redistribution_enabled : bool;  (** [false] = reject on exhaustion (Fig. 3e) *)
  enforce_constraint : bool;  (** [false] = no global limit (Fig. 3e) *)
  proactive_check_ms : float;
      (** minimum spacing of background prediction checks after served
          acquires *)
  redistribution_cooldown_ms : float;
      (** minimum spacing between redistributions triggered by one site —
          guards against redistribution storms under global scarcity *)
  election_timeout_ms : float;  (** leader phase-1 patience *)
  accept_timeout_ms : float;  (** leader phase-2 retry period *)
  cohort_timeout_ms : float;  (** cohort's leader-failure detector *)
  status_retry_ms : float;  (** Avantan[*] recovery retry period *)
  local_processing_ms : float;  (** CPU cost to serve one request locally *)
  read_timeout_ms : float;  (** global-snapshot read fan-out patience *)
  anti_entropy_ms : float;
      (** period of the decision anti-entropy gossip: each site
          periodically asks peers for decided redistributions involving it
          and applies any it missed (lost Decision messages, aborted
          recoveries). 0 disables it. Idempotent by instance origin. *)
  decided_log_retention : int;
      (** how many decided values each site keeps per entity (newest
          first) to answer the Recovery-Query of a peer that was down when
          they happened. A crashed site only ever misses decisions from
          its own crash window, so recovery replays correctly as long as
          fewer than this many instances decide while a peer is down;
          older entries are dropped to bound site state. *)
  reallocation_policy : Reallocation.policy;
      (** the pluggable Redistribution Module (§4.4); must be identical at
          every site, since participants compute the outcome locally *)
  amnesia_on_crash : bool;
      (** failure model. [false] (default) is the historical freeze model:
          a crashed site keeps its in-memory state and resumes from it —
          equivalent to assuming every update hits stable storage for
          free. [true] is crash-amnesia: a crash discards all volatile
          state and recovery rebuilds from the durable image (written
          under [durability_sync]) plus decided-log catch-up from peers. *)
  durability_sync : Storage.Durable.sync_policy;
      (** when protocol-critical state (promised/accepted ballots, the
          token ledger, the applied-origins dedupe set) reaches stable
          storage; only meaningful with [amnesia_on_crash]. The default
          [Sync_always] is the Paxos-safe write-through discipline; weaker
          policies trade durability for fewer (simulated) fsyncs and are
          what the chaos auditor exists to catch. *)
  entity_shards : int;
      (** hash shards of the per-site {!Entity_map}; 1 suffices for the
          single-entity experiments, the gateway fleet uses hundreds *)
  entity_capacity : int;
      (** size hint for the entity arena (number of expected entities) *)
  protocol_batch : int;
      (** 1 (default): one Avantan machine per entity, the original
          layout. > 1: one site-level machine whose instances piggyback up
          to this many triggered entities' deltas in a single WAN round.
          Batching requires the freeze failure model
          ([amnesia_on_crash = false]). *)
  deadline_budget_ms : float;
      (** default time budget stamped on requests that arrive without a
          deadline of their own: a queued request older than this is
          discarded (shed) instead of replayed when the redistribution
          that parked it ends. [infinity] (default) keeps the historical
          wait-forever behaviour. *)
  admission : Admission.t;  (** per-site admission gate *)
  breaker : Breaker.t;  (** redistribution circuit breaker *)
  controller : Controller.t;  (** adaptive contention controller *)
}

val default : t
(** Tuned for the five-region GCP-like topology: timeouts comfortably above
    the worst one-way latency (~150 ms). Byte-compatible with the pre-grouping
    flat defaults: every sub-record default reproduces the old flat values. *)

val validate : t -> (unit, string) result
(** Rejects inconsistent settings with an explanatory message; the
    overload knobs are NaN-safe (a NaN budget or target is rejected, not
    silently treated as disabled). Delegates to the sub-record validators. *)
