(* One in-flight peer-borrow conversation (the Borrow mechanism):
   [b_to_ask] is the proximity-ordered list of peers not yet asked,
   [b_patience] the per-ask give-up timer. The request that triggered the
   borrow sits in [queue] like any parked request; [b_ctx]/[b_t0] keep its
   lineage and start time for the causal mech.borrow phase. *)
type borrow = {
  mutable b_to_ask : int list;
  mutable b_patience : Des.Engine.timer option;
  mutable b_obtained : int;
  b_ctx : Des.Trace_context.t;
  b_t0 : float;
}

type t = {
  core : t Entity_map.core;
  queue :
    (Types.request * (Types.response -> unit) * Des.Trace_context.t * float) Queue.t;
      (** last component: the entry's effective deadline — the request's
          own, tightened by the site's default budget at enqueue time *)
  mutable queue_peak : int;
  tracker : Demand_tracker.t;
      (** per-epoch net token consumption and peak concurrent draw *)
  applied_origins : (Consensus.Ballot.t, unit) Hashtbl.t;
      (** decisions already applied — each instance moves tokens exactly
          once, whether it arrives via the protocol or via recovery *)
  mutable decided_log : Protocol.value list;
      (** decisions this site has seen, newest first, capped at
          [decided_log_retention]; answers the Recovery_query of a peer
          that was down when they happened *)
  mutable decided_log_len : int;
  mutable av : Avantan_core.t option;
  mutable last_redistribution_ms : float;
  mutable last_proactive_check_ms : float;
  mutable backoff_ms : float;
      (** current redistribution spacing: the configured cooldown normally,
          doubled (capped) after each instance that failed to satisfy this
          site — triggering again during a global token famine only burns
          synchronization rounds *)
  mutable request_scale : float;
      (** multiplier on the requested headroom, halved after each
          unsatisfied instance: Algorithm 2's rejection is all-or-nothing,
          so when the pool runs low a site must shrink its ask to drain
          what remains instead of being rejected repeatedly *)
  mutable consec_aborts : int;
      (** consecutive aborted instances, for the circuit breaker *)
  mutable breaker_open_until : float;
      (** while [now] is below this the breaker is open: no new instances
          for this entity, local-escrow-only service *)
  mutable breaker_trips : int;
  mutable borrow : borrow option;
      (** in-flight peer borrow; requests park behind it like they do
          behind a redistribution ([None] always when the controller is
          off) *)
  mutable ctl_mech : Config.Controller.mechanism;
      (** the mechanism currently handling this entity's shortfalls *)
  mutable ctl_pinned : Config.Controller.policy option;
      (** per-entity policy override (the org escalation topology pins
          tiers); [None] = the site-wide configured policy *)
  mutable ctl_since_ms : float;  (** when [ctl_mech] was entered (dwell) *)
  mutable ctl_cooldown_until : float;
      (** no further switch before this time *)
  mutable ctl_win_start : float;  (** current signal window's start *)
  mutable ctl_served : int;  (** window: acquires served from the pool *)
  mutable ctl_shortfall : int;  (** window: shortfall events *)
  mutable ctl_borrows : int;  (** window: borrows finished *)
  mutable ctl_borrow_fails : int;
      (** window: borrows that ended unsatisfied *)
  mutable ctl_wait : Obs.Quantile_sketch.t option;
      (** window: engagement latencies (shortfall -> mechanism outcome);
          allocated only when the controller is on, so the million-key
          arena pays nothing *)
  mutable ctl_switches : int;  (** run statistic: mechanism switches *)
}

(* The mechanism an entity starts under: the pin when the policy is
   static, the cheapest tier (escrow-while-cold) when adaptive. *)
let initial_mechanism (config : Config.t) =
  match config.Config.controller.Config.Controller.policy with
  | Config.Controller.Static m -> m
  | Config.Controller.Adaptive -> Config.Controller.Escrow

let create ~engine ~(config : Config.t) ~(core : t Entity_map.core) =
  {
    core;
    queue = Queue.create ();
    queue_peak = 0;
    tracker =
      Demand_tracker.create ~engine ~epoch_ms:config.Config.epoch_ms
        ~capacity:config.Config.history_epochs;
    applied_origins = Hashtbl.create 64;
    decided_log = [];
    decided_log_len = 0;
    av = None;
    last_redistribution_ms = neg_infinity;
    last_proactive_check_ms = neg_infinity;
    backoff_ms = config.Config.redistribution_cooldown_ms;
    request_scale = 1.0;
    consec_aborts = 0;
    breaker_open_until = neg_infinity;
    breaker_trips = 0;
    borrow = None;
    ctl_mech = initial_mechanism config;
    ctl_pinned = None;
    ctl_since_ms = 0.0;
    ctl_cooldown_until = neg_infinity;
    ctl_win_start = 0.0;
    ctl_served = 0;
    ctl_shortfall = 0;
    ctl_borrows = 0;
    ctl_borrow_fails = 0;
    ctl_wait =
      (if config.Config.controller.Config.Controller.enabled then
         Some (Obs.Quantile_sketch.create ())
       else None);
    ctl_switches = 0;
  }

let entity t = t.core.Entity_map.name

let core t = t.core

(* Crash-amnesia recovery: overwrite the ledger with the durable image and
   reset everything volatile. The demand tracker is deliberately left
   alone — it is soft state that only steers prediction quality, and the
   recovering process has no better estimate than the history it kept
   in the simulated stable store of the harness (a fresh tracker would
   merely predict zero for a few epochs). The protocol instance ([av]) is
   reattached separately by {!Protocol_driver}. *)
let restore t ~(config : Config.t) ~tokens_left ~acquired_net ~applied_origins
    ~decided_log =
  t.core.Entity_map.tokens_left <- tokens_left;
  t.core.Entity_map.tokens_wanted <- 0;
  t.core.Entity_map.acquired_net <- acquired_net;
  t.core.Entity_map.exposed <- false;
  Queue.clear t.queue;
  Hashtbl.reset t.applied_origins;
  List.iter (fun origin -> Hashtbl.replace t.applied_origins origin ()) applied_origins;
  t.decided_log <- decided_log;
  t.decided_log_len <- List.length decided_log;
  t.av <- None;
  t.last_redistribution_ms <- neg_infinity;
  t.last_proactive_check_ms <- neg_infinity;
  t.backoff_ms <- config.Config.redistribution_cooldown_ms;
  t.request_scale <- 1.0;
  t.consec_aborts <- 0;
  t.breaker_open_until <- neg_infinity;
  (* In-flight borrows die with the process (a grant already sent by a
     peer still lands in the recovered ledger via the network handler);
     controller state restarts from the initial tier with fresh windows. *)
  (match t.borrow with
  | Some b -> (
      t.borrow <- None;
      match b.b_patience with
      | Some timer -> Des.Engine.cancel timer
      | None -> ())
  | None -> ());
  t.ctl_mech <- initial_mechanism config;
  t.ctl_since_ms <- 0.0;
  t.ctl_cooldown_until <- neg_infinity;
  t.ctl_win_start <- 0.0;
  t.ctl_served <- 0;
  t.ctl_shortfall <- 0;
  t.ctl_borrows <- 0;
  t.ctl_borrow_fails <- 0;
  (match t.ctl_wait with
  | Some _ -> t.ctl_wait <- Some (Obs.Quantile_sketch.create ())
  | None -> ())
(* [queue_peak], [breaker_trips], [ctl_switches] and the per-entity pin
   ([ctl_pinned], topology not volatile state) are run statistics, not
   protocol state: they survive recovery like the handler's counters do. *)

let participating t =
  match t.av with
  | Some av -> Avantan_core.participating av
  | None -> t.core.Entity_map.exposed

(* Requests must queue while either kind of token-movement engagement is
   in flight: a protocol instance or a peer borrow. With the controller
   off [borrow] is always [None], so this is one extra load and branch. *)
let parked t =
  match t.borrow with Some _ -> true | None -> participating t

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* Remember a decided value for peer recovery, newest first, dropping
   entries beyond the retention cap. *)
let record_decision t ~retention value =
  t.decided_log <- value :: t.decided_log;
  if t.decided_log_len >= retention then
    (* Already full: drop the oldest entry to make room. *)
    t.decided_log <- take retention t.decided_log
  else t.decided_log_len <- t.decided_log_len + 1

let decided_log t = t.decided_log

let decided_log_length t = t.decided_log_len

(* The decisions that involve [peer]: those are the instances that may
   have moved its tokens. *)
let decisions_for t ~peer =
  List.filter (fun value -> Protocol.mem_site value peer) t.decided_log
