(** The per-entity state a crash-amnesiac site persists through
    {!Storage.Durable}.

    One image per entity, written atomically as a whole: the token ledger
    ([tokens_left]/[acquired_net]), the applied-origins dedupe set, the
    decided log that answers peer Recovery-Queries, and the protocol
    instance's own durable state ({!Avantan_core.image}). Snapshotting the
    whole record at once keeps the image internally consistent under weak
    sync policies — a crash rolls the ledger and the dedupe set back
    {e together}, so catch-up replay re-applies exactly the instances the
    rolled-back ledger is missing. *)

type t = {
  tokens_left : int;
  acquired_net : int;
  applied_origins : Consensus.Ballot.t list;
  decided_log : Protocol.value list;
  protocol : Avantan_core.image option;
}

val capture : Entity_state.t -> t
(** Snapshot an entity's durable state (origins sorted, so images are
    deterministic). *)
