(** The Request Handler Module of a site (§4.1): serves acquires and
    releases against the local token pool, models the per-request CPU
    occupancy, queues clients while a redistribution holds the entity's
    state exposed, and fans global-snapshot reads out to all peers
    (§5.8).

    It is wired to the other three site modules through {!deps} closures:
    {!Prediction} sizes reactive asks and runs the proactive check,
    {!Redistribution_policy} gates triggers during famine, and
    {!Protocol_driver} starts instances and drains the queue when they
    end. *)

type deps = {
  alive : unit -> bool;
  reactive_ok : Entity_state.t -> bool;
  reactive_wanted : Entity_state.t -> amount:int -> int;
  trigger : Entity_state.t -> unit;
  proactive : Entity_state.t -> unit;
  broadcast_read_query : entity:Types.entity -> rid:int -> unit;
  persist : Entity_state.t -> unit;
      (** durability hook after a served request moves the token ledger;
          a no-op under the freeze model *)
  heat : Entity_state.t Entity_map.core -> Entity_state.t;
      (** materialise hot state for a cold entity that can no longer be
          served from its core ledger alone *)
  controller : Controller.t option;
      (** [Some] iff {!Config.Controller.enabled}: shortfalls dispatch to
          the entity's current {!Mechanism} instead of the legacy
          reactive-redistribution branch *)
}

type t

val create :
  config:Config.t ->
  engine:Des.Engine.t ->
  site_id:int ->
  n_sites:int ->
  ?obs:Obs.Sink.port ->
  ?flight:Obs.Flight_recorder.port ->
  ?lane:int ->
  deps ->
  t
(** [obs] is a late-bound observability port (default: a fresh, never
    attached one). While no sink is attached the instrumented paths cost
    one load-and-branch each; with a sink they feed the [samya.*]
    counters, the queue-depth gauge, and the causal request log
    (accept / enqueue / dequeue / cpu-wait / service / read-fan-out
    events stamped with [site_id]). Requests that arrive without an
    ambient {!Des.Trace_context} get a fresh root stamped here.

    [flight] is the always-on flight-recorder port ([lane] = the site's
    hosting-region engine lane): shed decisions (deadline / admission /
    queue expiry) are recorded when armed, at the same
    one-load-one-branch disarmed cost. *)

val accept :
  t -> Entity_state.t -> Types.request -> (Types.response -> unit) -> unit
(** Dispatch a validated acquire/release: record demand, then serve
    locally or queue while the entity is redistributing. Read requests
    must go to {!serve_read} instead.

    Overload shedding runs first, before any CPU occupancy or ledger
    movement: a request whose deadline has already passed, or an acquire
    arriving while the CoDel-style admission gate is in drop mode
    ({!Config.Admission.target_ms}), is answered
    {!Types.Rejected_deadline} synchronously. *)

val accept_core :
  t -> Entity_state.t Entity_map.core -> Types.request -> (Types.response -> unit) -> unit
(** Like {!accept} on an entity that may still be cold: releases and
    in-pool acquires are served straight from the core ledger (no queue,
    no demand tracking); anything else heats the entity via [deps.heat]
    first. *)

val serve_local :
  t -> Entity_state.t -> Types.request -> (Types.response -> unit) -> drain:bool -> unit
(** Serve one acquire/release. In [drain] mode (queue replay after an
    instance ended) an unservable acquire is rejected rather than
    re-triggering. *)

val drain_queue : ?reject_unservable:bool -> t -> Entity_state.t -> unit
(** Replay the queue after an engagement (instance or borrow) ended;
    requests re-queue if a new one started meanwhile. Entries whose
    effective deadline passed while parked are discarded with a cheap
    {!Types.Rejected_deadline} instead of being replayed.
    [reject_unservable] (default [false]) rejects acquires the pool
    still cannot cover instead of letting them re-engage — used after a
    borrow that ended short, so a starved entity cannot loop. *)

val serve_read :
  t ->
  ?deadline_ms:float ->
  entity:Types.entity ->
  own:int ->
  (Types.response -> unit) ->
  unit
(** Start a global-snapshot read: [own] tokens plus a fan-out to peers,
    answered after quorum-of-all or timeout. A read already past
    [deadline_ms] (default [infinity]) is shed like the write path. *)

val on_read_reply : t -> rid:int -> tokens_left:int -> unit

val on_crash : t -> unit
(** Drop in-flight reads (their timers no-op on the dead read id). *)

val served_acquires : t -> int
val served_releases : t -> int
val served_reads : t -> int
val rejected : t -> int
val queued_peak : t -> int
val reactive_triggers : t -> int

val shed_deadline : t -> int
(** Requests refused because they arrived already past their deadline. *)

val shed_admission : t -> int
(** Acquires refused by the admission gate's drop mode. *)

val shed_queue_expired : t -> int
(** Parked queue entries discarded at drain because their effective
    deadline passed while the entity's state was exposed. *)

val admission_dropping : t -> bool
(** Is the admission gate currently in drop mode? (test hook) *)
