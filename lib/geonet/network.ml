type 'msg envelope = {
  src : int;
  dst : int;
  sent_at : float;
  payload : 'msg;
}

type 'msg t = {
  engine : Des.Engine.t;
  regions : Region.t array;
  mutable drop_probability : float;
  jitter_fraction : float;
  rng : Des.Rng.t;
  handlers : ('msg envelope -> unit) option array;
  up : bool array;
  mutable partition : int array option; (* group id per node; None = connected *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

let create engine ~regions ?(drop_probability = 0.0) ?(jitter_fraction = 0.05) () =
  let n = Array.length regions in
  {
    engine;
    regions;
    drop_probability;
    jitter_fraction;
    rng = Des.Rng.split (Des.Engine.rng engine);
    handlers = Array.make n None;
    up = Array.make n true;
    partition = None;
    sent = 0;
    delivered = 0;
    dropped = 0;
  }

let engine t = t.engine

let node_count t = Array.length t.regions

let region_of t i = t.regions.(i)

let register t ~node handler = t.handlers.(node) <- Some handler

let latency_ms t ~src ~dst = Region.one_way_ms t.regions.(src) t.regions.(dst)

let same_partition t a b =
  match t.partition with None -> true | Some groups -> groups.(a) = groups.(b)

let reachable t a b = t.up.(a) && t.up.(b) && same_partition t a b

let send t ~src ~dst payload =
  t.sent <- t.sent + 1;
  if not t.up.(src) then t.dropped <- t.dropped + 1
  else begin
    let base = latency_ms t ~src ~dst in
    let jitter = Des.Rng.float t.rng (t.jitter_fraction *. Float.max base 1.0) in
    let sent_at = Des.Engine.now t.engine in
    let dropped_in_flight = Des.Rng.bool t.rng t.drop_probability in
    (* Partition and liveness are evaluated at delivery time so that a
       partition healed mid-flight lets late messages through, matching an
       asynchronous network where delay and disconnection are
       indistinguishable. The envelope is only materialised on delivery, so
       a dropped message costs nothing beyond its in-flight closure. *)
    Des.Engine.schedule t.engine ~delay_ms:(base +. jitter) (fun () ->
        if dropped_in_flight || (not (reachable t src dst)) then
          t.dropped <- t.dropped + 1
        else
          match t.handlers.(dst) with
          | None -> t.dropped <- t.dropped + 1
          | Some handler ->
              t.delivered <- t.delivered + 1;
              handler { src; dst; sent_at; payload })
  end

let broadcast t ~src payload =
  for dst = 0 to node_count t - 1 do
    if dst <> src then send t ~src ~dst payload
  done

let crash t node = t.up.(node) <- false

let recover t node = t.up.(node) <- true

let is_up t node = t.up.(node)

let set_partition t groups =
  let assignment = Array.make (node_count t) (-1) in
  List.iteri
    (fun group_id members ->
      List.iter (fun node -> assignment.(node) <- group_id) members)
    groups;
  (* Unlisted nodes each get their own singleton group. *)
  let next = ref (List.length groups) in
  Array.iteri
    (fun node group ->
      if group = -1 then begin
        assignment.(node) <- !next;
        incr next
      end)
    assignment;
  t.partition <- Some assignment

let clear_partition t = t.partition <- None

let set_drop_probability t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Network.set_drop_probability";
  t.drop_probability <- p

let stats_sent t = t.sent
let stats_delivered t = t.delivered
let stats_dropped t = t.dropped
