type 'msg envelope = {
  src : int;
  dst : int;
  sent_at : float;
  payload : 'msg;
}

(* Per-link fault overrides (chaos injection). A link is the directed pair
   (src, dst); absent entries mean "no override". *)
type link = {
  mutable l_drop : float option;  (* overrides the global drop probability *)
  mutable l_extra_ms : float;  (* added to the base one-way latency *)
  mutable l_blocked : bool;  (* one-way cut: src -> dst delivers nothing *)
}

type tracer = {
  on_send : src:int -> dst:int -> now_ms:float -> unit;
  on_deliver : src:int -> dst:int -> sent_at:float -> now_ms:float -> unit;
  on_drop : src:int -> dst:int -> sent_at:float -> now_ms:float -> unit;
}

type 'msg t = {
  engine : Des.Engine.t;
  regions : Region.t array;
  mutable drop_probability : float;
  mutable duplicate_probability : float;
  jitter_fraction : float;
  rng : Des.Rng.t;
  handlers : ('msg envelope -> unit) option array;
  up : bool array;
  mutable partition : int array option; (* group id per node; None = connected *)
  links : (int * int, link) Hashtbl.t;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable tracer : tracer option;
}

let check_probability ~what p =
  (* [not (p >= 0 && p <= 1)] rather than [p < 0 || p > 1]: NaN fails every
     comparison, so the naive form would silently accept it. *)
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Network.%s: probability must be in [0, 1]" what)

let create engine ~regions ?(drop_probability = 0.0) ?(jitter_fraction = 0.05) () =
  check_probability ~what:"create (drop_probability)" drop_probability;
  if not (jitter_fraction >= 0.0) then
    invalid_arg "Network.create: jitter_fraction must be >= 0";
  let n = Array.length regions in
  {
    engine;
    regions;
    drop_probability;
    duplicate_probability = 0.0;
    jitter_fraction;
    rng = Des.Rng.split (Des.Engine.rng engine);
    handlers = Array.make n None;
    up = Array.make n true;
    partition = None;
    links = Hashtbl.create 8;
    sent = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    tracer = None;
  }

let engine t = t.engine

let set_tracer t tracer = t.tracer <- tracer

let node_count t = Array.length t.regions

let region_of t i = t.regions.(i)

let register t ~node handler = t.handlers.(node) <- Some handler

let latency_ms t ~src ~dst = Region.one_way_ms t.regions.(src) t.regions.(dst)

let same_partition t a b =
  match t.partition with None -> true | Some groups -> groups.(a) = groups.(b)

let link t ~src ~dst = Hashtbl.find_opt t.links (src, dst)

let edit_link t ~src ~dst f =
  match link t ~src ~dst with
  | Some l -> f l
  | None ->
      let l = { l_drop = None; l_extra_ms = 0.0; l_blocked = false } in
      f l;
      Hashtbl.replace t.links (src, dst) l

let link_blocked t ~src ~dst =
  match link t ~src ~dst with Some l -> l.l_blocked | None -> false

let reachable t a b = t.up.(a) && t.up.(b) && same_partition t a b

let link_open t ~src ~dst = reachable t src dst && not (link_blocked t ~src ~dst)

let deliver t ~src ~dst ~sent_at ~dropped_in_flight payload delay_ms =
  (* Partition, liveness and one-way cuts are evaluated at delivery time so
     that a fault healed mid-flight lets late messages through, matching an
     asynchronous network where delay and disconnection are
     indistinguishable. The envelope is only materialised on delivery, so a
     dropped message costs nothing beyond its in-flight closure. *)
  Des.Engine.schedule t.engine ~delay_ms (fun () ->
      let trace_drop () =
        match t.tracer with
        | Some tr ->
            tr.on_drop ~src ~dst ~sent_at ~now_ms:(Des.Engine.now t.engine)
        | None -> ()
      in
      if dropped_in_flight || not (link_open t ~src ~dst) then begin
        t.dropped <- t.dropped + 1;
        trace_drop ()
      end
      else
        match t.handlers.(dst) with
        | None ->
            t.dropped <- t.dropped + 1;
            trace_drop ()
        | Some handler ->
            t.delivered <- t.delivered + 1;
            (match t.tracer with
            | Some tr ->
                tr.on_deliver ~src ~dst ~sent_at ~now_ms:(Des.Engine.now t.engine)
            | None -> ());
            handler { src; dst; sent_at; payload })

let send t ~src ~dst payload =
  t.sent <- t.sent + 1;
  (match t.tracer with
  | Some tr -> tr.on_send ~src ~dst ~now_ms:(Des.Engine.now t.engine)
  | None -> ());
  if not t.up.(src) then t.dropped <- t.dropped + 1
  else begin
    let override = link t ~src ~dst in
    let extra = match override with Some l -> l.l_extra_ms | None -> 0.0 in
    let base = latency_ms t ~src ~dst +. extra in
    let jitter = Des.Rng.float t.rng (t.jitter_fraction *. Float.max base 1.0) in
    let sent_at = Des.Engine.now t.engine in
    let drop_p =
      match override with
      | Some { l_drop = Some p; _ } -> Float.max p t.drop_probability
      | Some _ | None -> t.drop_probability
    in
    let dropped_in_flight = Des.Rng.bool t.rng drop_p in
    let ctx = Des.Engine.current_context t.engine in
    if Des.Trace_context.is_none ctx then begin
      deliver t ~src ~dst ~sent_at ~dropped_in_flight payload (base +. jitter);
      (* The guard keeps the RNG stream identical for configurations that
         never enable duplication (byte-identical legacy runs). *)
      if t.duplicate_probability > 0.0 && Des.Rng.bool t.rng t.duplicate_probability
      then begin
        t.duplicated <- t.duplicated + 1;
        let jitter' = Des.Rng.float t.rng (t.jitter_fraction *. Float.max base 1.0) in
        deliver t ~src ~dst ~sent_at ~dropped_in_flight:false payload (base +. jitter')
      end
    end
    else begin
      (* The message crosses a causal edge: delivery (and everything the
         handler does) runs one hop further down the sender's lineage. All
         randomness is drawn above this branch, so traced and untraced
         runs see identical RNG streams. A duplicate reuses the edge — it
         is the same logical message. *)
      let child = Des.Trace_context.child ctx ~edge:(Des.Engine.fresh_id t.engine) in
      Des.Engine.with_context t.engine child (fun () ->
          deliver t ~src ~dst ~sent_at ~dropped_in_flight payload (base +. jitter);
          if
            t.duplicate_probability > 0.0 && Des.Rng.bool t.rng t.duplicate_probability
          then begin
            t.duplicated <- t.duplicated + 1;
            let jitter' =
              Des.Rng.float t.rng (t.jitter_fraction *. Float.max base 1.0)
            in
            deliver t ~src ~dst ~sent_at ~dropped_in_flight:false payload
              (base +. jitter')
          end)
    end
  end

let broadcast t ~src payload =
  for dst = 0 to node_count t - 1 do
    if dst <> src then send t ~src ~dst payload
  done

let crash t node = t.up.(node) <- false

let recover t node = t.up.(node) <- true

let is_up t node = t.up.(node)

let set_partition t groups =
  let assignment = Array.make (node_count t) (-1) in
  List.iteri
    (fun group_id members ->
      List.iter (fun node -> assignment.(node) <- group_id) members)
    groups;
  (* Unlisted nodes each get their own singleton group. *)
  let next = ref (List.length groups) in
  Array.iteri
    (fun node group ->
      if group = -1 then begin
        assignment.(node) <- !next;
        incr next
      end)
    assignment;
  t.partition <- Some assignment

let clear_partition t = t.partition <- None

let set_drop_probability t p =
  check_probability ~what:"set_drop_probability" p;
  t.drop_probability <- p

let drop_probability t = t.drop_probability

let set_duplicate_probability t p =
  check_probability ~what:"set_duplicate_probability" p;
  t.duplicate_probability <- p

let set_link_drop t ~src ~dst p =
  (match p with
  | Some p -> check_probability ~what:"set_link_drop" p
  | None -> ());
  edit_link t ~src ~dst (fun l -> l.l_drop <- p)

let set_link_extra_latency t ~src ~dst extra_ms =
  if not (extra_ms >= 0.0) then
    invalid_arg "Network.set_link_extra_latency: extra latency must be >= 0";
  edit_link t ~src ~dst (fun l -> l.l_extra_ms <- extra_ms)

let block_one_way t ~src ~dst = edit_link t ~src ~dst (fun l -> l.l_blocked <- true)

let unblock_one_way t ~src ~dst = edit_link t ~src ~dst (fun l -> l.l_blocked <- false)

let clear_link_overrides t = Hashtbl.reset t.links

let stats_sent t = t.sent
let stats_delivered t = t.delivered
let stats_dropped t = t.dropped
let stats_duplicated t = t.duplicated
