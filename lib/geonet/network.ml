type 'msg envelope = {
  src : int;
  dst : int;
  sent_at : float;
  payload : 'msg;
}

(* Per-link fault overrides (chaos injection). A link is the directed pair
   (src, dst); absent entries mean "no override". *)
type link = {
  mutable l_drop : float option;  (* overrides the global drop probability *)
  mutable l_extra_ms : float;  (* added to the base one-way latency *)
  mutable l_blocked : bool;  (* one-way cut: src -> dst delivers nothing *)
}

type tracer = {
  on_send : src:int -> dst:int -> now_ms:float -> unit;
  on_deliver : src:int -> dst:int -> sent_at:float -> now_ms:float -> unit;
  on_drop : src:int -> dst:int -> sent_at:float -> now_ms:float -> unit;
}

(* How the network schedules work. [Single] is the legacy shape: one
   engine, one jitter/drop RNG split from its root — byte-identical to
   the pre-sharding code. [Sharded] routes every event to the lane of
   the node executing it: randomness comes from that lane's own stream
   (so lane-local draw order — hence the whole run — is independent of
   how many domains drain the windows) and counters are per-lane slots
   summed on read (no racing increments). *)
type sched =
  | Single of { engine : Des.Engine.t; rng : Des.Rng.t }
  | Sharded of {
      shard : Des.Shard.t;
      node_lane : int array;
      lane_rngs : Des.Rng.t array;
    }

type 'msg t = {
  sched : sched;
  regions : Region.t array;
  mutable drop_probability : float;
  mutable duplicate_probability : float;
  jitter_fraction : float;
  handlers : ('msg envelope -> unit) option array;
  up : bool array;
  mutable partition : int array option; (* group id per node; None = connected *)
  links : (int * int, link) Hashtbl.t;
  (* Counter slot per lane (a single slot in [Single] mode): a lane only
     bumps its own slot mid-window, so parallel drains never race. *)
  sent : int array;
  delivered : int array;
  dropped : int array;
  duplicated : int array;
  mutable tracer : tracer option;
}

let check_probability ~what p =
  (* [not (p >= 0 && p <= 1)] rather than [p < 0 || p > 1]: NaN fails every
     comparison, so the naive form would silently accept it. *)
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Network.%s: probability must be in [0, 1]" what)

let check_create ~drop_probability ~jitter_fraction =
  check_probability ~what:"create (drop_probability)" drop_probability;
  if not (jitter_fraction >= 0.0) then
    invalid_arg "Network.create: jitter_fraction must be >= 0"

let make sched ~regions ~drop_probability ~jitter_fraction ~lanes =
  let n = Array.length regions in
  {
    sched;
    regions;
    drop_probability;
    duplicate_probability = 0.0;
    jitter_fraction;
    handlers = Array.make n None;
    up = Array.make n true;
    partition = None;
    links = Hashtbl.create 8;
    sent = Array.make lanes 0;
    delivered = Array.make lanes 0;
    dropped = Array.make lanes 0;
    duplicated = Array.make lanes 0;
    tracer = None;
  }

let create engine ~regions ?(drop_probability = 0.0) ?(jitter_fraction = 0.05) () =
  check_create ~drop_probability ~jitter_fraction;
  let sched = Single { engine; rng = Des.Rng.split (Des.Engine.rng engine) } in
  make sched ~regions ~drop_probability ~jitter_fraction ~lanes:1

(* Lane RNG streams hang off namespace 63 of the root seed — a reserved
   index far above any lane id, so they can never collide with the
   per-lane engine streams (indices 0 .. lanes-1). *)
let create_sharded shard ~node_lane ~seed ~regions ?(drop_probability = 0.0)
    ?(jitter_fraction = 0.05) () =
  check_create ~drop_probability ~jitter_fraction;
  if Array.length node_lane <> Array.length regions then
    invalid_arg "Network.create_sharded: node_lane/regions length mismatch";
  let root = Des.Rng.stream_seed seed 63 in
  let lanes = Des.Shard.lanes shard in
  let lane_rngs = Array.init lanes (fun i -> Des.Rng.stream root i) in
  let sched = Sharded { shard; node_lane; lane_rngs } in
  make sched ~regions ~drop_probability ~jitter_fraction ~lanes

let engine_of t ~node =
  match t.sched with
  | Single s -> s.engine
  | Sharded s -> Des.Shard.engine s.shard s.node_lane.(node)

let lane_of t node =
  match t.sched with Single _ -> 0 | Sharded s -> s.node_lane.(node)

let rng_for t ~src =
  match t.sched with
  | Single s -> s.rng
  | Sharded s -> s.lane_rngs.(s.node_lane.(src))

(* Shared-state mutations (liveness, partitions, link overrides) are read
   by every lane mid-window; in a sharded run they must execute at a
   window barrier ({!Des.Shard.schedule_global}) where no lane races the
   write. Single-engine runs are inherently sequential — no constraint. *)
let check_barrier t ~what =
  match t.sched with
  | Single _ -> ()
  | Sharded s ->
      if Des.Shard.in_window s.shard then
        invalid_arg
          (Printf.sprintf
             "Network.%s: shared-state mutation inside a shard window \
              (schedule it with Shard.schedule_global)"
             what)

let set_tracer t tracer = t.tracer <- tracer

let node_count t = Array.length t.regions

let region_of t i = t.regions.(i)

let register t ~node handler = t.handlers.(node) <- Some handler

let latency_ms t ~src ~dst = Region.one_way_ms t.regions.(src) t.regions.(dst)

let same_partition t a b =
  match t.partition with None -> true | Some groups -> groups.(a) = groups.(b)

let link t ~src ~dst = Hashtbl.find_opt t.links (src, dst)

let edit_link t ~src ~dst f =
  match link t ~src ~dst with
  | Some l -> f l
  | None ->
      let l = { l_drop = None; l_extra_ms = 0.0; l_blocked = false } in
      f l;
      Hashtbl.replace t.links (src, dst) l

let link_blocked t ~src ~dst =
  match link t ~src ~dst with Some l -> l.l_blocked | None -> false

let reachable t a b = t.up.(a) && t.up.(b) && same_partition t a b

let link_open t ~src ~dst = reachable t src dst && not (link_blocked t ~src ~dst)

(* Route the delivery event to the destination node's lane. Same-lane (and
   legacy single-engine) deliveries go straight into the local heap;
   cross-lane ones travel over the shard's bounded channels and carry the
   sender's ambient trace context explicitly, because the flush at the
   window barrier happens outside any event — there is no ambient context
   to inherit there. *)
let schedule_delivery t ~src ~dst ~delay_ms f =
  match t.sched with
  | Single s -> Des.Engine.schedule s.engine ~delay_ms f
  | Sharded s ->
      let src_lane = s.node_lane.(src) and dst_lane = s.node_lane.(dst) in
      let src_engine = Des.Shard.engine s.shard src_lane in
      let time_ms = Des.Engine.now src_engine +. Float.max 0.0 delay_ms in
      if src_lane = dst_lane then Des.Engine.schedule_at src_engine ~time_ms f
      else begin
        let ctx = Des.Engine.current_context src_engine in
        let f =
          if Des.Trace_context.is_none ctx then f
          else begin
            let dst_engine = Des.Shard.engine s.shard dst_lane in
            fun () -> Des.Engine.with_context dst_engine ctx f
          end
        in
        Des.Shard.schedule_cross s.shard ~src:src_lane ~dst:dst_lane ~time_ms f
      end

let deliver t ~src ~dst ~sent_at ~dropped_in_flight payload delay_ms =
  (* Partition, liveness and one-way cuts are evaluated at delivery time so
     that a fault healed mid-flight lets late messages through, matching an
     asynchronous network where delay and disconnection are
     indistinguishable. The envelope is only materialised on delivery, so a
     dropped message costs nothing beyond its in-flight closure. *)
  schedule_delivery t ~src ~dst ~delay_ms (fun () ->
      let lane = lane_of t dst in
      let trace_drop () =
        match t.tracer with
        | Some tr ->
            tr.on_drop ~src ~dst ~sent_at ~now_ms:(Des.Engine.now (engine_of t ~node:dst))
        | None -> ()
      in
      if dropped_in_flight || not (link_open t ~src ~dst) then begin
        t.dropped.(lane) <- t.dropped.(lane) + 1;
        trace_drop ()
      end
      else
        match t.handlers.(dst) with
        | None ->
            t.dropped.(lane) <- t.dropped.(lane) + 1;
            trace_drop ()
        | Some handler ->
            t.delivered.(lane) <- t.delivered.(lane) + 1;
            (match t.tracer with
            | Some tr ->
                tr.on_deliver ~src ~dst ~sent_at
                  ~now_ms:(Des.Engine.now (engine_of t ~node:dst))
            | None -> ());
            handler { src; dst; sent_at; payload })

(* [send] always executes on the source node's lane (site protocol code
   runs on its own engine; barrier-time globals run with no window open),
   so the RNG draws and counter bumps below are lane-local. *)
let send t ~src ~dst payload =
  let src_lane = lane_of t src in
  let src_engine = engine_of t ~node:src in
  let rng = rng_for t ~src in
  t.sent.(src_lane) <- t.sent.(src_lane) + 1;
  (match t.tracer with
  | Some tr -> tr.on_send ~src ~dst ~now_ms:(Des.Engine.now src_engine)
  | None -> ());
  if not t.up.(src) then t.dropped.(src_lane) <- t.dropped.(src_lane) + 1
  else begin
    let override = link t ~src ~dst in
    let extra = match override with Some l -> l.l_extra_ms | None -> 0.0 in
    let base = latency_ms t ~src ~dst +. extra in
    let jitter = Des.Rng.float rng (t.jitter_fraction *. Float.max base 1.0) in
    let sent_at = Des.Engine.now src_engine in
    let drop_p =
      match override with
      | Some { l_drop = Some p; _ } -> Float.max p t.drop_probability
      | Some _ | None -> t.drop_probability
    in
    let dropped_in_flight = Des.Rng.bool rng drop_p in
    let ctx = Des.Engine.current_context src_engine in
    if Des.Trace_context.is_none ctx then begin
      deliver t ~src ~dst ~sent_at ~dropped_in_flight payload (base +. jitter);
      (* The guard keeps the RNG stream identical for configurations that
         never enable duplication (byte-identical legacy runs). *)
      if t.duplicate_probability > 0.0 && Des.Rng.bool rng t.duplicate_probability
      then begin
        t.duplicated.(src_lane) <- t.duplicated.(src_lane) + 1;
        let jitter' = Des.Rng.float rng (t.jitter_fraction *. Float.max base 1.0) in
        deliver t ~src ~dst ~sent_at ~dropped_in_flight:false payload (base +. jitter')
      end
    end
    else begin
      (* The message crosses a causal edge: delivery (and everything the
         handler does) runs one hop further down the sender's lineage. All
         randomness is drawn above this branch, so traced and untraced
         runs see identical RNG streams. A duplicate reuses the edge — it
         is the same logical message. *)
      let child = Des.Trace_context.child ctx ~edge:(Des.Engine.fresh_id src_engine) in
      Des.Engine.with_context src_engine child (fun () ->
          deliver t ~src ~dst ~sent_at ~dropped_in_flight payload (base +. jitter);
          if
            t.duplicate_probability > 0.0 && Des.Rng.bool rng t.duplicate_probability
          then begin
            t.duplicated.(src_lane) <- t.duplicated.(src_lane) + 1;
            let jitter' =
              Des.Rng.float rng (t.jitter_fraction *. Float.max base 1.0)
            in
            deliver t ~src ~dst ~sent_at ~dropped_in_flight:false payload
              (base +. jitter')
          end)
    end
  end

let broadcast t ~src payload =
  for dst = 0 to node_count t - 1 do
    if dst <> src then send t ~src ~dst payload
  done

let crash t node =
  check_barrier t ~what:"crash";
  t.up.(node) <- false

let recover t node =
  check_barrier t ~what:"recover";
  t.up.(node) <- true

let is_up t node = t.up.(node)

let set_partition t groups =
  check_barrier t ~what:"set_partition";
  let assignment = Array.make (node_count t) (-1) in
  List.iteri
    (fun group_id members ->
      List.iter (fun node -> assignment.(node) <- group_id) members)
    groups;
  (* Unlisted nodes each get their own singleton group. *)
  let next = ref (List.length groups) in
  Array.iteri
    (fun node group ->
      if group = -1 then begin
        assignment.(node) <- !next;
        incr next
      end)
    assignment;
  t.partition <- Some assignment

let clear_partition t =
  check_barrier t ~what:"clear_partition";
  t.partition <- None

let set_drop_probability t p =
  check_probability ~what:"set_drop_probability" p;
  check_barrier t ~what:"set_drop_probability";
  t.drop_probability <- p

let drop_probability t = t.drop_probability

let set_duplicate_probability t p =
  check_probability ~what:"set_duplicate_probability" p;
  check_barrier t ~what:"set_duplicate_probability";
  t.duplicate_probability <- p

let set_link_drop t ~src ~dst p =
  (match p with
  | Some p -> check_probability ~what:"set_link_drop" p
  | None -> ());
  check_barrier t ~what:"set_link_drop";
  edit_link t ~src ~dst (fun l -> l.l_drop <- p)

let set_link_extra_latency t ~src ~dst extra_ms =
  if not (extra_ms >= 0.0) then
    invalid_arg "Network.set_link_extra_latency: extra latency must be >= 0";
  check_barrier t ~what:"set_link_extra_latency";
  edit_link t ~src ~dst (fun l -> l.l_extra_ms <- extra_ms)

let block_one_way t ~src ~dst =
  check_barrier t ~what:"block_one_way";
  edit_link t ~src ~dst (fun l -> l.l_blocked <- true)

let unblock_one_way t ~src ~dst =
  check_barrier t ~what:"unblock_one_way";
  edit_link t ~src ~dst (fun l -> l.l_blocked <- false)

let clear_link_overrides t =
  check_barrier t ~what:"clear_link_overrides";
  Hashtbl.reset t.links

let sum = Array.fold_left ( + ) 0

let stats_sent t = sum t.sent
let stats_delivered t = sum t.delivered
let stats_dropped t = sum t.dropped
let stats_duplicated t = sum t.duplicated
