(** Cloud regions and the inter-region latency model.

    The paper deploys on Google Cloud Platform in five regions (US-West1,
    Asia-East2, Europe-West2, Australia-Southeast1, SouthAmerica-East1), plus
    two further US regions for the MultiPaxSys placement (a Spanner-like
    system keeps a majority of replicas inside the US). Round-trip times are
    calibrated to published GCP inter-region measurements; they need only be
    accurate in {e ratio} for the evaluation's shape to hold. *)

type t =
  | Us_west1
  | Us_central1
  | Us_east1
  | Asia_east2
  | Europe_west2
  | Australia_southeast1
  | Southamerica_east1

val name : t -> string

val index : t -> int
(** Dense index of the region in {!all} (row/column order of the latency
    table) — the key for per-region lane lookups in sharded runs. *)

val all : t list

val default_five : t list
(** The five regions used by most experiments, in the paper's order. *)

val multipax_five : t list
(** Placement used for MultiPaxSys: three US regions plus Asia and Europe. *)

val rtt_ms : t -> t -> float
(** Symmetric inter-region round-trip time. Within a region the RTT models
    zone-local networking (~1 ms). *)

val one_way_ms : t -> t -> float
(** [rtt_ms a b /. 2.]. *)

val client_site_rtt_ms : float
(** RTT between a client/app-manager and a site in the same region. *)

val min_cross_one_way_ms : unit -> float
(** Smallest one-way latency between two {e distinct} regions, over the
    full table (not just a deployment's hosting set). This is the
    conservative lookahead of a region-sharded simulation: every
    cross-region message takes at least this long, so events closer than
    this to the global frontier cannot be affected by in-flight traffic
    from another region. *)

val lane_assignment : t array -> int array * int array * int
(** [lane_assignment regions] maps a deployment (site [i] hosted in
    [regions.(i)]) to simulation lanes:
    [(node_lane, region_lane, lanes)] where [node_lane.(i)] is site [i]'s
    lane, [region_lane.(index r)] is the lane handling region [r], and
    [lanes] is the number of distinct lanes. Lanes are numbered densely
    by first occurrence of each hosting region in [regions]; a region
    hosting no site (a foreign client's home) rides the lane of its
    nearest hosted region (ties to the lowest site index) — deterministic
    in [regions] alone. *)

val of_string : string -> t option
