(** Simulated geo-distributed message network.

    Nodes are dense integer ids, each placed in a {!Region.t}. [send]
    delivers a payload to the destination's registered handler after the
    inter-region one-way latency plus log-normal-ish jitter, unless the
    message is dropped (loss probability), a network partition separates the
    two nodes, or either endpoint is crashed.

    The model matches the paper's assumptions: asynchronous network, messages
    can be delayed, dropped or reordered; nodes fail by crashing (no
    Byzantine behaviour). Crash and partition injection are first-class so
    the failure experiments (Figs. 3c, 3d) are ordinary test scenarios. *)

type 'msg t

type 'msg envelope = {
  src : int;
  dst : int;
  sent_at : float;  (** virtual ms when [send] was called *)
  payload : 'msg;
}

val create :
  Des.Engine.t ->
  regions:Region.t array ->
  ?drop_probability:float ->
  ?jitter_fraction:float ->
  unit ->
  'msg t
(** [regions.(i)] places node [i]. [drop_probability] (default [0.]) applies
    independently per message. [jitter_fraction] (default [0.05]) scales a
    non-negative random additive delay relative to the base latency.

    Raises [Invalid_argument] if [drop_probability] is NaN or outside
    [[0, 1]], or if [jitter_fraction] is NaN or negative. *)

val create_sharded :
  Des.Shard.t ->
  node_lane:int array ->
  seed:int64 ->
  regions:Region.t array ->
  ?drop_probability:float ->
  ?jitter_fraction:float ->
  unit ->
  'msg t
(** Region-sharded variant: node [i] lives on shard lane [node_lane.(i)]
    (see {!Region.lane_assignment}); every delivery event is scheduled on
    the destination node's lane, crossing lanes over the shard's bounded
    channels. Jitter/drop randomness comes from one deterministic stream
    per lane (derived from [seed] under a reserved namespace), so results
    are independent of the domain count draining the windows. Shared-state
    mutations (crash, partitions, link overrides, probabilities) must then
    execute at a window barrier — via {!Des.Shard.schedule_global} — and
    raise [Invalid_argument] if attempted mid-window.

    Raises [Invalid_argument] on invalid probabilities or a [node_lane] /
    [regions] length mismatch. *)

val engine_of : _ t -> node:int -> Des.Engine.t
(** The engine that runs [node]'s events: the single engine of a
    {!create}-built network, the node's lane engine of a sharded one.
    Protocol code (sites) schedules its timers here. *)

val node_count : _ t -> int

val region_of : _ t -> int -> Region.t

val register : 'msg t -> node:int -> ('msg envelope -> unit) -> unit
(** Installs the delivery handler for [node]. Re-registering replaces the
    handler (used when a node recovers with a fresh protocol state). *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Fire-and-forget. Self-sends are delivered after a small local delay. *)

val broadcast : 'msg t -> src:int -> 'msg -> unit
(** [send] to every node except [src]. *)

val latency_ms : 'msg t -> src:int -> dst:int -> float
(** Base one-way latency between two nodes (no jitter). *)

val crash : _ t -> int -> unit
(** A crashed node neither sends nor receives; messages in flight to it are
    silently lost on arrival. *)

val recover : _ t -> int -> unit

val is_up : _ t -> int -> bool

val set_partition : _ t -> int list list -> unit
(** [set_partition t groups] drops every message whose endpoints fall in
    different groups. Nodes absent from every group form an implicit extra
    group. Replaces any previous partition. *)

val clear_partition : _ t -> unit

val set_drop_probability : _ t -> float -> unit
(** Change the per-message loss rate on the fly (tests heal a lossy
    network before asserting quiescent invariants). Raises
    [Invalid_argument] on NaN or out-of-[[0, 1]] values. *)

val drop_probability : _ t -> float
(** Current global per-message loss rate. *)

(** {2 Per-link fault injection}

    Chaos schedules need asymmetric faults the global knobs cannot express:
    one lossy or slow direction of one link, or a one-way cut where [a]
    hears [b] but not vice versa. Overrides are keyed by the directed pair
    [(src, dst)] and compose with the global settings. *)

val set_link_drop : _ t -> src:int -> dst:int -> float option -> unit
(** Override the loss rate on the directed link [src -> dst]; the effective
    rate is the max of the override and the global probability. [None]
    removes the override. Raises [Invalid_argument] on NaN or
    out-of-[[0, 1]] values. *)

val set_link_extra_latency : _ t -> src:int -> dst:int -> float -> unit
(** Add [extra_ms] of one-way latency on [src -> dst] (latency spike on one
    direction of one link). Jitter scales with the inflated base. Raises
    [Invalid_argument] on NaN or negative values. *)

val block_one_way : _ t -> src:int -> dst:int -> unit
(** Cut the directed link: nothing sent [src -> dst] is delivered while the
    block holds (evaluated at delivery time, like partitions), while
    [dst -> src] traffic is unaffected. *)

val unblock_one_way : _ t -> src:int -> dst:int -> unit

val clear_link_overrides : _ t -> unit
(** Drop every per-link override (heal-all before quiescent audits). *)

val set_duplicate_probability : _ t -> float -> unit
(** Probability that a sent message is delivered twice (the duplicate takes
    an independent jitter draw, so it may arrive before the original —
    exercising at-most-once application logic). Default [0.]; while it is
    exactly [0.] no extra randomness is consumed, keeping legacy runs
    byte-identical. Raises [Invalid_argument] on NaN or out-of-[[0, 1]]
    values. *)

val reachable : _ t -> int -> int -> bool
(** Both endpoints up and in the same partition group. *)

val link_open : _ t -> src:int -> dst:int -> bool
(** [reachable] and the directed link is not one-way blocked — the exact
    delivery-time predicate. *)

val stats_sent : _ t -> int
val stats_delivered : _ t -> int
val stats_dropped : _ t -> int

val stats_duplicated : _ t -> int
(** Number of messages that were queued for duplicate delivery. *)

(** {2 Tracing}

    Message-level observer for the observability layer. Like the engine's
    tracer, installing one cannot perturb the simulation: every random draw
    and delivery happens identically with or without it. [on_send] fires
    when a message leaves an up node; [on_deliver]/[on_drop] fire at the
    delivery instant ([sent_at] preserves the send time, so the pair bounds
    the hop). Messages from a crashed source are dropped before the tracer
    sees a send. *)

type tracer = {
  on_send : src:int -> dst:int -> now_ms:float -> unit;
  on_deliver : src:int -> dst:int -> sent_at:float -> now_ms:float -> unit;
  on_drop : src:int -> dst:int -> sent_at:float -> now_ms:float -> unit;
}

val set_tracer : _ t -> tracer option -> unit
(** Install or remove the observer; [None] (the default) costs one
    load-and-branch per send and per delivery. *)
