type t =
  | Us_west1
  | Us_central1
  | Us_east1
  | Asia_east2
  | Europe_west2
  | Australia_southeast1
  | Southamerica_east1

let name = function
  | Us_west1 -> "us-west1"
  | Us_central1 -> "us-central1"
  | Us_east1 -> "us-east1"
  | Asia_east2 -> "asia-east2"
  | Europe_west2 -> "europe-west2"
  | Australia_southeast1 -> "australia-southeast1"
  | Southamerica_east1 -> "southamerica-east1"

let all =
  [ Us_west1; Us_central1; Us_east1; Asia_east2; Europe_west2;
    Australia_southeast1; Southamerica_east1 ]

let default_five =
  [ Us_west1; Asia_east2; Europe_west2; Australia_southeast1; Southamerica_east1 ]

let multipax_five = [ Us_west1; Us_central1; Us_east1; Asia_east2; Europe_west2 ]

let index = function
  | Us_west1 -> 0
  | Us_central1 -> 1
  | Us_east1 -> 2
  | Asia_east2 -> 3
  | Europe_west2 -> 4
  | Australia_southeast1 -> 5
  | Southamerica_east1 -> 6

(* Round-trip times in milliseconds, calibrated to public GCP inter-region
   ping measurements (gcping-style medians, rounded). Row/column order
   follows [index]. *)
let rtt_table =
  [| (*              usw1   usc1   use1   ase2   euw2   ause1  sae1 *)
     (* us-west1 *) [| 1.0;  35.0;  60.0; 118.0; 130.0; 140.0; 170.0 |];
     (* us-cent1 *) [| 35.0;  1.0;  30.0; 140.0; 100.0; 165.0; 145.0 |];
     (* us-east1 *) [| 60.0; 30.0;   1.0; 170.0;  80.0; 190.0; 120.0 |];
     (* asia-e2  *) [| 118.0; 140.0; 170.0;  1.0; 190.0; 120.0; 300.0 |];
     (* eu-west2 *) [| 130.0; 100.0;  80.0; 190.0;  1.0; 250.0; 190.0 |];
     (* aus-se1  *) [| 140.0; 165.0; 190.0; 120.0; 250.0;  1.0; 290.0 |];
     (* sa-east1 *) [| 170.0; 145.0; 120.0; 300.0; 190.0; 290.0;  1.0 |]
  |]

let rtt_ms a b = rtt_table.(index a).(index b)

let one_way_ms a b = rtt_ms a b /. 2.0

let client_site_rtt_ms = 1.0

(* The conservative lookahead of a sharded run: the smallest one-way
   latency between two *distinct* regions, over the full table — not just
   the regions a given experiment hosts, so the bound also covers clients
   homed in non-hosting regions. Computed, not hardcoded: recalibrating
   [rtt_table] keeps sharding safe automatically. *)
let min_cross_one_way_ms () =
  let n = Array.length rtt_table in
  let best = ref infinity in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then best := Float.min !best (rtt_table.(a).(b) /. 2.0)
    done
  done;
  !best

let nearest_hosted_lane ~node_lane ~regions r =
  (* Deterministic: scan hosted nodes in order, strictly-closer wins, so
     latency ties resolve to the lowest node index. *)
  let best_lane = ref 0 and best_rtt = ref infinity in
  Array.iteri
    (fun node hosted ->
      let d = rtt_ms r hosted in
      if d < !best_rtt then begin
        best_rtt := d;
        best_lane := node_lane.(node)
      end)
    regions;
  !best_lane

let lane_assignment regions =
  let n_regions = List.length all in
  let node_lane = Array.make (Array.length regions) (-1) in
  let region_lane = Array.make n_regions (-1) in
  let next = ref 0 in
  Array.iteri
    (fun node r ->
      let ri = index r in
      if region_lane.(ri) < 0 then begin
        region_lane.(ri) <- !next;
        incr next
      end;
      node_lane.(node) <- region_lane.(ri))
    regions;
  let lanes = !next in
  (* Regions hosting no site (foreign-region clients live there) ride the
     lane of the nearest hosted region: their only traffic is cross-region
     messaging to/from sites, which stays above the lookahead bound, and
     client-local legs (sub-lookahead) never cross lanes this way. *)
  List.iter
    (fun r ->
      let ri = index r in
      if region_lane.(ri) < 0 then
        region_lane.(ri) <- nearest_hosted_lane ~node_lane ~regions r)
    all;
  (node_lane, region_lane, lanes)

let of_string s =
  let rec find = function
    | [] -> None
    | r :: rest -> if String.equal (name r) s then Some r else find rest
  in
  find all
