(* Parallel-in-time DES: one engine per lane (region), coordinated by a
   conservative lookahead window in the style of Chandy–Misra–Bryant.

   Invariant the whole design rests on: any event a lane schedules onto
   another lane lies at least [lookahead] virtual ms in the future. Then
   with [t_min] the earliest pending event across lanes, every event
   strictly below [horizon = t_min + lookahead] is already in its lane's
   queue — no in-flight cross message can land below it — so all lanes
   can drain their windows with no synchronization at all. Cross-lane
   messages produced during a window are buffered in single-writer
   channels and flushed at the barrier in a fixed (dst, src, append)
   order, so heap tie-break sequence numbers — and therefore the entire
   execution — are identical whether windows run on 1 or N domains.

   Barrier-aligned "global" events (fault injections: crashes,
   partitions, link edits) cap the horizon: the window runs strictly
   below their time, clocks advance to it, and the mutation executes
   alone between windows. Mid-window reads of that shared state (site
   liveness, partition groups) are therefore race-free and
   deterministic. *)

type channel = {
  mutable c_times : float array;
  mutable c_fns : (unit -> unit) array;
  mutable c_size : int;
}

let nop () = ()

let channel_create () = { c_times = [||]; c_fns = [||]; c_size = 0 }

let channel_push c ~time_ms f =
  if c.c_size = Array.length c.c_times then begin
    let capacity = max 16 (2 * Array.length c.c_times) in
    let times = Array.make capacity 0.0 in
    let fns = Array.make capacity nop in
    Array.blit c.c_times 0 times 0 c.c_size;
    Array.blit c.c_fns 0 fns 0 c.c_size;
    c.c_times <- times;
    c.c_fns <- fns
  end;
  c.c_times.(c.c_size) <- time_ms;
  c.c_fns.(c.c_size) <- f;
  c.c_size <- c.c_size + 1

type t = {
  engines : Engine.t array;
  lookahead : float;
  chans : channel array array; (* chans.(dst).(src): single writer = src lane *)
  globals : (unit -> unit) Pheap.t;
  workers : int; (* configured domains (1 = sequential windows) *)
  mutable seq_only : bool; (* forced by observability subscription *)
  mutable in_window : bool;
  mutable horizon : float; (* lower bound for cross sends in this window *)
  mutable current : int; (* lane executing in a sequential window, or -1 *)
  mutable on_barrier : unit -> unit;
      (* runs on the coordinating domain after every channel flush, while
         no window is draining — safe to touch any lane's state *)
}

let create ?(seed = 42L) ?(workers = 1) ~lanes ~lookahead_ms () =
  if lanes < 1 then invalid_arg "Shard.create: lanes must be >= 1";
  if not (lookahead_ms > 0.0 && Float.is_finite lookahead_ms) then
    invalid_arg "Shard.create: lookahead must be positive and finite";
  let engines =
    Array.init lanes (fun i ->
        let engine = Engine.create ~seed:(Rng.stream_seed seed i) () in
        Engine.set_id_namespace engine ~base:i ~stride:lanes;
        engine)
  in
  {
    engines;
    lookahead = lookahead_ms;
    chans = Array.init lanes (fun _ -> Array.init lanes (fun _ -> channel_create ()));
    globals = Pheap.create ();
    workers = max 1 workers;
    seq_only = false;
    in_window = false;
    horizon = neg_infinity;
    current = -1;
    on_barrier = (fun () -> ());
  }

let set_barrier_hook t f = t.on_barrier <- f

let lanes t = Array.length t.engines

let lookahead_ms t = t.lookahead

let engine t i = t.engines.(i)

let engines t = t.engines

let in_window t = t.in_window

let force_sequential t = t.seq_only <- true

let current_engine t = if t.current >= 0 then t.engines.(t.current) else t.engines.(0)

(* Barrier semantics: all lane clocks agree between windows; [now] is the
   maximum so it is also meaningful before the first run (0.0) and after
   the last (until_ms). *)
let now t = Array.fold_left (fun acc e -> Float.max acc (Engine.now e)) 0.0 t.engines

let schedule_cross t ~src ~dst ~time_ms f =
  if t.in_window then begin
    if time_ms < t.horizon then
      invalid_arg
        (Printf.sprintf
           "Shard.schedule_cross: delivery at %.3f below the lookahead horizon %.3f"
           time_ms t.horizon);
    channel_push t.chans.(dst).(src) ~time_ms f
  end
  else Engine.schedule_at t.engines.(dst) ~time_ms f

let schedule_global t ~time_ms f =
  if t.in_window then invalid_arg "Shard.schedule_global: called inside a window";
  Pheap.push t.globals ~priority:time_ms f

(* ------------------------------------------------------------------ *)
(* Window machinery                                                     *)

let next_local t =
  Array.fold_left (fun acc e -> Float.min acc (Engine.next_due e)) infinity t.engines

let next_global t = if Pheap.is_empty t.globals then infinity else Pheap.min_key t.globals

(* Flush order is fixed — (dst ascending, src ascending, append order) —
   so the sequence numbers every delivery gets in its destination heap
   are a pure function of the simulation, not of domain scheduling. *)
let flush t =
  let k = Array.length t.engines in
  for dst = 0 to k - 1 do
    let row = t.chans.(dst) in
    let engine = t.engines.(dst) in
    for src = 0 to k - 1 do
      let c = row.(src) in
      for i = 0 to c.c_size - 1 do
        Engine.schedule_at engine ~time_ms:c.c_times.(i) c.c_fns.(i);
        c.c_fns.(i) <- nop
      done;
      c.c_size <- 0
    done
  done

let drain_lane engine ~limit ~inclusive =
  if inclusive then Engine.run engine ~until_ms:limit else Engine.run_before engine ~limit

(* The worker fleet: persistent domains woken per window. Lanes are
   handed out through an atomic counter, so an idle domain steals the
   next un-drained lane; the caller participates too. The mutex
   hand-offs double as the memory barriers that publish channel buffers
   between lanes and the coordinator. *)
type fleet = {
  mu : Mutex.t;
  work : Condition.t;
  idle : Condition.t;
  next : int Atomic.t;
  mutable limit : float;
  mutable inclusive : bool;
  mutable generation : int;
  mutable pending : int;
  mutable stop : bool;
  mutable failure : exn option;
  mutable domains : unit Domain.t list;
}

let rec fleet_drain t fl =
  let i = Atomic.fetch_and_add fl.next 1 in
  if i < Array.length t.engines then begin
    drain_lane t.engines.(i) ~limit:fl.limit ~inclusive:fl.inclusive;
    fleet_drain t fl
  end

let fleet_note_failure fl exn =
  Mutex.lock fl.mu;
  if fl.failure = None then fl.failure <- Some exn;
  Mutex.unlock fl.mu

let rec fleet_worker t fl my_generation =
  Mutex.lock fl.mu;
  while (not fl.stop) && fl.generation = my_generation do
    Condition.wait fl.work fl.mu
  done;
  let stop = fl.stop in
  let generation = fl.generation in
  Mutex.unlock fl.mu;
  if not stop then begin
    (try fleet_drain t fl with exn -> fleet_note_failure fl exn);
    Mutex.lock fl.mu;
    fl.pending <- fl.pending - 1;
    if fl.pending = 0 then Condition.broadcast fl.idle;
    Mutex.unlock fl.mu;
    fleet_worker t fl generation
  end

let fleet_create t n_workers =
  let fl =
    {
      mu = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      next = Atomic.make 0;
      limit = 0.0;
      inclusive = false;
      generation = 0;
      pending = 0;
      stop = false;
      failure = None;
      domains = [];
    }
  in
  fl.domains <- List.init n_workers (fun _ -> Domain.spawn (fun () -> fleet_worker t fl 0));
  fl

let fleet_shutdown fl =
  Mutex.lock fl.mu;
  fl.stop <- true;
  Condition.broadcast fl.work;
  Mutex.unlock fl.mu;
  List.iter Domain.join fl.domains;
  fl.domains <- []

let exec_window_fleet t fl ~limit ~inclusive =
  t.in_window <- true;
  Mutex.lock fl.mu;
  Atomic.set fl.next 0;
  fl.limit <- limit;
  fl.inclusive <- inclusive;
  fl.pending <- List.length fl.domains;
  fl.generation <- fl.generation + 1;
  Condition.broadcast fl.work;
  Mutex.unlock fl.mu;
  (try fleet_drain t fl with exn -> fleet_note_failure fl exn);
  Mutex.lock fl.mu;
  while fl.pending > 0 do
    Condition.wait fl.idle fl.mu
  done;
  let failure = fl.failure in
  fl.failure <- None;
  Mutex.unlock fl.mu;
  t.in_window <- false;
  match failure with Some exn -> raise exn | None -> ()

let exec_window_seq t ~limit ~inclusive =
  t.in_window <- true;
  Fun.protect
    ~finally:(fun () ->
      t.current <- -1;
      t.in_window <- false)
    (fun () ->
      Array.iteri
        (fun i engine ->
          t.current <- i;
          drain_lane engine ~limit ~inclusive)
        t.engines)

let run t ~until_ms =
  let n_extra = if t.seq_only then 0 else min (t.workers - 1) (lanes t - 1) in
  let fl = if n_extra > 0 then Some (fleet_create t n_extra) else None in
  let exec ~limit ~inclusive =
    match fl with
    | Some fl -> exec_window_fleet t fl ~limit ~inclusive
    | None -> exec_window_seq t ~limit ~inclusive
  in
  Fun.protect
    ~finally:(fun () -> Option.iter fleet_shutdown fl)
    (fun () ->
      let rec loop () =
        let t_local = next_local t in
        let t_global = next_global t in
        if t_local > until_ms && t_global > until_ms then
          (* Done: events beyond the limit stay queued for a later run. *)
          Array.iter (fun e -> Engine.catch_up_to e ~time_ms:until_ms) t.engines
        else begin
          let cap = Float.min (t_local +. t.lookahead) t_global in
          if cap > until_ms then begin
            (* Closing window: every remaining event at or below the limit
               is within one lookahead of it and no global intervenes, so
               the lanes can finish inclusively; cross messages they emit
               land strictly beyond [until_ms] and stay queued. *)
            t.horizon <- cap;
            exec ~limit:until_ms ~inclusive:true;
            flush t;
            t.on_barrier ()
          end
          else if t_global <= cap then begin
            (* A barrier-aligned mutation: drain strictly below it, agree
               on the clock, run the globals alone, go again. Globals due
               at the same instant run in scheduling order. *)
            t.horizon <- t_global;
            exec ~limit:t_global ~inclusive:false;
            flush t;
            t.on_barrier ();
            Array.iter (fun e -> Engine.catch_up_to e ~time_ms:t_global) t.engines;
            Pheap.drain_to t.globals ~limit:t_global (fun _ f -> f ());
            loop ()
          end
          else begin
            (* Ordinary conservative window [*, t_local + lookahead). *)
            t.horizon <- cap;
            exec ~limit:cap ~inclusive:false;
            flush t;
            t.on_barrier ();
            loop ()
          end
        end
      in
      loop ())
