type t = { trace : int; parent : int; hop : int }

(* The inactive context is recognised by physical equality: the engine's
   hot path asks "is a trace active?" with one pointer compare, never a
   field read. Constructing another record with the same fields would not
   be [none]. *)
let none = { trace = 0; parent = 0; hop = 0 }

let is_none t = t == none

let root ~trace = { trace; parent = 0; hop = 0 }

let child t ~edge = { trace = t.trace; parent = edge; hop = t.hop + 1 }
