(** Discrete-event simulation engine.

    Virtual time is a [float] in {e milliseconds}. Events are closures
    scheduled at absolute or relative times and executed in non-decreasing
    time order; simultaneous events run in scheduling order. An event may
    schedule further events, so arbitrary protocols unfold from an initial
    seed event.

    Timers are cancellable events — the building block for protocol
    timeouts (leader-failure detection, retry loops). *)

type t

type timer
(** Handle to a scheduled, cancellable event. *)

val create : ?seed:int64 -> unit -> t
(** Fresh engine at time [0.0]. [seed] (default [42L]) initialises the root
    {!Rng.t} from which all simulation randomness derives. *)

val now : t -> float
(** Current virtual time in milliseconds. *)

val rng : t -> Rng.t
(** The engine's root generator. Subsystems should [Rng.split] it once at
    construction so their draws do not interleave. *)

val schedule : t -> delay_ms:float -> (unit -> unit) -> unit
(** [schedule t ~delay_ms f] runs [f] at [now t +. delay_ms]. A negative
    delay is clamped to [0.] (runs after currently pending events at the
    same instant). *)

val schedule_at : t -> time_ms:float -> (unit -> unit) -> unit
(** Absolute-time variant of {!schedule}. Times in the past are clamped to
    [now]. *)

val timer : ?label:string -> t -> delay_ms:float -> (unit -> unit) -> timer
(** Like {!schedule} but returns a handle for {!cancel}. A [label] makes
    the timer visible to an installed {!tracer} (fired/cancelled events
    attributed by name); unlabelled timers are never traced. *)

val cancel : timer -> unit
(** Cancelling an already-fired or cancelled timer is a no-op. *)

val timer_pending : timer -> bool
(** [true] while the timer is scheduled and has neither fired nor been
    cancelled. *)

val pending : t -> int
(** Number of events still queued. *)

val step : t -> bool
(** Execute the next event. [false] when the queue is empty. *)

val run : ?until_ms:float -> t -> unit
(** Drain the queue. With [until_ms], stop once the next event would fire
    strictly after that time; the clock is then advanced to [until_ms]. *)

val run_for : t -> float -> unit
(** [run_for t d] is [run t ~until_ms:(now t +. d)]. *)

(** {2 Windowed execution}

    The primitives {!Shard} builds conservative lookahead windows from.
    They are ordinary single-engine operations — nothing here knows about
    domains or lanes. *)

val next_due : t -> float
(** Time of the earliest pending event, or [infinity] when the queue is
    empty — a shard coordinator derives the global horizon from the
    minimum across lanes. *)

val run_before : t -> limit:float -> unit
(** Execute every event with timestamp {e strictly below} [limit], in
    order. Unlike {!run}, the clock is left at the last executed event
    (not forced to [limit]): the coordinator advances clocks explicitly
    at window barriers. Events at exactly [limit] stay queued. *)

val catch_up_to : t -> time_ms:float -> unit
(** Advance the clock to [time_ms] if it is behind (never moves it
    backwards). Called at window barriers so every lane agrees on the
    time before barrier-aligned events (fault injections) execute. *)

val set_id_namespace : t -> base:int -> stride:int -> unit
(** Make {!fresh_id} draw from the arithmetic sequence
    [base + stride, base + 2*stride, …]. Sharded runs give lane [i] the
    namespace [(i, lanes)] so id spaces never collide across lanes; the
    default is [(0, 1)] — the legacy 1, 2, … sequence. Raises
    [Invalid_argument] if [base < 0] or [stride < 1]. *)

(** {2 Tracing}

    A tracer observes the engine without perturbing it: callbacks fire at
    the same virtual times and in the same order whether or not one is
    installed, so enabling observability cannot change a run. The engine
    deliberately knows nothing about the observability layer — the record
    uses only primitive types and the wiring lives upstream. *)

type tracer = {
  on_timer_fired : label:string -> armed_ms:float -> now_ms:float -> unit;
      (** a labelled timer's callback is about to run *)
  on_timer_cancelled : label:string -> armed_ms:float -> now_ms:float -> unit;
      (** a labelled timer's slot was reached after cancellation *)
  after_step : now_ms:float -> pending:int -> unit;
      (** after every executed event, with the queue depth *)
}

val set_tracer : t -> tracer option -> unit
(** Install or remove the tracer. With [None] (the default) the only cost
    is one load-and-branch per event. *)

(** {2 Ambient trace context}

    The engine carries the {!Trace_context.t} of the event currently
    executing. {!schedule} (and therefore {!timer}) captures it: an event
    scheduled while a context is active runs under that same context, so
    lineage flows through arbitrary chains of timers and callbacks without
    any signature change. When the ambient context is {!Trace_context.none}
    — every untraced run — the capture is skipped entirely; the check is a
    single physical-equality branch and allocates nothing. *)

val current_context : t -> Trace_context.t
(** Context of the event being executed, or {!Trace_context.none}. *)

val with_context : t -> Trace_context.t -> (unit -> 'a) -> 'a
(** [with_context t ctx f] runs [f] with [ctx] ambient, restoring the
    previous context afterwards. Events scheduled inside inherit [ctx]. *)

val fresh_id : t -> int
(** Next id from the engine's deterministic counter (1, 2, …). Used for
    trace ids and causal edge ids; drawing one consumes no simulation
    randomness. *)
