type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* Mix function of SplitMix64: variant of MurmurHash3's 64-bit finaliser. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  (* A second mix decorrelates the child stream from the parent's. *)
  { state = mix64 seed }

(* Indexed stream derivation: a pure function of (seed, index), so lane
   [i] of a sharded engine gets the same stream no matter how many other
   lanes exist or in what order they are built. The [+ 1] keeps stream 0
   distinct from the root seed itself. *)
let stream_seed seed i =
  mix64 (Int64.add seed (Int64.mul (Int64.of_int (i + 1)) golden_gamma))

let stream seed i = create (stream_seed seed i)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod n

let float t x =
  (* 53 random bits scaled to [0, 1), then to [0, x). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  let unit = Int64.to_float bits /. 9007199254740992.0 in
  unit *. x

let bool t p = float t 1.0 < p

let gaussian t ~mean ~std =
  let rec non_zero () =
    let u = float t 1.0 in
    if u > 0.0 then u else non_zero ()
  in
  let u1 = non_zero () in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (std *. z)

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let rec non_zero () =
    let u = float t 1.0 in
    if u > 0.0 then u else non_zero ()
  in
  -.log (non_zero ()) /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
