(** Causal trace context.

    A context names the request a computation belongs to ([trace]), the
    causal edge that produced it ([parent] — an engine-issued edge id, 0
    at the root), and how many WAN hops lie between the root and here
    ([hop]). Contexts are immutable; propagation happens ambiently through
    {!Engine.with_context}, which every scheduled closure inherits.

    The layer is deliberately primitive — three [int]s, no dependency on
    the observability library — so the engine can thread it at zero cost
    and upstream layers give the ids meaning. *)

type t = private { trace : int; parent : int; hop : int }

val none : t
(** The inactive context. Recognised by {b physical} equality ([==]) so
    the engine's obs-off path is a single pointer compare; never rebuild
    it structurally. *)

val is_none : t -> bool

val root : trace:int -> t
(** A fresh lineage: hop 0, no parent edge. *)

val child : t -> edge:int -> t
(** The context on the far side of a causal edge (message delivery):
    same trace, [parent] set to the edge id, hop count incremented. *)
