(** Deterministic, splittable pseudo-random number generator.

    Every source of randomness in the simulator (network jitter, message
    drops, workload noise, ML weight initialisation) draws from an [Rng.t]
    seeded at experiment start, so whole experiments replay bit-for-bit.

    The implementation is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014):
    a 64-bit state advanced by a Weyl sequence and finalised with a strong
    mixer. [split] derives an independent stream, which lets subsystems own
    private generators without perturbing each other's sequences. *)

type t

val create : int64 -> t
(** [create seed] makes a generator from a 64-bit seed. Equal seeds yield
    equal streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] once and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val stream_seed : int64 -> int -> int64
(** [stream_seed seed i] is the seed of the [i]-th derived stream of
    [seed]: a pure function (no generator state involved), so a sharded
    engine can hand lane [i] the same stream regardless of how many lanes
    exist. Distinct indices yield decorrelated seeds; index [i] never
    collides with the root. *)

val stream : int64 -> int -> t
(** [stream seed i] is [create (stream_seed seed i)]. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t n] is uniform on [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform on [\[0, x)]. *)

val bool : t -> float -> bool
(** [bool t p] is a Bernoulli trial: [true] with probability [p]. *)

val gaussian : t -> mean:float -> std:float -> float
(** Normal deviate via Box–Muller. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (mean [1. /. rate]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)
