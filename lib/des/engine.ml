(* The queue holds bare closures: a plain [schedule] costs one heap push and
   nothing else. Timers wrap their callback in a closure that consults a
   small state record, so cancellation and the fired/pending distinction
   need no per-event bookkeeping on the hot path. *)

type tracer = {
  on_timer_fired : label:string -> armed_ms:float -> now_ms:float -> unit;
  on_timer_cancelled : label:string -> armed_ms:float -> now_ms:float -> unit;
  after_step : now_ms:float -> pending:int -> unit;
}

type t = {
  mutable clock : float;
  queue : (unit -> unit) Pheap.t;
  root_rng : Rng.t;
  mutable tracer : tracer option;
  mutable current : Trace_context.t;
  mutable next_id : int;
  mutable id_stride : int;
}

type timer_state = Pending | Fired | Cancelled

type timer = { mutable state : timer_state }

let create ?(seed = 42L) () =
  {
    clock = 0.0;
    queue = Pheap.create ();
    root_rng = Rng.create seed;
    tracer = None;
    current = Trace_context.none;
    next_id = 0;
    id_stride = 1;
  }

let set_tracer t tracer = t.tracer <- tracer

let now t = t.clock

let rng t = t.root_rng

let current_context t = t.current

let with_context t ctx f =
  let saved = t.current in
  t.current <- ctx;
  let r = f () in
  t.current <- saved;
  r

let fresh_id t =
  t.next_id <- t.next_id + t.id_stride;
  t.next_id

(* Lane [i] of a sharded run draws ids [base + k * stride] (stride = lane
   count), so the id spaces of the per-region engines are disjoint and
   each is deterministic on its own — trace/causal ids never collide
   across lanes. The default [base = 0, stride = 1] is the legacy 1, 2, …
   sequence. *)
let set_id_namespace t ~base ~stride =
  if base < 0 || stride < 1 then invalid_arg "Engine.set_id_namespace";
  t.next_id <- base;
  t.id_stride <- stride

(* The context check is a pointer compare against the unique [none]: when
   no trace is active the scheduling hot path pays one load and one branch
   and allocates nothing beyond the PR-1 shape. With a context active the
   closure is wrapped so the event inherits it ambiently — save/restore
   keeps nesting correct when a traced event fires inside [with_context]. *)
let schedule_at t ~time_ms f =
  let time_ms = if time_ms > t.clock then time_ms else t.clock in
  let f =
    if t.current == Trace_context.none then f
    else
      let ctx = t.current in
      fun () ->
        let saved = t.current in
        t.current <- ctx;
        f ();
        t.current <- saved
  in
  Pheap.push t.queue ~priority:time_ms f

let schedule t ~delay_ms f = schedule_at t ~time_ms:(t.clock +. Float.max 0.0 delay_ms) f

(* Unlabelled timers keep the lean PR-1 closure; labelled ones capture the
   arming time so a tracer can attribute fire/cancel events. Both shapes
   are allocation-equivalent when no tracer is installed. *)
let timer ?label t ~delay_ms f =
  let tm = { state = Pending } in
  (match label with
  | None ->
      schedule t ~delay_ms (fun () ->
          if tm.state = Pending then begin
            tm.state <- Fired;
            f ()
          end)
  | Some label ->
      let armed_ms = t.clock in
      schedule t ~delay_ms (fun () ->
          match tm.state with
          | Pending ->
              tm.state <- Fired;
              (match t.tracer with
              | Some tr -> tr.on_timer_fired ~label ~armed_ms ~now_ms:t.clock
              | None -> ());
              f ()
          | Cancelled -> (
              match t.tracer with
              | Some tr -> tr.on_timer_cancelled ~label ~armed_ms ~now_ms:t.clock
              | None -> ())
          | Fired -> ()));
  tm

let cancel tm = if tm.state = Pending then tm.state <- Cancelled

let timer_pending tm = tm.state = Pending

let pending t = Pheap.length t.queue

let step t =
  if Pheap.is_empty t.queue then false
  else begin
    let time = Pheap.min_key t.queue in
    let fire = Pheap.pop_unsafe t.queue in
    if time > t.clock then t.clock <- time;
    fire ();
    (match t.tracer with
    | Some tr -> tr.after_step ~now_ms:t.clock ~pending:(Pheap.length t.queue)
    | None -> ());
    true
  end

let run ?until_ms t =
  match until_ms with
  | None -> while step t do () done
  | Some limit ->
      (match t.tracer with
      | None ->
          (* Batched drain: one root probe per event instead of the
             is_empty/min_key pair, and no per-event tracer check. The
             execution order is identical to the step loop. *)
          Pheap.drain_to t.queue ~limit (fun time fire ->
              if time > t.clock then t.clock <- time;
              fire ())
      | Some _ ->
          while (not (Pheap.is_empty t.queue)) && Pheap.min_key t.queue <= limit do
            ignore (step t)
          done);
      if t.clock < limit then t.clock <- limit

let run_for t d = run t ~until_ms:(t.clock +. d)

(* ------------------------------------------------------------------ *)
(* Windowed execution (the sharded-engine drain primitives)             *)

let next_due t = if Pheap.is_empty t.queue then infinity else Pheap.min_key t.queue

let run_before t ~limit =
  match t.tracer with
  | None ->
      Pheap.drain_below t.queue ~limit (fun time fire ->
          if time > t.clock then t.clock <- time;
          fire ())
  | Some _ ->
      while (not (Pheap.is_empty t.queue)) && Pheap.min_key t.queue < limit do
        ignore (step t)
      done

let catch_up_to t ~time_ms = if time_ms > t.clock then t.clock <- time_ms
