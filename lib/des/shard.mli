(** Region-sharded parallel-in-time simulation.

    A shard owns one {!Engine.t} per {e lane} (in Samya, one lane per
    hosting region) and coordinates them with conservative lookahead in
    the style of Chandy–Misra–Bryant: with [t_min] the earliest pending
    event across lanes and [L] the lookahead, every event strictly below
    [t_min + L] can execute with no cross-lane synchronization, because
    the system guarantees that any event one lane schedules onto another
    lies at least [L] virtual ms ahead (in Samya, [L] is the minimum
    cross-region one-way latency).

    Determinism is by construction, not by luck: cross-lane messages
    emitted during a window are buffered in per-(src, dst) channels and
    flushed into the destination heaps at the window barrier in a fixed
    (dst, src, append) order — identical whether the windows themselves
    run on one domain or many. A run with [workers = n] is byte-identical
    to [workers = 1] for every [n].

    Mutations of state shared across lanes (fault injections) must go
    through {!schedule_global}; they execute alone between windows, at a
    barrier where every lane clock agrees. *)

type t

val create : ?seed:int64 -> ?workers:int -> lanes:int -> lookahead_ms:float -> unit -> t
(** [lanes] engines, lane [i] seeded with [Rng.stream_seed seed i] and id
    namespace [(i, lanes)] (see {!Engine.set_id_namespace}). [workers]
    (default 1) is the number of domains used to drain windows; it never
    affects results, only wall time. Raises [Invalid_argument] if
    [lanes < 1] or [lookahead_ms] is not positive and finite. *)

val lanes : t -> int

val lookahead_ms : t -> float

val engine : t -> int -> Engine.t
(** The lane's engine. Scheduling onto it directly is safe only from an
    event already executing on that same lane (or outside any window). *)

val engines : t -> Engine.t array

val now : t -> float
(** Barrier time: all lane clocks agree between windows. Mid-window (from
    inside an event) read the {e lane's own} engine clock instead. *)

val schedule_cross : t -> src:int -> dst:int -> time_ms:float -> (unit -> unit) -> unit
(** Schedule [f] at [time_ms] on lane [dst], from code executing on lane
    [src]. Inside a window the event is buffered in the [(src, dst)]
    channel and flushed at the barrier; outside (during setup or a global
    event) it goes straight into the destination heap. Raises
    [Invalid_argument] if called mid-window with [time_ms] below the
    window horizon — the conservative-lookahead safety contract. *)

val schedule_global : t -> time_ms:float -> (unit -> unit) -> unit
(** Schedule a barrier-aligned event: the window preceding [time_ms] runs
    strictly below it, every lane clock advances to it, then [f] executes
    alone — free to mutate state any lane reads (site liveness,
    partitions, link latency). Globals at the same instant run in
    scheduling order. Raises [Invalid_argument] mid-window. *)

val run : t -> until_ms:float -> unit
(** Advance the whole shard to [until_ms]: alternate conservative windows
    (drained by 1 or [workers] domains) with barrier-aligned globals.
    Events and globals beyond [until_ms] stay queued; every lane clock
    ends at [until_ms] exactly. *)

(** {2 Observability hooks}

    Tracing callbacks are not thread-safe and their interleaving across
    domains would be unordered, so a subscribed run forces windows onto
    the calling domain. Determinism guarantees the traced run is
    byte-identical to the untraced parallel one. *)

val force_sequential : t -> unit
(** Permanently pin window execution to the calling domain (used when an
    observability sink subscribes). Results are unchanged. *)

val current_engine : t -> Engine.t
(** During sequential window execution, the engine of the lane currently
    draining — the engine whose ambient {!Engine.current_context} is
    meaningful. Outside a window (or before any run) lane 0's engine.
    Only meaningful under {!force_sequential}. *)

val in_window : t -> bool
(** [true] while a window is draining. *)

val set_barrier_hook : t -> (unit -> unit) -> unit
(** Install a callback run on the coordinating domain after every
    channel flush, between windows (no lane is draining). Used by the
    flight recorder to drain per-lane rings; must not schedule events.
    Last installation wins. *)
