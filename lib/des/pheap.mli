(** Array-backed binary min-heap keyed by [(priority, sequence)].

    The event queue of the simulation engine. Ties on priority are broken by
    insertion order (the sequence number), which gives the engine FIFO
    semantics for simultaneous events — essential for deterministic replay.

    The representation is structure-of-arrays (keys in an unboxed
    [float array]), so the steady-state push/pop cycle of the engine's
    drain loop performs no allocation: use {!is_empty}, {!min_key} and
    {!pop_unsafe} on the hot path; {!pop}/{!peek} remain as the safe,
    option-returning API. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit
(** [push t ~priority v] inserts [v]; cost O(log n), no allocation unless
    the backing arrays must grow. *)

val min_key : 'a t -> float
(** Priority of the minimum entry. Undefined when the heap is empty (may
    raise [Invalid_argument]); guard with {!is_empty}. *)

val pop_unsafe : 'a t -> 'a
(** Removes and returns the minimum entry's value without allocating.
    Undefined when the heap is empty (may raise [Invalid_argument]);
    guard with {!is_empty}. Read {!min_key} first if the key is needed. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the entry with the smallest [(priority, sequence)]
    key, or [None] when empty. *)

val drain_below : 'a t -> limit:float -> (float -> 'a -> unit) -> unit
(** [drain_below t ~limit f] pops every entry with key strictly below
    [limit] in order, calling [f key value] on each. [f] may push back
    into the heap; entries it inserts below the limit drain in the same
    pass. Allocation-free (one root probe per event instead of the
    caller-side [is_empty]/[min_key] pair) — the batched window-drain
    path of the sharded engine. *)

val drain_to : 'a t -> limit:float -> (float -> 'a -> unit) -> unit
(** Inclusive variant of {!drain_below}: drains keys [<= limit]. *)

val peek : 'a t -> (float * 'a) option
(** Like {!pop} without removal. *)

val clear : 'a t -> unit
