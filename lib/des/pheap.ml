(* Structure-of-arrays binary min-heap. Keys live in a flat [float array]
   (unboxed), so neither push nor pop allocates once capacity exists; the
   sift loops insert into a moving hole instead of swapping, halving the
   writes of the classic swap-chain formulation. *)

type 'a t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { keys = [||]; seqs = [||]; values = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t value =
  let capacity = max 16 (2 * Array.length t.keys) in
  let keys = Array.make capacity 0.0 in
  let seqs = Array.make capacity 0 in
  let values = Array.make capacity value in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.values 0 values 0 t.size;
  t.keys <- keys;
  t.seqs <- seqs;
  t.values <- values

let push t ~priority value =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if t.size = Array.length t.keys then grow t value;
  let keys = t.keys and seqs = t.seqs and values = t.values in
  (* Bubble a hole up from the new leaf; parents slide down into it. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let placed = ref false in
  while (not !placed) && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pk = keys.(parent) in
    if priority < pk || (priority = pk && seq < seqs.(parent)) then begin
      keys.(!i) <- pk;
      seqs.(!i) <- seqs.(parent);
      values.(!i) <- values.(parent);
      i := parent
    end
    else placed := true
  done;
  keys.(!i) <- priority;
  seqs.(!i) <- seq;
  values.(!i) <- value

(* Re-insert the entry [(key, seq, value)] into the hole at the root:
   smaller children slide up into the hole until the entry fits. *)
let sift_down_into_root t key seq value =
  let keys = t.keys and seqs = t.seqs and values = t.values in
  let size = t.size in
  let i = ref 0 in
  let placed = ref false in
  while not !placed do
    let left = (2 * !i) + 1 in
    if left >= size then placed := true
    else begin
      let right = left + 1 in
      let child =
        if
          right < size
          && (keys.(right) < keys.(left)
             || (keys.(right) = keys.(left) && seqs.(right) < seqs.(left)))
        then right
        else left
      in
      let ck = keys.(child) in
      if ck < key || (ck = key && seqs.(child) < seq) then begin
        keys.(!i) <- ck;
        seqs.(!i) <- seqs.(child);
        values.(!i) <- values.(child);
        i := child
      end
      else placed := true
    end
  done;
  keys.(!i) <- key;
  seqs.(!i) <- seq;
  values.(!i) <- value

let min_key t = t.keys.(0)

let pop_unsafe t =
  let top = t.values.(0) in
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then sift_down_into_root t t.keys.(last) t.seqs.(last) t.values.(last);
  top

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) in
    Some (key, pop_unsafe t)
  end

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.values.(0))

let clear t =
  t.keys <- [||];
  t.seqs <- [||];
  t.values <- [||];
  t.size <- 0;
  t.next_seq <- 0
