(* Structure-of-arrays binary min-heap. Keys live in a flat [float array]
   (unboxed), so neither push nor pop allocates once capacity exists; the
   sift loops insert into a moving hole instead of swapping, halving the
   writes of the classic swap-chain formulation. The loops use unchecked
   array access: every index is bounded by [size], which never exceeds the
   capacity of the (equal-length) backing arrays. *)

type 'a t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { keys = [||]; seqs = [||]; values = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t value =
  let capacity = max 16 (2 * Array.length t.keys) in
  let keys = Array.make capacity 0.0 in
  let seqs = Array.make capacity 0 in
  let values = Array.make capacity value in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.values 0 values 0 t.size;
  t.keys <- keys;
  t.seqs <- seqs;
  t.values <- values

let push t ~priority value =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if t.size = Array.length t.keys then grow t value;
  let keys = t.keys and seqs = t.seqs and values = t.values in
  (* Bubble a hole up from the new leaf; parents slide down into it. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let placed = ref false in
  while (not !placed) && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pk = Array.unsafe_get keys parent in
    if priority < pk || (priority = pk && seq < Array.unsafe_get seqs parent) then begin
      Array.unsafe_set keys !i pk;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs parent);
      Array.unsafe_set values !i (Array.unsafe_get values parent);
      i := parent
    end
    else placed := true
  done;
  Array.unsafe_set keys !i priority;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set values !i value

(* Re-insert the entry [(key, seq, value)] into the hole at the root:
   smaller children slide up into the hole until the entry fits. *)
let sift_down_into_root t key seq value =
  let keys = t.keys and seqs = t.seqs and values = t.values in
  let size = t.size in
  let i = ref 0 in
  let placed = ref false in
  while not !placed do
    let left = (2 * !i) + 1 in
    if left >= size then placed := true
    else begin
      let right = left + 1 in
      let lk = Array.unsafe_get keys left in
      let child =
        if
          right < size
          && (let rk = Array.unsafe_get keys right in
              rk < lk
              || (rk = lk && Array.unsafe_get seqs right < Array.unsafe_get seqs left))
        then right
        else left
      in
      let ck = Array.unsafe_get keys child in
      if ck < key || (ck = key && Array.unsafe_get seqs child < seq) then begin
        Array.unsafe_set keys !i ck;
        Array.unsafe_set seqs !i (Array.unsafe_get seqs child);
        Array.unsafe_set values !i (Array.unsafe_get values child);
        i := child
      end
      else placed := true
    end
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set values !i value

let min_key t = t.keys.(0)

let pop_unsafe t =
  let top = t.values.(0) in
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then
    sift_down_into_root t
      (Array.unsafe_get t.keys last)
      (Array.unsafe_get t.seqs last)
      (Array.unsafe_get t.values last);
  top

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) in
    Some (key, pop_unsafe t)
  end

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.values.(0))

(* Batched drains: the per-event [is_empty]/[min_key] probing of a
   caller-side loop collapses into one bounds-checked root read per
   iteration. [f] may push back into the heap (events scheduling events);
   the loop re-reads the root after every call, so newly inserted entries
   below the limit are drained in the same pass. *)

let drain_below t ~limit f =
  let running = ref true in
  while !running do
    if t.size = 0 then running := false
    else begin
      let key = Array.unsafe_get t.keys 0 in
      if key < limit then f key (pop_unsafe t) else running := false
    end
  done

let drain_to t ~limit f =
  let running = ref true in
  while !running do
    if t.size = 0 then running := false
    else begin
      let key = Array.unsafe_get t.keys 0 in
      if key <= limit then f key (pop_unsafe t) else running := false
    end
  done

let clear t =
  t.keys <- [||];
  t.seqs <- [||];
  t.values <- [||];
  t.size <- 0;
  t.next_seq <- 0
