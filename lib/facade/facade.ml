type stats = {
  redistributions : int;
  borrows : int;
  borrow_tokens : int;
  mechanism_switches : int;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
}

type t = {
  name : string;
  engine : Des.Engine.t;
  now : unit -> float;
  sched_region : Geonet.Region.t -> Des.Engine.t;
  schedule_global : time_ms:float -> (unit -> unit) -> unit;
  run_until : float -> unit;
  engine_lanes : int;
  acquire :
    region:Geonet.Region.t ->
    amount:int ->
    reply:(Samya.Types.response -> unit) ->
    unit;
  release :
    region:Geonet.Region.t ->
    amount:int ->
    reply:(Samya.Types.response -> unit) ->
    unit;
  read : region:Geonet.Region.t -> reply:(Samya.Types.response -> unit) -> unit;
  submit :
    region:Geonet.Region.t ->
    Samya.Types.request ->
    reply:(Samya.Types.response -> unit) ->
    unit;
  crash_region : Geonet.Region.t -> unit;
  crash_site : int -> unit;
  recover_site : int -> unit;
  partition : int list list -> unit;
  heal : unit -> unit;
  stats : unit -> stats;
  subscribe : Obs.Sink.t -> unit;
  arm : Obs.Flight_recorder.attachment -> unit;
      (* always-on incident capture; a no-op on baselines, which have no
         breaker/controller/shed machinery to record *)
  invariant : maximum:int -> (unit, string) result;
}

let sites_in regions region =
  let out = ref [] in
  Array.iteri (fun i r -> if r = region then out := i :: !out) regions;
  !out

(* ------------------------------------------------------------------ *)
(* Observability wiring parts. Instruments are resolved once at
   subscription, so the per-event cost while tracing is a field update
   (metrics) or one list cons (spans).                                  *)

let engine_tracer (sink : Obs.Sink.t) =
  let m = sink.Obs.Sink.metrics in
  let events = Obs.Metrics.counter m "des.events" in
  let depth = Obs.Metrics.gauge m "des.queue.depth" in
  let fired = Obs.Metrics.counter m "des.timer.fired" in
  let cancelled = Obs.Metrics.counter m "des.timer.cancelled" in
  {
    Des.Engine.on_timer_fired =
      (fun ~label ~armed_ms ~now_ms ->
        (* A fired labelled timer is an expired timeout (protocol failure
           detectors cancel on progress): span it armed -> fired. *)
        Obs.Metrics.incr fired;
        Obs.Span.complete sink.Obs.Sink.spans ~cat:"timer" ~name:label ~ts:armed_ms
          ~dur:(now_ms -. armed_ms) ());
    on_timer_cancelled =
      (fun ~label:_ ~armed_ms:_ ~now_ms:_ -> Obs.Metrics.incr cancelled);
    after_step =
      (fun ~now_ms:_ ~pending ->
        Obs.Metrics.incr events;
        Obs.Metrics.set depth (float_of_int pending));
  }

let network_tracer ~context (sink : Obs.Sink.t) =
  let m = sink.Obs.Sink.metrics in
  let sent = Obs.Metrics.counter m "net.sent" in
  let delivered = Obs.Metrics.counter m "net.delivered" in
  let dropped = Obs.Metrics.counter m "net.dropped" in
  let hop_ms = Obs.Metrics.histogram m "net.hop_ms" in
  {
    Geonet.Network.on_send = (fun ~src:_ ~dst:_ ~now_ms:_ -> Obs.Metrics.incr sent);
    on_deliver =
      (fun ~src ~dst ~sent_at ~now_ms ->
        Obs.Metrics.incr delivered;
        Obs.Metrics.observe hop_ms (now_ms -. sent_at);
        Obs.Span.complete sink.Obs.Sink.spans ~cat:"net" ~tid:dst ~name:"net.hop"
          ~ts:sent_at ~dur:(now_ms -. sent_at)
          ~args:[ ("src", string_of_int src); ("dst", string_of_int dst) ]
          ();
        (* Delivery runs under the message's child context: its [parent]
           field is the edge id minted at send, which keys both the causal
           hop and the Perfetto flow arrow binding the two lanes. *)
        let ctx = context () in
        if not (Des.Trace_context.is_none ctx) then begin
          let edge = ctx.Des.Trace_context.parent in
          Obs.Causal.record sink.Obs.Sink.causal
            (Obs.Causal.Hop
               {
                 trace = ctx.Des.Trace_context.trace;
                 edge;
                 src;
                 dst;
                 t0 = sent_at;
                 t1 = now_ms;
               });
          Obs.Span.flow_start sink.Obs.Sink.spans ~cat:"net" ~tid:src ~ts:sent_at
            ~id:edge "net.flow";
          Obs.Span.flow_finish sink.Obs.Sink.spans ~cat:"net" ~tid:dst ~ts:now_ms
            ~id:edge "net.flow"
        end);
    on_drop =
      (fun ~src ~dst ~sent_at ~now_ms:_ ->
        Obs.Metrics.incr dropped;
        Obs.Span.instant sink.Obs.Sink.spans ~cat:"net" ~tid:dst
          ~args:[ ("src", string_of_int src); ("sent_at", Printf.sprintf "%.3f" sent_at) ]
          "net.drop");
  }

(* ------------------------------------------------------------------ *)
(* Avantan span observer: instance spans with role, rounds and outcome,
   reconstructed from the structured protocol events of PR 2.            *)

module Ballot = Consensus.Ballot

let avantan_observer ~now ~context (sink : Obs.Sink.t) =
  let m = sink.Obs.Sink.metrics in
  let sp = sink.Obs.Sink.spans in
  let elections = Obs.Metrics.counter m "avantan.elections" in
  let joined = Obs.Metrics.counter m "avantan.joined" in
  let decided = Obs.Metrics.counter m "avantan.decided" in
  let aborted = Obs.Metrics.counter m "avantan.aborted" in
  let recoveries = Obs.Metrics.counter m "avantan.recoveries" in
  let rounds_h = Obs.Metrics.histogram m "avantan.rounds" in
  (* One open span per (site, entity): a site participates in at most one
     instance at a time, and Decided/Instance_aborted always closes it. *)
  let open_spans : (int * string, Obs.Span.span) Hashtbl.t = Hashtbl.create 16 in
  (* Causal phase windows: each (site, entity) is in at most one protocol
     phase — election, accept, recovery — and the window is charged to the
     trace that was ambient when the phase opened (the request whose
     arrival triggered the instance). *)
  let open_phases : (int * string, string * float * int) Hashtbl.t =
    Hashtbl.create 16
  in
  let causal_trace () =
    let ctx = context () in
    if Des.Trace_context.is_none ctx then -1 else ctx.Des.Trace_context.trace
  in
  let close_phase ~site ~entity =
    match Hashtbl.find_opt open_phases (site, entity) with
    | None -> ()
    | Some (name, t0, trace) ->
        Hashtbl.remove open_phases (site, entity);
        if trace >= 0 then
          Obs.Causal.record sink.Obs.Sink.causal
            (Obs.Causal.Phase { trace; site; name; t0; t1 = now () })
  in
  let to_phase ~site ~entity name =
    match Hashtbl.find_opt open_phases (site, entity) with
    | Some (current, _, _) when String.equal current name -> ()
    | Some _ ->
        close_phase ~site ~entity;
        Hashtbl.replace open_phases (site, entity) (name, now (), causal_trace ())
    | None ->
        Hashtbl.replace open_phases (site, entity) (name, now (), causal_trace ())
  in
  let ensure_open ~site ~entity =
    let key = (site, entity) in
    if not (Hashtbl.mem open_spans key) then
      Hashtbl.replace open_spans key
        (Obs.Span.start sp ~cat:"avantan" ~tid:site "avantan.instance")
  in
  let close ~site ~entity args =
    let key = (site, entity) in
    match Hashtbl.find_opt open_spans key with
    | Some span ->
        Hashtbl.remove open_spans key;
        Obs.Span.finish sp ~args span
    | None ->
        (* Decision applied with no open instance here (e.g. delivered by
           anti-entropy): record it as an instant instead. *)
        Obs.Span.instant sp ~cat:"avantan" ~tid:site ~args "avantan.apply"
  in
  fun ~site ~entity (event : Samya.Avantan_core.event) ->
    match event with
    | Samya.Avantan_core.Election_started { ballot; round } ->
        Obs.Metrics.incr elections;
        ensure_open ~site ~entity;
        to_phase ~site ~entity "election";
        Obs.Span.instant sp ~cat:"avantan" ~tid:site
          ~args:
            [ ("ballot", Ballot.to_string ballot); ("round", string_of_int round) ]
          "election.started"
    | Samya.Avantan_core.Election_joined { ballot; leader } ->
        Obs.Metrics.incr joined;
        ensure_open ~site ~entity;
        to_phase ~site ~entity "election";
        Obs.Span.instant sp ~cat:"avantan" ~tid:site
          ~args:
            [ ("ballot", Ballot.to_string ballot); ("leader", string_of_int leader) ]
          "election.joined"
    | Samya.Avantan_core.Value_constructed { ballot; participants } ->
        to_phase ~site ~entity "accept";
        Obs.Span.instant sp ~cat:"avantan" ~tid:site
          ~args:
            [
              ("ballot", Ballot.to_string ballot);
              ("participants", string_of_int participants);
            ]
          "value.constructed"
    | Samya.Avantan_core.Value_accepted { ballot; leader } ->
        ensure_open ~site ~entity;
        to_phase ~site ~entity "accept";
        Obs.Span.instant sp ~cat:"avantan" ~tid:site
          ~args:
            [ ("ballot", Ballot.to_string ballot); ("leader", string_of_int leader) ]
          "value.accepted"
    | Samya.Avantan_core.Recovery_started { ballot } ->
        Obs.Metrics.incr recoveries;
        ensure_open ~site ~entity;
        to_phase ~site ~entity "recovery";
        Obs.Span.instant sp ~cat:"avantan" ~tid:site
          ~args:[ ("ballot", Ballot.to_string ballot) ]
          "recovery.started"
    | Samya.Avantan_core.Decided { origin; participants; led; rounds } ->
        Obs.Metrics.incr decided;
        Obs.Metrics.observe rounds_h (float_of_int rounds);
        close_phase ~site ~entity;
        close ~site ~entity
          [
            ("outcome", "decided");
            ("origin", Ballot.to_string origin);
            ("participants", string_of_int participants);
            ("led", string_of_bool led);
            ("rounds", string_of_int rounds);
          ]
    | Samya.Avantan_core.Instance_aborted { ballot; led; rounds } ->
        Obs.Metrics.incr aborted;
        Obs.Metrics.observe rounds_h (float_of_int rounds);
        close_phase ~site ~entity;
        close ~site ~entity
          [
            ("outcome", "aborted");
            ("ballot", Ballot.to_string ballot);
            ("led", string_of_bool led);
            ("rounds", string_of_int rounds);
          ]

(* ------------------------------------------------------------------ *)
(* The Samya adapter                                                    *)

type samya_hooks = {
  sh_obs : Obs.Sink.port;
  sh_user :
    (site:int -> entity:Samya.Types.entity -> Samya.Avantan_core.event -> unit)
    option;
  mutable sh_observer :
    (site:int -> entity:Samya.Types.entity -> Samya.Avantan_core.event -> unit)
    option;
}

let samya_hooks ?on_protocol_event () =
  { sh_obs = Obs.Sink.port (); sh_user = on_protocol_event; sh_observer = None }

let obs_port hooks = hooks.sh_obs

let protocol_event_hook hooks ~site ~entity event =
  (match hooks.sh_user with Some f -> f ~site ~entity event | None -> ());
  match hooks.sh_observer with Some f -> f ~site ~entity event | None -> ()

let of_samya_cluster ?(name = "Samya") ~hooks ~regions ~entity cluster =
  let engine = Samya.Cluster.engine cluster in
  let network = Samya.Cluster.network cluster in
  let submit ~region request ~reply =
    Samya.Cluster.submit cluster ~region request ~reply
  in
  (* Ambient-context/now getters for the observability wiring. A sharded
     run is forced sequential on subscribe, so "the executing engine" is
     well-defined: the lane currently draining its window. *)
  let current_engine =
    match Samya.Cluster.shard cluster with
    | None -> fun () -> engine
    | Some shard -> fun () -> Des.Shard.current_engine shard
  in
  let context () = Des.Engine.current_context (current_engine ()) in
  let obs_now () = Des.Engine.now (current_engine ()) in
  {
    name;
    engine;
    now = (fun () -> Samya.Cluster.now cluster);
    sched_region = (fun region -> Samya.Cluster.engine_of_region cluster region);
    schedule_global = (fun ~time_ms f -> Samya.Cluster.schedule_global cluster ~time_ms f);
    run_until = (fun until_ms -> Samya.Cluster.run_until cluster ~until_ms);
    engine_lanes = Samya.Cluster.lanes cluster;
    acquire =
      (fun ~region ~amount ~reply ->
        submit ~region (Samya.Types.Acquire { entity; amount; deadline_ms = infinity }) ~reply);
    release =
      (fun ~region ~amount ~reply ->
        submit ~region (Samya.Types.Release { entity; amount; deadline_ms = infinity }) ~reply);
    read = (fun ~region ~reply -> submit ~region (Samya.Types.Read { entity; deadline_ms = infinity }) ~reply);
    submit;
    crash_region =
      (fun region ->
        List.iter (Samya.Cluster.crash_site cluster) (sites_in regions region));
    crash_site = (fun i -> Samya.Cluster.crash_site cluster i);
    recover_site = (fun i -> Samya.Cluster.recover_site cluster i);
    partition = (fun groups -> Samya.Cluster.partition cluster groups);
    heal = (fun () -> Samya.Cluster.heal cluster);
    stats =
      (fun () ->
        (* The paper counts proactive and reactive triggers combined. *)
        let s = Samya.Cluster.aggregate_site_stats cluster in
        {
          redistributions =
            s.Samya.Site.proactive_triggers + s.Samya.Site.reactive_triggers;
          borrows = s.Samya.Site.borrows;
          borrow_tokens = s.Samya.Site.borrow_tokens;
          mechanism_switches = s.Samya.Site.mechanism_switches;
          messages_sent = Geonet.Network.stats_sent network;
          messages_delivered = Geonet.Network.stats_delivered network;
          messages_dropped = Geonet.Network.stats_dropped network;
        });
    subscribe =
      (fun sink ->
        Obs.Sink.attach hooks.sh_obs sink;
        (* Observability callbacks are not thread-safe: a sharded run
           drops to sequential windows (results are unchanged by
           construction — only wall time). Every lane engine gets the
           tracer so no event escapes observation. *)
        (match Samya.Cluster.shard cluster with
        | None -> Des.Engine.set_tracer engine (Some (engine_tracer sink))
        | Some shard ->
            Des.Shard.force_sequential shard;
            Array.iter
              (fun e -> Des.Engine.set_tracer e (Some (engine_tracer sink)))
              (Des.Shard.engines shard));
        Geonet.Network.set_tracer network (Some (network_tracer ~context sink));
        hooks.sh_observer <- Some (avantan_observer ~now:obs_now ~context sink);
        Array.iteri
          (fun i region ->
            Obs.Span.thread_name sink.Obs.Sink.spans ~tid:i
              (Printf.sprintf "site %d (%s)" i (Geonet.Region.name region)))
          regions);
    arm = (fun attachment -> Samya.Cluster.arm_flight cluster attachment);
    invariant =
      (fun ~maximum -> Samya.Cluster.check_invariant cluster ~entity ~maximum);
  }
