(** The unified system facade (the PR-4 API redesign).

    Every system under test — Samya (both Avantan variants), MultiPaxSys,
    Demarcation and the CockroachDB-like baseline — is driven through one
    first-class record: the client verbs ([acquire]/[release]/[read]),
    fault injection, a common [stats] surface, and [subscribe], which
    installs an observability sink across every layer of the system (DES
    timers, geonet hops, protocol events, request counters) in one call.
    Experiments, the chaos soak and the trace exporter consume this
    record only; nothing downstream pattern-matches on system names.

    The facade is entity-scoped: builders bind the benchmark entity at
    construction, so the verbs speak amounts and regions only. Since the
    multi-entity core the record also carries a generic [submit] verb
    whose request names its own entity — the path the gateway-fleet
    workloads use against a bulk-registered {!Samya.Cluster}.

    This module also hosts the generic observability wiring
    ({!engine_tracer}, {!network_tracer}) and the Samya adapter. Baseline
    adapters live in [Harness.Systems] (they need no protocol feed), built
    from the same parts. *)

type stats = {
  redistributions : int;
      (** system-specific "coordination events" count: redistribution
          triggers for Samya, borrows for Demarcation, 0 for the
          consensus-per-request baselines *)
  borrows : int;
      (** borrow-mechanism conversations finished (Samya's adaptive
          controller as borrower, or the Demarcation baseline) *)
  borrow_tokens : int;  (** tokens obtained through those borrows *)
  mechanism_switches : int;
      (** adaptive-controller mechanism switches (0 for every system
          without the controller) *)
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
}

type t = {
  name : string;
  engine : Des.Engine.t;
      (** the single engine of a legacy system; lane 0's engine of a
          region-sharded one (schedule client work via [sched_region]) *)
  now : unit -> float;
      (** virtual time; barrier time on a sharded system — stable at the
          points the harness reads it (setup, global events, end of run) *)
  sched_region : Geonet.Region.t -> Des.Engine.t;
      (** the engine that executes events homed in a region — where the
          driver schedules that region's client issue/reply events *)
  schedule_global : time_ms:float -> (unit -> unit) -> unit;
      (** barrier-aligned scheduling: the only safe slot for fault
          injection on a sharded system (plain [schedule_at] otherwise) *)
  run_until : float -> unit;
      (** advance the whole simulation (all lanes) to an absolute time *)
  engine_lanes : int;
      (** number of simulation lanes (1 = single-engine legacy path) *)
  acquire :
    region:Geonet.Region.t ->
    amount:int ->
    reply:(Samya.Types.response -> unit) ->
    unit;
  release :
    region:Geonet.Region.t ->
    amount:int ->
    reply:(Samya.Types.response -> unit) ->
    unit;
  read : region:Geonet.Region.t -> reply:(Samya.Types.response -> unit) -> unit;
  submit :
    region:Geonet.Region.t ->
    Samya.Types.request ->
    reply:(Samya.Types.response -> unit) ->
    unit;
      (** generic verb carrying a full request — the multi-entity path:
          the request names its own entity instead of the bound one *)
  crash_region : Geonet.Region.t -> unit;
  crash_site : int -> unit;
  recover_site : int -> unit;
  partition : int list list -> unit;
  heal : unit -> unit;
  stats : unit -> stats;
  subscribe : Obs.Sink.t -> unit;
      (** wire an observability sink through every layer of the system;
          call at most once, before driving load *)
  arm : Obs.Flight_recorder.attachment -> unit;
      (** arm the always-on incident layer (flight recorder + hot-key
          sketch). Unlike [subscribe] this keeps parallel windows — lane
          rings are single-writer. A no-op on baselines. *)
  invariant : maximum:int -> (unit, string) result;
}

val sites_in : Geonet.Region.t array -> Geonet.Region.t -> int list
(** Indices of the sites placed in [region] (for [crash_region]). *)

(** {2 Observability wiring parts} *)

val engine_tracer : Obs.Sink.t -> Des.Engine.tracer
(** Labelled-timer spans (armed → fired, i.e. timeouts that expired), the
    [des.events] counter and the [des.queue.depth] gauge. *)

val network_tracer :
  context:(unit -> Des.Trace_context.t) -> Obs.Sink.t -> Geonet.Network.tracer
(** Per-hop [net.hop] spans on the destination's lane, [net.*] counters
    and the [net.hop_ms] latency histogram. [context] reads the ambient
    trace context of the engine executing the delivery (on a sharded
    system, the current lane's engine). Deliveries that carry an ambient
    {!Des.Trace_context} additionally record a causal [Hop] and a
    Perfetto flow arrow ([s]/[f] pair keyed by the hop's edge id) from the
    sender's lane to the receiver's. *)

(** {2 The Samya adapter} *)

type samya_hooks
(** Pre-construction hooks for a Samya cluster: the late-bound
    observability port for {!Samya.Cluster.create}'s [?obs] and a
    protocol-event hook that forwards to both the caller's observer and
    (after [subscribe]) the span builder. Needed because the cluster's
    hooks are fixed at creation, before anyone decides to observe the
    run. *)

val samya_hooks :
  ?on_protocol_event:
    (site:int -> entity:Samya.Types.entity -> Samya.Avantan_core.event -> unit) ->
  unit ->
  samya_hooks

val obs_port : samya_hooks -> Obs.Sink.port

val protocol_event_hook :
  samya_hooks ->
  site:int ->
  entity:Samya.Types.entity ->
  Samya.Avantan_core.event ->
  unit
(** Pass as [Cluster.create ~on_protocol_event]. Calls the user hook
    first, then the subscribed observer (if any) — the observer never
    mutates protocol state, so ordering is cosmetic. *)

val of_samya_cluster :
  ?name:string ->
  hooks:samya_hooks ->
  regions:Geonet.Region.t array ->
  entity:Samya.Types.entity ->
  Samya.Cluster.t ->
  t
(** Wrap a cluster created with [~obs:(obs_port hooks)
    ~on_protocol_event:(protocol_event_hook hooks)]. [subscribe] attaches
    the sink to the port, installs engine and network tracers, starts the
    Avantan span observer (instance spans with ballot, rounds, role and
    outcome), and names the per-site trace lanes. *)
