open Cmdliner

(* The env fallbacks are resolved by hand rather than with [Arg.info ~env]:
   SAMYA_BENCH_QUICK=1 predates this module and cmdliner's boolean env
   parser only accepts true/false. *)

let quick =
  let flag =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Short durations (smoke mode; env SAMYA_BENCH_QUICK=1).")
  in
  Term.(
    const (fun explicit ->
        explicit || Sys.getenv_opt "SAMYA_BENCH_QUICK" = Some "1")
    $ flag)

let jobs =
  let opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for independent trials (env SAMYA_BENCH_JOBS; \
             default: hardware parallelism). Output is identical for any N.")
  in
  let resolve = function
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (Printf.sprintf "--jobs expects a positive integer, got %d" n)
    | None -> (
        match Sys.getenv_opt "SAMYA_BENCH_JOBS" with
        | None -> Ok (Harness.Pool.default_jobs ())
        | Some v -> (
            match int_of_string_opt v with
            | Some n when n >= 1 -> Ok n
            | Some _ | None ->
                Error
                  (Printf.sprintf
                     "SAMYA_BENCH_JOBS must be a positive integer, got %S" v)))
  in
  Term.term_result' Term.(const resolve $ opt)

let engine_jobs =
  let opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "engine-jobs" ] ~docv:"N"
          ~doc:
            "Region-sharded simulation: split the event loop into per-region \
             lanes driven by N worker domains (env SAMYA_ENGINE_JOBS; \
             default 0 = single-engine). Figure output is identical for any \
             N >= 1; wall time is what changes.")
  in
  let resolve = function
    | Some n when n >= 0 -> Ok n
    | Some n ->
        Error (Printf.sprintf "--engine-jobs expects a non-negative integer, got %d" n)
    | None -> (
        match Sys.getenv_opt "SAMYA_ENGINE_JOBS" with
        | None -> Ok 0
        | Some v -> (
            match int_of_string_opt v with
            | Some n when n >= 0 -> Ok n
            | Some _ | None ->
                Error
                  (Printf.sprintf
                     "SAMYA_ENGINE_JOBS must be a non-negative integer, got %S" v)))
  in
  Term.term_result' Term.(const resolve $ opt)

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"PATH"
        ~doc:"Also write the flat metrics JSON (samya-metrics/1) to $(docv).")

(* The trace-replay subcommands (trace / explain / slo) share their whole
   front matter: the EXPERIMENT positional, an optional output path, the
   run metadata stamped into exported documents, and the capture preamble
   (worker pool, lab context, the Exp_trace dispatch with its error
   rendering). Factored here so the three commands cannot drift. *)

let traceable_experiment =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"EXPERIMENT"
        ~doc:
          (Printf.sprintf "Traceable experiment: %s."
             (String.concat ", " Harness.Exp_trace.experiments)))

let out_path ?(flags = [ "out" ]) doc =
  Arg.(value & opt (some string) None & info flags ~docv:"PATH" ~doc)

let run_meta ~experiment ~quick =
  [
    ("experiment", experiment);
    ("quick", string_of_bool quick);
    ("seed", Int64.to_string Harness.Exp_common.seed);
  ]

let with_captures ?banner ~experiment ~quick ~jobs f =
  Harness.Pool.set_jobs jobs;
  Format.eprintf "jobs: %d@." jobs;
  let ctx = Harness.Lab.create () in
  match Harness.Exp_trace.run ctx ~quick ~experiment with
  | Error message ->
      Format.eprintf "error: %s@." message;
      2
  | Ok captures ->
      Option.iter
        (fun command ->
          Format.printf "== %s: %s (%s horizon, seed %Ld) ==@." command
            experiment
            (if quick then "quick" else "full")
            Harness.Exp_common.seed)
        banner;
      f captures

let write_file ~path contents =
  let channel = open_out path in
  output_string channel contents;
  close_out channel

(* One spelling for "wrote an artifact": every exporting subcommand
   (trace/explain/slo/report) writes the file and confirms on stderr, so
   stdout stays grep-clean for the summaries. *)
let emit ~what ~path contents =
  write_file ~path contents;
  Format.eprintf "%s: %s@." what path
