val cmd : int Cmdliner.Cmd.t
(** [samya_cli report EXPERIMENT [--format html|md] [--out PATH]]: the
    self-contained run report (outcome, throughput, SLO verdict,
    mechanism attribution, hot keys, watchdog incidents and the first
    black-box bundle) for every system of a traceable experiment. *)
