(** The benchmark runner as a Cmdliner command: experiment sweep (domain
    pool, byte-identical stdout at any [--jobs]), bechamel micro
    benchmarks (time and minor allocation), [--json] results file and
    [--metrics-out] metrics JSON. [bench/main.exe] evaluates {!cmd} as its
    whole program; [samya_cli bench] mounts it as a subcommand. *)

val cmd : int Cmdliner.Cmd.t
