(** [samya_cli trace EXPERIMENT]: trace capture + export with built-in
    schema validation of the emitted document. *)

val cmd : int Cmdliner.Cmd.t
