(** Argument terms shared by every subcommand of [samya_cli] and the bench
    runner, so both front ends parse [--quick]/[--jobs] (and their
    SAMYA_BENCH_* environment fallbacks) identically. *)

val quick : bool Cmdliner.Term.t
(** [--quick], or the env fallback SAMYA_BENCH_QUICK=1. *)

val jobs : int Cmdliner.Term.t
(** [--jobs N], the env fallback SAMYA_BENCH_JOBS, or the hardware
    parallelism. Always >= 1. *)

val engine_jobs : int Cmdliner.Term.t
(** [--engine-jobs N] or the env fallback SAMYA_ENGINE_JOBS; 0 (the
    default) keeps the single-engine simulation, N >= 1 region-shards it
    across N worker domains. Always >= 0. *)

val metrics_out : string option Cmdliner.Term.t
(** [--metrics-out PATH]. *)

val write_file : path:string -> string -> unit
