(** Argument terms shared by every subcommand of [samya_cli] and the bench
    runner, so both front ends parse [--quick]/[--jobs] (and their
    SAMYA_BENCH_* environment fallbacks) identically. *)

val quick : bool Cmdliner.Term.t
(** [--quick], or the env fallback SAMYA_BENCH_QUICK=1. *)

val jobs : int Cmdliner.Term.t
(** [--jobs N], the env fallback SAMYA_BENCH_JOBS, or the hardware
    parallelism. Always >= 1. *)

val engine_jobs : int Cmdliner.Term.t
(** [--engine-jobs N] or the env fallback SAMYA_ENGINE_JOBS; 0 (the
    default) keeps the single-engine simulation, N >= 1 region-shards it
    across N worker domains. Always >= 0. *)

val metrics_out : string option Cmdliner.Term.t
(** [--metrics-out PATH]. *)

val traceable_experiment : string Cmdliner.Term.t
(** The EXPERIMENT positional shared by [trace]/[explain]/[slo]: one of
    {!Harness.Exp_trace.experiments}. *)

val out_path : ?flags:string list -> string -> string option Cmdliner.Term.t
(** An optional output-path option ([--out] unless [flags] overrides)
    with the given doc string. *)

val run_meta : experiment:string -> quick:bool -> (string * string) list
(** The metadata stamped into exported documents (experiment, horizon,
    seed) — identical across the exporting subcommands. *)

val with_captures :
  ?banner:string ->
  experiment:string ->
  quick:bool ->
  jobs:int ->
  (Harness.Exp_trace.capture list -> int) ->
  int
(** The trace-replay preamble shared by [trace]/[explain]/[slo]: set the
    worker pool, build the lab context, run {!Harness.Exp_trace.run} and
    hand the captures to the continuation (printing the [== banner: … ==]
    header first when [banner] is given). Renders unknown-experiment
    errors and returns exit code 2 for them. *)

val write_file : path:string -> string -> unit

val emit : what:string -> path:string -> string -> unit
(** [write_file] plus the one-line "[what]: [path]" confirmation on
    stderr — the shared artifact-export epilogue of
    [trace]/[explain]/[slo]/[report]. *)
