(* `samya_cli slo EXPERIMENT` — online SLO monitoring: re-runs the
   experiment's systems with the driver feeding per-window latency
   sketches and abort-rate counters, then reports each objective's
   violation windows. `--out` writes the samya-slo/1 document (the CI
   artifact). A violated objective fails the command (exit 1) so CI
   pipelines gate on it by default; `--no-fail` keeps the report
   advisory. *)

open Cmdliner

let run experiment quick jobs out no_fail =
  Args.with_captures ~banner:"slo" ~experiment ~quick ~jobs (fun captures ->
      Harness.Exp_trace.slo_summary Format.std_formatter captures;
      Option.iter
        (fun path ->
          Args.emit ~what:"slo report" ~path
            (Harness.Exp_trace.slo_json
               ~meta:(Args.run_meta ~experiment ~quick)
               captures))
        out;
      let unhealthy =
        List.filter
          (fun c ->
            not (Obs.Slo.healthy (Obs.Slo.report c.Harness.Exp_trace.slo)))
          captures
      in
      if unhealthy <> [] then begin
        Format.eprintf "slo: %d system(s) in violation: %s@."
          (List.length unhealthy)
          (String.concat ", "
             (List.map (fun c -> c.Harness.Exp_trace.label) unhealthy));
        if no_fail then 0 else 1
      end
      else 0)

let cmd =
  let out = Args.out_path "Also write the samya-slo/1 JSON report to $(docv)." in
  let no_fail =
    Arg.(
      value & flag
      & info [ "no-fail" ]
          ~doc:
            "Exit zero even when an objective is violated (the report is \
             advisory; without this flag any breach exits 1).")
  in
  Cmd.v
    (Cmd.info "slo"
       ~doc:
         "Re-run an experiment with online SLO monitoring (windowed \
          p50/p95/p99 latency quantile sketches plus abort rate) and \
          report violation windows per system. Exits non-zero on any \
          violated objective unless $(b,--no-fail) is given.")
    Term.(
      const run $ Args.traceable_experiment $ Args.quick $ Args.jobs $ out
      $ no_fail)
