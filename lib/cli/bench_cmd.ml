(* The benchmark runner: regenerates every table and figure of the paper's
   evaluation plus bechamel micro-benchmarks of the core data-path
   operations. Shared by `bench/main.exe` (where it is the whole program)
   and `samya_cli bench`. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Micro benchmarks (bechamel) *)

let micro_benchmarks () =
  let open Bechamel in
  let rng = Des.Rng.create 99L in
  let entries =
    List.init 16 (fun site ->
        {
          Samya.Reallocation.site;
          tokens_left = Des.Rng.int rng 2_000;
          tokens_wanted = Des.Rng.int rng 500;
        })
  in
  let realloc =
    Test.make ~name:"reallocation.redistribute(16 sites)"
      (Staged.stage (fun () -> ignore (Samya.Reallocation.redistribute entries)))
  in
  let heap =
    Test.make ~name:"pheap.push+pop(1k)"
      (Staged.stage (fun () ->
           let h = Des.Pheap.create () in
           for i = 0 to 999 do
             Des.Pheap.push h ~priority:(float_of_int ((i * 7) mod 997)) i
           done;
           while Des.Pheap.pop h <> None do
             ()
           done))
  in
  (* The batched drain the sharded engine windows run on: same workload as
     push+pop, emptied in one allocation-free sweep. *)
  let heap_drain =
    Test.make ~name:"pheap.push+drain_to(1k)"
      (Staged.stage (fun () ->
           let h = Des.Pheap.create () in
           for i = 0 to 999 do
             Des.Pheap.push h ~priority:(float_of_int ((i * 7) mod 997)) i
           done;
           Des.Pheap.drain_to h ~limit:1_000.0 (fun _ _ -> ())))
  in
  let a = Ml.Matrix.random (Des.Rng.create 3L) 64 64 ~scale:1.0 in
  let b = Ml.Matrix.random (Des.Rng.create 4L) 64 64 ~scale:1.0 in
  let matmul =
    Test.make ~name:"matrix.matmul(64x64)"
      (Staged.stage (fun () -> ignore (Ml.Matrix.matmul a b)))
  in
  let series = Array.init 400 (fun i -> 50.0 +. (40.0 *. sin (float_of_int i /. 9.0))) in
  let model =
    Ml.Lstm.train
      ~config:{ Ml.Lstm.default_config with epochs = 2; hidden = 8; window = 12 }
      series
  in
  let lstm =
    Test.make ~name:"lstm.predict_next(w=12,h=8)"
      (Staged.stage (fun () -> ignore (Ml.Lstm.predict_next model series)))
  in
  (* The sharded entity arena at gateway-fleet scale: a million registered
     keys, a Zipfian-shaped access mix of hot head and cold tail. Lookups
     and updates must stay flat in the fleet size (hash into a shard) and
     iteration must stay linear — these are the operations every request
     and every batch-scope freeze pays. The ~100 MB arena is allocated per
     test and compacted away afterwards (make_with_resource): kept resident
     it inflates every later allocating benchmark's numbers, since each
     minor collection then drags a major-heap slice over the arena. *)
  let fleet = 1_000_000 in
  let fleet_name = Printf.sprintf "key%07d" in
  let allocate_arena () =
    let map : unit Samya.Entity_map.t =
      Samya.Entity_map.create ~shards:256 ~capacity:fleet ()
    in
    for r = 0 to fleet - 1 do
      ignore (Samya.Entity_map.register map ~entity:(fleet_name r) ~tokens:10)
    done;
    (* 512 hot-head keys and 512 spread across the cold tail. *)
    let mix =
      Array.init 1_024 (fun i ->
          fleet_name (if i < 512 then i else (i - 512) * (fleet / 512)))
    in
    (map, mix)
  in
  let free_arena _ = Gc.compact () in
  let entity_find =
    Test.make_with_resource ~name:"entity_map.find(1M keys,hot/cold mix)"
      Test.uniq ~allocate:allocate_arena ~free:free_arena
      (Staged.stage (fun (arena, mix) ->
           Array.iter (fun key -> ignore (Samya.Entity_map.find arena key)) mix))
  in
  let entity_update =
    Test.make_with_resource ~name:"entity_map.update(1M keys,hot/cold mix)"
      Test.uniq ~allocate:allocate_arena ~free:free_arena
      (Staged.stage (fun (arena, mix) ->
           Array.iter
             (fun key ->
               match Samya.Entity_map.find arena key with
               | Some core ->
                   core.Samya.Entity_map.tokens_left <-
                     core.Samya.Entity_map.tokens_left lxor 1
               | None -> assert false)
             mix))
  in
  let entity_iterate =
    Test.make_with_resource ~name:"entity_map.iterate(1M keys)" Test.uniq
      ~allocate:allocate_arena ~free:free_arena
      (Staged.stage (fun (arena, _mix) ->
           let alive = ref 0 in
           Samya.Entity_map.iter
             (fun core -> if core.Samya.Entity_map.tokens_left > 0 then incr alive)
             arena;
           ignore !alive))
  in
  (* Instrumentation-off drains: the observability layer must not put
     allocation or measurable time on the DES hot path when no sink is
     subscribed (the PR-1 Pheap optimisation budget, ~160 µs/run). *)
  let drain ~label =
    let engine = Des.Engine.create () in
    fun () ->
      for i = 0 to 999 do
        let delay_ms = float_of_int ((i * 7) mod 997) in
        match label with
        | None -> ignore (Des.Engine.timer engine ~delay_ms (fun () -> ()))
        | Some label ->
            ignore (Des.Engine.timer ~label engine ~delay_ms (fun () -> ()))
      done;
      Des.Engine.run_for engine 1_000.0
  in
  let engine_plain =
    Test.make ~name:"engine.timer-drain(1k,untraced)"
      (Staged.stage (drain ~label:None))
  in
  let engine_labelled =
    Test.make ~name:"engine.timer-drain(1k,labelled,no sink)"
      (Staged.stage (drain ~label:(Some "bench.timer")))
  in
  let grouped =
    Test.make_grouped ~name:"core"
      [
        realloc;
        heap;
        heap_drain;
        matmul;
        lstm;
        entity_find;
        entity_update;
        entity_iterate;
        engine_plain;
        engine_labelled;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instances =
    Toolkit.Instance.[ monotonic_clock; minor_allocated ]
  in
  let raw = Benchmark.all cfg instances grouped in
  let time_by = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let alloc_by = Analyze.all ols Toolkit.Instance.minor_allocated raw in
  Format.printf "@.== micro: bechamel benchmarks of core operations ==@.";
  let estimate table name =
    match Hashtbl.find_opt table name with
    | Some result -> (
        match Analyze.OLS.estimates result with
        | Some [ v ] -> Some v
        | Some _ | None -> None)
    | None -> None
  in
  let measured = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ time_ns ] ->
          let alloc = estimate alloc_by name in
          measured := (name, time_ns, alloc) :: !measured;
          Format.printf "  %-42s %12.1f ns/run%s@." name time_ns
            (match alloc with
            | Some words -> Printf.sprintf "  %10.1f minor w/run" words
            | None -> "")
      | Some _ | None -> ())
    time_by;
  Format.printf "@.";
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !measured

(* ------------------------------------------------------------------ *)
(* Machine-readable results (BENCH_*.json) *)

let json_escape s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let write_json ~path ~quick ~jobs ~engine_jobs ~experiments ~micro ~total_wall_s =
  let out = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string out) fmt in
  add "{\n";
  add "  \"schema\": \"samya-bench/1\",\n";
  add "  \"generated_at_unix\": %.0f,\n" (Unix.gettimeofday ());
  add "  \"quick\": %b,\n" quick;
  add "  \"jobs\": %d,\n" jobs;
  add "  \"engine_jobs\": %d,\n" engine_jobs;
  add "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ());
  add "  \"seed\": %Ld,\n" Harness.Exp_common.seed;
  add "  \"experiments\": [";
  List.iteri
    (fun i (id, seconds) ->
      add "%s\n    {\"id\": \"%s\", \"wall_s\": %.3f}"
        (if i = 0 then "" else ",")
        (json_escape id) seconds)
    experiments;
  add "%s],\n" (if experiments = [] then "" else "\n  ");
  add "  \"micro\": [";
  List.iteri
    (fun i (name, ns, alloc) ->
      add "%s\n    {\"name\": \"%s\", \"ns_per_run\": %.1f%s}"
        (if i = 0 then "" else ",")
        (json_escape name) ns
        (match alloc with
        | Some words -> Printf.sprintf ", \"minor_words_per_run\": %.1f" words
        | None -> ""))
    micro;
  add "%s],\n" (if micro = [] then "" else "\n  ");
  add "  \"total_wall_s\": %.3f\n" total_wall_s;
  add "}\n";
  Args.write_file ~path (Buffer.contents out)

(* The same results through the observability exporter: wall times and
   micro measurements as one metrics registry. *)
let write_metrics ~path ~quick ~jobs ~engine_jobs ~experiments ~micro ~total_wall_s =
  let m = Obs.Metrics.create () in
  let wall_h = Obs.Metrics.histogram m "bench.wall_s" in
  List.iter
    (fun (id, seconds) ->
      Obs.Metrics.set (Obs.Metrics.gauge m ("bench.wall_s/" ^ id)) seconds;
      Obs.Metrics.observe wall_h seconds)
    experiments;
  List.iter
    (fun (name, ns, alloc) ->
      Obs.Metrics.set (Obs.Metrics.gauge m ("micro.ns_per_run/" ^ name)) ns;
      match alloc with
      | Some words ->
          Obs.Metrics.set
            (Obs.Metrics.gauge m ("micro.minor_words_per_run/" ^ name))
            words
      | None -> ())
    micro;
  Obs.Metrics.set (Obs.Metrics.gauge m "bench.total_wall_s") total_wall_s;
  let buf = Buffer.create 4096 in
  Obs.Export.metrics_json buf
    ~meta:
      [
        ("tool", "bench");
        ("quick", string_of_bool quick);
        ("jobs", string_of_int jobs);
        ("engine_jobs", string_of_int engine_jobs);
        ("host_cores", string_of_int (Domain.recommended_domain_count ()));
        ("seed", Int64.to_string Harness.Exp_common.seed);
      ]
    [ ("bench", m) ];
  Args.write_file ~path (Buffer.contents buf)

(* ------------------------------------------------------------------ *)

let run quick jobs engine_jobs json metrics_out ids =
  let run_micro = ids = [] || List.mem "micro" ids in
  let experiment_ids =
    if ids = [] then Harness.Registry.ids () |> List.filter (fun id -> id <> "fig3b")
    else List.filter (fun id -> id <> "micro") ids
  in
  match Harness.Registry.validate experiment_ids with
  | Error message ->
      Format.eprintf "error: %s@." message;
      2
  | Ok experiments -> (
      (* Fail before the sweep, not after it, if an output target is
         unwritable. *)
      let probe = function
        | None -> Ok ()
        | Some path -> (
            match open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path with
            | channel ->
                close_out channel;
                Ok ()
            | exception Sys_error reason -> Error reason)
      in
      match (probe json, probe metrics_out) with
      | Error reason, _ | _, Error reason ->
          Format.eprintf "error: cannot write output file: %s@." reason;
          2
      | Ok (), Ok () ->
          Harness.Pool.set_jobs jobs;
          Harness.Pool.set_engine_jobs engine_jobs;
          (* Runner metadata goes to stderr: stdout is byte-identical at
             any --jobs or --engine-jobs level, so two runs can be diffed
             directly. *)
          Format.eprintf "jobs: %d, engine-jobs: %d@." jobs engine_jobs;
          Format.printf
            "Samya reproduction benchmarks (%s durations; seed fixed, fully \
             deterministic)@."
            (if quick then "quick" else "paper-scale");
          let started = Unix.gettimeofday () in
          let ctx = Harness.Lab.create () in
          let rendered =
            Harness.Registry.run_many ~time:Unix.gettimeofday ctx ~quick experiments
          in
          List.iter
            (fun (r : Harness.Registry.rendered) -> print_string r.output)
            rendered;
          let micro = if run_micro then micro_benchmarks () else [] in
          let total_wall_s = Unix.gettimeofday () -. started in
          let timings =
            List.map
              (fun (r : Harness.Registry.rendered) ->
                (r.experiment.Harness.Registry.id, r.seconds))
              rendered
          in
          (match json with
          | Some path ->
              write_json ~path ~quick ~jobs ~engine_jobs ~experiments:timings
                ~micro ~total_wall_s;
              Format.eprintf "wrote %s@." path
          | None -> ());
          (match metrics_out with
          | Some path ->
              write_metrics ~path ~quick ~jobs ~engine_jobs ~experiments:timings
                ~micro ~total_wall_s;
              Format.eprintf "wrote %s@." path
          | None -> ());
          Format.printf "@.done.@.";
          0)

let cmd =
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "Experiment ids to run (see `samya_cli list`), plus the \
             pseudo-id $(b,micro) for the bechamel benchmarks. Default: \
             every experiment except fig3b, then micro.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write a machine-readable BENCH_*.json results file.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Regenerate the paper's tables and figures and run the micro \
          benchmarks.")
    Term.(
      const run $ Args.quick $ Args.jobs $ Args.engine_jobs $ json
      $ Args.metrics_out $ ids)
