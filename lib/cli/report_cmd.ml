(* `samya_cli report EXPERIMENT` — the self-contained run report: re-runs
   the experiment's systems with the full observability stack (sink, SLO
   monitor, flight recorder, hot-key sketch, watchdog) and renders one
   document per invocation — outcome, throughput timeline, SLO verdict,
   mechanism attribution, hot keys, and the watchdog incidents with the
   first incident's black-box bundle. `--format html` (the default)
   writes a single-file page with inline styles and an inline-SVG
   figure; `--format md` writes GitHub-flavoured markdown. *)

open Cmdliner

let run experiment quick jobs format out =
  Args.with_captures ~experiment ~quick ~jobs (fun captures ->
      let meta =
        {
          Harness.Run_report.experiment;
          quick;
          seed = Harness.Exp_common.seed;
        }
      in
      let render =
        match format with
        | `Html -> Harness.Run_report.html
        | `Md -> Harness.Run_report.markdown
      in
      let ext = match format with `Html -> "html" | `Md -> "md" in
      let path =
        Option.value out ~default:(Printf.sprintf "report-%s.%s" experiment ext)
      in
      Args.emit ~what:"run report" ~path (render meta captures);
      let incidents =
        List.fold_left
          (fun acc c -> acc + List.length c.Harness.Exp_trace.incidents)
          0 captures
      in
      Format.printf "report: %s (%d system%s, %d incident%s)@." path
        (List.length captures)
        (if List.length captures = 1 then "" else "s")
        incidents
        (if incidents = 1 then "" else "s");
      0)

let cmd =
  let format =
    Arg.(
      value
      & opt (enum [ ("html", `Html); ("md", `Md) ]) `Html
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Report format: $(b,html) (self-contained page) or $(b,md).")
  in
  let out =
    Args.out_path
      "Report output path (default report-$(i,EXPERIMENT).$(i,FORMAT))."
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Re-run an experiment with the full observability stack and write \
          a self-contained run report: outcomes, throughput timeline, SLO \
          verdict, mechanism attribution, hot-key telemetry and watchdog \
          incidents with the first black-box bundle. Deterministic: \
          byte-identical output at any --jobs level.")
    Term.(
      const run $ Args.traceable_experiment $ Args.quick $ Args.jobs $ format
      $ out)
