val cmd : int Cmdliner.Cmd.t
(** [samya_cli perf-gate --baseline PATH --current PATH [--tolerance F]]:
    CI perf-regression gate over micro benchmark ns/run metrics. *)
