val cmd : int Cmdliner.Cmd.t
(** [samya_cli slo EXPERIMENT [--out PATH] [--strict]]: windowed SLO
    report per system; [--out] writes the [samya-slo/1] document. *)
