val cmd : int Cmdliner.Cmd.t
(** [samya_cli slo EXPERIMENT [--out PATH] [--no-fail]]: windowed SLO
    report per system; [--out] writes the [samya-slo/1] document. Exits
    1 when any objective is violated unless [--no-fail] is given. *)
