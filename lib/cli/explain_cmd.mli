val cmd : int Cmdliner.Cmd.t
(** [samya_cli explain EXPERIMENT [--slowest N]]: critical-path latency
    attribution from the causal request log. *)
