(* `samya_cli perf-gate` — CI perf-regression gate. Compares the micro
   benchmark ns/run numbers of a current run against a committed
   baseline and fails when any metric regresses past the tolerance
   factor. Reads either results format:

   - samya-bench/1  (bench --json):       micro[].{name, ns_per_run}
   - samya-metrics/1 (bench --metrics-out): gauges "micro.ns_per_run/<name>"

   The tolerance is deliberately loose (default 3x): CI machines are
   noisy, and the gate exists to catch order-of-magnitude mistakes
   (accidental allocation in a hot loop, a debug build), not 10% drift. *)

open Cmdliner

let prefix = "micro.ns_per_run/"

(* name -> ns_per_run from either schema; Error on unparseable input. *)
let micro_metrics source text =
  match Obs.Export.parse text with
  | Error e -> Error (Printf.sprintf "%s: %s" source e)
  | Ok json -> (
      match Obs.Export.member "schema" json with
      | Some (Obs.Export.Str "samya-bench/1") ->
          let entries =
            match Obs.Export.member "micro" json with
            | Some (Obs.Export.Arr entries) -> entries
            | _ -> []
          in
          Ok
            (List.filter_map
               (fun entry ->
                 match
                   ( Obs.Export.member "name" entry,
                     Obs.Export.member "ns_per_run" entry )
                 with
                 | Some (Obs.Export.Str name), Some (Obs.Export.Num ns) ->
                     Some (name, ns)
                 | _ -> None)
               entries)
      | Some (Obs.Export.Str "samya-metrics/1") ->
          let sections =
            match Obs.Export.member "sections" json with
            | Some (Obs.Export.Arr sections) -> sections
            | _ -> []
          in
          let collect acc section =
            match Obs.Export.member "gauges" section with
            | Some (Obs.Export.Obj gauges) ->
                List.fold_left
                  (fun acc (name, value) ->
                    if String.starts_with ~prefix name then
                      match Obs.Export.member "last" value with
                      | Some (Obs.Export.Num ns) ->
                          ( String.sub name (String.length prefix)
                              (String.length name - String.length prefix),
                            ns )
                          :: acc
                      | _ -> acc
                    else acc)
                  acc gauges
            | _ -> acc
          in
          Ok (List.rev (List.fold_left collect [] sections))
      | Some (Obs.Export.Str schema) ->
          Error (Printf.sprintf "%s: unsupported schema %S" source schema)
      | _ -> Error (Printf.sprintf "%s: missing \"schema\" field" source))

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> Ok text
  | exception Sys_error e -> Error e

let run baseline_path current_path tolerance =
  let ( let* ) r f = match r with Error e -> Format.eprintf "error: %s@." e; 2 | Ok v -> f v in
  let* baseline_text = read_file baseline_path in
  let* current_text = read_file current_path in
  let* baseline = micro_metrics baseline_path baseline_text in
  let* current = micro_metrics current_path current_text in
  if baseline = [] then begin
    Format.eprintf "error: %s: no micro benchmark metrics@." baseline_path;
    2
  end
  else begin
    Format.printf "perf gate: %d baseline metric(s), tolerance %.2fx@."
      (List.length baseline) tolerance;
    let failures = ref 0 in
    List.iter
      (fun (name, base_ns) ->
        match List.assoc_opt name current with
        | None ->
            incr failures;
            Format.printf "  MISSING  %-45s baseline %.1f ns/run, absent from current run@."
              name base_ns
        | Some ns ->
            let ratio = if base_ns > 0.0 then ns /. base_ns else 1.0 in
            if ratio > tolerance then begin
              incr failures;
              Format.printf "  FAIL     %-45s %.1f -> %.1f ns/run (%.2fx > %.2fx)@."
                name base_ns ns ratio tolerance
            end
            else
              Format.printf "  ok       %-45s %.1f -> %.1f ns/run (%.2fx)@." name
                base_ns ns ratio)
      baseline;
    if !failures > 0 then begin
      Format.printf "perf gate: FAILED (%d regression(s))@." !failures;
      1
    end
    else begin
      Format.printf "perf gate: passed@.";
      0
    end
  end

let cmd =
  let baseline =
    Arg.(
      required
      & opt (some file) None
      & info [ "baseline" ] ~docv:"PATH"
          ~doc:"Committed baseline (samya-bench/1 or samya-metrics/1).")
  in
  let current =
    Arg.(
      required
      & opt (some file) None
      & info [ "current" ] ~docv:"PATH"
          ~doc:"Results of the current run (samya-bench/1 or samya-metrics/1).")
  in
  let tolerance =
    Arg.(
      value & opt float 3.0
      & info [ "tolerance" ] ~docv:"FACTOR"
          ~doc:
            "Maximum allowed current/baseline ns-per-run ratio before the \
             gate fails.")
  in
  Cmd.v
    (Cmd.info "perf-gate"
       ~doc:
         "Compare micro benchmark ns/run results against a committed \
          baseline; exit non-zero if any metric regressed past the \
          tolerance factor.")
    Term.(const run $ baseline $ current $ tolerance)
