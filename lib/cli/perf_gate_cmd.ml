(* `samya_cli perf-gate` — CI perf-regression gate. Compares a current
   benchmark run against a committed baseline and fails when a metric
   regresses past its tolerance factor. Reads either results format:

   - samya-bench/1  (bench --json):       micro[].{name, ns_per_run},
     experiments[].{id, wall_s}, and the run configuration
     (jobs/engine_jobs/quick/host_cores) as top-level fields
   - samya-metrics/1 (bench --metrics-out): gauges "micro.ns_per_run/<name>"
     and "bench.wall_s/<id>", configuration in "meta"

   Micro ns/run numbers compare unconditionally. Wall times compare only
   when the two runs are comparable — same --jobs, same --engine-jobs,
   same --quick; otherwise the wall section is skipped with a printed
   note, because "4 worker domains vs 1" is a configuration change, not a
   regression. `--trend ID:FACTOR` is the inverse check for the sharded
   engine: it *expects* the runs to differ in engine_jobs and asserts the
   current (sharded) run beats the baseline wall time by FACTOR, skipping
   with a note when the current host lacks the cores to demonstrate it.

   Tolerances are deliberately loose (default 3x): CI machines are noisy,
   and the gate exists to catch order-of-magnitude mistakes (accidental
   allocation in a hot loop, a debug build), not 10% drift. *)

open Cmdliner

let micro_prefix = "micro.ns_per_run/"
let wall_prefix = "bench.wall_s/"

type results = {
  micro : (string * float) list;
  walls : (string * float) list;  (* experiment id -> wall seconds *)
  jobs : int option;
  engine_jobs : int option;
  quick : bool option;
  host_cores : int option;
}

let num_member name json =
  match Obs.Export.member name json with
  | Some (Obs.Export.Num v) -> Some (int_of_float v)
  | _ -> None

let bool_member name json =
  match Obs.Export.member name json with
  | Some (Obs.Export.Bool b) -> Some b
  | _ -> None

(* samya-metrics/1 meta values are all strings. *)
let meta_int meta name =
  match Obs.Export.member name meta with
  | Some (Obs.Export.Str s) -> int_of_string_opt s
  | _ -> None

let meta_bool meta name =
  match Obs.Export.member name meta with
  | Some (Obs.Export.Str s) -> bool_of_string_opt s
  | _ -> None

let gauges_with ~prefix sections =
  let collect acc section =
    match Obs.Export.member "gauges" section with
    | Some (Obs.Export.Obj gauges) ->
        List.fold_left
          (fun acc (name, value) ->
            if String.starts_with ~prefix name then
              match Obs.Export.member "last" value with
              | Some (Obs.Export.Num v) ->
                  ( String.sub name (String.length prefix)
                      (String.length name - String.length prefix),
                    v )
                  :: acc
              | _ -> acc
            else acc)
          acc gauges
    | _ -> acc
  in
  List.rev (List.fold_left collect [] sections)

(* Parse either schema into [results]; Error on unparseable input. *)
let read_results source text =
  match Obs.Export.parse text with
  | Error e -> Error (Printf.sprintf "%s: %s" source e)
  | Ok json -> (
      match Obs.Export.member "schema" json with
      | Some (Obs.Export.Str "samya-bench/1") ->
          let entries name =
            match Obs.Export.member name json with
            | Some (Obs.Export.Arr entries) -> entries
            | _ -> []
          in
          let micro =
            List.filter_map
              (fun entry ->
                match
                  ( Obs.Export.member "name" entry,
                    Obs.Export.member "ns_per_run" entry )
                with
                | Some (Obs.Export.Str name), Some (Obs.Export.Num ns) ->
                    Some (name, ns)
                | _ -> None)
              (entries "micro")
          in
          let walls =
            List.filter_map
              (fun entry ->
                match
                  (Obs.Export.member "id" entry, Obs.Export.member "wall_s" entry)
                with
                | Some (Obs.Export.Str id), Some (Obs.Export.Num s) -> Some (id, s)
                | _ -> None)
              (entries "experiments")
          in
          Ok
            {
              micro;
              walls;
              jobs = num_member "jobs" json;
              engine_jobs = num_member "engine_jobs" json;
              quick = bool_member "quick" json;
              host_cores = num_member "host_cores" json;
            }
      | Some (Obs.Export.Str "samya-metrics/1") ->
          let sections =
            match Obs.Export.member "sections" json with
            | Some (Obs.Export.Arr sections) -> sections
            | _ -> []
          in
          let meta =
            Option.value (Obs.Export.member "meta" json)
              ~default:(Obs.Export.Obj [])
          in
          Ok
            {
              micro = gauges_with ~prefix:micro_prefix sections;
              walls = gauges_with ~prefix:wall_prefix sections;
              jobs = meta_int meta "jobs";
              engine_jobs = meta_int meta "engine_jobs";
              quick = meta_bool meta "quick";
              host_cores = meta_int meta "host_cores";
            }
      | Some (Obs.Export.Str schema) ->
          Error (Printf.sprintf "%s: unsupported schema %S" source schema)
      | _ -> Error (Printf.sprintf "%s: missing \"schema\" field" source))

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> Ok text
  | exception Sys_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Comparability: wall times mean the same thing only when both runs used
   the same parallelism and scale settings. [None] = comparable;
   [Some reason] = skip wall comparisons and say why. *)

let opt_str to_s = function None -> "unknown" | Some v -> to_s v

let incomparability baseline current =
  let differs what to_s a b =
    match (a, b) with
    | Some a, Some b when a = b -> None
    | None, None -> None
    | a, b ->
        Some (Printf.sprintf "%s differ (%s vs %s)" what (opt_str to_s a) (opt_str to_s b))
  in
  match differs "quick" string_of_bool baseline.quick current.quick with
  | Some _ as r -> r
  | None -> (
      match differs "jobs" string_of_int baseline.jobs current.jobs with
      | Some _ as r -> r
      | None ->
          differs "engine-jobs" string_of_int baseline.engine_jobs
            current.engine_jobs)

(* ------------------------------------------------------------------ *)

let check_micro ~tolerance ~failures baseline current =
  Format.printf "perf gate: %d baseline micro metric(s), tolerance %.2fx@."
    (List.length baseline.micro) tolerance;
  List.iter
    (fun (name, base_ns) ->
      match List.assoc_opt name current.micro with
      | None ->
          incr failures;
          Format.printf
            "  MISSING  %-45s baseline %.1f ns/run, absent from current run@."
            name base_ns
      | Some ns ->
          let ratio = if base_ns > 0.0 then ns /. base_ns else 1.0 in
          if ratio > tolerance then begin
            incr failures;
            Format.printf "  FAIL     %-45s %.1f -> %.1f ns/run (%.2fx > %.2fx)@."
              name base_ns ns ratio tolerance
          end
          else
            Format.printf "  ok       %-45s %.1f -> %.1f ns/run (%.2fx)@." name
              base_ns ns ratio)
    baseline.micro

let check_walls ~wall_tolerance ~failures baseline current =
  match (baseline.walls, current.walls) with
  | [], _ | _, [] -> ()
  | walls, _ -> (
      match incomparability baseline current with
      | Some reason ->
          Format.printf
            "perf gate: wall-time comparison skipped: %s (not a regression \
             signal)@."
            reason
      | None ->
          Format.printf "perf gate: %d wall time(s), tolerance %.2fx@."
            (List.length walls) wall_tolerance;
          List.iter
            (fun (id, base_s) ->
              match List.assoc_opt id current.walls with
              | None ->
                  Format.printf
                    "  note     wall %-40s absent from current run@." id
              | Some s ->
                  let ratio = if base_s > 0.0 then s /. base_s else 1.0 in
                  if ratio > wall_tolerance then begin
                    incr failures;
                    Format.printf
                      "  FAIL     wall %-40s %.3f -> %.3f s (%.2fx > %.2fx)@." id
                      base_s s ratio wall_tolerance
                  end
                  else
                    Format.printf "  ok       wall %-40s %.3f -> %.3f s (%.2fx)@."
                      id base_s s ratio)
            walls)

(* --trend ID:FACTOR — the sharded-engine speedup target. The baseline is
   the reference (single-engine) run, the current file the sharded one;
   anything that would make the wall times incomparable *other than*
   engine-jobs skips the check, as does a current host with fewer cores
   than worker domains (it cannot demonstrate parallel speedup). *)
let check_trend ~failures ~trend baseline current =
  match trend with
  | None -> ()
  | Some (id, factor) -> (
      let skip reason =
        Format.printf "perf gate: trend %s skipped: %s@." id reason
      in
      let differs what to_s a b =
        match (a, b) with
        | Some a, Some b when a = b -> None
        | None, None -> None
        | a, b ->
            Some
              (Printf.sprintf "%s differ (%s vs %s)" what (opt_str to_s a)
                 (opt_str to_s b))
      in
      match
        ( List.assoc_opt id baseline.walls,
          List.assoc_opt id current.walls,
          differs "quick" string_of_bool baseline.quick current.quick,
          differs "jobs" string_of_int baseline.jobs current.jobs )
      with
      | None, _, _, _ -> skip "no baseline wall time"
      | _, None, _, _ -> skip "no current wall time"
      | _, _, Some reason, _ | _, _, _, Some reason -> skip reason
      | Some base_s, Some cur_s, None, None -> (
          match (current.engine_jobs, current.host_cores) with
          | Some ej, Some cores when cores < ej ->
              skip
                (Printf.sprintf
                   "current host has %d core(s) for %d engine worker(s)" cores ej)
          | _ ->
              let speedup = if cur_s > 0.0 then base_s /. cur_s else infinity in
              if speedup >= factor then
                Format.printf
                  "  ok       trend %-39s %.3f -> %.3f s (%.2fx >= %.2fx)@." id
                  base_s cur_s speedup factor
              else begin
                incr failures;
                Format.printf
                  "  FAIL     trend %-39s %.3f -> %.3f s (%.2fx < %.2fx)@." id
                  base_s cur_s speedup factor
              end))

let run baseline_path current_path tolerance wall_tolerance trend =
  let ( let* ) r f =
    match r with
    | Error e ->
        Format.eprintf "error: %s@." e;
        2
    | Ok v -> f v
  in
  let* baseline_text = read_file baseline_path in
  let* current_text = read_file current_path in
  let* baseline = read_results baseline_path baseline_text in
  let* current = read_results current_path current_text in
  if baseline.micro = [] && trend = None then begin
    Format.eprintf "error: %s: no micro benchmark metrics@." baseline_path;
    2
  end
  else begin
    let failures = ref 0 in
    if baseline.micro <> [] then
      check_micro ~tolerance ~failures baseline current;
    check_walls ~wall_tolerance ~failures baseline current;
    check_trend ~failures ~trend baseline current;
    if !failures > 0 then begin
      Format.printf "perf gate: FAILED (%d regression(s))@." !failures;
      1
    end
    else begin
      Format.printf "perf gate: passed@.";
      0
    end
  end

let trend_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | Some i when i > 0 && i < String.length s - 1 -> (
        let id = String.sub s 0 i in
        let factor = String.sub s (i + 1) (String.length s - i - 1) in
        match float_of_string_opt factor with
        | Some f when f > 0.0 -> Ok (id, f)
        | Some _ | None ->
            Error (`Msg (Printf.sprintf "bad trend factor %S" factor)))
    | _ -> Error (`Msg (Printf.sprintf "expected ID:FACTOR, got %S" s))
  in
  let print fmt (id, f) = Format.fprintf fmt "%s:%g" id f in
  Arg.conv (parse, print)

let cmd =
  let baseline =
    Arg.(
      required
      & opt (some file) None
      & info [ "baseline" ] ~docv:"PATH"
          ~doc:"Committed baseline (samya-bench/1 or samya-metrics/1).")
  in
  let current =
    Arg.(
      required
      & opt (some file) None
      & info [ "current" ] ~docv:"PATH"
          ~doc:"Results of the current run (samya-bench/1 or samya-metrics/1).")
  in
  let tolerance =
    Arg.(
      value & opt float 3.0
      & info [ "tolerance" ] ~docv:"FACTOR"
          ~doc:
            "Maximum allowed current/baseline ns-per-run ratio before the \
             gate fails.")
  in
  let wall_tolerance =
    Arg.(
      value & opt float 4.0
      & info [ "wall-tolerance" ] ~docv:"FACTOR"
          ~doc:
            "Maximum allowed current/baseline experiment wall-time ratio. \
             Only enforced when both runs used the same --quick/--jobs/\
             --engine-jobs configuration; otherwise the comparison is \
             skipped with a note.")
  in
  let trend =
    Arg.(
      value
      & opt (some trend_conv) None
      & info [ "trend" ] ~docv:"ID:FACTOR"
          ~doc:
            "Require the current run's wall time for experiment $(i,ID) to \
             beat the baseline's by at least $(i,FACTOR)x (the sharded-\
             engine speedup target, e.g. $(b,fig3g:5)). Skipped with a note \
             when the runs differ in --quick/--jobs or the current host has \
             fewer cores than --engine-jobs workers.")
  in
  Cmd.v
    (Cmd.info "perf-gate"
       ~doc:
         "Compare micro benchmark ns/run results against a committed \
          baseline; exit non-zero if any metric regressed past the \
          tolerance factor.")
    Term.(const run $ baseline $ current $ tolerance $ wall_tolerance $ trend)
