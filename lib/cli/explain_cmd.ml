(* `samya_cli explain EXPERIMENT` — causal critical-path analysis: re-runs
   the experiment's systems under tracing and attributes each traced
   request's latency to named components (client WAN legs, queueing,
   protocol phases, replication hops, CPU backlog, local service). *)

open Cmdliner

let run experiment quick jobs slowest by_mechanism out =
  Args.with_captures ~banner:"explain" ~experiment ~quick ~jobs (fun captures ->
      Harness.Exp_trace.explain Format.std_formatter ~by_mechanism ~slowest
        captures;
      Option.iter
        (fun path ->
          Args.emit ~what:"explain report" ~path
            (Format.asprintf "%t" (fun fmt ->
                 Harness.Exp_trace.explain fmt ~by_mechanism ~slowest captures)))
        out;
      0)

let cmd =
  let slowest =
    Arg.(
      value & opt int 5
      & info [ "slowest" ] ~docv:"N"
          ~doc:"Show the N slowest traced requests with their critical paths.")
  in
  let by_mechanism =
    Arg.(
      value & flag
      & info [ "mechanism" ]
          ~doc:
            "Additionally fold the attribution by token-movement mechanism \
             (borrow / redistribute / controller) and serving layer.")
  in
  let out = Args.out_path "Also write the rendered attribution to $(docv)." in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Re-run an experiment under causal tracing and attribute request \
          latency to named components (WAN legs, queueing, protocol phases, \
          replication, service). Deterministic: byte-identical output at \
          any --jobs level.")
    Term.(
      const run $ Args.traceable_experiment $ Args.quick $ Args.jobs $ slowest
      $ by_mechanism $ out)
