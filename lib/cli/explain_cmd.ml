(* `samya_cli explain EXPERIMENT` — causal critical-path analysis: re-runs
   the experiment's systems under tracing and attributes each traced
   request's latency to named components (client WAN legs, queueing,
   protocol phases, replication hops, CPU backlog, local service). *)

open Cmdliner

let run experiment quick jobs slowest =
  Harness.Pool.set_jobs jobs;
  Format.eprintf "jobs: %d@." jobs;
  let ctx = Harness.Lab.create () in
  match Harness.Exp_trace.run ctx ~quick ~experiment with
  | Error message ->
      Format.eprintf "error: %s@." message;
      2
  | Ok captures ->
      Format.printf "== explain: %s (%s horizon, seed %Ld) ==@." experiment
        (if quick then "quick" else "full")
        Harness.Exp_common.seed;
      Harness.Exp_trace.explain Format.std_formatter ~slowest captures;
      0

let cmd =
  let experiment =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            (Printf.sprintf "Traceable experiment: %s."
               (String.concat ", " Harness.Exp_trace.experiments)))
  in
  let slowest =
    Arg.(
      value & opt int 5
      & info [ "slowest" ] ~docv:"N"
          ~doc:"Show the N slowest traced requests with their critical paths.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Re-run an experiment under causal tracing and attribute request \
          latency to named components (WAN legs, queueing, protocol phases, \
          replication, service). Deterministic: byte-identical output at \
          any --jobs level.")
    Term.(const run $ experiment $ Args.quick $ Args.jobs $ slowest)
