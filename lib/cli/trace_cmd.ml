open Cmdliner

let run experiment quick jobs out metrics_out =
  Args.with_captures ~experiment ~quick ~jobs (fun captures ->
      let out =
        Option.value out ~default:(Printf.sprintf "trace-%s.json" experiment)
      in
      let trace = Harness.Exp_trace.trace_json captures in
      Args.write_file ~path:out trace;
      Harness.Exp_trace.summary Format.std_formatter captures;
      (match metrics_out with
      | Some path ->
          Args.emit ~what:"metrics" ~path
            (Harness.Exp_trace.metrics_json
               ~meta:(Args.run_meta ~experiment ~quick)
               captures)
      | None -> ());
      match Obs.Export.validate_trace trace with
      | Ok events ->
          Format.printf
            "trace: %s (%d events, load in chrome://tracing or ui.perfetto.dev)@."
            out events;
          0
      | Error reason ->
          Format.eprintf "error: emitted trace failed validation: %s@." reason;
          1)

let cmd =
  let out =
    Args.out_path ~flags:[ "out"; "o" ]
      "Trace output path (default trace-$(i,EXPERIMENT).json)."
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Re-run an experiment with full observability and export a \
          Chrome-loadable trace_event JSON (plus optional metrics JSON). \
          Deterministic: same seed and experiment give a byte-identical \
          trace at any --jobs level.")
    Term.(
      const run $ Args.traceable_experiment $ Args.quick $ Args.jobs $ out
      $ Args.metrics_out)
