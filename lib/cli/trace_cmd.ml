open Cmdliner

let run experiment quick jobs out metrics_out =
  Harness.Pool.set_jobs jobs;
  Format.eprintf "jobs: %d@." jobs;
  let ctx = Harness.Lab.create () in
  match Harness.Exp_trace.run ctx ~quick ~experiment with
  | Error message ->
      Format.eprintf "error: %s@." message;
      2
  | Ok captures -> (
      let out =
        Option.value out ~default:(Printf.sprintf "trace-%s.json" experiment)
      in
      let trace = Harness.Exp_trace.trace_json captures in
      Args.write_file ~path:out trace;
      Harness.Exp_trace.summary Format.std_formatter captures;
      (match metrics_out with
      | Some path ->
          Args.write_file ~path
            (Harness.Exp_trace.metrics_json
               ~meta:
                 [
                   ("experiment", experiment);
                   ("quick", string_of_bool quick);
                   ("seed", Int64.to_string Harness.Exp_common.seed);
                 ]
               captures);
          Format.printf "metrics: %s@." path
      | None -> ());
      match Obs.Export.validate_trace trace with
      | Ok events ->
          Format.printf "trace: %s (%d events, load in chrome://tracing or ui.perfetto.dev)@."
            out events;
          0
      | Error reason ->
          Format.eprintf "error: emitted trace failed validation: %s@." reason;
          1)

let cmd =
  let experiment =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            (Printf.sprintf "Traceable experiment: %s."
               (String.concat ", " Harness.Exp_trace.experiments)))
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"PATH"
          ~doc:"Trace output path (default trace-$(i,EXPERIMENT).json).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Re-run an experiment with full observability and export a \
          Chrome-loadable trace_event JSON (plus optional metrics JSON). \
          Deterministic: same seed and experiment give a byte-identical \
          trace at any --jobs level.")
    Term.(const run $ experiment $ Args.quick $ Args.jobs $ out $ Args.metrics_out)
