(** Windowed throughput recorder.

    Counts committed transactions into fixed-width virtual-time windows;
    the per-window series drives the throughput-over-time figures
    (Figs. 3b–3f) and the averages drive the bar/line charts (Figs. 3g, 3h). *)

type t

val create : window_ms:float -> t

val record : t -> time_ms:float -> unit
(** Counts one event at the given virtual time. Times may arrive out of
    order. Negative times raise [Invalid_argument]. *)

val record_n : t -> time_ms:float -> int -> unit

val total : t -> int

val window_ms : t -> float

val series : t -> ?until_ms:float -> unit -> (float * float) list
(** [(window_start_ms, events_per_second)] for every window from 0 to the
    latest recorded event (or [until_ms]), including empty windows. *)

val merge_into : t -> into:t -> unit
(** [merge_into src ~into] adds [src]'s per-window counts into [into],
    walking windows in index order (deterministic despite the hash-table
    representation). Raises [Invalid_argument] on window-width mismatch.
    [src] is unchanged. *)

val average_tps : t -> duration_ms:float -> float
(** [total / duration] in events per second. *)
