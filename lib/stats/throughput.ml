type t = {
  window_width : float;
  counts : (int, int) Hashtbl.t;
  mutable total : int;
  mutable max_window : int;
}

let create ~window_ms =
  if window_ms <= 0.0 then invalid_arg "Throughput.create: window must be positive";
  { window_width = window_ms; counts = Hashtbl.create 64; total = 0; max_window = -1 }

let record_n t ~time_ms n =
  if time_ms < 0.0 then invalid_arg "Throughput.record: negative time";
  let window = int_of_float (time_ms /. t.window_width) in
  let current = Option.value (Hashtbl.find_opt t.counts window) ~default:0 in
  Hashtbl.replace t.counts window (current + n);
  t.total <- t.total + n;
  if window > t.max_window then t.max_window <- window

let record t ~time_ms = record_n t ~time_ms 1

let total t = t.total

let window_ms t = t.window_width

let series t ?until_ms () =
  let last_window =
    match until_ms with
    | Some limit -> int_of_float (limit /. t.window_width)
    | None -> t.max_window
  in
  let rec build window acc =
    if window < 0 then acc
    else begin
      let count = Option.value (Hashtbl.find_opt t.counts window) ~default:0 in
      let start = float_of_int window *. t.window_width in
      let tps = float_of_int count /. (t.window_width /. 1000.0) in
      build (window - 1) ((start, tps) :: acc)
    end
  in
  build last_window []

let merge_into src ~into =
  if src.window_width <> into.window_width then
    invalid_arg "Throughput.merge_into: window width mismatch";
  (* Windows walk in index order, so the merge is deterministic even
     though the counts live in hash tables. *)
  for window = 0 to src.max_window do
    match Hashtbl.find_opt src.counts window with
    | None -> ()
    | Some n ->
        let current = Option.value (Hashtbl.find_opt into.counts window) ~default:0 in
        Hashtbl.replace into.counts window (current + n);
        into.total <- into.total + n;
        if window > into.max_window then into.max_window <- window
  done

let average_tps t ~duration_ms =
  if duration_ms <= 0.0 then nan
  else float_of_int t.total /. (duration_ms /. 1000.0)
