(** Exact percentile computation over a collected sample set.

    Latency distributions in the experiments hold at most a few million
    samples, so we keep them all and compute exact order statistics — no
    estimation error in the reproduced Table 2b. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], nearest-rank with linear
    interpolation (same convention as numpy's default). [nan] when empty.
    Raises [Invalid_argument] for [p] outside the range. *)

val median : t -> float

val mean : t -> float

val min_value : t -> float

val max_value : t -> float

val merge_into : t -> into:t -> unit
(** [merge_into src ~into] appends [src]'s samples to [into] in [src]'s
    current storage order, updating the running sum sample-by-sample — so
    merging per-slot sets in a fixed order yields bit-identical statistics
    to having added the samples to one set in that order. [src] is
    unchanged. *)

val to_sorted_array : t -> float array
(** A copy, ascending. *)
