type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : bool;
  mutable sum : float;
}

let create () = { data = [||]; size = 0; sorted = true; sum = 0.0 }

let add t x =
  if t.size = Array.length t.data then begin
    let capacity = max 64 (2 * Array.length t.data) in
    let data = Array.make capacity 0.0 in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- false;
  t.sum <- t.sum +. x

let count t = t.size

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.data 0 t.size in
    Array.sort compare live;
    Array.blit live 0 t.data 0 t.size;
    t.sorted <- true
  end

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Sample_set.percentile";
  if t.size = 0 then nan
  else begin
    ensure_sorted t;
    let rank = p /. 100.0 *. float_of_int (t.size - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (t.data.(lo) *. (1.0 -. frac)) +. (t.data.(hi) *. frac)
  end

let median t = percentile t 50.0

let mean t = if t.size = 0 then nan else t.sum /. float_of_int t.size

let min_value t = percentile t 0.0

let max_value t = percentile t 100.0

(* Element-by-element append: the destination's running [sum] follows the
   same left-to-right association as if every sample had been [add]ed to
   it directly, so merged statistics are a deterministic function of the
   merge order alone. *)
let merge_into src ~into =
  for i = 0 to src.size - 1 do
    add into src.data.(i)
  done

let to_sorted_array t =
  ensure_sorted t;
  Array.sub t.data 0 t.size
