(** One reproducible chaos run: build a Samya cluster, drive a random but
    seed-determined workload, inject the {!Nemesis} schedule for the same
    seed, probe recovery-to-service latency after every crash, then drain
    to quiescence and run the {!Auditor}.

    Everything — cluster RNG, workload arrivals, fault schedule — derives
    from the single [seed], so a failure report's printed repro line
    replays the identical execution. *)

type report = {
  seed : int;
  variant : Samya.Config.variant;
  amnesia : bool;
  sync : Storage.Durable.sync_policy;
  schedule : Nemesis.schedule;
  injected : int;  (** faults injected *)
  healed : int;  (** faults healed (equal to [injected] after the run) *)
  granted : int;
  rejected : int;
  unavailable : int;
  redistributions : int;
  recovery_probes : (int * float) list;
      (** per crash fault: (site, ms from recovery until the site answered
          a direct acquire — recovery-to-service latency) *)
  durable_syncs : int;  (** stable-storage flushes across all sites *)
  duplicated : int;  (** duplicate deliveries the network injected *)
  violations : Auditor.violation list;
}

val run :
  ?n_sites:int ->
  ?duration_ms:float ->
  ?maximum:int ->
  ?amnesia:bool ->
  ?sync:Storage.Durable.sync_policy ->
  ?engine_jobs:int ->
  variant:Samya.Config.variant ->
  seed:int ->
  unit ->
  report
(** Defaults: 5 sites, 120 s of traffic (plus a drain tail), maximum 5000,
    crash-amnesia with write-through ([Sync_always]) durability,
    [engine_jobs = 0] (legacy single-engine simulation). [engine_jobs >= 1]
    builds the cluster region-sharded; the soak forces sequential window
    drains (the auditor and counters are cross-lane shared state), so the
    report is byte-identical at every jobs setting. *)

val passed : report -> bool
(** No violations. *)

val repro_line : report -> string
(** The one-command reproduction, e.g.
    ["samya_cli chaos --seed 7 --variant star"]. *)

val pp_report : Format.formatter -> report -> unit
